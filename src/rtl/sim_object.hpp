// Base interface for everything driven by the simulation clock.
//
// The kernel models a single synchronous clock domain with two-phase
// updates, mirroring how flip-flops behave in RTL:
//
//   compute():  read only *committed* (previous-edge) state of self and
//               peers, derive next-state values.  Must not make new state
//               visible to other objects.
//   commit():   atomically publish the next-state values computed above.
//
// Because every object's compute() runs before any commit(), evaluation
// order between sibling objects is irrelevant — exactly the property a
// bank of flip-flops clocked by the same edge has.  Cross-module
// communication therefore behaves as registered (Moore) outputs, which is
// how the paper's handshake signals (enable / done / ready) are drawn.
#pragma once

namespace empls::rtl {

class SimObject {
 public:
  SimObject() = default;
  SimObject(const SimObject&) = delete;
  SimObject& operator=(const SimObject&) = delete;
  virtual ~SimObject() = default;

  /// Synchronous reset: return all architectural state to power-on values.
  virtual void reset() = 0;

  /// Phase 1 of a clock edge: compute next state from committed state.
  virtual void compute() = 0;

  /// Phase 2 of a clock edge: publish next state.
  virtual void commit() = 0;
};

}  // namespace empls::rtl
