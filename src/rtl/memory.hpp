// Synchronous single-cycle-latency RAM, modelling the FPGA block-RAM
// components of the information base (Figure 13: index / label /
// operation components, each 1K entries deep).
//
// Semantics mirror an Altera M4K-style synchronous RAM:
//   * issue_read(addr) during a compute phase → read_data() returns the
//     stored word starting the *next* cycle (the search FSM's
//     WAIT FOR INFO state exists precisely to absorb this latency);
//   * issue_write(addr, data) during a compute phase → the word is stored
//     at the next clock edge.
// Read-during-write to the same address returns the OLD data (read-first
// mode), which is the conservative FPGA default.
#pragma once

#include <cassert>
#include <vector>

#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {

class SyncMemory : public SimObject {
 public:
  SyncMemory(unsigned data_width, u64 depth)
      : data_width_(data_width), store_(depth, 0), rdata_(data_width, 0) {
    assert(depth > 0);
  }

  [[nodiscard]] unsigned data_width() const noexcept { return data_width_; }
  [[nodiscard]] u64 depth() const noexcept { return store_.size(); }

  /// Registered read port: data for the address issued on the previous
  /// edge.
  [[nodiscard]] u64 read_data() const noexcept { return rdata_.get(); }

  /// Issue a read of `addr`; read_data() is valid one cycle later.
  void issue_read(u64 addr) noexcept {
    assert(addr < store_.size());
    read_pending_ = true;
    read_addr_ = addr;
  }

  /// Issue a write of `data` to `addr`, effective at the next edge.
  void issue_write(u64 addr, u64 data) noexcept {
    assert(addr < store_.size());
    write_pending_ = true;
    write_addr_ = addr;
    write_data_ = truncate(data, data_width_);
  }

  /// Test-visibility backdoor: committed contents, bypassing the port.
  [[nodiscard]] u64 peek(u64 addr) const noexcept {
    assert(addr < store_.size());
    return store_[addr];
  }

  /// Test-setup backdoor: store directly, bypassing port timing.
  void poke(u64 addr, u64 data) noexcept {
    assert(addr < store_.size());
    store_[addr] = truncate(data, data_width_);
  }

  void reset() override {
    std::fill(store_.begin(), store_.end(), 0);
    rdata_.reset(0);
    read_pending_ = false;
    write_pending_ = false;
  }

  void compute() override {}

  void commit() override {
    // Read-first: latch old contents before any same-cycle write lands.
    if (read_pending_) {
      rdata_.set(store_[read_addr_]);
    }
    rdata_.commit();
    if (write_pending_) {
      store_[write_addr_] = write_data_;
    }
    read_pending_ = false;
    write_pending_ = false;
  }

 private:
  unsigned data_width_;
  std::vector<u64> store_;
  WireU rdata_;
  bool read_pending_ = false;
  u64 read_addr_ = 0;
  bool write_pending_ = false;
  u64 write_addr_ = 0;
  u64 write_data_ = 0;
};

}  // namespace empls::rtl
