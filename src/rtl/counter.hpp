// Up/down counter with load and clear, modelled on the datapath counters
// of Figure 12/13: the TTL counter, the label-stack size counter, and the
// read/write address counters inside each information-base memory
// component.
//
// Command precedence follows common RTL practice: clear > load >
// increment/decrement.  Commands are issued during a compute() phase and
// take effect at the following commit(), i.e. one clock edge later.
#pragma once

#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {

class Counter : public SimObject {
 public:
  explicit Counter(unsigned width, u64 reset_value = 0)
      : q_(width, reset_value), reset_value_(truncate(reset_value, width)) {}

  [[nodiscard]] u64 q() const noexcept { return q_.get(); }
  [[nodiscard]] unsigned width() const noexcept { return q_.width(); }

  /// Clear to zero at the next edge.
  void clear() noexcept { cmd_ = Cmd::kClear; }

  /// Load `v` at the next edge.
  void load(u64 v) noexcept {
    cmd_ = Cmd::kLoad;
    load_value_ = v;
  }

  /// Count up by one at the next edge (wraps at the declared width).
  void increment() noexcept { cmd_ = Cmd::kIncr; }

  /// Count down by one at the next edge (wraps at the declared width).
  void decrement() noexcept { cmd_ = Cmd::kDecr; }

  void reset() override {
    q_.reset(reset_value_);
    cmd_ = Cmd::kHold;
    load_value_ = 0;
  }

  // Commands are applied during commit() rather than compute() so that a
  // driving FSM may issue them at any point of the compute phase without
  // caring whether this counter was evaluated before or after it.
  void compute() override {}

  void commit() override {
    switch (cmd_) {
      case Cmd::kHold:
        break;
      case Cmd::kClear:
        q_.set(0);
        break;
      case Cmd::kLoad:
        q_.set(load_value_);
        break;
      case Cmd::kIncr:
        q_.set(q_.get() + 1);
        break;
      case Cmd::kDecr:
        q_.set(q_.get() - 1);
        break;
    }
    q_.commit();
    cmd_ = Cmd::kHold;
  }

 private:
  enum class Cmd { kHold, kClear, kLoad, kIncr, kDecr };

  WireU q_;
  u64 reset_value_;
  Cmd cmd_ = Cmd::kHold;
  u64 load_value_ = 0;
};

}  // namespace empls::rtl
