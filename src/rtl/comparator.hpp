// Combinational equality comparators.
//
// The data path instantiates three comparators (32-, 20- and 10-bit,
// Figure 12) so index and label values can be compared while searching
// the information base.  Combinational logic has no state, so these are
// plain functions; the width is part of the comparison because the RTL
// comparator only sees the declared number of bits.
#pragma once

#include "rtl/types.hpp"

namespace empls::rtl {

/// a == b over the low `width` bits, as a hardware equality comparator of
/// that width would report.
constexpr bool compare_eq(u64 a, u64 b, unsigned width) noexcept {
  return truncate(a, width) == truncate(b, width);
}

/// Named instances matching the paper's data path.
constexpr bool compare_eq32(u64 a, u64 b) noexcept {
  return compare_eq(a, b, 32);
}
constexpr bool compare_eq20(u64 a, u64 b) noexcept {
  return compare_eq(a, b, 20);
}
constexpr bool compare_eq10(u64 a, u64 b) noexcept {
  return compare_eq(a, b, 10);
}

}  // namespace empls::rtl
