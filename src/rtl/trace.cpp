#include "rtl/trace.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

namespace empls::rtl {

TraceRecorder::TraceRecorder(Simulator& sim) {
  sim.set_sampler([this](u64 cycle) { sample(cycle); });
}

void TraceRecorder::add_probe(std::string name, unsigned width,
                              std::function<u64()> read) {
  assert(width >= 1 && width <= 64);
  probes_.push_back(Probe{std::move(name), width, std::move(read)});
  samples_.emplace_back();
}

void TraceRecorder::add_probe_bool(std::string name,
                                   std::function<bool()> read) {
  add_probe(std::move(name), 1,
            [r = std::move(read)]() -> u64 { return r() ? 1 : 0; });
}

void TraceRecorder::sample(u64 cycle) {
  cycles_.push_back(cycle);
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    samples_[p].push_back(probes_[p].read());
  }
}

u64 TraceRecorder::value(std::size_t p, std::size_t s) const {
  assert(p < probes_.size() && s < samples_[p].size());
  return samples_[p][s];
}

u64 TraceRecorder::value(const std::string& name, std::size_t s) const {
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    if (probes_[p].name == name) {
      return value(p, s);
    }
  }
  assert(false && "unknown probe name");
  return 0;
}

long TraceRecorder::find_first(const std::string& name, u64 v,
                               std::size_t from) const {
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    if (probes_[p].name != name) {
      continue;
    }
    for (std::size_t s = from; s < samples_[p].size(); ++s) {
      if (samples_[p][s] == v) {
        return static_cast<long>(s);
      }
    }
    return -1;
  }
  return -1;
}

namespace {

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

std::string to_binary(u64 v, unsigned width) {
  std::string s(width, '0');
  for (unsigned b = 0; b < width; ++b) {
    if ((v >> b) & 1) {
      s[width - 1 - b] = '1';
    }
  }
  return s;
}

}  // namespace

bool TraceRecorder::write_vcd(const std::string& path,
                              const std::string& top_name) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "$date reproduction of Peterkin & Ionescu, Embedded MPLS "
         "Architecture $end\n";
  out << "$version embedded_mpls TraceRecorder $end\n";
  out << "$timescale 10ns $end\n";
  out << "$scope module " << top_name << " $end\n";
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    out << "$var wire " << probes_[p].width << ' ' << vcd_id(p) << ' '
        << probes_[p].name << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::vector<u64> last(probes_.size(), ~u64{0});
  for (std::size_t s = 0; s < cycles_.size(); ++s) {
    bool stamped = false;
    for (std::size_t p = 0; p < probes_.size(); ++p) {
      const u64 v = samples_[p][s];
      if (v == last[p]) {
        continue;
      }
      if (!stamped) {
        out << '#' << cycles_[s] << '\n';
        stamped = true;
      }
      if (probes_[p].width == 1) {
        out << (v & 1) << vcd_id(p) << '\n';
      } else {
        out << 'b' << to_binary(v, probes_[p].width) << ' ' << vcd_id(p)
            << '\n';
      }
      last[p] = v;
    }
  }
  out << '#' << (cycles_.empty() ? 0 : cycles_.back() + 1) << '\n';
  return static_cast<bool>(out);
}

std::string TraceRecorder::render_ascii(std::size_t first,
                                        std::size_t last) const {
  last = std::min(last, num_samples());
  if (first >= last) {
    return {};
  }
  std::ostringstream out;

  std::size_t name_w = 5;
  for (const Probe& p : probes_) {
    name_w = std::max(name_w, p.name.size());
  }

  // Header: cycle ruler, one label attempted every 10 columns (labels
  // that would overlap a previous one are dropped).
  std::string ruler;
  for (std::size_t s = first; s < last; ++s) {
    const std::size_t col = s - first;
    if (col % 10 == 0 && ruler.size() <= col) {
      ruler.append(col - ruler.size(), ' ');
      ruler += std::to_string(cycles_[s]);
    }
  }
  if (ruler.size() > last - first) {
    ruler.resize(last - first);
  }
  out << std::string(name_w, ' ') << " |" << ruler << '\n';

  for (std::size_t p = 0; p < probes_.size(); ++p) {
    out << probes_[p].name << std::string(name_w - probes_[p].name.size(), ' ')
        << " |";
    if (probes_[p].width == 1) {
      for (std::size_t s = first; s < last; ++s) {
        out << (samples_[p][s] ? '#' : '_');
      }
    } else {
      // Print the value at each change point, padded with '.' until the
      // next change.
      std::size_t s = first;
      while (s < last) {
        std::size_t run_end = s + 1;
        while (run_end < last && samples_[p][run_end] == samples_[p][s]) {
          ++run_end;
        }
        std::string v = std::to_string(samples_[p][s]);
        const std::size_t run = run_end - s;
        if (v.size() >= run) {
          v.resize(run > 0 ? run : 1);
          out << v;
        } else {
          out << v << std::string(run - v.size(), '.');
        }
        s = run_end;
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace empls::rtl
