// A clocked register with load-enable, modelled on the datapath's
// "new/modified label entry" register (Figure 12 of the paper).
//
// Control inputs (load) are applied by the driving module during its
// compute() phase; the new value becomes visible only after commit(),
// giving D-flip-flop semantics without any sensitivity to the order in
// which sibling modules' compute() methods run.
#pragma once

#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {

class Register : public SimObject {
 public:
  explicit Register(unsigned width, u64 reset_value = 0)
      : q_(width, reset_value), reset_value_(truncate(reset_value, width)) {}

  /// Committed register output.
  [[nodiscard]] u64 q() const noexcept { return q_.get(); }
  [[nodiscard]] unsigned width() const noexcept { return q_.width(); }

  /// Load `v` at the next clock edge (call during a compute phase).
  void load(u64 v) noexcept { q_.set(v); }

  void reset() override { q_.reset(reset_value_); }
  void compute() override {}
  void commit() override { q_.commit(); }

 private:
  WireU q_;
  u64 reset_value_;
};

}  // namespace empls::rtl
