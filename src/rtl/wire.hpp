// Registered signal primitives.
//
// Wire<T> is the kernel's unit of state: a value with a shadow "next"
// slot.  compute() phases write the shadow via set(); commit() makes it
// visible via get().  A Wire left unset during a cycle holds its value,
// like a flip-flop with a feedback mux.
//
// WireU is the width-checked unsigned specialisation used for datapath
// buses; Pulse is a one-cycle strobe that self-clears unless re-asserted.
#pragma once

#include <cassert>

#include "rtl/types.hpp"

namespace empls::rtl {

template <typename T>
class Wire {
 public:
  Wire() = default;
  explicit Wire(const T& initial) : cur_(initial), next_(initial) {}

  /// Committed value, as visible to every module this cycle.
  [[nodiscard]] const T& get() const noexcept { return cur_; }

  /// Schedule `v` to become visible after the next commit().
  void set(const T& v) noexcept { next_ = v; }

  /// Publish the scheduled value (called by the owning module's commit()).
  void commit() noexcept { cur_ = next_; }

  /// Synchronous reset to `v` (immediately visible).
  void reset(const T& v = T{}) noexcept {
    cur_ = v;
    next_ = v;
  }

 private:
  T cur_{};
  T next_{};
};

/// Unsigned bus of a fixed declared width.  Values are truncated to the
/// width on write, so the model cannot carry more state than the RTL
/// register it stands for.
class WireU {
 public:
  explicit WireU(unsigned width, u64 initial = 0)
      : width_(width), cur_(truncate(initial, width)), next_(cur_) {
    assert(width >= 1 && width <= 64);
  }

  [[nodiscard]] u64 get() const noexcept { return cur_; }
  [[nodiscard]] unsigned width() const noexcept { return width_; }

  void set(u64 v) noexcept { next_ = truncate(v, width_); }
  void commit() noexcept { cur_ = next_; }
  void reset(u64 v = 0) noexcept {
    cur_ = truncate(v, width_);
    next_ = cur_;
  }

 private:
  unsigned width_;
  u64 cur_;
  u64 next_;
};

/// One-cycle strobe: reads back high only for the cycle after fire() was
/// called.  Modules call clear() at the top of compute() and fire() when
/// the condition holds, giving VCD-visible single-cycle pulses such as the
/// paper's `lookup_done`.
class Pulse {
 public:
  [[nodiscard]] bool get() const noexcept { return cur_; }
  void fire() noexcept { next_ = true; }
  void clear() noexcept { next_ = false; }
  void commit() noexcept {
    cur_ = next_;
    next_ = false;
  }
  void reset() noexcept {
    cur_ = false;
    next_ = false;
  }

 private:
  bool cur_ = false;
  bool next_ = false;
};

}  // namespace empls::rtl
