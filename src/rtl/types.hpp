// Fixed-width integer aliases and bit-field utilities shared by the
// cycle-accurate hardware model.
//
// The label stack modifier manipulates narrow fields (20-bit labels,
// 3-bit CoS, 2-bit operations, 10-bit memory addresses).  All hardware
// values are carried in unsigned integers wide enough for the field and
// masked to their declared width at module boundaries, so a C++ value can
// never hold state that the modelled register could not.
#pragma once

#include <cstdint>
#include <cassert>
#include <type_traits>

namespace empls::rtl {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// All-ones mask for the low `bits` bits (bits in [0,64]).
constexpr u64 mask_width(unsigned bits) noexcept {
  return bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1;
}

/// Truncate `v` to `bits` bits, the way assignment to a hardware register
/// of that width would.
constexpr u64 truncate(u64 v, unsigned bits) noexcept {
  return v & mask_width(bits);
}

/// Extract the field of width `bits` starting at bit `lsb`.
constexpr u64 extract_bits(u64 v, unsigned lsb, unsigned bits) noexcept {
  return (v >> lsb) & mask_width(bits);
}

/// Return `v` with the field of width `bits` at `lsb` replaced by `field`.
constexpr u64 insert_bits(u64 v, unsigned lsb, unsigned bits,
                          u64 field) noexcept {
  const u64 m = mask_width(bits) << lsb;
  return (v & ~m) | ((field << lsb) & m);
}

/// True when `v` fits in `bits` bits.
constexpr bool fits(u64 v, unsigned bits) noexcept {
  return truncate(v, bits) == v;
}

}  // namespace empls::rtl
