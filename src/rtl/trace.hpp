// Waveform capture: probes, a per-cycle recorder, a VCD writer and an
// ASCII renderer.
//
// The paper's evaluation (Figures 14-16) consists of simulator waveform
// screenshots.  The benches reproduce them by attaching probes to the
// same signals (save, lookup, packetid / label_lookup, w_index, r_index,
// label_out, operation_out, lookup_done, packetdiscard), dumping a VCD
// file that any waveform viewer opens, and printing an ASCII rendering so
// the figure is visible directly in bench output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtl/simulator.hpp"
#include "rtl/types.hpp"

namespace empls::rtl {

/// A named signal to sample: `read` must return the committed value.
struct Probe {
  std::string name;
  unsigned width = 1;
  std::function<u64()> read;
};

/// Records the value of every probe at every clock edge.
class TraceRecorder {
 public:
  /// Attach to `sim`: installs itself as the simulator's sampler.
  explicit TraceRecorder(Simulator& sim);

  /// Add a probe before simulation starts.
  void add_probe(std::string name, unsigned width, std::function<u64()> read);

  /// Convenience for boolean strobes.
  void add_probe_bool(std::string name, std::function<bool()> read);

  [[nodiscard]] std::size_t num_samples() const noexcept {
    return samples_.empty() ? 0 : samples_.front().size();
  }
  [[nodiscard]] std::size_t num_probes() const noexcept {
    return probes_.size();
  }

  /// Value of probe `p` at sample (cycle) `s`.
  [[nodiscard]] u64 value(std::size_t p, std::size_t s) const;

  /// Value of the named probe at sample `s` (asserts the name exists).
  [[nodiscard]] u64 value(const std::string& name, std::size_t s) const;

  /// First sample index at which the named probe equals `v`, or -1.
  [[nodiscard]] long find_first(const std::string& name, u64 v,
                                std::size_t from = 0) const;

  /// Write the full trace as a VCD file (10 ns timescale = 100 MHz view;
  /// cycle numbers are what matter).  Returns false on I/O failure.
  bool write_vcd(const std::string& path,
                 const std::string& top_name = "label_stack_modifier") const;

  /// Render samples [first, last) as an ASCII waveform table, one row per
  /// probe.  Multi-bit probes print values at change points; single-bit
  /// probes print pulse art.
  [[nodiscard]] std::string render_ascii(std::size_t first,
                                         std::size_t last) const;

 private:
  void sample(u64 cycle);

  std::vector<Probe> probes_;
  // samples_[probe][cycle]
  std::vector<std::vector<u64>> samples_;
  std::vector<u64> cycles_;
};

}  // namespace empls::rtl
