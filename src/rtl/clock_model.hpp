// Cycle-count → wall-clock conversion.
//
// The paper evaluates the architecture on an Altera Stratix
// EP1S40F780C5 at 50 MHz and reports task times as cycles / f(clk)
// (Section 4: 6167 cycles ≈ 0.123 ms).  ClockModel encapsulates that
// conversion so benches and the network simulator charge hardware
// processing latency consistently.
#pragma once

#include <chrono>

#include "rtl/types.hpp"

namespace empls::rtl {

class ClockModel {
 public:
  /// Default frequency matches the paper's target device.
  static constexpr double kPaperFrequencyHz = 50.0e6;

  constexpr explicit ClockModel(double frequency_hz = kPaperFrequencyHz)
      : frequency_hz_(frequency_hz) {}

  [[nodiscard]] constexpr double frequency_hz() const noexcept {
    return frequency_hz_;
  }

  [[nodiscard]] constexpr double period_seconds() const noexcept {
    return 1.0 / frequency_hz_;
  }

  [[nodiscard]] constexpr double seconds(u64 cycles) const noexcept {
    return static_cast<double>(cycles) / frequency_hz_;
  }

  [[nodiscard]] constexpr double microseconds(u64 cycles) const noexcept {
    return seconds(cycles) * 1e6;
  }

  [[nodiscard]] constexpr double milliseconds(u64 cycles) const noexcept {
    return seconds(cycles) * 1e3;
  }

  /// Nanoseconds as a duration, rounded to the nearest integer ns.
  [[nodiscard]] std::chrono::nanoseconds duration(u64 cycles) const {
    return std::chrono::nanoseconds(
        static_cast<long long>(seconds(cycles) * 1e9 + 0.5));
  }

 private:
  double frequency_hz_;
};

}  // namespace empls::rtl
