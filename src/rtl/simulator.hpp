// Single-clock-domain simulation driver.
//
// A Simulator owns no hardware; modules register themselves (or are
// registered by their enclosing design) and the simulator advances the
// common clock: one step() = one rising edge = every module's compute()
// followed by every module's commit(), then one trace sample.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"

namespace empls::rtl {

class Simulator {
 public:
  /// Register a module.  Pointers are non-owning; modules must outlive
  /// the simulator.  Registration order does not affect results (see
  /// SimObject's two-phase contract).
  void add(SimObject* obj);

  /// Install a callback sampled once per clock edge, after commit.
  /// Used by the trace recorder.
  void set_sampler(std::function<void(u64 cycle)> sampler);

  /// Synchronously reset every module and the cycle counter.
  void reset();

  /// Advance one clock edge.
  void step();

  /// Advance `n` clock edges.
  void run(u64 n);

  /// Advance until `done()` is true, at most `max_cycles` edges.
  /// Returns the number of edges consumed, or `max_cycles` if the
  /// predicate never held (callers treat that as a timeout).
  u64 run_until(const std::function<bool()>& done, u64 max_cycles);

  /// Edges elapsed since the last reset().
  [[nodiscard]] u64 cycle() const noexcept { return cycle_; }

 private:
  std::vector<SimObject*> objects_;
  std::function<void(u64)> sampler_;
  u64 cycle_ = 0;
};

}  // namespace empls::rtl
