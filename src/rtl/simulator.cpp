#include "rtl/simulator.hpp"

#include <cassert>

namespace empls::rtl {

void Simulator::add(SimObject* obj) {
  assert(obj != nullptr);
  objects_.push_back(obj);
}

void Simulator::set_sampler(std::function<void(u64)> sampler) {
  sampler_ = std::move(sampler);
}

void Simulator::reset() {
  for (SimObject* o : objects_) {
    o->reset();
  }
  cycle_ = 0;
  if (sampler_) {
    sampler_(cycle_);
  }
}

void Simulator::step() {
  for (SimObject* o : objects_) {
    o->compute();
  }
  for (SimObject* o : objects_) {
    o->commit();
  }
  ++cycle_;
  if (sampler_) {
    sampler_(cycle_);
  }
}

void Simulator::run(u64 n) {
  for (u64 i = 0; i < n; ++i) {
    step();
  }
}

u64 Simulator::run_until(const std::function<bool()>& done, u64 max_cycles) {
  for (u64 i = 0; i < max_cycles; ++i) {
    if (done()) {
      return i;
    }
    step();
  }
  return max_cycles;
}

}  // namespace empls::rtl
