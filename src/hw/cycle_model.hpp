// Analytic cycle-cost model — Table 6 of the paper, plus derived
// quantities.  The RTL model in this directory is calibrated to land on
// these numbers exactly (tests/hw/test_timing.cpp asserts it); the
// network simulator and the benches use the closed forms when running
// the full RTL per packet would be wasteful.
#pragma once

#include "rtl/types.hpp"

namespace empls::hw {

/// Table 6, constant-time rows (worst-case clock cycles).
inline constexpr rtl::u64 kResetCycles = 3;
inline constexpr rtl::u64 kUserPushCycles = 3;
inline constexpr rtl::u64 kUserPopCycles = 3;
inline constexpr rtl::u64 kWritePairCycles = 3;

/// Reading a stored pair back by address (extension of the paper's
/// read-index data type): issue, wait, latch, handshake — constant.
inline constexpr rtl::u64 kReadPairCycles = 5;

/// Post-search tail of the update flow: SWAP and POP take 6 cycles, a
/// nested PUSH 7 (extra PUSH OLD state), an ingress PUSH 6.
inline constexpr rtl::u64 kSwapTailCycles = 6;
inline constexpr rtl::u64 kPopTailCycles = 6;
inline constexpr rtl::u64 kPushIngressTailCycles = 6;
inline constexpr rtl::u64 kPushNestedTailCycles = 7;

/// Tail of an update whose search missed (DISCARD PACKET + handshake).
inline constexpr rtl::u64 kMissDiscardTailCycles = 2;

/// Tail of an update whose verification failed (REMOVE TOP, UPDATE TTL,
/// VERIFY INFO, DISCARD, handshake).
inline constexpr rtl::u64 kVerifyDiscardTailCycles = 5;

/// Table 6: searching the information base costs 3n+5 cycles where n is
/// the number of entries examined (the stored total on a miss, the hit
/// position — 1-based — on a hit).
constexpr rtl::u64 search_cycles(rtl::u64 entries_examined) noexcept {
  return 3 * entries_examined + 5;
}

/// Full update-stack flows (search + tail).
constexpr rtl::u64 update_swap_cycles(rtl::u64 hit_position) noexcept {
  return search_cycles(hit_position) + kSwapTailCycles;
}
constexpr rtl::u64 update_pop_cycles(rtl::u64 hit_position) noexcept {
  return search_cycles(hit_position) + kPopTailCycles;
}
constexpr rtl::u64 update_push_cycles(rtl::u64 hit_position,
                                      bool stack_was_empty) noexcept {
  return search_cycles(hit_position) +
         (stack_was_empty ? kPushIngressTailCycles : kPushNestedTailCycles);
}
constexpr rtl::u64 update_miss_cycles(rtl::u64 stored_entries) noexcept {
  return search_cycles(stored_entries) + kMissDiscardTailCycles;
}

/// Section 4's worst case: reset, push three stack entries, fill an
/// entire level with `level_capacity` pairs, then swap with a
/// worst-position search.  6167 cycles for the paper's 1024-entry level.
constexpr rtl::u64 worst_case_cycles(rtl::u64 level_capacity = 1024) noexcept {
  return kResetCycles + 3 * kUserPushCycles +
         level_capacity * kWritePairCycles + update_swap_cycles(level_capacity);
}

static_assert(worst_case_cycles(1024) == 6167,
              "must reproduce the paper's Section 4 worst case");
static_assert(search_cycles(1024) == 3077);

}  // namespace empls::hw
