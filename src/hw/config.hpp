// Architectural parameters of the label stack modifier, fixed by the
// paper (Figures 12-13 and Section 4).
#pragma once

#include "rtl/types.hpp"

namespace empls::hw {

/// Information-base levels (one per label-stack nesting level).
inline constexpr unsigned kNumLevels = 3;

/// "Each memory component supports 1 KB of label pairs."
inline constexpr rtl::u64 kLevelDepth = 1024;

/// Index memory width per level: level 1 stores the 32-bit packet
/// identifier; levels 2 and 3 store 20-bit labels.
inline constexpr unsigned kIndexBitsLevel1 = 32;
inline constexpr unsigned kIndexBitsOther = 20;

inline constexpr unsigned kLabelMemBits = 20;
inline constexpr unsigned kOpMemBits = 2;

/// Address counters are 10 bits (1024 entries); occupancy counts need one
/// more bit to represent the "completely full" value 1024.
inline constexpr unsigned kAddrBits = 10;
inline constexpr unsigned kOccupancyBits = 11;

/// The hardware label stack holds at most three 32-bit entries.
inline constexpr unsigned kStackDepth = 3;
inline constexpr unsigned kStackEntryBits = 32;
inline constexpr unsigned kStackSizeBits = 2;

inline constexpr unsigned kTtlCounterBits = 8;

}  // namespace empls::hw
