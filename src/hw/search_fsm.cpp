#include "hw/search_fsm.hpp"

#include <cassert>

#include "hw/infobase_fsm.hpp"
#include "hw/stack_fsm.hpp"
#include "mpls/label.hpp"
#include "rtl/comparator.hpp"

namespace empls::hw {

void SearchFsm::reset() {
  state_.reset(State::kIdle);
  requester_ = Requester::kNone;
  level_ = 1;
  key_ = 0;
  total_ = 0;
  scanned_ = 0;
}

void SearchFsm::do_init() {
  // Latch the search parameters.  For the label stack interface the key
  // and level depend on the stack: an empty stack (ingress LER) searches
  // level 1 by packet identifier; otherwise the top label is looked up
  // at the caller-provided stack level.
  if (requester_ == Requester::kStack) {
    if (dp_->stack().empty()) {
      level_ = 1;
      key_ = inputs_->packet_identifier;
    } else {
      level_ = inputs_->level;
      key_ = mpls::decode(dp_->stack().top_word()).label;
    }
  } else {
    level_ = inputs_->level;
    key_ = inputs_->search_key;
  }
  assert(InfoBase::valid_level(level_));
  InfoBaseLevel& lvl = dp_->info_base().level(level_);
  lvl.clear_r_index();
  total_ = lvl.count();
  scanned_ = 0;
  dp_->item_found_wire().set(false);
}

void SearchFsm::do_compare() {
  InfoBaseLevel& lvl = dp_->info_base().level(level_);
  // The datapath's 32-bit comparator serves level 1 (packet identifiers)
  // and the 20-bit comparator serves levels 2 and 3 (labels).
  const bool match = rtl::compare_eq(lvl.index_out(), key_, lvl.index_bits());
  ++scanned_;
  if (match) {
    state_.set(State::kFound);
  } else if (scanned_ >= total_) {
    state_.set(State::kMiss);
  } else {
    lvl.advance_r_index();
    state_.set(State::kRead);
  }
}

void SearchFsm::compute() {
  switch (state_.get()) {
    case State::kIdle: {
      assert(stack_fsm_ != nullptr && ib_fsm_ != nullptr);
      if (stack_fsm_->search_requested()) {
        requester_ = Requester::kStack;
        state_.set(State::kInit);
      } else if (ib_fsm_->search_requested()) {
        requester_ = Requester::kInfoBase;
        state_.set(State::kInit);
      }
      break;
    }
    case State::kInit:
      do_init();
      state_.set(State::kPrime);
      break;
    case State::kPrime:
      // Pipeline-fill edge ("WAIT FOR READ VALUE"): r_index is now
      // committed at zero.  Empty levels have nothing to scan.
      state_.set(total_ == 0 ? State::kMiss : State::kRead);
      break;
    case State::kRead:
      dp_->info_base().level(level_).issue_read_at_r();
      state_.set(State::kWait);
      break;
    case State::kWait:
      // WAIT FOR INFO: the synchronous memories register their outputs.
      state_.set(State::kCompare);
      break;
    case State::kCompare:
      do_compare();
      break;
    case State::kFound: {
      InfoBaseLevel& lvl = dp_->info_base().level(level_);
      dp_->label_out_reg().load(lvl.label_out());
      dp_->operation_out_reg().load(lvl.op_out());
      dp_->item_found_wire().set(true);
      dp_->lookup_done_pulse().fire();
      state_.set(State::kIdle);
      break;
    }
    case State::kMiss:
      dp_->item_found_wire().set(false);
      dp_->lookup_done_pulse().fire();
      dp_->packet_discard_pulse().fire();
      state_.set(State::kIdle);
      break;
  }
}

void SearchFsm::commit() { state_.commit(); }

}  // namespace empls::hw
