// The label stack interface state machine (Figure 9).
//
// Direct user pushes and pops execute immediately (3-cycle operations).
// The update-stack command runs the full flow: SEARCH ENABLE →
// (miss → DISCARD PACKET) / (hit → REMOVE TOP → UPDATE TTL →
// VERIFY INFO → {UPDATE TOP | PUSH NEW | PUSH OLD→PUSH NEW}) → COMPLETE.
//
// Timing (calibrated against Table 6): the post-search portion of a SWAP
// or POP costs 6 cycles, a PUSH onto a non-empty stack 7; an ingress
// PUSH onto an empty stack skips PUSH OLD and also costs 6.
#pragma once

#include "hw/commands.hpp"
#include "hw/datapath.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class MainFsm;
class SearchFsm;

class StackFsm : public rtl::SimObject {
 public:
  enum class State : rtl::u8 {
    kIdle,
    kUserPush,
    kUserPop,
    kSearchEnable,
    kRemoveTop,
    kUpdateTtl,
    kVerify,
    kUpdateTop,  // pop: rewrite the newly exposed top's TTL
    kPushOld,    // push: re-push the original entry (decremented TTL)
    kPushNew,    // push/swap: push the entry carrying the new label
    kDiscard,    // reset the label stack, pulse packetdiscard
    kComplete,   // signal completion to the main interface
  };

  StackFsm(Datapath& dp, const CommandInputs& inputs)
      : dp_(&dp), inputs_(&inputs) {}

  void connect(const MainFsm* main_fsm, const SearchFsm* search_fsm) {
    main_fsm_ = main_fsm;
    search_fsm_ = search_fsm;
  }

  [[nodiscard]] State state() const noexcept { return state_.get(); }

  /// Combinational ready seen by the main interface.
  [[nodiscard]] bool ready() const noexcept {
    return state() == State::kIdle;
  }

  /// Combinational request seen by the search FSM.
  [[nodiscard]] bool search_requested() const noexcept {
    return state() == State::kSearchEnable;
  }

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  void do_dispatch();
  void do_remove_top();
  void do_verify();
  void do_push_new();

  /// Encode S bit from the committed (current) stack emptiness.
  [[nodiscard]] rtl::u32 with_s_bit(rtl::u32 word) const noexcept;

  Datapath* dp_;
  const CommandInputs* inputs_;
  const MainFsm* main_fsm_ = nullptr;
  const SearchFsm* search_fsm_ = nullptr;

  rtl::Wire<State> state_{State::kIdle};

  // Latched at dispatch / along the flow.
  bool was_empty_ = false;    // stack empty when the update began
  rtl::u8 orig_ttl_ = 0;      // TTL before decrement (expiry check)
  rtl::u64 orig_size_ = 0;    // stack size when the update began
};

}  // namespace empls::hw
