// The information base: three levels of (index, label, operation)
// memories with read/write address counters (Figures 12-13).
//
// Level 1 is keyed by the 32-bit packet identifier; levels 2 and 3 by a
// 20-bit label.  Each level holds up to 1024 label pairs appended in
// write order; `w_index` counts occupancy and `r_index` is the search
// scan position the paper's Figures 14-16 plot.
#pragma once

#include <array>
#include <memory>

#include "hw/config.hpp"
#include "rtl/counter.hpp"
#include "rtl/memory.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"

namespace empls::hw {

/// One level: index / label / operation memory components plus the two
/// address counters of Figure 13.
class InfoBaseLevel : public rtl::SimObject {
 public:
  explicit InfoBaseLevel(unsigned index_bits)
      : index_bits_(index_bits),
        index_mem_(index_bits, kLevelDepth),
        label_mem_(kLabelMemBits, kLevelDepth),
        op_mem_(kOpMemBits, kLevelDepth),
        w_index_(kOccupancyBits),
        r_index_(kOccupancyBits) {}

  [[nodiscard]] unsigned index_bits() const noexcept { return index_bits_; }

  /// Occupancy: number of stored pairs (the paper's `w_index`).
  [[nodiscard]] rtl::u64 count() const noexcept { return w_index_.q(); }
  [[nodiscard]] bool full() const noexcept { return count() >= kLevelDepth; }

  /// Current scan position (the paper's `r_index`).
  [[nodiscard]] rtl::u64 r_index() const noexcept { return r_index_.q(); }

  // ---- datapath actions (call during a compute phase) ----

  /// Append a pair at w_index and advance it.  Ignored when full (the
  /// level keeps its contents; callers observe full() beforehand).
  void issue_write_pair(rtl::u64 index, rtl::u64 label, rtl::u64 op);

  /// Reset the scan position to entry 0.
  void clear_r_index() { r_index_.clear(); }

  /// Issue synchronous reads of all three components at r_index; data is
  /// valid on the read ports one cycle later.
  void issue_read_at_r();

  /// Issue reads at a direct address (the read-address mux's external
  /// path, used by the read-pair command).  Same one-cycle latency.
  void issue_read_at(rtl::u64 addr);

  /// Advance the scan position by one entry.
  void advance_r_index() { r_index_.increment(); }

  /// Forget all stored pairs (occupancy to zero; cells keep stale data,
  /// as clearing a real BRAM would take 1024 cycles the paper's 3-cycle
  /// reset does not spend).
  void clear_occupancy() { w_index_.clear(); }

  // ---- registered read ports (valid one cycle after issue_read_at_r) ----
  [[nodiscard]] rtl::u64 index_out() const noexcept {
    return index_mem_.read_data();
  }
  [[nodiscard]] rtl::u64 label_out() const noexcept {
    return label_mem_.read_data();
  }
  [[nodiscard]] rtl::u64 op_out() const noexcept { return op_mem_.read_data(); }

  // ---- test backdoors ----
  [[nodiscard]] rtl::u64 peek_index(rtl::u64 addr) const {
    return index_mem_.peek(addr);
  }
  [[nodiscard]] rtl::u64 peek_label(rtl::u64 addr) const {
    return label_mem_.peek(addr);
  }
  [[nodiscard]] rtl::u64 peek_op(rtl::u64 addr) const {
    return op_mem_.peek(addr);
  }

  /// Fault-injection backdoor: overwrite the stored label at `addr`
  /// directly, as a single-event upset in the label BRAM would.  The
  /// entry keeps its index and operation, so lookups still hit it — and
  /// return the garbled label.
  void poke_label(rtl::u64 addr, rtl::u64 value) {
    label_mem_.poke(addr, value);
  }

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  unsigned index_bits_;
  rtl::SyncMemory index_mem_;
  rtl::SyncMemory label_mem_;
  rtl::SyncMemory op_mem_;
  rtl::Counter w_index_;
  rtl::Counter r_index_;
};

/// The three-level information base.
class InfoBase : public rtl::SimObject {
 public:
  InfoBase();

  /// Level access, `level` in 1..3 (the paper numbers levels from 1).
  [[nodiscard]] InfoBaseLevel& level(unsigned level);
  [[nodiscard]] const InfoBaseLevel& level(unsigned level) const;

  /// True when `level` is a valid level number.
  [[nodiscard]] static constexpr bool valid_level(unsigned level) noexcept {
    return level >= 1 && level <= kNumLevels;
  }

  /// Drop all stored pairs in every level (the reset flow).
  void clear_all_occupancy();

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  // Level 1 has the wide (32-bit) index memory.
  std::array<std::unique_ptr<InfoBaseLevel>, kNumLevels> levels_;
};

}  // namespace empls::hw
