#include "hw/packet_pipeline.hpp"

#include <cassert>

namespace empls::hw {

PacketPipeline::PacketPipeline(RouterType type, unsigned bus_bytes_per_cycle)
    : type_(type), bus_bytes_(bus_bytes_per_cycle) {
  assert(bus_bytes_ >= 1);
  // The pipeline FSM shares the modifier's clock.
  modifier_.sim().add(this);
  reset();
}

void PacketPipeline::reset() {
  state_.reset(State::kIdle);
  wire_in_.clear();
  parsed_ = mpls::Packet();
  level_ = 1;
  dma_remaining_ = 0;
  push_index_ = 0;
  command_issued_ = false;
  discarded_ = false;
  ttl_after_ = 0;
  drained_.clear();
  ingress_count_ = 0;
  update_count_ = 0;
  egress_count_ = 0;
}

void PacketPipeline::compute() {
  switch (state_.get()) {
    case State::kIdle:
    case State::kDone:
      break;

    case State::kLoadHeader:
      ++ingress_count_;
      if (--dma_remaining_ == 0) {
        if (parsed_.stack.empty()) {
          state_.set(parsed_.payload.empty() ? State::kPushStack
                                             : State::kLoadPayload);
          dma_remaining_ = dma_cycles(parsed_.payload.size());
        } else {
          state_.set(State::kLoadShim);
          dma_remaining_ = parsed_.stack.size();  // one word per entry
        }
      }
      break;

    case State::kLoadShim:
      ++ingress_count_;
      if (--dma_remaining_ == 0) {
        if (parsed_.payload.empty()) {
          state_.set(State::kPushStack);
        } else {
          state_.set(State::kLoadPayload);
          dma_remaining_ = dma_cycles(parsed_.payload.size());
        }
      }
      break;

    case State::kLoadPayload:
      ++ingress_count_;
      if (--dma_remaining_ == 0) {
        state_.set(State::kPushStack);
      }
      break;

    case State::kPushStack:
      // Handshake: issue a command when the modifier is ready, observe
      // its completion on the next ready edge (one acknowledge edge per
      // command, on top of the modifier's own 3 cycles).
      ++ingress_count_;
      if (modifier_.ready()) {
        if (command_issued_) {
          command_issued_ = false;
          ++push_index_;
        }
        if (push_index_ >= parsed_.stack.size()) {
          // Stack delivered; hand over to the modifier.
          modifier_.issue_update(level_, type_, parsed_.packet_identifier(),
                                 parsed_.cos, parsed_.ip_ttl);
          command_issued_ = true;
          state_.set(State::kUpdate);
        } else {
          // Push bottom-first so the hardware rebuilds the stack in
          // order (wire order is top first).
          const auto depth = parsed_.stack.size() - 1 - push_index_;
          modifier_.issue_user_push(parsed_.stack.at(depth));
          command_issued_ = true;
        }
      }
      break;

    case State::kUpdate:
      ++update_count_;
      discarded_ = discarded_ || modifier_.packet_discard();
      if (modifier_.ready() && command_issued_) {
        command_issued_ = false;
        ttl_after_ = static_cast<rtl::u8>(modifier_.datapath().ttl());
        state_.set(discarded_ ? State::kDone : State::kDrainStack);
      }
      break;

    case State::kDrainStack:
      ++egress_count_;
      if (modifier_.ready()) {
        if (command_issued_) {
          command_issued_ = false;
        }
        if (modifier_.stack_size() == 0) {
          state_.set(State::kEmit);
          // Emit the rebuilt wire image: header + new shim + payload.
          const std::size_t out_bytes = mpls::kPacketHeaderBytes +
                                        drained_.size() * 4 +
                                        parsed_.payload.size();
          dma_remaining_ = dma_cycles(out_bytes);
        } else {
          drained_.push_back(
              modifier_.stack_view().top());  // capture before the pop
          modifier_.issue_user_pop();
          command_issued_ = true;
        }
      }
      break;

    case State::kEmit:
      ++egress_count_;
      if (--dma_remaining_ == 0) {
        state_.set(State::kDone);
      }
      break;
  }
}

void PacketPipeline::commit() { state_.commit(); }

PacketPipeline::Result PacketPipeline::process(const mpls::Packet& in,
                                               unsigned level) {
  assert(state_.get() == State::kIdle || state_.get() == State::kDone);
  Result result;

  // Wire-level entry: the pipeline consumes the serialised packet, so a
  // malformed wire image is rejected before any cycles are charged
  // (mirroring the parser logic a real header-validation stage runs as
  // the bytes stream in).
  wire_in_ = in.serialize();
  const auto reparsed = mpls::Packet::parse(wire_in_);
  if (!reparsed) {
    result.malformed = true;
    return result;
  }
  parsed_ = *reparsed;
  parsed_.id = in.id;
  parsed_.flow_id = in.flow_id;
  parsed_.created_at = in.created_at;
  level_ = level;
  dma_remaining_ = dma_cycles(mpls::kPacketHeaderBytes);
  push_index_ = 0;
  command_issued_ = false;
  discarded_ = false;
  drained_.clear();
  ingress_count_ = 0;
  update_count_ = 0;
  egress_count_ = 0;
  state_.reset(State::kLoadHeader);

  const rtl::u64 start = modifier_.sim().cycle();
  const rtl::u64 consumed = modifier_.sim().run_until(
      [this] { return state_.get() == State::kDone; }, 1u << 20);
  assert(consumed < (1u << 20) && "pipeline wedged");
  (void)consumed;
  result.cycles = modifier_.sim().cycle() - start;
  result.ingress_cycles = ingress_count_;
  result.update_cycles = update_count_;
  result.egress_cycles = egress_count_;
  result.discarded = discarded_;
  result.applied = discarded_
                       ? mpls::LabelOp::kNop
                       : static_cast<mpls::LabelOp>(modifier_.operation_out());
  state_.reset(State::kIdle);

  if (!discarded_) {
    // Rebuild the outgoing packet: original header/payload with the
    // modified label stack (drained top-first).
    result.packet = parsed_;
    result.packet.stack.clear();
    for (auto it = drained_.rbegin(); it != drained_.rend(); ++it) {
      result.packet.stack.push(*it);
    }
    if (result.packet.stack.empty()) {
      result.packet.ip_ttl = ttl_after_;  // egress TTL write-back
    }
  }
  return result;
}

}  // namespace empls::hw
