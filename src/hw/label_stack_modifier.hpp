// Top level of the embedded label stack modifier (Figure 7): control
// unit (four state machines) + data path, clocked by a Simulator.
//
// Usage: issue_* sets the primary inputs (the caller is the packet
// processing interface or the routing functionality), then run_to_idle()
// advances the clock until the main interface returns to IDLE, returning
// the cycle count — the quantity Table 6 reports.  The blocking wrappers
// (search(), update(), ...) bundle issue + run + result extraction.
#pragma once

#include <cassert>

#include "hw/commands.hpp"
#include "hw/cycle_model.hpp"
#include "hw/datapath.hpp"
#include "hw/infobase_fsm.hpp"
#include "hw/main_fsm.hpp"
#include "hw/search_fsm.hpp"
#include "hw/stack_fsm.hpp"
#include "mpls/label.hpp"
#include "mpls/label_stack.hpp"
#include "mpls/operations.hpp"
#include "mpls/tables.hpp"
#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"

namespace empls::hw {

class LabelStackModifier {
 public:
  LabelStackModifier();
  LabelStackModifier(const LabelStackModifier&) = delete;
  LabelStackModifier& operator=(const LabelStackModifier&) = delete;

  // ---- non-blocking command interface (primary inputs) ----
  void issue_reset();
  void issue_user_push(const mpls::LabelEntry& entry);
  void issue_user_pop();
  void issue_write_pair(unsigned level, const mpls::LabelPair& pair);
  void issue_search(unsigned level, rtl::u32 key);
  void issue_read_pair(unsigned level, rtl::u16 address);
  void issue_update(unsigned level, RouterType type, rtl::u32 packet_id,
                    rtl::u8 cos_in, rtl::u8 ttl_in);

  /// Advance the clock until the architecture is idle again; returns the
  /// number of cycles consumed (asserts if `max_cycles` is exceeded).
  rtl::u64 run_to_idle(rtl::u64 max_cycles = 1u << 20);

  // ---- blocking wrappers ----
  struct SearchResult {
    bool found = false;
    rtl::u32 label = 0;
    rtl::u8 operation = 0;
    rtl::u64 cycles = 0;
  };
  struct UpdateResult {
    bool discarded = false;
    mpls::LabelOp applied = mpls::LabelOp::kNop;  // kNop when discarded
    rtl::u64 cycles = 0;
  };

  struct ReadPairResult {
    bool valid = false;  // address below the level's occupancy
    mpls::LabelPair pair;
    rtl::u64 cycles = 0;
  };

  rtl::u64 do_reset();
  rtl::u64 user_push(const mpls::LabelEntry& entry);
  rtl::u64 user_pop();
  rtl::u64 write_pair(unsigned level, const mpls::LabelPair& pair);
  SearchResult search(unsigned level, rtl::u32 key);
  ReadPairResult read_pair(unsigned level, rtl::u16 address);
  UpdateResult update(unsigned level, RouterType type, rtl::u32 packet_id,
                      rtl::u8 cos_in = 0, rtl::u8 ttl_in = 0);

  // ---- state inspection ----
  [[nodiscard]] bool ready() const noexcept {
    return main_.idle() && inputs_.op == ExtOp::kNone;
  }
  /// Decoded copy of the hardware label stack (bottom..top re-derived).
  [[nodiscard]] mpls::LabelStack stack_view() const;
  [[nodiscard]] rtl::u64 stack_size() const noexcept {
    return dp_.stack().size();
  }
  [[nodiscard]] rtl::u32 label_out() const noexcept { return dp_.label_out(); }
  [[nodiscard]] rtl::u8 operation_out() const noexcept {
    return dp_.operation_out();
  }
  [[nodiscard]] bool item_found() const noexcept { return dp_.item_found(); }
  [[nodiscard]] bool lookup_done() const noexcept {
    return dp_.lookup_done();
  }
  [[nodiscard]] bool packet_discard() const noexcept {
    return dp_.packet_discard();
  }
  [[nodiscard]] rtl::u64 level_count(unsigned level) const {
    return dp_.info_base().level(level).count();
  }

  rtl::Simulator& sim() noexcept { return sim_; }
  Datapath& datapath() noexcept { return dp_; }
  [[nodiscard]] const Datapath& datapath() const noexcept { return dp_; }
  [[nodiscard]] const CommandInputs& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const MainFsm& main_fsm() const noexcept { return main_; }
  [[nodiscard]] const StackFsm& stack_fsm() const noexcept { return stack_; }
  [[nodiscard]] const InfoBaseFsm& infobase_fsm() const noexcept {
    return ib_;
  }
  [[nodiscard]] const SearchFsm& search_fsm() const noexcept {
    return search_;
  }

  /// Attach the signal set the paper's Figures 14-16 plot, scoped to one
  /// information-base level.
  void attach_figure_probes(rtl::TraceRecorder& trace, unsigned level);

 private:
  CommandInputs inputs_;
  Datapath dp_;
  MainFsm main_;
  StackFsm stack_;
  InfoBaseFsm ib_;
  SearchFsm search_;
  rtl::Simulator sim_;
};

}  // namespace empls::hw
