#include "hw/datapath.hpp"

namespace empls::hw {

void Datapath::issue_clear_stack_side() {
  stack_.issue_clear();
  ttl_counter_.clear();
  current_entry_.load(0);
}

void Datapath::issue_clear_info_side() {
  info_base_.clear_all_occupancy();
  label_out_.load(0);
  operation_out_.load(0);
  index_out_.load(0);
  item_found_.set(false);
}

void Datapath::reset() {
  stack_.reset();
  info_base_.reset();
  ttl_counter_.reset();
  current_entry_.reset();
  label_out_.reset();
  operation_out_.reset();
  index_out_.reset();
  item_found_.reset(false);
  lookup_done_.reset();
  packet_discard_.reset();
}

void Datapath::compute() {
  stack_.compute();
  info_base_.compute();
  ttl_counter_.compute();
  current_entry_.compute();
  label_out_.compute();
  operation_out_.compute();
  index_out_.compute();
}

void Datapath::commit() {
  stack_.commit();
  info_base_.commit();
  ttl_counter_.commit();
  current_entry_.commit();
  label_out_.commit();
  operation_out_.commit();
  index_out_.commit();
  item_found_.commit();
  lookup_done_.commit();
  packet_discard_.commit();
}

}  // namespace empls::hw
