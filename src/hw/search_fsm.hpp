// The search state machine (Figure 11).
//
// Enabled by either the label stack interface (update-stack flow) or the
// information base interface (bare lookup).  Scans the occupied entries
// of one information-base level linearly; on a hit it latches the stored
// label and operation into the datapath's result registers and pulses
// lookup_done; on a miss it pulses lookup_done and packetdiscard.
//
// Timing (calibrated against Table 6): a search that examines k entries
// completes in 3k+5 cycles measured at the modifier's interface —
// 2 dispatch edges (main/requester handoff), INIT, PRIME (the paper's
// "WAIT FOR READ VALUE" pipeline-fill state), then 3 cycles per entry
// (READ / WAIT FOR INFO / COMPARE), and one result edge.
#pragma once

#include "hw/commands.hpp"
#include "hw/datapath.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class StackFsm;
class InfoBaseFsm;

class SearchFsm : public rtl::SimObject {
 public:
  enum class State : rtl::u8 {
    kIdle,
    kInit,     // latch key/level/occupancy, clear r_index
    kPrime,    // pipeline fill; routes empty levels straight to kMiss
    kRead,     // issue synchronous reads at r_index
    kWait,     // WAIT FOR INFO: memory output registering
    kCompare,  // comparator decides hit / next entry / exhausted
    kFound,    // latch label_out/operation_out, pulse lookup_done
    kMiss,     // pulse lookup_done + packetdiscard
  };

  SearchFsm(Datapath& dp, const CommandInputs& inputs)
      : dp_(&dp), inputs_(&inputs) {}

  /// Wire up requesters (called once by the top level).
  void connect(const StackFsm* stack_fsm, const InfoBaseFsm* ib_fsm) {
    stack_fsm_ = stack_fsm;
    ib_fsm_ = ib_fsm;
  }

  [[nodiscard]] State state() const noexcept { return state_.get(); }
  [[nodiscard]] bool idle() const noexcept { return state() == State::kIdle; }

  /// Combinational "search complete" strobe: true during the terminal
  /// (kFound / kMiss) action edge.  Requesters and the look-through
  /// ready chain key off this.
  [[nodiscard]] bool finished() const noexcept {
    return state() == State::kFound || state() == State::kMiss;
  }

  /// Valid during finished(): did the scan hit?
  [[nodiscard]] bool found() const noexcept {
    return state() == State::kFound;
  }

  /// Scan statistics for tests: entries examined by the last search.
  [[nodiscard]] rtl::u64 entries_examined() const noexcept {
    return scanned_;
  }

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  enum class Requester : rtl::u8 { kNone, kStack, kInfoBase };

  void do_init();
  void do_compare();

  Datapath* dp_;
  const CommandInputs* inputs_;
  const StackFsm* stack_fsm_ = nullptr;
  const InfoBaseFsm* ib_fsm_ = nullptr;

  rtl::Wire<State> state_{State::kIdle};

  // Internal registers of the search datapath (latched at dispatch/INIT).
  Requester requester_ = Requester::kNone;
  unsigned level_ = 1;
  rtl::u64 key_ = 0;
  rtl::u64 total_ = 0;    // occupancy of the level when the search began
  rtl::u64 scanned_ = 0;  // entries compared so far
};

}  // namespace empls::hw
