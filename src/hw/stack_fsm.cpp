#include "hw/stack_fsm.hpp"

#include <cassert>

#include "hw/main_fsm.hpp"
#include "hw/search_fsm.hpp"
#include "mpls/label.hpp"
#include "mpls/operations.hpp"

namespace empls::hw {

using mpls::LabelOp;

rtl::u32 StackFsm::with_s_bit(rtl::u32 word) const noexcept {
  return static_cast<rtl::u32>(
      rtl::insert_bits(word, 8, 1, dp_->stack().empty() ? 1 : 0));
}

void StackFsm::reset() {
  state_.reset(State::kIdle);
  was_empty_ = false;
  orig_ttl_ = 0;
  orig_size_ = 0;
}

void StackFsm::do_dispatch() {
  switch (inputs_->op) {
    case ExtOp::kUserPush:
      state_.set(State::kUserPush);
      break;
    case ExtOp::kUserPop:
      state_.set(State::kUserPop);
      break;
    case ExtOp::kUpdateStack:
      was_empty_ = dp_->stack().empty();
      orig_size_ = dp_->stack().size();
      state_.set(State::kSearchEnable);
      break;
    default:
      break;  // not a label stack operation
  }
}

void StackFsm::do_remove_top() {
  if (!was_empty_) {
    const rtl::u32 top = dp_->stack().top_word();
    dp_->current_entry().load(top);
    orig_ttl_ = mpls::decode(top).ttl;
    dp_->ttl_counter().load(orig_ttl_);
    dp_->stack().issue_pop();
  } else {
    // Ingress: nothing to remove; the TTL comes from the control path
    // (the paper's `ttlsource` mux selecting the external value).
    dp_->current_entry().load(0);
    orig_ttl_ = inputs_->ttl_in;
    dp_->ttl_counter().load(orig_ttl_);
  }
  state_.set(State::kUpdateTtl);
}

void StackFsm::do_verify() {
  const auto op = static_cast<LabelOp>(dp_->operation_out());

  // TTL expired after the decrement?  orig_ttl_ <= 1 covers both the
  // decrement-to-zero case and a malformed zero input that would wrap.
  const bool ttl_expired = orig_ttl_ <= 1;

  bool consistent = true;
  switch (op) {
    case LabelOp::kNop:
      consistent = false;  // empty info-base slot: nothing to apply
      break;
    case LabelOp::kPop:
    case LabelOp::kSwap:
      // Cannot pop/swap a label that was never there.
      consistent = !was_empty_;
      break;
    case LabelOp::kPush:
      // Result depth is orig_size_+1; the hardware stack holds 3.
      consistent = orig_size_ < kStackDepth;
      break;
  }
  // An LSR must not process unlabeled packets (level-1 lookups are the
  // ingress LER's job — the paper's `rtrtype` signal).
  if (was_empty_ && inputs_->router_type == RouterType::kLsr) {
    consistent = false;
  }
  if (was_empty_ && op != LabelOp::kPush) {
    consistent = false;
  }

  if (ttl_expired || !consistent) {
    state_.set(State::kDiscard);
    return;
  }
  switch (op) {
    case LabelOp::kPop:
      state_.set(State::kUpdateTop);
      break;
    case LabelOp::kSwap:
      state_.set(State::kPushNew);
      break;
    case LabelOp::kPush:
      state_.set(was_empty_ ? State::kPushNew : State::kPushOld);
      break;
    case LabelOp::kNop:
      state_.set(State::kDiscard);  // unreachable; defensive
      break;
  }
}

void StackFsm::do_push_new() {
  // Build the entry that carries the new label.  CoS comes from the
  // removed entry (swap / nested push) or the control path (ingress
  // push); the TTL is the decremented counter value; the S bit reflects
  // the committed (post-remove / post-push-old) stack occupancy.
  const rtl::u8 cos = was_empty_
                          ? inputs_->cos_in
                          : mpls::decode(dp_->current_entry_word()).cos;
  mpls::LabelEntry e;
  e.label = dp_->label_out();
  e.cos = cos;
  e.ttl = static_cast<rtl::u8>(dp_->ttl());
  e.bottom = false;  // overwritten by with_s_bit
  dp_->stack().issue_push(with_s_bit(mpls::encode(e)));
  state_.set(State::kComplete);
}

void StackFsm::compute() {
  switch (state_.get()) {
    case State::kIdle:
      assert(main_fsm_ != nullptr);
      if (main_fsm_->grant_label()) {
        do_dispatch();
      }
      break;
    case State::kUserPush:
      if (dp_->stack().full()) {
        dp_->packet_discard_pulse().fire();
      } else {
        dp_->stack().issue_push(with_s_bit(inputs_->stack_entry_in));
      }
      state_.set(State::kIdle);
      break;
    case State::kUserPop:
      dp_->stack().issue_pop();
      state_.set(State::kIdle);
      break;
    case State::kSearchEnable:
      assert(search_fsm_ != nullptr);
      if (search_fsm_->finished()) {
        state_.set(search_fsm_->found() ? State::kRemoveTop
                                        : State::kDiscard);
      }
      break;
    case State::kRemoveTop:
      do_remove_top();
      break;
    case State::kUpdateTtl:
      dp_->ttl_counter().decrement();
      state_.set(State::kVerify);
      break;
    case State::kVerify:
      do_verify();
      break;
    case State::kUpdateTop: {
      // Pop: propagate the decremented TTL into the newly exposed top
      // entry ("modifying the new top stack entry for pop").  Popping
      // the last label leaves the stack empty; nothing to rewrite.
      if (!dp_->stack().empty()) {
        rtl::u32 w = dp_->stack().top_word();
        w = static_cast<rtl::u32>(
            rtl::insert_bits(w, 0, 8, dp_->ttl()));
        dp_->stack().issue_rewrite_top(w);
      }
      state_.set(State::kComplete);
      break;
    }
    case State::kPushOld: {
      // Push flow: re-push the removed entry with the decremented TTL.
      rtl::u32 w = dp_->current_entry_word();
      w = static_cast<rtl::u32>(rtl::insert_bits(w, 0, 8, dp_->ttl()));
      dp_->stack().issue_push(with_s_bit(w));
      state_.set(State::kPushNew);
      break;
    }
    case State::kPushNew:
      do_push_new();
      break;
    case State::kDiscard:
      dp_->stack().issue_clear();
      dp_->packet_discard_pulse().fire();
      state_.set(State::kIdle);
      break;
    case State::kComplete:
      state_.set(State::kIdle);
      break;
  }
}

void StackFsm::commit() { state_.commit(); }

}  // namespace empls::hw
