#include "hw/main_fsm.hpp"

#include <cassert>

#include "hw/infobase_fsm.hpp"
#include "hw/stack_fsm.hpp"

namespace empls::hw {

void MainFsm::reset() {
  state_.reset(State::kIdle);
  consume_op_ = false;
}

void MainFsm::compute() {
  switch (state_.get()) {
    case State::kIdle:
      if (inputs_->op == ExtOp::kReset) {
        state_.set(State::kReset1);
        consume_op_ = true;
      } else if (grant_label()) {
        state_.set(State::kLabelActive);
        consume_op_ = true;
      } else if (grant_info_base()) {
        state_.set(State::kInfoBaseActive);
        consume_op_ = true;
      }
      break;
    case State::kReset1:
      dp_->issue_clear_stack_side();
      state_.set(State::kReset2);
      break;
    case State::kReset2:
      dp_->issue_clear_info_side();
      state_.set(State::kIdle);
      break;
    case State::kLabelActive:
      assert(stack_fsm_ != nullptr);
      if (stack_fsm_->ready()) {
        state_.set(State::kIdle);
      }
      break;
    case State::kInfoBaseActive:
      assert(ib_fsm_ != nullptr);
      if (ib_fsm_->ready()) {
        state_.set(State::kIdle);
      }
      break;
  }
}

void MainFsm::commit() {
  state_.commit();
  if (consume_op_) {
    inputs_->op = ExtOp::kNone;
    consume_op_ = false;
  }
}

}  // namespace empls::hw
