// The information base interface state machine (Figure 10).
//
// Enabled by the main interface for the two user-facing information-base
// operations: writing a label pair (WRITE PAIR, a direct datapath
// manipulation) and reading data (SEARCH ENABLE, which hands off to the
// search state machine and waits for it).
#pragma once

#include "hw/commands.hpp"
#include "hw/datapath.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class MainFsm;
class SearchFsm;

class InfoBaseFsm : public rtl::SimObject {
 public:
  enum class State : rtl::u8 {
    kIdle,
    kWritePair,     // append (index, label, op) at the level's w_index
    kSearchEnable,  // search FSM active on our behalf
    kReadIssue,     // read-pair: drive the external read address
    kReadWait,      // read-pair: memory output registering
    kReadLatch,     // read-pair: capture into the output registers
  };

  InfoBaseFsm(Datapath& dp, const CommandInputs& inputs)
      : dp_(&dp), inputs_(&inputs) {}

  void connect(const MainFsm* main_fsm, const SearchFsm* search_fsm) {
    main_fsm_ = main_fsm;
    search_fsm_ = search_fsm;
  }

  [[nodiscard]] State state() const noexcept { return state_.get(); }

  /// Combinational ready seen by the main interface.  Looks through to
  /// the search FSM's terminal edge so a bare lookup completes in
  /// exactly 3k+5 cycles end to end.
  [[nodiscard]] bool ready() const noexcept;

  /// Combinational request seen by the search FSM.
  [[nodiscard]] bool search_requested() const noexcept {
    return state() == State::kSearchEnable;
  }

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  Datapath* dp_;
  const CommandInputs* inputs_;
  const MainFsm* main_fsm_ = nullptr;
  const SearchFsm* search_fsm_ = nullptr;

  rtl::Wire<State> state_{State::kIdle};
};

}  // namespace empls::hw
