// The main interface state machine (Figure 8).
//
// Serialises the architecture: at most one of the label stack interface
// and the information base interface is active at a time.  Grants are
// Mealy (combinational) outputs of the committed IDLE state plus the
// pending external operation, so the granted FSM dispatches on the same
// edge the main interface leaves IDLE — the handshake the 3-cycle
// user-operation timings of Table 6 require.
//
// The main interface also owns the 3-cycle architecture reset (clear the
// stack side, then the information-base side) and consumes the external
// operation code at dispatch.
#pragma once

#include "hw/commands.hpp"
#include "hw/datapath.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class StackFsm;
class InfoBaseFsm;

class MainFsm : public rtl::SimObject {
 public:
  enum class State : rtl::u8 {
    kIdle,
    kReset1,         // clear label stack, TTL counter, entry register
    kReset2,         // clear information-base occupancy, result registers
    kLabelActive,    // label stack interface owns the datapath
    kInfoBaseActive  // information base interface owns the datapath
  };

  MainFsm(Datapath& dp, CommandInputs& inputs) : dp_(&dp), inputs_(&inputs) {}

  void connect(const StackFsm* stack_fsm, const InfoBaseFsm* ib_fsm) {
    stack_fsm_ = stack_fsm;
    ib_fsm_ = ib_fsm;
  }

  [[nodiscard]] State state() const noexcept { return state_.get(); }
  [[nodiscard]] bool idle() const noexcept { return state() == State::kIdle; }

  /// Combinational grant to the label stack interface.
  [[nodiscard]] bool grant_label() const noexcept {
    return idle() && (inputs_->op == ExtOp::kUserPush ||
                      inputs_->op == ExtOp::kUserPop ||
                      inputs_->op == ExtOp::kUpdateStack);
  }

  /// Combinational grant to the information base interface.
  [[nodiscard]] bool grant_info_base() const noexcept {
    return idle() && (inputs_->op == ExtOp::kWritePair ||
                      inputs_->op == ExtOp::kSearch ||
                      inputs_->op == ExtOp::kReadPair);
  }

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  Datapath* dp_;
  CommandInputs* inputs_;
  const StackFsm* stack_fsm_ = nullptr;
  const InfoBaseFsm* ib_fsm_ = nullptr;

  rtl::Wire<State> state_{State::kIdle};
  bool consume_op_ = false;  // clear inputs_->op at this edge's commit
};

}  // namespace empls::hw
