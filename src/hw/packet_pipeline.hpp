// Hardware packet processing interface (Figure 6's third block).
//
// The paper leaves ingress/egress packet processing "in either domain";
// this is the hardware option: a store-and-forward pipeline clocked on
// the same simulator as the label stack modifier, moving packet bytes
// over a 32-bit bus (4 bytes per cycle at the paper's 50 MHz ≈ 1.6 Gb/s
// of packet bandwidth) and driving the modifier's command interface
// directly:
//
//   INGRESS  load header (4 cycles) → load shim (1 cycle / entry) →
//            load payload (1 cycle / 4 bytes) →
//            push entries bottom-first into the modifier (3 cycles each)
//   UPDATE   the modifier's update-stack flow (Table 6 cycles)
//   EGRESS   drain the modified stack (user pop, 3 cycles / entry) →
//            emit header + new shim + payload (1 cycle / 4 bytes)
//
// The pipeline FSM reports a per-phase cycle breakdown, which
// bench_pipeline (X8) compares against software packet processing.
#pragma once

#include <vector>

#include "hw/label_stack_modifier.hpp"
#include "mpls/packet.hpp"

namespace empls::hw {

class PacketPipeline : public rtl::SimObject {
 public:
  enum class State : rtl::u8 {
    kIdle,
    kLoadHeader,   // DMA the 16-byte header
    kLoadShim,     // DMA shim words (one stack entry per cycle)
    kLoadPayload,  // DMA payload bytes, 4 per cycle
    kPushStack,    // hand entries to the modifier, bottom first
    kUpdate,       // modifier runs the update-stack flow
    kDrainStack,   // pop the modified stack back out, top first
    kEmit,         // serialise header + new shim + payload
    kDone,
  };

  struct Result {
    mpls::Packet packet;     // valid when !discarded && !malformed
    bool discarded = false;  // modifier discarded the packet
    bool malformed = false;  // wire parse failed at ingress
    mpls::LabelOp applied = mpls::LabelOp::kNop;  // operation_out register
    rtl::u64 cycles = 0;     // total pipeline occupancy
    rtl::u64 ingress_cycles = 0;
    rtl::u64 update_cycles = 0;
    rtl::u64 egress_cycles = 0;
  };

  /// `bus_bytes_per_cycle`: DMA width (the paper-era default is a
  /// 32-bit bus).
  explicit PacketPipeline(RouterType type, unsigned bus_bytes_per_cycle = 4);

  /// Process one packet through ingress → modifier → egress and return
  /// the rebuilt packet plus the cycle breakdown.  `level` is the
  /// information-base level for labeled packets (the stack-level input).
  Result process(const mpls::Packet& in, unsigned level);

  LabelStackModifier& modifier() noexcept { return modifier_; }
  [[nodiscard]] const LabelStackModifier& modifier() const noexcept {
    return modifier_;
  }
  [[nodiscard]] State state() const noexcept { return state_.get(); }

  // SimObject (the pipeline FSM itself).
  void reset() override;
  void compute() override;
  void commit() override;

 private:
  [[nodiscard]] rtl::u64 dma_cycles(std::size_t bytes) const noexcept {
    return (bytes + bus_bytes_ - 1) / bus_bytes_;
  }

  RouterType type_;
  unsigned bus_bytes_;
  LabelStackModifier modifier_;

  rtl::Wire<State> state_{State::kIdle};

  // Per-packet working set (loaded by process(), consumed by compute()).
  std::vector<rtl::u8> wire_in_;
  mpls::Packet parsed_;
  unsigned level_ = 1;
  rtl::u64 dma_remaining_ = 0;  // cycles left in the current DMA burst
  std::size_t push_index_ = 0;  // next stack entry to push (bottom first)
  bool command_issued_ = false;
  bool discarded_ = false;
  rtl::u8 ttl_after_ = 0;
  std::vector<mpls::LabelEntry> drained_;  // top first
  // Phase accounting (cycles counted by phase at each edge).
  rtl::u64 ingress_count_ = 0;
  rtl::u64 update_count_ = 0;
  rtl::u64 egress_count_ = 0;
};

}  // namespace empls::hw
