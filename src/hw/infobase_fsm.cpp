#include "hw/infobase_fsm.hpp"

#include <cassert>

#include "hw/main_fsm.hpp"
#include "hw/search_fsm.hpp"

namespace empls::hw {

bool InfoBaseFsm::ready() const noexcept {
  if (state() == State::kIdle) {
    return true;
  }
  // Look through to the search FSM's terminal edge so main returns to
  // IDLE on the same edge we do (bare lookup = 3k+5 cycles total).
  return state() == State::kSearchEnable && search_fsm_ != nullptr &&
         search_fsm_->finished();
}

void InfoBaseFsm::reset() { state_.reset(State::kIdle); }

void InfoBaseFsm::compute() {
  switch (state_.get()) {
    case State::kIdle: {
      assert(main_fsm_ != nullptr);
      if (main_fsm_->grant_info_base()) {
        switch (inputs_->op) {
          case ExtOp::kWritePair:
            state_.set(State::kWritePair);
            break;
          case ExtOp::kReadPair:
            state_.set(State::kReadIssue);
            break;
          default:
            state_.set(State::kSearchEnable);
            break;
        }
      }
      break;
    }
    case State::kWritePair: {
      assert(InfoBase::valid_level(inputs_->level));
      dp_->info_base()
          .level(inputs_->level)
          .issue_write_pair(inputs_->pair_index, inputs_->pair_label,
                            inputs_->pair_op);
      state_.set(State::kIdle);
      break;
    }
    case State::kSearchEnable:
      assert(search_fsm_ != nullptr);
      if (search_fsm_->finished()) {
        state_.set(State::kIdle);
      }
      break;
    case State::kReadIssue: {
      assert(InfoBase::valid_level(inputs_->level));
      const rtl::u64 addr =
          rtl::truncate(inputs_->read_address, kAddrBits);
      dp_->info_base().level(inputs_->level).issue_read_at(addr);
      state_.set(State::kReadWait);
      break;
    }
    case State::kReadWait:
      state_.set(State::kReadLatch);
      break;
    case State::kReadLatch: {
      const InfoBaseLevel& lvl = dp_->info_base().level(inputs_->level);
      dp_->index_out_reg().load(lvl.index_out());
      dp_->label_out_reg().load(lvl.label_out());
      dp_->operation_out_reg().load(lvl.op_out());
      state_.set(State::kIdle);
      break;
    }
  }
}

void InfoBaseFsm::commit() { state_.commit(); }

}  // namespace empls::hw
