#include "hw/info_base.hpp"

#include <cassert>

namespace empls::hw {

void InfoBaseLevel::issue_write_pair(rtl::u64 index, rtl::u64 label,
                                     rtl::u64 op) {
  const rtl::u64 addr = count();
  if (addr >= kLevelDepth) {
    return;  // level full: write is dropped
  }
  index_mem_.issue_write(addr, index);
  label_mem_.issue_write(addr, label);
  op_mem_.issue_write(addr, op);
  w_index_.increment();
}

void InfoBaseLevel::issue_read_at_r() { issue_read_at(r_index_.q()); }

void InfoBaseLevel::issue_read_at(rtl::u64 addr) {
  assert(addr < kLevelDepth);
  index_mem_.issue_read(addr);
  label_mem_.issue_read(addr);
  op_mem_.issue_read(addr);
}

void InfoBaseLevel::reset() {
  index_mem_.reset();
  label_mem_.reset();
  op_mem_.reset();
  w_index_.reset();
  r_index_.reset();
}

void InfoBaseLevel::compute() {
  index_mem_.compute();
  label_mem_.compute();
  op_mem_.compute();
  w_index_.compute();
  r_index_.compute();
}

void InfoBaseLevel::commit() {
  index_mem_.commit();
  label_mem_.commit();
  op_mem_.commit();
  w_index_.commit();
  r_index_.commit();
}

InfoBase::InfoBase() {
  levels_[0] = std::make_unique<InfoBaseLevel>(kIndexBitsLevel1);
  for (unsigned i = 1; i < kNumLevels; ++i) {
    levels_[i] = std::make_unique<InfoBaseLevel>(kIndexBitsOther);
  }
}

InfoBaseLevel& InfoBase::level(unsigned level) {
  assert(valid_level(level));
  return *levels_[level - 1];
}

const InfoBaseLevel& InfoBase::level(unsigned level) const {
  assert(valid_level(level));
  return *levels_[level - 1];
}

void InfoBase::clear_all_occupancy() {
  for (auto& l : levels_) {
    l->clear_occupancy();
  }
}

void InfoBase::reset() {
  for (auto& l : levels_) {
    l->reset();
  }
}

void InfoBase::compute() {
  for (auto& l : levels_) {
    l->compute();
  }
}

void InfoBase::commit() {
  for (auto& l : levels_) {
    l->commit();
  }
}

}  // namespace empls::hw
