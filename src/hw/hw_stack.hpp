// The hardware label stack: three 32-bit entry registers and a size
// counter (the STACK block plus "Number of stack items" of Figure 12).
//
// The stack stores *encoded* entries (mpls::encode format).  Entry 0 is
// the bottom; the top is entry size-1.  Push/pop/rewrite are datapath
// actions issued during a compute phase and visible one edge later.
#pragma once

#include <array>

#include "hw/config.hpp"
#include "rtl/counter.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/types.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class HwLabelStack : public rtl::SimObject {
 public:
  HwLabelStack()
      : entries_{rtl::WireU(kStackEntryBits), rtl::WireU(kStackEntryBits),
                 rtl::WireU(kStackEntryBits)},
        size_(kStackSizeBits) {}

  [[nodiscard]] rtl::u64 size() const noexcept { return size_.q(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] bool full() const noexcept { return size() >= kStackDepth; }

  /// Committed top-of-stack word.  Meaningless when empty.
  [[nodiscard]] rtl::u32 top_word() const noexcept {
    const rtl::u64 s = size();
    return s == 0 ? 0 : static_cast<rtl::u32>(entries_[s - 1].get());
  }

  /// Committed word at depth `i` from the bottom (0 = bottom).
  [[nodiscard]] rtl::u32 word_at(unsigned i) const noexcept {
    return static_cast<rtl::u32>(entries_[i].get());
  }

  // ---- datapath actions (call during a compute phase) ----

  /// Push `word` on top.  Undefined if full (callers verify first; the
  /// verify state of the control unit discards such packets).
  void issue_push(rtl::u32 word) {
    const rtl::u64 s = size();
    if (s < kStackDepth) {
      entries_[s].set(word);
      size_.increment();
    }
  }

  /// Remove the top entry (callers read top_word() in the same phase to
  /// capture it, as the datapath's entry register does).
  void issue_pop() {
    if (size() > 0) {
      size_.decrement();
    }
  }

  /// Overwrite the top entry in place.
  void issue_rewrite_top(rtl::u32 word) {
    const rtl::u64 s = size();
    if (s > 0) {
      entries_[s - 1].set(word);
    }
  }

  /// Empty the stack (packet discard / reset).
  void issue_clear() { size_.clear(); }

  void reset() override {
    for (auto& e : entries_) {
      e.reset(0);
    }
    size_.reset();
  }

  void compute() override { size_.compute(); }

  void commit() override {
    for (auto& e : entries_) {
      e.commit();
    }
    size_.commit();
  }

 private:
  std::array<rtl::WireU, kStackDepth> entries_;
  rtl::Counter size_;
};

}  // namespace empls::hw
