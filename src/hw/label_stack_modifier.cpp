#include "hw/label_stack_modifier.hpp"

namespace empls::hw {

LabelStackModifier::LabelStackModifier()
    : main_(dp_, inputs_),
      stack_(dp_, inputs_),
      ib_(dp_, inputs_),
      search_(dp_, inputs_) {
  main_.connect(&stack_, &ib_);
  stack_.connect(&main_, &search_);
  ib_.connect(&main_, &search_);
  search_.connect(&stack_, &ib_);
  sim_.add(&dp_);
  sim_.add(&main_);
  sim_.add(&stack_);
  sim_.add(&ib_);
  sim_.add(&search_);
  sim_.reset();
}

void LabelStackModifier::issue_reset() {
  assert(ready());
  inputs_.op = ExtOp::kReset;
}

void LabelStackModifier::issue_user_push(const mpls::LabelEntry& entry) {
  assert(ready());
  inputs_.op = ExtOp::kUserPush;
  inputs_.stack_entry_in = mpls::encode(entry);
}

void LabelStackModifier::issue_user_pop() {
  assert(ready());
  inputs_.op = ExtOp::kUserPop;
}

void LabelStackModifier::issue_write_pair(unsigned level,
                                          const mpls::LabelPair& pair) {
  assert(ready());
  assert(InfoBase::valid_level(level));
  inputs_.op = ExtOp::kWritePair;
  inputs_.level = static_cast<rtl::u8>(level);
  inputs_.pair_index = pair.index;
  inputs_.pair_label = pair.new_label;
  inputs_.pair_op = static_cast<rtl::u8>(pair.op);
}

void LabelStackModifier::issue_search(unsigned level, rtl::u32 key) {
  assert(ready());
  assert(InfoBase::valid_level(level));
  inputs_.op = ExtOp::kSearch;
  inputs_.level = static_cast<rtl::u8>(level);
  inputs_.search_key = key;
}

void LabelStackModifier::issue_read_pair(unsigned level, rtl::u16 address) {
  assert(ready());
  assert(InfoBase::valid_level(level));
  inputs_.op = ExtOp::kReadPair;
  inputs_.level = static_cast<rtl::u8>(level);
  inputs_.read_address = address;
}

void LabelStackModifier::issue_update(unsigned level, RouterType type,
                                      rtl::u32 packet_id, rtl::u8 cos_in,
                                      rtl::u8 ttl_in) {
  assert(ready());
  assert(InfoBase::valid_level(level));
  inputs_.op = ExtOp::kUpdateStack;
  inputs_.level = static_cast<rtl::u8>(level);
  inputs_.router_type = type;
  inputs_.packet_identifier = packet_id;
  inputs_.cos_in = cos_in;
  inputs_.ttl_in = ttl_in;
}

rtl::u64 LabelStackModifier::run_to_idle(rtl::u64 max_cycles) {
  rtl::u64 n = 0;
  do {
    sim_.step();
    ++n;
  } while (!ready() && n < max_cycles);
  assert(ready() && "label stack modifier wedged: max_cycles exceeded");
  return n;
}

rtl::u64 LabelStackModifier::do_reset() {
  issue_reset();
  return run_to_idle();
}

rtl::u64 LabelStackModifier::user_push(const mpls::LabelEntry& entry) {
  issue_user_push(entry);
  return run_to_idle();
}

rtl::u64 LabelStackModifier::user_pop() {
  issue_user_pop();
  return run_to_idle();
}

rtl::u64 LabelStackModifier::write_pair(unsigned level,
                                        const mpls::LabelPair& pair) {
  issue_write_pair(level, pair);
  return run_to_idle();
}

LabelStackModifier::SearchResult LabelStackModifier::search(unsigned level,
                                                            rtl::u32 key) {
  issue_search(level, key);
  SearchResult r;
  r.cycles = run_to_idle();
  r.found = item_found();
  if (r.found) {
    r.label = label_out();
    r.operation = operation_out();
  }
  return r;
}

LabelStackModifier::ReadPairResult LabelStackModifier::read_pair(
    unsigned level, rtl::u16 address) {
  const bool valid = address < level_count(level);
  issue_read_pair(level, address);
  ReadPairResult r;
  r.cycles = run_to_idle();
  r.valid = valid;
  r.pair.index = dp_.index_out();
  r.pair.new_label = label_out();
  r.pair.op = static_cast<mpls::LabelOp>(operation_out());
  return r;
}

LabelStackModifier::UpdateResult LabelStackModifier::update(
    unsigned level, RouterType type, rtl::u32 packet_id, rtl::u8 cos_in,
    rtl::u8 ttl_in) {
  issue_update(level, type, packet_id, cos_in, ttl_in);
  UpdateResult r;
  // packet_discard is a one-cycle pulse; watch for it while running.
  rtl::u64 n = 0;
  bool discarded = false;
  do {
    sim_.step();
    ++n;
    discarded = discarded || packet_discard();
  } while (!ready());
  r.cycles = n;
  r.discarded = discarded;
  r.applied = discarded ? mpls::LabelOp::kNop
                        : static_cast<mpls::LabelOp>(operation_out());
  return r;
}

mpls::LabelStack LabelStackModifier::stack_view() const {
  mpls::LabelStack out;
  const rtl::u64 n = dp_.stack().size();
  for (rtl::u64 i = 0; i < n; ++i) {
    out.push(mpls::decode(dp_.stack().word_at(static_cast<unsigned>(i))));
  }
  return out;
}

void LabelStackModifier::attach_figure_probes(rtl::TraceRecorder& trace,
                                              unsigned level) {
  assert(InfoBase::valid_level(level));
  const InfoBaseLevel& lvl = dp_.info_base().level(level);
  // Names follow the paper's Figures 14-16.
  trace.add_probe("level", 2, [level]() -> rtl::u64 { return level; });
  trace.add_probe_bool("save", [this] {
    return ib_.state() == InfoBaseFsm::State::kWritePair;
  });
  trace.add_probe_bool("lookup",
                       [this] { return !search_.idle(); });
  if (level == 1) {
    // Figure 14 drives `packetid` both when saving pairs and when looking
    // one up; mirror that by showing whichever role is active.
    trace.add_probe("packetid", 32, [this]() -> rtl::u64 {
      return ib_.state() == InfoBaseFsm::State::kWritePair
                 ? inputs_.pair_index
                 : inputs_.search_key;
    });
  } else {
    trace.add_probe("label_lookup", 20,
                    [this]() -> rtl::u64 { return inputs_.search_key; });
    trace.add_probe("old_label", 20,
                    [this]() -> rtl::u64 { return inputs_.pair_index; });
  }
  trace.add_probe("new_label", 20,
                  [this]() -> rtl::u64 { return inputs_.pair_label; });
  trace.add_probe("operation_in", 2,
                  [this]() -> rtl::u64 { return inputs_.pair_op; });
  trace.add_probe("w_index", 11, [&lvl]() -> rtl::u64 { return lvl.count(); });
  trace.add_probe("r_index", 11,
                  [&lvl]() -> rtl::u64 { return lvl.r_index(); });
  trace.add_probe("label_out", 20,
                  [this]() -> rtl::u64 { return label_out(); });
  trace.add_probe("operation_out", 2,
                  [this]() -> rtl::u64 { return operation_out(); });
  trace.add_probe_bool("lookup_done", [this] { return lookup_done(); });
  trace.add_probe_bool("packetdiscard", [this] { return packet_discard(); });
}

}  // namespace empls::hw
