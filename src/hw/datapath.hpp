// The label stack modifier data path (Figure 12).
//
// Aggregates the hardware label stack, the information base, the TTL
// counter, the current-entry register (the entry being modified), the
// search-result registers (label_out / operation_out, what Figures 14-16
// plot), and the output strobes lookup_done / packetdiscard.
//
// The control unit's state machines drive these elements during their
// compute phases; the data path owns the storage and the clocking.
#pragma once

#include "hw/config.hpp"
#include "hw/hw_stack.hpp"
#include "hw/info_base.hpp"
#include "rtl/counter.hpp"
#include "rtl/register.hpp"
#include "rtl/sim_object.hpp"
#include "rtl/wire.hpp"

namespace empls::hw {

class Datapath : public rtl::SimObject {
 public:
  Datapath() = default;

  HwLabelStack& stack() noexcept { return stack_; }
  const HwLabelStack& stack() const noexcept { return stack_; }

  InfoBase& info_base() noexcept { return info_base_; }
  const InfoBase& info_base() const noexcept { return info_base_; }

  rtl::Counter& ttl_counter() noexcept { return ttl_counter_; }
  [[nodiscard]] rtl::u64 ttl() const noexcept { return ttl_counter_.q(); }

  /// Register holding the stack entry currently being modified (the
  /// word captured by REMOVE TOP).
  rtl::Register& current_entry() noexcept { return current_entry_; }
  [[nodiscard]] rtl::u32 current_entry_word() const noexcept {
    return static_cast<rtl::u32>(current_entry_.q());
  }

  // ---- search result ports (Figures 14-16 signals) ----
  rtl::Register& label_out_reg() noexcept { return label_out_; }
  rtl::Register& operation_out_reg() noexcept { return operation_out_; }
  [[nodiscard]] rtl::u32 label_out() const noexcept {
    return static_cast<rtl::u32>(label_out_.q());
  }
  [[nodiscard]] rtl::u8 operation_out() const noexcept {
    return static_cast<rtl::u8>(operation_out_.q());
  }

  /// Read-pair output: the stored index at the probed address (the
  /// label/operation reuse label_out / operation_out).
  rtl::Register& index_out_reg() noexcept { return index_out_; }
  [[nodiscard]] rtl::u32 index_out() const noexcept {
    return static_cast<rtl::u32>(index_out_.q());
  }

  rtl::Wire<bool>& item_found_wire() noexcept { return item_found_; }
  [[nodiscard]] bool item_found() const noexcept { return item_found_.get(); }

  rtl::Pulse& lookup_done_pulse() noexcept { return lookup_done_; }
  [[nodiscard]] bool lookup_done() const noexcept {
    return lookup_done_.get();
  }

  rtl::Pulse& packet_discard_pulse() noexcept { return packet_discard_; }
  [[nodiscard]] bool packet_discard() const noexcept {
    return packet_discard_.get();
  }

  /// Clear stack-side state (reset phase 1).
  void issue_clear_stack_side();

  /// Clear info-base occupancy and result registers (reset phase 2).
  void issue_clear_info_side();

  void reset() override;
  void compute() override;
  void commit() override;

 private:
  HwLabelStack stack_;
  InfoBase info_base_;
  rtl::Counter ttl_counter_{kTtlCounterBits};
  rtl::Register current_entry_{kStackEntryBits};
  rtl::Register label_out_{kLabelMemBits};
  rtl::Register operation_out_{kOpMemBits};
  rtl::Register index_out_{kIndexBitsLevel1};
  rtl::Wire<bool> item_found_{false};
  rtl::Pulse lookup_done_;
  rtl::Pulse packet_discard_;
};

}  // namespace empls::hw
