// Primary inputs of the label stack modifier.
//
// These correspond to the external signals of Figure 7: the desired
// operation (`extOperation`), the data-in bus with its data-type selector
// (stack entry / label pair / search index), the stack level, the router
// type, and the packet identifier.  Inputs are level-sensitive: the
// caller sets them and they stay stable until the main interface consumes
// the operation at dispatch (which clears `op` only — data fields persist
// for the duration of the operation, as a held bus would).
#pragma once

#include "rtl/types.hpp"

namespace empls::hw {

enum class ExtOp : rtl::u8 {
  kNone = 0,
  kReset,        // re-initialise the whole architecture
  kUserPush,     // push a stack entry supplied on data-in
  kUserPop,      // pop the top stack entry
  kUpdateStack,  // full update flow: search info base, then push/pop/swap
  kWritePair,    // store a label pair into an information-base level
  kSearch,       // bare information-base lookup (the "read data" command)
  kReadPair,     // read the pair stored at an address (the paper's
                 // "search index when the user wants to read the
                 // contents of the information base directly")
};

enum class RouterType : rtl::u8 {
  kLer = 0,  // label edge router (logic low in the paper)
  kLsr = 1,  // label switch router (logic high)
};

struct CommandInputs {
  ExtOp op = ExtOp::kNone;

  // kUserPush: the 32-bit encoded stack entry to push.
  rtl::u32 stack_entry_in = 0;

  // kWritePair: the label pair to store.
  rtl::u32 pair_index = 0;  // packet identifier (level 1) or label
  rtl::u32 pair_label = 0;  // 20-bit new label
  rtl::u8 pair_op = 0;      // 2-bit operation code

  // kWritePair / kSearch / kUpdateStack: target level, 1..3 (the
  // "Stack level" input of Figure 7).
  rtl::u8 level = 1;

  // kSearch: the lookup key (`packetid` for level 1, `label_lookup`
  // for levels 2 and 3 in the paper's simulations).
  rtl::u32 search_key = 0;

  // kReadPair: the entry address to read back (10 bits).
  rtl::u16 read_address = 0;

  // kUpdateStack context.
  RouterType router_type = RouterType::kLsr;
  rtl::u32 packet_identifier = 0;  // level-1 key when the stack is empty
  rtl::u8 cos_in = 0;              // CoS from the control path (ingress push)
  rtl::u8 ttl_in = 0;              // TTL from the control path (ingress push)
};

}  // namespace empls::hw
