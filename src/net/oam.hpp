// MPLS OAM: LSP ping and traceroute (in the spirit of RFC 4379).
//
// Operating an MPLS network requires verifying that LSPs actually carry
// traffic end to end, and locating the hop that black-holes them when
// they do not:
//
//   * lsp_ping injects a probe at the ingress and reports whether (and
//     where, and when) it left the MPLS domain — or which router
//     discarded it and why;
//   * lsp_traceroute injects probes with increasing IP TTL; each one
//     expires one hop deeper (the routers' TTL handling discards it and
//     reports the location), mapping the LSP's data-plane path hop by
//     hop, exactly the trick IP traceroute plays.
//
// Probes are ordinary packets with flow ids from a reserved OAM range,
// observed through the network's delivery/discard handler multicast.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace empls::net {

/// Flow ids at and above this value are OAM probes.
inline constexpr std::uint32_t kOamFlowBase = 0xFFF00000;

class Oam {
 public:
  explicit Oam(Network& net);
  Oam(const Oam&) = delete;
  Oam& operator=(const Oam&) = delete;

  struct PingResult {
    bool reachable = false;
    std::optional<NodeId> egress;        // where it left the domain
    std::optional<NodeId> discarded_at;  // or where it died
    std::string discard_reason;
    SimTime latency = 0.0;  // injection to delivery/discard observation
  };
  using PingCallback = std::function<void(const PingResult&)>;

  /// Probe the LSP carrying `dst` from `ingress`.  `done` fires (via
  /// the event queue) on delivery, discard, or after `timeout`.
  void lsp_ping(NodeId ingress, mpls::Ipv4Address dst, PingCallback done,
                SimTime timeout = 1.0, std::uint8_t cos = 6);

  struct TracerouteHop {
    unsigned ttl;         // probe TTL that produced this answer
    NodeId node;          // who answered
    bool is_egress;       // delivered (end of path) vs TTL expiry
    SimTime latency;      // injection to observation
  };
  struct TracerouteResult {
    std::vector<TracerouteHop> hops;
    bool complete = false;  // reached the egress
  };
  using TracerouteCallback = std::function<void(const TracerouteResult&)>;

  /// Map the data-plane path toward `dst` hop by hop (probes with TTL
  /// 1, 2, ... up to `max_ttl`, sent sequentially).
  void lsp_traceroute(NodeId ingress, mpls::Ipv4Address dst,
                      TracerouteCallback done, unsigned max_ttl = 16,
                      SimTime per_probe_timeout = 0.5,
                      std::uint8_t cos = 6);

 private:
  struct Probe {
    std::uint32_t flow_id;
    SimTime injected_at;
    bool settled = false;
    std::function<void(bool delivered, NodeId where,
                       std::string_view reason)>
        observe;
  };

  void settle(std::uint32_t flow, bool delivered, NodeId where,
              std::string_view reason);
  std::uint32_t inject_probe(NodeId ingress, mpls::Ipv4Address dst,
                             std::uint8_t cos, std::uint8_t ttl,
                             SimTime timeout,
                             std::function<void(bool, NodeId,
                                                std::string_view)>
                                 observe);
  void traceroute_step(std::shared_ptr<TracerouteResult> result,
                       NodeId ingress, mpls::Ipv4Address dst, unsigned ttl,
                       unsigned max_ttl, SimTime timeout, std::uint8_t cos,
                       TracerouteCallback done);

  Network* net_;
  std::uint32_t next_flow_ = kOamFlowBase;
  std::vector<Probe> probes_;
};

}  // namespace empls::net
