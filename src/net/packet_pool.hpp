// Slab-arena packet pool and the move-only handle packets travel in.
//
// The seed simulator copied a heap-backed mpls::Packet into heap-backed
// closures at every hop; the profile was dominated by allocator traffic,
// not label processing.  PacketPool carves packets out of fixed slabs
// and recycles them through a freelist, and PacketHandle is the 16-byte
// token that moves through links, CoS queues and routers instead.  A
// recycled packet keeps its payload and label-stack buffer capacity, so
// steady-state forwarding (acquire → hop → hop → deliver → release)
// performs zero heap allocations per hop.
//
// PacketHandle also wraps a bare mpls::Packet (implicitly, heap-owned):
// compatibility call sites and tests keep working, they just don't get
// the recycling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mpls/packet.hpp"

namespace empls::net {

class PacketPool;

class PacketHandle {
 public:
  PacketHandle() noexcept = default;

  /// Heap-fallback wrap: owns a copy of `packet` outside any pool.  The
  /// implicit conversion keeps `inject(node, some_packet)`-style call
  /// sites working.
  PacketHandle(mpls::Packet&& packet)  // NOLINT(google-explicit-constructor)
      : p_(new mpls::Packet(std::move(packet))) {}

  PacketHandle(PacketHandle&& other) noexcept
      : p_(std::exchange(other.p_, nullptr)),
        pool_(std::exchange(other.pool_, nullptr)) {}

  PacketHandle& operator=(PacketHandle&& other) noexcept {
    if (this != &other) {
      reset();
      p_ = std::exchange(other.p_, nullptr);
      pool_ = std::exchange(other.pool_, nullptr);
    }
    return *this;
  }

  PacketHandle(const PacketHandle&) = delete;
  PacketHandle& operator=(const PacketHandle&) = delete;

  ~PacketHandle() { reset(); }

  [[nodiscard]] mpls::Packet& operator*() const noexcept { return *p_; }
  [[nodiscard]] mpls::Packet* operator->() const noexcept { return p_; }
  [[nodiscard]] mpls::Packet* get() const noexcept { return p_; }

  [[nodiscard]] explicit operator bool() const noexcept {
    return p_ != nullptr;
  }
  /// Optional-style spelling, so call sites written against the old
  /// std::optional<mpls::Packet> queue API read unchanged.
  [[nodiscard]] bool has_value() const noexcept { return p_ != nullptr; }

  /// Return the packet to its pool (or free it) and empty the handle.
  void reset() noexcept;

 private:
  friend class PacketPool;
  PacketHandle(mpls::Packet* p, PacketPool* pool) noexcept
      : p_(p), pool_(pool) {}

  mpls::Packet* p_ = nullptr;
  PacketPool* pool_ = nullptr;  // nullptr → heap-owned fallback
};

class PacketPool {
 public:
  /// `slab_packets` is the arena growth quantum: when the freelist runs
  /// dry a slab of this many packets is carved at once.
  explicit PacketPool(std::size_t slab_packets = 256)
      : slab_packets_(slab_packets == 0 ? 1 : slab_packets) {}

  // Handles hold raw pointers into the slabs; the pool must not move.
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A fresh (default-state) packet.  Recycled packets keep their buffer
  /// capacity, so a warmed-up pool allocates nothing here.
  [[nodiscard]] PacketHandle acquire();

  /// Benchmark baseline switch: with pooling off, acquire() news and
  /// release deletes — the seed's one-allocation-per-packet behaviour.
  void set_pooling(bool enabled) noexcept { pooling_ = enabled; }
  [[nodiscard]] bool pooling() const noexcept { return pooling_; }

  struct Stats {
    std::uint64_t acquired = 0;   // total acquire() calls
    std::uint64_t recycled = 0;   // acquires served from the freelist
    std::size_t in_use = 0;       // live pooled handles right now
    std::size_t high_water = 0;   // peak concurrent pooled handles
    std::size_t capacity = 0;     // packets across all slabs
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend class PacketHandle;
  void release(mpls::Packet* p) noexcept;

  std::size_t slab_packets_;
  bool pooling_ = true;
  std::vector<std::unique_ptr<mpls::Packet[]>> slabs_;
  std::vector<mpls::Packet*> free_;
  Stats stats_;
};

inline void PacketHandle::reset() noexcept {
  if (p_ == nullptr) {
    return;
  }
  if (pool_ != nullptr) {
    pool_->release(p_);
  } else {
    delete p_;
  }
  p_ = nullptr;
  pool_ = nullptr;
}

}  // namespace empls::net
