// Hello-protocol failure detection and automatic LSP restoration.
//
// Real MPLS deployments do not reroute by divine intervention: an IGP
// hello protocol notices a dead link after a dead-interval, and the
// control plane then re-signals the affected LSPs.  FailureDetector
// models exactly that: it polls watched connections every
// `hello_interval`; a connection down for `dead_multiplier` consecutive
// hellos is declared failed, and every live LSP crossing it is rerouted
// through ControlPlane::reroute_lsp.  Detection latency — the window in
// which traffic blackholes — is therefore hello_interval x
// dead_multiplier, the standard IGP tuning knob.
//
// Recovered links are noticed the same way and simply become available
// to future path computations (no automatic re-optimisation).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ldp.hpp"
#include "net/network.hpp"

namespace empls::net {

class FailureDetector {
 public:
  FailureDetector(Network& net, ControlPlane& cp,
                  SimTime hello_interval = 10e-3,
                  unsigned dead_multiplier = 3)
      : net_(&net),
        cp_(&cp),
        hello_(hello_interval),
        dead_multiplier_(dead_multiplier) {}
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Watch the connection a—b (both directions).
  void watch(NodeId a, NodeId b);

  /// Watch every connection in the network's current topology.
  void watch_all();

  /// Arm the hello timer (idempotent).  The timer stops rescheduling
  /// past `stop_at`, so event-queue drains terminate — pass the
  /// simulation horizon.  A horizon closer than one hello interval is
  /// an explicit no-op: the detector stays un-started (and says so via
  /// the return value) so a later start() with a real horizon arms the
  /// timer instead of silently never polling.
  bool start(SimTime stop_at);

  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Extra notification on each declared failure (before rerouting) —
  /// e.g. LinkStateRouting::notify_link_change to flood the bad news,
  /// or ProtectionManager::on_connection_down to switch locally.
  /// Hooks are multicast: add_ appends, set_ replaces them all.
  using FailureHook = std::function<void(NodeId a, NodeId b)>;
  void set_on_failure(FailureHook hook) {
    on_failure_.clear();
    on_failure_.push_back(std::move(hook));
  }
  void add_on_failure(FailureHook hook) {
    on_failure_.push_back(std::move(hook));
  }

  /// Veto per-LSP global restoration: when the filter returns false the
  /// LSP is left alone (counted as locally_protected).  Local protection
  /// installs one so an LSP already flipped to its bypass is not torn
  /// down and re-signalled behind the point of local repair's back.
  using RerouteFilter = std::function<bool(LspId)>;
  void set_reroute_filter(RerouteFilter filter) {
    reroute_filter_ = std::move(filter);
  }

  struct FailureEvent {
    SimTime detected_at;
    NodeId a;
    NodeId b;
    unsigned rerouted;       // LSPs successfully moved
    unsigned unrestorable;   // LSPs with no alternative path
    unsigned locally_protected = 0;  // left to the protection switch
  };
  [[nodiscard]] const std::vector<FailureEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] SimTime detection_time() const noexcept {
    return hello_ * dead_multiplier_;
  }

 private:
  struct Watch {
    NodeId a;
    NodeId b;
    unsigned missed = 0;
    bool declared = false;
  };

  [[nodiscard]] bool connection_up(const Watch& w) const;
  void poll();

  Network* net_;
  ControlPlane* cp_;
  SimTime hello_;
  unsigned dead_multiplier_;
  std::vector<Watch> watches_;
  std::vector<FailureEvent> events_;
  std::vector<FailureHook> on_failure_;
  RerouteFilter reroute_filter_;
  SimTime stop_at_ = 0;
  bool started_ = false;
};

}  // namespace empls::net
