#include "net/attack.hpp"

#include <sstream>

#include "mpls/label.hpp"

namespace empls::net {

std::optional<AttackKind> attack_kind_from_string(
    std::string_view s) noexcept {
  for (const auto kind : {AttackKind::kSpoof, AttackKind::kTtlFlood,
                          AttackKind::kReserved, AttackKind::kExhaust}) {
    if (s == to_string(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::size_t AttackCampaign::launch(const AttackSpec& spec) {
  const std::size_t index = records_.size();
  AttackRecord rec;
  rec.spec = spec;
  rec.flow_id = kAttackFlowBase + static_cast<std::uint32_t>(index);
  records_.push_back(rec);
  rngs_.emplace_back(spec.seed);
  net_->events().schedule_at(spec.at, [this, index] { fire(index); });
  return index;
}

std::vector<AttackSpec> AttackCampaign::generate_campaign(
    std::uint64_t seed, unsigned count, SimTime start, SimTime horizon,
    const std::vector<NodeId>& ingresses, mpls::Ipv4Address dst) const {
  std::vector<AttackSpec> specs;
  if (ingresses.empty() || horizon <= start) {
    return specs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(start, horizon);
  constexpr AttackKind kKinds[] = {AttackKind::kSpoof, AttackKind::kTtlFlood,
                                   AttackKind::kReserved,
                                   AttackKind::kExhaust};
  for (unsigned i = 0; i < count; ++i) {
    AttackSpec spec;
    spec.kind = kKinds[i % 4];  // every kind appears in any 4-attack window
    spec.at = when(rng);
    spec.duration = std::min(horizon - spec.at, 0.2 + 0.3 * when(rng));
    spec.ingress = ingresses[rng() % ingresses.size()];
    spec.rate_pps = 5000 + static_cast<double>(rng() % 20000);
    spec.seed = rng();
    spec.dst = dst;
    specs.push_back(spec);
  }
  return specs;
}

std::size_t AttackCampaign::schedule_campaign(
    const std::vector<AttackSpec>& specs) {
  for (const auto& spec : specs) {
    launch(spec);
  }
  return specs.size();
}

void AttackCampaign::emit(std::size_t index) {
  AttackRecord& rec = records_[index];
  std::mt19937_64& rng = rngs_[index];

  PacketHandle p = net_->pool().acquire();
  p->l2 = mpls::L2Type::kEthernet;
  p->src = {};
  p->dst = rec.spec.dst;
  p->cos = rec.spec.cos;
  p->ip_ttl = 64;
  p->payload.assign(64, 0xEE);
  p->id = rec.injected;
  p->flow_id = rec.flow_id;
  p->created_at = net_->now();

  switch (rec.spec.kind) {
    case AttackKind::kSpoof:
      // A label from far above any per-router allocator base — never
      // programmed, so the binding check cannot know it.
      p->stack.push(mpls::LabelEntry{
          0x80000 + static_cast<std::uint32_t>(rng() % 0x70000),
          rec.spec.cos, false, 64});
      break;
    case AttackKind::kReserved:
      // Walk the whole reserved range 0..15.
      p->stack.push(mpls::LabelEntry{
          static_cast<std::uint32_t>(rec.injected % 16), rec.spec.cos,
          false, 64});
      break;
    case AttackKind::kTtlFlood:
      p->ip_ttl = 1;  // expires at the first engine it reaches
      break;
    case AttackKind::kExhaust:
      // Spray distinct destinations within the victim /16: every packet
      // is a fresh FEC-covered address demanding its own slow-path
      // install.
      p->dst.value = (rec.spec.dst.value & 0xFFFF0000u) |
                     static_cast<std::uint32_t>(rng() % 0x10000u);
      break;
  }

  ++rec.injected;
  net_->inject(rec.spec.ingress, std::move(p));
}

void AttackCampaign::fire(std::size_t index) {
  const AttackSpec& spec = records_[index].spec;
  if (net_->now() >= spec.at + spec.duration) {
    return;
  }
  emit(index);
  std::exponential_distribution<double> gap(spec.rate_pps);
  net_->events().schedule_in(gap(rngs_[index]),
                             [this, index] { fire(index); });
}

std::uint64_t AttackCampaign::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    total += rec.injected;
  }
  return total;
}

std::string AttackCampaign::summary() const {
  unsigned counts[4] = {0, 0, 0, 0};
  for (const auto& rec : records_) {
    ++counts[static_cast<std::size_t>(rec.spec.kind)];
  }
  std::ostringstream os;
  os << "attacks=" << records_.size() << " spoof=" << counts[0]
     << " ttl_flood=" << counts[1] << " reserved=" << counts[2]
     << " exhaust=" << counts[3] << " injected=" << injected_total();
  return os.str();
}

}  // namespace empls::net
