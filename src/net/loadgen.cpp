#include "net/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace empls::net {

OpenLoopGenerator::OpenLoopGenerator(Network& net, const LoadGenConfig& cfg,
                                     FlowLedger* ledger)
    : net_(&net), cfg_(cfg), ledger_(ledger), rng_(cfg.seed) {
  const std::size_t slots = std::max<std::size_t>(1, cfg_.concurrent_flows);
  slot_flow_.resize(slots);
  slot_remaining_.resize(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    refill_slot(i);
  }
}

void OpenLoopGenerator::start() {
  // Anchor on the ingress node's domain queue so a partitioned run
  // executes the generator in that node's domain; self-reschedules go
  // through events(), which follows the executing domain.
  EventQueue& q = net_->events_for(cfg_.ingress);
  q.schedule_at(cfg_.start, [this] { arrival(); });
  if (cfg_.arrivals == LoadGenConfig::Arrivals::kMmpp) {
    q.schedule_at(cfg_.start, [this] { toggle_state(); });
  }
}

double OpenLoopGenerator::current_rate() const noexcept {
  if (cfg_.arrivals == LoadGenConfig::Arrivals::kMmpp && bursting_) {
    return cfg_.burst_rate_pps > 0 ? cfg_.burst_rate_pps
                                   : 4.0 * cfg_.rate_pps;
  }
  return cfg_.rate_pps;
}

std::uint32_t OpenLoopGenerator::pareto_packets() {
  // Inverse-CDF Pareto draw: min * U^(-1/alpha), capped so one flow
  // cannot outlive the simulation by itself.
  std::uniform_real_distribution<double> uni(
      std::numeric_limits<double>::min(), 1.0);
  const double draw =
      cfg_.pareto_min_packets *
      std::pow(uni(rng_), -1.0 / std::max(0.1, cfg_.pareto_alpha));
  return static_cast<std::uint32_t>(
      std::clamp(draw, static_cast<double>(cfg_.pareto_min_packets), 1e6));
}

void OpenLoopGenerator::refill_slot(std::size_t slot) {
  // A 16M-id block per generator; churning past it wraps, which only
  // matters for runs starting billions of flows.
  slot_flow_[slot] =
      cfg_.flow_id_base + (next_flow_offset_ & (kLoadGenFlowStride - 1));
  ++next_flow_offset_;
  slot_remaining_[slot] = pareto_packets();
  ++stats_.flows_started;
}

void OpenLoopGenerator::toggle_state() {
  if (net_->now() >= cfg_.stop) {
    return;
  }
  bursting_ = !bursting_;
  ++stats_.state_switches;
  // State dwell is exponential; a rate change applies from the next
  // arrival (gaps already drawn are not re-drawn — the usual discrete
  // MMPP approximation, exact when sojourns dwarf inter-arrival gaps).
  std::exponential_distribution<double> dwell(1.0 /
                                              std::max(1e-9, cfg_.mean_sojourn));
  net_->events().schedule_in(dwell(rng_), [this] { toggle_state(); });
}

void OpenLoopGenerator::arrival() {
  if (net_->now() >= cfg_.stop) {
    return;
  }
  // One packet from a uniformly chosen live flow — open loop: the draw
  // never looks at queue depths or delivery feedback.
  const std::size_t slot = rng_() % slot_flow_.size();

  PacketHandle p = net_->pool().acquire();
  p->l2 = mpls::L2Type::kEthernet;
  p->src = {};
  p->dst = cfg_.dst;
  p->cos = cfg_.cos;
  p->ip_ttl = 64;
  p->payload.assign(cfg_.payload_bytes, 0xAB);
  p->id = stats_.packets_sent;
  p->flow_id = slot_flow_[slot];
  p->created_at = net_->now();
  ++stats_.packets_sent;
  if (ledger_ != nullptr) {
    // No-op guard unless free-running partitioned (shared ledger).
    const auto lock = net_->books_lock();
    ledger_->on_sent(slot_flow_[slot]);
  }
  net_->inject(cfg_.ingress, std::move(p));

  if (--slot_remaining_[slot] == 0) {
    ++stats_.flows_completed;
    refill_slot(slot);
  }

  std::exponential_distribution<double> gap(current_rate());
  net_->events().schedule_in(gap(rng_), [this] { arrival(); });
}

}  // namespace empls::net
