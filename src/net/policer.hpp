// Token-bucket traffic policing.
//
// The paper lists "packet classification, admission control" among the
// QoS functions MPLS serves.  LSP-level admission lives in the control
// plane (bandwidth reservation); this is the data-plane half: an
// ingress LER polices each flow against its traffic contract.  A
// classic token bucket — `rate` tokens (bytes) per second, at most
// `burst` accumulated — passes conforming packets; excess traffic is
// either dropped or demoted to a lower class (colour-aware remarking)
// before it can crowd the reserved classes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "net/event_queue.hpp"

namespace empls::net {

class TokenBucket {
 public:
  /// `rate_bps` in bits/second; `burst_bytes` caps the bucket.
  TokenBucket(double rate_bps, double burst_bytes)
      : rate_bytes_per_s_(rate_bps / 8.0), burst_(burst_bytes),
        tokens_(burst_bytes) {}

  /// True when a packet of `bytes` conforms at time `now` (tokens are
  /// consumed only on conformance).
  bool conforms(std::size_t bytes, SimTime now) {
    refill(now);
    const auto need = static_cast<double>(bytes);
    if (tokens_ >= need) {
      tokens_ -= need;
      return true;
    }
    return false;
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }
  [[nodiscard]] double rate_bps() const noexcept {
    return rate_bytes_per_s_ * 8.0;
  }

 private:
  void refill(SimTime now) {
    if (now <= last_) {
      return;  // time never rewinds the bucket
    }
    // Single fused update from the last-refill timestamp: the elapsed
    // interval times the rate folds into the balance with one rounding
    // (fma), then clamps into [0, burst].  The former two-step
    // accumulate rounded every call, so at ~1e7 simulated seconds the
    // balance drifted from the closed-form value (see the regression
    // test in tests/net/test_policer.cpp).
    tokens_ = std::fma(now - last_, rate_bytes_per_s_, tokens_);
    tokens_ = std::clamp(tokens_, 0.0, burst_);
    last_ = now;
  }

  double rate_bytes_per_s_;
  double burst_;
  double tokens_;
  SimTime last_ = 0.0;
};

/// What happens to non-conforming packets.
enum class PolicerAction : std::uint8_t {
  kDrop,    // discard excess
  kDemote,  // remark excess to CoS 0 (best effort) and forward
};

struct PolicerConfig {
  double rate_bps = 0;
  double burst_bytes = 1500;
  PolicerAction action = PolicerAction::kDrop;
};

}  // namespace empls::net
