// Label distribution and path computation — the "routing functionality
// is assumed to be software based" half of the paper's architecture.
//
// The paper declares label path creation and distribution out of scope
// ("several protocols exist — LDP, OSPF, RSVP") but its hardware is only
// usable once someone populates the information bases.  ControlPlane is
// that someone: a centralised explicit-route label distribution protocol
// in the spirit of CR-LDP, with
//
//   * downstream label allocation (each router hands out the labels it
//     expects to receive),
//   * constraint-based path computation (Dijkstra on propagation delay
//     with bandwidth admission, i.e. CSPF),
//   * per-link bandwidth reservation bookkeeping (traffic engineering),
//   * hierarchical LSPs: tunnels with penultimate-hop popping, and inner
//     LSPs routed across them.  Because the hardware PUSH flow re-pushes
//     the inner label unchanged, the control plane reserves the same
//     inner label value at the tunnel head and tail.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mpls/fec.hpp"
#include "net/mpls_node.hpp"
#include "net/network.hpp"

namespace empls::net {

struct LspId {
  std::uint32_t value = 0;
  friend bool operator==(LspId, LspId) = default;
};
struct TunnelId {
  std::uint32_t value = 0;
  friend bool operator==(TunnelId, TunnelId) = default;
};

struct LspOptions {
  double bw = 0.0;
  /// Penultimate-hop popping: the next-to-last router pops and the
  /// egress (which receives the packet unlabeled) delivers it locally.
  /// Requires a path of at least 3 nodes.
  bool php = false;
  /// Label merging (RFC 3031 aggregation): if a previous LSP for the
  /// same FEC already flows through a node on this path, swap into its
  /// label there and reuse the established downstream segment.
  bool allow_merge = false;
};

struct LspRecord {
  std::vector<NodeId> path;        // node sequence as signalled
  std::vector<rtl::u32> labels;    // labels[i] = label expected by path[i+1]
  mpls::Prefix fec;
  double reserved_bw = 0.0;
  std::optional<TunnelId> via_tunnel;
  bool php = false;
  /// Index into `path` where this LSP merged into an existing one
  /// (labels/programming beyond it belong to the merged-into LSP).
  std::optional<std::size_t> merged_at;
};

struct TunnelRecord {
  std::vector<NodeId> path;             // head .. tail
  std::vector<rtl::u32> outer_labels;   // outer_labels[i] expected by path[i+1]
  double reserved_bw = 0.0;
};

struct ProtectOptions {
  /// Bandwidth reserved along each bypass.  0 (the default) admits the
  /// backup best-effort, the usual facility-bypass economics: the
  /// detour only carries traffic during a failure.
  double bw = 0.0;
};

/// One pre-signalled RFC 4090-style detour: protects a single link of a
/// single LSP.  The detour's transit bindings are installed in the
/// information bases at protect time (they use fresh labels, so they
/// coexist with the primary); the point of local repair's own binding
/// cannot be — its key is the primary's key — so the record carries both
/// NHLFEs and switching is one local rebind (the paper's
/// reset-and-reprogram flow), not a re-signalling round trip.
struct BackupRecord {
  LspId lsp;
  std::size_t hop = 0;             // protects path[hop] -> path[hop+1]
  NodeId plr = 0;                  // point of local repair: path[hop]
  NodeId merge = 0;                // merge point: path[hop+1]
  std::vector<NodeId> bypass;      // plr .. merge, avoiding the link
  /// detour_labels[j] is expected by bypass[j+1]; the last detour hop
  /// swaps into the label the merge point already serves for the LSP
  /// (or pops, when the primary's own action at the PLR was the
  /// penultimate-hop pop).
  std::vector<rtl::u32> detour_labels;
  mpls::Prefix fec;
  /// What the PLR's primary binding does (and therefore what the flip
  /// must replace / the revert must restore).
  enum class PlrOp : std::uint8_t { kIngress, kSwap, kPop };
  PlrOp plr_op = PlrOp::kSwap;
  rtl::u32 in_label = 0;        // key the PLR matches (kSwap/kPop only)
  rtl::u32 backup_label = 0;    // first detour label
  mpls::InterfaceId backup_port = 0;
  rtl::u32 primary_label = 0;   // label the primary binding emits
  mpls::InterfaceId primary_port = 0;
  double reserved_bw = 0.0;
  bool active = false;          // traffic currently on the bypass

  [[nodiscard]] bool live() const noexcept { return !bypass.empty(); }
};

class ControlPlane {
 public:
  explicit ControlPlane(Network& net) : net_(&net) {}
  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Make `router` (the node's routing functionality) programmable.
  void register_router(NodeId id, MplsNode* router);

  [[nodiscard]] bool is_registered(NodeId id) const {
    return routers_.contains(id);
  }

  // ---- path computation ----

  /// CSPF: minimum propagation delay path from `from` to `to` over links
  /// with at least `bw` residual bandwidth.  nullopt when disconnected.
  [[nodiscard]] std::optional<std::vector<NodeId>> compute_path(
      NodeId from, NodeId to, double bw = 0.0) const;

  /// CSPF with the connection avoid_a—avoid_b (both directions, every
  /// parallel link) pruned — backup path computation around the
  /// protected link, which is still up when the backup is signed.
  [[nodiscard]] std::optional<std::vector<NodeId>> compute_path_avoiding(
      NodeId from, NodeId to, NodeId avoid_a, NodeId avoid_b,
      double bw = 0.0) const;

  /// Residual (unreserved) bandwidth on the first link from → to.
  [[nodiscard]] double residual_bw(NodeId from, NodeId to) const;

  // ---- LSP establishment ----

  /// Explicit-route LSP: consecutive path nodes must be adjacent.
  /// Programs ingress (FEC prefix → push), transit swaps, egress pop;
  /// reserves `bw` on every hop.  nullopt on any admission failure
  /// (nothing is programmed or reserved in that case).
  std::optional<LspId> establish_lsp(const std::vector<NodeId>& path,
                                     const mpls::Prefix& fec,
                                     double bw = 0.0) {
    return establish_lsp(path, fec, LspOptions{bw, false, false});
  }
  std::optional<LspId> establish_lsp(const std::vector<NodeId>& path,
                                     const mpls::Prefix& fec,
                                     const LspOptions& options);

  /// Tear the LSP down and re-establish it for the same FEC over the
  /// best currently feasible path (CSPF over up links with residual
  /// bandwidth) — restoration after a failure.  The LSP's ingress and
  /// egress are kept; nullopt when no alternative exists (the original
  /// is still torn down: its path is broken anyway).
  std::optional<LspId> reroute_lsp(LspId id);

  /// Make-before-break re-optimisation: when a better path exists (e.g.
  /// a link recovered), sign a replacement LSP first — the ingress FTN
  /// rebind switches traffic over — and only then tear the old one
  /// down, so no packet is ever blackholed.  nullopt (old LSP kept)
  /// when CSPF finds no different path or the replacement cannot be
  /// admitted (note: shared hops are double-counted during the overlap,
  /// the usual cost of make-before-break without shared-explicit
  /// reservations).
  std::optional<LspId> reoptimize_lsp(LspId id);

  /// Compute the path with CSPF, then establish.
  std::optional<LspId> establish_lsp_cspf(NodeId ingress, NodeId egress,
                                          const mpls::Prefix& fec,
                                          double bw = 0.0);

  /// Establish over the path the INGRESS's own IGP database currently
  /// believes in (distributed routing, possibly stale during
  /// convergence) instead of the omniscient topology.  Admission still
  /// applies, so a stale path over a dead link is refused.
  template <typename LinkStateView>
  std::optional<LspId> establish_lsp_igp(const LinkStateView& igp,
                                         NodeId ingress, NodeId egress,
                                         const mpls::Prefix& fec,
                                         double bw = 0.0) {
    const auto path = igp.path_from(ingress, egress);
    if (!path) {
      return std::nullopt;
    }
    return establish_lsp(*path, fec, LspOptions{bw, false, false});
  }

  /// Hierarchical tunnel over `path` (head, ≥1 interior node, tail).
  /// Interior swaps run at information-base level 3; the penultimate hop
  /// pops the outer label (PHP) so the tail receives the inner packet.
  std::optional<TunnelId> establish_tunnel(const std::vector<NodeId>& path,
                                           double bw = 0.0);

  /// LSP whose middle segment rides `tunnel`: ingress..head over
  /// `pre_path` (adjacent hops, ≥2 nodes), tunnel head→tail, then
  /// tail..egress over `post_path` (adjacent hops, tail first).
  std::optional<LspId> establish_lsp_via_tunnel(
      const std::vector<NodeId>& pre_path, TunnelId tunnel,
      const std::vector<NodeId>& post_path, const mpls::Prefix& fec,
      double bw = 0.0);

  // ---- fast reroute (RFC 4090-style local protection) ----

  /// Pre-signal a one-to-one detour around every link of `id`'s path
  /// that has one: compute a bypass avoiding the link, allocate detour
  /// labels, install the detour's transit bindings in the information
  /// bases *now* (ahead of any failure), and record the standby NHLFE
  /// the point of local repair flips to when the link dies.  Links with
  /// no alternative path are simply left unprotected (global
  /// restoration still covers them).  Returns the number of links that
  /// gained a backup; tunnelled and merged LSPs are not handled.
  unsigned protect_lsp(LspId id, const ProtectOptions& options = {});

  [[nodiscard]] std::size_t num_backups() const noexcept {
    return backups_.size();
  }
  [[nodiscard]] BackupRecord& backup(std::size_t index);
  [[nodiscard]] const BackupRecord& backup(std::size_t index) const;

  /// Indices of live backups whose protected link is a—b (either
  /// direction) — what the PLR consults on a link-down signal.
  [[nodiscard]] std::vector<std::size_t> backups_for(NodeId a,
                                                     NodeId b) const;
  /// Indices of live backups belonging to `id`.
  [[nodiscard]] std::vector<std::size_t> backups_of(LspId id) const;

  /// Release the LSP's labels and bandwidth reservations.  Hardware
  /// information bases are append-only (the paper's design); stale
  /// entries remain until an architecture reset + reprogram, exactly the
  /// reprogramming flow the paper's worst-case analysis costs out.
  /// Backups protecting the LSP are released with it.
  void teardown_lsp(LspId id);

  [[nodiscard]] const LspRecord& lsp(LspId id) const;
  [[nodiscard]] const TunnelRecord& tunnel(TunnelId id) const;
  [[nodiscard]] std::size_t num_lsps() const noexcept { return lsps_.size(); }

  /// Live (not torn down) LSPs whose path crosses the connection a—b in
  /// either direction.  The failure detector reroutes these.
  [[nodiscard]] std::vector<LspId> lsps_using(NodeId a, NodeId b) const;

  // ---- hooks for the message-based signaling protocol ----
  // (net/signaling.hpp performs setup hop by hop over simulated time and
  // uses these instead of the instantaneous establish_* calls.)

  /// The programmable interface registered for `id`, or nullptr.
  [[nodiscard]] MplsNode* router_for(NodeId id) const { return router(id); }

  /// Admission check for one hop: the first up link from→to with `bw`
  /// residual.  Does not reserve.
  [[nodiscard]] std::optional<std::pair<mpls::InterfaceId, double>>
  admit_hop(NodeId from, NodeId to, double bw) const;

  /// Reserve / release bandwidth on a specific port.
  void reserve_hop(NodeId from, mpls::InterfaceId port, double bw) {
    reserve(from, port, bw);
  }
  void release_hop(NodeId from, mpls::InterfaceId port, double bw);

  /// Adopt an externally signalled LSP into the record table so
  /// teardown_lsp / reroute_lsp / lsp() work on it.
  LspId adopt(LspRecord record);

 private:
  struct Hop {
    mpls::InterfaceId port;
    double bandwidth;
  };

  [[nodiscard]] MplsNode* router(NodeId id) const;
  /// First port from → to with at least `bw` residual; nullopt if none.
  [[nodiscard]] std::optional<Hop> find_hop(NodeId from, NodeId to,
                                            double bw) const;
  /// Sign and install one detour for `id`'s hop-th link.
  bool install_backup(LspId id, std::size_t hop,
                      const ProtectOptions& options);
  /// Release a backup's labels and reservations (teardown path).
  void release_backup(BackupRecord& rec);
  void reserve(NodeId from, mpls::InterfaceId port, double bw);
  /// Allocate a label owned by `owner` that is also reservable at
  /// `also_at` (tunnel-crossing inner labels).
  std::optional<rtl::u32> allocate_shared(MplsNode& owner, MplsNode& also_at);

  Network* net_;
  std::unordered_map<NodeId, MplsNode*> routers_;
  std::map<std::pair<NodeId, mpls::InterfaceId>, double> reserved_;
  std::vector<LspRecord> lsps_;
  std::vector<TunnelRecord> tunnels_;
  std::vector<BackupRecord> backups_;
  /// Label a node expects for a FEC, for merge-enabled LSPs:
  /// (fec canonical text, node) → label.
  std::map<std::pair<std::string, NodeId>, rtl::u32> fec_labels_;
};

}  // namespace empls::net
