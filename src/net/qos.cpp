#include "net/qos.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

namespace empls::net {

CosQueueSet::CosQueueSet(QosConfig config)
    : config_(config), red_rng_(config.red_seed) {
  for (auto& q : queues_) {
    q = PacketRing(config_.queue_capacity);
  }
  if (config_.scheduler == SchedulerKind::kWeightedRoundRobin) {
    wrr_credit_ = config_.wrr_weights[wrr_cursor_];
  }
}

unsigned CosQueueSet::effective_cos(const mpls::Packet& packet) noexcept {
  if (packet.is_labeled()) {
    return packet.stack.top().cos & 7;
  }
  return packet.cos & 7;
}

bool CosQueueSet::should_drop(unsigned cos) {
  const auto& q = queues_[cos];
  if (q.full()) {
    return true;  // hard limit under any policy
  }
  if (config_.drop == DropPolicy::kRed) {
    const double fill =
        static_cast<double>(q.size()) / config_.queue_capacity;
    if (fill >= config_.red_max_fraction) {
      return true;
    }
    if (fill > config_.red_min_fraction) {
      const double span =
          config_.red_max_fraction - config_.red_min_fraction;
      const double p = (fill - config_.red_min_fraction) / span *
                       config_.red_max_drop_probability;
      std::uniform_real_distribution<double> u(0.0, 1.0);
      if (u(red_rng_) < p) {
        return true;
      }
    }
  }
  return false;
}

bool CosQueueSet::enqueue(PacketHandle&& packet) {
  const unsigned cos = config_.scheduler == SchedulerKind::kFifo
                           ? 0
                           : effective_cos(*packet);
  if (should_drop(cos)) {
    ++stats_[cos].dropped;
    return false;  // packet stays with the caller for drop attribution
  }
  queues_[cos].push(std::move(packet));
  ++stats_[cos].enqueued;
  ++total_;
  return true;
}

bool CosQueueSet::admit_cut_through(const mpls::Packet& packet) {
  assert(total_ == 0 && "cut-through requires empty queues");
  const unsigned cos = config_.scheduler == SchedulerKind::kFifo
                           ? 0
                           : effective_cos(packet);
  if (should_drop(cos)) {  // an empty queue only drops in degenerate configs
    ++stats_[cos].dropped;
    return false;
  }
  ++stats_[cos].enqueued;
  ++stats_[cos].dequeued;
  return true;
}

std::optional<unsigned> CosQueueSet::pick_queue() {
  switch (config_.scheduler) {
    case SchedulerKind::kFifo:
      return queues_[0].empty() ? std::nullopt : std::make_optional(0u);
    case SchedulerKind::kStrictPriority:
      for (int cos = 7; cos >= 0; --cos) {
        if (!queues_[cos].empty()) {
          return static_cast<unsigned>(cos);
        }
      }
      return std::nullopt;
    case SchedulerKind::kWeightedRoundRobin: {
      // Visit queues round-robin; each keeps the token for `weight`
      // consecutive dequeues while backlogged.
      for (unsigned attempts = 0; attempts < 16; ++attempts) {
        if (wrr_credit_ > 0 && !queues_[wrr_cursor_].empty()) {
          --wrr_credit_;
          return wrr_cursor_;
        }
        wrr_cursor_ = (wrr_cursor_ + 7) & 7;  // descend 7,6,...,0,7,...
        // A zero weight would starve the queue and break the scheduler's
        // work-conserving guarantee; clamp to 1.
        wrr_credit_ = std::max(1u, config_.wrr_weights[wrr_cursor_]);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

PacketHandle CosQueueSet::dequeue() {
  if (total_ == 0) {
    return {};
  }
  const auto cos = pick_queue();
  assert(cos.has_value() && "total_ > 0 but no queue selected");
  PacketHandle p = queues_[*cos].pop();
  ++stats_[*cos].dequeued;
  --total_;
  return p;
}

QueueStats CosQueueSet::total_stats() const {
  QueueStats total;
  for (const auto& s : stats_) {
    total.enqueued += s.enqueued;
    total.dropped += s.dropped;
    total.dequeued += s.dequeued;
  }
  return total;
}

}  // namespace empls::net
