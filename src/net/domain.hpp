// Partitioned event execution: per-domain event queues with conservative
// lookahead.
//
// Network::partition() splits the topology's nodes into *event domains*.
// Each domain owns its own EventQueue and PacketPool (domain 0 aliases
// the network's), so the hot per-hop state — the calendar buckets, the
// packet slabs, the freelist — is private to one execution context and
// never bounces between caches.  Links whose endpoints live in different
// domains become *boundary links*: instead of scheduling the arrival on
// the destination's queue directly, they push a Handoff record through a
// lock-free SPSC ring, and the destination domain converts drained
// handoffs back into local arrival events.
//
// The synchronisation rule is classic conservative (null-message-free)
// lookahead: with W = min propagation delay over all boundary links, a
// domain whose earliest pending event is at T can safely execute every
// event before min-over-domains(T) + W, because anything a neighbour
// sends it is in flight for at least W seconds.  Two execution modes
// share that invariant:
//
//   kDeterministic — one thread interleaves single events from all
//     domain queues in global (time, domain) order and drains rings
//     after every event.  Aggregate results (flow accounting, drop
//     partitions, delivery books) are identical to the unpartitioned
//     simulator; this is the differential-testing and debugging mode.
//
//   kFree — one worker thread per domain; a barrier-synchronised window
//     loop plans [T, T+W) windows, runs them in parallel, then drains
//     the rings while quiesced.  Within a domain execution order is the
//     sequential order; across domains only the lookahead bound holds.
//
// Handoffs copy the packet payload by value through the ring (the slot,
// the producer scratch and the consumer inbox all keep their buffer
// capacity), release the source handle into the source pool, and
// re-acquire from the destination pool — so each pool stays
// single-threaded and steady-state crossings allocate nothing.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "mpls/packet.hpp"
#include "net/event_queue.hpp"
#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "sw/spsc_ring.hpp"

namespace empls::net {

class Network;

/// How partitioned domains synchronise; see the header comment.
enum class SyncMode : std::uint8_t { kDeterministic, kFree };

[[nodiscard]] std::string_view to_string(SyncMode mode) noexcept;

namespace detail {
/// Thread-local execution context used to route Network::events() /
/// pool() / now() to the calling domain's queue and pool.  Defined in
/// network.cpp; the runtime sets it around every slice of domain code.
void set_active_domain(const Network* net, EventQueue* events,
                       PacketPool* pool, std::uint32_t index) noexcept;
void clear_active_domain() noexcept;
[[nodiscard]] std::uint32_t active_domain_index(const Network* net) noexcept;

/// Thread-local engine-search accumulator for the domain profiler.
/// When non-null, EmbeddedRouter adds the host-clock nanoseconds of
/// every label-engine update/search call to it; the runtime points it
/// at the executing domain's PhaseProfile::search_ns.  A disarmed
/// thread (the default) costs one TLS load per engine call.
void set_search_accumulator(std::uint64_t* acc) noexcept;
[[nodiscard]] std::uint64_t* search_accumulator() noexcept;
}  // namespace detail

class DomainRuntime {
 public:
  /// One packet crossing a domain boundary: the arrival time computed by
  /// the source link's transmitter plus the destination coordinates.
  /// Travels by copy assignment end to end so every staging buffer keeps
  /// its payload/label-stack capacity.
  struct Handoff {
    SimTime at = 0.0;
    NodeId dst_node = 0;
    mpls::InterfaceId dst_if = 0;
    /// Journey id carried across the boundary so the hop tracer can
    /// re-key the packet's journey to its new pool address (the copy
    /// changes the address the tracer keys on).  0 = untracked.  Only
    /// the deterministic merge populates this — the tracer's journey
    /// table is single-threaded.
    std::uint64_t trace_id = 0;
    mpls::Packet packet;
  };

  /// Wall-clock phase accounting for one domain's execution context,
  /// armed by enable_profiling().  Host (steady_clock) nanoseconds.
  /// dispatch_ns excludes the engine-search time nested inside event
  /// execution, so the four phases partition the measured time:
  ///   kFree          — per worker thread: wall_ns covers the whole
  ///     worker loop; barrier_ns both barrier waits, dispatch_ns the
  ///     window execution, handoff_ns the quiesced ring drains.
  ///   kDeterministic — one merge thread: the queue scan / clock
  ///     advance (the merge's analogue of a barrier) and the ring
  ///     drains land on the *executing* domain's profile along with
  ///     dispatch/search; wall_ns accrues on domain 0 only.
  struct PhaseProfile {
    std::uint64_t dispatch_ns = 0;  // event execution minus engine search
    std::uint64_t search_ns = 0;    // label-engine update/search calls
    std::uint64_t handoff_ns = 0;   // draining boundary rings
    std::uint64_t barrier_ns = 0;   // barrier waits / merge scan+advance
    std::uint64_t wall_ns = 0;      // total wall inside run()
  };

  /// Per-domain execution counters (exported as empls_domain_* metrics).
  struct Counters {
    std::uint64_t executed = 0;       // events run by this domain
    std::uint64_t windows = 0;        // lookahead windows entered (kFree)
    std::uint64_t idle_windows = 0;   // windows that ran zero events
    std::uint64_t handoffs_out = 0;   // packets pushed to other domains
    std::uint64_t handoffs_in = 0;    // packets drained from other domains
    std::uint64_t ring_overflows = 0; // pushes that spilled past the ring
    std::uint64_t delivered = 0;      // local deliveries counted here
  };

  /// Builds the partition over `net`'s current topology: per-domain
  /// queues/pools, link rebinding, boundary rings and handoff hooks.
  /// `node_domain[id]` maps each node to its domain (< domain_count).
  /// Construct via Network::partition(), after the topology is built
  /// and before any traffic is scheduled.
  DomainRuntime(Network& net, std::vector<std::uint32_t> node_domain,
                std::uint32_t domain_count, SyncMode mode);
  ~DomainRuntime();
  DomainRuntime(const DomainRuntime&) = delete;
  DomainRuntime& operator=(const DomainRuntime&) = delete;

  [[nodiscard]] std::uint32_t domain_count() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] SyncMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint32_t domain_of(NodeId id) const {
    return node_domain_[id];
  }
  /// Conservative lookahead W: min propagation delay over boundary
  /// links; +inf when no link crosses a boundary (domains are fully
  /// independent and each runs as one unbounded window).
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] std::size_t boundary_link_count() const noexcept {
    return boundary_links_;
  }
  /// Introspection for the partition-correctness tests: whether a
  /// src→dst ring exists, and how many directed links feed it.
  [[nodiscard]] bool has_ring(std::uint32_t src, std::uint32_t dst) const;
  [[nodiscard]] std::size_t boundary_links(std::uint32_t src,
                                           std::uint32_t dst) const;

  [[nodiscard]] EventQueue& events(std::uint32_t domain) {
    return *queues_[domain];
  }
  [[nodiscard]] PacketPool& pool(std::uint32_t domain) {
    return *pools_[domain];
  }
  [[nodiscard]] const Counters& counters(std::uint32_t domain) const {
    return counters_[domain].c;
  }

  /// Arm (or disarm) per-domain phase profiling.  Costs a few
  /// steady_clock reads per event (deterministic) or per window (free)
  /// while armed; zero-cost branch when off.  Toggle only between
  /// run() calls.
  void enable_profiling(bool on) noexcept { profiling_ = on; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  [[nodiscard]] const PhaseProfile& profile(std::uint32_t domain) const {
    return profiles_[domain].p;
  }

  /// Run all domains up to and including `until` (run_until semantics of
  /// the single queue), or to quiescence.  Dispatches on mode().
  std::uint64_t run_until(SimTime until);
  std::uint64_t run();

  /// Free-running mode splits the delivery count per domain to keep the
  /// counter off the shared books mutex; Network sums it back in.
  void count_delivery(std::uint32_t domain) noexcept {
    ++counters_[domain].c.delivered;
  }
  [[nodiscard]] std::uint64_t delivered_sum() const noexcept;
  [[nodiscard]] std::uint64_t handoffs_in_sum() const noexcept;
  [[nodiscard]] std::uint64_t windows_sum() const noexcept;

  /// Memberwise sums over every domain's queue / pool (domain 0 is the
  /// network's own).  high_water sums to "peak resident packets across
  /// all domains" — each pool's peak is tracked independently.
  [[nodiscard]] EventQueue::Stats queue_stats() const;
  [[nodiscard]] PacketPool::Stats pool_stats() const;

 private:
  /// One boundary src→dst channel.  The ring is the steady-state path;
  /// `overflow` catches bursts larger than the ring (drained together,
  /// never concurrently with pushes — the barrier/merge quiesces the
  /// producer first, so no lock is needed).  `scratch` (producer) and
  /// `inbox` (consumer) are persistent staging slots whose packet
  /// buffers keep their capacity across crossings.
  struct Ring {
    sw::SpscRing<Handoff> ring;
    std::vector<Handoff> overflow;
    Handoff scratch;
    Handoff inbox;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::size_t links = 0;  // directed boundary links feeding this ring
  };

  struct alignas(64) PaddedCounters {
    Counters c;
  };

  struct alignas(64) PaddedProfile {
    PhaseProfile p;
  };

  void push_handoff(Ring& r, SimTime at, NodeId dst_node,
                    mpls::InterfaceId dst_if, const mpls::Packet& packet);
  void drain_ring(Ring& r);
  void deliver_handoff(Ring& r, const Handoff& h);
  std::uint64_t run_deterministic(SimTime until);
  std::uint64_t run_free(SimTime until);

  Network& net_;
  SyncMode mode_;
  std::vector<std::uint32_t> node_domain_;
  SimTime lookahead_ = std::numeric_limits<SimTime>::infinity();
  std::size_t boundary_links_ = 0;

  // Pools before queues: pending events hold PacketHandles that release
  // into these pools, so queues must be destroyed first.  Slot 0 of the
  // alias vectors points at the network's own queue/pool.
  std::vector<std::unique_ptr<PacketPool>> owned_pools_;
  std::vector<std::unique_ptr<EventQueue>> owned_queues_;
  std::vector<PacketPool*> pools_;
  std::vector<EventQueue*> queues_;

  std::vector<std::unique_ptr<Ring>> rings_;  // creation order = drain order
  std::vector<Ring*> ring_table_;             // D*D, nullptr when no boundary
  std::vector<PaddedCounters> counters_;
  std::vector<PaddedProfile> profiles_;
  bool profiling_ = false;
};

}  // namespace empls::net
