#include "net/packet_pool.hpp"

#include <algorithm>

namespace empls::net {

PacketHandle PacketPool::acquire() {
  ++stats_.acquired;
  if (!pooling_) {
    // Baseline mode: behave like the pre-pool simulator (one heap packet
    // per acquire, freed on release).
    return PacketHandle(new mpls::Packet(), nullptr);
  }
  mpls::Packet* p = nullptr;
  if (!free_.empty()) {
    p = free_.back();
    free_.pop_back();
    ++stats_.recycled;
  } else {
    slabs_.push_back(std::make_unique<mpls::Packet[]>(slab_packets_));
    stats_.capacity += slab_packets_;
    mpls::Packet* slab = slabs_.back().get();
    free_.reserve(free_.size() + slab_packets_);
    for (std::size_t i = slab_packets_; i > 1; --i) {
      free_.push_back(&slab[i - 1]);
    }
    p = &slab[0];
  }
  ++stats_.in_use;
  stats_.high_water = std::max(stats_.high_water, stats_.in_use);
  return PacketHandle(p, this);
}

void PacketPool::release(mpls::Packet* p) noexcept {
  // Reset to default field values but keep the payload's and the label
  // stack's buffer capacity — that reuse is the whole point.
  p->l2 = mpls::L2Type::kEthernet;
  p->src = {};
  p->dst = {};
  p->cos = 0;
  p->ip_ttl = 64;
  p->stack.clear();
  p->payload.clear();
  p->id = 0;
  p->created_at = 0.0;
  p->flow_id = 0;
  free_.push_back(p);
  --stats_.in_use;
}

}  // namespace empls::net
