#include "net/traffic.hpp"

namespace empls::net {

void TrafficSource::emit() {
  // Pool-acquired: a recycled packet's payload buffer already has the
  // capacity, so steady-state emission is allocation-free.
  PacketHandle p = net_->pool().acquire();
  p->l2 = mpls::L2Type::kEthernet;
  p->src = spec_.src;
  p->dst = spec_.dst;
  p->cos = spec_.cos;
  p->ip_ttl = 64;
  p->payload.assign(spec_.payload_bytes, 0xAB);
  p->id = sent_;
  p->flow_id = spec_.flow_id;
  p->created_at = net_->now();
  ++sent_;
  if (stats_ != nullptr) {
    // No-op guard unless the run is free-running partitioned, where
    // several domains feed one FlowStats.
    const auto lock = net_->books_lock();
    stats_->on_sent(*p);
  }
  net_->inject(spec_.ingress, std::move(p));
}

// start() anchors the first event on the ingress node's domain queue
// (events_for); every later self-reschedule goes through events(), which
// the partitioned runtime routes to the executing domain.

void CbrSource::start() {
  net_->events_for(spec_.ingress)
      .schedule_at(spec_.start, [this] { tick(); });
}

void CbrSource::tick() {
  if (net_->now() >= spec_.stop) {
    return;
  }
  emit();
  net_->events().schedule_in(interval_, [this] { tick(); });
}

void PoissonSource::start() {
  net_->events_for(spec_.ingress)
      .schedule_at(spec_.start, [this] { tick(); });
}

void PoissonSource::tick() {
  if (net_->now() >= spec_.stop) {
    return;
  }
  emit();
  std::exponential_distribution<double> gap(rate_);
  net_->events().schedule_in(gap(rng_), [this] { tick(); });
}

void VideoSource::start() {
  net_->events_for(spec_.ingress)
      .schedule_at(spec_.start, [this] { frame(); });
}

void VideoSource::frame() {
  if (net_->now() >= spec_.stop) {
    return;
  }
  // A frame's packets are injected back to back; the ingress link's
  // transmitter serialises them.
  for (unsigned i = 0; i < packets_per_frame_; ++i) {
    emit();
  }
  net_->events().schedule_in(frame_interval_, [this] { frame(); });
}

void OnOffSource::start() {
  net_->events_for(spec_.ingress)
      .schedule_at(spec_.start, [this] { begin_burst(); });
}

void OnOffSource::begin_burst() {
  if (net_->now() >= spec_.stop) {
    return;
  }
  std::exponential_distribution<double> on(1.0 / mean_on_);
  tick(net_->now() + on(rng_));
}

void OnOffSource::tick(SimTime burst_end) {
  if (net_->now() >= spec_.stop) {
    return;
  }
  if (net_->now() >= burst_end) {
    std::exponential_distribution<double> off(1.0 / mean_off_);
    net_->events().schedule_in(off(rng_), [this] { begin_burst(); });
    return;
  }
  emit();
  net_->events().schedule_in(1.0 / rate_,
                             [this, burst_end] { tick(burst_end); });
}

}  // namespace empls::net
