// RFC 4090-style local protection switching: the point of local repair.
//
// ControlPlane::protect_lsp pre-signals one-to-one detours and installs
// their transit bindings ahead of any failure.  What remains at failure
// time is the switch itself: the point of local repair (PLR) rebinds its
// own entry for the protected LSP onto the standby NHLFE — one local
// operation, no signaling round-trip.  On the paper's hardware that
// rebind is the reset-and-reprogram flow whose worst case Section 4
// bounds at 6167 cycles (0.123 ms at 50 MHz): local repair completes in
// data-plane time while global restoration is still counting hellos.
//
// ProtectionManager subscribes to two failure sources:
//   * the network's fast link-state signal (loss of light — instant), and
//   * the hello-based FailureDetector (arm()), as the slow backstop; it
//     also installs a reroute filter there so locally-switched LSPs are
//     not torn down and re-signalled behind the PLR's back.
// Recovered connections revert to the primary path (revertive mode, the
// RFC 4090 default).  LSPs crossing a failed link with no live backup
// are left to global restoration, which the filter deliberately permits.
#pragma once

#include <cstdint>
#include <vector>

#include "net/failure_detector.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"

namespace empls::net {

class ProtectionManager {
 public:
  ProtectionManager(Network& net, ControlPlane& cp) : net_(&net), cp_(&cp) {}
  ProtectionManager(const ProtectionManager&) = delete;
  ProtectionManager& operator=(const ProtectionManager&) = delete;

  /// Subscribe to the network's fast link-state signal — the primary
  /// trigger: switching happens the instant the connection dies, inside
  /// one detection window of zero.
  void attach_fast_signal();

  /// Hook the hello-based detector as the slow-path backstop (a failure
  /// the fast signal never reported, e.g. a one-way fibre taken down
  /// per-direction) and install the reroute filter that keeps global
  /// restoration off locally-switched LSPs.
  void arm(FailureDetector& detector);

  /// A connection died / recovered.  Idempotent: re-announcing a known
  /// state is a no-op, so the fast signal and the detector can both
  /// report the same failure safely.
  void on_connection_down(NodeId a, NodeId b);
  void on_connection_up(NodeId a, NodeId b);

  /// True when `id` currently runs over one of its detours.
  [[nodiscard]] bool is_switched(LspId id) const;

  struct Event {
    SimTime at;
    NodeId a;
    NodeId b;
    bool link_up;          // false: failure handling, true: revert
    unsigned switched;     // LSPs flipped onto their detour
    unsigned reverted;     // LSPs flipped back to the primary
    unsigned unprotected;  // LSPs crossing the link with no live backup
  };
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }
  [[nodiscard]] std::uint64_t reverts() const noexcept { return reverts_; }

 private:
  /// Flip the PLR's binding onto the detour / back to the primary.
  bool activate(BackupRecord& rec);
  bool revert(BackupRecord& rec);

  Network* net_;
  ControlPlane* cp_;
  std::vector<Event> events_;
  std::uint64_t switches_ = 0;
  std::uint64_t reverts_ = 0;
};

}  // namespace empls::net
