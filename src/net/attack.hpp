// Adversarial traffic campaigns, beside FaultInjector.
//
// The MPLS security survey (arXiv 2409.03795) catalogs the attacks a
// production LSR faces from off the domain; AttackCampaign drives the
// four that target the data plane, as seeded reproducible injections:
//
//   spoof     — labeled packets whose labels were never programmed,
//               trying to be switched onto someone's LSP;
//   ttl_flood — packets arriving with TTL 1, each a slow-path expiry
//               event, trying to starve the datapath;
//   reserved  — packets carrying reserved labels (0..15), whose
//               protocol semantics must never be forwarded on;
//   exhaust   — unlabeled packets spraying fresh destinations inside a
//               routed prefix, forcing a slow-path info-base install
//               (and a flow-cache epoch invalidation) per packet.
//
// Every campaign packet carries a flow id in the attack block
// [kAttackFlowBase, kOamFlowBase), so victim statistics stay clean and
// the drop accountant can attribute attack losses exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "mpls/packet.hpp"
#include "net/loadgen.hpp"
#include "net/network.hpp"

namespace empls::net {

enum class AttackKind : std::uint8_t {
  kSpoof,
  kTtlFlood,
  kReserved,
  kExhaust,
};

[[nodiscard]] constexpr std::string_view to_string(AttackKind k) noexcept {
  switch (k) {
    case AttackKind::kSpoof:
      return "spoof";
    case AttackKind::kTtlFlood:
      return "ttl_flood";
    case AttackKind::kReserved:
      return "reserved";
    case AttackKind::kExhaust:
      return "exhaust";
  }
  return "?";
}

[[nodiscard]] std::optional<AttackKind> attack_kind_from_string(
    std::string_view s) noexcept;

struct AttackSpec {
  AttackKind kind = AttackKind::kSpoof;
  SimTime at = 0;
  SimTime duration = 0.5;
  NodeId ingress = 0;
  /// Mean injection rate (Poisson arrivals within [at, at+duration)).
  double rate_pps = 10000;
  std::uint64_t seed = 1;
  /// Victim prefix address: routed target for ttl_flood, sprayed /16
  /// for exhaust (unused by spoof / reserved).
  mpls::Ipv4Address dst{};
  /// CoS the attacker claims (a real attacker claims the best class).
  std::uint8_t cos = 7;
};

struct AttackRecord {
  AttackSpec spec;
  /// Flow id all of this attack's packets carry.
  std::uint32_t flow_id = 0;
  std::uint64_t injected = 0;
};

class AttackCampaign {
 public:
  explicit AttackCampaign(Network& net) : net_(&net) {}
  AttackCampaign(const AttackCampaign&) = delete;
  AttackCampaign& operator=(const AttackCampaign&) = delete;

  /// Schedule one attack on the network's event queue.  Returns the
  /// index of its record.
  std::size_t launch(const AttackSpec& spec);

  /// Seeded mixed campaign: `count` attacks of rotating kinds at
  /// uniform times in [start, horizon), ingresses drawn from the given
  /// candidates.  Reproducible from the seed alone.
  [[nodiscard]] std::vector<AttackSpec> generate_campaign(
      std::uint64_t seed, unsigned count, SimTime start, SimTime horizon,
      const std::vector<NodeId>& ingresses, mpls::Ipv4Address dst) const;

  /// launch() every spec.  Returns the number scheduled.
  std::size_t schedule_campaign(const std::vector<AttackSpec>& specs);

  [[nodiscard]] const std::vector<AttackRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t injected_total() const noexcept;

  /// "attacks=4 spoof=1 ttl_flood=1 reserved=1 exhaust=1 injected=40000"
  [[nodiscard]] std::string summary() const;

 private:
  void fire(std::size_t index);
  void emit(std::size_t index);

  Network* net_;
  std::vector<AttackRecord> records_;
  std::vector<std::mt19937_64> rngs_;
};

}  // namespace empls::net
