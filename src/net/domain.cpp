#include "net/domain.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cmath>
#include <thread>

#include "net/link.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"

namespace empls::net {

namespace detail {
namespace {
thread_local std::uint64_t* t_search_acc = nullptr;
}  // namespace

void set_search_accumulator(std::uint64_t* acc) noexcept {
  t_search_acc = acc;
}

std::uint64_t* search_accumulator() noexcept { return t_search_acc; }
}  // namespace detail

namespace {

using ProfClock = std::chrono::steady_clock;

inline std::uint64_t ns_between(ProfClock::time_point a,
                                ProfClock::time_point b) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

inline ProfClock::time_point prof_now(bool armed) noexcept {
  return armed ? ProfClock::now() : ProfClock::time_point{};
}

}  // namespace

std::string_view to_string(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kDeterministic:
      return "deterministic";
    case SyncMode::kFree:
      return "free";
  }
  return "?";
}

DomainRuntime::DomainRuntime(Network& net,
                             std::vector<std::uint32_t> node_domain,
                             std::uint32_t domain_count, SyncMode mode)
    : net_(net), mode_(mode), node_domain_(std::move(node_domain)) {
  assert(domain_count >= 1);
  assert(node_domain_.size() == net.num_nodes());

  pools_.resize(domain_count);
  queues_.resize(domain_count);
  pools_[0] = &net.pool();
  queues_[0] = &net.events();
  const SchedulerBackend backend = net.events().scheduler();
  owned_pools_.reserve(domain_count - 1);
  owned_queues_.reserve(domain_count - 1);
  for (std::uint32_t d = 1; d < domain_count; ++d) {
    owned_pools_.push_back(std::make_unique<PacketPool>());
    pools_[d] = owned_pools_.back().get();
    owned_queues_.push_back(std::make_unique<EventQueue>());
    owned_queues_.back()->set_scheduler(backend);
    queues_[d] = owned_queues_.back().get();
  }
  counters_.resize(domain_count);
  profiles_.resize(domain_count);
  ring_table_.assign(static_cast<std::size_t>(domain_count) * domain_count,
                     nullptr);

  // Walk every directed link exactly once through the adjacency lists:
  // rebind it to its source domain's queue, and give cross-domain links
  // a handoff hook feeding the src→dst ring.
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const std::uint32_t s = node_domain_[id];
    for (const Network::Adjacency& adj : net.adjacency(id)) {
      Link& l = net.link_from(id, adj.port);
      l.rebind_events(*queues_[s]);
      const std::uint32_t d = node_domain_[adj.neighbor];
      if (d == s) {
        continue;
      }
      ++boundary_links_;
      lookahead_ = std::min(lookahead_, l.prop_delay());
      Ring*& slot = ring_table_[static_cast<std::size_t>(s) * domain_count + d];
      if (slot == nullptr) {
        rings_.push_back(std::make_unique<Ring>());
        slot = rings_.back().get();
        slot->src = s;
        slot->dst = d;
      }
      ++slot->links;
      Ring* ring = slot;
      const NodeId dst_node = adj.neighbor;
      const mpls::InterfaceId dst_if = l.dst_interface();
      l.set_handoff_hook(
          [this, ring, dst_node, dst_if](SimTime at, PacketHandle p) {
            push_handoff(*ring, at, dst_node, dst_if, *p);
            // `p` releases into the source domain's pool on return —
            // on the producer's own thread.
          });
    }
  }
}

DomainRuntime::~DomainRuntime() = default;

bool DomainRuntime::has_ring(std::uint32_t src, std::uint32_t dst) const {
  return ring_table_[static_cast<std::size_t>(src) * domain_count() + dst] !=
         nullptr;
}

std::size_t DomainRuntime::boundary_links(std::uint32_t src,
                                          std::uint32_t dst) const {
  const Ring* r =
      ring_table_[static_cast<std::size_t>(src) * domain_count() + dst];
  return r == nullptr ? 0 : r->links;
}

void DomainRuntime::push_handoff(Ring& r, SimTime at, NodeId dst_node,
                                 mpls::InterfaceId dst_if,
                                 const mpls::Packet& packet) {
  Handoff& h = r.scratch;
  h.at = at;
  h.dst_node = dst_node;
  h.dst_if = dst_if;
  h.trace_id = 0;
  if (mode_ == SyncMode::kDeterministic) {
    // The copy across the boundary changes the address the tracer keys
    // journeys on; carry the id through the ring so the far side can
    // re-bind it.  kFree never does this: the journey table is
    // single-threaded, so tracing forces a single domain there.
    if (obs::HopTracer* t = net_.tracer(); t != nullptr && t->enabled()) {
      h.trace_id = t->detach(&packet);
    }
  }
  h.packet = packet;  // copy assignment: scratch buffers keep capacity
  if (!r.ring.try_push(h)) {
    // Burst larger than the ring.  The overflow vector is only ever
    // touched with the other side quiesced (per-event drain in the
    // deterministic merge; the post-window barrier in free-running
    // mode), so plain push_back is safe.
    r.overflow.push_back(h);
    ++counters_[r.src].c.ring_overflows;
  }
  ++counters_[r.src].c.handoffs_out;
}

void DomainRuntime::deliver_handoff(Ring& r, const Handoff& h) {
  PacketHandle p = pools_[r.dst]->acquire();
  *p = h.packet;  // recycled packets keep their buffer capacity
  if (h.trace_id != 0) {
    if (obs::HopTracer* t = net_.tracer(); t != nullptr) {
      t->attach(p.get(), h.trace_id);
    }
  }
  Node* node = &net_.node(h.dst_node);
  queues_[r.dst]->schedule_at(
      h.at, [node, dst_if = h.dst_if, p = std::move(p)]() mutable {
        node->receive(std::move(p), dst_if);
      });
  ++counters_[r.dst].c.handoffs_in;
}

void DomainRuntime::drain_ring(Ring& r) {
  while (r.ring.try_pop(r.inbox)) {
    deliver_handoff(r, r.inbox);
  }
  if (!r.overflow.empty()) {
    for (const Handoff& h : r.overflow) {
      deliver_handoff(r, h);
    }
    r.overflow.clear();
  }
}

std::uint64_t DomainRuntime::run_until(SimTime until) {
  return mode_ == SyncMode::kFree ? run_free(until) : run_deterministic(until);
}

std::uint64_t DomainRuntime::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t DomainRuntime::run_deterministic(SimTime until) {
  const std::size_t count = queues_.size();
  std::uint64_t executed = 0;
  const bool prof = profiling_;
  const ProfClock::time_point wall0 = prof_now(prof);
  for (;;) {
    const ProfClock::time_point t0 = prof_now(prof);
    SimTime best = std::numeric_limits<SimTime>::infinity();
    std::size_t which = count;
    for (std::size_t d = 0; d < count; ++d) {
      const SimTime t = queues_[d]->next_time();
      if (t < best) {
        best = t;
        which = d;
      }
    }
    if (which == count || best > until) {
      break;
    }
    // Synchronise every domain clock BEFORE executing: an event on one
    // queue may touch links or nodes of another domain (control plane,
    // fault injection, OAM), and those read their own queue's now().
    // With all clocks at the event's time, behaviour is identical to
    // the single-queue simulator's.
    for (EventQueue* q : queues_) {
      q->advance_to(best);
    }
    PhaseProfile& p = profiles_[which].p;
    const ProfClock::time_point t1 = prof_now(prof);
    std::uint64_t search0 = 0;
    if (prof) {
      // The merge scan + clock advance is this mode's analogue of the
      // barrier wait, attributed to the domain about to execute.
      p.barrier_ns += ns_between(t0, t1);
      search0 = p.search_ns;
      detail::set_search_accumulator(&p.search_ns);
    }
    detail::set_active_domain(&net_, queues_[which], pools_[which],
                              static_cast<std::uint32_t>(which));
    queues_[which]->step();
    detail::clear_active_domain();
    ++counters_[which].c.executed;
    ++executed;
    const ProfClock::time_point t2 = prof_now(prof);
    if (prof) {
      detail::set_search_accumulator(nullptr);
      const std::uint64_t raw = ns_between(t1, t2);
      const std::uint64_t searched = p.search_ns - search0;
      p.dispatch_ns += raw > searched ? raw - searched : 0;
    }
    // Drain after every event so cross-domain arrivals join the global
    // (time, domain) merge immediately.
    for (const auto& r : rings_) {
      drain_ring(*r);
    }
    if (prof) {
      p.handoff_ns += ns_between(t2, ProfClock::now());
    }
  }
  if (prof) {
    profiles_[0].p.wall_ns += ns_between(wall0, ProfClock::now());
  }
  // Leave every clock where the single-queue run would: at `until` for a
  // bounded run, at the last executed event's time when draining.
  if (std::isfinite(until)) {
    for (EventQueue* q : queues_) {
      q->advance_to(until);
    }
  } else {
    SimTime last = 0.0;
    for (EventQueue* q : queues_) {
      last = std::max(last, q->now());
    }
    for (EventQueue* q : queues_) {
      q->advance_to(last);
    }
  }
  return executed;
}

std::uint64_t DomainRuntime::run_free(SimTime until) {
  const std::uint32_t count = domain_count();
  const SimTime inf = std::numeric_limits<SimTime>::infinity();

  std::uint64_t before = 0;
  for (const PaddedCounters& c : counters_) {
    before += c.c.executed;
  }

  struct Plan {
    SimTime end = 0.0;
    bool inclusive = false;
    bool unbounded = false;  // no lookahead bound: each queue runs dry
    bool done = false;
  };
  Plan plan;

  // Plans the next window while everyone is quiesced (it runs inside
  // the barrier's completion step).  A window is [T, T+W) with T the
  // global minimum next-event time: every handoff produced inside it
  // arrives at >= T + W, i.e. in a later window on the destination.
  auto make_plan = [this, &plan, until, inf]() noexcept {
    SimTime t_next = inf;
    for (EventQueue* q : queues_) {
      t_next = std::min(t_next, q->next_time());
    }
    if (t_next == inf || t_next > until) {
      plan.done = true;
      return;
    }
    const SimTime end = std::min(until, t_next + lookahead_);
    plan.end = end;
    plan.unbounded = !std::isfinite(end);
    // The final window is inclusive to match run_until's `<= until`
    // contract; handoffs landing exactly at `until` re-open it.
    plan.inclusive = (end == until);
    plan.done = false;
  };

  std::uint64_t phase = 0;
  std::barrier sync(static_cast<std::ptrdiff_t>(count),
                    [&phase, &make_plan]() noexcept {
                      // Phases alternate: even = plan the next window,
                      // odd = the post-window quiesce before draining.
                      if ((phase++ & 1) == 0) {
                        make_plan();
                      }
                    });

  auto worker = [this, &sync, &plan, until](std::uint32_t d) {
    EventQueue& q = *queues_[d];
    Counters& c = counters_[d].c;
    PhaseProfile& p = profiles_[d].p;
    const bool prof = profiling_;
    const ProfClock::time_point w0 = prof_now(prof);
    if (prof) {
      detail::set_search_accumulator(&p.search_ns);
    }
    for (;;) {
      const ProfClock::time_point t0 = prof_now(prof);
      sync.arrive_and_wait();  // completion planned the window
      const ProfClock::time_point t1 = prof_now(prof);
      if (prof) {
        p.barrier_ns += ns_between(t0, t1);
      }
      if (plan.done) {
        break;
      }
      const std::uint64_t search0 = p.search_ns;
      detail::set_active_domain(&net_, &q, pools_[d], d);
      const std::uint64_t n =
          plan.unbounded ? q.run() : q.run_window(plan.end, plan.inclusive);
      detail::clear_active_domain();
      c.executed += n;
      ++c.windows;
      if (n == 0) {
        ++c.idle_windows;
      }
      const ProfClock::time_point t2 = prof_now(prof);
      if (prof) {
        const std::uint64_t raw = ns_between(t1, t2);
        const std::uint64_t searched = p.search_ns - search0;
        p.dispatch_ns += raw > searched ? raw - searched : 0;
      }
      sync.arrive_and_wait();  // everyone out of their window
      const ProfClock::time_point t3 = prof_now(prof);
      if (prof) {
        p.barrier_ns += ns_between(t2, t3);
      }
      // Drain this domain's incoming rings: the consumer side of an
      // SPSC ring must stay on one thread, and dst == d pins it here.
      for (const auto& r : rings_) {
        if (r->dst == d) {
          drain_ring(*r);
        }
      }
      if (prof) {
        p.handoff_ns += ns_between(t3, ProfClock::now());
      }
    }
    if (std::isfinite(until)) {
      q.advance_to(until);
    }
    if (prof) {
      detail::set_search_accumulator(nullptr);
      p.wall_ns += ns_between(w0, ProfClock::now());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(count - 1);
  for (std::uint32_t d = 1; d < count; ++d) {
    threads.emplace_back(worker, d);
  }
  worker(0);  // the caller runs domain 0
  for (std::thread& t : threads) {
    t.join();
  }

  std::uint64_t after = 0;
  for (const PaddedCounters& c : counters_) {
    after += c.c.executed;
  }
  return after - before;
}

std::uint64_t DomainRuntime::delivered_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const PaddedCounters& c : counters_) {
    sum += c.c.delivered;
  }
  return sum;
}

std::uint64_t DomainRuntime::handoffs_in_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const PaddedCounters& c : counters_) {
    sum += c.c.handoffs_in;
  }
  return sum;
}

std::uint64_t DomainRuntime::windows_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const PaddedCounters& c : counters_) {
    sum += c.c.windows;
  }
  return sum;
}

EventQueue::Stats DomainRuntime::queue_stats() const {
  EventQueue::Stats out;
  for (const EventQueue* q : queues_) {
    const EventQueue::Stats& s = q->stats();
    out.scheduled += s.scheduled;
    out.executed += s.executed;
    out.clamped += s.clamped;
    out.events_inline += s.events_inline;
    out.events_heap_fallback += s.events_heap_fallback;
    out.calendar_rebuilds += s.calendar_rebuilds;
  }
  return out;
}

PacketPool::Stats DomainRuntime::pool_stats() const {
  PacketPool::Stats out;
  for (const PacketPool* p : pools_) {
    const PacketPool::Stats& s = p->stats();
    out.acquired += s.acquired;
    out.recycled += s.recycled;
    out.in_use += s.in_use;
    out.high_water += s.high_water;
    out.capacity += s.capacity;
  }
  return out;
}

}  // namespace empls::net
