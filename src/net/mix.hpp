// Shared integer mixing finalizers (splitmix32 / splitmix64).
//
// Several hot paths need a cheap full-avalanche hash over small integer
// keys: FlatCounts and the trie engine's open-addressing tables spread
// sequential flow ids / labels away from one probe chain, the sharded
// engine and the flow cache spread (level, key) pairs across slots, and
// the hop tracer mixes slab addresses whose low bits share the slot
// stride.  They all use the same two finalizers; this header is the one
// definition (previously copied into each file).
//
// The constants are the published splitmix finalizers:
//   32-bit — Ellard's low-bias search over the splitmix32 family;
//   64-bit — Steele/Lea/Flood, "Fast splittable pseudorandom number
//            generators" (OOPSLA 2014), the splitmix64 output mix.
// Changing either changes every downstream probe sequence, shard
// placement and cache layout at once — test_mix.cpp pins known-answer
// vectors so that can only happen on purpose.
#pragma once

#include <cstdint>

namespace empls::net {

/// splitmix32 finalizer: full-avalanche spread of a 32-bit key.
[[nodiscard]] constexpr std::uint32_t mix32(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

/// splitmix64 finalizer: full-avalanche spread of a 64-bit key.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// The splitmix64 golden-gamma increment.  Callers hashing values that
/// may be zero-heavy (pointers, sequence counters) pre-add it so the
/// finalizer never sees the 0 → 0 fixed point: mix64(x + kGoldenGamma).
constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// splitmix64 finalizer over a (level, key) pair — the spreading hash
/// the sharded engine and the flow cache share, so their placements
/// stay in documented lockstep.
[[nodiscard]] constexpr std::uint64_t mix64_pair(std::uint32_t level,
                                                 std::uint32_t key) noexcept {
  return mix64((std::uint64_t{level} << 32) | std::uint64_t{key});
}

}  // namespace empls::net
