// Open-addressing flat counter table: u32 key → u64 count.
//
// The drop accountant and the open-loop flow ledger both tally events
// per flow id on the hot path.  At campaign scale (millions of
// concurrent flows) a std::map node allocation per new flow is a
// hot-path malloc and an rb-tree walk per increment; this table is two
// flat arrays with linear probing — O(1) amortised, no per-key heap
// objects, and growth only at power-of-two rehash points (never on the
// steady-state increment path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/mix.hpp"

namespace empls::net {

class FlatCounts {
 public:
  /// Key that can never be stored (0xFFFFFFFF marks an empty slot; no
  /// simulator flow id reaches it — OAM tops out at 0xFFFxxxxx).
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;

  explicit FlatCounts(std::size_t initial_slots = 1024) {
    std::size_t cap = 16;
    while (cap < initial_slots) {
      cap <<= 1;
    }
    keys_.assign(cap, kEmptyKey);
    vals_.assign(cap, 0);
  }

  /// Find-or-insert: the counter cell for `key` (inserted at 0).
  std::uint64_t& operator[](std::uint32_t key) {
    if ((used_ + 1) * 10 >= keys_.size() * 7) {  // load factor 0.7
      grow();
    }
    const std::size_t i = probe(key);
    if (keys_[i] == kEmptyKey) {
      keys_[i] = key;
      ++used_;
    }
    return vals_[i];
  }

  /// Count for `key`; 0 when never seen.
  [[nodiscard]] std::uint64_t get(std::uint32_t key) const {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix32(key) & mask;
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) {
        return vals_[i];
      }
      i = (i + 1) & mask;
    }
    return 0;
  }

  /// Distinct keys stored.
  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  /// Slot capacity (power of two).
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

  /// Visit every (key, count) pair, unordered.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) {
        f(keys_[i], vals_[i]);
      }
    }
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    std::fill(vals_.begin(), vals_.end(), 0);
    used_ = 0;
  }

 private:
  [[nodiscard]] std::size_t probe(std::uint32_t key) const noexcept {
    // mix32 spreads sequential flow ids so they do not cluster into one
    // probe chain.
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix32(key) & mask;
    while (keys_[i] != kEmptyKey && keys_[i] != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmptyKey);
    vals_.assign(old_vals.size() * 2, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) {
        const std::size_t j = probe(old_keys[i]);
        keys_[j] = old_keys[i];
        vals_[j] = old_vals[i];
      }
    }
  }

  std::vector<std::uint32_t> keys_;
  std::vector<std::uint64_t> vals_;
  std::size_t used_ = 0;
};

}  // namespace empls::net
