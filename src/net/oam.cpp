#include "net/oam.hpp"

#include <memory>

namespace empls::net {

void Oam::settle(std::uint32_t flow, bool delivered, NodeId where,
                 std::string_view reason) {
  // Index-based and moved-out: the callback may inject further probes
  // (traceroute), which appends to probes_ — no live iterators allowed.
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].flow_id == flow && !probes_[i].settled) {
      probes_[i].settled = true;
      auto observe = std::move(probes_[i].observe);
      observe(delivered, where, reason);
      return;
    }
  }
}

Oam::Oam(Network& net) : net_(&net) {
  // One pair of handlers serves every probe this agent ever sends.
  net_->add_delivery_handler([this](NodeId egress, const mpls::Packet& p) {
    if (p.flow_id >= kOamFlowBase) {
      settle(p.flow_id, true, egress, "");
    }
  });
  net_->add_discard_handler(
      [this](NodeId where, const mpls::Packet& p, std::string_view reason) {
        if (p.flow_id >= kOamFlowBase) {
          settle(p.flow_id, false, where, reason);
        }
      });
}

std::uint32_t Oam::inject_probe(
    NodeId ingress, mpls::Ipv4Address dst, std::uint8_t cos,
    std::uint8_t ttl, SimTime timeout,
    std::function<void(bool, NodeId, std::string_view)> observe) {
  const std::uint32_t flow = next_flow_++;
  probes_.push_back(Probe{flow, net_->now(), false, std::move(observe)});

  PacketHandle probe = net_->pool().acquire();
  probe->dst = dst;
  probe->cos = cos;
  probe->ip_ttl = ttl;
  probe->flow_id = flow;
  probe->created_at = net_->now();
  probe->payload.assign(32, 0x4F);  // 'O'
  net_->inject(ingress, std::move(probe));

  // Timeout: a probe that never settles reports as lost.
  net_->events().schedule_in(timeout, [this, flow] {
    settle(flow, false, static_cast<NodeId>(-1), "timeout");
  });
  return flow;
}

void Oam::lsp_ping(NodeId ingress, mpls::Ipv4Address dst, PingCallback done,
                   SimTime timeout, std::uint8_t cos) {
  const SimTime injected_at = net_->now();
  inject_probe(ingress, dst, cos, /*ttl=*/64, timeout,
               [this, injected_at, done = std::move(done)](
                   bool delivered, NodeId where, std::string_view reason) {
                 PingResult r;
                 r.reachable = delivered;
                 r.latency = net_->now() - injected_at;
                 if (delivered) {
                   r.egress = where;
                 } else if (where != static_cast<NodeId>(-1)) {
                   r.discarded_at = where;
                   r.discard_reason = std::string(reason);
                 } else {
                   r.discard_reason = std::string(reason);  // timeout
                 }
                 done(r);
               });
}

void Oam::traceroute_step(std::shared_ptr<TracerouteResult> result,
                          NodeId ingress, mpls::Ipv4Address dst,
                          unsigned ttl, unsigned max_ttl, SimTime timeout,
                          std::uint8_t cos, TracerouteCallback done) {
  const SimTime injected_at = net_->now();
  inject_probe(
      ingress, dst, cos, static_cast<std::uint8_t>(ttl), timeout,
      [this, result, ingress, dst, ttl, max_ttl, timeout, cos,
       injected_at, done](bool delivered, NodeId where,
                          std::string_view reason) {
        const SimTime latency = net_->now() - injected_at;
        if (delivered) {
          result->hops.push_back(TracerouteHop{ttl, where, true, latency});
          result->complete = true;
          done(*result);
          return;
        }
        if (where != static_cast<NodeId>(-1) && reason == "ttl-expired") {
          result->hops.push_back(TracerouteHop{ttl, where, false, latency});
          if (ttl < max_ttl) {
            traceroute_step(result, ingress, dst, ttl + 1, max_ttl, timeout,
                            cos, done);
            return;
          }
        }
        // Non-TTL discard, timeout, or max TTL reached: stop here.
        if (where != static_cast<NodeId>(-1) && reason != "ttl-expired") {
          result->hops.push_back(TracerouteHop{ttl, where, false, latency});
        }
        done(*result);
      });
}

void Oam::lsp_traceroute(NodeId ingress, mpls::Ipv4Address dst,
                         TracerouteCallback done, unsigned max_ttl,
                         SimTime per_probe_timeout, std::uint8_t cos) {
  auto result = std::make_shared<TracerouteResult>();
  traceroute_step(std::move(result), ingress, dst, /*ttl=*/1, max_ttl,
                  per_probe_timeout, cos, std::move(done));
}

}  // namespace empls::net
