// Discrete-event scheduler for the network simulator.
//
// Events are (time, sequence, callback); ties in time run in scheduling
// order, making runs fully deterministic.  Time is in seconds (double):
// the scales involved (nanosecond transmissions, millisecond windows)
// stay well inside the 2^53 integer-exact range.
//
// Two interchangeable backends share the API and produce bit-identical
// execution order:
//   kHeap     — binary heap, O(log n) schedule/pop (the baseline);
//   kCalendar — calendar queue (R. Brown, CACM 1988): time is hashed
//               into width-sized bucket slots, so schedule and pop are
//               O(1) amortized for the clustered event times traffic
//               generates; a direct-search fallback keeps sparse or
//               irregular workloads correct.
// Callbacks are InlineEvents: move-only closures stored inline up to 64
// bytes, so steady-state scheduling performs no heap allocation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/inline_event.hpp"

namespace empls::net {

using SimTime = double;

enum class SchedulerBackend : std::uint8_t { kHeap, kCalendar };

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.  A time already in the past is
  /// clamped to now() (and counted in stats().clamped) — time travel
  /// would break the monotone-clock invariant every component assumes.
  template <typename F>
  void schedule_at(SimTime at, F&& fn) {
    schedule_event(at, InlineEvent(std::forward<F>(fn)));
  }

  /// Schedule `fn` `delay` seconds from now.
  template <typename F>
  void schedule_in(SimTime delay, F&& fn) {
    schedule_event(now_ + delay, InlineEvent(std::forward<F>(fn)));
  }

  /// Non-template core used by the helpers above.
  void schedule_event(SimTime at, InlineEvent fn);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return size_; }

  /// Run events until the queue drains or `until` is passed (events
  /// scheduled later than `until` stay queued).  Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue drains.
  std::uint64_t run();

  /// Earliest pending event time, or +inf when the queue is empty.
  /// Non-const: the calendar backend peeks by popping and re-pushing
  /// (the event keeps its sequence number, so order is unchanged).
  [[nodiscard]] SimTime next_time();

  /// Execute exactly one event (the global (time, seq) minimum).
  /// Returns false if the queue was empty.  Used by the deterministic
  /// cross-domain merge, which interleaves single events from several
  /// domain queues in global (time, domain) order.
  bool step();

  /// Run events with time strictly before `end` (or <= `end` when
  /// `inclusive`), then advance now() to `end`.  This is the conservative
  /// lookahead window primitive: strict `<` keeps window boundaries
  /// exclusive so a handoff arriving exactly at the window edge executes
  /// in the *next* window on its destination domain.
  std::uint64_t run_window(SimTime end, bool inclusive);

  /// Advance the clock without running events (now() is monotone; a
  /// target in the past is a no-op).  Domains that idle through a window
  /// still need their clock at the barrier edge so late schedules clamp
  /// consistently.
  void advance_to(SimTime t) noexcept {
    if (t > now_) {
      now_ = t;
    }
  }

  /// Select the scheduling backend.  Pending events migrate, so this may
  /// be called at any point; execution order is unaffected (both
  /// backends pop the global (time, seq) minimum).
  void set_scheduler(SchedulerBackend backend);
  [[nodiscard]] SchedulerBackend scheduler() const noexcept {
    return backend_;
  }

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t clamped = 0;        // schedule_at(at < now()) fixups
    std::uint64_t events_inline = 0;  // closures in the 64-byte buffer
    std::uint64_t events_heap_fallback = 0;  // oversized closures
    std::uint64_t calendar_rebuilds = 0;  // bucket-array resizes
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Regression guard for the past-scheduling clamp.
  [[nodiscard]] std::uint64_t clamped_schedules() const noexcept {
    return stats_.clamped;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t slot;  // cached calendar slot; unused by the heap
    InlineEvent fn;
  };

  void push(Event&& ev);
  /// Pop the global (time, seq) minimum; size_ > 0 required.
  Event pop();

  // -- heap backend ------------------------------------------------------
  void heap_push(Event&& ev);
  Event heap_pop();

  // -- calendar backend --------------------------------------------------
  void calendar_insert(Event&& ev);
  Event calendar_pop();
  void calendar_rebuild(std::size_t nbuckets);
  /// Absolute slot number of time `t`.  Truncation == floor because the
  /// clock is non-negative; one multiply instead of a divide.
  [[nodiscard]] std::uint64_t slot_of(SimTime t) const {
    return static_cast<std::uint64_t>(t * inv_width_);
  }
  /// Bucket count is always a power of two, so the hash is one AND.
  [[nodiscard]] std::size_t bucket_of(std::uint64_t slot) const {
    return static_cast<std::size_t>(slot) & mask_;
  }

  SchedulerBackend backend_ = SchedulerBackend::kHeap;
  std::size_t size_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;

  // Heap storage: a min-heap over (time, seq) kept with std::push_heap /
  // std::pop_heap so the top can be moved out (InlineEvent is move-only).
  std::vector<Event> heap_;

  // Calendar storage.  Slots are absolute (not wrapped) slot numbers;
  // every event caches its slot at insert so the pop scan does pure
  // integer compares.  Width is applied as a cached reciprocal.
  std::vector<std::vector<Event>> buckets_;
  double width_ = 1e-3;      // bucket width in seconds
  double inv_width_ = 1e3;   // 1 / width_, kept in sync by rebuild
  std::size_t mask_ = 0;     // buckets_.size() - 1 (power of two)
  std::uint64_t cursor_slot_ = 0;  // slot currently being drained
};

}  // namespace empls::net
