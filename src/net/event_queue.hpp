// Discrete-event scheduler for the network simulator.
//
// Events are (time, sequence, callback); ties in time run in scheduling
// order, making runs fully deterministic.  Time is in seconds (double):
// the scales involved (nanosecond transmissions, millisecond windows)
// stay well inside the 2^53 integer-exact range.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace empls::net {

using SimTime = double;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Run events until the queue drains or `until` is passed (events
  /// scheduled later than `until` stay queued).  Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue drains.
  std::uint64_t run();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace empls::net
