// Distributed link-state routing (OSPF-lite).
//
// The paper assumes "several protocols exist (LDP, OSPF, RSVP...)" feed
// the MPLS control plane; ControlPlane::compute_path cheats by reading
// the global topology.  This module removes the cheat: every router
// runs a link-state agent that
//
//   * originates a Link State Advertisement (LSA) describing its own
//     adjacencies (cost = propagation delay) with a sequence number,
//   * floods LSAs to its neighbours over simulated time (per-hop flood
//     delay), re-flooding only strictly newer information, and
//   * answers path queries by running SPF (Dijkstra) over ITS OWN link
//     state database — which may be stale while the network converges.
//
// Convergence — the window in which different routers disagree about
// the topology — is therefore measurable, and bench_convergence (X10)
// sweeps it against network size.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace empls::net {

class LinkStateRouting {
 public:
  /// `flood_hop_delay`: LSA propagation + processing per flooding hop
  /// (real IGPs: link delay + a pacing timer).
  explicit LinkStateRouting(Network& net, SimTime flood_hop_delay = 1e-3)
      : net_(&net), hop_delay_(flood_hop_delay) {}
  LinkStateRouting(const LinkStateRouting&) = delete;
  LinkStateRouting& operator=(const LinkStateRouting&) = delete;

  /// Enroll a router in the protocol.
  void add_router(NodeId id);

  /// Enroll every node in the network.
  void add_all_routers();

  /// Originate initial LSAs everywhere and start flooding.  The network
  /// converges over simulated time; run the event queue and check
  /// converged().
  void bootstrap();

  /// A router noticed one of its links change (failure detection,
  /// interface event): it re-originates its LSA — both endpoints do —
  /// and the news floods out.
  void notify_link_change(NodeId a, NodeId b);

  /// SPF over `viewpoint`'s own database.  nullopt when the viewpoint
  /// currently believes `dst` unreachable (possibly stale!).
  [[nodiscard]] std::optional<std::vector<NodeId>> path_from(
      NodeId viewpoint, NodeId dst) const;

  /// True when every enrolled router's database is identical.
  [[nodiscard]] bool converged() const;

  /// Time of the most recent database change anywhere — after the event
  /// queue drains, (last_change_at - failure time) is the convergence
  /// time.
  [[nodiscard]] SimTime last_change_at() const noexcept {
    return last_change_;
  }

  struct Stats {
    std::uint64_t lsas_originated = 0;
    std::uint64_t floods_sent = 0;      // LSA copies handed to neighbours
    std::uint64_t floods_accepted = 0;  // copies that were news
    std::uint64_t floods_stale = 0;     // copies dropped as old news
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Lsa {
    NodeId origin = 0;
    std::uint64_t seq = 0;
    // (neighbor, cost) for each up adjacency at origination time.
    std::vector<std::pair<NodeId, double>> links;
  };
  /// Per-router link state database: origin → freshest LSA seen.
  using Lsdb = std::map<NodeId, Lsa>;

  [[nodiscard]] Lsa originate(NodeId id);
  void flood_from(NodeId id, const Lsa& lsa);
  void receive(NodeId at, Lsa lsa);

  Network* net_;
  SimTime hop_delay_;
  std::map<NodeId, Lsdb> agents_;
  std::map<NodeId, std::uint64_t> next_seq_;
  SimTime last_change_ = 0.0;
  Stats stats_;
};

}  // namespace empls::net
