// Traffic generators for the workloads the paper's introduction
// motivates: VoIP (constant bit rate, small packets, latency-critical),
// streaming video (periodic frame bursts), and bursty best-effort data
// (on/off with Poisson arrivals inside bursts).
//
// Each source schedules itself on the network's event queue, stamps
// packets with flow id / creation time / CoS, reports sends to a
// FlowStats collector, and injects at an ingress node.
#pragma once

#include <cstdint>
#include <memory>
#include <random>

#include "mpls/packet.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"

namespace empls::net {

struct FlowSpec {
  std::uint32_t flow_id = 0;
  NodeId ingress = 0;
  mpls::Ipv4Address src{};
  mpls::Ipv4Address dst{};
  std::uint8_t cos = 0;
  std::size_t payload_bytes = 160;
  SimTime start = 0.0;
  SimTime stop = 1.0;
};

class TrafficSource {
 public:
  TrafficSource(Network& net, FlowSpec spec, FlowStats* stats)
      : net_(&net), spec_(spec), stats_(stats) {}
  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;
  virtual ~TrafficSource() = default;

  /// Arm the source (schedules the first packet at spec.start).
  virtual void start() = 0;

  [[nodiscard]] const FlowSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }

 protected:
  /// Build, account and inject one packet at the current sim time.
  void emit();

  Network* net_;
  FlowSpec spec_;
  FlowStats* stats_;
  std::uint64_t sent_ = 0;
};

/// Constant bit rate: one packet every `interval` seconds (VoIP: 20 ms
/// voice frames).
class CbrSource : public TrafficSource {
 public:
  CbrSource(Network& net, FlowSpec spec, FlowStats* stats, SimTime interval)
      : TrafficSource(net, spec, stats), interval_(interval) {}

  void start() override;

 private:
  void tick();
  SimTime interval_;
};

/// Poisson arrivals at a mean rate (packets/second) — aggregate
/// best-effort data traffic.
class PoissonSource : public TrafficSource {
 public:
  PoissonSource(Network& net, FlowSpec spec, FlowStats* stats,
                double rate_pps, std::uint64_t seed = 1)
      : TrafficSource(net, spec, stats), rate_(rate_pps), rng_(seed) {}

  void start() override;

 private:
  void tick();
  double rate_;
  std::mt19937_64 rng_;
};

/// Periodic frame bursts: every `frame_interval`, `packets_per_frame`
/// packets injected back to back (streaming video: e.g. 30 fps frames
/// fragmented into MTU-sized packets).
class VideoSource : public TrafficSource {
 public:
  VideoSource(Network& net, FlowSpec spec, FlowStats* stats,
              SimTime frame_interval, unsigned packets_per_frame)
      : TrafficSource(net, spec, stats),
        frame_interval_(frame_interval),
        packets_per_frame_(packets_per_frame) {}

  void start() override;

 private:
  void frame();
  SimTime frame_interval_;
  unsigned packets_per_frame_;
};

/// On/off source: exponentially distributed burst and idle durations;
/// CBR at `rate_pps` while on.
class OnOffSource : public TrafficSource {
 public:
  OnOffSource(Network& net, FlowSpec spec, FlowStats* stats, double rate_pps,
              SimTime mean_on, SimTime mean_off, std::uint64_t seed = 1)
      : TrafficSource(net, spec, stats),
        rate_(rate_pps),
        mean_on_(mean_on),
        mean_off_(mean_off),
        rng_(seed) {}

  void start() override;

 private:
  void begin_burst();
  void tick(SimTime burst_end);
  double rate_;
  SimTime mean_on_;
  SimTime mean_off_;
  std::mt19937_64 rng_;
};

}  // namespace empls::net
