// Deterministic fault-injection campaigns for the simulated network.
//
// Robustness claims need adversarial inputs, not just the one scripted
// cut: FaultInjector schedules link cuts, sub-detection-window flaps,
// whole-node crashes and information-base corruptions (single-event
// upsets that garble a programmed label while the software mirror stays
// intact) against the running simulation.  Campaigns are generated from
// a seed (std::mt19937_64) over the actual topology, so a failing run
// reproduces exactly from its seed.
//
// DropAccountant closes the books: subscribing to both the router
// discard handlers and the link drop hooks, it attributes every lost
// packet to a flow and a reason, so a campaign can assert flow
// conservation — sent = delivered + accounted drops — for every flow
// that survives the run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/flat_counts.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "obs/drop_reason.hpp"

namespace empls::net {

enum class FaultKind : std::uint8_t {
  kCut,      // connection down, up again after `duration` (0: forever)
  kFlap,     // short down/up blip, meant to undercut the dead interval
  kCrash,    // every connection of node `a` down, up after `duration`
  kCorrupt,  // garble a programmed binding at `a`; resync after `duration`
};

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCut:
      return "cut";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

struct FaultSpec {
  FaultKind kind = FaultKind::kCut;
  SimTime at = 0;
  NodeId a = 0;
  NodeId b = 0;          // peer (kCut / kFlap only)
  SimTime duration = 0;  // repair delay; 0 = never repaired
  std::uint64_t salt = 0;  // corruption target selector (kCorrupt)
};

struct FaultRecord {
  FaultSpec spec;
  bool injected = false;
  bool cleared = false;    // repair/recovery action ran
  bool corrupted = false;  // kCorrupt: a binding was actually garbled
  unsigned resynced = 0;   // kCorrupt: divergent entries the audit fixed
};

class FaultInjector {
 public:
  FaultInjector(Network& net, ControlPlane& cp) : net_(&net), cp_(&cp) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule one fault (and its repair, when duration > 0) on the
  /// network's event queue.  Returns the index of its record.
  std::size_t inject(const FaultSpec& spec);

  /// Seeded mixed campaign over the current topology: `count` faults at
  /// uniform times in [start, horizon), targets drawn from the actual
  /// connections and routers.  Flap durations are kept below
  /// `detection_window` so a hello protocol tuned to it must NOT declare
  /// them; other durations are long enough that it must.
  [[nodiscard]] std::vector<FaultSpec> generate_campaign(
      std::uint64_t seed, unsigned count, SimTime start, SimTime horizon,
      SimTime detection_window = 30e-3) const;

  /// inject() every spec.  Returns the number scheduled.
  std::size_t schedule_campaign(const std::vector<FaultSpec>& specs);

  [[nodiscard]] const std::vector<FaultRecord>& records() const noexcept {
    return records_;
  }

  /// "faults=50 cut=18 flap=14 crash=8 corrupt=10 corrupted=9 resynced=9"
  [[nodiscard]] std::string summary() const;

 private:
  void apply(std::size_t index);
  void repair(std::size_t index);

  Network* net_;
  ControlPlane* cp_;
  std::vector<FaultRecord> records_;
};

/// Per-flow drop ledger: every packet a router discards or a link drops,
/// attributed to its flow.  With the event queue drained, each flow must
/// satisfy sent = delivered + drops(flow) — anything else means a packet
/// vanished without a notification, which is a simulator bug.
class DropAccountant {
 public:
  explicit DropAccountant(Network& net);
  DropAccountant(const DropAccountant&) = delete;
  DropAccountant& operator=(const DropAccountant&) = delete;

  [[nodiscard]] std::uint64_t drops(std::uint32_t flow_id) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Per-reason totals indexed by obs::DropReason (the accounting path
  /// maps the reason string to its enum once per drop — no string
  /// allocation, no map).
  [[nodiscard]] const obs::DropCounts& reason_counts() const noexcept {
    return reasons_;
  }
  [[nodiscard]] std::uint64_t drops_for(obs::DropReason r) const noexcept {
    return reasons_[static_cast<std::size_t>(r)];
  }
  /// Legacy string-keyed view, built on demand (reporting only).
  [[nodiscard]] std::map<std::string, std::uint64_t> by_reason() const;

  /// Aggregate drops over a half-open flow-id range (used to close the
  /// books on an open-loop generator's id block without walking a map).
  [[nodiscard]] std::uint64_t drops_in_range(std::uint32_t lo,
                                             std::uint32_t hi) const;

  /// Distinct flows that lost at least one packet.
  [[nodiscard]] std::size_t flows_with_drops() const noexcept {
    return by_flow_.size();
  }

  /// True when every flow in `stats` conserves packets.
  [[nodiscard]] bool conserved(const FlowStats& stats) const;

 private:
  void account(std::uint32_t flow_id, std::string_view reason);

  FlatCounts by_flow_;
  obs::DropCounts reasons_{};
  std::uint64_t total_ = 0;
};

}  // namespace empls::net
