#include "net/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace empls::net {

namespace {

// Calendar sizing: Brown's rule of thumb — keep roughly one pending
// event per bucket, resize by doubling/halving outside [1/8, 2] load.
constexpr std::size_t kMinBuckets = 16;
// Floor for the bucket width: protects slot numbers from blowing past
// the 2^53 integer-exact range when every pending event shares one
// timestamp (width would otherwise collapse to zero).
constexpr double kMinWidth = 1e-12;

/// Heap comparator: std::push_heap keeps the comp-maximum at front, so
/// "later is greater" puts the earliest (time, seq) on top.
struct Later {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

}  // namespace

void EventQueue::schedule_event(SimTime at, InlineEvent fn) {
  if (at < now_) {
    // Time travel: the caller computed a deadline that already passed
    // (e.g. a zero-length timer rounded down).  Run it "immediately"
    // instead of corrupting the monotone clock, and count the fixup.
    at = now_;
    ++stats_.clamped;
  }
  ++stats_.scheduled;
  if (fn.is_inline()) {
    ++stats_.events_inline;
  } else {
    ++stats_.events_heap_fallback;
  }
  push(Event{at, next_seq_++, /*slot=*/0, std::move(fn)});
}

void EventQueue::push(Event&& ev) {
  if (backend_ == SchedulerBackend::kHeap) {
    heap_push(std::move(ev));
  } else {
    calendar_insert(std::move(ev));
  }
  ++size_;
}

EventQueue::Event EventQueue::pop() {
  assert(size_ > 0);
  --size_;
  if (backend_ == SchedulerBackend::kHeap) {
    return heap_pop();
  }
  return calendar_pop();
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (size_ > 0) {
    Event ev = pop();
    if (ev.time > until) {
      push(std::move(ev));  // keeps its sequence number: order unchanged
      break;
    }
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  stats_.executed += executed;
  return executed;
}

std::uint64_t EventQueue::run() {
  std::uint64_t executed = 0;
  while (size_ > 0) {
    Event ev = pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  stats_.executed += executed;
  return executed;
}

SimTime EventQueue::next_time() {
  if (size_ == 0) {
    return std::numeric_limits<SimTime>::infinity();
  }
  if (backend_ == SchedulerBackend::kHeap) {
    return heap_.front().time;
  }
  // Calendar: pop the minimum and re-push it.  The event keeps its
  // sequence number so execution order is unchanged; the cursor pull-back
  // in calendar_insert restores the scan position.
  Event ev = pop();
  const SimTime t = ev.time;
  push(std::move(ev));
  return t;
}

bool EventQueue::step() {
  if (size_ == 0) {
    return false;
  }
  Event ev = pop();
  now_ = ev.time;
  ev.fn();
  ++stats_.executed;
  return true;
}

std::uint64_t EventQueue::run_window(SimTime end, bool inclusive) {
  std::uint64_t executed = 0;
  while (size_ > 0) {
    Event ev = pop();
    if (ev.time > end || (!inclusive && ev.time == end)) {
      push(std::move(ev));  // keeps its sequence number: order unchanged
      break;
    }
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < end) {
    now_ = end;
  }
  stats_.executed += executed;
  return executed;
}

void EventQueue::set_scheduler(SchedulerBackend backend) {
  if (backend == backend_) {
    return;
  }
  // Drain the old structure, switch, re-push.  Sequence numbers ride
  // along, so execution order is unchanged.
  std::vector<Event> pending;
  pending.reserve(size_);
  if (backend_ == SchedulerBackend::kHeap) {
    pending = std::move(heap_);
    heap_.clear();
  } else {
    for (auto& bucket : buckets_) {
      for (auto& ev : bucket) {
        pending.push_back(std::move(ev));
      }
      bucket.clear();
    }
  }
  backend_ = backend;
  size_ = 0;
  for (auto& ev : pending) {
    push(std::move(ev));
  }
}

// ---------------------------------------------------------------------
// Heap backend.

void EventQueue::heap_push(Event&& ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Event EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

// ---------------------------------------------------------------------
// Calendar backend.
//
// An event's slot is trunc(time * 1/width) — exact for the non-negative
// clock — cached in the event at insert, and it lives in bucket
// (slot & mask).  The cursor walks slots in order; within the cursor's
// slot the (time, seq) minimum is popped, which is the global minimum
// because all earlier slots have been drained and later slots only hold
// later times.  The hot paths are branchy integer code on purpose: no
// divides, no fmod, no floor.

void EventQueue::calendar_insert(Event&& ev) {
  if (buckets_.empty()) {
    calendar_rebuild(kMinBuckets);
  } else if (size_ + 1 > 2 * buckets_.size()) {
    calendar_rebuild(2 * buckets_.size());
  }
  ev.slot = slot_of(ev.time);
  // An event may land behind the cursor: run_until() can advance now()
  // past slots the cursor already drained, and the next schedule lands
  // in one of them.  Pull the cursor back so the scan can't pop a later
  // event first.
  if (ev.slot < cursor_slot_ || size_ == 0) {
    cursor_slot_ = ev.slot;
  }
  buckets_[bucket_of(ev.slot)].push_back(std::move(ev));
}

EventQueue::Event EventQueue::calendar_pop() {
  // size_ was already decremented by pop(); the true count is size_ + 1.
  if (buckets_.size() > kMinBuckets && (size_ + 1) * 8 < buckets_.size()) {
    calendar_rebuild(buckets_.size() / 2);
  }
  const std::size_t n = buckets_.size();
  auto better = [](const Event& a, const Event& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  };
  auto take = [](std::vector<Event>& bucket, std::size_t i) {
    Event ev = std::move(bucket[i]);
    if (i + 1 != bucket.size()) {
      bucket[i] = std::move(bucket.back());  // intra-bucket order is free
    }
    bucket.pop_back();
    return ev;
  };

  std::uint64_t scan = cursor_slot_;
  std::size_t b = bucket_of(scan);
  for (std::size_t visited = 0; visited <= n;
       ++visited, ++scan, b = (b + 1) & mask_) {
    auto& bucket = buckets_[b];
    std::size_t best = bucket.size();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].slot != scan) {
        continue;  // a later year sharing this bucket
      }
      if (best == bucket.size() || better(bucket[i], bucket[best])) {
        best = i;
      }
    }
    if (best != bucket.size()) {
      cursor_slot_ = scan;
      return take(bucket, best);
    }
  }

  // A full rotation found nothing: every pending event is at least one
  // rotation ahead of the cursor (a sparse stretch).  Direct-search the
  // global minimum and jump the cursor to it.
  std::size_t best_bucket = n;
  std::size_t best_index = 0;
  for (std::size_t bkt = 0; bkt < n; ++bkt) {
    for (std::size_t i = 0; i < buckets_[bkt].size(); ++i) {
      if (best_bucket == n ||
          better(buckets_[bkt][i], buckets_[best_bucket][best_index])) {
        best_bucket = bkt;
        best_index = i;
      }
    }
  }
  assert(best_bucket != n && "pop on an empty calendar");
  cursor_slot_ = buckets_[best_bucket][best_index].slot;
  return take(buckets_[best_bucket], best_index);
}

void EventQueue::calendar_rebuild(std::size_t nbuckets) {
  ++stats_.calendar_rebuilds;
  std::vector<Event> pending;
  pending.reserve(size_);
  for (auto& bucket : buckets_) {
    for (auto& ev : bucket) {
      pending.push_back(std::move(ev));
    }
  }
  buckets_.clear();
  buckets_.resize(std::max(nbuckets, kMinBuckets));  // stays a power of 2
  mask_ = buckets_.size() - 1;

  // Re-estimate the width so the pending population spreads to about
  // one event per bucket.  The estimate is the *median* non-zero
  // inter-event gap, not span/count: a handful of far-future outliers
  // (pre-scheduled telemetry sample ticks, a link failure armed minutes
  // ahead) would stretch a span-based width by orders of magnitude
  // until the dense population collapsed into a single slot and every
  // pop degenerated into a linear scan.  The median ignores them.  An
  // empty or single-time population keeps the current width.
  if (pending.size() >= 2) {
    std::vector<double> times;
    times.reserve(pending.size());
    for (const auto& ev : pending) {
      times.push_back(ev.time);
    }
    std::sort(times.begin(), times.end());
    std::vector<double> gaps;
    gaps.reserve(times.size() - 1);
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double gap = times[i] - times[i - 1];
      if (gap > 0.0) {
        gaps.push_back(gap);
      }
    }
    if (!gaps.empty()) {
      const auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
      std::nth_element(gaps.begin(), mid, gaps.end());
      width_ = std::max(*mid, kMinWidth);
      inv_width_ = 1.0 / width_;
    }
  }

  cursor_slot_ = slot_of(now_);
  for (auto& ev : pending) {
    ev.slot = slot_of(ev.time);  // slots shift with the new width
    cursor_slot_ = std::min(cursor_slot_, ev.slot);
  }
  for (auto& ev : pending) {
    buckets_[bucket_of(ev.slot)].push_back(std::move(ev));
  }
}

}  // namespace empls::net
