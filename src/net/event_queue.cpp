#include "net/event_queue.hpp"

#include <cassert>

namespace empls::net {

void EventQueue::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= until) {
    // Move the event out before popping so the callback may schedule
    // further events safely.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

std::uint64_t EventQueue::run() {
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace empls::net
