#include "net/protection.hpp"

namespace empls::net {

void ProtectionManager::attach_fast_signal() {
  net_->add_link_signal_handler([this](NodeId a, NodeId b, bool up) {
    if (up) {
      on_connection_up(a, b);
    } else {
      on_connection_down(a, b);
    }
  });
}

void ProtectionManager::arm(FailureDetector& detector) {
  detector.add_on_failure(
      [this](NodeId a, NodeId b) { on_connection_down(a, b); });
  detector.set_reroute_filter(
      [this](LspId id) { return !is_switched(id); });
}

bool ProtectionManager::activate(BackupRecord& rec) {
  MplsNode* plr = cp_->router_for(rec.plr);
  if (plr == nullptr) {
    return false;
  }
  // One local rebind at the PLR.  The detour's transit bindings are
  // already in the information bases (fresh keys, installed at protect
  // time), so only this entry changes — on the embedded router that is
  // the bounded reset-and-reprogram flow, nothing more.
  bool ok = false;
  switch (rec.plr_op) {
    case BackupRecord::PlrOp::kIngress:
      ok = plr->program_ingress_prefix(rec.fec, rec.backup_label,
                                       rec.backup_port);
      break;
    case BackupRecord::PlrOp::kSwap:
    case BackupRecord::PlrOp::kPop:
      // A PLR whose primary action was the PHP pop swaps onto the detour
      // instead; the detour's last hop performs the pop toward the
      // egress.
      ok = plr->program_swap(2, rec.in_label, rec.backup_label,
                             rec.backup_port);
      break;
  }
  rec.active = ok;
  return ok;
}

bool ProtectionManager::revert(BackupRecord& rec) {
  MplsNode* plr = cp_->router_for(rec.plr);
  if (plr == nullptr) {
    return false;
  }
  bool ok = false;
  switch (rec.plr_op) {
    case BackupRecord::PlrOp::kIngress:
      ok = plr->program_ingress_prefix(rec.fec, rec.primary_label,
                                       rec.primary_port);
      break;
    case BackupRecord::PlrOp::kSwap:
      ok = plr->program_swap(2, rec.in_label, rec.primary_label,
                             rec.primary_port);
      break;
    case BackupRecord::PlrOp::kPop:
      ok = plr->program_pop(2, rec.in_label, rec.primary_port);
      break;
  }
  if (ok) {
    rec.active = false;
  }
  return ok;
}

void ProtectionManager::on_connection_down(NodeId a, NodeId b) {
  Event event{net_->now(), a, b, /*link_up=*/false, 0, 0, 0};
  std::vector<LspId> covered;
  for (const std::size_t index : cp_->backups_for(a, b)) {
    BackupRecord& rec = cp_->backup(index);
    covered.push_back(rec.lsp);
    if (rec.active) {
      continue;  // already switched (fast signal beat the detector here)
    }
    if (activate(rec)) {
      ++event.switched;
      ++switches_;
    }
  }
  for (const LspId id : cp_->lsps_using(a, b)) {
    bool has_backup = false;
    for (const LspId c : covered) {
      if (c == id) {
        has_backup = true;
        break;
      }
    }
    if (!has_backup) {
      ++event.unprotected;  // global restoration's problem
    }
  }
  if (event.switched > 0 || event.unprotected > 0) {
    events_.push_back(event);
  }
}

void ProtectionManager::on_connection_up(NodeId a, NodeId b) {
  Event event{net_->now(), a, b, /*link_up=*/true, 0, 0, 0};
  for (const std::size_t index : cp_->backups_for(a, b)) {
    BackupRecord& rec = cp_->backup(index);
    if (rec.active && revert(rec)) {
      ++event.reverted;
      ++reverts_;
    }
  }
  if (event.reverted > 0) {
    events_.push_back(event);
  }
}

bool ProtectionManager::is_switched(LspId id) const {
  for (const std::size_t index : cp_->backups_of(id)) {
    if (cp_->backup(index).active) {
      return true;
    }
  }
  return false;
}

}  // namespace empls::net
