#include "net/signaling.hpp"

#include <cassert>
#include <memory>

namespace empls::net {

bool SignalingProtocol::signal_lsp(const std::vector<NodeId>& path,
                                   const mpls::Prefix& fec, double bw,
                                   Callback done) {
  if (path.size() < 2) {
    return false;
  }
  for (const NodeId id : path) {
    if (cp_->router_for(id) == nullptr) {
      return false;
    }
  }
  auto session = std::make_shared<Session>();
  session->path = path;
  session->fec = fec;
  session->bw = bw;
  session->started_at = net_->now();
  session->done = std::move(done);

  // The PATH message leaves the ingress after local processing.
  net_->events().schedule_in(
      proc_, [this, session] { path_message(session, 0); });
  return true;
}

SimTime SignalingProtocol::hop_delay(const Session& s, std::size_t i) const {
  for (const auto& adj : net_->adjacency(s.path[i])) {
    if (adj.neighbor == s.path[i + 1] &&
        (s.ports.size() <= i || adj.port == s.ports[i])) {
      return adj.prop_delay;
    }
  }
  return 0.0;
}

void SignalingProtocol::path_message(std::shared_ptr<Session> s,
                                     std::size_t hop) {
  ++stats_.path_messages;
  // Admission for the hop leaving this node (egress admits trivially).
  if (hop + 1 < s->path.size()) {
    const auto admitted = cp_->admit_hop(s->path[hop], s->path[hop + 1],
                                         s->bw);
    if (!admitted) {
      // Refused: PATH_ERR back toward the ingress, releasing tentative
      // reservations behind us.
      ++stats_.path_err_messages;
      if (hop == 0) {
        fail(s, 0);
      } else {
        const std::size_t prev = hop - 1;
        net_->events().schedule_in(
            hop_delay(*s, prev) + proc_,
            [this, s, prev] { path_err_message(s, prev); });
      }
      return;
    }
    s->ports.push_back(admitted->first);
    cp_->reserve_hop(s->path[hop], admitted->first, s->bw);
    // Forward the PATH to the next hop.
    net_->events().schedule_in(
        hop_delay(*s, hop) + proc_,
        [this, s, hop] { path_message(s, hop + 1); });
    return;
  }
  // Reached the egress: start the RESV pass (labels + programming).
  resv_message(s, hop);
}

void SignalingProtocol::resv_message(std::shared_ptr<Session> s,
                                     std::size_t hop) {
  ++stats_.resv_messages;
  MplsNode* node = cp_->router_for(s->path[hop]);
  assert(node != nullptr);
  const std::size_t last = s->path.size() - 1;

  // Label-exhaustion abort: release every tentative reservation and the
  // labels announced so far (owned by path[hop+1..last]).
  auto abort_resv = [&] {
    for (std::size_t i = 0; i < s->ports.size(); ++i) {
      cp_->release_hop(s->path[i], s->ports[i], s->bw);
    }
    for (std::size_t i = 0; i < s->labels.size(); ++i) {
      MplsNode* owner = cp_->router_for(s->path[hop + 1 + i]);
      if (owner != nullptr) {
        owner->label_allocator().release(s->labels[i]);
      }
    }
    fail(s, hop);
  };

  if (hop == last) {
    // Egress: allocate the label it expects and program the pop.
    const auto label = node->label_allocator().allocate();
    if (!label) {
      abort_resv();
      return;
    }
    s->labels.insert(s->labels.begin(), *label);
    node->program_pop(2, *label, mpls::kLocalDeliver);
  } else if (hop > 0) {
    // Transit: allocate the label this node expects and swap it into
    // the label the downstream node announced.
    const auto label = node->label_allocator().allocate();
    if (!label) {
      abort_resv();
      return;
    }
    s->labels.insert(s->labels.begin(), *label);
    node->program_swap(2, *label, s->labels[1], s->ports[hop]);
  } else {
    // Ingress: bind the FEC to the first announced label; done.
    node->program_ingress_prefix(s->fec, s->labels.front(), s->ports[0]);
    complete(s);
    return;
  }
  const std::size_t prev = hop - 1;
  net_->events().schedule_in(hop_delay(*s, prev) + proc_,
                             [this, s, prev] { resv_message(s, prev); });
}

void SignalingProtocol::path_err_message(std::shared_ptr<Session> s,
                                         std::size_t hop) {
  ++stats_.path_err_messages;
  // Release this node's tentative reservation.
  if (hop < s->ports.size()) {
    cp_->release_hop(s->path[hop], s->ports[hop], s->bw);
  }
  if (hop == 0) {
    fail(s, s->ports.size());
    return;
  }
  const std::size_t prev = hop - 1;
  net_->events().schedule_in(
      hop_delay(*s, prev) + proc_,
      [this, s, prev] { path_err_message(s, prev); });
}

void SignalingProtocol::complete(const std::shared_ptr<Session>& s) {
  ++stats_.setups_completed;
  LspRecord record;
  record.path = s->path;
  record.labels = s->labels;
  record.fec = s->fec;
  record.reserved_bw = s->bw;
  Result result;
  result.lsp = cp_->adopt(std::move(record));
  result.setup_latency = net_->now() - s->started_at;
  if (s->done) {
    s->done(result);
  }
}

void SignalingProtocol::fail(const std::shared_ptr<Session>& s,
                             std::size_t failed_hop) {
  ++stats_.setups_failed;
  Result result;
  result.setup_latency = net_->now() - s->started_at;
  result.failed_hop = failed_hop;
  if (s->done) {
    s->done(result);
  }
}

}  // namespace empls::net
