#include "net/fault_injector.hpp"

#include <random>
#include <sstream>

#include "net/mpls_node.hpp"

namespace empls::net {

std::size_t FaultInjector::inject(const FaultSpec& spec) {
  const std::size_t index = records_.size();
  records_.push_back(FaultRecord{spec, false, false, false, 0});
  net_->events().schedule_at(spec.at, [this, index] { apply(index); });
  if (spec.duration > 0) {
    net_->events().schedule_at(spec.at + spec.duration,
                               [this, index] { repair(index); });
  }
  return index;
}

void FaultInjector::apply(std::size_t index) {
  FaultRecord& rec = records_[index];
  rec.injected = true;
  switch (rec.spec.kind) {
    case FaultKind::kCut:
    case FaultKind::kFlap:
      net_->set_connection_up(rec.spec.a, rec.spec.b, false);
      break;
    case FaultKind::kCrash:
      // A dead node is a node whose every adjacency went dark at once.
      for (const auto& adj : net_->adjacency(rec.spec.a)) {
        net_->set_connection_up(rec.spec.a, adj.neighbor, false);
      }
      break;
    case FaultKind::kCorrupt: {
      MplsNode* router = cp_->router_for(rec.spec.a);
      rec.corrupted =
          router != nullptr && router->corrupt_binding(rec.spec.salt);
      break;
    }
  }
}

void FaultInjector::repair(std::size_t index) {
  FaultRecord& rec = records_[index];
  rec.cleared = true;
  switch (rec.spec.kind) {
    case FaultKind::kCut:
    case FaultKind::kFlap:
      net_->set_connection_up(rec.spec.a, rec.spec.b, true);
      break;
    case FaultKind::kCrash:
      for (const auto& adj : net_->adjacency(rec.spec.a)) {
        net_->set_connection_up(rec.spec.a, adj.neighbor, true);
      }
      break;
    case FaultKind::kCorrupt: {
      // The repair for silent corruption is the audit: compare hardware
      // against the software mirror and reprogram on divergence.
      MplsNode* router = cp_->router_for(rec.spec.a);
      if (router != nullptr) {
        rec.resynced = router->resync_hardware();
      }
      break;
    }
  }
}

std::vector<FaultSpec> FaultInjector::generate_campaign(
    std::uint64_t seed, unsigned count, SimTime start, SimTime horizon,
    SimTime detection_window) const {
  std::vector<std::pair<NodeId, NodeId>> connections;
  std::vector<NodeId> routers;
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    if (cp_->router_for(id) != nullptr) {
      routers.push_back(id);
    }
    for (const auto& adj : net_->adjacency(id)) {
      if (id < adj.neighbor) {
        connections.emplace_back(id, adj.neighbor);
      }
    }
  }

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(start, horizon);
  // Flaps stay under half the detection window (consecutive-miss reset
  // must absorb them); everything else outlasts two windows so the
  // hello protocol must declare it.
  std::uniform_real_distribution<double> flap_for(detection_window * 0.1,
                                                  detection_window * 0.5);
  std::uniform_real_distribution<double> outage_for(detection_window * 2.0,
                                                    detection_window * 6.0);
  std::uniform_int_distribution<unsigned> kind_die(0, 99);

  std::vector<FaultSpec> specs;
  specs.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    FaultSpec spec;
    const unsigned roll = kind_die(rng);
    spec.kind = roll < 40   ? FaultKind::kCut
                : roll < 65 ? FaultKind::kFlap
                : roll < 80 ? FaultKind::kCrash
                            : FaultKind::kCorrupt;
    spec.at = when(rng);
    switch (spec.kind) {
      case FaultKind::kCut: {
        if (connections.empty()) {
          continue;
        }
        const auto& c = connections[rng() % connections.size()];
        spec.a = c.first;
        spec.b = c.second;
        spec.duration = outage_for(rng);
        break;
      }
      case FaultKind::kFlap: {
        if (connections.empty()) {
          continue;
        }
        const auto& c = connections[rng() % connections.size()];
        spec.a = c.first;
        spec.b = c.second;
        spec.duration = flap_for(rng);
        break;
      }
      case FaultKind::kCrash:
        if (routers.empty()) {
          continue;
        }
        spec.a = routers[rng() % routers.size()];
        spec.duration = outage_for(rng);
        break;
      case FaultKind::kCorrupt:
        if (routers.empty()) {
          continue;
        }
        spec.a = routers[rng() % routers.size()];
        spec.salt = rng();
        spec.duration = flap_for(rng);  // audit latency
        break;
    }
    specs.push_back(spec);
  }
  return specs;
}

std::size_t FaultInjector::schedule_campaign(
    const std::vector<FaultSpec>& specs) {
  for (const auto& spec : specs) {
    inject(spec);
  }
  return specs.size();
}

std::string FaultInjector::summary() const {
  unsigned cut = 0;
  unsigned flap = 0;
  unsigned crash = 0;
  unsigned corrupt = 0;
  unsigned corrupted = 0;
  unsigned resynced = 0;
  for (const auto& rec : records_) {
    switch (rec.spec.kind) {
      case FaultKind::kCut:
        ++cut;
        break;
      case FaultKind::kFlap:
        ++flap;
        break;
      case FaultKind::kCrash:
        ++crash;
        break;
      case FaultKind::kCorrupt:
        ++corrupt;
        corrupted += rec.corrupted ? 1 : 0;
        resynced += rec.resynced;
        break;
    }
  }
  std::ostringstream os;
  os << "faults=" << records_.size() << " cut=" << cut << " flap=" << flap
     << " crash=" << crash << " corrupt=" << corrupt
     << " corrupted=" << corrupted << " resynced=" << resynced;
  return os.str();
}

DropAccountant::DropAccountant(Network& net) {
  net.add_discard_handler(
      [this](NodeId, const mpls::Packet& p, std::string_view reason) {
        account(p.flow_id, reason);
      });
  net.add_link_drop_handler(
      [this](const mpls::Packet& p, std::string_view reason) {
        account(p.flow_id, reason);
      });
}

void DropAccountant::account(std::uint32_t flow_id, std::string_view reason) {
  ++by_flow_[flow_id];
  ++reasons_[static_cast<std::size_t>(obs::drop_reason_from_string(reason))];
  ++total_;
}

std::uint64_t DropAccountant::drops(std::uint32_t flow_id) const {
  return by_flow_.get(flow_id);
}

std::map<std::string, std::uint64_t> DropAccountant::by_reason() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
    if (reasons_[i] > 0) {
      out.emplace(obs::to_string(static_cast<obs::DropReason>(i)),
                  reasons_[i]);
    }
  }
  return out;
}

std::uint64_t DropAccountant::drops_in_range(std::uint32_t lo,
                                             std::uint32_t hi) const {
  std::uint64_t sum = 0;
  by_flow_.for_each([&](std::uint32_t flow, std::uint64_t n) {
    if (flow >= lo && flow < hi) {
      sum += n;
    }
  });
  return sum;
}

bool DropAccountant::conserved(const FlowStats& stats) const {
  for (const auto& [id, flow] : stats.flows()) {
    if (flow.sent != flow.delivered + drops(id)) {
      return false;
    }
  }
  return true;
}

}  // namespace empls::net
