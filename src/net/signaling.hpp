// Message-based LSP signaling (CR-LDP / RSVP-TE style).
//
// The paper assumes "routing functionality" — label path creation and
// distribution — runs in software and names RSVP-TE and CR-LDP as the
// protocols that do it.  ControlPlane::establish_lsp models the *result*
// of that signalling instantaneously; this module models the signalling
// itself, so LSP setup takes simulated time and can fail mid-path:
//
//   * a PATH (label request) message travels ingress → egress along the
//     explicit route, performing admission control and tentatively
//     reserving bandwidth at each hop;
//   * a RESV (label mapping) message travels egress → ingress,
//     allocating a label at each hop (downstream allocation) and
//     programming the router's information base as it passes;
//   * on an admission failure, a PATH_ERR travels back toward the
//     ingress releasing the tentative reservations.
//
// Message hops cost the link's propagation delay plus a configurable
// per-hop control-plane processing time.  When the RESV reaches the
// ingress, the LSP is adopted into the ControlPlane's record table and
// the caller's completion callback fires with the measured setup
// latency — the quantity bench_setup_latency sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mpls/fec.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"

namespace empls::net {

class SignalingProtocol {
 public:
  /// Outcome handed to the completion callback.
  struct Result {
    std::optional<LspId> lsp;  // nullopt on setup failure
    SimTime setup_latency = 0.0;
    /// Index of the hop that refused admission (failure only).
    std::optional<std::size_t> failed_hop;
  };
  using Callback = std::function<void(const Result&)>;

  /// `per_hop_processing`: control-plane work per message per node
  /// (default 50 us — a mid-2000s software control plane).
  SignalingProtocol(Network& net, ControlPlane& cp,
                    SimTime per_hop_processing = 50e-6)
      : net_(&net), cp_(&cp), proc_(per_hop_processing) {}
  SignalingProtocol(const SignalingProtocol&) = delete;
  SignalingProtocol& operator=(const SignalingProtocol&) = delete;

  /// Begin signalling an LSP along `path`.  `done` fires (via the event
  /// queue) when the RESV returns to the ingress or the setup fails.
  /// Returns false only for immediately malformed requests (short path,
  /// unregistered routers).
  bool signal_lsp(const std::vector<NodeId>& path, const mpls::Prefix& fec,
                  double bw, Callback done);

  struct Stats {
    std::uint64_t path_messages = 0;
    std::uint64_t resv_messages = 0;
    std::uint64_t path_err_messages = 0;
    std::uint64_t setups_completed = 0;
    std::uint64_t setups_failed = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Session {
    std::vector<NodeId> path;
    std::vector<mpls::InterfaceId> ports;  // ports[i]: path[i] -> path[i+1]
    std::vector<rtl::u32> labels;          // filled by the RESV pass
    mpls::Prefix fec;
    double bw = 0.0;
    SimTime started_at = 0.0;
    Callback done;
  };

  /// Propagation delay of the (first) link path[i] -> path[i+1].
  [[nodiscard]] SimTime hop_delay(const Session& s, std::size_t i) const;

  void path_message(std::shared_ptr<Session> s, std::size_t hop);
  void resv_message(std::shared_ptr<Session> s, std::size_t hop);
  void path_err_message(std::shared_ptr<Session> s, std::size_t hop);
  void complete(const std::shared_ptr<Session>& s);
  void fail(const std::shared_ptr<Session>& s, std::size_t failed_hop);

  Network* net_;
  ControlPlane* cp_;
  SimTime proc_;
  Stats stats_;
};

}  // namespace empls::net
