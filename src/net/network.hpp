// The network: owns nodes, directed links and the event queue; provides
// the builder API (add_node / connect), topology queries for the control
// plane, traffic injection, and local-delivery dispatch for packets that
// leave the MPLS domain at an egress LER.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/event_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "net/stats.hpp"
#include "obs/drop_reason.hpp"

namespace empls::obs {
class MetricsRegistry;
class HopTracer;
class Timeline;
}  // namespace empls::obs

namespace empls::net {

class DomainRuntime;
enum class SyncMode : std::uint8_t;

class Network {
 public:
  explicit Network(QosConfig default_qos = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Event queue for the calling context.  Unpartitioned this is the
  /// network's own queue; under a partitioned run (see partition()) the
  /// runtime routes each domain's execution to that domain's queue, so
  /// self-rescheduling components keep working untouched.
  [[nodiscard]] EventQueue& events() noexcept;
  [[nodiscard]] const EventQueue& events() const noexcept;
  [[nodiscard]] SimTime now() const noexcept { return events().now(); }

  /// Packet arena for the calling context (routed like events()).
  [[nodiscard]] PacketPool& pool() noexcept;
  [[nodiscard]] const PacketPool& pool() const noexcept;

  /// The queue / pool that owns node `id` — where the *first* event for
  /// work anchored at a node (a traffic source's start, a generator's
  /// first arrival) must be scheduled so it executes in that node's
  /// domain.  Unpartitioned these are the network's own.
  [[nodiscard]] EventQueue& events_for(NodeId id);
  [[nodiscard]] PacketPool& pool_for(NodeId id);

  /// Take ownership of `node`; returns its id.
  NodeId add_node(std::unique_ptr<Node> node);

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }

  /// Downcast helper for topology-building code that knows the type.
  template <typename T>
  [[nodiscard]] T& node_as(NodeId id) {
    return dynamic_cast<T&>(node(id));
  }

  struct PortPair {
    mpls::InterfaceId a_to_b;  // port index on node a
    mpls::InterfaceId b_to_a;  // port index on node b
  };

  /// Create a bidirectional connection (two directed links) between `a`
  /// and `b`.  Returns the port index each side sends on.
  PortPair connect(NodeId a, NodeId b, double bandwidth_bps,
                   SimTime prop_delay_s);
  PortPair connect(NodeId a, NodeId b, double bandwidth_bps,
                   SimTime prop_delay_s, const QosConfig& qos);

  /// The directed link node `id` transmits on through local port `port`.
  [[nodiscard]] Link& link_from(NodeId id, mpls::InterfaceId port);
  [[nodiscard]] const Link& link_from(NodeId id,
                                      mpls::InterfaceId port) const;

  struct Adjacency {
    NodeId neighbor;
    mpls::InterfaceId port;  // local port on the source node
    double bandwidth_bps;
    SimTime prop_delay;
  };
  [[nodiscard]] const std::vector<Adjacency>& adjacency(NodeId id) const;

  /// Failure injection: take one directed link (or both directions of a
  /// connection) down or up.  Per-direction set_link_up does NOT emit
  /// the connection-level fast signal (one dark fibre is not a dead
  /// adjacency); set_connection_up does, on actual state changes.
  void set_link_up(NodeId id, mpls::InterfaceId port, bool up) {
    link_from(id, port).set_up(up);
  }
  void set_connection_up(NodeId a, NodeId b, bool up);

  /// Fast link-state signal: fired synchronously when set_connection_up
  /// actually changes a connection's state — the loss-of-light /
  /// carrier-detect interrupt a line card raises in data-plane time,
  /// long before any hello protocol counts a dead interval.  Local
  /// protection switching (net/protection.hpp) subscribes here.
  using LinkSignalHandler = std::function<void(NodeId a, NodeId b, bool up)>;
  void add_link_signal_handler(LinkSignalHandler handler) {
    link_signals_.push_back(std::move(handler));
  }

  /// Per-packet notification of drops inside links (offered while down,
  /// or output-queue overflow).  Together with the discard handlers this
  /// accounts every lost packet, so fault campaigns can check flow
  /// conservation: sent = delivered + accounted drops.
  using LinkDropHandler =
      std::function<void(const mpls::Packet&, std::string_view reason)>;
  void add_link_drop_handler(LinkDropHandler handler);

  /// Benchmark baseline switch: `legacy` restores the pre-pool
  /// simulator's allocation behaviour — one heap packet per acquire and
  /// a deep copy into every per-hop closure.  Affects links already
  /// created; call after the topology is built.
  void set_legacy_fastpath(bool legacy) {
    legacy_fastpath_ = legacy;
    pool_.set_pooling(!legacy);
    for (auto& link : links_) {
      link->set_legacy_copy_mode(legacy);
    }
  }
  /// Routers consult this to reproduce the seed's event structure in
  /// legacy mode (separate engine-free and launch events per packet).
  [[nodiscard]] bool legacy_fastpath() const noexcept {
    return legacy_fastpath_;
  }

  /// Hand a packet to a node as locally injected traffic.
  void inject(NodeId id, PacketHandle packet);
  /// Compatibility overload: wraps the bare packet in a heap-owned
  /// handle (tests and one-off injections; not the pooled fast path).
  void inject(NodeId id, mpls::Packet packet) {
    inject(id, PacketHandle(std::move(packet)));
  }

  /// Called by egress routers when a packet leaves the MPLS domain.
  /// Handlers are multicast: add_ appends, set_ replaces them all.
  using DeliveryHandler =
      std::function<void(NodeId egress, const mpls::Packet&)>;
  void set_delivery_handler(DeliveryHandler handler) {
    delivery_.clear();
    delivery_.push_back(std::move(handler));
  }
  void add_delivery_handler(DeliveryHandler handler) {
    delivery_.push_back(std::move(handler));
  }
  void deliver_local(NodeId egress, const mpls::Packet& packet);

  /// Called by routers when a packet is dropped in processing (TTL
  /// expiry, missing binding, malformed wire form, no next hop).  OAM
  /// traceroute and diagnostics subscribe here.
  using DiscardHandler = std::function<void(
      NodeId where, const mpls::Packet&, std::string_view reason)>;
  void add_discard_handler(DiscardHandler handler) {
    discard_.push_back(std::move(handler));
  }
  void notify_discard(NodeId where, const mpls::Packet& packet,
                      std::string_view reason);

  [[nodiscard]] std::uint64_t delivered_count() const noexcept;

  /// Wire the telemetry layer through the topology: every node gets
  /// on_telemetry(), every directed link gets its trace lane and a
  /// transit-time histogram.  Call after the topology is built (links
  /// connected after the fact are not wired).  Either argument may be
  /// null; passing both null unwires links but not nodes.
  void set_telemetry(obs::MetricsRegistry* metrics, obs::HopTracer* tracer);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] obs::HopTracer* tracer() const noexcept { return tracer_; }

  /// Per-reason drop totals: router discards seen via notify_discard
  /// plus link-level drops (down-link and queue-overflow) read from the
  /// link statistics.
  [[nodiscard]] obs::DropCounts drop_totals() const;

  /// One snapshot pass: simulator counters, every node's metrics
  /// (Node::export_metrics), per-link counters/gauges, and per-reason
  /// drop totals, all into `metrics`.
  void export_metrics(obs::MetricsRegistry& metrics) const;

  /// Timeline whose counter tracks merge into write_chrome_trace()'s
  /// output (as the pid-3 "telemetry" process).  Not owned; the caller
  /// keeps it alive until after the trace is written.
  void set_timeline(const obs::Timeline* timeline) noexcept {
    timeline_ = timeline;
  }
  [[nodiscard]] const obs::Timeline* timeline() const noexcept {
    return timeline_;
  }

  /// Chrome-trace JSON of the tracer's ring with node/link names
  /// resolved from the topology, plus the timeline's counter tracks
  /// when one is wired.  With only a timeline wired, writes a
  /// counters-only trace; with neither, a no-op.
  void write_chrome_trace(std::ostream& out) const;

  /// Partition the topology into `domains` event domains (see
  /// net/domain.hpp) with block node assignment: node ids are split
  /// into `domains` equal contiguous ranges.  The second overload takes
  /// an explicit node→domain map.  Call after the topology is built and
  /// before scheduling any traffic — events already queued stay on
  /// domain 0.  Returns false and leaves the network unpartitioned when
  /// the configuration cannot run partitioned: fewer than 2 domains
  /// after clamping to the node count, an existing partition, the
  /// legacy fastpath (its transmitter bypasses the handoff hook), or
  /// free-running mode with a zero-delay boundary link (zero lookahead
  /// cannot make progress).
  bool partition(std::size_t domains, SyncMode mode);
  bool partition(std::vector<std::uint32_t> node_domain,
                 std::uint32_t domain_count, SyncMode mode);
  [[nodiscard]] DomainRuntime* domain_runtime() noexcept {
    return domains_.get();
  }
  [[nodiscard]] const DomainRuntime* domain_runtime() const noexcept {
    return domains_.get();
  }

  /// Guard for shared accounting (flow stats, ledgers, delivery
  /// handlers) that worker threads touch during free-running
  /// partitioned execution.  Everywhere else it returns an empty
  /// (unlocked) guard, so single-threaded runs stay lock-free.
  [[nodiscard]] std::unique_lock<std::mutex> books_lock();

  /// Run the event loop (the partitioned runtime when present,
  /// otherwise the network's own queue).
  std::uint64_t run_until(SimTime until);
  std::uint64_t run();

  /// Snapshot of the simulator's own fast-path counters (event queue +
  /// packet pool, summed across domains when partitioned); the scenario
  /// report includes it.
  [[nodiscard]] SimStats sim_stats() const noexcept;

 private:
  [[nodiscard]] bool books_locked() const noexcept;

  // Declared first so it is destroyed last: pending events, queues and
  // nodes all hold PacketHandles that release into this pool.
  PacketPool pool_;
  QosConfig default_qos_;
  // Between pool_ and events_: destroyed after events_ (whose pending
  // events may hold handles from per-domain pools) and before pool_
  // (the per-domain queues hold handles from the network pool).
  std::unique_ptr<DomainRuntime> domains_;
  EventQueue events_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<DeliveryHandler> delivery_;
  std::vector<DiscardHandler> discard_;
  std::vector<LinkSignalHandler> link_signals_;
  std::vector<LinkDropHandler> link_drops_;
  std::uint64_t delivered_ = 0;
  bool legacy_fastpath_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::HopTracer* tracer_ = nullptr;
  const obs::Timeline* timeline_ = nullptr;
  obs::DropCounts router_drops_{};       // notify_discard, by reason
  std::vector<std::string> link_names_;  // "src->dst", by link index

  // Serialises the shared books (delivery handlers, flow stats fed by
  // them, drop accounting) under free-running partitioned execution.
  std::mutex books_mutex_;
};

}  // namespace empls::net
