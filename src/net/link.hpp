// Directed link: an output port's CoS queue set, a transmitter that
// serialises packets at the link rate, and a propagation pipe to the
// destination node's input interface.
//
// A bidirectional connection is two Links (one per direction), each with
// its own queues — as real router line cards have.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "mpls/packet.hpp"
#include "mpls/tables.hpp"
#include "net/event_queue.hpp"
#include "net/packet_pool.hpp"
#include "net/qos.hpp"

namespace empls::obs {
class Histogram;
class HopTracer;
}  // namespace empls::obs

namespace empls::net {

class Node;

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t failed_drops = 0;  // offered while the link was down
  SimTime busy_time = 0.0;         // total transmission time
};

class Link {
 public:
  Link(EventQueue& events, Node* dst, mpls::InterfaceId dst_in_if,
       double bandwidth_bps, SimTime prop_delay_s, QosConfig qos);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue for transmission; starts the transmitter when idle.
  /// Queue-full drops are recorded in the queue stats.
  void transmit(PacketHandle packet);

  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_; }
  [[nodiscard]] SimTime prop_delay() const noexcept { return prop_delay_; }
  [[nodiscard]] const CosQueueSet& queue() const noexcept { return queue_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  /// Fraction of elapsed time the transmitter was busy.
  [[nodiscard]] double utilization() const noexcept;

  /// Failure injection: a downed link drops everything offered to it
  /// (packets already in flight complete — the wire is cut at the
  /// transmitter).  The control plane's path computation skips down
  /// links.
  void set_up(bool up) noexcept { up_ = up; }
  [[nodiscard]] bool is_up() const noexcept { return up_; }

  /// Benchmark baseline: deep-copy the packet into each scheduled
  /// closure (the pre-pool simulator's behaviour) instead of moving the
  /// handle through.  Off by default; bench_fastpath flips it to measure
  /// what the fast path buys.
  void set_legacy_copy_mode(bool on) noexcept { legacy_copy_ = on; }

  /// Observation hook for packets this link drops (offered while down,
  /// or refused by a full queue).  Conservation audits subscribe via
  /// Network::add_link_drop_handler; unset, drops cost nothing extra.
  using DropHook = std::function<void(const mpls::Packet&, std::string_view)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Partitioned execution support (net/domain.hpp).  A link belongs to
  /// its *source* node's domain: rebind_events points the transmitter at
  /// that domain's queue.  When the destination lives in another domain
  /// the handoff hook replaces the arrival event — the fast-path
  /// transmitter calls it with the computed arrival time and the packet,
  /// and the domain runtime carries both across the boundary.
  void rebind_events(EventQueue& events) noexcept { events_ = &events; }
  using HandoffHook = std::function<void(SimTime arrive_at, PacketHandle)>;
  void set_handoff_hook(HandoffHook hook) { handoff_hook_ = std::move(hook); }
  [[nodiscard]] bool has_handoff_hook() const noexcept {
    return static_cast<bool>(handoff_hook_);
  }
  [[nodiscard]] Node* destination() const noexcept { return dst_; }
  [[nodiscard]] mpls::InterfaceId dst_interface() const noexcept {
    return dst_in_if_;
  }

  /// Telemetry wiring (Network::set_telemetry).  `link_id` is this
  /// link's index in the network's link table — the trace lane it
  /// renders on; `transit_hist` records per-packet transit time
  /// (serialisation + propagation) in nanoseconds.  Either may be null.
  void set_telemetry(obs::HopTracer* tracer, std::uint32_t link_id,
                     obs::Histogram* transit_hist) noexcept {
    tracer_ = tracer;
    link_id_ = link_id;
    transit_hist_ = transit_hist;
  }

 private:
  /// Legacy transmitter: busy flag + a tx-complete event per packet that
  /// re-arms the transmitter (the seed's structure).
  void start_next();

  /// Fast-path transmitter: serialisation is tracked as a time
  /// (busy_until_), so an uncontended hop costs a single event — the
  /// arrival — and queued backlogs are drained by one self-rescheduling
  /// drain event.
  void begin_tx(PacketHandle packet);
  void drain();

  EventQueue* events_;
  Node* dst_;
  mpls::InterfaceId dst_in_if_;
  double bandwidth_;
  SimTime prop_delay_;
  CosQueueSet queue_;
  bool busy_ = false;           // legacy path only
  bool drain_pending_ = false;  // fast path only
  bool up_ = true;
  bool legacy_copy_ = false;
  SimTime busy_until_ = 0.0;  // fast path: transmitter serialising until
  LinkStats stats_;
  DropHook drop_hook_;
  HandoffHook handoff_hook_;  // set only on domain-boundary links
  obs::HopTracer* tracer_ = nullptr;
  obs::Histogram* transit_hist_ = nullptr;
  std::uint32_t link_id_ = 0;
};

}  // namespace empls::net
