// CoS-aware output queueing.
//
// The paper: "The CoS bits affect the scheduling and/or discard
// algorithms applied to the packet as it is transmitted through the
// network."  Each output port owns a CosQueueSet: eight queues (one per
// 3-bit CoS value), a discard policy (tail drop, or RED on the lower
// classes), and a scheduler (strict priority, or weighted round robin)
// that the link's transmitter consults for the next packet.
//
// Queues hold PacketHandles in fixed rings sized at construction — the
// per-queue capacity is a hard bound anyway — so enqueue/dequeue never
// touch the allocator.
#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "net/packet_pool.hpp"

namespace empls::net {

enum class SchedulerKind : std::uint8_t {
  kFifo,            // single queue, CoS ignored (baseline)
  kStrictPriority,  // higher CoS always first
  kWeightedRoundRobin,
};

enum class DropPolicy : std::uint8_t {
  kTailDrop,
  kRed,  // random early detection on queue depth
};

struct QosConfig {
  SchedulerKind scheduler = SchedulerKind::kStrictPriority;
  DropPolicy drop = DropPolicy::kTailDrop;
  /// Per-queue capacity in packets.
  std::size_t queue_capacity = 64;
  /// WRR weights per CoS (ignored by other schedulers).
  std::array<unsigned, 8> wrr_weights{1, 1, 2, 2, 4, 4, 8, 8};
  /// RED thresholds as fractions of capacity.
  double red_min_fraction = 0.5;
  double red_max_fraction = 0.9;
  double red_max_drop_probability = 0.5;
  std::uint64_t red_seed = 12345;
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dequeued = 0;
};

/// Fixed-capacity FIFO ring of packet handles.  Capacity is set once;
/// push/pop never allocate.
class PacketRing {
 public:
  PacketRing() = default;
  explicit PacketRing(std::size_t capacity) : slots_(capacity) {}

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept {
    return count_ == slots_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void push(PacketHandle p) noexcept {
    slots_[(head_ + count_) % slots_.size()] = std::move(p);
    ++count_;
  }

  PacketHandle pop() noexcept {
    PacketHandle p = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return p;
  }

 private:
  std::vector<PacketHandle> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

class CosQueueSet {
 public:
  explicit CosQueueSet(QosConfig config = {});

  /// Enqueue by the packet's effective CoS (top label CoS when labeled,
  /// otherwise the packet's own class).  Returns false on drop — the
  /// refused handle is left intact in `packet`, so the caller can
  /// attribute the loss without copying.
  bool enqueue(PacketHandle&& packet);

  /// Next packet according to the scheduler; an empty handle when all
  /// queues are empty.
  PacketHandle dequeue();

  /// Fast-path admission for a packet that would be dequeued in the same
  /// instant (idle transmitter, empty queues): applies the drop policy
  /// and accounting of an enqueue+dequeue pair without touching the
  /// rings.  Returns false on a policy drop.  Only valid when empty().
  bool admit_cut_through(const mpls::Packet& packet);

  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return total_; }
  [[nodiscard]] std::size_t size(unsigned cos) const {
    return queues_[cos & 7].size();
  }

  [[nodiscard]] const QueueStats& stats(unsigned cos) const {
    return stats_[cos & 7];
  }
  [[nodiscard]] QueueStats total_stats() const;

  [[nodiscard]] const QosConfig& config() const noexcept { return config_; }

  /// Effective CoS used for queueing decisions.
  [[nodiscard]] static unsigned effective_cos(
      const mpls::Packet& packet) noexcept;

 private:
  [[nodiscard]] bool should_drop(unsigned cos);
  [[nodiscard]] std::optional<unsigned> pick_queue();

  QosConfig config_;
  std::array<PacketRing, 8> queues_;
  std::array<QueueStats, 8> stats_;
  std::size_t total_ = 0;
  // WRR state.
  unsigned wrr_cursor_ = 7;
  unsigned wrr_credit_ = 0;
  std::mt19937_64 red_rng_;
};

}  // namespace empls::net
