// Measurement helpers: latency distributions and per-flow accounting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpls/packet.hpp"
#include "net/event_queue.hpp"

namespace empls::net {

/// Streaming latency statistics with exact percentiles (all samples are
/// kept; simulation scales make that cheap).
class LatencyStats {
 public:
  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] double min() const noexcept { return count() ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count() ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count() ? sum_ / static_cast<double>(count()) : 0.0;
  }
  /// Exact percentile, p in [0,1].  0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Snapshot of the simulator's own fast-path counters: event-queue
/// inline/heap split and past-time clamps, plus packet-pool recycling.
/// Network::sim_stats() fills one; the scenario report prints it.
struct SimStats {
  std::uint64_t events_executed = 0;
  std::uint64_t events_inline = 0;         // closures in the 64-byte buffer
  std::uint64_t events_heap_fallback = 0;  // oversized closures
  std::uint64_t clamped_schedules = 0;     // schedule_at(at < now()) fixups
  std::uint64_t calendar_rebuilds = 0;     // bucket-array resizes
  std::uint64_t packets_acquired = 0;
  std::uint64_t packets_recycled = 0;
  std::size_t pool_high_water = 0;  // peak concurrent pooled packets

  /// "events=... inline=... heap=... clamped=... pool_high_water=..."
  [[nodiscard]] std::string summary() const;
};

/// Per-router flow-cache counters (EmbeddedRouter's direct-mapped cache
/// of resolved (level, key) → label-pair bindings).  Every probe is a
/// hit or a miss; an invalidation is the subset of misses where the tag
/// matched but the engine's epoch had moved on (the information base
/// was reprogrammed, corrupted or cleared underneath the entry).
struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t insertions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t probes = hits + misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(probes);
  }

  /// "hits=... misses=... inval=... fills=... hit_rate=..%"
  [[nodiscard]] std::string summary() const;
};

/// Per-flow delivery accounting, fed by the traffic sources (on_sent) and
/// the network's delivery handler (on_delivered).
class FlowStats {
 public:
  void on_sent(const mpls::Packet& packet);
  void on_delivered(const mpls::Packet& packet, SimTime now);

  struct Flow {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t bytes_delivered = 0;
    LatencyStats latency;
    /// RFC 3550 interarrival jitter estimate (smoothed |Δtransit|,
    /// gain 1/16) — the metric VoIP playout buffers are sized by.
    double jitter = 0.0;
    double last_transit = -1.0;

    [[nodiscard]] double loss_rate() const noexcept {
      return sent == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(delivered) /
                             static_cast<double>(sent);
    }
  };

  [[nodiscard]] const Flow& flow(std::uint32_t flow_id) const;
  [[nodiscard]] bool has_flow(std::uint32_t flow_id) const {
    return flows_.contains(flow_id);
  }
  [[nodiscard]] const std::map<std::uint32_t, Flow>& flows() const noexcept {
    return flows_;
  }

  [[nodiscard]] std::uint64_t total_sent() const noexcept {
    return total_sent_;
  }
  [[nodiscard]] std::uint64_t total_delivered() const noexcept {
    return total_delivered_;
  }

  /// "flow 3: sent=100 delivered=98 loss=2.0% mean=1.23ms p99=4.5ms" rows.
  [[nodiscard]] std::string summary() const;

 private:
  std::map<std::uint32_t, Flow> flows_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
};

}  // namespace empls::net
