#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "net/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace empls::net {

namespace detail {
namespace {

// The execution context of the current thread during a partitioned run:
// which network's domain it is driving, and that domain's queue/pool.
// Unset (net == nullptr) everywhere else, including the main thread
// between runs, so the accessors fall back to the network's own.
struct ActiveDomain {
  const Network* net = nullptr;
  EventQueue* events = nullptr;
  PacketPool* pool = nullptr;
  std::uint32_t index = 0;
};
thread_local ActiveDomain g_active_domain;

}  // namespace

void set_active_domain(const Network* net, EventQueue* events,
                       PacketPool* pool, std::uint32_t index) noexcept {
  g_active_domain = ActiveDomain{net, events, pool, index};
}

void clear_active_domain() noexcept { g_active_domain = ActiveDomain{}; }

std::uint32_t active_domain_index(const Network* net) noexcept {
  return g_active_domain.net == net ? g_active_domain.index : 0;
}

}  // namespace detail

Network::Network(QosConfig default_qos)
    : default_qos_(std::move(default_qos)) {}

Network::~Network() = default;

EventQueue& Network::events() noexcept {
  if (detail::g_active_domain.net == this) {
    return *detail::g_active_domain.events;
  }
  return events_;
}

const EventQueue& Network::events() const noexcept {
  if (detail::g_active_domain.net == this) {
    return *detail::g_active_domain.events;
  }
  return events_;
}

PacketPool& Network::pool() noexcept {
  if (detail::g_active_domain.net == this) {
    return *detail::g_active_domain.pool;
  }
  return pool_;
}

const PacketPool& Network::pool() const noexcept {
  if (detail::g_active_domain.net == this) {
    return *detail::g_active_domain.pool;
  }
  return pool_;
}

EventQueue& Network::events_for(NodeId id) {
  return domains_ != nullptr ? domains_->events(domains_->domain_of(id))
                             : events_;
}

PacketPool& Network::pool_for(NodeId id) {
  return domains_ != nullptr ? domains_->pool(domains_->domain_of(id))
                             : pool_;
}

bool Network::partition(std::size_t domains, SyncMode mode) {
  const std::size_t n = nodes_.size();
  const std::size_t count = std::min(domains, n);
  if (count < 2) {
    return false;
  }
  std::vector<std::uint32_t> map(n);
  for (std::size_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(i * count / n);
  }
  return partition(std::move(map), static_cast<std::uint32_t>(count), mode);
}

bool Network::partition(std::vector<std::uint32_t> node_domain,
                        std::uint32_t domain_count, SyncMode mode) {
  if (domains_ != nullptr || legacy_fastpath_ || domain_count < 2 ||
      node_domain.size() != nodes_.size()) {
    return false;
  }
  for (const std::uint32_t d : node_domain) {
    if (d >= domain_count) {
      return false;
    }
  }
  // Free-running progress needs strictly positive lookahead on every
  // boundary link; check before wiring so a refusal leaves no trace.
  if (mode == SyncMode::kFree) {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      for (const Adjacency& adj : adjacency_[id]) {
        if (node_domain[id] != node_domain[adj.neighbor] &&
            adj.prop_delay <= 0.0) {
          return false;
        }
      }
    }
  }
  domains_ = std::make_unique<DomainRuntime>(*this, std::move(node_domain),
                                             domain_count, mode);
  return true;
}

bool Network::books_locked() const noexcept {
  return domains_ != nullptr && domains_->mode() == SyncMode::kFree;
}

std::unique_lock<std::mutex> Network::books_lock() {
  if (books_locked()) {
    return std::unique_lock<std::mutex>(books_mutex_);
  }
  return {};
}

std::uint64_t Network::run_until(SimTime until) {
  return domains_ != nullptr ? domains_->run_until(until)
                             : events_.run_until(until);
}

std::uint64_t Network::run() {
  return domains_ != nullptr ? domains_->run() : events_.run();
}

std::uint64_t Network::delivered_count() const noexcept {
  return delivered_ + (domains_ != nullptr ? domains_->delivered_sum() : 0);
}

SimStats Network::sim_stats() const noexcept {
  EventQueue::Stats ev = events_.stats();
  PacketPool::Stats pool = pool_.stats();
  if (domains_ != nullptr) {
    ev = domains_->queue_stats();
    pool = domains_->pool_stats();
  }
  SimStats s;
  s.events_executed = ev.executed;
  s.events_inline = ev.events_inline;
  s.events_heap_fallback = ev.events_heap_fallback;
  s.clamped_schedules = ev.clamped;
  s.calendar_rebuilds = ev.calendar_rebuilds;
  s.packets_acquired = pool.acquired;
  s.packets_recycled = pool.recycled;
  s.pool_high_water = pool.high_water;
  return s;
}

void Node::send(PacketHandle packet, mpls::InterfaceId out_if) {
  assert(out_if < ports_.size() && "send on unknown port");
  ports_[out_if]->transmit(std::move(packet));
}

NodeId Network::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->net_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return id;
}

Node& Network::node(NodeId id) {
  assert(id < nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  assert(id < nodes_.size());
  return *nodes_[id];
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s) {
  return connect(a, b, bandwidth_bps, prop_delay_s, default_qos_);
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s,
                                   const QosConfig& qos) {
  assert(a != b && "self-connections are not meaningful");
  Node& na = node(a);
  Node& nb = node(b);

  // Each side receives on the same-numbered interface it sends on.
  const auto a_port = static_cast<mpls::InterfaceId>(na.ports_.size());
  const auto b_port = static_cast<mpls::InterfaceId>(nb.ports_.size());

  links_.push_back(std::make_unique<Link>(events_, &nb, b_port,
                                          bandwidth_bps, prop_delay_s, qos));
  na.ports_.push_back(links_.back().get());
  links_.push_back(std::make_unique<Link>(events_, &na, a_port,
                                          bandwidth_bps, prop_delay_s, qos));
  nb.ports_.push_back(links_.back().get());
  if (!link_drops_.empty()) {
    // Drop audits already subscribed: new links need the hook too.
    for (auto it = links_.end() - 2; it != links_.end(); ++it) {
      (*it)->set_drop_hook([this](const mpls::Packet& p,
                                  std::string_view r) {
        const auto lock = books_lock();
        for (const auto& h : link_drops_) {
          h(p, r);
        }
      });
    }
  }

  adjacency_[a].push_back(Adjacency{b, a_port, bandwidth_bps, prop_delay_s});
  adjacency_[b].push_back(Adjacency{a, b_port, bandwidth_bps, prop_delay_s});
  return PortPair{a_port, b_port};
}

Link& Network::link_from(NodeId id, mpls::InterfaceId port) {
  Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const Link& Network::link_from(NodeId id, mpls::InterfaceId port) const {
  const Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const std::vector<Network::Adjacency>& Network::adjacency(NodeId id) const {
  assert(id < adjacency_.size());
  return adjacency_[id];
}

void Network::set_connection_up(NodeId a, NodeId b, bool up) {
  bool changed = false;
  for (const auto& adj : adjacency(a)) {
    if (adj.neighbor == b) {
      changed = changed || link_from(a, adj.port).is_up() != up;
      link_from(a, adj.port).set_up(up);
    }
  }
  for (const auto& adj : adjacency(b)) {
    if (adj.neighbor == a) {
      changed = changed || link_from(b, adj.port).is_up() != up;
      link_from(b, adj.port).set_up(up);
    }
  }
  // The fast signal fires only on real transitions so re-cutting a dead
  // connection (overlapping fault campaigns do) stays a no-op.
  if (changed) {
    for (const auto& handler : link_signals_) {
      handler(a, b, up);
    }
  }
}

void Network::add_link_drop_handler(LinkDropHandler handler) {
  link_drops_.push_back(std::move(handler));
  // One forwarding hook per link fans out to every registered handler;
  // installing it lazily keeps the no-audit hot path copy-free.
  for (const auto& link : links_) {
    link->set_drop_hook([this](const mpls::Packet& p, std::string_view r) {
      const auto lock = books_lock();
      for (const auto& h : link_drops_) {
        h(p, r);
      }
    });
  }
}

void Network::inject(NodeId id, PacketHandle packet) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->begin(packet.get(), packet->flow_id, packet->id, id, now());
  }
  node(id).receive(std::move(packet), kInjectInterface);
}

void Network::deliver_local(NodeId egress, const mpls::Packet& packet) {
  if (books_locked()) {
    // Free-running partitioned run: the per-domain counter keeps the
    // hot no-handler path off the mutex; handlers share the books.
    // (The tracer is pointer-keyed and incompatible with partitioned
    // runs — the scenario runner forces a single domain when tracing.)
    domains_->count_delivery(detail::active_domain_index(this));
    if (!delivery_.empty()) {
      const std::lock_guard<std::mutex> lock(books_mutex_);
      for (const auto& handler : delivery_) {
        handler(egress, packet);
      }
    }
    return;
  }
  ++delivered_;
  for (const auto& handler : delivery_) {
    handler(egress, packet);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(tracer_->id_of(&packet), obs::SpanKind::kDeliver, egress,
                    now(), 0.0);
    tracer_->end(&packet);
  }
}

void Network::notify_discard(NodeId where, const mpls::Packet& packet,
                             std::string_view reason) {
  if (books_locked()) {
    const std::lock_guard<std::mutex> lock(books_mutex_);
    for (const auto& handler : discard_) {
      handler(where, packet, reason);
    }
    const obs::DropReason locked_r = obs::drop_reason_from_string(reason);
    ++router_drops_[static_cast<std::size_t>(locked_r)];
    return;
  }
  for (const auto& handler : discard_) {
    handler(where, packet, reason);
  }
  const obs::DropReason r = obs::drop_reason_from_string(reason);
  ++router_drops_[static_cast<std::size_t>(r)];
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(tracer_->id_of(&packet), obs::SpanKind::kDrop, where,
                    now(), 0.0, static_cast<std::uint16_t>(r));
    tracer_->end(&packet);
  }
}

void Network::set_telemetry(obs::MetricsRegistry* metrics,
                            obs::HopTracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  for (auto& n : nodes_) {
    n->on_telemetry(metrics, tracer);
  }
  // Resolve "src->dst" names for the directed links from the adjacency
  // lists; the index into links_ is the trace lane links render on.
  link_names_.assign(links_.size(), {});
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    for (const Adjacency& adj : adjacency_[id]) {
      const Link* l = nodes_[id]->ports_[adj.port];
      for (std::size_t i = 0; i < links_.size(); ++i) {
        if (links_[i].get() == l) {
          link_names_[i] =
              nodes_[id]->name() + "->" + nodes_[adj.neighbor]->name();
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    obs::Histogram* h = nullptr;
    if (metrics != nullptr) {
      h = &metrics->histogram(
          "empls_link_transit_ns", "link=\"" + link_names_[i] + "\"",
          "per-packet serialisation + propagation time on the link");
    }
    links_[i]->set_telemetry(tracer, static_cast<std::uint32_t>(i), h);
  }
}

obs::DropCounts Network::drop_totals() const {
  obs::DropCounts out = router_drops_;
  for (const auto& link : links_) {
    out[static_cast<std::size_t>(obs::DropReason::kLinkDown)] +=
        link->stats().failed_drops;
    out[static_cast<std::size_t>(obs::DropReason::kQueueOverflow)] +=
        link->queue().total_stats().dropped;
  }
  return out;
}

void Network::export_metrics(obs::MetricsRegistry& metrics) const {
  const SimStats s = sim_stats();
  metrics
      .counter("empls_sim_events_executed_total", "",
               "events run by the scheduler")
      .set(s.events_executed);
  metrics.counter("empls_sim_events_inline_total").set(s.events_inline);
  metrics.counter("empls_sim_events_heap_total").set(s.events_heap_fallback);
  metrics.counter("empls_sim_clamped_schedules_total")
      .set(s.clamped_schedules);
  metrics
      .counter("empls_sim_calendar_rebuilds_total", "",
               "calendar-queue bucket-array resizes")
      .set(s.calendar_rebuilds);
  metrics.counter("empls_sim_packets_acquired_total")
      .set(s.packets_acquired);
  metrics.counter("empls_sim_packets_recycled_total")
      .set(s.packets_recycled);
  metrics.gauge("empls_sim_pool_high_water")
      .set(static_cast<double>(s.pool_high_water));
  metrics
      .gauge("empls_sim_pool_in_use", "",
             "pooled packets currently live (summed across domains)")
      .set(static_cast<double>(domains_ != nullptr
                                   ? domains_->pool_stats().in_use
                                   : pool_.stats().in_use));
  metrics
      .counter("empls_delivered_total", "",
               "packets delivered out of the MPLS domain")
      .set(delivered_count());

  if (domains_ != nullptr) {
    metrics
        .gauge("empls_domain_count", "",
               "event domains in the partitioned runtime")
        .set(static_cast<double>(domains_->domain_count()));
    for (std::uint32_t d = 0; d < domains_->domain_count(); ++d) {
      const DomainRuntime::Counters& c = domains_->counters(d);
      const std::string label = "domain=\"" + std::to_string(d) + "\"";
      metrics
          .counter("empls_domain_events_total", label,
                   "events executed by the domain")
          .set(c.executed);
      metrics
          .counter("empls_domain_windows_total", label,
                   "lookahead windows entered (free-running mode)")
          .set(c.windows);
      metrics
          .counter("empls_domain_idle_windows_total", label,
                   "windows that executed zero events")
          .set(c.idle_windows);
      metrics.counter("empls_domain_handoffs_out_total", label)
          .set(c.handoffs_out);
      metrics.counter("empls_domain_handoffs_in_total", label)
          .set(c.handoffs_in);
      metrics.counter("empls_domain_ring_overflows_total", label)
          .set(c.ring_overflows);
      if (domains_->profiling()) {
        const DomainRuntime::PhaseProfile& p = domains_->profile(d);
        metrics
            .counter("empls_domain_profile_dispatch_ns_total", label,
                     "host ns executing events, engine search excluded")
            .set(p.dispatch_ns);
        metrics
            .counter("empls_domain_profile_search_ns_total", label,
                     "host ns in label-engine update/search calls")
            .set(p.search_ns);
        metrics
            .counter("empls_domain_profile_handoff_ns_total", label,
                     "host ns draining boundary handoff rings")
            .set(p.handoff_ns);
        metrics
            .counter("empls_domain_profile_barrier_ns_total", label,
                     "host ns in barrier waits / the merge scan")
            .set(p.barrier_ns);
        metrics
            .counter("empls_domain_profile_wall_ns_total", label,
                     "host ns inside run() (merge thread on domain 0)")
            .set(p.wall_ns);
        const std::uint64_t busy = p.dispatch_ns + p.search_ns;
        metrics
            .gauge("empls_domain_window_utilization", label,
                   "fraction of the domain's wall clock spent "
                   "dispatching or searching")
            .set(p.wall_ns > 0
                     ? static_cast<double>(busy) /
                           static_cast<double>(p.wall_ns)
                     : 0.0);
      }
    }
  }

  for (const auto& n : nodes_) {
    n->export_metrics(metrics);
  }

  for (std::size_t i = 0; i < links_.size(); ++i) {
    const std::string name = i < link_names_.size() && !link_names_[i].empty()
                                 ? link_names_[i]
                                 : std::to_string(i);
    const std::string label = "link=\"" + name + "\"";
    const Link& l = *links_[i];
    metrics
        .counter("empls_link_tx_packets_total", label,
                 "packets serialised onto the wire")
        .set(l.stats().tx_packets);
    metrics.counter("empls_link_tx_bytes_total", label)
        .set(l.stats().tx_bytes);
    metrics
        .gauge("empls_link_utilization", label,
               "fraction of sim time the transmitter was busy")
        .set(l.utilization());
    metrics
        .gauge("empls_link_queue_depth", label,
               "packets waiting in the link's CoS queues")
        .set(static_cast<double>(l.queue().size()));
  }

  const obs::DropCounts drops = drop_totals();
  for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
    const auto reason = to_string(static_cast<obs::DropReason>(i));
    metrics
        .counter("empls_drops_total",
                 "reason=\"" + std::string(reason) + "\"",
                 "packets discarded, by reason")
        .set(drops[i]);
  }
}

void Network::write_chrome_trace(std::ostream& out) const {
  if (tracer_ == nullptr && timeline_ == nullptr) {
    return;
  }
  obs::HopTracer::ExtraEventsWriter counters;
  if (timeline_ != nullptr) {
    counters = [this](std::ostream& o, bool& first) {
      timeline_->write_chrome_counters(o, first);
    };
  }
  if (tracer_ == nullptr) {
    // Counter tracks only: same envelope the tracer writes, so the
    // structural checks and Perfetto load both files identically.
    out << "{\"traceEvents\":[\n";
    bool first = true;
    counters(out, first);
    out << "\n],\"displayTimeUnit\":\"ns\"}\n";
    return;
  }
  std::vector<std::string> node_names;
  node_names.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    node_names.push_back(n->name());
  }
  tracer_->write_chrome_trace(out, node_names, link_names_, counters);
}

}  // namespace empls::net
