#include "net/network.hpp"

#include <cassert>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace empls::net {

void Node::send(PacketHandle packet, mpls::InterfaceId out_if) {
  assert(out_if < ports_.size() && "send on unknown port");
  ports_[out_if]->transmit(std::move(packet));
}

NodeId Network::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->net_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return id;
}

Node& Network::node(NodeId id) {
  assert(id < nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  assert(id < nodes_.size());
  return *nodes_[id];
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s) {
  return connect(a, b, bandwidth_bps, prop_delay_s, default_qos_);
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s,
                                   const QosConfig& qos) {
  assert(a != b && "self-connections are not meaningful");
  Node& na = node(a);
  Node& nb = node(b);

  // Each side receives on the same-numbered interface it sends on.
  const auto a_port = static_cast<mpls::InterfaceId>(na.ports_.size());
  const auto b_port = static_cast<mpls::InterfaceId>(nb.ports_.size());

  links_.push_back(std::make_unique<Link>(events_, &nb, b_port,
                                          bandwidth_bps, prop_delay_s, qos));
  na.ports_.push_back(links_.back().get());
  links_.push_back(std::make_unique<Link>(events_, &na, a_port,
                                          bandwidth_bps, prop_delay_s, qos));
  nb.ports_.push_back(links_.back().get());
  if (!link_drops_.empty()) {
    // Drop audits already subscribed: new links need the hook too.
    for (auto it = links_.end() - 2; it != links_.end(); ++it) {
      (*it)->set_drop_hook([this](const mpls::Packet& p,
                                  std::string_view r) {
        for (const auto& h : link_drops_) {
          h(p, r);
        }
      });
    }
  }

  adjacency_[a].push_back(Adjacency{b, a_port, bandwidth_bps, prop_delay_s});
  adjacency_[b].push_back(Adjacency{a, b_port, bandwidth_bps, prop_delay_s});
  return PortPair{a_port, b_port};
}

Link& Network::link_from(NodeId id, mpls::InterfaceId port) {
  Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const Link& Network::link_from(NodeId id, mpls::InterfaceId port) const {
  const Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const std::vector<Network::Adjacency>& Network::adjacency(NodeId id) const {
  assert(id < adjacency_.size());
  return adjacency_[id];
}

void Network::set_connection_up(NodeId a, NodeId b, bool up) {
  bool changed = false;
  for (const auto& adj : adjacency(a)) {
    if (adj.neighbor == b) {
      changed = changed || link_from(a, adj.port).is_up() != up;
      link_from(a, adj.port).set_up(up);
    }
  }
  for (const auto& adj : adjacency(b)) {
    if (adj.neighbor == a) {
      changed = changed || link_from(b, adj.port).is_up() != up;
      link_from(b, adj.port).set_up(up);
    }
  }
  // The fast signal fires only on real transitions so re-cutting a dead
  // connection (overlapping fault campaigns do) stays a no-op.
  if (changed) {
    for (const auto& handler : link_signals_) {
      handler(a, b, up);
    }
  }
}

void Network::add_link_drop_handler(LinkDropHandler handler) {
  link_drops_.push_back(std::move(handler));
  // One forwarding hook per link fans out to every registered handler;
  // installing it lazily keeps the no-audit hot path copy-free.
  for (const auto& link : links_) {
    link->set_drop_hook([this](const mpls::Packet& p, std::string_view r) {
      for (const auto& h : link_drops_) {
        h(p, r);
      }
    });
  }
}

void Network::inject(NodeId id, PacketHandle packet) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->begin(packet.get(), packet->flow_id, packet->id, id,
                   events_.now());
  }
  node(id).receive(std::move(packet), kInjectInterface);
}

void Network::deliver_local(NodeId egress, const mpls::Packet& packet) {
  ++delivered_;
  for (const auto& handler : delivery_) {
    handler(egress, packet);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(tracer_->id_of(&packet), obs::SpanKind::kDeliver, egress,
                    events_.now(), 0.0);
    tracer_->end(&packet);
  }
}

void Network::notify_discard(NodeId where, const mpls::Packet& packet,
                             std::string_view reason) {
  for (const auto& handler : discard_) {
    handler(where, packet, reason);
  }
  const obs::DropReason r = obs::drop_reason_from_string(reason);
  ++router_drops_[static_cast<std::size_t>(r)];
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(tracer_->id_of(&packet), obs::SpanKind::kDrop, where,
                    events_.now(), 0.0, static_cast<std::uint16_t>(r));
    tracer_->end(&packet);
  }
}

void Network::set_telemetry(obs::MetricsRegistry* metrics,
                            obs::HopTracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  for (auto& n : nodes_) {
    n->on_telemetry(metrics, tracer);
  }
  // Resolve "src->dst" names for the directed links from the adjacency
  // lists; the index into links_ is the trace lane links render on.
  link_names_.assign(links_.size(), {});
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    for (const Adjacency& adj : adjacency_[id]) {
      const Link* l = nodes_[id]->ports_[adj.port];
      for (std::size_t i = 0; i < links_.size(); ++i) {
        if (links_[i].get() == l) {
          link_names_[i] =
              nodes_[id]->name() + "->" + nodes_[adj.neighbor]->name();
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    obs::Histogram* h = nullptr;
    if (metrics != nullptr) {
      h = &metrics->histogram(
          "empls_link_transit_ns", "link=\"" + link_names_[i] + "\"",
          "per-packet serialisation + propagation time on the link");
    }
    links_[i]->set_telemetry(tracer, static_cast<std::uint32_t>(i), h);
  }
}

obs::DropCounts Network::drop_totals() const {
  obs::DropCounts out = router_drops_;
  for (const auto& link : links_) {
    out[static_cast<std::size_t>(obs::DropReason::kLinkDown)] +=
        link->stats().failed_drops;
    out[static_cast<std::size_t>(obs::DropReason::kQueueOverflow)] +=
        link->queue().total_stats().dropped;
  }
  return out;
}

void Network::export_metrics(obs::MetricsRegistry& metrics) const {
  const SimStats s = sim_stats();
  metrics
      .counter("empls_sim_events_executed_total", "",
               "events run by the scheduler")
      .set(s.events_executed);
  metrics.counter("empls_sim_events_inline_total").set(s.events_inline);
  metrics.counter("empls_sim_events_heap_total").set(s.events_heap_fallback);
  metrics.counter("empls_sim_clamped_schedules_total")
      .set(s.clamped_schedules);
  metrics.counter("empls_sim_packets_acquired_total")
      .set(s.packets_acquired);
  metrics.counter("empls_sim_packets_recycled_total")
      .set(s.packets_recycled);
  metrics.gauge("empls_sim_pool_high_water")
      .set(static_cast<double>(s.pool_high_water));
  metrics
      .counter("empls_delivered_total", "",
               "packets delivered out of the MPLS domain")
      .set(delivered_);

  for (const auto& n : nodes_) {
    n->export_metrics(metrics);
  }

  for (std::size_t i = 0; i < links_.size(); ++i) {
    const std::string name = i < link_names_.size() && !link_names_[i].empty()
                                 ? link_names_[i]
                                 : std::to_string(i);
    const std::string label = "link=\"" + name + "\"";
    const Link& l = *links_[i];
    metrics
        .counter("empls_link_tx_packets_total", label,
                 "packets serialised onto the wire")
        .set(l.stats().tx_packets);
    metrics.counter("empls_link_tx_bytes_total", label)
        .set(l.stats().tx_bytes);
    metrics
        .gauge("empls_link_utilization", label,
               "fraction of sim time the transmitter was busy")
        .set(l.utilization());
  }

  const obs::DropCounts drops = drop_totals();
  for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
    const auto reason = to_string(static_cast<obs::DropReason>(i));
    metrics
        .counter("empls_drops_total",
                 "reason=\"" + std::string(reason) + "\"",
                 "packets discarded, by reason")
        .set(drops[i]);
  }
}

void Network::write_chrome_trace(std::ostream& out) const {
  if (tracer_ == nullptr) {
    return;
  }
  std::vector<std::string> node_names;
  node_names.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    node_names.push_back(n->name());
  }
  tracer_->write_chrome_trace(out, node_names, link_names_);
}

}  // namespace empls::net
