#include "net/network.hpp"

#include <cassert>

namespace empls::net {

void Node::send(PacketHandle packet, mpls::InterfaceId out_if) {
  assert(out_if < ports_.size() && "send on unknown port");
  ports_[out_if]->transmit(std::move(packet));
}

NodeId Network::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->net_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return id;
}

Node& Network::node(NodeId id) {
  assert(id < nodes_.size());
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  assert(id < nodes_.size());
  return *nodes_[id];
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s) {
  return connect(a, b, bandwidth_bps, prop_delay_s, default_qos_);
}

Network::PortPair Network::connect(NodeId a, NodeId b, double bandwidth_bps,
                                   SimTime prop_delay_s,
                                   const QosConfig& qos) {
  assert(a != b && "self-connections are not meaningful");
  Node& na = node(a);
  Node& nb = node(b);

  // Each side receives on the same-numbered interface it sends on.
  const auto a_port = static_cast<mpls::InterfaceId>(na.ports_.size());
  const auto b_port = static_cast<mpls::InterfaceId>(nb.ports_.size());

  links_.push_back(std::make_unique<Link>(events_, &nb, b_port,
                                          bandwidth_bps, prop_delay_s, qos));
  na.ports_.push_back(links_.back().get());
  links_.push_back(std::make_unique<Link>(events_, &na, a_port,
                                          bandwidth_bps, prop_delay_s, qos));
  nb.ports_.push_back(links_.back().get());
  if (!link_drops_.empty()) {
    // Drop audits already subscribed: new links need the hook too.
    for (auto it = links_.end() - 2; it != links_.end(); ++it) {
      (*it)->set_drop_hook([this](const mpls::Packet& p,
                                  std::string_view r) {
        for (const auto& h : link_drops_) {
          h(p, r);
        }
      });
    }
  }

  adjacency_[a].push_back(Adjacency{b, a_port, bandwidth_bps, prop_delay_s});
  adjacency_[b].push_back(Adjacency{a, b_port, bandwidth_bps, prop_delay_s});
  return PortPair{a_port, b_port};
}

Link& Network::link_from(NodeId id, mpls::InterfaceId port) {
  Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const Link& Network::link_from(NodeId id, mpls::InterfaceId port) const {
  const Node& n = node(id);
  assert(port < n.ports_.size());
  return *n.ports_[port];
}

const std::vector<Network::Adjacency>& Network::adjacency(NodeId id) const {
  assert(id < adjacency_.size());
  return adjacency_[id];
}

void Network::set_connection_up(NodeId a, NodeId b, bool up) {
  bool changed = false;
  for (const auto& adj : adjacency(a)) {
    if (adj.neighbor == b) {
      changed = changed || link_from(a, adj.port).is_up() != up;
      link_from(a, adj.port).set_up(up);
    }
  }
  for (const auto& adj : adjacency(b)) {
    if (adj.neighbor == a) {
      changed = changed || link_from(b, adj.port).is_up() != up;
      link_from(b, adj.port).set_up(up);
    }
  }
  // The fast signal fires only on real transitions so re-cutting a dead
  // connection (overlapping fault campaigns do) stays a no-op.
  if (changed) {
    for (const auto& handler : link_signals_) {
      handler(a, b, up);
    }
  }
}

void Network::add_link_drop_handler(LinkDropHandler handler) {
  link_drops_.push_back(std::move(handler));
  // One forwarding hook per link fans out to every registered handler;
  // installing it lazily keeps the no-audit hot path copy-free.
  for (const auto& link : links_) {
    link->set_drop_hook([this](const mpls::Packet& p, std::string_view r) {
      for (const auto& h : link_drops_) {
        h(p, r);
      }
    });
  }
}

void Network::inject(NodeId id, PacketHandle packet) {
  node(id).receive(std::move(packet), kInjectInterface);
}

void Network::deliver_local(NodeId egress, const mpls::Packet& packet) {
  ++delivered_;
  for (const auto& handler : delivery_) {
    handler(egress, packet);
  }
}

void Network::notify_discard(NodeId where, const mpls::Packet& packet,
                             std::string_view reason) {
  for (const auto& handler : discard_) {
    handler(where, packet, reason);
  }
}

}  // namespace empls::net
