#include "net/failure_detector.hpp"

namespace empls::net {

void FailureDetector::watch(NodeId a, NodeId b) {
  for (const auto& w : watches_) {
    if ((w.a == a && w.b == b) || (w.a == b && w.b == a)) {
      return;  // already watched
    }
  }
  watches_.push_back(Watch{a, b, 0, false});
}

void FailureDetector::watch_all() {
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    for (const auto& adj : net_->adjacency(id)) {
      if (id < adj.neighbor) {
        watch(id, adj.neighbor);
      }
    }
  }
}

void FailureDetector::start(SimTime stop_at) {
  stop_at_ = stop_at;
  if (started_) {
    return;
  }
  started_ = true;
  if (net_->now() + hello_ <= stop_at_) {
    net_->events().schedule_in(hello_, [this] { poll(); });
  }
}

bool FailureDetector::connection_up(const Watch& w) const {
  // A connection is alive while at least one direction carries hellos;
  // an IGP adjacency needs both, so treat any down direction as a miss.
  for (const auto& adj : net_->adjacency(w.a)) {
    if (adj.neighbor == w.b && !net_->link_from(w.a, adj.port).is_up()) {
      return false;
    }
  }
  for (const auto& adj : net_->adjacency(w.b)) {
    if (adj.neighbor == w.a && !net_->link_from(w.b, adj.port).is_up()) {
      return false;
    }
  }
  return true;
}

void FailureDetector::poll() {
  for (auto& w : watches_) {
    if (connection_up(w)) {
      w.missed = 0;
      w.declared = false;  // recovered links re-arm detection
      continue;
    }
    if (w.declared) {
      continue;
    }
    if (++w.missed < dead_multiplier_) {
      continue;
    }
    // Dead interval elapsed: declare the failure and restore the LSPs
    // that crossed the connection.
    w.declared = true;
    if (on_failure_) {
      on_failure_(w.a, w.b);
    }
    FailureEvent event{net_->now(), w.a, w.b, 0, 0};
    for (const LspId id : cp_->lsps_using(w.a, w.b)) {
      if (cp_->reroute_lsp(id)) {
        ++event.rerouted;
      } else {
        ++event.unrestorable;
      }
    }
    events_.push_back(event);
  }
  if (net_->now() + hello_ <= stop_at_) {
    net_->events().schedule_in(hello_, [this] { poll(); });
  }
}

}  // namespace empls::net
