#include "net/failure_detector.hpp"

namespace empls::net {

void FailureDetector::watch(NodeId a, NodeId b) {
  for (const auto& w : watches_) {
    if ((w.a == a && w.b == b) || (w.a == b && w.b == a)) {
      return;  // already watched
    }
  }
  watches_.push_back(Watch{a, b, 0, false});
}

void FailureDetector::watch_all() {
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    for (const auto& adj : net_->adjacency(id)) {
      if (id < adj.neighbor) {
        watch(id, adj.neighbor);
      }
    }
  }
}

bool FailureDetector::start(SimTime stop_at) {
  stop_at_ = stop_at;
  if (started_) {
    return true;
  }
  if (net_->now() + hello_ > stop_at_) {
    // Explicit no-op: the first hello would already land past the
    // horizon, so polling can never happen.  Stay un-started — a later
    // start() with a usable horizon must be able to arm the timer.
    return false;
  }
  started_ = true;
  net_->events().schedule_in(hello_, [this] { poll(); });
  return true;
}

bool FailureDetector::connection_up(const Watch& w) const {
  // A connection is alive while at least one direction carries hellos;
  // an IGP adjacency needs both, so treat any down direction as a miss.
  for (const auto& adj : net_->adjacency(w.a)) {
    if (adj.neighbor == w.b && !net_->link_from(w.a, adj.port).is_up()) {
      return false;
    }
  }
  for (const auto& adj : net_->adjacency(w.b)) {
    if (adj.neighbor == w.a && !net_->link_from(w.b, adj.port).is_up()) {
      return false;
    }
  }
  return true;
}

void FailureDetector::poll() {
  for (auto& w : watches_) {
    if (connection_up(w)) {
      // `missed` counts *consecutive* misses: any hello getting through
      // resets the count to zero, so a connection that recovers
      // mid-count must be down for a full fresh dead interval before it
      // is declared failed.  A declared watch recovering here re-arms
      // detection for the next failure.
      w.missed = 0;
      w.declared = false;
      continue;
    }
    if (w.declared) {
      continue;
    }
    if (++w.missed < dead_multiplier_) {
      continue;
    }
    // Dead interval elapsed: declare the failure and restore the LSPs
    // that crossed the connection.
    w.declared = true;
    for (const auto& hook : on_failure_) {
      hook(w.a, w.b);
    }
    FailureEvent event{net_->now(), w.a, w.b, 0, 0};
    for (const LspId id : cp_->lsps_using(w.a, w.b)) {
      if (reroute_filter_ && !reroute_filter_(id)) {
        ++event.locally_protected;
        continue;
      }
      if (cp_->reroute_lsp(id)) {
        ++event.rerouted;
      } else {
        ++event.unrestorable;
      }
    }
    events_.push_back(event);
  }
  if (net_->now() + hello_ <= stop_at_) {
    net_->events().schedule_in(hello_, [this] { poll(); });
  } else {
    // The timer just expired at the horizon: drop started_ so a later
    // start() with a new horizon re-arms instead of silently no-opping.
    started_ = false;
  }
}

}  // namespace empls::net
