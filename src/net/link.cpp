#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"
#include "obs/drop_reason.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace empls::net {

namespace {

// Drop span + journey termination for packets this link discards.
void trace_drop(obs::HopTracer* tracer, std::uint32_t link_id,
                const mpls::Packet* p, SimTime now, obs::DropReason reason) {
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  tracer->record(tracer->id_of(p), obs::SpanKind::kDrop, link_id, now, 0.0,
                 static_cast<std::uint16_t>(reason), 0, obs::kSpanOnLink);
  tracer->end(p);
}

}  // namespace

Link::Link(EventQueue& events, Node* dst, mpls::InterfaceId dst_in_if,
           double bandwidth_bps, SimTime prop_delay_s, QosConfig qos)
    : events_(&events),
      dst_(dst),
      dst_in_if_(dst_in_if),
      bandwidth_(bandwidth_bps),
      prop_delay_(prop_delay_s),
      queue_(std::move(qos)) {
  assert(bandwidth_ > 0.0);
  assert(prop_delay_ >= 0.0);
}

void Link::transmit(PacketHandle packet) {
  if (!up_) {
    ++stats_.failed_drops;
    if (drop_hook_) {
      drop_hook_(*packet, "link-down");
    }
    trace_drop(tracer_, link_id_, packet.get(), events_->now(),
               obs::DropReason::kLinkDown);
    return;
  }
  if (!legacy_copy_) {
    // Fast path.  An idle transmitter with empty queues cuts the packet
    // straight through — same drop policy and queue accounting, but no
    // ring traffic and no tx-complete event; the hop costs exactly one
    // scheduled event (the arrival).
    if (!drain_pending_ && queue_.empty() &&
        events_->now() >= busy_until_) {
      if (!queue_.admit_cut_through(*packet)) {
        if (drop_hook_) {
          drop_hook_(*packet, "queue-full");
        }
        trace_drop(tracer_, link_id_, packet.get(), events_->now(),
                   obs::DropReason::kQueueOverflow);
        return;
      }
      begin_tx(std::move(packet));
      return;
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->mark(packet.get(), events_->now());
    }
    if (!queue_.enqueue(std::move(packet))) {
      if (drop_hook_) {
        drop_hook_(*packet, "queue-full");
      }
      trace_drop(tracer_, link_id_, packet.get(), events_->now(),
                 obs::DropReason::kQueueOverflow);
      return;
    }
    if (!drain_pending_) {
      drain_pending_ = true;
      const SimTime at = std::max(events_->now(), busy_until_);
      events_->schedule_at(at, [this] { drain(); });
    }
    return;
  }
  // Legacy baseline.  enqueue leaves the handle intact on refusal, so
  // drop attribution reads the original packet — no defensive copy.
  if (!queue_.enqueue(std::move(packet))) {
    if (drop_hook_) {
      drop_hook_(*packet, "queue-full");
    }
    trace_drop(tracer_, link_id_, packet.get(), events_->now(),
               obs::DropReason::kQueueOverflow);
    return;
  }
  if (!busy_) {
    start_next();
  }
}

void Link::begin_tx(PacketHandle packet) {
  const double bits = static_cast<double>(packet->wire_size()) * 8.0;
  const SimTime tx_time = bits / bandwidth_;
  stats_.tx_packets += 1;
  stats_.tx_bytes += packet->wire_size();
  stats_.busy_time += tx_time;
  busy_until_ = events_->now() + tx_time;
  if (transit_hist_ != nullptr) {
    transit_hist_->record(
        static_cast<std::uint64_t>((tx_time + prop_delay_) * 1e9));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    const std::uint64_t tid = tracer_->id_of(packet.get());
    const SimTime queued_at = tracer_->take_mark(packet.get());
    if (queued_at >= 0.0 && events_->now() > queued_at) {
      tracer_->record(tid, obs::SpanKind::kLinkQueue, link_id_, queued_at,
                      events_->now() - queued_at, 0, 0, obs::kSpanOnLink);
    }
    tracer_->record(tid, obs::SpanKind::kLinkTransit, link_id_,
                    events_->now(), tx_time + prop_delay_, 0,
                    static_cast<std::uint32_t>(packet->wire_size()),
                    obs::kSpanOnLink);
  }
  // The wire is cut at the transmitter: once serialisation starts the
  // packet arrives even if the link is taken down meanwhile, so the
  // arrival can be scheduled up front.
  const SimTime arrive_at = busy_until_ + prop_delay_;
  if (handoff_hook_) {
    // Domain-boundary link: the destination's event queue belongs to
    // another domain, so the runtime carries the arrival across.
    handoff_hook_(arrive_at, std::move(packet));
    return;
  }
  events_->schedule_at(arrive_at, [this, p = std::move(packet)]() mutable {
    dst_->receive(std::move(p), dst_in_if_);
  });
}

void Link::drain() {
  PacketHandle next = queue_.dequeue();
  if (!next) {
    drain_pending_ = false;
    return;
  }
  begin_tx(std::move(next));
  if (queue_.empty()) {
    drain_pending_ = false;
    return;
  }
  events_->schedule_at(busy_until_, [this] { drain(); });
}

void Link::start_next() {
  PacketHandle next = queue_.dequeue();
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const double bits = static_cast<double>(next->wire_size()) * 8.0;
  const SimTime tx_time = bits / bandwidth_;
  stats_.tx_packets += 1;
  stats_.tx_bytes += next->wire_size();
  stats_.busy_time += tx_time;
  // Legacy mode deep-copies the packet per stage, so pointer-keyed
  // journeys cannot follow it — histogram only, no spans.
  if (transit_hist_ != nullptr) {
    transit_hist_->record(
        static_cast<std::uint64_t>((tx_time + prop_delay_) * 1e9));
  }

  // At transmission end: launch the packet down the propagation pipe
  // (which never blocks) and pick up the next queued packet.  Baseline
  // path: value-capture the packet in both closures, exactly as the
  // pre-pool transmitter did — one deep copy plus (because the
  // payload-bearing closure outgrows the inline buffer) one closure
  // heap allocation per stage.
  events_->schedule_in(tx_time, [this, p = *next]() mutable {
    events_->schedule_in(prop_delay_, [this, p = std::move(p)]() mutable {
      dst_->receive(std::move(p), dst_in_if_);
    });
    start_next();
  });
}

double Link::utilization() const noexcept {
  const SimTime now = events_->now();
  return now > 0.0 ? stats_.busy_time / now : 0.0;
}

}  // namespace empls::net
