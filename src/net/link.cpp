#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace empls::net {

Link::Link(EventQueue& events, Node* dst, mpls::InterfaceId dst_in_if,
           double bandwidth_bps, SimTime prop_delay_s, QosConfig qos)
    : events_(&events),
      dst_(dst),
      dst_in_if_(dst_in_if),
      bandwidth_(bandwidth_bps),
      prop_delay_(prop_delay_s),
      queue_(std::move(qos)) {
  assert(bandwidth_ > 0.0);
  assert(prop_delay_ >= 0.0);
}

void Link::transmit(mpls::Packet packet) {
  if (!up_) {
    ++stats_.failed_drops;
    if (drop_hook_) {
      drop_hook_(packet, "link-down");
    }
    return;
  }
  if (drop_hook_) {
    // The queue consumes the packet even when it drops it, so keep a
    // copy for attribution.  Only paid when an audit is subscribed.
    const mpls::Packet copy = packet;
    if (!queue_.enqueue(std::move(packet))) {
      drop_hook_(copy, "queue-full");
    }
  } else {
    queue_.enqueue(std::move(packet));
  }
  if (!busy_) {
    start_next();
  }
}

void Link::start_next() {
  auto next = queue_.dequeue();
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const double bits = static_cast<double>(next->wire_size()) * 8.0;
  const SimTime tx_time = bits / bandwidth_;
  stats_.tx_packets += 1;
  stats_.tx_bytes += next->wire_size();
  stats_.busy_time += tx_time;

  // At transmission end: launch the packet down the propagation pipe
  // (which never blocks) and pick up the next queued packet.
  events_->schedule_in(tx_time, [this, p = *std::move(next)]() mutable {
    events_->schedule_in(prop_delay_, [this, p = std::move(p)]() mutable {
      dst_->receive(std::move(p), dst_in_if_);
    });
    start_next();
  });
}

double Link::utilization() const noexcept {
  const SimTime now = events_->now();
  return now > 0.0 ? stats_.busy_time / now : 0.0;
}

}  // namespace empls::net
