// Programming interface the control plane (LDP) uses to install
// forwarding state on a router — implemented by the routing
// functionality of core/embedded_router.
//
// This is the paper's hardware/software boundary: the control plane
// stores label pairs (index, new label, operation) in the information
// base and keeps the next-hop resolution (which the hardware does not
// hold) in software tables.
#pragma once

#include <cstdint>

#include "mpls/fec.hpp"
#include "mpls/tables.hpp"
#include "rtl/types.hpp"

namespace empls::net {

class MplsNode {
 public:
  MplsNode() = default;
  MplsNode(const MplsNode&) = delete;
  MplsNode& operator=(const MplsNode&) = delete;
  virtual ~MplsNode() = default;

  /// Ingress binding for one exact destination (hardware level-1 entry:
  /// packet identifier → PUSH out_label).
  virtual bool program_ingress_exact(rtl::u32 packet_id, rtl::u32 out_label,
                                     mpls::InterfaceId out_port) = 0;

  /// Ingress binding for a destination prefix.  Kept in the software FEC
  /// table; exact hardware entries are installed on demand when traffic
  /// arrives (flow-cache slow path).
  virtual bool program_ingress_prefix(const mpls::Prefix& fec,
                                      rtl::u32 out_label,
                                      mpls::InterfaceId out_port) = 0;

  /// Transit swap at an information-base level (2 or 3).
  virtual bool program_swap(unsigned level, rtl::u32 in_label,
                            rtl::u32 out_label,
                            mpls::InterfaceId out_port) = 0;

  /// Pop; `out_port` is a real port for penultimate-hop popping or
  /// mpls::kLocalDeliver for egress to the layer-2 network.
  virtual bool program_pop(unsigned level, rtl::u32 in_label,
                           mpls::InterfaceId out_port) = 0;

  /// Tunnel entry: push `outer_label` on packets whose top label is
  /// `in_label` (which the push flow preserves underneath).
  virtual bool program_push(unsigned level, rtl::u32 in_label,
                            rtl::u32 outer_label,
                            mpls::InterfaceId out_port) = 0;

  /// Mark a destination prefix as locally attached: unlabeled packets
  /// for it that arrive on a real interface leave the MPLS domain here.
  /// Needed by penultimate-hop-popping LSPs, whose egress receives the
  /// packet already unlabeled.
  virtual bool program_local(const mpls::Prefix& fec) = 0;

  /// This router's label space (downstream allocation: a router hands
  /// out the labels it expects to receive).
  virtual mpls::LabelAllocator& label_allocator() = 0;

  // ---- fault injection and repair (default: unsupported no-ops) ----

  /// Garble one programmed hardware binding chosen by `salt`, modelling
  /// a single-event upset in the information-base memory.  The software
  /// mirror is left intact — that divergence is exactly what
  /// resync_hardware() exists to find.  Returns false when the node has
  /// no corruptible hardware state.
  virtual bool corrupt_binding(std::uint64_t /*salt*/) { return false; }

  /// Audit the hardware against the software mirror and reprogram when
  /// they diverge.  Returns the number of divergent entries repaired.
  virtual unsigned resync_hardware() { return 0; }
};

}  // namespace empls::net
