// Scenario description language: a small line-oriented text format that
// declares a topology, label switched paths and traffic, so whole
// experiments can be written as config files instead of C++ (see
// examples/scenario_sim.cpp and examples/*.scn).
//
//   # comments and blank lines are ignored
//   qos strict|fifo|wrr [capacity=64] [red]
//   scheduler heap|calendar       # event-queue backend (also scheduler=..)
//   domains <N>|auto              # event domains, 1 = off (also domains=..)
//   sync deterministic|free       # domain sync mode (also sync=..)
//   router <name> ler|lsr [engine=linear|hash|cam|simd|trie|hw
//          |sharded:<N>[:simd|:trie]]
//          [clock=50M] [batch=K] [cache=<entries>|off]
//   link <a> <b> <bandwidth> <delay>          # e.g. link A B 100M 1ms
//   lsp <prefix> <n1> <n2> ... [bw=2M] [php] [merge]
//   lsp-cspf <prefix> <ingress> <egress> [bw=2M]
//   tunnel <name> <n1> <n2> <n3> ...
//   lsp-via-tunnel <prefix> pre <n..> tunnel <name> post <n..> [bw=1M]
//   flow cbr <id> <ingress> <dst> [cos=6] [size=160] [interval=20ms]
//            [start=0s] [stop=1s]
//   flow poisson <id> <ingress> <dst> [rate=500] [seed=1] [...]
//   flow video <id> <ingress> <dst> [fps=30] [ppf=8] [...]
//   fail <time> <a> <b>        # cut both directions of a connection
//   restore <time> <a> <b>
//   flap <time> <a> <b> <down-for>   # cut that heals after <down-for>
//   crash <time> <node> [for=100ms]  # all of a node's links at once
//   corrupt <time> <node> [salt=N] [resync=20ms]  # info-base bit flip
//   loadgen poisson|mmpp <ingress> <dst> [rate=10k] [flows=1024]
//           [alpha=1.5] [minpkts=4] [cos=0] [size=160] [seed=1]
//           [start=0] [stop=1] [burst-rate=40k] [sojourn=100ms]
//   attack spoof|ttl_flood|reserved|exhaust <time> <ingress> [rate=10k]
//          [for=500ms] [seed=1] [dst=10.1.0.5] [cos=7]
//          # also spelled attack=<kind> <time> <ingress> ...
//   guard <router>|* [ttl=1000] [reprogram=200] [demote=0.5]
//         [shed=0.75] [maxcos=3] [reserved=on|off] [spoof=on|off]
//   autorepair <hello> [dead=3]   # failure detection + auto reroute
//   protect [bw=1M]            # pre-signal detours for every lsp
//   police <ingress> <flow-id> <rate> [burst=1500] [demote]
//   ping <time> <ingress> <dst>        # OAM reachability probe
//   traceroute <time> <ingress> <dst>  # OAM path mapping
//   trace <path>|off           # per-hop Chrome-trace JSON (also trace=..)
//   metrics <path>|off         # Prometheus snapshot (also metrics=..)
//   sample <interval>          # arm the telemetry timeline at this
//                              # sim-time cadence; needs `run` (also
//                              # sample=..)
//   timeline <path>|off        # write the sampled series there; .json
//                              # switches to JSON, else CSV (also
//                              # timeline=..)
//   profile [on|off]           # per-domain execution profiler
//   expect <metric> <op> <value> [during <t0>..<t1>]
//                              # self-verifying SLO assertion, checked
//                              # at run end; op is < <= > >= == !=.
//                              # <metric> is name[{labels}] with an
//                              # optional .p50/.p99/.p999/.count suffix
//                              # for histograms.  `during` checks every
//                              # timeline sample in [t0,t1] (needs
//                              # `sample`); without it, the end-of-run
//                              # registry value is checked.
//   run <duration>             # optional; defaults to run-to-idle
//
// This header is the pure data model + parser; execution lives in
// core/scenario_runner.hpp (the runner needs the router classes).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "mpls/fec.hpp"
#include "net/event_queue.hpp"
#include "net/guard.hpp"
#include "net/qos.hpp"

namespace empls::net {

// Fixed-underlying-type forward declaration; the full enum (and the
// runtime it configures) lives in net/domain.hpp.
enum class SyncMode : std::uint8_t;

struct ScenarioError {
  int line = 0;
  std::string message;
};

struct RouterDecl {
  std::string name;
  bool is_ler = false;
  /// linear | hash | cam | simd | trie | hw | sharded:<N> (N parallel
  /// worker shards over simd replicas; sharded:<N>:trie for trie
  /// replicas, sharded:<N>:simd spells the default explicitly).
  std::string engine = "linear";
  double clock_hz = 50e6;
  /// Engine batch size (`batch=K`); 0 = engine default (16 for sharded
  /// engines, per-packet service otherwise).
  std::size_t batch = 0;
  /// Flow-cache entries (`cache=<entries>`, `cache=off` → 0 = off).
  std::size_t cache = 0;
};

struct LinkDecl {
  std::string a;
  std::string b;
  double bandwidth_bps = 0;
  SimTime delay = 0;
};

struct LspDecl {
  mpls::Prefix fec;
  std::vector<std::string> path;  // explicit route, or {ingress, egress}
  bool cspf = false;
  double bw = 0;
  bool php = false;
  bool merge = false;
};

struct TunnelDecl {
  std::string name;
  std::vector<std::string> path;
};

struct LspViaTunnelDecl {
  mpls::Prefix fec;
  std::vector<std::string> pre;
  std::string tunnel;
  std::vector<std::string> post;
  double bw = 0;
};

struct FlowDecl {
  std::string kind;  // cbr | poisson | video | onoff
  std::uint32_t id = 0;
  std::string ingress;
  std::string dst;  // dotted quad
  std::uint8_t cos = 0;
  std::size_t size = 160;
  SimTime start = 0;
  SimTime stop = 1.0;
  // kind-specific:
  SimTime interval = 20e-3;  // cbr
  double rate = 100;         // poisson / onoff packets per second
  std::uint64_t seed = 1;    // poisson / onoff
  double fps = 30;           // video frames per second
  unsigned ppf = 8;          // video packets per frame
  SimTime mean_on = 50e-3;   // onoff
  SimTime mean_off = 50e-3;  // onoff
};

struct LinkEventDecl {
  SimTime at = 0;
  std::string a;
  std::string b;
  bool up = false;
};

/// `flap <time> <a> <b> <down-for>`: a cut that heals by itself —
/// shorter than the dead interval it must not trigger restoration.
struct FlapDecl {
  SimTime at = 0;
  std::string a;
  std::string b;
  SimTime down_for = 0;
};

/// `crash <time> <node> [for=dur]`: every connection of `node` goes
/// dark at once; recovers after `for` (0 = stays dead).
struct CrashDecl {
  SimTime at = 0;
  std::string node;
  SimTime duration = 0;
};

/// `corrupt <time> <node> [salt=N] [resync=dur]`: garble one programmed
/// information-base binding (single-event upset); the audit-and-repair
/// pass runs after `resync` (0 = never).
struct CorruptDecl {
  SimTime at = 0;
  std::string node;
  std::uint64_t salt = 0;
  SimTime resync = 0;
};

/// `loadgen poisson|mmpp <ingress> <dst> [opts]`: open-loop offered
/// load at scale (net/loadgen.hpp); the runner assigns each generator
/// its own flow-id block and one shared FlowLedger.
struct LoadGenDecl {
  std::string kind;  // poisson | mmpp
  std::string ingress;
  std::string dst;  // dotted quad
  double rate_pps = 10000;
  double burst_rate_pps = 0;  // mmpp burst state; 0 = 4x rate
  SimTime sojourn = 100e-3;   // mmpp mean state dwell
  std::size_t flows = 1024;
  double alpha = 1.5;
  unsigned min_packets = 4;
  std::uint8_t cos = 0;
  std::size_t size = 160;
  std::uint64_t seed = 1;
  SimTime start = 0;
  SimTime stop = 1.0;
};

/// `attack <kind> <time> <ingress> [opts]` (kind also spelled
/// `attack=<kind>`): one seeded adversarial injection (net/attack.hpp).
struct AttackDecl {
  std::string kind;  // spoof | ttl_flood | reserved | exhaust
  SimTime at = 0;
  std::string ingress;
  double rate_pps = 10000;
  SimTime duration = 0.5;
  std::uint64_t seed = 1;
  std::string dst;  // optional victim address (ttl_flood / exhaust)
  std::uint8_t cos = 7;
};

/// `guard <router>|* [opts]`: arm the ingress guard on one router (or
/// every router) with the given thresholds.
struct GuardDecl {
  std::string router;  // "*" = all routers
  GuardConfig config;  // parsed with enabled=true
};

/// `ping <time> <ingress> <dst>` / `traceroute <time> <ingress> <dst>`:
/// run an OAM probe during the simulation; results appear in the report.
struct OamDecl {
  SimTime at = 0;
  bool traceroute = false;
  std::string ingress;
  std::string dst;
};

/// `expect <metric> <op> <value> [during <t0>..<t1>]`: an SLO assertion
/// the runner checks at run end.  Windowed assertions check every
/// timeline sample whose time falls in [t0, t1] (and fail when the
/// window holds no samples); unwindowed ones check the end-of-run
/// registry value.  Violations mark the report failed (see
/// Report::expects) and the scenario driver exits non-zero.
struct ExpectDecl {
  enum class Op : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };
  /// name[{labels}] plus an optional .p50/.p99/.p999/.count suffix for
  /// histogram series, matching the timeline's column names.
  std::string metric;
  Op op = Op::kLt;
  double value = 0;
  bool windowed = false;
  SimTime t0 = 0;
  SimTime t1 = 0;
  int line = 0;        // source line, for diagnostics
  std::string source;  // the directive text, echoed in the report
};

[[nodiscard]] std::string_view to_string(ExpectDecl::Op op) noexcept;

class Scenario {
 public:
  /// Parse scenario text; ScenarioError carries the offending line.
  static std::variant<Scenario, ScenarioError> parse(std::string_view text);

  QosConfig qos;
  /// `scheduler heap|calendar` (or `scheduler=..`): event-queue backend.
  /// Both produce identical event order; calendar is the O(1) fast path.
  SchedulerBackend scheduler = SchedulerBackend::kHeap;
  /// `domains <N>|auto` (or `domains=..`): partition the topology into
  /// N event domains (net/domain.hpp).  1 (the default) runs the plain
  /// single-queue simulator; 0 means "auto" — one domain per hardware
  /// thread, capped by the node count.  The runner may downgrade (see
  /// Report::domain_note) when a directive requires it.
  std::size_t domains = 1;
  /// `sync deterministic|free` (or `sync=..`): how partitioned domains
  /// synchronise.  Deterministic merges events in global (time, domain)
  /// order — books identical to the unpartitioned run; free runs one
  /// thread per domain under conservative-lookahead windows.
  SyncMode sync = SyncMode{0};  // kDeterministic
  std::vector<RouterDecl> routers;
  std::vector<LinkDecl> links;
  std::vector<LspDecl> lsps;
  std::vector<TunnelDecl> tunnels;
  std::vector<LspViaTunnelDecl> tunnel_lsps;
  /// `police <ingress> <flow-id> <rate> [burst=1500] [demote]`.
  struct PolicerDecl {
    std::string ingress;
    std::uint32_t flow_id = 0;
    double rate_bps = 0;
    double burst_bytes = 1500;
    bool demote = false;
  };

  std::vector<FlowDecl> flows;
  std::vector<LinkEventDecl> link_events;
  std::vector<FlapDecl> flaps;
  std::vector<CrashDecl> crashes;
  std::vector<CorruptDecl> corruptions;
  std::vector<OamDecl> oam_probes;
  std::vector<PolicerDecl> policers;
  std::vector<LoadGenDecl> loadgens;
  std::vector<AttackDecl> attacks;
  std::vector<GuardDecl> guards;
  std::optional<SimTime> run_duration;
  /// `autorepair <hello_interval> [dead=N]`: arm a failure detector
  /// over all links that reroutes LSPs off dead connections.
  std::optional<SimTime> autorepair_hello;
  unsigned autorepair_dead = 3;
  /// `protect [bw=X]`: pre-signal RFC 4090 detours for every explicit
  /// LSP and switch locally on link-down.
  bool protect = false;
  double protect_bw = 0;
  /// `trace <path>` (or `trace=<path>`): arm the hop tracer and write
  /// Chrome-trace JSON there after the run.  "off" / unset disables —
  /// and must leave the simulation bit-identical to one never traced.
  std::string trace_path;
  /// `metrics <path>` (or `metrics=<path>`): write a Prometheus
  /// text-format snapshot of the metrics registry there after the run.
  std::string metrics_path;
  /// `sample <interval>` (or `sample=..`): arm the telemetry timeline
  /// (obs/timeline.hpp) at this sim-time cadence.  Requires a `run`
  /// duration — the runner pre-schedules the ticks.  Unset = off.
  std::optional<SimTime> sample_interval;
  /// `timeline <path>` (or `timeline=..`): write the sampled series
  /// there after the run; a ".json" suffix selects the column-major
  /// JSON export, anything else CSV.  "off" / unset writes nothing
  /// (the series still feed `expect during` checks).
  std::string timeline_path;
  /// `profile [on|off]`: arm the per-domain execution profiler
  /// (DomainRuntime::PhaseProfile; needs domains > 1 to report).
  bool profile = false;
  /// `expect ...` assertions, in declaration order.
  std::vector<ExpectDecl> expects;

  [[nodiscard]] bool has_router(const std::string& name) const;
};

/// "100M" → 1e8, "2.5G" → 2.5e9, "64k" → 64000, bare number → bits/s.
std::optional<double> parse_bandwidth(std::string_view text);

/// "20ms" → 0.02, "50us" → 5e-5, "1s"/"1" → 1.0, "3ns" → 3e-9.
std::optional<SimTime> parse_time(std::string_view text);

}  // namespace empls::net
