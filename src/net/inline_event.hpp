// Small-buffer-optimized, move-only event callable.
//
// The simulator schedules millions of closures per run; std::function
// heap-allocates most of them (and requires copyability, which forbids
// capturing pooled packet handles).  InlineEvent stores any callable up
// to kInlineBytes directly inside the event object — the common case:
// `this` + a port + a PacketHandle is 32 bytes — and falls back to a
// single heap allocation only for oversized captures.  Callers can ask
// which path a given event took (is_inline), so the scheduler's stats
// expose how often the fallback fires.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace empls::net {

class InlineEvent {
 public:
  /// Inline capture budget.  64 bytes = one cache line; every closure the
  /// steady-state forwarding path schedules fits.
  static constexpr std::size_t kInlineBytes = 64;

  InlineEvent() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vt_ = vtable_inline<Fn>();
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(fn)));
      vt_ = vtable_heap<Fn>();
    }
  }

  InlineEvent(InlineEvent&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.storage_, storage_);
      other.vt_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.storage_, storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// True when the callable lives in the inline buffer (no allocation).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(std::byte*);
    void (*relocate)(std::byte* src, std::byte* dst) noexcept;
    void (*destroy)(std::byte*) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* as(std::byte* p) noexcept {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static const VTable* vtable_inline() {
    static constexpr VTable vt{
        [](std::byte* p) { (*as<Fn>(p))(); },
        [](std::byte* src, std::byte* dst) noexcept {
          ::new (static_cast<void*>(dst)) Fn(std::move(*as<Fn>(src)));
          as<Fn>(src)->~Fn();
        },
        [](std::byte* p) noexcept { as<Fn>(p)->~Fn(); },
        /*inline_storage=*/true};
    return &vt;
  }

  template <typename Fn>
  static const VTable* vtable_heap() {
    static constexpr VTable vt{
        [](std::byte* p) { (**as<Fn*>(p))(); },
        [](std::byte* src, std::byte* dst) noexcept {
          ::new (static_cast<void*>(dst)) Fn*(*as<Fn*>(src));
          // The pointer slot in src needs no destruction.
        },
        [](std::byte* p) noexcept { delete *as<Fn*>(p); },
        /*inline_storage=*/false};
    return &vt;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace empls::net
