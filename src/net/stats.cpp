#include "net/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace empls::net {

void LatencyStats::record(double seconds) {
  if (samples_.empty()) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  sum_ += seconds;
  samples_.push_back(seconds);
  sorted_ = false;
}

double LatencyStats::percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  assert(p >= 0.0 && p <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void FlowStats::on_sent(const mpls::Packet& packet) {
  ++flows_[packet.flow_id].sent;
  ++total_sent_;
}

void FlowStats::on_delivered(const mpls::Packet& packet, SimTime now) {
  Flow& f = flows_[packet.flow_id];
  ++f.delivered;
  f.bytes_delivered += packet.wire_size();
  const double transit = now - packet.created_at;
  f.latency.record(transit);
  if (f.last_transit >= 0.0) {
    const double d = std::abs(transit - f.last_transit);
    f.jitter += (d - f.jitter) / 16.0;  // RFC 3550 §6.4.1
  }
  f.last_transit = transit;
  ++total_delivered_;
}

const FlowStats::Flow& FlowStats::flow(std::uint32_t flow_id) const {
  const auto it = flows_.find(flow_id);
  assert(it != flows_.end());
  return it->second;
}

std::string SimStats::summary() const {
  std::ostringstream out;
  // calendar_rebuilds is deliberately absent: it is a backend
  // implementation counter (the heap never rebuilds), and the summary
  // doubles as the cross-backend differential fingerprint.  It is
  // exported as empls_sim_calendar_rebuilds_total instead.
  out << "events=" << events_executed << " inline=" << events_inline
      << " heap_fallback=" << events_heap_fallback
      << " clamped=" << clamped_schedules
      << " packets=" << packets_acquired
      << " recycled=" << packets_recycled
      << " pool_high_water=" << pool_high_water;
  return out.str();
}

std::string FlowCacheStats::summary() const {
  std::ostringstream out;
  out << "hits=" << hits << " misses=" << misses
      << " inval=" << invalidations << " fills=" << insertions
      << " hit_rate=" << hit_rate() * 100.0 << "%";
  return out.str();
}

std::string FlowStats::summary() const {
  std::ostringstream out;
  for (const auto& [id, f] : flows_) {
    out << "flow " << id << ": sent=" << f.sent
        << " delivered=" << f.delivered << " loss=" << f.loss_rate() * 100.0
        << "% mean=" << f.latency.mean() * 1e3
        << "ms p99=" << f.latency.percentile(0.99) * 1e3
        << "ms jitter=" << f.jitter * 1e3 << "ms\n";
  }
  return out.str();
}

}  // namespace empls::net
