// Open-loop traffic generation at scale.
//
// The existing sources in net/traffic.hpp are closed-loop convenience
// generators: one C++ object per flow, a FlowStats entry per flow that
// keeps every latency sample.  Pushing the simulator past its
// saturation knee needs the opposite shape — offered load that does not
// slow down when the network congests (open loop), millions of
// concurrent flows, heavy-tailed flow sizes — with bookkeeping that
// stays O(1) per packet and allocation-free at that scale.
//
//   * OpenLoopGenerator — Poisson or MMPP (Markov-modulated Poisson)
//     packet arrivals over a fixed population of flow slots held in
//     flat arrays (no per-flow heap objects).  Each arrival picks a
//     slot uniformly; when a slot's flow finishes its Pareto-sized
//     packet budget, a fresh flow id takes the slot — so flow churn is
//     unbounded while live state stays flat.
//   * FlowLedger — per-flow sent/delivered tallies in open-addressing
//     flat tables plus one HDR histogram of delivery latency (p99/p999
//     at bucket resolution), replacing FlowStats' per-flow sample
//     vectors, which are unusable at this flow count.
//
// Flow-id space partitioning (so victim statistics stay clean):
//   scripted / victim flows  <  kLoadGenFlowBase
//   open-loop generators     [kLoadGenFlowBase, kAttackFlowBase)
//   attack campaigns         [kAttackFlowBase, kOamFlowBase)
//   OAM probes               >= kOamFlowBase (0xFFF00000)
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "mpls/packet.hpp"
#include "net/fault_injector.hpp"
#include "net/flat_counts.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace empls::net {

inline constexpr std::uint32_t kLoadGenFlowBase = 0x40000000;
inline constexpr std::uint32_t kAttackFlowBase = 0x80000000;
/// Id block per generator: 16M flows before a generator would wrap.
inline constexpr std::uint32_t kLoadGenFlowStride = 0x01000000;

/// Allocation-light flow accounting for open-loop runs: flat tables for
/// per-flow sent/delivered and one histogram for latency quantiles.
class FlowLedger {
 public:
  FlowLedger() : sent_(1 << 16), delivered_(1 << 16) {}

  void on_sent(std::uint32_t flow_id) {
    ++sent_[flow_id];
    ++sent_total_;
  }

  void on_delivered(std::uint32_t flow_id, double latency_s) {
    ++delivered_[flow_id];
    ++delivered_total_;
    latency_ns_.record(static_cast<std::uint64_t>(latency_s * 1e9));
  }

  [[nodiscard]] std::uint64_t sent_total() const noexcept {
    return sent_total_;
  }
  [[nodiscard]] std::uint64_t delivered_total() const noexcept {
    return delivered_total_;
  }
  [[nodiscard]] std::uint64_t sent(std::uint32_t flow_id) const {
    return sent_.get(flow_id);
  }
  [[nodiscard]] std::uint64_t delivered(std::uint32_t flow_id) const {
    return delivered_.get(flow_id);
  }
  /// Distinct flows that sent at least one packet.
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return sent_.size();
  }
  [[nodiscard]] const obs::Histogram& latency_ns() const noexcept {
    return latency_ns_;
  }
  /// Delivery-latency quantile in seconds (bucket resolution).
  [[nodiscard]] double latency_quantile_s(double q) const noexcept {
    return static_cast<double>(latency_ns_.quantile(q)) * 1e-9;
  }

  /// Exact flow conservation against the drop ledger: every flow this
  /// ledger saw must satisfy sent == delivered + accounted drops.
  [[nodiscard]] bool conserved(const DropAccountant& drops) const {
    bool ok = true;
    sent_.for_each([&](std::uint32_t flow, std::uint64_t sent) {
      if (sent != delivered_.get(flow) + drops.drops(flow)) {
        ok = false;
      }
    });
    return ok;
  }

 private:
  FlatCounts sent_;
  FlatCounts delivered_;
  obs::Histogram latency_ns_;
  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
};

struct LoadGenConfig {
  enum class Arrivals : std::uint8_t {
    kPoisson,  // exponential inter-arrival gaps at rate_pps
    kMmpp,     // two-state MMPP: base rate_pps / burst_rate_pps
  };

  Arrivals arrivals = Arrivals::kPoisson;
  NodeId ingress = 0;
  mpls::Ipv4Address dst{};
  /// Mean aggregate arrival rate (base state for MMPP).
  double rate_pps = 10000;
  /// MMPP burst-state rate; 0 defaults to 4x rate_pps.
  double burst_rate_pps = 0;
  /// MMPP mean dwell time per state (exponential sojourns).
  SimTime mean_sojourn = 100e-3;
  /// Live flow population (slot count; flat arrays of this size are the
  /// generator's only per-flow state).
  std::size_t concurrent_flows = 1024;
  /// Pareto(alpha, min) flow sizes in packets — heavy-tailed: most
  /// flows are mice, the tail carries the bytes.
  double pareto_alpha = 1.5;
  unsigned pareto_min_packets = 4;
  std::uint8_t cos = 0;
  std::size_t payload_bytes = 160;
  std::uint64_t seed = 1;
  /// First flow id this generator hands out (block of
  /// kLoadGenFlowStride ids).
  std::uint32_t flow_id_base = kLoadGenFlowBase;
  SimTime start = 0;
  SimTime stop = 1.0;
};

class OpenLoopGenerator {
 public:
  /// `ledger` may be shared by several generators; it must outlive the
  /// run.
  OpenLoopGenerator(Network& net, const LoadGenConfig& cfg,
                    FlowLedger* ledger);
  OpenLoopGenerator(const OpenLoopGenerator&) = delete;
  OpenLoopGenerator& operator=(const OpenLoopGenerator&) = delete;

  /// Arm the arrival process (first event at cfg.start).
  void start();

  struct GenStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t state_switches = 0;  // MMPP only
  };
  [[nodiscard]] const GenStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LoadGenConfig& config() const noexcept { return cfg_; }
  /// Half-open id range this generator draws from.
  [[nodiscard]] std::uint32_t flow_id_lo() const noexcept {
    return cfg_.flow_id_base;
  }
  [[nodiscard]] std::uint32_t flow_id_hi() const noexcept {
    return cfg_.flow_id_base + kLoadGenFlowStride;
  }

 private:
  void arrival();
  void toggle_state();
  void refill_slot(std::size_t slot);
  [[nodiscard]] double current_rate() const noexcept;
  [[nodiscard]] std::uint32_t pareto_packets();

  Network* net_;
  LoadGenConfig cfg_;
  FlowLedger* ledger_;
  // Per-slot flat state: the live flow's id and its remaining packet
  // budget.  No other per-flow storage exists in the generator.
  std::vector<std::uint32_t> slot_flow_;
  std::vector<std::uint32_t> slot_remaining_;
  std::mt19937_64 rng_;
  GenStats stats_;
  std::uint32_t next_flow_offset_ = 0;
  bool bursting_ = false;
};

}  // namespace empls::net
