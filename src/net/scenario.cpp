#include "net/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "net/domain.hpp"

namespace empls::net {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') {
      break;  // trailing comment
    }
    out.push_back(tok);
  }
  return out;
}

std::optional<double> parse_number(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  double v = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    return std::nullopt;
  }
  return v;
}

/// Split "key=value"; returns nullopt for non-option tokens.
std::optional<std::pair<std::string, std::string>> split_option(
    const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) {
    return std::nullopt;
  }
  return std::make_pair(tok.substr(0, eq), tok.substr(eq + 1));
}

}  // namespace

std::optional<double> parse_bandwidth(std::string_view text) {
  double scale = 1.0;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k':
        scale = 1e3;
        text.remove_suffix(1);
        break;
      case 'M':
        scale = 1e6;
        text.remove_suffix(1);
        break;
      case 'G':
        scale = 1e9;
        text.remove_suffix(1);
        break;
      default:
        break;
    }
  }
  const auto v = parse_number(text);
  if (!v || *v <= 0) {
    return std::nullopt;
  }
  return *v * scale;
}

std::optional<SimTime> parse_time(std::string_view text) {
  double scale = 1.0;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1e-6;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ns") {
    scale = 1e-9;
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    text.remove_suffix(1);
  }
  const auto v = parse_number(text);
  if (!v || *v < 0) {
    return std::nullopt;
  }
  return *v * scale;
}

std::string_view to_string(ExpectDecl::Op op) noexcept {
  switch (op) {
    case ExpectDecl::Op::kLt:
      return "<";
    case ExpectDecl::Op::kLe:
      return "<=";
    case ExpectDecl::Op::kGt:
      return ">";
    case ExpectDecl::Op::kGe:
      return ">=";
    case ExpectDecl::Op::kEq:
      return "==";
    case ExpectDecl::Op::kNe:
      return "!=";
  }
  return "?";
}

bool Scenario::has_router(const std::string& name) const {
  return std::any_of(routers.begin(), routers.end(),
                     [&](const RouterDecl& r) { return r.name == name; });
}

std::variant<Scenario, ScenarioError> Scenario::parse(std::string_view text) {
  Scenario s;
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  int sample_line = 0;    // where `sample` was declared, for the
  int timeline_line = 0;  // cross-directive diagnostics below the loop

  auto error = [&](const std::string& message) {
    return ScenarioError{line_no, message};
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& cmd = tokens[0];

    if (cmd == "qos") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (tokens[i] == "strict") {
          s.qos.scheduler = SchedulerKind::kStrictPriority;
        } else if (tokens[i] == "fifo") {
          s.qos.scheduler = SchedulerKind::kFifo;
        } else if (tokens[i] == "wrr") {
          s.qos.scheduler = SchedulerKind::kWeightedRoundRobin;
        } else if (tokens[i] == "red") {
          s.qos.drop = DropPolicy::kRed;
        } else if (const auto opt = split_option(tokens[i]);
                   opt && opt->first == "capacity") {
          const auto v = parse_number(opt->second);
          if (!v || *v < 1) {
            return error("bad qos capacity: " + opt->second);
          }
          s.qos.queue_capacity = static_cast<std::size_t>(*v);
        } else {
          return error("unknown qos option: " + tokens[i]);
        }
      }
    } else if (cmd == "scheduler" || cmd.rfind("scheduler=", 0) == 0) {
      // Accept both spellings: `scheduler calendar` and
      // `scheduler=calendar`.
      std::string value;
      if (cmd == "scheduler") {
        if (tokens.size() != 2) {
          return error("scheduler needs: scheduler heap|calendar");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error("scheduler=<backend> takes no further tokens");
        }
        value = cmd.substr(std::string_view("scheduler=").size());
      }
      if (value == "heap") {
        s.scheduler = SchedulerBackend::kHeap;
      } else if (value == "calendar") {
        s.scheduler = SchedulerBackend::kCalendar;
      } else {
        return error("unknown scheduler: " + value + " (heap|calendar)");
      }
    } else if (cmd == "domains" || cmd.rfind("domains=", 0) == 0) {
      // Event-domain partitioning; both spellings, like `scheduler`.
      std::string value;
      if (cmd == "domains") {
        if (tokens.size() != 2) {
          return error("domains needs: domains <N>|auto");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error("domains=<N>|auto takes no further tokens");
        }
        value = cmd.substr(std::string_view("domains=").size());
      }
      if (value == "auto") {
        s.domains = 0;  // resolved to the hardware thread count at run
      } else {
        const std::optional<double> n = parse_number(value);
        if (!n || *n < 1 || *n > 256 ||
            *n != static_cast<double>(static_cast<std::size_t>(*n))) {
          return error("domains must be an integer in [1,256] or auto");
        }
        s.domains = static_cast<std::size_t>(*n);
      }
    } else if (cmd == "sync" || cmd.rfind("sync=", 0) == 0) {
      std::string value;
      if (cmd == "sync") {
        if (tokens.size() != 2) {
          return error("sync needs: sync deterministic|free");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error("sync=<mode> takes no further tokens");
        }
        value = cmd.substr(std::string_view("sync=").size());
      }
      if (value == "deterministic") {
        s.sync = SyncMode::kDeterministic;
      } else if (value == "free") {
        s.sync = SyncMode::kFree;
      } else {
        return error("unknown sync mode: " + value +
                     " (deterministic|free)");
      }
    } else if (cmd == "trace" || cmd.rfind("trace=", 0) == 0 ||
               cmd == "metrics" || cmd.rfind("metrics=", 0) == 0) {
      // Telemetry outputs; both spellings, like `scheduler`.  "off"
      // (the default) leaves the corresponding exporter unarmed.
      const bool is_trace = cmd[0] == 't';
      const char* name = is_trace ? "trace" : "metrics";
      std::string value;
      if (cmd == name) {
        if (tokens.size() != 2) {
          return error(std::string(name) + " needs: " + name +
                       " <path>|off");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error(std::string(name) +
                       "=<path> takes no further tokens");
        }
        value = cmd.substr(std::string(name).size() + 1);
      }
      if (value == "off") {
        value.clear();
      }
      (is_trace ? s.trace_path : s.metrics_path) = std::move(value);
    } else if (cmd == "timeline" || cmd.rfind("timeline=", 0) == 0) {
      std::string value;
      if (cmd == "timeline") {
        if (tokens.size() != 2) {
          return error("timeline needs: timeline <path>|off");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error("timeline=<path> takes no further tokens");
        }
        value = cmd.substr(std::string_view("timeline=").size());
      }
      if (value == "off") {
        value.clear();
      }
      s.timeline_path = std::move(value);
      timeline_line = line_no;
    } else if (cmd == "sample" || cmd.rfind("sample=", 0) == 0) {
      std::string value;
      if (cmd == "sample") {
        if (tokens.size() != 2) {
          return error("sample needs: sample <interval>");
        }
        value = tokens[1];
      } else {
        if (tokens.size() != 1) {
          return error("sample=<interval> takes no further tokens");
        }
        value = cmd.substr(std::string_view("sample=").size());
      }
      const auto v = parse_time(value);
      if (!v || *v <= 0) {
        return error("bad sample interval: " + value);
      }
      s.sample_interval = *v;
      sample_line = line_no;
    } else if (cmd == "profile") {
      if (tokens.size() > 2 ||
          (tokens.size() == 2 && tokens[1] != "on" && tokens[1] != "off")) {
        return error("profile takes on|off");
      }
      s.profile = tokens.size() < 2 || tokens[1] == "on";
    } else if (cmd == "expect") {
      // expect <metric> <op> <value> [during <t0>..<t1>]
      if (tokens.size() != 4 && tokens.size() != 6) {
        return error("expect needs: expect <metric> <op> <value> "
                     "[during <t0>..<t1>]");
      }
      ExpectDecl e;
      e.metric = tokens[1];
      if (tokens[2] == "<") {
        e.op = ExpectDecl::Op::kLt;
      } else if (tokens[2] == "<=") {
        e.op = ExpectDecl::Op::kLe;
      } else if (tokens[2] == ">") {
        e.op = ExpectDecl::Op::kGt;
      } else if (tokens[2] == ">=") {
        e.op = ExpectDecl::Op::kGe;
      } else if (tokens[2] == "==") {
        e.op = ExpectDecl::Op::kEq;
      } else if (tokens[2] == "!=") {
        e.op = ExpectDecl::Op::kNe;
      } else {
        return error("expect op must be one of < <= > >= == !=, got " +
                     tokens[2]);
      }
      const auto v = parse_number(tokens[3]);
      if (!v) {
        return error("bad expect value: " + tokens[3]);
      }
      e.value = *v;
      if (tokens.size() == 6) {
        if (tokens[4] != "during") {
          return error("expect window needs: during <t0>..<t1>, got " +
                       tokens[4]);
        }
        const auto dots = tokens[5].find("..");
        if (dots == std::string::npos) {
          return error("expect window needs <t0>..<t1>, got " + tokens[5]);
        }
        const auto t0 = parse_time(tokens[5].substr(0, dots));
        const auto t1 = parse_time(tokens[5].substr(dots + 2));
        if (!t0 || !t1 || *t1 < *t0) {
          return error("bad expect window: " + tokens[5]);
        }
        e.windowed = true;
        e.t0 = *t0;
        e.t1 = *t1;
      }
      e.line = line_no;
      e.source = tokens[1] + " " + tokens[2] + " " + tokens[3];
      if (e.windowed) {
        e.source += " during " + tokens[5];
      }
      s.expects.push_back(std::move(e));
    } else if (cmd == "router") {
      if (tokens.size() < 3) {
        return error("router needs: router <name> ler|lsr [options]");
      }
      RouterDecl r;
      r.name = tokens[1];
      if (tokens[2] == "ler") {
        r.is_ler = true;
      } else if (tokens[2] == "lsr") {
        r.is_ler = false;
      } else {
        return error("router type must be ler or lsr, got " + tokens[2]);
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt) {
          return error("bad router option: " + tokens[i]);
        }
        if (opt->first == "engine") {
          if (opt->second.rfind("sharded:", 0) == 0) {
            // sharded:<N> with an optional replica kind suffix:
            // sharded:<N>:simd (the default) or sharded:<N>:trie.
            std::string spec = opt->second.substr(8);
            std::string replica = "simd";
            if (const auto colon = spec.find(':');
                colon != std::string::npos) {
              replica = spec.substr(colon + 1);
              spec.resize(colon);
            }
            const auto n = parse_number(spec);
            if (!n || *n < 1 || *n > 64 ||
                *n != static_cast<double>(static_cast<unsigned>(*n))) {
              return error("sharded engine needs sharded:<1..64>, got " +
                           opt->second);
            }
            if (replica != "simd" && replica != "trie") {
              return error("sharded replica must be simd or trie, got " +
                           opt->second);
            }
          } else if (opt->second != "linear" && opt->second != "hash" &&
                     opt->second != "cam" && opt->second != "simd" &&
                     opt->second != "trie" && opt->second != "hw") {
            return error("unknown engine: " + opt->second);
          }
          r.engine = opt->second;
        } else if (opt->first == "cache") {
          if (opt->second == "off") {
            r.cache = 0;
          } else {
            const auto v = parse_number(opt->second);
            if (!v || *v < 1 || *v > 1048576 ||
                *v != static_cast<double>(static_cast<std::size_t>(*v))) {
              return error("bad cache size (want 1..1048576 or off): " +
                           opt->second);
            }
            r.cache = static_cast<std::size_t>(*v);
          }
        } else if (opt->first == "batch") {
          const auto v = parse_number(opt->second);
          if (!v || *v < 1 || *v > 4096) {
            return error("bad batch size: " + opt->second);
          }
          r.batch = static_cast<std::size_t>(*v);
        } else if (opt->first == "clock") {
          const auto v = parse_bandwidth(opt->second);  // same suffixes
          if (!v) {
            return error("bad clock: " + opt->second);
          }
          r.clock_hz = *v;
        } else {
          return error("unknown router option: " + opt->first);
        }
      }
      if (s.has_router(r.name)) {
        return error("duplicate router: " + r.name);
      }
      s.routers.push_back(std::move(r));
    } else if (cmd == "link") {
      if (tokens.size() != 5) {
        return error("link needs: link <a> <b> <bandwidth> <delay>");
      }
      LinkDecl l;
      l.a = tokens[1];
      l.b = tokens[2];
      if (!s.has_router(l.a) || !s.has_router(l.b)) {
        return error("link references undeclared router");
      }
      const auto bw = parse_bandwidth(tokens[3]);
      const auto delay = parse_time(tokens[4]);
      if (!bw) {
        return error("bad bandwidth: " + tokens[3]);
      }
      if (!delay) {
        return error("bad delay: " + tokens[4]);
      }
      l.bandwidth_bps = *bw;
      l.delay = *delay;
      s.links.push_back(std::move(l));
    } else if (cmd == "lsp" || cmd == "lsp-cspf") {
      if (tokens.size() < 4) {
        return error(cmd + " needs: " + cmd + " <prefix> <nodes...>");
      }
      LspDecl l;
      const auto fec = mpls::Prefix::parse(tokens[1]);
      if (!fec) {
        return error("bad prefix: " + tokens[1]);
      }
      l.fec = *fec;
      l.cspf = cmd == "lsp-cspf";
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "php") {
          l.php = true;
        } else if (tokens[i] == "merge") {
          l.merge = true;
        } else if (const auto opt = split_option(tokens[i])) {
          if (opt->first != "bw") {
            return error("unknown lsp option: " + opt->first);
          }
          const auto bw = parse_bandwidth(opt->second);
          if (!bw) {
            return error("bad bw: " + opt->second);
          }
          l.bw = *bw;
        } else {
          if (!s.has_router(tokens[i])) {
            return error("lsp references undeclared router: " + tokens[i]);
          }
          l.path.push_back(tokens[i]);
        }
      }
      if (l.path.size() < 2) {
        return error("lsp needs at least two nodes");
      }
      if (l.cspf && l.path.size() != 2) {
        return error("lsp-cspf takes exactly ingress and egress");
      }
      s.lsps.push_back(std::move(l));
    } else if (cmd == "tunnel") {
      if (tokens.size() < 5) {
        return error("tunnel needs: tunnel <name> <n1> <n2> <n3> ...");
      }
      TunnelDecl t;
      t.name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (!s.has_router(tokens[i])) {
          return error("tunnel references undeclared router: " + tokens[i]);
        }
        t.path.push_back(tokens[i]);
      }
      s.tunnels.push_back(std::move(t));
    } else if (cmd == "lsp-via-tunnel") {
      // lsp-via-tunnel <prefix> pre <n..> tunnel <name> post <n..> [bw=]
      if (tokens.size() < 8) {
        return error("lsp-via-tunnel needs pre/tunnel/post sections");
      }
      LspViaTunnelDecl l;
      const auto fec = mpls::Prefix::parse(tokens[1]);
      if (!fec) {
        return error("bad prefix: " + tokens[1]);
      }
      l.fec = *fec;
      enum { kNone, kPre, kPost } section = kNone;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "pre") {
          section = kPre;
        } else if (tokens[i] == "post") {
          section = kPost;
        } else if (tokens[i] == "tunnel") {
          if (i + 1 >= tokens.size()) {
            return error("tunnel section needs a name");
          }
          l.tunnel = tokens[++i];
          section = kNone;
        } else if (const auto opt = split_option(tokens[i])) {
          if (opt->first != "bw") {
            return error("unknown option: " + opt->first);
          }
          const auto bw = parse_bandwidth(opt->second);
          if (!bw) {
            return error("bad bw: " + opt->second);
          }
          l.bw = *bw;
        } else if (section == kPre || section == kPost) {
          if (!s.has_router(tokens[i])) {
            return error("lsp-via-tunnel references undeclared router: " +
                         tokens[i]);
          }
          (section == kPre ? l.pre : l.post).push_back(tokens[i]);
        } else {
          return error("unexpected token: " + tokens[i]);
        }
      }
      if (l.pre.empty() || l.post.empty() || l.tunnel.empty()) {
        return error("lsp-via-tunnel needs pre nodes, a tunnel and post "
                     "nodes");
      }
      s.tunnel_lsps.push_back(std::move(l));
    } else if (cmd == "flow") {
      if (tokens.size() < 5) {
        return error("flow needs: flow <kind> <id> <ingress> <dst> [opts]");
      }
      FlowDecl f;
      f.kind = tokens[1];
      if (f.kind != "cbr" && f.kind != "poisson" && f.kind != "video" &&
          f.kind != "onoff") {
        return error("unknown flow kind: " + f.kind);
      }
      const auto id = parse_number(tokens[2]);
      if (!id || *id < 0) {
        return error("bad flow id: " + tokens[2]);
      }
      f.id = static_cast<std::uint32_t>(*id);
      f.ingress = tokens[3];
      if (!s.has_router(f.ingress)) {
        return error("flow ingress not declared: " + f.ingress);
      }
      if (!mpls::Ipv4Address::parse(tokens[4])) {
        return error("bad destination address: " + tokens[4]);
      }
      f.dst = tokens[4];
      for (std::size_t i = 5; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt) {
          return error("bad flow option: " + tokens[i]);
        }
        const auto& [key, value] = *opt;
        if (key == "cos") {
          const auto v = parse_number(value);
          if (!v || *v < 0 || *v > 7) {
            return error("cos must be 0..7");
          }
          f.cos = static_cast<std::uint8_t>(*v);
        } else if (key == "size") {
          const auto v = parse_number(value);
          if (!v || *v < 0) {
            return error("bad size");
          }
          f.size = static_cast<std::size_t>(*v);
        } else if (key == "start") {
          const auto v = parse_time(value);
          if (!v) {
            return error("bad start");
          }
          f.start = *v;
        } else if (key == "stop") {
          const auto v = parse_time(value);
          if (!v) {
            return error("bad stop");
          }
          f.stop = *v;
        } else if (key == "interval") {
          const auto v = parse_time(value);
          if (!v || *v <= 0) {
            return error("bad interval");
          }
          f.interval = *v;
        } else if (key == "rate") {
          const auto v = parse_number(value);
          if (!v || *v <= 0) {
            return error("bad rate");
          }
          f.rate = *v;
        } else if (key == "seed") {
          const auto v = parse_number(value);
          if (!v) {
            return error("bad seed");
          }
          f.seed = static_cast<std::uint64_t>(*v);
        } else if (key == "fps") {
          const auto v = parse_number(value);
          if (!v || *v <= 0) {
            return error("bad fps");
          }
          f.fps = *v;
        } else if (key == "ppf") {
          const auto v = parse_number(value);
          if (!v || *v < 1) {
            return error("bad ppf");
          }
          f.ppf = static_cast<unsigned>(*v);
        } else if (key == "on") {
          const auto v = parse_time(value);
          if (!v || *v <= 0) {
            return error("bad on duration");
          }
          f.mean_on = *v;
        } else if (key == "off") {
          const auto v = parse_time(value);
          if (!v || *v <= 0) {
            return error("bad off duration");
          }
          f.mean_off = *v;
        } else {
          return error("unknown flow option: " + key);
        }
      }
      s.flows.push_back(std::move(f));
    } else if (cmd == "fail" || cmd == "restore") {
      if (tokens.size() != 4) {
        return error(cmd + " needs: " + cmd + " <time> <a> <b>");
      }
      LinkEventDecl e;
      const auto at = parse_time(tokens[1]);
      if (!at) {
        return error("bad time: " + tokens[1]);
      }
      e.at = *at;
      e.a = tokens[2];
      e.b = tokens[3];
      if (!s.has_router(e.a) || !s.has_router(e.b)) {
        return error(cmd + " references undeclared router");
      }
      e.up = cmd == "restore";
      s.link_events.push_back(std::move(e));
    } else if (cmd == "flap") {
      if (tokens.size() != 5) {
        return error("flap needs: flap <time> <a> <b> <down-for>");
      }
      FlapDecl f;
      const auto at = parse_time(tokens[1]);
      if (!at) {
        return error("bad time: " + tokens[1]);
      }
      f.at = *at;
      f.a = tokens[2];
      f.b = tokens[3];
      if (!s.has_router(f.a) || !s.has_router(f.b)) {
        return error("flap references undeclared router");
      }
      const auto down = parse_time(tokens[4]);
      if (!down || *down <= 0) {
        return error("bad flap duration: " + tokens[4]);
      }
      f.down_for = *down;
      s.flaps.push_back(std::move(f));
    } else if (cmd == "crash") {
      if (tokens.size() < 3) {
        return error("crash needs: crash <time> <node> [for=dur]");
      }
      CrashDecl c;
      const auto at = parse_time(tokens[1]);
      if (!at) {
        return error("bad time: " + tokens[1]);
      }
      c.at = *at;
      c.node = tokens[2];
      if (!s.has_router(c.node)) {
        return error("crash references undeclared router: " + c.node);
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt || opt->first != "for") {
          return error("unknown crash option: " + tokens[i]);
        }
        const auto v = parse_time(opt->second);
        if (!v || *v <= 0) {
          return error("bad crash duration: " + opt->second);
        }
        c.duration = *v;
      }
      s.crashes.push_back(std::move(c));
    } else if (cmd == "corrupt") {
      if (tokens.size() < 3) {
        return error(
            "corrupt needs: corrupt <time> <node> [salt=N] [resync=dur]");
      }
      CorruptDecl c;
      const auto at = parse_time(tokens[1]);
      if (!at) {
        return error("bad time: " + tokens[1]);
      }
      c.at = *at;
      c.node = tokens[2];
      if (!s.has_router(c.node)) {
        return error("corrupt references undeclared router: " + c.node);
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt) {
          return error("unknown corrupt option: " + tokens[i]);
        }
        if (opt->first == "salt") {
          const auto v = parse_number(opt->second);
          if (!v || *v < 0) {
            return error("bad salt: " + opt->second);
          }
          c.salt = static_cast<std::uint64_t>(*v);
        } else if (opt->first == "resync") {
          const auto v = parse_time(opt->second);
          if (!v || *v <= 0) {
            return error("bad resync delay: " + opt->second);
          }
          c.resync = *v;
        } else {
          return error("unknown corrupt option: " + opt->first);
        }
      }
      s.corruptions.push_back(std::move(c));
    } else if (cmd == "protect") {
      s.protect = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt || opt->first != "bw") {
          return error("unknown protect option: " + tokens[i]);
        }
        const auto bw = parse_bandwidth(opt->second);
        if (!bw) {
          return error("bad protect bw: " + opt->second);
        }
        s.protect_bw = *bw;
      }
    } else if (cmd == "police") {
      if (tokens.size() < 4) {
        return error("police needs: police <ingress> <flow-id> <rate> "
                     "[burst=N] [demote]");
      }
      Scenario::PolicerDecl p;
      p.ingress = tokens[1];
      if (!s.has_router(p.ingress)) {
        return error("police ingress not declared: " + p.ingress);
      }
      const auto flow = parse_number(tokens[2]);
      if (!flow || *flow < 0) {
        return error("bad flow id: " + tokens[2]);
      }
      p.flow_id = static_cast<std::uint32_t>(*flow);
      const auto rate = parse_bandwidth(tokens[3]);
      if (!rate) {
        return error("bad rate: " + tokens[3]);
      }
      p.rate_bps = *rate;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (tokens[i] == "demote") {
          p.demote = true;
        } else if (const auto opt = split_option(tokens[i]);
                   opt && opt->first == "burst") {
          const auto v = parse_number(opt->second);
          if (!v || *v <= 0) {
            return error("bad burst: " + opt->second);
          }
          p.burst_bytes = *v;
        } else {
          return error("unknown police option: " + tokens[i]);
        }
      }
      s.policers.push_back(std::move(p));
    } else if (cmd == "loadgen") {
      if (tokens.size() < 4) {
        return error("loadgen needs: loadgen poisson|mmpp <ingress> <dst> "
                     "[opts]");
      }
      LoadGenDecl g;
      g.kind = tokens[1];
      if (g.kind != "poisson" && g.kind != "mmpp") {
        return error("unknown loadgen arrivals: " + g.kind);
      }
      g.ingress = tokens[2];
      if (!s.has_router(g.ingress)) {
        return error("loadgen ingress not declared: " + g.ingress);
      }
      if (!mpls::Ipv4Address::parse(tokens[3])) {
        return error("bad destination address: " + tokens[3]);
      }
      g.dst = tokens[3];
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt) {
          return error("bad loadgen option: " + tokens[i]);
        }
        const auto& [key, value] = *opt;
        if (key == "rate" || key == "burst-rate") {
          const auto v = parse_bandwidth(value);  // k/M suffixes as pps
          if (!v || (key == "rate" ? *v <= 0 : *v < 0)) {
            return error("bad " + key + ": " + value);
          }
          (key == "rate" ? g.rate_pps : g.burst_rate_pps) = *v;
        } else if (key == "sojourn") {
          const auto v = parse_time(value);
          if (!v || *v <= 0) {
            return error("bad sojourn: " + value);
          }
          g.sojourn = *v;
        } else if (key == "flows") {
          const auto v = parse_number(value);
          if (!v || *v < 1 || *v > 16e6) {
            return error("bad flows (want 1..16M): " + value);
          }
          g.flows = static_cast<std::size_t>(*v);
        } else if (key == "alpha") {
          const auto v = parse_number(value);
          if (!v || *v <= 0) {
            return error("bad alpha: " + value);
          }
          g.alpha = *v;
        } else if (key == "minpkts") {
          const auto v = parse_number(value);
          if (!v || *v < 1) {
            return error("bad minpkts: " + value);
          }
          g.min_packets = static_cast<unsigned>(*v);
        } else if (key == "cos") {
          const auto v = parse_number(value);
          if (!v || *v < 0 || *v > 7) {
            return error("cos must be 0..7");
          }
          g.cos = static_cast<std::uint8_t>(*v);
        } else if (key == "size") {
          const auto v = parse_number(value);
          if (!v || *v < 0) {
            return error("bad size");
          }
          g.size = static_cast<std::size_t>(*v);
        } else if (key == "seed") {
          const auto v = parse_number(value);
          if (!v) {
            return error("bad seed");
          }
          g.seed = static_cast<std::uint64_t>(*v);
        } else if (key == "start" || key == "stop") {
          const auto v = parse_time(value);
          if (!v) {
            return error("bad " + key);
          }
          (key == "start" ? g.start : g.stop) = *v;
        } else {
          return error("unknown loadgen option: " + key);
        }
      }
      s.loadgens.push_back(std::move(g));
    } else if (cmd == "attack" || cmd.rfind("attack=", 0) == 0) {
      // Both spellings: `attack spoof <time> <ingress>` and the survey
      // shorthand `attack=spoof <time> <ingress>`.
      AttackDecl a;
      std::size_t arg = 1;
      if (cmd == "attack") {
        if (tokens.size() < 4) {
          return error("attack needs: attack <kind> <time> <ingress> "
                       "[opts]");
        }
        a.kind = tokens[arg++];
      } else {
        if (tokens.size() < 3) {
          return error("attack=<kind> needs: attack=<kind> <time> "
                       "<ingress> [opts]");
        }
        a.kind = cmd.substr(std::string_view("attack=").size());
      }
      if (a.kind != "spoof" && a.kind != "ttl_flood" &&
          a.kind != "reserved" && a.kind != "exhaust") {
        return error("unknown attack kind: " + a.kind +
                     " (spoof|ttl_flood|reserved|exhaust)");
      }
      const auto at = parse_time(tokens[arg]);
      if (!at) {
        return error("bad time: " + tokens[arg]);
      }
      a.at = *at;
      ++arg;
      a.ingress = tokens[arg];
      if (!s.has_router(a.ingress)) {
        return error("attack ingress not declared: " + a.ingress);
      }
      ++arg;
      for (; arg < tokens.size(); ++arg) {
        const auto opt = split_option(tokens[arg]);
        if (!opt) {
          return error("bad attack option: " + tokens[arg]);
        }
        const auto& [key, value] = *opt;
        if (key == "rate") {
          const auto v = parse_bandwidth(value);
          if (!v || *v <= 0) {
            return error("bad rate: " + value);
          }
          a.rate_pps = *v;
        } else if (key == "for") {
          const auto v = parse_time(value);
          if (!v || *v <= 0) {
            return error("bad attack duration: " + value);
          }
          a.duration = *v;
        } else if (key == "seed") {
          const auto v = parse_number(value);
          if (!v) {
            return error("bad seed");
          }
          a.seed = static_cast<std::uint64_t>(*v);
        } else if (key == "dst") {
          if (!mpls::Ipv4Address::parse(value)) {
            return error("bad attack dst: " + value);
          }
          a.dst = value;
        } else if (key == "cos") {
          const auto v = parse_number(value);
          if (!v || *v < 0 || *v > 7) {
            return error("cos must be 0..7");
          }
          a.cos = static_cast<std::uint8_t>(*v);
        } else {
          return error("unknown attack option: " + key);
        }
      }
      s.attacks.push_back(std::move(a));
    } else if (cmd == "guard") {
      if (tokens.size() < 2) {
        return error("guard needs: guard <router>|* [opts]");
      }
      GuardDecl g;
      g.router = tokens[1];
      if (g.router != "*" && !s.has_router(g.router)) {
        return error("guard references undeclared router: " + g.router);
      }
      g.config.enabled = true;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt) {
          return error("bad guard option: " + tokens[i]);
        }
        const auto& [key, value] = *opt;
        if (key == "ttl" || key == "reprogram") {
          const auto v = parse_bandwidth(value);  // rates; k/M suffixes
          if (!v) {
            return error("bad " + key + " rate: " + value);
          }
          (key == "ttl" ? g.config.ttl_expiry_pps
                        : g.config.reprogram_per_s) = *v;
        } else if (key == "demote" || key == "shed") {
          const auto v = parse_number(value);
          if (!v || *v < 0 || *v > 1.0) {
            return error("bad " + key + " occupancy (want 0..1): " + value);
          }
          (key == "demote" ? g.config.demote_occupancy
                           : g.config.shed_occupancy) = *v;
        } else if (key == "maxcos") {
          const auto v = parse_number(value);
          if (!v || *v < 0 || *v > 7) {
            return error("maxcos must be 0..7");
          }
          g.config.demote_cos_max = static_cast<std::uint8_t>(*v);
        } else if (key == "reserved" || key == "spoof") {
          if (value != "on" && value != "off") {
            return error(key + " wants on|off, got " + value);
          }
          (key == "reserved" ? g.config.check_reserved
                             : g.config.check_spoof) = value == "on";
        } else {
          return error("unknown guard option: " + key);
        }
      }
      s.guards.push_back(std::move(g));
    } else if (cmd == "ping" || cmd == "traceroute") {
      if (tokens.size() != 4) {
        return error(cmd + " needs: " + cmd + " <time> <ingress> <dst>");
      }
      OamDecl o;
      const auto at = parse_time(tokens[1]);
      if (!at) {
        return error("bad time: " + tokens[1]);
      }
      o.at = *at;
      o.traceroute = cmd == "traceroute";
      o.ingress = tokens[2];
      if (!s.has_router(o.ingress)) {
        return error(cmd + " ingress not declared: " + o.ingress);
      }
      if (!mpls::Ipv4Address::parse(tokens[3])) {
        return error("bad destination address: " + tokens[3]);
      }
      o.dst = tokens[3];
      s.oam_probes.push_back(std::move(o));
    } else if (cmd == "autorepair") {
      if (tokens.size() < 2) {
        return error("autorepair needs a hello interval");
      }
      const auto hello = parse_time(tokens[1]);
      if (!hello || *hello <= 0) {
        return error("bad hello interval: " + tokens[1]);
      }
      s.autorepair_hello = *hello;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto opt = split_option(tokens[i]);
        if (!opt || opt->first != "dead") {
          return error("unknown autorepair option: " + tokens[i]);
        }
        const auto v = parse_number(opt->second);
        if (!v || *v < 1) {
          return error("bad dead multiplier: " + opt->second);
        }
        s.autorepair_dead = static_cast<unsigned>(*v);
      }
    } else if (cmd == "run") {
      if (tokens.size() != 2) {
        return error("run needs a duration");
      }
      const auto v = parse_time(tokens[1]);
      if (!v) {
        return error("bad duration: " + tokens[1]);
      }
      s.run_duration = *v;
    } else {
      return error("unknown directive: " + cmd);
    }
  }
  // Cross-directive validation: the runner pre-schedules timeline ticks
  // over the run window, so sampling needs a bounded run; windowed
  // assertions read the timeline, so they need sampling.
  if (s.sample_interval && !s.run_duration) {
    return ScenarioError{sample_line, "sample requires a run duration"};
  }
  for (const ExpectDecl& e : s.expects) {
    if (e.windowed && !s.sample_interval) {
      return ScenarioError{
          e.line, "expect ... during needs a sample interval (line " +
                      std::to_string(e.line) + ")"};
    }
  }
  if (!s.timeline_path.empty() && !s.sample_interval) {
    return ScenarioError{timeline_line,
                         "timeline output requires a sample interval"};
  }
  return s;
}

}  // namespace empls::net
