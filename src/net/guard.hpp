// Ingress guard: the router's overload-survival stage.
//
// The MPLS security survey (arXiv 2409.03795) catalogs the adversarial
// inputs a production LSR must shrug off; this stage composes the
// existing token bucket with four protections, each refusal stamped
// with its own obs::DropReason so attack traffic is fully attributable
// in the drop partition:
//
//   * reserved-label validation — the reserved range 0..15 carries
//     protocol semantics (explicit null, router alert) and must never
//     be accepted as a forwarding label from off the domain;
//   * spoofed-label screening — an off-domain labeled packet whose top
//     label has no programmed binding is an injection attempt, refused
//     before it can consume the engine datapath;
//   * a TTL-expiry rate limiter — packets that will expire are slow-path
//     work (ICMP generation in a real router); a flood of ttl=1 packets
//     must not starve the datapath, so expiry processing is budgeted;
//   * info-base reprogram admission — slow-path installs reprogram the
//     information base (and invalidate every flow-cache epoch); an
//     exhaustion attack spraying fresh destinations is admitted only at
//     a bounded reprogram rate.
//
// Degradation under load is graceful rather than cliff-edge: as the
// engine queue fills past `demote_occupancy`, low-CoS arrivals are
// remarked to best effort; past `shed_occupancy` the guard sheds lowest
// CoS first, with the shed floor rising with occupancy — so reserved
// classes keep their latency while best effort absorbs the loss.
#pragma once

#include <cstdint>
#include <optional>

#include "net/policer.hpp"
#include "obs/drop_reason.hpp"

namespace empls::net {

struct GuardConfig {
  /// Master arm; a default-constructed router carries no guard at all.
  bool enabled = false;
  /// Refuse reserved labels (0..15) arriving from off the domain.
  bool check_reserved = true;
  /// Refuse off-domain labels with no programmed binding.
  bool check_spoof = true;
  /// Budget for packets that will expire (packets/s; 0 = unlimited).
  double ttl_expiry_pps = 1000;
  /// Budget for slow-path info-base installs (installs/s; 0 = unlimited).
  double reprogram_per_s = 200;
  /// Engine-queue occupancy above which CoS 1..demote_cos_max arrivals
  /// are remarked to best effort (>= 1 disables).
  double demote_occupancy = 0.5;
  /// Occupancy above which arrivals are shed lowest CoS first (>= 1
  /// disables; the shed floor rises from CoS 1 here to CoS 7 at full).
  double shed_occupancy = 0.75;
  /// Highest CoS the demotion band may remark.
  std::uint8_t demote_cos_max = 3;
};

struct GuardStats {
  std::uint64_t reserved_drops = 0;
  std::uint64_t spoof_drops = 0;
  std::uint64_t ttl_limited = 0;
  std::uint64_t reprogram_refusals = 0;
  std::uint64_t demoted = 0;
  std::uint64_t shed = 0;
  /// Packets that passed every screen.
  std::uint64_t admitted = 0;
};

class IngressGuard {
 public:
  explicit IngressGuard(const GuardConfig& cfg);

  [[nodiscard]] const GuardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const GuardStats& stats() const noexcept { return stats_; }

  /// Screen one arrival before it may queue for the engine.  Returns
  /// the stamped refusal reason, or nullopt to admit.  `external` is
  /// true for packets entering from off the MPLS domain (injected at
  /// this node); `binding_known` answers whether the routing
  /// functionality has a programmed binding for the packet's top label
  /// (only consulted for external labeled arrivals); `will_expire` is
  /// the TTL-semantics predicate (effective TTL <= 1).
  [[nodiscard]] std::optional<obs::DropReason> screen(bool labeled,
                                                      std::uint32_t top_label,
                                                      bool will_expire,
                                                      bool external,
                                                      bool binding_known,
                                                      SimTime now);

  /// Admission for one slow-path info-base install; false counts a
  /// refusal (the packet is discarded kReprogramRateLimited).
  [[nodiscard]] bool admit_reprogram(SimTime now);

  enum class LoadAction : std::uint8_t { kAdmit, kDemote, kShed };

  /// Graceful-degradation ladder for an arrival finding `queue_len` of
  /// `capacity` engine slots occupied.  kDemote only applies below the
  /// shed band and only to demotable classes; kShed applies lowest CoS
  /// first with a floor that rises with occupancy.
  [[nodiscard]] LoadAction load_action(std::size_t queue_len,
                                       std::size_t capacity,
                                       std::uint8_t cos);

  /// Stats hooks for the router (the guard owns the tallies so the
  /// report and metrics read one struct).
  void count_demoted() noexcept { ++stats_.demoted; }
  void count_shed() noexcept { ++stats_.shed; }

 private:
  GuardConfig cfg_;
  GuardStats stats_;
  TokenBucket ttl_bucket_;
  TokenBucket reprogram_bucket_;
};

}  // namespace empls::net
