#include "net/link_state.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace empls::net {

void LinkStateRouting::add_router(NodeId id) {
  agents_.emplace(id, Lsdb{});
  next_seq_.emplace(id, 1);
}

void LinkStateRouting::add_all_routers() {
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    add_router(id);
  }
}

LinkStateRouting::Lsa LinkStateRouting::originate(NodeId id) {
  Lsa lsa;
  lsa.origin = id;
  lsa.seq = next_seq_[id]++;
  for (const auto& adj : net_->adjacency(id)) {
    if (!agents_.contains(adj.neighbor)) {
      continue;  // neighbour not running the protocol
    }
    if (!net_->link_from(id, adj.port).is_up()) {
      continue;
    }
    // One entry per neighbour (cheapest parallel link).
    const auto existing = std::find_if(
        lsa.links.begin(), lsa.links.end(),
        [&](const auto& l) { return l.first == adj.neighbor; });
    if (existing == lsa.links.end()) {
      lsa.links.emplace_back(adj.neighbor, adj.prop_delay);
    } else {
      existing->second = std::min(existing->second, adj.prop_delay);
    }
  }
  ++stats_.lsas_originated;
  return lsa;
}

void LinkStateRouting::bootstrap() {
  for (const auto& [id, lsdb] : agents_) {
    (void)lsdb;
    receive(id, originate(id));  // self-install + flood
  }
}

void LinkStateRouting::notify_link_change(NodeId a, NodeId b) {
  // Both endpoints re-describe their adjacencies.
  for (const NodeId id : {a, b}) {
    if (agents_.contains(id)) {
      receive(id, originate(id));
    }
  }
}

void LinkStateRouting::flood_from(NodeId id, const Lsa& lsa) {
  for (const auto& adj : net_->adjacency(id)) {
    if (!agents_.contains(adj.neighbor)) {
      continue;
    }
    // Flooding uses the links themselves: a dead link carries no LSAs.
    if (!net_->link_from(id, adj.port).is_up()) {
      continue;
    }
    ++stats_.floods_sent;
    const NodeId to = adj.neighbor;
    net_->events().schedule_in(
        hop_delay_, [this, to, lsa] { receive(to, lsa); });
  }
}

void LinkStateRouting::receive(NodeId at, Lsa lsa) {
  auto& lsdb = agents_.at(at);
  const auto it = lsdb.find(lsa.origin);
  if (it != lsdb.end() && it->second.seq >= lsa.seq) {
    ++stats_.floods_stale;
    return;  // old news: do not re-flood (this terminates the flood)
  }
  ++stats_.floods_accepted;
  lsdb[lsa.origin] = lsa;
  last_change_ = net_->now();
  flood_from(at, lsa);
}

std::optional<std::vector<NodeId>> LinkStateRouting::path_from(
    NodeId viewpoint, NodeId dst) const {
  const auto agent = agents_.find(viewpoint);
  if (agent == agents_.end()) {
    return std::nullopt;
  }
  const Lsdb& lsdb = agent->second;
  if (viewpoint == dst) {
    return std::vector<NodeId>{viewpoint};
  }

  // Dijkstra over the viewpoint's database.  An adjacency counts only
  // if BOTH endpoints advertise it (the standard two-way check).
  auto advertises = [&lsdb](NodeId from, NodeId to) -> std::optional<double> {
    const auto it = lsdb.find(from);
    if (it == lsdb.end()) {
      return std::nullopt;
    }
    for (const auto& [neighbor, cost] : it->second.links) {
      if (neighbor == to) {
        return cost;
      }
    }
    return std::nullopt;
  };

  std::map<NodeId, double> dist;
  std::map<NodeId, NodeId> prev;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[viewpoint] = 0.0;
  heap.emplace(0.0, viewpoint);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) {
      continue;
    }
    const auto it = lsdb.find(u);
    if (it == lsdb.end()) {
      continue;
    }
    for (const auto& [v, cost] : it->second.links) {
      if (!advertises(v, u)) {
        continue;  // one-way report: not yet (or no longer) usable
      }
      const double nd = d + cost + 1e-9;
      if (!dist.contains(v) || nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (!dist.contains(dst)) {
    return std::nullopt;
  }
  std::vector<NodeId> path;
  for (NodeId v = dst; v != viewpoint; v = prev.at(v)) {
    path.push_back(v);
  }
  path.push_back(viewpoint);
  std::reverse(path.begin(), path.end());
  return path;
}

bool LinkStateRouting::converged() const {
  const Lsdb* reference = nullptr;
  for (const auto& [id, lsdb] : agents_) {
    (void)id;
    if (reference == nullptr) {
      reference = &lsdb;
      continue;
    }
    if (lsdb.size() != reference->size()) {
      return false;
    }
    for (const auto& [origin, lsa] : lsdb) {
      const auto it = reference->find(origin);
      if (it == reference->end() || it->second.seq != lsa.seq) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace empls::net
