// Node base class: anything attached to the network that can receive
// packets on interfaces and send packets out of its ports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpls/packet.hpp"
#include "mpls/tables.hpp"
#include "net/packet_pool.hpp"

namespace empls::obs {
class MetricsRegistry;
class HopTracer;
}  // namespace empls::obs

namespace empls::net {

class Network;
class Link;

using NodeId = std::uint32_t;

/// Pseudo-interface a locally injected packet arrives on.
inline constexpr mpls::InterfaceId kInjectInterface = 0xFFFFFFFE;

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t num_ports() const noexcept {
    return ports_.size();
  }

  /// A packet arrives on interface `in_if` (kInjectInterface for local
  /// injection by a traffic source).  The handle owns the packet; hold
  /// it, move it onward via send(), or let it drop and recycle.
  virtual void receive(PacketHandle packet, mpls::InterfaceId in_if) = 0;

  /// Telemetry wiring, called once by Network::set_telemetry: register
  /// live instruments with `metrics` and stash `tracer` for per-packet
  /// spans.  Either may be null.  Default: no instrumentation, so an
  /// un-wired node costs nothing.
  virtual void on_telemetry(obs::MetricsRegistry* /*metrics*/,
                            obs::HopTracer* /*tracer*/) {}

  /// Snapshot pass, called by Network::export_metrics: dump this node's
  /// counters into the registry.  Default: nothing to export.
  virtual void export_metrics(obs::MetricsRegistry& /*metrics*/) const {}

 protected:
  /// Transmit out of local port `out_if` (the directed link's queue and
  /// scheduler take it from here).
  void send(PacketHandle packet, mpls::InterfaceId out_if);

  [[nodiscard]] Network* network() const noexcept { return net_; }

 private:
  friend class Network;

  std::string name_;
  Network* net_ = nullptr;
  NodeId id_ = 0;
  std::vector<Link*> ports_;  // outgoing directed links, by port index
};

}  // namespace empls::net
