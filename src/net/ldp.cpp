#include "net/ldp.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace empls::net {

void ControlPlane::register_router(NodeId id, MplsNode* router) {
  assert(router != nullptr);
  routers_[id] = router;
}

MplsNode* ControlPlane::router(NodeId id) const {
  const auto it = routers_.find(id);
  return it == routers_.end() ? nullptr : it->second;
}

std::optional<ControlPlane::Hop> ControlPlane::find_hop(NodeId from,
                                                        NodeId to,
                                                        double bw) const {
  for (const auto& adj : net_->adjacency(from)) {
    if (adj.neighbor != to) {
      continue;
    }
    if (!net_->link_from(from, adj.port).is_up()) {
      continue;
    }
    const auto it = reserved_.find({from, adj.port});
    const double used = it == reserved_.end() ? 0.0 : it->second;
    if (adj.bandwidth_bps - used >= bw) {
      return Hop{adj.port, adj.bandwidth_bps};
    }
  }
  return std::nullopt;
}

void ControlPlane::reserve(NodeId from, mpls::InterfaceId port, double bw) {
  if (bw > 0.0) {
    reserved_[{from, port}] += bw;
  }
}

double ControlPlane::residual_bw(NodeId from, NodeId to) const {
  for (const auto& adj : net_->adjacency(from)) {
    if (adj.neighbor != to) {
      continue;
    }
    const auto it = reserved_.find({from, adj.port});
    const double used = it == reserved_.end() ? 0.0 : it->second;
    return adj.bandwidth_bps - used;
  }
  return 0.0;
}

std::optional<std::vector<NodeId>> ControlPlane::compute_path(
    NodeId from, NodeId to, double bw) const {
  // No avoided connection: NodeId(-1) matches no real node.
  return compute_path_avoiding(from, to, static_cast<NodeId>(-1),
                               static_cast<NodeId>(-1), bw);
}

std::optional<std::vector<NodeId>> ControlPlane::compute_path_avoiding(
    NodeId from, NodeId to, NodeId avoid_a, NodeId avoid_b,
    double bw) const {
  // Dijkstra on propagation delay, with a small per-hop cost so equal-
  // delay topologies prefer fewer hops.  Links lacking `bw` residual are
  // pruned (the "constraint" of constraint-based routing), as is every
  // link of the avoided connection — backup computation must route
  // around the protected link even though it is still up.
  constexpr double kHopEpsilon = 1e-9;
  const std::size_t n = net_->num_nodes();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> prev(n, static_cast<NodeId>(-1));
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) {
      continue;
    }
    if (u == to) {
      break;
    }
    for (const auto& adj : net_->adjacency(u)) {
      if ((u == avoid_a && adj.neighbor == avoid_b) ||
          (u == avoid_b && adj.neighbor == avoid_a)) {
        continue;
      }
      if (!net_->link_from(u, adj.port).is_up()) {
        continue;
      }
      const auto it = reserved_.find({u, adj.port});
      const double used = it == reserved_.end() ? 0.0 : it->second;
      if (adj.bandwidth_bps - used < bw) {
        continue;
      }
      const double nd = d + adj.prop_delay + kHopEpsilon;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        prev[adj.neighbor] = u;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  if (!std::isfinite(dist[to])) {
    return std::nullopt;
  }
  std::vector<NodeId> path;
  for (NodeId v = to; v != from; v = prev[v]) {
    path.push_back(v);
  }
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<LspId> ControlPlane::establish_lsp(
    const std::vector<NodeId>& path, const mpls::Prefix& fec,
    const LspOptions& options) {
  const double bw = options.bw;
  if (path.size() < 2) {
    return std::nullopt;
  }
  if (options.php && path.size() < 3) {
    return std::nullopt;  // PHP needs ingress, penultimate, egress
  }

  // Label merging: find the first downstream node already carrying this
  // FEC; programming stops there and the existing segment is reused.
  std::optional<std::size_t> merge_at;
  if (options.allow_merge) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (fec_labels_.contains({fec.to_string(), path[i]})) {
        merge_at = i;
        break;
      }
    }
  }
  // Index of the last node this call programs toward.
  const std::size_t last = merge_at.value_or(path.size() - 1);

  // Admission over the programmed prefix of the path.
  std::vector<Hop> hops;
  for (std::size_t i = 0; i <= last; ++i) {
    if (router(path[i]) == nullptr) {
      return std::nullopt;
    }
    if (i < last) {
      const auto hop = find_hop(path[i], path[i + 1], bw);
      if (!hop) {
        return std::nullopt;
      }
      hops.push_back(*hop);
    }
  }

  // Downstream label allocation: labels[i] is what path[i+1] expects.
  // With PHP the egress never receives a label; with merging the final
  // label is the merged-into LSP's (borrowed, not allocated here).
  const std::size_t last_labeled_node =
      merge_at ? *merge_at : (options.php ? path.size() - 2 : last);
  std::vector<rtl::u32> labels;
  auto roll_back = [&] {
    for (std::size_t j = 0; j < labels.size(); ++j) {
      router(path[j + 1])->label_allocator().release(labels[j]);
    }
  };
  for (std::size_t i = 1; i <= last_labeled_node && !merge_at; ++i) {
    const auto label = router(path[i])->label_allocator().allocate();
    if (!label) {
      roll_back();
      return std::nullopt;
    }
    labels.push_back(*label);
  }
  if (merge_at) {
    for (std::size_t i = 1; i < *merge_at; ++i) {
      const auto label = router(path[i])->label_allocator().allocate();
      if (!label) {
        roll_back();
        return std::nullopt;
      }
      labels.push_back(*label);
    }
    labels.push_back(fec_labels_.at({fec.to_string(), path[*merge_at]}));
  }
  if (labels.empty()) {
    return std::nullopt;  // degenerate (cannot happen for valid paths)
  }

  // Program: ingress prefix → push, transit swaps at level 2, then the
  // tail per mode: plain egress pop, PHP pop + local prefix, or nothing
  // past a merge point.
  router(path.front())
      ->program_ingress_prefix(fec, labels.front(), hops.front().port);
  const std::size_t swaps_end = merge_at      ? *merge_at
                                : options.php ? path.size() - 2
                                              : path.size() - 1;
  for (std::size_t i = 1; i < swaps_end; ++i) {
    router(path[i])->program_swap(2, labels[i - 1], labels[i], hops[i].port);
  }
  if (!merge_at) {
    if (options.php) {
      router(path[path.size() - 2])
          ->program_pop(2, labels.back(), hops.back().port);
      router(path.back())->program_local(fec);
    } else {
      router(path.back())->program_pop(2, labels.back(), mpls::kLocalDeliver);
    }
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    reserve(path[i], hops[i].port, bw);
  }
  // Register this LSP's labels so later merge-enabled LSPs can join.
  const std::size_t owned = merge_at ? labels.size() - 1 : labels.size();
  for (std::size_t i = 0; i < owned; ++i) {
    fec_labels_.emplace(std::make_pair(fec.to_string(), path[i + 1]),
                        labels[i]);
  }

  lsps_.push_back(LspRecord{path, labels, fec, bw, std::nullopt,
                            options.php, merge_at});
  return LspId{static_cast<std::uint32_t>(lsps_.size() - 1)};
}

std::optional<LspId> ControlPlane::reroute_lsp(LspId id) {
  if (id.value >= lsps_.size()) {
    return std::nullopt;
  }
  const LspRecord old = lsps_[id.value];  // copy: teardown mutates
  if (old.via_tunnel || old.labels.empty()) {
    return std::nullopt;  // tunnelled LSPs and dead records not handled
  }
  teardown_lsp(id);
  const auto path =
      compute_path(old.path.front(), old.path.back(), old.reserved_bw);
  if (!path) {
    return std::nullopt;
  }
  LspOptions options;
  options.bw = old.reserved_bw;
  options.php = old.php;
  return establish_lsp(*path, old.fec, options);
}

std::optional<LspId> ControlPlane::establish_lsp_cspf(NodeId ingress,
                                                      NodeId egress,
                                                      const mpls::Prefix& fec,
                                                      double bw) {
  const auto path = compute_path(ingress, egress, bw);
  if (!path) {
    return std::nullopt;
  }
  return establish_lsp(*path, fec, bw);
}

std::optional<TunnelId> ControlPlane::establish_tunnel(
    const std::vector<NodeId>& path, double bw) {
  // Need head, at least one interior node (the penultimate popper), tail.
  if (path.size() < 3) {
    return std::nullopt;
  }
  std::vector<Hop> hops;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (router(path[i]) == nullptr) {
      return std::nullopt;
    }
    if (i + 1 < path.size()) {
      const auto hop = find_hop(path[i], path[i + 1], bw);
      if (!hop) {
        return std::nullopt;
      }
      hops.push_back(*hop);
    }
  }
  // Outer labels for the interior: outer_labels[i] expected by path[i+1].
  // The tail never sees the outer label (penultimate-hop popping), so the
  // last interior hop needs no allocation at the tail.
  std::vector<rtl::u32> outer;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const auto label = router(path[i])->label_allocator().allocate();
    if (!label) {
      for (std::size_t j = 0; j < outer.size(); ++j) {
        router(path[j + 1])->label_allocator().release(outer[j]);
      }
      return std::nullopt;
    }
    outer.push_back(*label);
  }
  // Interior swaps at level 3 (packets in the tunnel carry 2-deep
  // stacks); penultimate hop pops toward the tail.
  for (std::size_t i = 1; i + 2 < path.size(); ++i) {
    router(path[i])->program_swap(3, outer[i - 1], outer[i], hops[i].port);
  }
  router(path[path.size() - 2])
      ->program_pop(3, outer.back(), hops.back().port);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    reserve(path[i], hops[i].port, bw);
  }

  tunnels_.push_back(TunnelRecord{path, outer, bw});
  return TunnelId{static_cast<std::uint32_t>(tunnels_.size() - 1)};
}

std::optional<rtl::u32> ControlPlane::allocate_shared(MplsNode& owner,
                                                      MplsNode& also_at) {
  for (int tries = 0; tries < 4096; ++tries) {
    const auto v = owner.label_allocator().allocate();
    if (!v) {
      return std::nullopt;
    }
    if (also_at.label_allocator().reserve(*v)) {
      return v;
    }
    owner.label_allocator().release(*v);
  }
  return std::nullopt;
}

std::optional<LspId> ControlPlane::establish_lsp_via_tunnel(
    const std::vector<NodeId>& pre_path, TunnelId tunnel_id,
    const std::vector<NodeId>& post_path, const mpls::Prefix& fec,
    double bw) {
  // pre_path needs >= 2 nodes: the ingress pushes one label and the
  // tunnel head pushes the outer one — the hardware applies one
  // operation per router visit, so ingress and head must be distinct.
  if (pre_path.size() < 2 || post_path.empty() ||
      tunnel_id.value >= tunnels_.size()) {
    return std::nullopt;
  }
  const TunnelRecord& tun = tunnels_[tunnel_id.value];
  if (pre_path.back() != tun.path.front() ||
      post_path.front() != tun.path.back()) {
    return std::nullopt;  // tunnel endpoints must join the segments
  }
  const NodeId head = pre_path.back();
  const NodeId tail = post_path.front();

  // Admission on the non-tunnel segments.
  std::vector<Hop> pre_hops;
  for (std::size_t i = 0; i + 1 < pre_path.size(); ++i) {
    if (router(pre_path[i]) == nullptr) {
      return std::nullopt;
    }
    const auto hop = find_hop(pre_path[i], pre_path[i + 1], bw);
    if (!hop) {
      return std::nullopt;
    }
    pre_hops.push_back(*hop);
  }
  std::vector<Hop> post_hops;
  for (std::size_t i = 0; i + 1 < post_path.size(); ++i) {
    const auto hop = find_hop(post_path[i], post_path[i + 1], bw);
    if (!hop) {
      return std::nullopt;
    }
    post_hops.push_back(*hop);
  }
  for (const NodeId id : post_path) {
    if (router(id) == nullptr) {
      return std::nullopt;
    }
  }

  // Labels before the tunnel: expected by pre_path[1..p-1]; the label
  // that crosses the tunnel must be valid at BOTH head and tail because
  // the hardware PUSH re-pushes it unchanged.
  std::vector<rtl::u32> labels;
  for (std::size_t i = 1; i + 1 < pre_path.size(); ++i) {
    const auto label = router(pre_path[i])->label_allocator().allocate();
    if (!label) {
      return std::nullopt;
    }
    labels.push_back(*label);
  }
  const auto crossing = allocate_shared(*router(head), *router(tail));
  if (!crossing) {
    return std::nullopt;
  }
  labels.push_back(*crossing);
  // Labels after the tunnel: expected by post_path[1..].
  for (std::size_t i = 1; i < post_path.size(); ++i) {
    const auto label = router(post_path[i])->label_allocator().allocate();
    if (!label) {
      return std::nullopt;
    }
    labels.push_back(*label);
  }

  // Program the pre segment: ingress push, swaps up to the head.
  router(pre_path.front())
      ->program_ingress_prefix(fec, labels.front(), pre_hops.front().port);
  for (std::size_t i = 1; i + 1 < pre_path.size(); ++i) {
    router(pre_path[i])->program_swap(2, labels[i - 1], labels[i],
                                      pre_hops[i].port);
  }
  // Tunnel head: push the tunnel's first outer label over the crossing
  // label; forward into the tunnel.
  const auto head_hop = find_hop(tun.path[0], tun.path[1], 0.0);
  if (!head_hop) {
    return std::nullopt;
  }
  router(head)->program_push(2, *crossing, tun.outer_labels.front(),
                             head_hop->port);
  // Post segment: the tail sees the crossing label (outer popped by PHP).
  const std::size_t post_base = labels.size() - (post_path.size() - 1);
  if (post_path.size() == 1) {
    router(tail)->program_pop(2, *crossing, mpls::kLocalDeliver);
  } else {
    router(tail)->program_swap(2, *crossing, labels[post_base],
                               post_hops.front().port);
    for (std::size_t i = 1; i + 1 < post_path.size(); ++i) {
      router(post_path[i])->program_swap(2, labels[post_base + i - 1],
                                         labels[post_base + i],
                                         post_hops[i].port);
    }
    router(post_path.back())
        ->program_pop(2, labels.back(), mpls::kLocalDeliver);
  }

  for (std::size_t i = 0; i + 1 < pre_path.size(); ++i) {
    reserve(pre_path[i], pre_hops[i].port, bw);
  }
  for (std::size_t i = 0; i + 1 < post_path.size(); ++i) {
    reserve(post_path[i], post_hops[i].port, bw);
  }

  std::vector<NodeId> full_path = pre_path;
  full_path.insert(full_path.end(), post_path.begin(), post_path.end());
  lsps_.push_back(
      LspRecord{full_path, labels, fec, bw, tunnel_id, false, std::nullopt});
  return LspId{static_cast<std::uint32_t>(lsps_.size() - 1)};
}

std::optional<LspId> ControlPlane::reoptimize_lsp(LspId id) {
  if (id.value >= lsps_.size()) {
    return std::nullopt;
  }
  const LspRecord old = lsps_[id.value];
  if (old.via_tunnel || old.labels.empty()) {
    return std::nullopt;
  }
  const auto path =
      compute_path(old.path.front(), old.path.back(), old.reserved_bw);
  if (!path || *path == old.path) {
    return std::nullopt;  // nothing better (or nothing at all)
  }
  // Make: the new LSP's ingress binding overwrites the FTN entry, so
  // traffic switches as soon as this succeeds.
  LspOptions options;
  options.bw = old.reserved_bw;
  options.php = old.php;
  const auto replacement = establish_lsp(*path, old.fec, options);
  if (!replacement) {
    return std::nullopt;  // keep the old LSP: no harm done
  }
  // Break: release the old path.
  teardown_lsp(id);
  return replacement;
}

unsigned ControlPlane::protect_lsp(LspId id, const ProtectOptions& options) {
  if (id.value >= lsps_.size()) {
    return 0;
  }
  const LspRecord& rec = lsps_[id.value];
  if (rec.labels.empty() || rec.via_tunnel || rec.merged_at) {
    return 0;  // torn down, tunnelled or merged: not handled
  }
  unsigned protected_links = 0;
  for (std::size_t hop = 0; hop + 1 < rec.path.size(); ++hop) {
    // Idempotence: a link already carrying a live backup for this LSP
    // keeps it (repeated protect_lsp calls are safe).
    bool have = false;
    for (const auto& b : backups_) {
      if (b.live() && b.lsp == id && b.hop == hop) {
        have = true;
        break;
      }
    }
    if (have || install_backup(id, hop, options)) {
      ++protected_links;
    }
  }
  return protected_links;
}

bool ControlPlane::install_backup(LspId id, std::size_t hop,
                                  const ProtectOptions& options) {
  const LspRecord& rec = lsps_[id.value];
  const NodeId plr = rec.path[hop];
  const NodeId merge = rec.path[hop + 1];
  const auto bypass =
      compute_path_avoiding(plr, merge, plr, merge, options.bw);
  if (!bypass || bypass->size() < 3) {
    return false;  // no way around the link: left to global restoration
  }
  // Whether the PLR's primary action is the penultimate-hop pop (PHP
  // LSP, last link): the merge point (the egress) then expects the
  // packet unlabeled, so the detour's final hop pops instead of
  // swapping into a merge-point label.
  const bool primary_pops = rec.php && hop + 2 == rec.path.size();

  // Admission along the bypass (every node registered, every hop with
  // `bw` residual) before anything is allocated.
  std::vector<Hop> hops;
  for (std::size_t i = 0; i < bypass->size(); ++i) {
    if (router((*bypass)[i]) == nullptr) {
      return false;
    }
    if (i + 1 < bypass->size()) {
      const auto h = find_hop((*bypass)[i], (*bypass)[i + 1], options.bw);
      if (!h) {
        return false;
      }
      hops.push_back(*h);
    }
  }

  // Detour labels, downstream-allocated by the detour transit nodes
  // bypass[1..m-2] (the merge point reuses its primary label, so it
  // allocates nothing).
  std::vector<rtl::u32> detour;
  auto roll_back = [&] {
    for (std::size_t j = 0; j < detour.size(); ++j) {
      router((*bypass)[j + 1])->label_allocator().release(detour[j]);
    }
  };
  for (std::size_t j = 1; j + 1 < bypass->size(); ++j) {
    const auto label = router((*bypass)[j])->label_allocator().allocate();
    if (!label) {
      roll_back();
      return false;
    }
    detour.push_back(*label);
  }

  // Install the detour's transit bindings now — fresh keys, so they
  // coexist with every primary entry and cost no reprogram.  The final
  // detour hop merges back: swap into the label the merge point already
  // serves for this LSP, or pop toward a PHP egress.
  const std::size_t last = bypass->size() - 2;  // last detour transit node
  for (std::size_t j = 1; j < last; ++j) {
    if (!router((*bypass)[j])->program_swap(2, detour[j - 1], detour[j],
                                            hops[j].port)) {
      roll_back();
      return false;
    }
  }
  const bool merged =
      primary_pops
          ? router((*bypass)[last])
                ->program_pop(2, detour.back(), hops[last].port)
          : router((*bypass)[last])
                ->program_swap(2, detour.back(), rec.labels[hop],
                               hops[last].port);
  if (!merged) {
    roll_back();
    return false;
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    reserve((*bypass)[i], hops[i].port, options.bw);
  }

  BackupRecord b;
  b.lsp = id;
  b.hop = hop;
  b.plr = plr;
  b.merge = merge;
  b.bypass = *bypass;
  b.detour_labels = std::move(detour);
  b.fec = rec.fec;
  b.backup_label = b.detour_labels.front();
  b.backup_port = hops.front().port;
  b.reserved_bw = options.bw;
  if (hop == 0) {
    b.plr_op = BackupRecord::PlrOp::kIngress;
    b.primary_label = rec.labels.front();
  } else if (primary_pops) {
    b.plr_op = BackupRecord::PlrOp::kPop;
    b.in_label = rec.labels[hop - 1];
  } else {
    b.plr_op = BackupRecord::PlrOp::kSwap;
    b.in_label = rec.labels[hop - 1];
    b.primary_label = rec.labels[hop];
  }
  // The primary out-port for the revert: the first live link toward the
  // merge point (what establish_lsp chose; parallel links are admitted
  // in declaration order).
  const auto primary_hop = find_hop(plr, merge, 0.0);
  b.primary_port = primary_hop ? primary_hop->port : 0;
  backups_.push_back(std::move(b));
  return true;
}

void ControlPlane::release_backup(BackupRecord& rec) {
  if (!rec.live()) {
    return;
  }
  for (std::size_t j = 0; j < rec.detour_labels.size(); ++j) {
    MplsNode* r = router(rec.bypass[j + 1]);
    if (r != nullptr) {
      r->label_allocator().release(rec.detour_labels[j]);
    }
  }
  if (rec.reserved_bw > 0.0) {
    for (std::size_t i = 0; i + 1 < rec.bypass.size(); ++i) {
      for (const auto& adj : net_->adjacency(rec.bypass[i])) {
        if (adj.neighbor == rec.bypass[i + 1]) {
          release_hop(rec.bypass[i], adj.port, rec.reserved_bw);
          break;
        }
      }
    }
  }
  rec.detour_labels.clear();
  rec.bypass.clear();  // marks the record dead
  rec.active = false;
}

BackupRecord& ControlPlane::backup(std::size_t index) {
  assert(index < backups_.size());
  return backups_[index];
}

const BackupRecord& ControlPlane::backup(std::size_t index) const {
  assert(index < backups_.size());
  return backups_[index];
}

std::vector<std::size_t> ControlPlane::backups_for(NodeId a, NodeId b) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < backups_.size(); ++i) {
    const BackupRecord& rec = backups_[i];
    const bool matches = (rec.plr == a && rec.merge == b) ||
                         (rec.plr == b && rec.merge == a);
    if (rec.live() && matches) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> ControlPlane::backups_of(LspId id) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < backups_.size(); ++i) {
    if (backups_[i].live() && backups_[i].lsp == id) {
      out.push_back(i);
    }
  }
  return out;
}

void ControlPlane::teardown_lsp(LspId id) {
  assert(id.value < lsps_.size());
  // Backups protect a path that is going away: release them first.
  for (auto& b : backups_) {
    if (b.live() && b.lsp == id) {
      release_backup(b);
    }
  }
  LspRecord& rec = lsps_[id.value];
  // Release labels back to their owners — except a merge label, which
  // belongs to the LSP merged into.  (With a tunnel, the crossing label
  // was additionally reserved at the head; release there too.)
  const std::size_t owned =
      rec.merged_at ? rec.labels.size() - 1 : rec.labels.size();
  for (std::size_t i = 0; i < owned && i + 1 < rec.path.size(); ++i) {
    MplsNode* r = router(rec.path[i + 1]);
    if (r != nullptr) {
      r->label_allocator().release(rec.labels[i]);
    }
    fec_labels_.erase({rec.fec.to_string(), rec.path[i + 1]});
  }
  rec.labels.clear();
  // Bandwidth: recompute is complex with shared hops; release the
  // recorded amount along stored path hops (best effort).
  for (std::size_t i = 0; i + 1 < rec.path.size(); ++i) {
    for (const auto& adj : net_->adjacency(rec.path[i])) {
      if (adj.neighbor == rec.path[i + 1]) {
        auto it = reserved_.find({rec.path[i], adj.port});
        if (it != reserved_.end()) {
          it->second = std::max(0.0, it->second - rec.reserved_bw);
        }
        break;
      }
    }
  }
  rec.reserved_bw = 0.0;
}

std::optional<std::pair<mpls::InterfaceId, double>> ControlPlane::admit_hop(
    NodeId from, NodeId to, double bw) const {
  const auto hop = find_hop(from, to, bw);
  if (!hop) {
    return std::nullopt;
  }
  return std::make_pair(hop->port, hop->bandwidth);
}

void ControlPlane::release_hop(NodeId from, mpls::InterfaceId port,
                               double bw) {
  const auto it = reserved_.find({from, port});
  if (it != reserved_.end()) {
    it->second = std::max(0.0, it->second - bw);
  }
}

LspId ControlPlane::adopt(LspRecord record) {
  // Register the labels for future merges, mirroring establish_lsp.
  const std::size_t owned =
      record.merged_at ? record.labels.size() - 1 : record.labels.size();
  for (std::size_t i = 0; i < owned && i + 1 < record.path.size(); ++i) {
    fec_labels_.emplace(
        std::make_pair(record.fec.to_string(), record.path[i + 1]),
        record.labels[i]);
  }
  lsps_.push_back(std::move(record));
  return LspId{static_cast<std::uint32_t>(lsps_.size() - 1)};
}

std::vector<LspId> ControlPlane::lsps_using(NodeId a, NodeId b) const {
  std::vector<LspId> out;
  for (std::size_t i = 0; i < lsps_.size(); ++i) {
    const LspRecord& rec = lsps_[i];
    if (rec.labels.empty()) {
      continue;  // torn down
    }
    for (std::size_t h = 0; h + 1 < rec.path.size(); ++h) {
      const bool crosses = (rec.path[h] == a && rec.path[h + 1] == b) ||
                           (rec.path[h] == b && rec.path[h + 1] == a);
      if (crosses) {
        out.push_back(LspId{static_cast<std::uint32_t>(i)});
        break;
      }
    }
  }
  return out;
}

const LspRecord& ControlPlane::lsp(LspId id) const {
  assert(id.value < lsps_.size());
  return lsps_[id.value];
}

const TunnelRecord& ControlPlane::tunnel(TunnelId id) const {
  assert(id.value < tunnels_.size());
  return tunnels_[id.value];
}

}  // namespace empls::net
