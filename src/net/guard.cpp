#include "net/guard.hpp"

#include <algorithm>

#include "mpls/label.hpp"

namespace empls::net {

namespace {

// Packet-per-second budgets ride the byte-denominated TokenBucket with
// 1 "byte" per packet: rate_bps = pps * 8.  Burst is a tenth of a
// second of budget (at least 8 packets) so short legitimate clusters —
// an OAM traceroute's stepped-TTL probes, a burst of new flows — pass
// while a sustained flood is clipped to the configured rate.
TokenBucket make_pps_bucket(double pps) {
  const double rate = pps > 0 ? pps : 1.0;
  return TokenBucket(rate * 8.0, std::max(8.0, rate / 10.0));
}

}  // namespace

IngressGuard::IngressGuard(const GuardConfig& cfg)
    : cfg_(cfg),
      ttl_bucket_(make_pps_bucket(cfg.ttl_expiry_pps)),
      reprogram_bucket_(make_pps_bucket(cfg.reprogram_per_s)) {}

std::optional<obs::DropReason> IngressGuard::screen(bool labeled,
                                                    std::uint32_t top_label,
                                                    bool will_expire,
                                                    bool external,
                                                    bool binding_known,
                                                    SimTime now) {
  if (labeled && external) {
    // Off-domain labeled arrivals are the spoofing surface: a domain's
    // own transit labels arrive on internal interfaces and are vouched
    // for by the upstream LSR.
    if (cfg_.check_reserved && mpls::is_reserved_label(top_label)) {
      ++stats_.reserved_drops;
      return obs::DropReason::kReservedLabel;
    }
    if (cfg_.check_spoof && !binding_known) {
      ++stats_.spoof_drops;
      return obs::DropReason::kSpoofedLabel;
    }
  }
  if (will_expire && cfg_.ttl_expiry_pps > 0 &&
      !ttl_bucket_.conforms(1, now)) {
    ++stats_.ttl_limited;
    return obs::DropReason::kTtlRateLimited;
  }
  ++stats_.admitted;
  return std::nullopt;
}

bool IngressGuard::admit_reprogram(SimTime now) {
  if (cfg_.reprogram_per_s <= 0 || reprogram_bucket_.conforms(1, now)) {
    return true;
  }
  ++stats_.reprogram_refusals;
  return false;
}

IngressGuard::LoadAction IngressGuard::load_action(std::size_t queue_len,
                                                   std::size_t capacity,
                                                   std::uint8_t cos) {
  if (capacity == 0) {
    return LoadAction::kAdmit;
  }
  const double occ =
      static_cast<double>(queue_len) / static_cast<double>(capacity);
  if (cfg_.shed_occupancy < 1.0 && occ >= cfg_.shed_occupancy) {
    // The shed floor rises from CoS 1 at the band's edge towards CoS 8
    // at a full queue: best effort is sacrificed first, and only a
    // queue moments from overrun sheds the reserved classes.
    const double t =
        (occ - cfg_.shed_occupancy) / (1.0 - cfg_.shed_occupancy);
    const auto floor = 1 + static_cast<unsigned>(t * 7.0);
    if (cos < floor) {
      return LoadAction::kShed;
    }
  }
  if (cfg_.demote_occupancy < 1.0 && occ >= cfg_.demote_occupancy &&
      cos > 0 && cos <= cfg_.demote_cos_max) {
    return LoadAction::kDemote;
  }
  return LoadAction::kAdmit;
}

}  // namespace empls::net
