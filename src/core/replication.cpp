#include "core/replication.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>

namespace empls::core {

namespace {

ReplicationRunner::Estimate estimate(const std::vector<double>& samples) {
  ReplicationRunner::Estimate e;
  const auto n = samples.size();
  if (n == 0) {
    return e;
  }
  double sum = 0.0;
  for (const double v : samples) {
    sum += v;
  }
  e.mean = sum / static_cast<double>(n);
  if (n >= 2) {
    double ss = 0.0;
    for (const double v : samples) {
      ss += (v - e.mean) * (v - e.mean);
    }
    const double stddev = std::sqrt(ss / static_cast<double>(n - 1));
    // Normal approximation: adequate for the replication counts used.
    e.ci95 = 1.96 * stddev / std::sqrt(static_cast<double>(n));
  }
  return e;
}

}  // namespace

std::string ReplicationRunner::Estimate::to_string() const {
  std::ostringstream out;
  out << mean << " +- " << ci95;
  return out.str();
}

std::string ReplicationRunner::Aggregate::to_string() const {
  std::ostringstream out;
  out << replications << " replications\n";
  for (const auto& [id, f] : flows) {
    out << "flow " << id << ": loss " << f.loss_rate.mean * 100 << "% +- "
        << f.loss_rate.ci95 * 100 << "%, latency "
        << f.mean_latency.mean * 1e3 << " +- " << f.mean_latency.ci95 * 1e3
        << " ms, p99 " << f.p99_latency.mean * 1e3 << " ms\n";
  }
  return out.str();
}

std::variant<ReplicationRunner::Aggregate, net::ScenarioError>
ReplicationRunner::run(const net::Scenario& scenario, unsigned replications,
                       unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, replications);

  std::vector<std::variant<ScenarioRunner::Report, net::ScenarioError>>
      results(replications,
              net::ScenarioError{0, "replication did not run"});

  // Work queue: each worker claims replication indices; every
  // replication builds a private Scenario with shifted seeds and runs a
  // private Network.  No shared mutable state beyond the results slots.
  std::atomic<unsigned> next{0};
  auto worker = [&] {
    for (;;) {
      const unsigned i = next.fetch_add(1);
      if (i >= replications) {
        return;
      }
      net::Scenario replica = scenario;
      for (auto& flow : replica.flows) {
        flow.seed = flow.seed * 1000003u + i + 1;
      }
      results[i] = ScenarioRunner::run(replica);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (auto& t : pool) {
    t.join();
  }

  // Aggregate.
  std::map<std::uint32_t, std::vector<double>> loss;
  std::map<std::uint32_t, std::vector<double>> latency;
  std::map<std::uint32_t, std::vector<double>> p99;
  Aggregate agg;
  agg.replications = replications;
  for (auto& result : results) {
    if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
      return *err;
    }
    const auto& report = std::get<ScenarioRunner::Report>(result);
    for (const auto& [id, flow] : report.flows.flows()) {
      loss[id].push_back(flow.loss_rate());
      latency[id].push_back(flow.latency.mean());
      p99[id].push_back(flow.latency.percentile(0.99));
      agg.flows[id].total_sent += flow.sent;
      agg.flows[id].total_delivered += flow.delivered;
    }
  }
  for (auto& [id, f] : agg.flows) {
    f.loss_rate = estimate(loss[id]);
    f.mean_latency = estimate(latency[id]);
    f.p99_latency = estimate(p99[id]);
  }
  return agg;
}

std::variant<ReplicationRunner::Aggregate, net::ScenarioError>
ReplicationRunner::run_text(std::string_view text, unsigned replications,
                            unsigned threads) {
  auto parsed = net::Scenario::parse(text);
  if (const auto* err = std::get_if<net::ScenarioError>(&parsed)) {
    return *err;
  }
  return run(std::get<net::Scenario>(parsed), replications, threads);
}

}  // namespace empls::core
