// The router's software control-plane agent (Figure 6's "routing
// functionality"): programs label pairs into the engine's information
// base, keeps the software-side state the hardware cannot hold (next-hop
// resolution, FEC prefixes, the label space), and serves the ingress
// slow path that installs exact hardware entries on demand.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "mpls/fec.hpp"
#include "mpls/tables.hpp"
#include "net/mpls_node.hpp"
#include "sw/engine.hpp"

namespace empls::core {

class RoutingFunctionality : public net::MplsNode {
 public:
  /// `first_label` seeds this router's label space.  Label spaces are
  /// per-router, so overlapping values across routers are legal; a
  /// distinct base per router just makes traces easier to read.
  explicit RoutingFunctionality(
      sw::LabelEngine& engine,
      std::uint32_t first_label = mpls::kFirstUnreservedLabel)
      : engine_(&engine), allocator_(first_label) {}

  // ---- net::MplsNode (control-plane programming) ----
  bool program_ingress_exact(rtl::u32 packet_id, rtl::u32 out_label,
                             mpls::InterfaceId out_port) override;
  bool program_ingress_prefix(const mpls::Prefix& fec, rtl::u32 out_label,
                              mpls::InterfaceId out_port) override;
  bool program_swap(unsigned level, rtl::u32 in_label, rtl::u32 out_label,
                    mpls::InterfaceId out_port) override;
  bool program_pop(unsigned level, rtl::u32 in_label,
                   mpls::InterfaceId out_port) override;
  bool program_push(unsigned level, rtl::u32 in_label, rtl::u32 outer_label,
                    mpls::InterfaceId out_port) override;
  bool program_local(const mpls::Prefix& fec) override;
  mpls::LabelAllocator& label_allocator() override { return allocator_; }
  bool corrupt_binding(std::uint64_t salt) override;
  unsigned resync_hardware() override;

  /// True when `dst` falls in a locally attached prefix (PHP egress).
  [[nodiscard]] bool is_local(mpls::Ipv4Address dst) const {
    return local_.lookup(dst).has_value();
  }

  // ---- data-plane support ----

  /// Next-hop resolution for the entry keyed (level, key); nullopt when
  /// the control plane never programmed it.
  [[nodiscard]] std::optional<mpls::InterfaceId> out_port(
      unsigned level, rtl::u32 key) const;

  /// Ingress slow path: an unlabeled packet missed the hardware level-1
  /// table.  Consult the software FEC prefixes; on a hit, install the
  /// exact (packet identifier → push) pair in hardware so subsequent
  /// packets — and the immediate retry — take the fast path.
  bool slow_path_install(rtl::u32 packet_id);

  [[nodiscard]] std::uint64_t slow_path_installs() const noexcept {
    return slow_path_installs_;
  }

  /// Times the hardware was fully reprogrammed (a rebind of an existing
  /// entry forces the paper's reset + rewrite flow, Section 4's worst
  /// case).
  [[nodiscard]] std::uint64_t hardware_reprograms() const noexcept {
    return hardware_reprograms_;
  }

  /// Bindings garbled by corrupt_binding / divergences repaired by
  /// resync_hardware since construction.
  [[nodiscard]] std::uint64_t corruptions() const noexcept {
    return corruptions_;
  }
  [[nodiscard]] std::uint64_t resyncs() const noexcept { return resyncs_; }

  /// Software mirrors, exposed for tests and inspection.
  [[nodiscard]] const mpls::FecTable& fec_table() const noexcept {
    return fec_;
  }
  [[nodiscard]] const mpls::FtnTable& ftn_table() const noexcept {
    return ftn_;
  }
  [[nodiscard]] const mpls::IlmTable& ilm_table() const noexcept {
    return ilm_;
  }

 private:
  bool bind(unsigned level, rtl::u32 key, const mpls::LabelPair& pair,
            mpls::InterfaceId out_port);

  /// Rebind-aware hardware programming: the hardware information base
  /// is append-only with first-match-wins lookups, so changing an
  /// existing binding requires the paper's reset-and-reprogram flow.
  /// `programmed_` is the authoritative software mirror replayed into
  /// the engine by reprogram_hardware().
  void reprogram_hardware();

  sw::LabelEngine* engine_;
  mpls::LabelAllocator allocator_;
  mpls::FecTable fec_;    // prefix → fec id
  mpls::FtnTable ftn_;    // fec id → NHLFE (ingress bindings)
  mpls::IlmTable ilm_;    // label → NHLFE mirror (levels 2/3, software view)
  mpls::FecTable local_;  // locally attached prefixes (PHP egress)
  std::map<std::pair<unsigned, rtl::u32>, mpls::LabelPair> programmed_;
  /// Next-hop ports, looked up once per forwarded packet: hashed, with
  /// level and key packed into one word (level is 1..3, key 32 bits).
  struct LevelKeyHash {
    std::size_t operator()(
        const std::pair<unsigned, rtl::u32>& p) const noexcept {
      return (static_cast<std::size_t>(p.first) << 32) ^ p.second;
    }
  };
  std::unordered_map<std::pair<unsigned, rtl::u32>, mpls::InterfaceId,
                     LevelKeyHash>
      out_ports_;
  std::uint32_t next_fec_id_ = 1;
  std::uint64_t slow_path_installs_ = 0;
  std::uint64_t hardware_reprograms_ = 0;
  std::uint64_t corruptions_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace empls::core
