// Executes a parsed net::Scenario: builds routers and links, signs the
// declared LSPs, arms the traffic sources and failure events, runs the
// simulation, and produces a per-flow / per-router / per-link report.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/scenario.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "obs/drop_reason.hpp"
#include "obs/metrics.hpp"

namespace empls::core {

class ScenarioRunner {
 public:
  struct RouterRow {
    std::string name;
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t discarded = 0;
    std::uint64_t engine_cycles = 0;
    /// Flow-cache probe counters; all zero when `cache=` is off (the
    /// report prints the cache line only for routers that have one).
    bool cache_enabled = false;
    net::FlowCacheStats cache;
  };

  struct LinkRow {
    std::string from;
    std::string to;
    double utilization = 0;      // busy fraction of the run
    std::uint64_t tx_packets = 0;
    std::uint64_t queue_drops = 0;
  };

  /// Aggregate over every `loadgen` directive (one shared FlowLedger).
  struct LoadGenSummary {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t drops = 0;  // attributed to loadgen flow ids
    std::uint64_t flows_started = 0;
    std::uint64_t flows_completed = 0;
    double p99_s = 0;   // delivery latency quantiles (bucket resolution)
    double p999_s = 0;
    /// Exact conservation over every open-loop flow:
    /// sent == delivered + accounted drops.
    bool conserved = true;
  };

  /// One row per `attack` directive, books closed after the run.
  struct AttackRow {
    std::string kind;
    net::SimTime at = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;  // attack packets that got through
    std::uint64_t drops = 0;      // attributed to the attack's flow id
  };

  /// One `expect` directive's verdict: the echoed directive text, the
  /// pass/fail bit, and a detail line (observed value, or the violating
  /// sample for windowed assertions).
  struct ExpectRow {
    std::string text;
    bool passed = false;
    std::string detail;
  };

  struct Report {
    net::FlowStats flows;
    std::vector<RouterRow> routers;
    std::vector<LinkRow> links;
    std::uint64_t lsps_established = 0;
    std::uint64_t tunnels_established = 0;
    std::uint64_t failures_detected = 0;  // autorepair events
    std::uint64_t lsps_rerouted = 0;
    std::uint64_t backups_installed = 0;     // protect: detours signed
    std::uint64_t protection_switches = 0;   // PLR flips onto a detour
    std::uint64_t protection_reverts = 0;    // flips back after recovery
    std::uint64_t corruptions_injected = 0;  // corrupt directives that hit
    std::uint64_t resyncs_repaired = 0;      // divergent entries fixed
    std::vector<std::string> oam_results;  // one line per ping/traceroute
    /// Present when the scenario declared `loadgen` directives.
    std::optional<LoadGenSummary> loadgen;
    /// One row per `attack` directive, in declaration order.
    std::vector<AttackRow> attacks;
    /// Guard refusals summed over every guarded router (all zero when
    /// no `guard` directive armed one).
    net::GuardStats guard{};
    bool guard_armed = false;
    net::SimTime duration = 0;
    /// Simulator fast-path counters (event queue + packet pool).
    net::SimStats sim;
    /// Partitioned execution (net/domain.hpp): the domain count the run
    /// actually used (1 = unpartitioned), the sync mode, and why the
    /// runner downgraded the scenario's request, if it did.  Handoffs
    /// count packets that crossed a domain boundary; windows count
    /// lookahead windows entered (free-running mode only).
    std::size_t domains = 1;
    std::string sync_mode;
    std::string domain_note;
    std::uint64_t domain_handoffs = 0;
    std::uint64_t domain_windows = 0;
    /// Hop tracing ran alongside the partitioned run (deterministic
    /// merge re-keys journeys across boundaries; see the downgrade
    /// matrix in run()).
    bool domain_traced = false;
    /// Timeline sampling (the `sample` directive): rows recorded and
    /// series tracked; zero when unarmed.
    std::size_t timeline_samples = 0;
    std::size_t timeline_series = 0;
    /// `expect` verdicts, declaration order; empty when none declared.
    std::vector<ExpectRow> expects;
    [[nodiscard]] bool expects_passed() const {
      for (const auto& e : expects) {
        if (!e.passed) {
          return false;
        }
      }
      return true;
    }
    /// Per-reason drop totals (router discards + link-level drops),
    /// indexed by obs::DropReason.
    obs::DropCounts drops{};
    /// The run's full metrics snapshot — every counter, gauge and
    /// histogram the simulation registered, in Prometheus-exportable
    /// form.  New instruments added anywhere in the stack appear here
    /// without the runner changing.
    std::shared_ptr<const obs::MetricsRegistry> metrics;

    /// Human-readable summary tables.
    [[nodiscard]] std::string to_string() const;
  };

  /// Build and run `scenario`.  ScenarioError (line 0) on semantic
  /// failures such as an LSP that cannot be established.
  static std::variant<Report, net::ScenarioError> run(
      const net::Scenario& scenario);

  /// Convenience: parse + run.
  static std::variant<Report, net::ScenarioError> run_text(
      std::string_view text);
};

}  // namespace empls::core
