// Executes a parsed net::Scenario: builds routers and links, signs the
// declared LSPs, arms the traffic sources and failure events, runs the
// simulation, and produces a per-flow / per-router / per-link report.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/scenario.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "obs/drop_reason.hpp"
#include "obs/metrics.hpp"

namespace empls::core {

class ScenarioRunner {
 public:
  struct RouterRow {
    std::string name;
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t discarded = 0;
    std::uint64_t engine_cycles = 0;
    /// Flow-cache probe counters; all zero when `cache=` is off (the
    /// report prints the cache line only for routers that have one).
    bool cache_enabled = false;
    net::FlowCacheStats cache;
  };

  struct LinkRow {
    std::string from;
    std::string to;
    double utilization = 0;      // busy fraction of the run
    std::uint64_t tx_packets = 0;
    std::uint64_t queue_drops = 0;
  };

  struct Report {
    net::FlowStats flows;
    std::vector<RouterRow> routers;
    std::vector<LinkRow> links;
    std::uint64_t lsps_established = 0;
    std::uint64_t tunnels_established = 0;
    std::uint64_t failures_detected = 0;  // autorepair events
    std::uint64_t lsps_rerouted = 0;
    std::uint64_t backups_installed = 0;     // protect: detours signed
    std::uint64_t protection_switches = 0;   // PLR flips onto a detour
    std::uint64_t protection_reverts = 0;    // flips back after recovery
    std::uint64_t corruptions_injected = 0;  // corrupt directives that hit
    std::uint64_t resyncs_repaired = 0;      // divergent entries fixed
    std::vector<std::string> oam_results;  // one line per ping/traceroute
    net::SimTime duration = 0;
    /// Simulator fast-path counters (event queue + packet pool).
    net::SimStats sim;
    /// Per-reason drop totals (router discards + link-level drops),
    /// indexed by obs::DropReason.
    obs::DropCounts drops{};
    /// The run's full metrics snapshot — every counter, gauge and
    /// histogram the simulation registered, in Prometheus-exportable
    /// form.  New instruments added anywhere in the stack appear here
    /// without the runner changing.
    std::shared_ptr<const obs::MetricsRegistry> metrics;

    /// Human-readable summary tables.
    [[nodiscard]] std::string to_string() const;
  };

  /// Build and run `scenario`.  ScenarioError (line 0) on semantic
  /// failures such as an LSP that cannot be established.
  static std::variant<Report, net::ScenarioError> run(
      const net::Scenario& scenario);

  /// Convenience: parse + run.
  static std::variant<Report, net::ScenarioError> run_text(
      std::string_view text);
};

}  // namespace empls::core
