// The embedded MPLS router (Figure 6): ingress packet processing →
// label stack modifier (any LabelEngine: the cycle-accurate RTL, the
// analytically-costed linear engine, or the software baselines) →
// egress packet processing, with the routing functionality programming
// the information base from the control plane.
//
// Per received packet:
//   1. ingress processing classifies (level, key) and validates the wire
//      form;
//   2. the engine runs the update-stack flow on the label stack;
//   3. a miss on an unlabeled packet falls back to the software slow
//      path (FEC prefix lookup → install exact hardware entry → retry);
//   4. processing latency is charged: the engine's modelled cycles at
//      the configured clock for hardware engines, a fixed per-packet
//      cost for pure-software engines;
//   5. egress processing finalises the packet, which is then forwarded
//      out the software-resolved port or delivered off the MPLS domain.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/ingress.hpp"

#include "core/routing_functionality.hpp"
#include "hw/commands.hpp"
#include "net/guard.hpp"
#include "net/node.hpp"
#include "net/policer.hpp"
#include "net/stats.hpp"
#include "rtl/clock_model.hpp"
#include "sw/engine.hpp"

namespace empls::obs {
class Histogram;
}  // namespace empls::obs

namespace empls::core {

struct RouterConfig {
  hw::RouterType type = hw::RouterType::kLsr;
  /// Clock for converting engine cycles to time (paper: 50 MHz Stratix).
  double clock_hz = rtl::ClockModel::kPaperFrequencyHz;
  /// Charged when the engine reports no hardware cycle model (pure
  /// software); default approximates a mid-2000s software router's
  /// per-packet MPLS path.
  double sw_update_latency_s = 2e-6;
  /// Validate serialize/parse round trips on every packet.
  bool validate_wire = true;
  /// First label this router's allocator hands out (label spaces are
  /// per-router; distinct bases make multi-router traces readable).
  std::uint32_t label_base = mpls::kFirstUnreservedLabel;
  /// The label stack modifier processes one packet at a time (the
  /// hardware has a single datapath); arrivals queue for it.  Disable
  /// to model an idealised infinitely-parallel engine.
  bool serialize_engine = true;
  /// Packets waiting for the engine beyond this bound are dropped
  /// (input-queue overrun — the router is saturated).
  std::size_t engine_queue_capacity = 256;
  /// When > 1 and a backlog has formed, up to this many queued packets
  /// enter the engine together via LabelEngine::update_batch; the
  /// engine is then busy for the batch's modelled makespan (parallel
  /// shards overlap), not the per-packet sum.  1 = per-packet service.
  std::size_t engine_batch_size = 1;
  /// Direct-mapped flow cache: resolved (level, key) → label-pair
  /// bindings bypass the engine's search on repeat packets.  Entries
  /// carry the engine epoch at fill time and go stale the moment the
  /// information base changes (write_pair / clear / corrupt_entry /
  /// reprogram / protection switchover all bump the epoch), so cached
  /// outcomes are always bit-identical to the uncached path — including
  /// the modelled Table 6 cycles, recomposed from the cached search
  /// cost.  0 = off.  Ignored (with a stat-visible fallback to off) for
  /// engines that must see every packet (hw, pipeline, sharded).
  std::size_t flow_cache_entries = 0;
  /// Ingress guard (overload survival): reserved/spoofed-label
  /// screening, TTL-expiry and reprogram rate limits, and graceful
  /// degradation bands over the engine queue.  Disabled by default — an
  /// unguarded router behaves exactly as before this stage existed.
  net::GuardConfig guard{};
};

class EmbeddedRouter : public net::Node {
 public:
  EmbeddedRouter(std::string name, std::unique_ptr<sw::LabelEngine> engine,
                 RouterConfig config = {});

  void receive(net::PacketHandle packet, mpls::InterfaceId in_if) override;

  /// Telemetry wiring: registers the engine-lookup and engine-wait
  /// histograms and stashes the tracer for per-packet spans.
  void on_telemetry(obs::MetricsRegistry* metrics,
                    obs::HopTracer* tracer) override;
  /// Snapshot this router's Stats and flow-cache counters.
  void export_metrics(obs::MetricsRegistry& metrics) const override;

  [[nodiscard]] RoutingFunctionality& routing() noexcept { return routing_; }
  [[nodiscard]] sw::LabelEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const RouterConfig& config() const noexcept {
    return config_;
  }

  /// Observation hook: called once per processed (non-malformed) packet
  /// with the packet as it arrived, as it left the modifier, and the
  /// operation applied (kNop when discarded).  Used by examples and
  /// tests to watch label stacks evolve hop by hop.
  using PacketTap = std::function<void(
      const EmbeddedRouter&, const mpls::Packet& before,
      const mpls::Packet& after, mpls::LabelOp applied, bool discarded)>;
  void set_packet_tap(PacketTap tap) { tap_ = std::move(tap); }

  /// Ingress policing: police unlabeled packets of `flow_id` against a
  /// token bucket.  Excess is dropped or demoted to best effort per the
  /// config (the data-plane half of admission control).
  void set_policer(std::uint32_t flow_id, const net::PolicerConfig& config);

  /// Arm (or re-arm) the ingress guard after construction; a config
  /// with enabled=false disarms it.
  void set_guard(const net::GuardConfig& config);
  /// Whether an armed guard screens arrivals.
  [[nodiscard]] bool guard_enabled() const noexcept {
    return guard_.has_value();
  }
  /// Guard refusal tallies (zeros when no guard is armed).
  [[nodiscard]] const net::GuardStats& guard_stats() const noexcept {
    static constexpr net::GuardStats kNone{};
    return guard_ ? guard_->stats() : kNone;
  }

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered_local = 0;
    std::uint64_t discarded = 0;
    std::uint64_t malformed = 0;
    std::uint64_t slow_path_retries = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t swaps = 0;
    std::uint64_t engine_cycles = 0;   // modelled hardware cycles total
    std::uint64_t engine_overruns = 0; // dropped: engine queue full
    std::size_t engine_queue_peak = 0; // deepest engine backlog seen
    double engine_wait_time = 0.0;     // total seconds spent queued
    std::uint64_t engine_batches = 0;  // update_batch invocations
    std::uint64_t engine_batched_packets = 0;  // packets served in batches
    std::uint64_t policer_drops = 0;
    std::uint64_t policer_demotions = 0;
    /// Ingress-guard refusals in total (per-cause split in GuardStats).
    std::uint64_t guard_drops = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Flow-cache probe counters (all zero when the cache is off).
  [[nodiscard]] const net::FlowCacheStats& cache_stats() const noexcept {
    return cache_stats_;
  }
  /// Whether the cache is actually active (configured on AND the engine
  /// is cacheable).
  [[nodiscard]] bool flow_cache_enabled() const noexcept {
    return !flow_cache_.empty();
  }

 private:
  struct Pending {
    net::PacketHandle packet;
    mpls::InterfaceId in_if;
    double enqueued_at;
    // Classified once at receive; the engine never mutates the packet
    // before process() runs, so re-deriving it there would be waste.
    IngressProcessor::Classification cls;
  };

  void count_op(mpls::LabelOp op);
  /// Run the label engine on one packet and launch the result.
  void process(Pending work);
  /// Run the label engine on a backlog batch and launch every result.
  void process_batch(std::vector<Pending> work);
  /// Post-engine half shared by both paths: tap, discard accounting,
  /// next-hop resolution, egress finalisation, and the delayed launch.
  /// When `fuse_engine_done` is set and a launch event is scheduled, the
  /// engine-idle transition rides inside it (one event, not two);
  /// returns whether it did, so process() can fall back to a separate
  /// event on the discard paths.
  /// `discard_reason_override`, when non-empty, replaces the engine's
  /// discard reason string (the guard's reprogram-admission refusal
  /// re-stamps a lookup miss as kReprogramRateLimited).
  bool launch(Pending work, const IngressProcessor::Classification& cls,
              const mpls::Packet& before, const sw::UpdateOutcome& outcome,
              double latency, bool fuse_engine_done,
              std::string_view discard_reason_override = {});
  /// Start the next queued packet or batch, if any (engine went idle).
  void engine_done();

  /// One direct-mapped flow-cache line.  `search_cycles` is the
  /// engine's modelled search cost for this key (0 marks a
  /// pure-software engine, where hw_cycles must stay 0 on a hit so the
  /// sw latency model applies exactly as it does uncached).
  struct CacheEntry {
    bool valid = false;
    unsigned level = 0;
    rtl::u32 key = 0;
    rtl::u64 epoch = 0;
    mpls::LabelPair pair{};
    rtl::u64 search_cycles = 0;
  };
  [[nodiscard]] std::size_t cache_slot(unsigned level,
                                       rtl::u32 key) const noexcept;
  /// Probe for a live entry: tag must match AND its epoch must equal the
  /// engine's current epoch.  Counts the hit/miss/invalidation.
  [[nodiscard]] const CacheEntry* cache_probe(unsigned level, rtl::u32 key);
  /// Re-resolve (level, key) against the engine at the current epoch and
  /// cache the binding (no-op on a lookup miss — negative results are
  /// never cached, so the slow path stays observable).
  void cache_fill(unsigned level, rtl::u32 key);
  /// Engine-equivalent update from a cached binding: same stack
  /// mutation, same UpdateOutcome, same modelled cycles.
  sw::UpdateOutcome cached_update(mpls::Packet& packet,
                                  const CacheEntry& entry);

  std::unique_ptr<sw::LabelEngine> engine_;
  RoutingFunctionality routing_;
  RouterConfig config_;
  rtl::ClockModel clock_;
  Stats stats_;
  PacketTap tap_;
  std::deque<Pending> engine_queue_;
  std::vector<CacheEntry> flow_cache_;  // empty = cache off
  net::FlowCacheStats cache_stats_;
  bool engine_busy_ = false;
  std::map<std::uint32_t, std::pair<net::PolicerConfig, net::TokenBucket>>
      policers_;
  std::optional<net::IngressGuard> guard_;  // nullopt = no guard stage
  obs::HopTracer* tracer_ = nullptr;
  obs::Histogram* hist_lookup_cycles_ = nullptr;
  obs::Histogram* hist_engine_wait_ns_ = nullptr;
};

}  // namespace empls::core
