// Ingress packet processing interface (Figure 6).
//
// "The ingress packet processing interface is used to deliver the label
// stack and a packet identifier to the label stack modifier."  This
// module classifies an arriving packet: which information-base level the
// update must search and with which key, plus wire-level validation
// (parse/serialize round trip) so malformed packets never reach the
// modifier.
#pragma once

#include <optional>
#include <span>

#include "mpls/packet.hpp"
#include "rtl/types.hpp"

namespace empls::core {

class IngressProcessor {
 public:
  struct Classification {
    unsigned level = 1;  // information-base level to search
    rtl::u32 key = 0;    // packet identifier (level 1) or top label
    bool labeled = false;
  };

  /// Level/key selection.  Empty stack → level 1 keyed by the packet
  /// identifier (destination address); depth-d stacks → level min(d+1,3)
  /// keyed by the top label.  Level 1 is reserved for identifiers, so
  /// depth 1 maps to level 2 and the deepest nesting shares level 3
  /// (DESIGN.md §5.6).
  [[nodiscard]] static Classification classify(
      const mpls::Packet& packet) noexcept;

  /// Wire-level entry point: parse raw bytes into a packet (nullopt on
  /// malformed input — truncated shim, bad S-bit chain, over-deep stack).
  [[nodiscard]] static std::optional<mpls::Packet> parse(
      std::span<const std::uint8_t> bytes);

  /// Integrity check used by the router's validation mode: a packet must
  /// survive a serialize → parse round trip unchanged.
  [[nodiscard]] static bool wire_round_trip_ok(const mpls::Packet& packet);
};

}  // namespace empls::core
