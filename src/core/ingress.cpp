#include "core/ingress.hpp"

#include "sw/semantics.hpp"

namespace empls::core {

IngressProcessor::Classification IngressProcessor::classify(
    const mpls::Packet& packet) noexcept {
  // Level selection is shared with the engines (sw::classify_level) so
  // the batch API classifies exactly as this ingress path does.
  Classification c;
  c.level = sw::classify_level(packet);
  if (packet.stack.empty()) {
    c.key = packet.packet_identifier();
    c.labeled = false;
  } else {
    c.key = packet.stack.top().label;
    c.labeled = true;
  }
  return c;
}

std::optional<mpls::Packet> IngressProcessor::parse(
    std::span<const std::uint8_t> bytes) {
  return mpls::Packet::parse(bytes);
}

bool IngressProcessor::wire_round_trip_ok(const mpls::Packet& packet) {
  const auto bytes = packet.serialize();
  const auto reparsed = mpls::Packet::parse(bytes);
  if (!reparsed) {
    return false;
  }
  return reparsed->l2 == packet.l2 && reparsed->src == packet.src &&
         reparsed->dst == packet.dst && reparsed->cos == packet.cos &&
         reparsed->ip_ttl == packet.ip_ttl &&
         reparsed->stack == packet.stack &&
         reparsed->payload == packet.payload;
}

}  // namespace empls::core
