#include "core/routing_functionality.hpp"

#include <iterator>

namespace empls::core {

using mpls::LabelOp;
using mpls::LabelPair;

void RoutingFunctionality::reprogram_hardware() {
  engine_->clear();
  for (const auto& [key, pair] : programmed_) {
    engine_->write_pair(key.first, pair);
  }
  ++hardware_reprograms_;
}

bool RoutingFunctionality::bind(unsigned level, rtl::u32 key,
                                const LabelPair& pair,
                                mpls::InterfaceId out_port) {
  const auto mirror_key = std::make_pair(level, key);
  const auto it = programmed_.find(mirror_key);
  if (it != programmed_.end()) {
    if (it->second == pair && out_ports_[mirror_key] == out_port) {
      return true;  // identical binding: nothing to do
    }
    // Rebinding an existing key: the append-only, first-match hardware
    // would keep serving the stale entry, so update the mirror and run
    // the reset + reprogram flow the paper's worst case costs out.
    it->second = pair;
    out_ports_[mirror_key] = out_port;
    reprogram_hardware();
    return true;
  }
  if (!engine_->write_pair(level, pair)) {
    return false;  // information-base level full
  }
  programmed_.emplace(mirror_key, pair);
  out_ports_[mirror_key] = out_port;
  return true;
}

bool RoutingFunctionality::program_ingress_exact(rtl::u32 packet_id,
                                                 rtl::u32 out_label,
                                                 mpls::InterfaceId out_port) {
  return bind(1, packet_id, LabelPair{packet_id, out_label, LabelOp::kPush},
              out_port);
}

bool RoutingFunctionality::program_ingress_prefix(const mpls::Prefix& fec,
                                                  rtl::u32 out_label,
                                                  mpls::InterfaceId out_port) {
  // Software-only: hardware entries are installed per packet identifier
  // by the slow path.  Reuse the FEC id if the prefix is already known.
  std::uint32_t fec_id;
  if (const auto existing = fec_.lookup_exact(fec)) {
    fec_id = *existing;
  } else {
    fec_id = next_fec_id_++;
    fec_.insert(fec, fec_id);
  }
  const mpls::Nhlfe nhlfe{LabelOp::kPush, out_label, out_port};
  const auto previous = ftn_.bind(fec_id, nhlfe);
  if (previous && !(*previous == nhlfe)) {
    // The prefix now maps elsewhere: exact level-1 entries the slow
    // path derived from the old binding are stale.  Drop any entry the
    // prefix covers and reprogram; traffic re-installs them on demand.
    bool purged = false;
    for (auto it = programmed_.begin(); it != programmed_.end();) {
      if (it->first.first == 1 &&
          fec.contains(mpls::Ipv4Address{it->first.second})) {
        out_ports_.erase(it->first);
        it = programmed_.erase(it);
        purged = true;
      } else {
        ++it;
      }
    }
    if (purged) {
      reprogram_hardware();
    }
  }
  return true;
}

bool RoutingFunctionality::program_local(const mpls::Prefix& fec) {
  if (!local_.lookup_exact(fec)) {
    local_.insert(fec, next_fec_id_++);
  }
  return true;
}

bool RoutingFunctionality::program_swap(unsigned level, rtl::u32 in_label,
                                        rtl::u32 out_label,
                                        mpls::InterfaceId out_port) {
  ilm_.bind(in_label, mpls::Nhlfe{LabelOp::kSwap, out_label, out_port});
  return bind(level, in_label, LabelPair{in_label, out_label, LabelOp::kSwap},
              out_port);
}

bool RoutingFunctionality::program_pop(unsigned level, rtl::u32 in_label,
                                       mpls::InterfaceId out_port) {
  ilm_.bind(in_label, mpls::Nhlfe{LabelOp::kPop, 0, out_port});
  return bind(level, in_label, LabelPair{in_label, 0, LabelOp::kPop},
              out_port);
}

bool RoutingFunctionality::program_push(unsigned level, rtl::u32 in_label,
                                        rtl::u32 outer_label,
                                        mpls::InterfaceId out_port) {
  ilm_.bind(in_label, mpls::Nhlfe{LabelOp::kPush, outer_label, out_port});
  return bind(level, in_label,
              LabelPair{in_label, outer_label, LabelOp::kPush}, out_port);
}

std::optional<mpls::InterfaceId> RoutingFunctionality::out_port(
    unsigned level, rtl::u32 key) const {
  const auto it = out_ports_.find({level, key});
  if (it == out_ports_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool RoutingFunctionality::corrupt_binding(std::uint64_t salt) {
  if (programmed_.empty()) {
    return false;
  }
  auto it = programmed_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(salt % programmed_.size()));
  const auto [level, key] = it->first;
  // Flip label bits derived from the salt; never a no-op garble.
  rtl::u32 garbled = (it->second.new_label ^
                      static_cast<rtl::u32>(1 + salt / 7)) &
                     static_cast<rtl::u32>(mpls::kMaxLabel);
  if (garbled == it->second.new_label) {
    garbled ^= 1;
  }
  // The engine's stored entry diverges; `programmed_` (the software
  // mirror) deliberately does not — that is the fault model.
  if (!engine_->corrupt_entry(level, key, garbled)) {
    return false;
  }
  ++corruptions_;
  return true;
}

unsigned RoutingFunctionality::resync_hardware() {
  unsigned divergent = 0;
  for (const auto& [key, pair] : programmed_) {
    const auto stored = engine_->lookup(key.first, pair.index);
    if (!stored || !(*stored == pair)) {
      ++divergent;
    }
  }
  if (divergent > 0) {
    reprogram_hardware();
    ++resyncs_;
  }
  return divergent;
}

bool RoutingFunctionality::slow_path_install(rtl::u32 packet_id) {
  const auto fec_id = fec_.lookup(mpls::Ipv4Address{packet_id});
  if (!fec_id) {
    return false;
  }
  const auto nhlfe = ftn_.lookup(*fec_id);
  if (!nhlfe) {
    return false;
  }
  if (!program_ingress_exact(packet_id, nhlfe->out_label,
                             nhlfe->out_interface)) {
    return false;
  }
  ++slow_path_installs_;
  return true;
}

}  // namespace empls::core
