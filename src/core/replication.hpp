// Parallel Monte-Carlo replication of scenarios.
//
// A single simulation run is one sample of the stochastic traffic
// processes (Poisson arrivals, on/off bursts).  Reliable statements
// about loss rates and latency percentiles need many independent
// replications; this runner executes them concurrently on a thread
// pool (each replication owns its whole Network — no shared mutable
// state, so the parallelism is embarrassingly clean) and aggregates
// per-flow means with 95% confidence intervals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "core/scenario_runner.hpp"
#include "net/scenario.hpp"

namespace empls::core {

class ReplicationRunner {
 public:
  /// Mean ± half-width of a 95% confidence interval over replications.
  struct Estimate {
    double mean = 0.0;
    double ci95 = 0.0;
    [[nodiscard]] std::string to_string() const;
  };

  struct FlowAggregate {
    Estimate loss_rate;
    Estimate mean_latency;
    Estimate p99_latency;
    std::uint64_t total_sent = 0;
    std::uint64_t total_delivered = 0;
  };

  struct Aggregate {
    std::map<std::uint32_t, FlowAggregate> flows;
    unsigned replications = 0;

    [[nodiscard]] std::string to_string() const;
  };

  /// Run `replications` copies of `scenario` with per-replication seed
  /// offsets applied to every stochastic flow, using at most `threads`
  /// worker threads (0 = hardware concurrency).  ScenarioError if any
  /// replication fails to build.
  static std::variant<Aggregate, net::ScenarioError> run(
      const net::Scenario& scenario, unsigned replications,
      unsigned threads = 0);

  static std::variant<Aggregate, net::ScenarioError> run_text(
      std::string_view text, unsigned replications, unsigned threads = 0);
};

}  // namespace empls::core
