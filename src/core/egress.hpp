// Egress packet processing interface (Figure 6).
//
// "Once the label stack has been modified, it is delivered to the egress
// packet processing interface that replaces the label stack in the
// initial packet and generates the new packet."  The modifier only
// touches the label stack; this module finalises the rest: on a pop that
// empties the stack (the packet leaves the MPLS domain), the decremented
// TTL the datapath's counter holds is written back into the IP header.
#pragma once

#include <cstdint>
#include <vector>

#include "mpls/packet.hpp"
#include "rtl/types.hpp"

namespace empls::core {

class EgressProcessor {
 public:
  /// Apply post-update fixups.  `ttl_after` is the datapath TTL counter
  /// value after the operation (sw::UpdateOutcome::ttl_after).
  static void finalize(mpls::Packet& packet, rtl::u8 ttl_after) noexcept {
    if (packet.stack.empty()) {
      packet.ip_ttl = ttl_after;  // TTL propagation on final pop
    }
  }

  /// Generate the outgoing wire form.
  [[nodiscard]] static std::vector<std::uint8_t> generate(
      const mpls::Packet& packet) {
    return packet.serialize();
  }
};

}  // namespace empls::core
