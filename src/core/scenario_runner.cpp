#include "core/scenario_runner.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "net/attack.hpp"
#include "net/domain.hpp"
#include "net/failure_detector.hpp"
#include "net/fault_injector.hpp"
#include "net/loadgen.hpp"
#include "net/oam.hpp"
#include "net/protection.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/sharded_engine.hpp"
#include "sw/simd_engine.hpp"
#include "sw/trie_engine.hpp"

namespace empls::core {

namespace {

std::unique_ptr<sw::LabelEngine> make_engine(const std::string& kind) {
  if (kind == "hash") {
    return std::make_unique<sw::HashEngine>();
  }
  if (kind == "cam") {
    return std::make_unique<sw::CamEngine>();
  }
  if (kind == "simd") {
    return std::make_unique<sw::SimdEngine>();
  }
  if (kind == "trie") {
    return std::make_unique<sw::TrieEngine>();
  }
  if (kind == "hw") {
    return std::make_unique<sw::HwEngine>();
  }
  if (kind.rfind("sharded:", 0) == 0) {
    // The parser validated the count; std::stoul on the suffix is safe
    // and stops at the optional replica-kind colon (sharded:<N>:trie).
    const auto shards = static_cast<unsigned>(std::stoul(kind.substr(8)));
    if (kind.find(":trie", 8) != std::string::npos) {
      return std::make_unique<sw::ShardedEngine>(shards, [] {
        return std::make_unique<sw::TrieEngine>();
      });
    }
    return std::make_unique<sw::ShardedEngine>(shards);
  }
  return std::make_unique<sw::LinearEngine>();
}

net::ScenarioError semantic_error(std::string message) {
  return net::ScenarioError{0, std::move(message)};
}

bool check_op(double lhs, net::ExpectDecl::Op op, double rhs) {
  switch (op) {
    case net::ExpectDecl::Op::kLt:
      return lhs < rhs;
    case net::ExpectDecl::Op::kLe:
      return lhs <= rhs;
    case net::ExpectDecl::Op::kGt:
      return lhs > rhs;
    case net::ExpectDecl::Op::kGe:
      return lhs >= rhs;
    case net::ExpectDecl::Op::kEq:
      return lhs == rhs;
    case net::ExpectDecl::Op::kNe:
      return lhs != rhs;
  }
  return false;
}

/// An expect metric spec split into its registry coordinates:
/// "name{labels}.p999" → {"name", "labels", ".p999"}.  The suffix
/// (".p50" / ".p99" / ".p999" / ".count") selects a histogram facet.
struct MetricSpec {
  std::string name;
  std::string labels;
  std::string suffix;
};

MetricSpec split_metric_spec(const std::string& metric) {
  MetricSpec out;
  if (const auto brace = metric.find('{'); brace != std::string::npos) {
    const auto close = metric.rfind('}');
    if (close != std::string::npos && close > brace) {
      out.name = metric.substr(0, brace);
      out.labels = metric.substr(brace + 1, close - brace - 1);
      out.suffix = metric.substr(close + 1);
      return out;
    }
  }
  out.name = metric;
  // Longest suffix first: ".p999" would otherwise match ".p99"'s check.
  for (const std::string_view sfx : {".p999", ".p50", ".p99", ".count"}) {
    if (out.name.size() > sfx.size() &&
        std::string_view(out.name).substr(out.name.size() - sfx.size()) ==
            sfx) {
      out.suffix = std::string(sfx);
      out.name.resize(out.name.size() - sfx.size());
      break;
    }
  }
  return out;
}

std::string format_value(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

/// End-of-run registry lookup for an unwindowed expect.  nullopt when
/// the series does not exist (or a histogram is named without a facet).
std::optional<double> registry_value(const obs::MetricsRegistry& metrics,
                                     const MetricSpec& spec) {
  if (spec.suffix.empty()) {
    if (const obs::Counter* c =
            metrics.find_counter(spec.name, spec.labels)) {
      return static_cast<double>(c->value());
    }
    if (const obs::Gauge* g = metrics.find_gauge(spec.name, spec.labels)) {
      return g->value();
    }
    return std::nullopt;
  }
  const obs::Histogram* h = metrics.find_histogram(spec.name, spec.labels);
  if (h == nullptr) {
    return std::nullopt;
  }
  if (spec.suffix == ".count") {
    return static_cast<double>(h->count());
  }
  const double q = spec.suffix == ".p50" ? 0.50
                   : spec.suffix == ".p99" ? 0.99
                                           : 0.999;
  return static_cast<double>(h->quantile(q));
}

}  // namespace

std::variant<ScenarioRunner::Report, net::ScenarioError> ScenarioRunner::run(
    const net::Scenario& scenario) {
  net::Network net(scenario.qos);
  net.events().set_scheduler(scenario.scheduler);
  net::ControlPlane cp(net);
  Report report;

  // Routers.
  std::map<std::string, net::NodeId> ids;
  std::uint32_t label_base = 100;
  for (const auto& decl : scenario.routers) {
    RouterConfig cfg;
    cfg.type = decl.is_ler ? hw::RouterType::kLer : hw::RouterType::kLsr;
    cfg.clock_hz = decl.clock_hz;
    cfg.label_base = label_base;
    label_base += 1000;
    // Batch size: explicit `batch=K` wins; a sharded engine defaults to
    // batching (its parallelism is wasted on per-packet service).
    const bool sharded = decl.engine.rfind("sharded:", 0) == 0;
    cfg.engine_batch_size = decl.batch > 0 ? decl.batch : (sharded ? 16 : 1);
    cfg.flow_cache_entries = decl.cache;
    auto router = std::make_unique<EmbeddedRouter>(
        decl.name, make_engine(decl.engine), cfg);
    auto* raw = router.get();
    const auto id = net.add_node(std::move(router));
    cp.register_router(id, &raw->routing());
    ids.emplace(decl.name, id);
  }
  auto id_of = [&](const std::string& name) { return ids.at(name); };

  // Links.
  for (const auto& decl : scenario.links) {
    net.connect(id_of(decl.a), id_of(decl.b), decl.bandwidth_bps,
                decl.delay);
  }

  // Event-domain partitioning (net/domain.hpp), before anything is
  // scheduled so every first event can anchor on its node's queue.
  // Some directives force a downgrade: anything that schedules
  // control-plane work onto the main queue mid-run (faults, OAM,
  // autorepair, protection, attacks) touches other domains' links and
  // nodes, which only the deterministic merge's synchronised clocks
  // make safe; and the hop tracer keys journeys by packet address,
  // which a boundary handoff changes, so tracing forces one domain.
  std::size_t domains = scenario.domains;
  net::SyncMode sync = scenario.sync;
  std::string domain_note;
  if (domains == 0) {  // domains=auto
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    domains = std::min<std::size_t>(hw, scenario.routers.size());
  }
  auto add_note = [&domain_note](std::string_view note) {
    if (!domain_note.empty()) {
      domain_note += "; ";
    }
    domain_note += note;
  };
  const bool needs_deterministic =
      !scenario.link_events.empty() || !scenario.flaps.empty() ||
      !scenario.crashes.empty() || !scenario.corruptions.empty() ||
      !scenario.oam_probes.empty() || !scenario.attacks.empty() ||
      scenario.autorepair_hello.has_value() || scenario.protect;
  if (domains > 1 && sync == net::SyncMode::kFree && needs_deterministic) {
    sync = net::SyncMode::kDeterministic;
    add_note("sync downgraded to deterministic: control-plane directives");
  }
  // Timeline ticks read every domain's counters mid-run; only the
  // merge's synchronised clocks make that safe.
  if (domains > 1 && sync == net::SyncMode::kFree &&
      scenario.sample_interval) {
    sync = net::SyncMode::kDeterministic;
    add_note("sync downgraded to deterministic: timeline sampling");
  }
  // Tracing is safe under the deterministic merge (journeys are re-keyed
  // across boundary handoffs on the single merge thread); only the
  // free-running mode — concurrent journey-table access — still forces
  // one domain.
  if (domains > 1 && sync == net::SyncMode::kFree &&
      !scenario.trace_path.empty()) {
    domains = 1;
    add_note("single domain forced: trace armed under sync=free");
  }
  if (domains > 1 && !net.partition(domains, sync)) {
    if (sync == net::SyncMode::kFree &&
        net.partition(domains, net::SyncMode::kDeterministic)) {
      sync = net::SyncMode::kDeterministic;
      add_note(
          "sync downgraded to deterministic: zero-lookahead boundary link");
    } else {
      domains = 1;
      if (domain_note.empty()) {
        add_note("single domain forced: partition refused");
      }
    }
  }
  if (const net::DomainRuntime* drt = net.domain_runtime()) {
    report.domains = drt->domain_count();
    report.sync_mode = std::string(net::to_string(drt->mode()));
  }
  report.domain_note = std::move(domain_note);

  // Telemetry: the registry is always live (the report carries its
  // snapshot); the hop tracer is armed only by a `trace=` directive, so
  // an untraced run pays nothing on the per-packet path.
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  std::optional<obs::HopTracer> tracer;
  if (!scenario.trace_path.empty()) {
    tracer.emplace();
    tracer->set_enabled(true);
  }
  net.set_telemetry(metrics.get(), tracer ? &*tracer : nullptr);
  report.domain_traced = tracer.has_value() && report.domains > 1;

  // Timeline sampling (the `sample` directive): delta-encoded series
  // over the registry, fed by ticks pre-scheduled over the run window.
  std::optional<obs::Timeline> timeline;
  if (scenario.sample_interval) {
    obs::Timeline::Config tc;
    tc.interval_s = *scenario.sample_interval;
    timeline.emplace(tc);
    net.set_timeline(&*timeline);
  }

  // The per-domain execution profiler (the `profile` directive).
  if (scenario.profile) {
    if (net::DomainRuntime* drt = net.domain_runtime()) {
      drt->enable_profiling(true);
    }
  }

  // Tunnels first (tunnel LSPs reference them), then LSPs.
  std::map<std::string, net::TunnelId> tunnels;
  for (const auto& decl : scenario.tunnels) {
    std::vector<net::NodeId> path;
    for (const auto& name : decl.path) {
      path.push_back(id_of(name));
    }
    const auto tunnel = cp.establish_tunnel(path);
    if (!tunnel) {
      return semantic_error("tunnel could not be established: " + decl.name);
    }
    tunnels.emplace(decl.name, *tunnel);
    ++report.tunnels_established;
  }
  std::vector<net::LspId> lsp_ids;
  for (const auto& decl : scenario.lsps) {
    std::optional<net::LspId> lsp;
    if (decl.cspf) {
      lsp = cp.establish_lsp_cspf(id_of(decl.path.front()),
                                  id_of(decl.path.back()), decl.fec,
                                  decl.bw);
    } else {
      std::vector<net::NodeId> path;
      for (const auto& name : decl.path) {
        path.push_back(id_of(name));
      }
      net::LspOptions options;
      options.bw = decl.bw;
      options.php = decl.php;
      options.allow_merge = decl.merge;
      lsp = cp.establish_lsp(path, decl.fec, options);
    }
    if (!lsp) {
      return semantic_error("lsp could not be established for " +
                            decl.fec.to_string());
    }
    lsp_ids.push_back(*lsp);
    ++report.lsps_established;
  }
  for (const auto& decl : scenario.tunnel_lsps) {
    const auto it = tunnels.find(decl.tunnel);
    if (it == tunnels.end()) {
      return semantic_error("unknown tunnel: " + decl.tunnel);
    }
    std::vector<net::NodeId> pre;
    std::vector<net::NodeId> post;
    for (const auto& name : decl.pre) {
      pre.push_back(id_of(name));
    }
    for (const auto& name : decl.post) {
      post.push_back(id_of(name));
    }
    if (!cp.establish_lsp_via_tunnel(pre, it->second, post, decl.fec,
                                     decl.bw)) {
      return semantic_error("lsp-via-tunnel could not be established for " +
                            decl.fec.to_string());
    }
    ++report.lsps_established;
  }

  // Local protection (the `protect` directive): pre-signal a detour
  // around every link of every explicit LSP now, and switch at the
  // point of local repair on the fast link-down signal at run time.
  std::optional<net::ProtectionManager> protection;
  if (scenario.protect) {
    net::ProtectOptions popts;
    popts.bw = scenario.protect_bw;
    for (const auto id : lsp_ids) {
      report.backups_installed += cp.protect_lsp(id, popts);
    }
    protection.emplace(net, cp);
    protection->attach_fast_signal();
  }

  // Ingress policers.
  for (const auto& decl : scenario.policers) {
    net::PolicerConfig cfg;
    cfg.rate_bps = decl.rate_bps;
    cfg.burst_bytes = decl.burst_bytes;
    cfg.action = decl.demote ? net::PolicerAction::kDemote
                             : net::PolicerAction::kDrop;
    net.node_as<EmbeddedRouter>(id_of(decl.ingress))
        .set_policer(decl.flow_id, cfg);
  }

  // Ingress guards (the `guard` directive; `guard *` arms every
  // router with the same thresholds).
  for (const auto& decl : scenario.guards) {
    if (decl.router == "*") {
      for (const auto& r : scenario.routers) {
        net.node_as<EmbeddedRouter>(id_of(r.name)).set_guard(decl.config);
      }
    } else {
      net.node_as<EmbeddedRouter>(id_of(decl.router))
          .set_guard(decl.config);
    }
  }

  // Overload machinery: one shared flow ledger for every open-loop
  // generator, per-attack delivery tallies, and a drop accountant to
  // close the books (it must subscribe before any packet can drop).
  const bool overload = !scenario.loadgens.empty() ||
                        !scenario.attacks.empty();
  std::optional<net::FlowLedger> ledger;
  std::optional<net::DropAccountant> accountant;
  std::vector<std::uint64_t> attack_delivered(scenario.attacks.size(), 0);
  if (overload) {
    accountant.emplace(net);
  }
  if (!scenario.loadgens.empty()) {
    ledger.emplace();
    if (timeline) {
      // The ledger's HDR histogram lives outside the registry (it is
      // per-run state); track it directly so windowed latency quantiles
      // land in the timeline — the series the saturation-knee and SLO
      // checks read.
      timeline->track_histogram("empls_loadgen_latency_ns",
                                &ledger->latency_ns());
    }
  }

  // Delivery accounting.  Reserved flow-id blocks keep the scripted
  // statistics clean: OAM probes are dropped from the books entirely,
  // open-loop flows go to the flat ledger (FlowStats would keep every
  // latency sample of millions of flows), attack deliveries are tallied
  // per campaign row.
  net.set_delivery_handler([&report, &net, &ledger, &attack_delivered](
                               net::NodeId, const mpls::Packet& p) {
    if (p.flow_id >= net::kOamFlowBase) {
      return;
    }
    if (p.flow_id >= net::kAttackFlowBase) {
      const std::size_t i = p.flow_id - net::kAttackFlowBase;
      if (i < attack_delivered.size()) {
        ++attack_delivered[i];
      }
      return;
    }
    if (p.flow_id >= net::kLoadGenFlowBase) {
      if (ledger) {
        ledger->on_delivered(p.flow_id, net.now() - p.created_at);
      }
      return;
    }
    report.flows.on_delivered(p, net.now());
  });

  // Open-loop generators (the `loadgen` directive), each with its own
  // 16M-flow id block.
  std::vector<std::unique_ptr<net::OpenLoopGenerator>> generators;
  for (std::size_t i = 0; i < scenario.loadgens.size(); ++i) {
    const auto& decl = scenario.loadgens[i];
    net::LoadGenConfig cfg;
    cfg.arrivals = decl.kind == "mmpp"
                       ? net::LoadGenConfig::Arrivals::kMmpp
                       : net::LoadGenConfig::Arrivals::kPoisson;
    cfg.ingress = id_of(decl.ingress);
    cfg.dst = *mpls::Ipv4Address::parse(decl.dst);
    cfg.rate_pps = decl.rate_pps;
    cfg.burst_rate_pps = decl.burst_rate_pps;
    cfg.mean_sojourn = decl.sojourn;
    cfg.concurrent_flows = decl.flows;
    cfg.pareto_alpha = decl.alpha;
    cfg.pareto_min_packets = decl.min_packets;
    cfg.cos = decl.cos;
    cfg.payload_bytes = decl.size;
    cfg.seed = decl.seed;
    cfg.flow_id_base = net::kLoadGenFlowBase +
                       static_cast<std::uint32_t>(i) *
                           net::kLoadGenFlowStride;
    cfg.start = decl.start;
    cfg.stop = decl.stop;
    generators.push_back(std::make_unique<net::OpenLoopGenerator>(
        net, cfg, &*ledger));
    generators.back()->start();
  }

  // Attack campaigns (the `attack` directive).
  std::optional<net::AttackCampaign> campaign;
  if (!scenario.attacks.empty()) {
    campaign.emplace(net);
    for (const auto& decl : scenario.attacks) {
      net::AttackSpec spec;
      spec.kind = *net::attack_kind_from_string(decl.kind);
      spec.at = decl.at;
      spec.duration = decl.duration;
      spec.ingress = id_of(decl.ingress);
      spec.rate_pps = decl.rate_pps;
      spec.seed = decl.seed;
      if (!decl.dst.empty()) {
        spec.dst = *mpls::Ipv4Address::parse(decl.dst);
      }
      spec.cos = decl.cos;
      campaign->launch(spec);
    }
  }

  // Traffic sources (kept alive for the run's duration).
  std::vector<std::unique_ptr<net::TrafficSource>> sources;
  for (const auto& decl : scenario.flows) {
    net::FlowSpec spec;
    spec.flow_id = decl.id;
    spec.ingress = id_of(decl.ingress);
    spec.dst = *mpls::Ipv4Address::parse(decl.dst);
    spec.cos = decl.cos;
    spec.payload_bytes = decl.size;
    spec.start = decl.start;
    spec.stop = decl.stop;
    if (decl.kind == "cbr") {
      sources.push_back(std::make_unique<net::CbrSource>(
          net, spec, &report.flows, decl.interval));
    } else if (decl.kind == "poisson") {
      sources.push_back(std::make_unique<net::PoissonSource>(
          net, spec, &report.flows, decl.rate, decl.seed));
    } else if (decl.kind == "video") {
      sources.push_back(std::make_unique<net::VideoSource>(
          net, spec, &report.flows, 1.0 / decl.fps, decl.ppf));
    } else {
      sources.push_back(std::make_unique<net::OnOffSource>(
          net, spec, &report.flows, decl.rate, decl.mean_on, decl.mean_off,
          decl.seed));
    }
    sources.back()->start();
  }

  // Failure / restoration events.
  for (const auto& decl : scenario.link_events) {
    const auto a = id_of(decl.a);
    const auto b = id_of(decl.b);
    const bool up = decl.up;
    net.events().schedule_at(decl.at, [&net, a, b, up] {
      net.set_connection_up(a, b, up);
    });
  }

  // Scripted faults beyond plain fail/restore: self-healing flaps,
  // whole-node crashes and information-base corruptions.
  std::optional<net::FaultInjector> injector;
  if (!scenario.flaps.empty() || !scenario.crashes.empty() ||
      !scenario.corruptions.empty()) {
    injector.emplace(net, cp);
    for (const auto& decl : scenario.flaps) {
      injector->inject(net::FaultSpec{net::FaultKind::kFlap, decl.at,
                                      id_of(decl.a), id_of(decl.b),
                                      decl.down_for, 0});
    }
    for (const auto& decl : scenario.crashes) {
      injector->inject(net::FaultSpec{net::FaultKind::kCrash, decl.at,
                                      id_of(decl.node), 0, decl.duration,
                                      0});
    }
    for (const auto& decl : scenario.corruptions) {
      injector->inject(net::FaultSpec{net::FaultKind::kCorrupt, decl.at,
                                      id_of(decl.node), 0, decl.resync,
                                      decl.salt});
    }
  }

  // OAM probes (ping / traceroute directives).  Results are collected
  // as report lines; the Oam agent must outlive the run.
  std::optional<net::Oam> oam;
  if (!scenario.oam_probes.empty()) {
    oam.emplace(net);
    for (const auto& decl : scenario.oam_probes) {
      const auto ingress = id_of(decl.ingress);
      const auto dst = *mpls::Ipv4Address::parse(decl.dst);
      const std::string tag =
          (decl.traceroute ? "traceroute " : "ping ") + decl.ingress +
          " -> " + decl.dst;
      net.events().schedule_at(decl.at, [&net, &report, &oam, ingress, dst,
                                         tag, traceroute =
                                             decl.traceroute] {
        if (traceroute) {
          oam->lsp_traceroute(ingress, dst, [&net, &report, tag](
                                                const auto& r) {
            std::string line = tag + ":";
            for (const auto& hop : r.hops) {
              line += " " + net.node(hop.node).name() +
                      (hop.is_egress ? "[egress]" : "");
            }
            line += r.complete ? " (complete)" : " (incomplete)";
            report.oam_results.push_back(std::move(line));
          });
        } else {
          oam->lsp_ping(ingress, dst, [&net, &report, tag](const auto& r) {
            std::string line = tag + ": ";
            if (r.reachable) {
              line += "reachable via " + net.node(*r.egress).name();
            } else if (r.discarded_at) {
              line += "FAILED at " + net.node(*r.discarded_at).name() +
                      " (" + r.discard_reason + ")";
            } else {
              line += "FAILED (" + r.discard_reason + ")";
            }
            report.oam_results.push_back(std::move(line));
          });
        }
      });
    }
  }

  // Automatic restoration (the `autorepair` directive).
  std::optional<net::FailureDetector> detector;
  if (scenario.autorepair_hello) {
    detector.emplace(net, cp, *scenario.autorepair_hello,
                     scenario.autorepair_dead);
    detector->watch_all();
    if (protection) {
      // Hello detection becomes the slow backstop; the filter it gains
      // keeps restoration off LSPs already switched at their PLR.
      protection->arm(*detector);
    }
    detector->start(scenario.run_duration.value_or(
        *scenario.autorepair_hello * 1000));
  }

  // Timeline ticks: pre-scheduled at every multiple of the interval
  // inside the run window (multiplication, not accumulation, so long
  // runs don't drift).  Pre-scheduling — rather than self-rescheduling —
  // keeps the post-window drain (`net.run()` to idle) from being held
  // open forever by the sampler itself.  Each tick refreshes the
  // registry from the live simulation, then samples the deltas.
  if (timeline) {
    const net::SimTime dt = *scenario.sample_interval;
    const net::SimTime dur = *scenario.run_duration;  // parser-guaranteed
    const auto ticks = static_cast<std::uint64_t>(dur / dt + 1e-9);
    for (std::uint64_t k = 1; k <= ticks; ++k) {
      net.events().schedule_at(
          dt * static_cast<double>(k), [&net, m = metrics.get(), tl = &*timeline] {
            net.export_metrics(*m);
            tl->sample(*m, net.now());
          });
    }
  }

  if (scenario.run_duration) {
    net.run_until(*scenario.run_duration);
    net.run();  // drain in-flight packets
  } else {
    net.run();
  }
  report.duration = net.now();
  report.sim = net.sim_stats();
  if (const net::DomainRuntime* drt = net.domain_runtime()) {
    report.domain_handoffs = drt->handoffs_in_sum();
    report.domain_windows = drt->windows_sum();
  }
  if (detector) {
    report.failures_detected = detector->events().size();
    for (const auto& event : detector->events()) {
      report.lsps_rerouted += event.rerouted;
    }
  }
  if (protection) {
    report.protection_switches = protection->switches();
    report.protection_reverts = protection->reverts();
  }
  if (injector) {
    for (const auto& rec : injector->records()) {
      report.corruptions_injected += rec.corrupted ? 1 : 0;
      report.resyncs_repaired += rec.resynced;
    }
  }
  if (ledger) {
    LoadGenSummary s;
    s.sent = ledger->sent_total();
    s.delivered = ledger->delivered_total();
    s.drops = accountant->drops_in_range(net::kLoadGenFlowBase,
                                         net::kAttackFlowBase);
    for (const auto& gen : generators) {
      s.flows_started += gen->stats().flows_started;
      s.flows_completed += gen->stats().flows_completed;
    }
    s.p99_s = ledger->latency_quantile_s(0.99);
    s.p999_s = ledger->latency_quantile_s(0.999);
    s.conserved = ledger->conserved(*accountant);
    report.loadgen = s;
  }
  if (campaign) {
    const auto& records = campaign->records();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& rec = records[i];
      AttackRow row;
      row.kind = std::string(net::to_string(rec.spec.kind));
      row.at = rec.spec.at;
      row.injected = rec.injected;
      row.delivered = attack_delivered[i];
      row.drops = accountant->drops_in_range(rec.flow_id, rec.flow_id + 1);
      report.attacks.push_back(std::move(row));
    }
  }
  for (const auto& decl : scenario.routers) {
    const auto& router = net.node_as<EmbeddedRouter>(id_of(decl.name));
    if (router.guard_enabled()) {
      report.guard_armed = true;
      const auto& g = router.guard_stats();
      report.guard.reserved_drops += g.reserved_drops;
      report.guard.spoof_drops += g.spoof_drops;
      report.guard.ttl_limited += g.ttl_limited;
      report.guard.reprogram_refusals += g.reprogram_refusals;
      report.guard.demoted += g.demoted;
      report.guard.shed += g.shed;
      report.guard.admitted += g.admitted;
    }
  }

  for (const auto& decl : scenario.routers) {
    const auto& router = net.node_as<EmbeddedRouter>(id_of(decl.name));
    const auto& s = router.stats();
    report.routers.push_back(RouterRow{decl.name, s.received, s.forwarded,
                                       s.delivered_local, s.discarded,
                                       s.engine_cycles,
                                       router.flow_cache_enabled(),
                                       router.cache_stats()});
  }
  for (const auto& decl : scenario.links) {
    // Report both directions of each declared connection.
    for (const auto& [from, to] :
         {std::pair{decl.a, decl.b}, std::pair{decl.b, decl.a}}) {
      for (const auto& adj : net.adjacency(id_of(from))) {
        if (adj.neighbor != id_of(to)) {
          continue;
        }
        const auto& link = net.link_from(id_of(from), adj.port);
        report.links.push_back(LinkRow{
            from, to, link.utilization(), link.stats().tx_packets,
            link.queue().total_stats().dropped});
        break;
      }
    }
  }

  // One snapshot pass collects everything the simulation registered —
  // simulator, router, flow-cache, link and drop counters; instruments
  // added anywhere below appear here without this function changing.
  net.export_metrics(*metrics);
  for (const auto& [flow_id, flow] : report.flows.flows()) {
    const std::string label = "flow=\"" + std::to_string(flow_id) + "\"";
    metrics->counter("empls_flow_sent_total", label).set(flow.sent);
    metrics->counter("empls_flow_delivered_total", label)
        .set(flow.delivered);
    metrics->gauge("empls_flow_mean_latency_seconds", label)
        .set(flow.latency.mean());
    metrics->gauge("empls_flow_jitter_seconds", label).set(flow.jitter);
  }
  report.drops = net.drop_totals();
  report.metrics = metrics;

  if (timeline) {
    report.timeline_samples = timeline->sample_count();
    report.timeline_series = timeline->column_count();
  }

  // `expect` verdicts: windowed assertions check every timeline sample
  // inside [t0, t1]; unwindowed ones the end-of-run registry value.
  for (const net::ExpectDecl& e : scenario.expects) {
    ExpectRow row;
    row.text = e.source;
    if (e.windowed) {
      // Parser guarantees a sample interval, so `timeline` is engaged.
      const auto col = timeline->column_index(e.metric);
      if (!col) {
        row.detail = "unknown timeline series: " + e.metric;
      } else {
        std::size_t checked = 0;
        row.passed = true;
        for (std::size_t r = 0; r < timeline->sample_count(); ++r) {
          const double t = timeline->time_at(r);
          if (t < e.t0 - 1e-9 || t > e.t1 + 1e-9) {
            continue;
          }
          ++checked;
          const double v = timeline->value_at(r, *col);
          if (!check_op(v, e.op, e.value)) {
            row.passed = false;
            row.detail = "violated at t=" + format_value(t) +
                         "s: value=" + format_value(v);
            break;
          }
        }
        if (checked == 0) {
          row.passed = false;
          row.detail = "no samples in window";
        } else if (row.passed) {
          row.detail = std::to_string(checked) + " samples";
        }
      }
    } else {
      const MetricSpec spec = split_metric_spec(e.metric);
      const auto v = registry_value(*metrics, spec);
      if (!v) {
        row.detail = "metric not found: " + e.metric;
      } else {
        row.passed = check_op(*v, e.op, e.value);
        row.detail = "value=" + format_value(*v);
      }
    }
    report.expects.push_back(std::move(row));
  }

  if (timeline && !scenario.timeline_path.empty()) {
    std::ofstream out(scenario.timeline_path);
    if (!out) {
      return semantic_error("cannot write timeline file: " +
                            scenario.timeline_path);
    }
    const std::string& path = scenario.timeline_path;
    if (path.size() > 5 && path.substr(path.size() - 5) == ".json") {
      timeline->write_json(out);
    } else {
      timeline->write_csv(out);
    }
  }

  if (!scenario.metrics_path.empty()) {
    std::ofstream out(scenario.metrics_path);
    if (!out) {
      return semantic_error("cannot write metrics file: " +
                            scenario.metrics_path);
    }
    metrics->write_prometheus(out);
  }
  if (tracer) {
    std::ofstream out(scenario.trace_path);
    if (!out) {
      return semantic_error("cannot write trace file: " +
                            scenario.trace_path);
    }
    net.write_chrome_trace(out);
  }
  return report;
}

std::variant<ScenarioRunner::Report, net::ScenarioError>
ScenarioRunner::run_text(std::string_view text) {
  auto parsed = net::Scenario::parse(text);
  if (std::holds_alternative<net::ScenarioError>(parsed)) {
    return std::get<net::ScenarioError>(parsed);
  }
  return run(std::get<net::Scenario>(parsed));
}

std::string ScenarioRunner::Report::to_string() const {
  std::ostringstream out;
  out << "simulated " << duration << " s, " << lsps_established << " LSPs, "
      << tunnels_established << " tunnels\n";
  out << "simulator: " << sim.summary() << '\n';
  if (domains > 1) {
    out << "domains: " << domains << " sync=" << sync_mode
        << " handoffs=" << domain_handoffs;
    if (domain_windows > 0) {
      out << " windows=" << domain_windows;
    }
    if (domain_traced) {
      out << " trace=merged";
    }
    out << '\n';
  }
  if (!domain_note.empty()) {
    out << "domains: " << domain_note << '\n';
  }
  if (timeline_samples > 0) {
    out << "timeline: " << timeline_samples << " samples x "
        << timeline_series << " series\n";
  }
  if (!expects.empty()) {
    out << "slo:\n";
    for (const auto& e : expects) {
      out << "  " << (e.passed ? "PASS" : "FAIL") << " expect " << e.text;
      if (!e.detail.empty()) {
        out << " (" << e.detail << ')';
      }
      out << '\n';
    }
  }
  if (backups_installed > 0 || protection_switches > 0) {
    out << "protection: backups=" << backups_installed
        << " switches=" << protection_switches
        << " reverts=" << protection_reverts << '\n';
  }
  if (corruptions_injected > 0 || resyncs_repaired > 0) {
    out << "faults: corruptions=" << corruptions_injected
        << " resynced=" << resyncs_repaired << '\n';
  }
  std::uint64_t total_drops = 0;
  for (const auto d : drops) {
    total_drops += d;
  }
  if (total_drops > 0) {
    out << "drops:";
    for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
      if (drops[i] > 0) {
        out << ' ' << obs::to_string(static_cast<obs::DropReason>(i)) << '='
            << drops[i];
      }
    }
    out << '\n';
  }
  if (guard_armed) {
    out << "guard: reserved=" << guard.reserved_drops
        << " spoof=" << guard.spoof_drops << " ttl=" << guard.ttl_limited
        << " reprogram=" << guard.reprogram_refusals
        << " demoted=" << guard.demoted << " shed=" << guard.shed
        << " admitted=" << guard.admitted << '\n';
  }
  if (loadgen) {
    out << "loadgen: sent=" << loadgen->sent
        << " delivered=" << loadgen->delivered
        << " drops=" << loadgen->drops
        << " flows=" << loadgen->flows_started << '/'
        << loadgen->flows_completed << " p99=" << loadgen->p99_s
        << "s p999=" << loadgen->p999_s << "s"
        << (loadgen->conserved ? " (conserved)" : " (NOT CONSERVED)")
        << '\n';
  }
  if (!attacks.empty()) {
    out << "attacks:\n";
    for (const auto& a : attacks) {
      out << "  " << a.kind << " @" << a.at << "s: injected=" << a.injected
          << " delivered=" << a.delivered << " dropped=" << a.drops << '\n';
    }
  }
  out << "\nflows:\n" << flows.summary() << "\nrouters:\n";
  for (const auto& r : routers) {
    out << "  " << r.name << ": rx=" << r.received << " fwd=" << r.forwarded
        << " local=" << r.delivered << " drop=" << r.discarded
        << " engine_cycles=" << r.engine_cycles << '\n';
    if (r.cache_enabled) {
      out << "    cache: " << r.cache.summary() << '\n';
    }
  }
  if (!oam_results.empty()) {
    out << "\noam:\n";
    for (const auto& line : oam_results) {
      out << "  " << line << '\n';
    }
  }
  out << "\nlinks:\n";
  for (const auto& l : links) {
    out << "  " << l.from << " -> " << l.to << ": util="
        << l.utilization * 100.0 << "% tx=" << l.tx_packets
        << " qdrop=" << l.queue_drops << '\n';
  }
  return out.str();
}

}  // namespace empls::core
