#include "core/embedded_router.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/egress.hpp"
#include "core/ingress.hpp"
#include "net/domain.hpp"
#include "net/mix.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sw/semantics.hpp"

namespace empls::core {

namespace {

/// Engine-search span for the domain profiler: adds the host-clock
/// nanoseconds between construction and destruction to the executing
/// thread's armed accumulator (net::detail::search_accumulator()).
/// A disarmed thread — the default — pays one TLS load per engine call.
class SearchSpan {
 public:
  SearchSpan() noexcept
      : acc_(net::detail::search_accumulator()),
        t0_(acc_ != nullptr ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{}) {}
  ~SearchSpan() {
    if (acc_ != nullptr) {
      *acc_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count());
    }
  }
  SearchSpan(const SearchSpan&) = delete;
  SearchSpan& operator=(const SearchSpan&) = delete;

 private:
  std::uint64_t* acc_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

EmbeddedRouter::EmbeddedRouter(std::string name,
                               std::unique_ptr<sw::LabelEngine> engine,
                               RouterConfig config)
    : net::Node(std::move(name)),
      engine_(std::move(engine)),
      routing_(*engine_, config.label_base),
      config_(config),
      clock_(config.clock_hz) {
  assert(engine_ != nullptr);
  // The cache only arms for engines whose lookups are pure functions of
  // the information base: the RTL-backed engines mutate hardware state
  // per packet and the sharded engine's makespan model depends on every
  // packet reaching its shard, so both must see the full stream.
  if (config_.flow_cache_entries > 0 && engine_->cacheable()) {
    flow_cache_.resize(config_.flow_cache_entries);
  }
  if (config_.guard.enabled) {
    guard_.emplace(config_.guard);
  }
}

void EmbeddedRouter::set_guard(const net::GuardConfig& config) {
  config_.guard = config;
  if (config.enabled) {
    guard_.emplace(config);
  } else {
    guard_.reset();
  }
}

std::size_t EmbeddedRouter::cache_slot(unsigned level,
                                       rtl::u32 key) const noexcept {
  // mix64 over (level, key) — same spreading hash the sharded engine
  // uses, so adjacent labels do not collide in lockstep.
  return static_cast<std::size_t>(net::mix64_pair(level, key) %
                                  flow_cache_.size());
}

const EmbeddedRouter::CacheEntry* EmbeddedRouter::cache_probe(unsigned level,
                                                              rtl::u32 key) {
  const CacheEntry& e = flow_cache_[cache_slot(level, key)];
  if (!e.valid || e.level != level || e.key != key) {
    ++cache_stats_.misses;
    return nullptr;
  }
  if (e.epoch != engine_->epoch()) {
    // The information base changed since the fill; the line is dead no
    // matter what it says.  Counted as both an invalidation and a miss
    // (hit_rate stays hits / probes).
    ++cache_stats_.invalidations;
    ++cache_stats_.misses;
    return nullptr;
  }
  ++cache_stats_.hits;
  return &e;
}

void EmbeddedRouter::cache_fill(unsigned level, rtl::u32 key) {
  if (flow_cache_.empty()) {
    return;
  }
  const auto pair = engine_->lookup(level, key);
  if (!pair) {
    return;
  }
  flow_cache_[cache_slot(level, key)] =
      CacheEntry{true,  level, key, engine_->epoch(),
                 *pair, engine_->last_lookup_cost_cycles()};
  ++cache_stats_.insertions;
}

sw::UpdateOutcome EmbeddedRouter::cached_update(mpls::Packet& packet,
                                                const CacheEntry& entry) {
  const bool was_empty = packet.stack.empty();
  sw::UpdateOutcome out =
      sw::apply_update(packet, entry.pair, config_.type);
  // Recompose the engine's exact modelled cost: search cycles were
  // captured at fill time, the operation tail depends only on the
  // outcome — so hw_cycles (and hence the charged latency) is
  // bit-identical to the uncached path.  A zero search cost marks a
  // pure-software engine, whose outcomes carry hw_cycles = 0.
  out.hw_cycles = entry.search_cycles == 0
                      ? 0
                      : entry.search_cycles +
                            sw::update_tail_cycles(out, was_empty,
                                                   /*found=*/true);
  return out;
}

void EmbeddedRouter::count_op(mpls::LabelOp op) {
  switch (op) {
    case mpls::LabelOp::kPush:
      ++stats_.pushes;
      break;
    case mpls::LabelOp::kPop:
      ++stats_.pops;
      break;
    case mpls::LabelOp::kSwap:
      ++stats_.swaps;
      break;
    case mpls::LabelOp::kNop:
      break;
  }
}

void EmbeddedRouter::on_telemetry(obs::MetricsRegistry* metrics,
                                  obs::HopTracer* tracer) {
  tracer_ = tracer;
  hist_lookup_cycles_ = nullptr;
  hist_engine_wait_ns_ = nullptr;
  if (metrics != nullptr) {
    const std::string label = "router=\"" + name() + "\"";
    hist_lookup_cycles_ = &metrics->histogram(
        "empls_engine_lookup_cycles", label,
        "modelled engine cycles per search/update (0 = pure software)");
    hist_engine_wait_ns_ = &metrics->histogram(
        "empls_engine_wait_ns", label,
        "time a packet waited for the label engine datapath");
  }
}

void EmbeddedRouter::export_metrics(obs::MetricsRegistry& metrics) const {
  const std::string label = "router=\"" + name() + "\"";
  const auto set = [&](const char* name, std::uint64_t v,
                       const char* help = "") {
    metrics.counter(name, label, help).set(v);
  };
  set("empls_router_received_total", stats_.received, "packets received");
  set("empls_router_forwarded_total", stats_.forwarded);
  set("empls_router_delivered_total", stats_.delivered_local);
  set("empls_router_discarded_total", stats_.discarded);
  set("empls_router_malformed_total", stats_.malformed);
  set("empls_router_slow_path_retries_total", stats_.slow_path_retries);
  set("empls_router_engine_cycles_total", stats_.engine_cycles,
      "modelled hardware cycles consumed by the label engine");
  set("empls_router_engine_overruns_total", stats_.engine_overruns);
  set("empls_router_engine_batches_total", stats_.engine_batches);
  set("empls_router_engine_batched_packets_total",
      stats_.engine_batched_packets);
  set("empls_router_policer_drops_total", stats_.policer_drops);
  set("empls_router_policer_demotions_total", stats_.policer_demotions);
  if (guard_) {
    const auto& g = guard_->stats();
    set("empls_guard_reserved_drops_total", g.reserved_drops);
    set("empls_guard_spoof_drops_total", g.spoof_drops);
    set("empls_guard_ttl_limited_total", g.ttl_limited);
    set("empls_guard_reprogram_refusals_total", g.reprogram_refusals);
    set("empls_guard_demoted_total", g.demoted);
    set("empls_guard_shed_total", g.shed);
    set("empls_guard_admitted_total", g.admitted);
  }
  metrics.gauge("empls_router_engine_queue_peak", label)
      .set(static_cast<double>(stats_.engine_queue_peak));
  metrics
      .gauge("empls_router_engine_wait_seconds", label,
             "total time packets spent queued for the engine")
      .set(stats_.engine_wait_time);
  if (flow_cache_enabled()) {
    set("empls_flow_cache_hits_total", cache_stats_.hits);
    set("empls_flow_cache_misses_total", cache_stats_.misses);
    set("empls_flow_cache_insertions_total", cache_stats_.insertions);
    set("empls_flow_cache_invalidations_total", cache_stats_.invalidations);
  }
}

void EmbeddedRouter::set_policer(std::uint32_t flow_id,
                                 const net::PolicerConfig& config) {
  policers_.insert_or_assign(
      flow_id,
      std::make_pair(config,
                     net::TokenBucket(config.rate_bps, config.burst_bytes)));
}

void EmbeddedRouter::receive(net::PacketHandle packet,
                             mpls::InterfaceId in_if) {
  ++stats_.received;

  // Ingress packet processing: wire validation + classification.
  if (config_.validate_wire &&
      !IngressProcessor::wire_round_trip_ok(*packet)) {
    ++stats_.malformed;
    network()->notify_discard(id(), *packet, "malformed");
    return;
  }
  const auto cls = IngressProcessor::classify(*packet);
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(tracer_->id_of(packet.get()), obs::SpanKind::kIngress,
                    id(), network()->now(), 0.0,
                    static_cast<std::uint16_t>(cls.level), cls.key,
                    cls.labeled ? obs::kSpanLabeled : std::uint8_t{0});
  }

  // Penultimate-hop-popping egress: the packet arrives from a neighbour
  // already unlabeled; if it is for a locally attached prefix it leaves
  // the MPLS domain here without touching the label engine.
  if (!cls.labeled && in_if != net::kInjectInterface &&
      routing_.is_local(packet->dst)) {
    ++stats_.delivered_local;
    network()->deliver_local(id(), *packet);
    return;
  }

  // Ingress guard: reserved/spoofed-label screening and the TTL-expiry
  // budget run before the packet may queue for (and so consume) the
  // engine datapath.  Runs after the PHP local-delivery branch so guard
  // budgets never touch packets that exit the domain here.
  if (guard_) {
    const bool external = in_if == net::kInjectInterface;
    const bool will_expire =
        (cls.labeled ? packet->stack.top().ttl : packet->ip_ttl) <= 1;
    // The spoof screen asks the routing functionality (software state,
    // no engine cycles) whether the top label was ever programmed.
    const bool binding_known =
        !(cls.labeled && external) ||
        routing_.out_port(cls.level, cls.key).has_value();
    if (const auto refusal =
            guard_->screen(cls.labeled, cls.key, will_expire, external,
                           binding_known, network()->now())) {
      ++stats_.guard_drops;
      network()->notify_discard(id(), *packet, obs::to_string(*refusal));
      return;
    }
  }

  // Ingress policing: unlabeled traffic is checked against its flow's
  // contract before it may consume a label (and the reserved bandwidth
  // behind it).
  if (!cls.labeled) {
    const auto policer = policers_.find(packet->flow_id);
    if (policer != policers_.end() &&
        !policer->second.second.conforms(packet->wire_size(),
                                         network()->now())) {
      if (policer->second.first.action == net::PolicerAction::kDrop) {
        ++stats_.policer_drops;
        network()->notify_discard(id(), *packet, "policer");
        return;
      }
      ++stats_.policer_demotions;
      packet->cos = 0;  // remark to best effort
    }
  }

  Pending work{std::move(packet), in_if, network()->now(), cls};
  if (!config_.serialize_engine) {
    process(std::move(work));
    return;
  }
  // The label stack modifier is a single datapath: one packet at a time.
  if (engine_busy_) {
    if (engine_queue_.size() >= config_.engine_queue_capacity) {
      ++stats_.engine_overruns;
      network()->notify_discard(id(), *work.packet, "engine-overrun");
      return;
    }
    // Graceful degradation: between the guard's occupancy bands and the
    // hard overrun above, arrivals are first demoted to best effort and
    // then shed lowest CoS first — the reserved classes see neither
    // until the queue is moments from the cliff.
    if (guard_) {
      const std::uint8_t eff_cos = work.cls.labeled
                                       ? work.packet->stack.top().cos
                                       : work.packet->cos;
      switch (guard_->load_action(engine_queue_.size(),
                                  config_.engine_queue_capacity, eff_cos)) {
        case net::IngressGuard::LoadAction::kShed:
          guard_->count_shed();
          ++stats_.guard_drops;
          network()->notify_discard(id(), *work.packet, "overload-shed");
          return;
        case net::IngressGuard::LoadAction::kDemote:
          // Labeled transit keeps its marking (the shim's CoS is not
          // rewritable mid-LSP); ingress traffic is remarked here.
          if (!work.cls.labeled) {
            guard_->count_demoted();
            work.packet->cos = 0;
          }
          break;
        case net::IngressGuard::LoadAction::kAdmit:
          break;
      }
    }
    engine_queue_.push_back(std::move(work));
    stats_.engine_queue_peak =
        std::max(stats_.engine_queue_peak, engine_queue_.size());
    return;
  }
  engine_busy_ = true;
  process(std::move(work));
}

void EmbeddedRouter::engine_done() {
  if (engine_queue_.empty()) {
    engine_busy_ = false;
    return;
  }
  const std::size_t batch_limit =
      std::max<std::size_t>(config_.engine_batch_size, 1);
  const std::size_t take = std::min(batch_limit, engine_queue_.size());
  if (take <= 1) {
    Pending next = std::move(engine_queue_.front());
    engine_queue_.pop_front();
    process(std::move(next));
    return;
  }
  // A backlog formed while the engine was busy: drain it as one batch.
  std::vector<Pending> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(engine_queue_.front()));
    engine_queue_.pop_front();
  }
  process_batch(std::move(batch));
}

void EmbeddedRouter::process(Pending work) {
  net::Network* net = network();
  const double wait = net->now() - work.enqueued_at;
  stats_.engine_wait_time += wait;
  if (hist_engine_wait_ns_ != nullptr) {
    hist_engine_wait_ns_->record(static_cast<std::uint64_t>(wait * 1e9));
  }

  const auto cls = work.cls;
  const mpls::Packet before = tap_ ? *work.packet : mpls::Packet();

  // Label stack modifier — or the flow cache standing in for it: a live
  // cached binding replays the identical update without the engine's
  // search (a cached outcome can never be a kMiss, so the slow path
  // below is naturally skipped).
  const CacheEntry* cached =
      flow_cache_.empty() ? nullptr : cache_probe(cls.level, cls.key);
  auto outcome = [&] {
    if (cached != nullptr) {
      return cached_update(*work.packet, *cached);
    }
    SearchSpan span;
    return engine_->update(*work.packet, cls.level, config_.type);
  }();
  double latency = outcome.hw_cycles > 0 ? clock_.seconds(outcome.hw_cycles)
                                         : config_.sw_update_latency_s;
  stats_.engine_cycles += outcome.hw_cycles;

  // Slow path: unlabeled packet with no exact hardware entry — ask the
  // routing functionality to install one from its FEC prefixes, retry.
  // Only an actual lookup miss qualifies (a TTL expiry would just
  // re-expire).  The guard's reprogram admission gates the install: an
  // exhaustion attack spraying fresh destinations reprograms the
  // information base (and invalidates every cached epoch) only at the
  // configured rate; refused packets are stamped with their own reason.
  std::string_view reason_override;
  if (outcome.discarded && outcome.reason == sw::DiscardReason::kMiss &&
      !cls.labeled && config_.type == hw::RouterType::kLer) {
    if (guard_ && !guard_->admit_reprogram(net->now())) {
      reason_override =
          obs::to_string(obs::DropReason::kReprogramRateLimited);
    } else if (routing_.slow_path_install(cls.key)) {
      ++stats_.slow_path_retries;
      {
        SearchSpan span;
        outcome = engine_->update(*work.packet, cls.level, config_.type);
      }
      latency += outcome.hw_cycles > 0 ? clock_.seconds(outcome.hw_cycles)
                                       : config_.sw_update_latency_s;
      stats_.engine_cycles += outcome.hw_cycles;
    }
  }
  if (!cached) {
    cache_fill(cls.level, cls.key);  // resolve at the (post-install) epoch
  }
  if (hist_lookup_cycles_ != nullptr) {
    hist_lookup_cycles_->record(outcome.hw_cycles);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    const std::uint64_t tid = tracer_->id_of(work.packet.get());
    if (wait > 0.0) {
      tracer_->record(tid, obs::SpanKind::kEngineWait, id(),
                      work.enqueued_at, wait);
    }
    std::uint8_t flags = 0;
    if (!(outcome.discarded &&
          outcome.reason == sw::DiscardReason::kMiss)) {
      flags |= obs::kSpanHit;
    }
    if (cached != nullptr) {
      flags |= obs::kSpanCached;
    }
    tracer_->record(tid, obs::SpanKind::kEngineSearch, id(), net->now(),
                    latency, static_cast<std::uint16_t>(cls.level),
                    static_cast<std::uint32_t>(outcome.hw_cycles), flags);
  }

  // The datapath is busy for the processing latency; only then does the
  // next queued packet enter it.  On the fast path the engine-idle
  // transition rides inside the launch event (same instant, same
  // relative order, one event instead of two); the discard paths launch
  // nothing, so they fall back to a dedicated event.  Legacy mode keeps
  // the seed's split events.
  const bool fuse = config_.serialize_engine && !net->legacy_fastpath();
  if (config_.serialize_engine && !fuse) {
    net->events().schedule_in(latency, [this] { engine_done(); });
  }
  const bool fused = launch(std::move(work), cls, before, outcome, latency,
                            fuse, reason_override);
  if (fuse && !fused) {
    net->events().schedule_in(latency, [this] { engine_done(); });
  }
}

void EmbeddedRouter::process_batch(std::vector<Pending> work) {
  net::Network* net = network();
  const double now = net->now();
  const std::size_t n = work.size();

  std::vector<IngressProcessor::Classification> cls(n);
  std::vector<mpls::Packet*> packets(n);
  std::vector<mpls::Packet> befores(tap_ ? n : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wait = now - work[i].enqueued_at;
    stats_.engine_wait_time += wait;
    if (hist_engine_wait_ns_ != nullptr) {
      hist_engine_wait_ns_->record(static_cast<std::uint64_t>(wait * 1e9));
    }
    cls[i] = work[i].cls;
    packets[i] = work[i].packet.get();
    if (tap_) {
      befores[i] = *work[i].packet;
    }
  }

  // Flow cache first: hits replay their cached binding inline; only the
  // misses enter the engine as a (smaller) batch.  Cycle accounting
  // composes back to exactly the uncached batch: for a single-datapath
  // engine the uncached makespan is the per-packet sum, and a hit
  // contributes the identical hw_cycles it would have cost in that sum.
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  std::vector<sw::UpdateOutcome> outcomes(n);
  std::vector<std::uint8_t> was_cached(tracing ? n : 0);
  std::vector<std::size_t> miss_idx;
  miss_idx.reserve(n);
  rtl::u64 hit_cycles = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CacheEntry* cached =
        flow_cache_.empty() ? nullptr
                            : cache_probe(cls[i].level, cls[i].key);
    if (cached) {
      outcomes[i] = cached_update(*packets[i], *cached);
      hit_cycles += outcomes[i].hw_cycles;
      if (tracing) {
        was_cached[i] = 1;
      }
    } else {
      miss_idx.push_back(i);
    }
  }
  rtl::u64 miss_makespan = 0;
  if (!miss_idx.empty()) {
    std::vector<mpls::Packet*> miss_packets;
    miss_packets.reserve(miss_idx.size());
    for (const std::size_t i : miss_idx) {
      miss_packets.push_back(packets[i]);
    }
    auto miss_outcomes = [&] {
      SearchSpan span;
      return engine_->update_batch(miss_packets, config_.type);
    }();
    miss_makespan = engine_->last_batch_makespan_cycles();
    ++stats_.engine_batches;
    stats_.engine_batched_packets += miss_idx.size();
    for (std::size_t j = 0; j < miss_idx.size(); ++j) {
      outcomes[miss_idx[j]] = miss_outcomes[j];
    }
  }
  for (const auto& outcome : outcomes) {
    stats_.engine_cycles += outcome.hw_cycles;
    if (hist_lookup_cycles_ != nullptr) {
      hist_lookup_cycles_->record(outcome.hw_cycles);
    }
  }

  // The batch holds the engine for its makespan: the slowest shard for
  // a parallel engine, the per-packet sum for a single datapath (cache
  // hits fold their — identical — cycles back into that sum).  Pure
  // software planes are charged per packet over the FULL batch, divided
  // by the engine's parallelism, so timing matches the uncached run.
  const rtl::u64 total_cycles = miss_makespan + hit_cycles;
  double latency;
  if (total_cycles > 0) {
    latency = clock_.seconds(total_cycles);
  } else {
    const double par = std::max(1u, engine_->parallelism());
    latency = config_.sw_update_latency_s *
              std::ceil(static_cast<double>(n) / par);
  }

  // Slow-path retries stay per packet (they are rare and reprogram the
  // information base, which quiesces a sharded engine anyway).  As in
  // process(), the guard's reprogram admission gates each install.
  std::vector<std::uint8_t> reprogram_refused(guard_ ? n : 0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(outcomes[i].discarded &&
          outcomes[i].reason == sw::DiscardReason::kMiss &&
          !cls[i].labeled && config_.type == hw::RouterType::kLer)) {
      continue;
    }
    if (guard_ && !guard_->admit_reprogram(now)) {
      reprogram_refused[i] = 1;
      continue;
    }
    if (routing_.slow_path_install(cls[i].key)) {
      ++stats_.slow_path_retries;
      {
        SearchSpan span;
        outcomes[i] = engine_->update(*work[i].packet, cls[i].level,
                                      config_.type);
      }
      latency += outcomes[i].hw_cycles > 0
                     ? clock_.seconds(outcomes[i].hw_cycles)
                     : config_.sw_update_latency_s;
      stats_.engine_cycles += outcomes[i].hw_cycles;
    }
  }
  for (const std::size_t i : miss_idx) {
    cache_fill(cls[i].level, cls[i].key);
  }

  if (tracing) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t tid = tracer_->id_of(packets[i]);
      const double wait = now - work[i].enqueued_at;
      if (wait > 0.0) {
        tracer_->record(tid, obs::SpanKind::kEngineWait, id(),
                        work[i].enqueued_at, wait);
      }
      std::uint8_t flags = 0;
      if (!(outcomes[i].discarded &&
            outcomes[i].reason == sw::DiscardReason::kMiss)) {
        flags |= obs::kSpanHit;
      }
      if (was_cached[i] != 0) {
        flags |= obs::kSpanCached;
      }
      tracer_->record(tid, obs::SpanKind::kEngineSearch, id(), now, latency,
                      static_cast<std::uint16_t>(cls[i].level),
                      static_cast<std::uint32_t>(outcomes[i].hw_cycles),
                      flags);
    }
    // One occupancy span for the whole batch; renders as shard-handoff
    // when the engine is actually parallel.
    tracer_->record(0, obs::SpanKind::kEngineBatch, id(), now, latency,
                    static_cast<std::uint16_t>(
                        std::max(1u, engine_->parallelism())),
                    static_cast<std::uint32_t>(n));
  }

  if (config_.serialize_engine) {
    net->events().schedule_in(latency, [this] { engine_done(); });
  }

  for (std::size_t i = 0; i < n; ++i) {
    launch(std::move(work[i]), cls[i],
           tap_ ? befores[i] : mpls::Packet(), outcomes[i], latency,
           /*fuse_engine_done=*/false,  // one engine_done serves the batch
           !reprogram_refused.empty() && reprogram_refused[i] != 0
               ? obs::to_string(obs::DropReason::kReprogramRateLimited)
               : std::string_view{});
  }
}

bool EmbeddedRouter::launch(Pending work,
                            const IngressProcessor::Classification& cls,
                            const mpls::Packet& before,
                            const sw::UpdateOutcome& outcome,
                            double latency, bool fuse_engine_done,
                            std::string_view discard_reason_override) {
  net::Network* net = network();
  net::PacketHandle packet = std::move(work.packet);

  if (tap_) {
    tap_(*this, before, *packet, outcome.applied, outcome.discarded);
  }
  if (outcome.discarded) {
    ++stats_.discarded;
    net->notify_discard(id(), *packet,
                        discard_reason_override.empty()
                            ? sw::to_string(outcome.reason)
                            : discard_reason_override);
    return false;
  }
  count_op(outcome.applied);

  // Next-hop resolution is software state keyed by the pre-update key.
  const auto port = routing_.out_port(cls.level, cls.key);
  if (!port) {
    ++stats_.discarded;  // control plane never told us where this goes
    net->notify_discard(id(), *packet, "no-next-hop");
    return false;
  }

  // Egress packet processing, then launch after the processing latency.
  // When fused, engine_done() runs first inside the event — the same
  // relative order the split formulation had.
  EgressProcessor::finalize(*packet, outcome.ttl_after);
  const mpls::InterfaceId out = *port;
  if (out == mpls::kLocalDeliver) {
    ++stats_.delivered_local;
    net->events().schedule_in(
        latency,
        [this, net, fuse_engine_done, p = std::move(packet)]() mutable {
          if (fuse_engine_done) {
            engine_done();
          }
          net->deliver_local(id(), *p);
        });
  } else {
    ++stats_.forwarded;
    net->events().schedule_in(
        latency,
        [this, out, fuse_engine_done, p = std::move(packet)]() mutable {
          if (fuse_engine_done) {
            engine_done();
          }
          send(std::move(p), out);
        });
  }
  return fuse_engine_done;
}

}  // namespace empls::core
