// Software mirror of the hardware algorithm: three append-only levels
// scanned linearly, first match wins.  This is both (a) the "entirely
// software based" MPLS the paper contrasts against, doing exactly what
// the hardware does, and (b) the golden model differential tests compare
// the RTL against.
//
// UpdateOutcome::hw_cycles carries the Table 6 cost the equivalent
// hardware run would take (3k+5 search + tail), so the engine can stand
// in for the RTL in large simulations at identical modelled cost.
#pragma once

#include <array>
#include <vector>

#include "sw/engine.hpp"

namespace empls::sw {

class LinearEngine : public LabelEngine {
 public:
  explicit LinearEngine(std::size_t level_capacity = 1024)
      : capacity_(level_capacity) {
    // The capacity is a hard bound (write_pair refuses past it), so the
    // levels can be sized once here and never reallocate mid-run.
    for (auto& level : levels_) {
      level.reserve(capacity_);
    }
  }

  [[nodiscard]] std::string_view name() const override { return "linear"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;
  [[nodiscard]] bool cacheable() const noexcept override { return true; }
  [[nodiscard]] rtl::u64 last_lookup_cost_cycles() const noexcept override;

  /// 1-based position of the hit of the last lookup, or the stored count
  /// on a miss — the `k`/`n` of the 3k+5 cost formula.
  [[nodiscard]] rtl::u64 last_entries_examined() const noexcept {
    return last_examined_;
  }

 protected:
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  std::vector<mpls::LabelPair>& level_ref(unsigned level);
  [[nodiscard]] const std::vector<mpls::LabelPair>& level_ref(
      unsigned level) const;

  std::size_t capacity_;
  std::array<std::vector<mpls::LabelPair>, 3> levels_;
  rtl::u64 last_examined_ = 0;
};

}  // namespace empls::sw
