#include "sw/hw_engine.hpp"

#include <cassert>

#include "hw/cycle_model.hpp"
#include "sw/semantics.hpp"

namespace empls::sw {

void HwEngine::do_clear() { hw_.do_reset(); }

bool HwEngine::do_write_pair(unsigned level, const mpls::LabelPair& pair) {
  if (hw_.level_count(level) >= hw::kLevelDepth) {
    return false;
  }
  hw_.write_pair(level, pair);
  return true;
}

std::optional<mpls::LabelPair> HwEngine::lookup(unsigned level,
                                                rtl::u32 key) {
  const auto r = hw_.search(level, key);
  last_lookup_cycles_ = r.cycles;
  if (!r.found) {
    return std::nullopt;
  }
  return mpls::LabelPair{key, r.label,
                         static_cast<mpls::LabelOp>(r.operation)};
}

UpdateOutcome HwEngine::update(mpls::Packet& packet, unsigned level,
                               hw::RouterType router_type) {
  assert(hw_.stack_size() == 0 && "hardware stack must start empty");
  rtl::u64 cycles = 0;

  // Ingress packet processing: deliver the label stack to the modifier,
  // bottom entry first so the hardware rebuilds it in order.
  const std::size_t depth = packet.stack.size();
  for (std::size_t i = 0; i < depth; ++i) {
    cycles += hw_.user_push(packet.stack.at(depth - 1 - i));
  }

  // Captured before the stack is overwritten: needed to classify a
  // discard (the RTL only exposes found / not-found directly).
  const rtl::u8 orig_ttl =
      packet.stack.empty() ? packet.ip_ttl : packet.stack.top().ttl;

  const auto r = hw_.update(level, router_type, packet.packet_identifier(),
                            packet.cos, packet.ip_ttl);
  last_update_only_ = r.cycles;
  cycles += r.cycles;

  // Egress packet processing: read the modified stack back and drain the
  // hardware for the next packet.
  packet.stack = hw_.stack_view();
  while (hw_.stack_size() > 0) {
    cycles += hw_.user_pop();
  }

  UpdateOutcome out;
  out.discarded = r.discarded;
  if (r.discarded) {
    out.reason = !hw_.item_found()      ? DiscardReason::kMiss
                 : orig_ttl <= 1        ? DiscardReason::kTtlExpired
                                        : DiscardReason::kInconsistent;
  }
  out.applied = r.applied;
  out.ttl_after = static_cast<rtl::u8>(hw_.datapath().ttl());
  out.hw_cycles = cycles;
  return out;
}

std::vector<UpdateOutcome> HwEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  rtl::u64 cycles = packets.empty() ? 0 : hw::kResetCycles;  // arm once
  for (mpls::Packet* packet : packets) {
    outcomes.push_back(
        HwEngine::update(*packet, classify_level(*packet), router_type));
    cycles += outcomes.back().hw_cycles;
  }
  last_batch_makespan_ = cycles;
  return outcomes;
}

std::size_t HwEngine::level_size(unsigned level) const {
  return static_cast<std::size_t>(hw_.level_count(level));
}

bool HwEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                rtl::u32 new_label) {
  if (!hw::InfoBase::valid_level(level)) {
    return false;
  }
  auto& lvl = hw_.datapath().info_base().level(level);
  const rtl::u64 mask =
      level == 1 ? ~rtl::u32{0} : static_cast<rtl::u64>(mpls::kMaxLabel);
  for (rtl::u64 addr = 0; addr < lvl.count(); ++addr) {
    if (lvl.peek_index(addr) == (key & mask)) {
      lvl.poke_label(addr, new_label);
      return true;
    }
  }
  return false;
}

}  // namespace empls::sw
