// Common interface over every label-processing engine: the cycle-accurate
// hardware model and the software baselines.
//
// The paper argues core MPLS tasks belong in hardware while "most
// existing MPLS solutions are entirely software based".  This interface
// lets the benches and the network simulator swap engines freely:
//
//   * HwEngine     — adapter over the RTL label stack modifier
//   * LinearEngine — software mirror of the hardware algorithm (also the
//                    golden model for differential tests)
//   * HashEngine   — modern hash-map software router
//   * CamEngine    — ablation: hardware with a content-addressable
//                    information base (parallel compare, constant-time)
//
// update() consumes a Packet, applies the information-base operation to
// its label stack in place, and reports the outcome plus the modelled
// hardware cost in clock cycles (0 when the engine has no hardware
// model, i.e. pure software measured by wall clock instead).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "hw/commands.hpp"
#include "mpls/packet.hpp"
#include "mpls/tables.hpp"
#include "rtl/types.hpp"

namespace empls::sw {

/// Why an update discarded the packet (populated when discarded).
enum class DiscardReason : rtl::u8 {
  kNone = 0,
  kMiss,          // no information-base entry for the key
  kTtlExpired,    // TTL reached zero after the decrement
  kInconsistent,  // VERIFY INFO failure: bad op / overflow / router type
};

[[nodiscard]] constexpr std::string_view to_string(DiscardReason r) noexcept {
  switch (r) {
    case DiscardReason::kNone:
      return "none";
    case DiscardReason::kMiss:
      return "no-label-binding";
    case DiscardReason::kTtlExpired:
      return "ttl-expired";
    case DiscardReason::kInconsistent:
      return "inconsistent-operation";
  }
  return "?";
}

struct UpdateOutcome {
  bool discarded = false;
  DiscardReason reason = DiscardReason::kNone;
  mpls::LabelOp applied = mpls::LabelOp::kNop;
  /// TTL value the operation produced (the datapath TTL counter): what
  /// egress processing writes back into the IP header on a final pop.
  rtl::u8 ttl_after = 0;
  /// Modelled hardware cost; 0 for pure-software engines.
  rtl::u64 hw_cycles = 0;
};

class LabelEngine {
 public:
  LabelEngine() = default;
  LabelEngine(const LabelEngine&) = delete;
  LabelEngine& operator=(const LabelEngine&) = delete;
  virtual ~LabelEngine() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // The write path is non-virtual on purpose: every mutation of the
  // information base — clear, a programmed pair, an injected corruption
  // — must advance the epoch before the engine sees it, so that any
  // forwarding decision cached outside the engine (the embedded
  // router's flow cache) can be validated with one integer compare.
  // Engines implement the protected do_* hooks instead.

  /// Drop all programmed label pairs.  Advances the epoch.
  void clear() {
    ++epoch_;
    do_clear();
  }

  /// Program one pair into a level (1..3).  Returns false when the level
  /// is full (1024 pairs, matching the hardware).  Advances the epoch.
  bool write_pair(unsigned level, const mpls::LabelPair& pair) {
    ++epoch_;
    return do_write_pair(level, pair);
  }

  /// Fault-injection backdoor: garble the stored outgoing label of the
  /// first entry matching `key` at `level`, modelling a single-event
  /// upset in the information-base memory.  The entry's index and
  /// operation survive, so lookups still hit it and return the bad
  /// label.  Returns false when the engine has no such entry (or no
  /// corruptible store).  Advances the epoch even on failure — stale
  /// cached decisions are invalidated conservatively.
  bool corrupt_entry(unsigned level, rtl::u32 key, rtl::u32 new_label) {
    ++epoch_;
    return do_corrupt_entry(level, key, new_label);
  }

  /// Generation counter of the information base: incremented by every
  /// clear / write_pair / corrupt_entry (and hence by every control
  /// plane reprogram, slow-path install, protection switchover and
  /// fault injection, all of which go through those).  A cached lookup
  /// result is valid iff it was captured at the current epoch.
  [[nodiscard]] rtl::u64 epoch() const noexcept { return epoch_; }

  /// Bare lookup: first stored pair whose index matches `key`.
  [[nodiscard]] virtual std::optional<mpls::LabelPair> lookup(
      unsigned level, rtl::u32 key) = 0;

  /// Modelled hardware cost of the most recent lookup()'s search phase
  /// (the 3k+5 scan for the linear-algorithm engines, the constant CAM
  /// probe, 0 for engines with no hardware model).  The flow cache
  /// stores this next to the resolved pair so a cache hit can recreate
  /// the exact hw_cycles the full path would have charged.
  [[nodiscard]] virtual rtl::u64 last_lookup_cost_cycles() const noexcept {
    return 0;
  }

  /// Whether the embedded router may serve this engine's decisions from
  /// its flow cache.  True for the single-datapath software engines
  /// whose modelled cost decomposes into search + tail (linear, hash,
  /// cam, simd).  False for the RTL-backed engines — the cycle-accurate
  /// model must see every packet — and for the sharded plane, whose
  /// makespan model (slowest shard) would change if cache hits were
  /// carved out of its batches.
  [[nodiscard]] virtual bool cacheable() const noexcept { return false; }

  /// Full update-stack flow on `packet` (level selection for non-empty
  /// stacks follows the caller's `level`; empty stacks use level 1 and
  /// the packet identifier, as the hardware does).
  virtual UpdateOutcome update(mpls::Packet& packet, unsigned level,
                               hw::RouterType router_type) = 0;

  /// Batched update flow: run every packet through the engine and return
  /// one outcome per packet, in input order.  Levels are classified per
  /// packet exactly as the router's ingress does (sw::classify_level),
  /// so a batch may freely mix stack depths.  The base implementation is
  /// a correct sequential loop over update(); engines override it to
  /// amortize per-call costs (HwEngine) or to process shards in parallel
  /// (ShardedEngine).  Afterwards last_batch_makespan_cycles() reports
  /// the modelled time the batch occupied the engine.
  virtual std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets, hw::RouterType router_type);

  /// Modelled makespan of the most recent update_batch() in hardware
  /// cycles: the per-packet sum for single-datapath engines, the
  /// slowest shard for parallel ones.  0 when the engine has no
  /// hardware cycle model (pure software, measured by wall clock).
  [[nodiscard]] rtl::u64 last_batch_makespan_cycles() const noexcept {
    return last_batch_makespan_;
  }

  /// Number of packets the engine can process concurrently: 1 for every
  /// single-datapath engine, the shard count for ShardedEngine.  The
  /// embedded router divides pure-software batch latency by this.
  [[nodiscard]] virtual unsigned parallelism() const noexcept { return 1; }

  [[nodiscard]] virtual std::size_t level_size(unsigned level) const = 0;

 protected:
  /// For engine-specific mutation entry points that do not fit the
  /// write_pair shape (e.g. TrieEngine::write_prefix): advance the
  /// epoch exactly as the public wrappers do before touching the store.
  void bump_epoch() noexcept { ++epoch_; }

  // Mutation hooks behind the epoch-advancing public wrappers above.
  virtual void do_clear() = 0;
  virtual bool do_write_pair(unsigned level, const mpls::LabelPair& pair) = 0;
  /// Default: no corruptible store.
  virtual bool do_corrupt_entry(unsigned /*level*/, rtl::u32 /*key*/,
                                rtl::u32 /*new_label*/) {
    return false;
  }

  /// Set by update_batch() implementations; see
  /// last_batch_makespan_cycles().
  rtl::u64 last_batch_makespan_ = 0;

 private:
  rtl::u64 epoch_ = 0;
};

}  // namespace empls::sw
