// LabelEngine over the full hardware packet pipeline: ingress DMA +
// stack transfer + label stack modifier + egress DMA, all cycle-counted
// on the RTL simulator.  Where HwEngine charges only the modifier and
// the stack transfers, PipelineEngine charges the complete Figure 6
// hardware path including byte movement — the most faithful (and most
// expensive to simulate) engine available to the network model.
#pragma once

#include "hw/packet_pipeline.hpp"
#include "sw/engine.hpp"

namespace empls::sw {

class PipelineEngine : public LabelEngine {
 public:
  /// The pipeline needs the router type at construction (it owns the
  /// update command); `update()` asserts the same type is passed.
  explicit PipelineEngine(hw::RouterType type, unsigned bus_bytes = 4)
      : type_(type), pipe_(type, bus_bytes) {}

  [[nodiscard]] std::string_view name() const override {
    return "hw-pipeline";
  }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(
      unsigned level, rtl::u32 key) override {
    const auto r = pipe_.modifier().search(level, key);
    if (!r.found) {
      return std::nullopt;
    }
    return mpls::LabelPair{key, r.label,
                           static_cast<mpls::LabelOp>(r.operation)};
  }

  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;

  [[nodiscard]] std::size_t level_size(unsigned level) const override {
    return static_cast<std::size_t>(pipe_.modifier().level_count(level));
  }

  hw::PacketPipeline& pipeline() noexcept { return pipe_; }

 protected:
  void do_clear() override { pipe_.modifier().do_reset(); }

  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override {
    if (pipe_.modifier().level_count(level) >= hw::kLevelDepth) {
      return false;
    }
    pipe_.modifier().write_pair(level, pair);
    return true;
  }

 private:
  hw::RouterType type_;
  hw::PacketPipeline pipe_;
};

}  // namespace empls::sw
