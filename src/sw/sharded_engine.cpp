#include "sw/sharded_engine.hpp"

#include <algorithm>

#include "net/mix.hpp"
#include "sw/semantics.hpp"
#include "sw/simd_engine.hpp"

namespace empls::sw {

ShardedEngine::ShardedEngine(unsigned shards, ReplicaFactory make_replica) {
  const unsigned n = std::clamp(shards, 1u, kMaxShards);
  name_ = "sharded:" + std::to_string(n);
  if (!make_replica) {
    make_replica = [] { return std::make_unique<SimdEngine>(); };
  }
  shards_.reserve(n);
  last_loads_.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->replica = make_replica();
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* s = shards_[i].get();
    shards_[i]->worker = std::thread([this, s, i] { worker_loop(*s, i); });
  }
}

ShardedEngine::~ShardedEngine() {
  quiesce();
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->doorbell.fetch_add(1, std::memory_order_release);
    shard->doorbell.notify_all();
  }
  for (auto& shard : shards_) {
    shard->worker.join();
  }
}

std::size_t ShardedEngine::shard_index(unsigned level,
                                       rtl::u32 key) const noexcept {
  // mix64 over (level, key): an RSS-style spreading hash so adjacent
  // labels / addresses do not pile onto one shard.
  return static_cast<std::size_t>(net::mix64_pair(level, key) %
                                  shards_.size());
}

std::size_t ShardedEngine::shard_of(unsigned level, rtl::u32 key) const {
  return shard_index(level, key);
}

void ShardedEngine::worker_loop(Shard& shard, std::size_t index) {
  for (;;) {
    Job job;
    if (shard.ring.try_pop(job)) {
      *job.outcome =
          shard.replica->update(*job.packet, job.level, job.router_type);
      shard.load.packets += 1;
      shard.load.cycles += job.outcome->hw_cycles;
      if (trace_) {
        trace_(index, *job.packet, *job.outcome);
      }
      // The release decrement publishes the outcome, the packet
      // mutation and the load counters; the dispatcher's acquire load
      // of zero synchronizes with every decrement in the sequence.
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pending_.notify_all();
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    const auto ticket = shard.doorbell.load(std::memory_order_acquire);
    // Re-check after reading the ticket: a push that completed between
    // the failed pop and the load bumped the doorbell already, so
    // wait() below returns immediately instead of sleeping through it.
    if (shard.ring.size() > 0 || stop_.load(std::memory_order_acquire)) {
      continue;
    }
    shard.doorbell.wait(ticket, std::memory_order_acquire);
  }
}

void ShardedEngine::dispatch(Shard& shard, const Job& job) {
  // Bounded backpressure: a full ring means the worker is saturated;
  // yield until it drains a slot.
  while (!shard.ring.try_push(job)) {
    std::this_thread::yield();
  }
  shard.doorbell.fetch_add(1, std::memory_order_release);
  shard.doorbell.notify_one();
}

void ShardedEngine::quiesce() {
  std::size_t in_flight;
  while ((in_flight = pending_.load(std::memory_order_acquire)) != 0) {
    pending_.wait(in_flight, std::memory_order_acquire);
  }
}

void ShardedEngine::do_clear() {
  quiesce();
  for (auto& shard : shards_) {
    shard->replica->clear();
  }
}

bool ShardedEngine::do_write_pair(unsigned level,
                                  const mpls::LabelPair& pair) {
  quiesce();
  // Replicas are identical, so they all accept or all reject (level
  // full); fold with AND to keep the single-engine contract.
  bool ok = true;
  for (auto& shard : shards_) {
    ok = shard->replica->write_pair(level, pair) && ok;
  }
  return ok;
}

bool ShardedEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                     rtl::u32 new_label) {
  quiesce();
  // The fault model garbles the programmed binding itself (the image
  // every replica was written from), so all replicas diverge the same
  // way and the resync audit sees the corruption no matter which
  // replica it reads.
  bool ok = true;
  for (auto& shard : shards_) {
    ok = shard->replica->corrupt_entry(level, key, new_label) && ok;
  }
  return ok;
}

std::optional<mpls::LabelPair> ShardedEngine::lookup(unsigned level,
                                                     rtl::u32 key) {
  quiesce();
  return shards_[shard_index(level, key)]->replica->lookup(level, key);
}

std::size_t ShardedEngine::level_size(unsigned level) const {
  // const: cannot quiesce, but replicas only change on the (external,
  // single-threaded) write path, which quiesced before writing — the
  // sizes are stable whenever a caller can legally observe them.
  return shards_.front()->replica->level_size(level);
}

void ShardedEngine::set_trace(ProcessTrace trace) {
  quiesce();
  trace_ = std::move(trace);
}

UpdateOutcome ShardedEngine::update(mpls::Packet& packet, unsigned level,
                                    hw::RouterType router_type) {
  const UpdateKey k = update_key(packet, level);
  UpdateOutcome outcome;
  pending_.store(1, std::memory_order_relaxed);
  dispatch(*shards_[shard_index(k.level, k.key)],
           Job{&packet, &outcome, level, router_type});
  quiesce();
  return outcome;
}

std::vector<UpdateOutcome> ShardedEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  std::vector<UpdateOutcome> outcomes(packets.size());
  if (packets.empty()) {
    last_batch_makespan_ = 0;
    return outcomes;
  }
  for (auto& shard : shards_) {
    shard->load = ShardLoad{};  // workers idle: safe to reset
  }
  // Count the whole batch up front so pending_ cannot transiently hit
  // zero (and wake the barrier) while dispatch is still in progress.
  pending_.store(packets.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    mpls::Packet* packet = packets[i];
    const unsigned level = classify_level(*packet);
    const UpdateKey k = update_key(*packet, level);
    dispatch(*shards_[shard_index(k.level, k.key)],
             Job{packet, &outcomes[i], level, router_type});
  }
  quiesce();

  rtl::u64 makespan = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    last_loads_[s] = shards_[s]->load;
    makespan = std::max(makespan, last_loads_[s].cycles);
  }
  last_batch_makespan_ = makespan;
  return outcomes;
}

}  // namespace empls::sw
