#include "sw/cam_engine.hpp"

#include "hw/cycle_model.hpp"

namespace empls::sw {

UpdateOutcome CamEngine::update(mpls::Packet& packet, unsigned level,
                                hw::RouterType router_type) {
  UpdateOutcome out = inner_.update(packet, level, router_type);
  // Same behaviour; replace the linear search component of the modelled
  // cost with the CAM's constant-time search.
  const rtl::u64 linear_search =
      hw::search_cycles(inner_.last_entries_examined());
  out.hw_cycles = out.hw_cycles - linear_search + kCamSearchCycles;
  return out;
}

}  // namespace empls::sw
