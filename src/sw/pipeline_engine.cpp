#include "sw/pipeline_engine.hpp"

#include <cassert>

namespace empls::sw {

UpdateOutcome PipelineEngine::update(mpls::Packet& packet, unsigned level,
                                     hw::RouterType router_type) {
  assert(router_type == type_ &&
         "PacketPipeline's router type is fixed at construction");
  (void)router_type;
  const rtl::u8 orig_ttl =
      packet.stack.empty() ? packet.ip_ttl : packet.stack.top().ttl;
  const auto r = pipe_.process(packet, level);

  UpdateOutcome out;
  out.hw_cycles = r.cycles;
  if (r.malformed || r.discarded) {
    out.discarded = true;
    out.reason = r.malformed ? DiscardReason::kInconsistent
                 : !pipe_.modifier().item_found()
                     ? DiscardReason::kMiss
                 : orig_ttl <= 1 ? DiscardReason::kTtlExpired
                                 : DiscardReason::kInconsistent;
    packet.stack.clear();
    return out;
  }
  // The pipeline rebuilt the packet; reflect it into the caller's.
  out.ttl_after =
      r.packet.stack.empty() ? r.packet.ip_ttl : r.packet.stack.top().ttl;
  out.applied = r.applied;
  packet = r.packet;
  return out;
}

}  // namespace empls::sw
