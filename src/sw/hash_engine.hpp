// Hash-map software baseline: what a modern software MPLS router (e.g. a
// kernel forwarding table) does instead of a linear scan.  O(1) expected
// lookups regardless of table occupancy — the comparison point for the
// paper's linear-time hardware search.
//
// Duplicate-index writes keep the FIRST binding, matching the hardware's
// first-match-wins scan order, so all engines stay bit-identical in
// behaviour.
#pragma once

#include <array>
#include <unordered_map>

#include "sw/engine.hpp"

namespace empls::sw {

class HashEngine : public LabelEngine {
 public:
  explicit HashEngine(std::size_t level_capacity = 1024)
      : capacity_(level_capacity) {}

  [[nodiscard]] std::string_view name() const override { return "hash"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;
  [[nodiscard]] bool cacheable() const noexcept override { return true; }

 protected:
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  /// The single-event-upset model for the hash store: garble the mapped
  /// value's outgoing label in place (the key and operation survive, as
  /// in the other engines), so corruption campaigns hit this engine too
  /// instead of silently no-oping through the default.
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  struct Stored {
    rtl::u32 new_label;
    mpls::LabelOp op;
  };

  std::unordered_map<rtl::u32, Stored>& level_ref(unsigned level);
  [[nodiscard]] const std::unordered_map<rtl::u32, Stored>& level_ref(
      unsigned level) const;
  [[nodiscard]] static rtl::u32 key_mask(unsigned level) noexcept;

  std::size_t capacity_;
  std::array<std::unordered_map<rtl::u32, Stored>, 3> levels_;
};

}  // namespace empls::sw
