#include "sw/simd_engine.hpp"

#include <bit>
#include <cassert>
#include <cstdint>

#include "hw/cycle_model.hpp"
#include "sw/semantics.hpp"

// Kernel selection: explicit SSE2 / NEON block comparators when the
// target has them, otherwise a portable unrolled lane loop the compiler
// auto-vectorizes.  EMPLS_SIMD_FORCE_SCALAR pins the portable path so
// tests can cover it on any host.
#if !defined(EMPLS_SIMD_FORCE_SCALAR)
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define EMPLS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define EMPLS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace empls::sw {
namespace {

#if defined(EMPLS_SIMD_SSE2)
/// Precise priority encode within one 16-lane block known to match.
inline std::size_t encode_block(const __m128i e0, const __m128i e1,
                                const __m128i e2,
                                const __m128i e3) noexcept {
  const auto m =
      static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(e0))) |
      (static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(e1)))
       << 4) |
      (static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(e2)))
       << 8) |
      (static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(e3)))
       << 12);
  return static_cast<std::size_t>(std::countr_zero(m));
}

/// Flat scan over the padded key lane.  The hot (no-match) path pays
/// compares, ORs and ONE movemask any-test per 32 keys; the precise
/// per-lane bitmask — the priority encoder's input — is only
/// materialised in the 16-lane block that contains a match.
std::size_t scan_first_match(const rtl::u32* keys, std::size_t padded,
                             rtl::u32 key) noexcept {
  const __m128i q = _mm_set1_epi32(static_cast<int>(key));
  std::size_t base = 0;
  // Main loop: two 16-lane blocks (two cache lines of keys) per
  // iteration, folded into a single any-match test.
  for (; base + 2 * SimdEngine::kLaneWidth <= padded;
       base += 2 * SimdEngine::kLaneWidth) {
    const auto* k = reinterpret_cast<const __m128i*>(keys + base);
    const __m128i e0 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 0), q);
    const __m128i e1 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 1), q);
    const __m128i e2 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 2), q);
    const __m128i e3 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 3), q);
    const __m128i e4 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 4), q);
    const __m128i e5 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 5), q);
    const __m128i e6 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 6), q);
    const __m128i e7 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 7), q);
    const __m128i lo =
        _mm_or_si128(_mm_or_si128(e0, e1), _mm_or_si128(e2, e3));
    const __m128i hi =
        _mm_or_si128(_mm_or_si128(e4, e5), _mm_or_si128(e6, e7));
    if (_mm_movemask_epi8(_mm_or_si128(lo, hi)) != 0) {
      if (_mm_movemask_epi8(lo) != 0) {
        return base + encode_block(e0, e1, e2, e3);
      }
      return base + SimdEngine::kLaneWidth + encode_block(e4, e5, e6, e7);
    }
  }
  // At most one 16-lane tail block (padding rounds to 16, not 32).
  if (base < padded) {
    const auto* k = reinterpret_cast<const __m128i*>(keys + base);
    const __m128i e0 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 0), q);
    const __m128i e1 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 1), q);
    const __m128i e2 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 2), q);
    const __m128i e3 = _mm_cmpeq_epi32(_mm_loadu_si128(k + 3), q);
    const __m128i any =
        _mm_or_si128(_mm_or_si128(e0, e1), _mm_or_si128(e2, e3));
    if (_mm_movemask_epi8(any) != 0) {
      return base + encode_block(e0, e1, e2, e3);
    }
  }
  return padded;
}
#else
/// Compare kLaneWidth contiguous keys against `key`; bit j of the
/// result is set iff keys[j] == key — the software analogue of the
/// datapath's comparator bank feeding a priority encoder.
std::uint32_t block_match_mask(const rtl::u32* keys, rtl::u32 key) noexcept {
#if defined(EMPLS_SIMD_NEON)
  const uint32x4_t q = vdupq_n_u32(key);
  const uint32x4_t bit = {1u, 2u, 4u, 8u};
  std::uint32_t m = 0;
  for (unsigned g = 0; g < SimdEngine::kLaneWidth / 4; ++g) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(keys + 4 * g), q);
    m |= vaddvq_u32(vandq_u32(eq, bit)) << (4 * g);
  }
  return m;
#else
  std::uint32_t m = 0;
  for (unsigned j = 0; j < SimdEngine::kLaneWidth; ++j) {
    m |= static_cast<std::uint32_t>(keys[j] == key) << j;
  }
  return m;
#endif
}

/// Non-SSE2 flat scan: block_match_mask per 16-lane block, priority
/// encode via countr_zero on the first non-zero mask.
std::size_t scan_first_match(const rtl::u32* keys, std::size_t padded,
                             rtl::u32 key) noexcept {
  for (std::size_t base = 0; base < padded;
       base += SimdEngine::kLaneWidth) {
    const std::uint32_t m = block_match_mask(keys + base, key);
    if (m != 0) {
      return base + static_cast<std::size_t>(std::countr_zero(m));
    }
  }
  return padded;
}
#endif

}  // namespace

std::string_view SimdEngine::kernel() noexcept {
#if defined(EMPLS_SIMD_SSE2)
  return "sse2";
#elif defined(EMPLS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

SimdEngine::SimdEngine(std::size_t level_capacity)
    : capacity_(level_capacity) {}

SimdEngine::Level& SimdEngine::level_ref(unsigned level) {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

const SimdEngine::Level& SimdEngine::level_ref(unsigned level) const {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

rtl::u32 SimdEngine::key_mask(unsigned level) noexcept {
  // Level 1 compares the full 32-bit packet identifier; levels 2 and 3
  // compare 20-bit labels, matching the datapath's comparators.
  return level == 1 ? ~rtl::u32{0} : static_cast<rtl::u32>(mpls::kMaxLabel);
}

std::size_t SimdEngine::find_first(const Level& l,
                                   rtl::u32 masked_key) noexcept {
  const std::size_t idx =
      scan_first_match(l.keys.data(), l.keys.size(), masked_key);
  // Pad lanes (zeros past the occupancy) only exist at positions >=
  // count, so an out-of-range first match means no real match — and
  // none can follow, since everything past it is pad too.
  return idx < l.count ? idx : l.count;
}

void SimdEngine::do_clear() {
  for (auto& l : levels_) {
    l.keys.clear();
    l.new_labels.clear();
    l.ops.clear();
    l.raw_index.clear();
    l.count = 0;
  }
}

bool SimdEngine::do_write_pair(unsigned level, const mpls::LabelPair& pair) {
  Level& l = level_ref(level);
  if (l.count >= capacity_) {
    return false;
  }
  if (l.count == l.keys.size()) {
    l.keys.resize(l.keys.size() + kLaneWidth, 0);  // fresh pad block
  }
  l.keys[l.count] = pair.index & key_mask(level);
  l.new_labels.push_back(pair.new_label);
  l.ops.push_back(pair.op);
  l.raw_index.push_back(pair.index);
  ++l.count;
  return true;
}

bool SimdEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                  rtl::u32 new_label) {
  Level& l = level_ref(level);
  const std::size_t idx = find_first(l, key & key_mask(level));
  if (idx >= l.count) {
    return false;
  }
  l.new_labels[idx] = new_label & static_cast<rtl::u32>(mpls::kMaxLabel);
  return true;
}

std::optional<mpls::LabelPair> SimdEngine::lookup(unsigned level,
                                                  rtl::u32 key) {
  const Level& l = level_ref(level);
  const std::size_t idx = find_first(l, key & key_mask(level));
  if (idx < l.count) {
    last_examined_ = idx + 1;
    return mpls::LabelPair{l.raw_index[idx], l.new_labels[idx], l.ops[idx]};
  }
  last_examined_ = l.count;
  return std::nullopt;
}

UpdateOutcome SimdEngine::update_resolved(mpls::Packet& packet, unsigned level,
                                          rtl::u32 key,
                                          hw::RouterType router_type) {
  const bool was_empty = packet.stack.empty();
  const auto found = lookup(level, key);
  UpdateOutcome out = apply_update(packet, found, router_type);

  // Modelled hardware cost of the identical run (Table 6) — the same
  // composition as LinearEngine, with k the SoA scan's match position.
  out.hw_cycles = hw::search_cycles(last_examined_) +
                  update_tail_cycles(out, was_empty, found.has_value());
  return out;
}

UpdateOutcome SimdEngine::update(mpls::Packet& packet, unsigned level,
                                 hw::RouterType router_type) {
  const UpdateKey k = update_key(packet, level);
  return update_resolved(packet, k.level, k.key, router_type);
}

std::vector<UpdateOutcome> SimdEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  // Pass 1: classify every packet and derive its (level, key) once.
  // Keys must be taken before any stack mutates, and hoisting them
  // lets pass 2 run compare blocks back to back over the hot lanes.
  std::vector<UpdateKey> keys;
  keys.reserve(packets.size());
  for (const mpls::Packet* packet : packets) {
    keys.push_back(update_key(*packet, classify_level(*packet)));
  }
  rtl::u64 cycles = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    outcomes.push_back(update_resolved(*packets[i], keys[i].level,
                                       keys[i].key, router_type));
    cycles += outcomes.back().hw_cycles;
  }
  last_batch_makespan_ = cycles;
  return outcomes;
}

std::size_t SimdEngine::level_size(unsigned level) const {
  return level_ref(level).count;
}

rtl::u64 SimdEngine::last_lookup_cost_cycles() const noexcept {
  return hw::search_cycles(last_examined_);
}

}  // namespace empls::sw
