// Ablation engine: the information base as a content-addressable memory.
//
// The paper's linear search costs 3n+5 cycles because one comparator
// scans the level sequentially.  An FPGA could instead instantiate one
// comparator per entry and resolve any lookup in a constant number of
// cycles — at the resource cost of 1024 parallel comparators and a
// priority encoder per level.  bench_ablation_search quantifies this
// design point against the paper's; CamEngine provides its behaviour and
// cycle model (behaviour is identical to the other engines, only the
// modelled cost differs).
#pragma once

#include "sw/linear_engine.hpp"

namespace empls::sw {

/// Constant search cost: broadcast key (1), parallel compare (1),
/// priority encode (1), read match (1), register result (1) — plus the
/// same 2-cycle dispatch handshake as the paper's design.
inline constexpr rtl::u64 kCamSearchCycles = 7;

/// Rough resource proxy: comparator bit-slices per level (one n-bit
/// comparator per entry vs. the paper's single shared one).
inline constexpr rtl::u64 cam_comparator_bits(rtl::u64 entries,
                                              unsigned index_bits) noexcept {
  return entries * index_bits;
}

class CamEngine : public LabelEngine {
 public:
  explicit CamEngine(std::size_t level_capacity = 1024)
      : inner_(level_capacity) {}

  [[nodiscard]] std::string_view name() const override { return "cam"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override {
    return inner_.lookup(level, key);
  }
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override {
    return inner_.level_size(level);
  }
  [[nodiscard]] bool cacheable() const noexcept override { return true; }
  [[nodiscard]] rtl::u64 last_lookup_cost_cycles() const noexcept override {
    return kCamSearchCycles;
  }

 protected:
  void do_clear() override { inner_.clear(); }
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override {
    return inner_.write_pair(level, pair);
  }
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override {
    return inner_.corrupt_entry(level, key, new_label);
  }

 private:
  LinearEngine inner_;
};

}  // namespace empls::sw
