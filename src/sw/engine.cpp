#include "sw/engine.hpp"

#include "sw/semantics.hpp"

namespace empls::sw {

std::vector<UpdateOutcome> LabelEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  // Correct-by-construction sequential baseline: the batch occupies the
  // single datapath for the sum of the per-packet costs.
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  rtl::u64 cycles = 0;
  for (mpls::Packet* packet : packets) {
    outcomes.push_back(update(*packet, classify_level(*packet), router_type));
    cycles += outcomes.back().hw_cycles;
  }
  last_batch_makespan_ = cycles;
  return outcomes;
}

}  // namespace empls::sw
