#include "sw/trie_engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "hw/cycle_model.hpp"
#include "mpls/label.hpp"
#include "net/mix.hpp"
#include "sw/semantics.hpp"

namespace empls::sw {

namespace {

constexpr rtl::u32 label_mask() noexcept {
  return static_cast<rtl::u32>(mpls::kMaxLabel);
}

}  // namespace

TrieEngine::TrieEngine(std::size_t level_capacity)
    : capacity_(level_capacity) {
  nodes_.push_back(TrieNode{});  // the len-0 root (default-route slot)
  for (auto& t : tables_) {
    table_rehash(t, 16);
  }
}

std::size_t TrieEngine::table_hash(rtl::u32 key) noexcept {
  // mix32, as in net::FlatCounts: full-avalanche spread so sequentially
  // allocated labels do not chain into one probe run.
  return net::mix32(key);
}

TrieEngine::OpenTable& TrieEngine::table_ref(unsigned level) {
  assert(level >= 2 && level <= 3);
  return tables_[level - 2];
}

const TrieEngine::OpenTable& TrieEngine::table_ref(unsigned level) const {
  assert(level >= 2 && level <= 3);
  return tables_[level - 2];
}

std::pair<std::size_t, rtl::u64> TrieEngine::table_probe(
    const OpenTable& t, rtl::u32 masked_key) noexcept {
  const std::size_t mask = t.keys.size() - 1;
  std::size_t i = table_hash(masked_key) & mask;
  rtl::u64 probed = 1;
  while (t.keys[i] != kNil && t.keys[i] != masked_key) {
    i = (i + 1) & mask;
    ++probed;
  }
  return {i, probed};
}

void TrieEngine::table_rehash(OpenTable& t, std::size_t slots) {
  const std::vector<rtl::u32> old_keys = std::move(t.keys);
  const std::vector<rtl::u32> old_raw = std::move(t.raw_index);
  const std::vector<rtl::u32> old_labels = std::move(t.new_labels);
  const std::vector<rtl::u32> old_seq = std::move(t.seq);
  const std::vector<mpls::LabelOp> old_ops = std::move(t.ops);
  t.keys.assign(slots, kNil);
  t.raw_index.assign(slots, 0);
  t.new_labels.assign(slots, 0);
  t.seq.assign(slots, 0);
  t.ops.assign(slots, mpls::LabelOp::kNop);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kNil) {
      continue;
    }
    const auto [j, probed] = table_probe(t, old_keys[i]);
    t.keys[j] = old_keys[i];
    t.raw_index[j] = old_raw[i];
    t.new_labels[j] = old_labels[i];
    t.seq[j] = old_seq[i];
    t.ops[j] = old_ops[i];
  }
}

bool TrieEngine::table_write(unsigned level, const mpls::LabelPair& pair) {
  OpenTable& t = table_ref(level);
  if ((t.distinct + 1) * 10 >= t.keys.size() * 7) {  // load factor 0.7
    table_rehash(t, t.keys.size() * 2);
  }
  const rtl::u32 masked = pair.index & label_mask();
  const auto [slot, probed] = table_probe(t, masked);
  if (t.keys[slot] != kNil) {
    return false;  // first binding wins, like the linear scan order
  }
  t.keys[slot] = masked;
  t.raw_index[slot] = pair.index;
  t.new_labels[slot] = pair.new_label;
  t.seq[slot] = static_cast<rtl::u32>(writes_[level - 1] + 1);
  t.ops[slot] = pair.op;
  ++t.distinct;
  return true;
}

rtl::u32 TrieEngine::trie_insert(rtl::u32 value, unsigned len) {
  rtl::u32 cur = 0;
  for (;;) {
    // Invariant: nodes_[cur]'s prefix is a (possibly improper) prefix
    // of (value, len).
    if (nodes_[cur].len == len) {
      if (nodes_[cur].entry != kNil) {
        return kNil;  // first binding for this exact prefix wins
      }
      const auto slot = static_cast<rtl::u32>(entries_.size());
      nodes_[cur].entry = slot;
      return slot;
    }
    const unsigned b = bit_at(value, nodes_[cur].len);
    const rtl::u32 child = nodes_[cur].child[b];
    if (child == kNil) {
      const auto slot = static_cast<rtl::u32>(entries_.size());
      const auto leaf = static_cast<rtl::u32>(nodes_.size());
      nodes_.push_back(
          TrieNode{value, {kNil, kNil}, slot, static_cast<rtl::u8>(len)});
      nodes_[cur].child[b] = leaf;
      return slot;
    }
    // Copy the child's prefix before any push_back can move the slab.
    const rtl::u32 child_value = nodes_[child].value;
    const unsigned child_len = nodes_[child].len;
    const unsigned common = std::min(
        {static_cast<unsigned>(std::countl_zero(child_value ^ value)),
         child_len, len});
    if (common == child_len) {
      cur = child;  // the child's prefix still covers ours: descend
      continue;
    }
    const auto slot = static_cast<rtl::u32>(entries_.size());
    if (common == len) {
      // (value, len) is a proper prefix of the child: it becomes the
      // interior node above it, carrying the new entry.
      const auto mid = static_cast<rtl::u32>(nodes_.size());
      TrieNode m{value, {kNil, kNil}, slot, static_cast<rtl::u8>(len)};
      m.child[bit_at(child_value, len)] = child;
      nodes_.push_back(m);
      nodes_[cur].child[b] = mid;
      return slot;
    }
    // The paths diverge: a pure branch point at the common prefix with
    // the old child on one side and a new leaf on the other.
    const auto branch = static_cast<rtl::u32>(nodes_.size());
    TrieNode bn{value & prefix_mask(common),
                {kNil, kNil},
                kNil,
                static_cast<rtl::u8>(common)};
    bn.child[bit_at(child_value, common)] = child;
    nodes_.push_back(bn);
    const auto leaf = static_cast<rtl::u32>(nodes_.size());
    nodes_.push_back(
        TrieNode{value, {kNil, kNil}, slot, static_cast<rtl::u8>(len)});
    nodes_[branch].child[bit_at(value, common)] = leaf;
    nodes_[cur].child[b] = branch;
    return slot;
  }
}

TrieEngine::LpmResult TrieEngine::trie_lpm(rtl::u32 key) const {
  LpmResult r;
  rtl::u32 cur = 0;
  while (cur != kNil) {
    const TrieNode& n = nodes_[cur];
    ++r.nodes_visited;
    if ((key & prefix_mask(n.len)) != n.value) {
      break;  // path compression skipped bits that do not match
    }
    if (n.entry != kNil) {
      r.entry = n.entry;  // deepest matching prefix seen so far
    }
    if (n.len == 32) {
      break;
    }
    cur = n.child[bit_at(key, n.len)];
  }
  return r;
}

bool TrieEngine::level1_write(unsigned prefix_len,
                              const mpls::LabelPair& pair) {
  const rtl::u32 value = pair.index & prefix_mask(prefix_len);
  const rtl::u32 slot = trie_insert(value, prefix_len);
  if (slot == kNil) {
    return false;
  }
  assert(slot == entries_.size());
  entries_.push_back(TrieEntry{pair.index, pair.new_label,
                               static_cast<rtl::u32>(writes_[0] + 1),
                               pair.op, static_cast<rtl::u8>(prefix_len)});
  return true;
}

rtl::u64 TrieEngine::cost_entries(unsigned level, bool hit, rtl::u64 hit_seq,
                                  rtl::u64 structural) const noexcept {
  const rtl::u64 writes = writes_[level - 1];
  if (writes <= kPaperLevelEntries) {
    // Paper-sized base: charge exactly what the linear hardware scan
    // would — the hit's 1-based write position, the full level on a
    // miss.
    return hit ? hit_seq : writes;
  }
  // Scalable regime: the structural cost of the hardware these
  // structures model — trie nodes visited / table slots probed.
  return structural;
}

std::optional<mpls::LabelPair> TrieEngine::lookup(unsigned level,
                                                  rtl::u32 key) {
  assert(level >= 1 && level <= 3);
  if (level == 1) {
    const LpmResult r = trie_lpm(key);
    const bool hit = r.entry != kNil;
    last_examined_ = cost_entries(
        1, hit, hit ? entries_[r.entry].seq : 0, r.nodes_visited);
    if (!hit) {
      return std::nullopt;
    }
    const TrieEntry& e = entries_[r.entry];
    return mpls::LabelPair{e.raw_index, e.new_label, e.op};
  }
  const OpenTable& t = table_ref(level);
  const auto [slot, probed] = table_probe(t, key & label_mask());
  const bool hit = t.keys[slot] != kNil;
  last_examined_ = cost_entries(level, hit, hit ? t.seq[slot] : 0, probed);
  if (!hit) {
    return std::nullopt;
  }
  return mpls::LabelPair{t.raw_index[slot], t.new_labels[slot],
                         t.ops[slot]};
}

UpdateOutcome TrieEngine::update(mpls::Packet& packet, unsigned level,
                                 hw::RouterType router_type) {
  const UpdateKey k = update_key(packet, level);
  const bool was_empty = packet.stack.empty();
  const auto found = lookup(k.level, k.key);
  UpdateOutcome out = apply_update(packet, found, router_type);
  out.hw_cycles = hw::search_cycles(last_examined_) +
                  update_tail_cycles(out, was_empty, found.has_value());
  return out;
}

rtl::u64 TrieEngine::last_lookup_cost_cycles() const noexcept {
  return hw::search_cycles(last_examined_);
}

std::vector<UpdateOutcome> TrieEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  // Statically bound loop, as in LinearEngine: skip the per-packet
  // virtual dispatch on the batch path.
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  rtl::u64 cycles = 0;
  for (mpls::Packet* packet : packets) {
    outcomes.push_back(
        TrieEngine::update(*packet, classify_level(*packet), router_type));
    cycles += outcomes.back().hw_cycles;
  }
  last_batch_makespan_ = cycles;
  return outcomes;
}

std::size_t TrieEngine::level_size(unsigned level) const {
  assert(level >= 1 && level <= 3);
  return static_cast<std::size_t>(writes_[level - 1]);
}

bool TrieEngine::write_prefix(unsigned prefix_len,
                              const mpls::LabelPair& pair) {
  if (prefix_len > 32 || writes_[0] >= capacity_) {
    return false;
  }
  bump_epoch();
  level1_write(prefix_len, pair);
  ++writes_[0];
  return true;
}

void TrieEngine::do_clear() {
  // Slabs keep their capacity: a clear + reprogram cycle (control-plane
  // resync, fault repair, attack churn) allocates nothing once the
  // structures have grown to working size.
  nodes_.clear();
  nodes_.push_back(TrieNode{});
  entries_.clear();
  for (auto& t : tables_) {
    std::fill(t.keys.begin(), t.keys.end(), kNil);
    t.distinct = 0;
  }
  writes_ = {0, 0, 0};
}

bool TrieEngine::do_write_pair(unsigned level, const mpls::LabelPair& pair) {
  assert(level >= 1 && level <= 3);
  if (writes_[level - 1] >= capacity_) {
    return false;
  }
  // A duplicate-key write keeps the first binding but still counts as
  // an accepted write: the linear engine appends it (unreachably), so
  // level length, capacity and the miss cost must all advance.
  if (level == 1) {
    level1_write(32, pair);
  } else {
    table_write(level, pair);
  }
  ++writes_[level - 1];
  return true;
}

bool TrieEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                  rtl::u32 new_label) {
  assert(level >= 1 && level <= 3);
  if (level == 1) {
    // Garble the binding a lookup of `key` would return (for /32-only
    // bases this is exactly the linear engine's first masked match).
    const LpmResult r = trie_lpm(key);
    if (r.entry == kNil) {
      return false;
    }
    entries_[r.entry].new_label = new_label & label_mask();
    return true;
  }
  OpenTable& t = table_ref(level);
  const auto [slot, probed] = table_probe(t, key & label_mask());
  if (t.keys[slot] == kNil) {
    return false;
  }
  t.new_labels[slot] = new_label & label_mask();
  return true;
}

void TrieEngine::reserve(unsigned level, std::size_t entries) {
  assert(level >= 1 && level <= 3);
  if (level == 1) {
    nodes_.reserve(2 * entries + 1);
    entries_.reserve(entries);
    return;
  }
  OpenTable& t = table_ref(level);
  std::size_t slots = 16;
  while ((entries + 1) * 10 >= slots * 7) {
    slots <<= 1;
  }
  if (slots > t.keys.size()) {
    table_rehash(t, slots);
  }
}

TrieEngine::MemoryStats TrieEngine::memory_stats() const {
  MemoryStats s;
  s.trie_nodes = nodes_.size();
  s.bytes = nodes_.capacity() * sizeof(TrieNode) +
            entries_.capacity() * sizeof(TrieEntry);
  s.entries = entries_.size();
  for (const auto& t : tables_) {
    s.bytes += t.keys.capacity() * sizeof(rtl::u32) +
               t.raw_index.capacity() * sizeof(rtl::u32) +
               t.new_labels.capacity() * sizeof(rtl::u32) +
               t.seq.capacity() * sizeof(rtl::u32) +
               t.ops.capacity() * sizeof(mpls::LabelOp);
    s.entries += t.distinct;
  }
  return s;
}

}  // namespace empls::sw
