// The label-update semantics shared by every software engine — a direct
// transcription of the control unit's REMOVE TOP / UPDATE TTL /
// VERIFY INFO / apply flow (Figure 9), factored out so the linear, hash
// and CAM engines differ only in how they find the pair, never in what
// they do with it.  Differential tests pin the hardware model to this
// function.
#pragma once

#include <optional>

#include "hw/commands.hpp"
#include "mpls/packet.hpp"
#include "mpls/tables.hpp"
#include "sw/engine.hpp"

namespace empls::sw {

/// The search key / level the update flow uses for `packet`:
/// empty stack → (level 1, packet identifier); otherwise → (caller's
/// level, top label).
struct UpdateKey {
  unsigned level = 1;
  rtl::u32 key = 0;
};
[[nodiscard]] UpdateKey update_key(const mpls::Packet& packet,
                                   unsigned level) noexcept;

/// The information-base level ingress classification selects for
/// `packet`: empty stack → 1 (packet-identifier table); depth-d stack →
/// min(d+1, 3), since level 1 is reserved for identifiers and the
/// deepest nestings share level 3 (DESIGN.md §5.6).  This is the level
/// the embedded router passes to update(), and the one update_batch()
/// derives per packet.
[[nodiscard]] unsigned classify_level(const mpls::Packet& packet) noexcept;

/// Apply the verify + modify portion of the update flow, given the pair
/// the search produced (`found == nullopt` means a miss).  Mutates
/// `packet.stack` exactly as the hardware datapath would; on any
/// discard, the stack is reset.  Does not fill UpdateOutcome::hw_cycles.
UpdateOutcome apply_update(mpls::Packet& packet,
                           const std::optional<mpls::LabelPair>& found,
                           hw::RouterType router_type);

/// The Table 6 cycle cost of the update flow AFTER the search: the
/// discard tails and the per-operation apply tails.  `was_empty` is the
/// stack state before the update, `found` whether the search hit.
/// LinearEngine composes hw_cycles = search_cycles(k) + this; the
/// embedded router's flow cache uses the same composition with a cached
/// search cost, which keeps cached and uncached outcomes bit-identical.
[[nodiscard]] rtl::u64 update_tail_cycles(const UpdateOutcome& out,
                                          bool was_empty,
                                          bool found) noexcept;

}  // namespace empls::sw
