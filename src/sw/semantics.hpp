// The label-update semantics shared by every software engine — a direct
// transcription of the control unit's REMOVE TOP / UPDATE TTL /
// VERIFY INFO / apply flow (Figure 9), factored out so the linear, hash
// and CAM engines differ only in how they find the pair, never in what
// they do with it.  Differential tests pin the hardware model to this
// function.
#pragma once

#include <optional>

#include "hw/commands.hpp"
#include "mpls/packet.hpp"
#include "mpls/tables.hpp"
#include "sw/engine.hpp"

namespace empls::sw {

/// The search key / level the update flow uses for `packet`:
/// empty stack → (level 1, packet identifier); otherwise → (caller's
/// level, top label).
struct UpdateKey {
  unsigned level = 1;
  rtl::u32 key = 0;
};
[[nodiscard]] UpdateKey update_key(const mpls::Packet& packet,
                                   unsigned level) noexcept;

/// Apply the verify + modify portion of the update flow, given the pair
/// the search produced (`found == nullopt` means a miss).  Mutates
/// `packet.stack` exactly as the hardware datapath would; on any
/// discard, the stack is reset.  Does not fill UpdateOutcome::hw_cycles.
UpdateOutcome apply_update(mpls::Packet& packet,
                           const std::optional<mpls::LabelPair>& found,
                           hw::RouterType router_type);

}  // namespace empls::sw
