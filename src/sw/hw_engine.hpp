// LabelEngine adapter over the cycle-accurate RTL label stack modifier.
//
// Per packet, the adapter plays the role of the ingress/egress packet
// processing interfaces of Figure 6: it loads the packet's label stack
// into the hardware with direct user pushes (3 cycles each), runs the
// update flow, and reads the modified stack back.  hw_cycles reports the
// full cost including the load — exactly what the embedded router spends.
#pragma once

#include "hw/label_stack_modifier.hpp"
#include "sw/engine.hpp"

namespace empls::sw {

class HwEngine : public LabelEngine {
 public:
  HwEngine() = default;

  [[nodiscard]] std::string_view name() const override { return "hw-rtl"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  /// Modelled search cost of the most recent lookup(), straight from
  /// the hardware's SearchResult — the VCD-aligned per-lookup figure.
  [[nodiscard]] rtl::u64 last_lookup_cost_cycles() const noexcept override {
    return last_lookup_cycles_;
  }
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  /// Batched variant: per-packet behaviour is identical to sequential
  /// update() calls (the single datapath processes one packet at a
  /// time), but the batch arms the control FSM once — a standalone
  /// update() leaves re-arming (kResetCycles of handshake) to the
  /// surrounding router per packet, while a batch pays it once up
  /// front and keeps the FSM hot, so the modelled makespan is
  /// kResetCycles + the per-packet sum.
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;

  hw::LabelStackModifier& modifier() noexcept { return hw_; }

  /// Cycles of the most recent update spent inside the modifier's update
  /// flow itself (excluding the stack load/unload the adapter performs).
  [[nodiscard]] rtl::u64 last_update_only_cycles() const noexcept {
    return last_update_only_;
  }

 protected:
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  hw::LabelStackModifier hw_;
  rtl::u64 last_update_only_ = 0;
  rtl::u64 last_lookup_cycles_ = 0;
};

}  // namespace empls::sw
