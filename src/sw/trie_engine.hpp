// Scalable FIB tier: the million-entry information base the paper's
// 3x1K-pair memories cannot hold.
//
// The paper caps each information-base level at 1024 pairs; production
// LSRs (and the P4/ASIC-scale tables of the MNA line of work) carry
// millions of bindings.  This engine keeps the LabelEngine contract —
// same first-match-wins semantics, same epoch discipline, same exact
// Table 6 cycle accounting on paper-sized bases — while storing the
// base in structures that scale:
//
//   * Level 1 (ingress classification by packet identifier) is a
//     path-compressed binary patricia trie over the 32-bit key.  Every
//     write_pair installs a /32 host route, so on bases the linear
//     engine can also hold the trie is bit-identical to it; the
//     trie-only write_prefix() additionally installs real prefix
//     routes, looked up longest-prefix-match (nested, overlapping and
//     default routes compose the way an IP FIB does).
//   * Levels 2 and 3 (label tables, 20-bit keys) are compact
//     open-addressing tables: splitmix32 spread, linear probing, 0.7
//     load factor — the FlatCounts pattern with a label-pair payload.
//
// All storage is slab-backed (contiguous arrays grown only at
// power-of-two rehash points, never on the lookup path, kept across
// clear()), so steady-state forwarding and reprogram churn allocate
// nothing — the PacketPool discipline applied to the FIB.
//
// Modelled cost (DESIGN.md section 12): while a level holds no more
// pairs than the paper's hardware could (<= 1024 accepted writes), a
// lookup charges exactly the linear engine's Table 6 cost — 3k+5 with
// k the 1-based position the equivalent linear scan would have
// examined (each stored binding remembers its write sequence number).
// Past 1024 the linear hardware no longer exists to mirror, and the
// cost model switches to the scalable hardware the structures
// transcribe: 3 cycles per trie node visited (level 1) or per probe
// slot inspected (levels 2/3), plus the same 5-cycle search setup.
// The two regimes meet at the paper boundary, so differential suites
// against LinearEngine stay cycle-exact wherever both engines can
// represent the base.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sw/engine.hpp"

namespace empls::sw {

class TrieEngine : public LabelEngine {
 public:
  /// The paper's per-level hardware capacity: at or below this many
  /// accepted writes a level charges exact Table 6 linear-scan cycles;
  /// above it the scalable cost model applies.
  static constexpr std::size_t kPaperLevelEntries = 1024;

  /// Default per-level capacity: 1M pairs, the scale the ROADMAP's
  /// "millions of users" scenarios need (the ctor argument overrides,
  /// e.g. 1024 to mirror LinearEngine exactly in differential tests).
  static constexpr std::size_t kDefaultLevelCapacity = 1u << 20;

  explicit TrieEngine(std::size_t level_capacity = kDefaultLevelCapacity);

  [[nodiscard]] std::string_view name() const override { return "trie"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;
  [[nodiscard]] bool cacheable() const noexcept override { return true; }
  [[nodiscard]] rtl::u64 last_lookup_cost_cycles() const noexcept override;

  /// Trie-only: install a level-1 prefix route.  `pair.index` holds the
  /// prefix value (host byte order, low bits ignored), `prefix_len` its
  /// length 0..32 (0 = default route).  Lookups return the
  /// longest-prefix match; among entries for the same exact prefix the
  /// first binding wins, like every other write path here.  Counts
  /// against the level-1 capacity and advances the epoch exactly as
  /// write_pair does.  Returns false when level 1 is full or
  /// `prefix_len` is out of range.
  bool write_prefix(unsigned prefix_len, const mpls::LabelPair& pair);

  /// The k of the most recent lookup's 3k+5 cost: the linear-equivalent
  /// position on paper-sized bases, the nodes-visited / slots-probed
  /// count past them (see the header comment).
  [[nodiscard]] rtl::u64 last_entries_examined() const noexcept {
    return last_examined_;
  }

  /// Pre-size a level's slabs for `entries` bindings so programming a
  /// known-size base never rehashes mid-load (benches use this; growth
  /// works without it, just with amortized doubling along the way).
  void reserve(unsigned level, std::size_t entries);

  /// Slab accounting for the bytes-per-entry gate: capacity bytes of
  /// every backing array (trie nodes, entry records, table lanes) and
  /// the distinct bindings they hold.
  struct MemoryStats {
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t trie_nodes = 0;
    [[nodiscard]] double bytes_per_entry() const {
      return entries == 0 ? 0.0
                          : static_cast<double>(bytes) /
                                static_cast<double>(entries);
    }
  };
  [[nodiscard]] MemoryStats memory_stats() const;

 protected:
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  static constexpr rtl::u32 kNil = 0xFFFFFFFFu;

  /// One patricia node: the prefix it stands for (value left-aligned,
  /// `len` significant bits), two children keyed by the bit after the
  /// prefix, and the binding installed at exactly this prefix (kNil =
  /// pure branch point).  20 bytes; a base of N prefixes needs at most
  /// 2N+1 nodes (one leaf each plus at most one split, plus the root).
  struct TrieNode {
    rtl::u32 value = 0;
    rtl::u32 child[2] = {kNil, kNil};
    rtl::u32 entry = kNil;
    rtl::u8 len = 0;
  };

  /// A level-1 binding: the pair as written plus its prefix length and
  /// linear-equivalent write sequence number (1-based).
  struct TrieEntry {
    rtl::u32 raw_index = 0;
    rtl::u32 new_label = 0;
    rtl::u32 seq = 0;
    mpls::LabelOp op = mpls::LabelOp::kNop;
    rtl::u8 prefix_len = 32;
  };

  /// Levels 2/3: open-addressing label table, structure-of-arrays so
  /// the probe loop touches only the key lane (the FlatCounts layout).
  struct OpenTable {
    std::vector<rtl::u32> keys;  // masked key; kNil marks an empty slot
    std::vector<rtl::u32> raw_index;
    std::vector<rtl::u32> new_labels;
    std::vector<rtl::u32> seq;
    std::vector<mpls::LabelOp> ops;
    std::size_t distinct = 0;
  };

  struct LpmResult {
    rtl::u32 entry = kNil;   // index into entries_
    rtl::u64 nodes_visited = 0;
  };

  [[nodiscard]] static rtl::u32 prefix_mask(unsigned len) noexcept {
    return len == 0 ? 0u : ~rtl::u32{0} << (32u - len);
  }
  [[nodiscard]] static unsigned bit_at(rtl::u32 value, unsigned pos) noexcept {
    return (value >> (31u - pos)) & 1u;
  }
  [[nodiscard]] static std::size_t table_hash(rtl::u32 key) noexcept;

  /// Insert (value, len) into the trie; returns the entry slot to fill,
  /// or kNil when an entry for this exact prefix already exists (first
  /// binding wins).
  rtl::u32 trie_insert(rtl::u32 value, unsigned len);
  [[nodiscard]] LpmResult trie_lpm(rtl::u32 key) const;
  bool level1_write(unsigned prefix_len, const mpls::LabelPair& pair);

  OpenTable& table_ref(unsigned level);
  [[nodiscard]] const OpenTable& table_ref(unsigned level) const;
  /// Probe for `masked_key`: the slot index (empty or matching) and the
  /// 1-based number of slots inspected.
  [[nodiscard]] static std::pair<std::size_t, rtl::u64> table_probe(
      const OpenTable& t, rtl::u32 masked_key) noexcept;
  static void table_rehash(OpenTable& t, std::size_t slots);
  bool table_write(unsigned level, const mpls::LabelPair& pair);

  /// The k the cost model charges for the most recent search at
  /// `level`: linear-equivalent below the paper boundary, the
  /// structural cost above it.
  [[nodiscard]] rtl::u64 cost_entries(unsigned level, bool hit,
                                      rtl::u64 hit_seq,
                                      rtl::u64 structural) const noexcept;

  std::size_t capacity_;
  /// Accepted writes per level — the length of the equivalent linear
  /// level (duplicate-key writes count: the linear engine appends
  /// them), which is what level_size(), the capacity check, the paper
  /// boundary and the miss cost all key off.
  std::array<rtl::u64, 3> writes_{0, 0, 0};

  std::vector<TrieNode> nodes_;    // level 1; node 0 is the len-0 root
  std::vector<TrieEntry> entries_;

  std::array<OpenTable, 2> tables_;  // levels 2 and 3

  rtl::u64 last_examined_ = 0;
};

}  // namespace empls::sw
