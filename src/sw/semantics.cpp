#include "sw/semantics.hpp"

#include <algorithm>

#include "hw/cycle_model.hpp"
#include "mpls/label.hpp"

namespace empls::sw {

using mpls::LabelEntry;
using mpls::LabelOp;

UpdateKey update_key(const mpls::Packet& packet, unsigned level) noexcept {
  if (packet.stack.empty()) {
    return UpdateKey{1, packet.packet_identifier()};
  }
  return UpdateKey{level, packet.stack.top().label};
}

unsigned classify_level(const mpls::Packet& packet) noexcept {
  if (packet.stack.empty()) {
    return 1;
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(packet.stack.size() + 1, 3));
}

UpdateOutcome apply_update(mpls::Packet& packet,
                           const std::optional<mpls::LabelPair>& found,
                           hw::RouterType router_type) {
  UpdateOutcome out;
  auto discard = [&](DiscardReason reason) {
    packet.stack.clear();
    out.discarded = true;
    out.reason = reason;
    out.applied = LabelOp::kNop;
  };

  if (!found) {
    discard(DiscardReason::kMiss);
    return out;
  }

  const bool was_empty = packet.stack.empty();
  const std::size_t orig_size = packet.stack.size();

  // REMOVE TOP + UPDATE TTL: capture the entry being modified and the
  // decremented TTL.  For an ingress (empty-stack) update the TTL comes
  // from the control path — the packet's IP TTL.
  LabelEntry removed{};
  rtl::u8 orig_ttl = 0;
  if (!was_empty) {
    removed = *packet.stack.pop();
    orig_ttl = removed.ttl;
  } else {
    orig_ttl = packet.ip_ttl;
  }
  const rtl::u8 new_ttl = static_cast<rtl::u8>(orig_ttl - 1);
  out.ttl_after = new_ttl;

  // VERIFY INFO.
  const bool ttl_expired = orig_ttl <= 1;
  bool consistent = true;
  switch (found->op) {
    case LabelOp::kNop:
      consistent = false;
      break;
    case LabelOp::kPop:
    case LabelOp::kSwap:
      consistent = !was_empty;
      break;
    case LabelOp::kPush:
      consistent = orig_size < mpls::LabelStack::kHardwareDepth;
      break;
  }
  if (was_empty && router_type == hw::RouterType::kLsr) {
    consistent = false;
  }
  if (was_empty && found->op != LabelOp::kPush) {
    consistent = false;
  }
  if (ttl_expired || !consistent) {
    discard(ttl_expired ? DiscardReason::kTtlExpired
                        : DiscardReason::kInconsistent);
    return out;
  }

  // Apply.
  switch (found->op) {
    case LabelOp::kPop:
      // The top is already removed; propagate the decremented TTL into
      // the newly exposed entry, if any.
      if (!packet.stack.empty()) {
        packet.stack.rewrite_top(packet.stack.top().label, new_ttl);
      }
      break;
    case LabelOp::kSwap:
      packet.stack.push(
          LabelEntry{found->new_label, removed.cos, false, new_ttl});
      break;
    case LabelOp::kPush:
      if (!was_empty) {
        // Re-push the original entry with the decremented TTL, then the
        // new outer label carrying the same CoS and TTL.
        packet.stack.push(
            LabelEntry{removed.label, removed.cos, false, new_ttl});
        packet.stack.push(
            LabelEntry{found->new_label, removed.cos, false, new_ttl});
      } else {
        // Ingress push: CoS from the control path (the packet's class).
        packet.stack.push(
            LabelEntry{found->new_label, packet.cos, false, new_ttl});
      }
      break;
    case LabelOp::kNop:
      break;  // unreachable: verified above
  }
  out.applied = found->op;
  return out;
}

rtl::u64 update_tail_cycles(const UpdateOutcome& out, bool was_empty,
                            bool found) noexcept {
  if (out.discarded) {
    return found ? hw::kVerifyDiscardTailCycles : hw::kMissDiscardTailCycles;
  }
  switch (out.applied) {
    case LabelOp::kSwap:
      return hw::kSwapTailCycles;
    case LabelOp::kPop:
      return hw::kPopTailCycles;
    case LabelOp::kPush:
      return was_empty ? hw::kPushIngressTailCycles
                       : hw::kPushNestedTailCycles;
    case LabelOp::kNop:
      return 0;
  }
  return 0;
}

}  // namespace empls::sw
