// Vectorized software mirror of the hardware algorithm: the same three
// append-only, first-match-wins levels as LinearEngine, but laid out as
// a structure of arrays and scanned with a wide comparator bank instead
// of one entry per iteration.
//
// The paper's hardware wins by comparing the label-stack key against
// the information base with dedicated 32/20/10-bit comparators; the
// P4/ASIC MNA line of work maps the same processing onto wide parallel
// match stages.  This engine is the software transcription of that
// idea: the per-level key lane is contiguous and occupancy-packed, so
// one 16-lane compare block inspects 16 entries per step — branch-free
// inside the block, with the first-match priority encode done on the
// resulting bitmask (std::countr_zero standing in for the hardware's
// priority encoder).
//
// Semantics are bit-identical to LinearEngine, including the modelled
// Table 6 cost (3k+5 search + operation tail, k = 1-based hit position
// or the occupancy on a miss): like LinearEngine, SimdEngine can stand
// in for the RTL in large simulations at identical modelled cost — it
// just burns far less host time doing it, which is what bench_lookup
// gates.  The differential suite pins the equivalence.
//
// Lane width is fixed at 16 u32 keys per block.  The portable scan is
// written so GCC/Clang auto-vectorize it; explicit SSE2 and NEON block
// kernels are selected behind feature macros (EMPLS_SIMD_FORCE_SCALAR
// disables both for testing the portable path).
#pragma once

#include <array>
#include <vector>

#include "sw/engine.hpp"

namespace empls::sw {

class SimdEngine : public LabelEngine {
 public:
  /// u32 keys inspected per compare block.  16 × 32-bit lanes = two
  /// AVX2 vectors, four SSE2/NEON vectors, or one unrolled scalar block
  /// — small enough to stay in registers everywhere.
  static constexpr std::size_t kLaneWidth = 16;

  explicit SimdEngine(std::size_t level_capacity = 1024);

  [[nodiscard]] std::string_view name() const override { return "simd"; }

  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;
  /// Batched variant: level classification and key derivation for the
  /// whole batch are amortized into one pass up front, then the hot
  /// loop runs compare blocks back to back against the packed lanes.
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;
  [[nodiscard]] bool cacheable() const noexcept override { return true; }
  [[nodiscard]] rtl::u64 last_lookup_cost_cycles() const noexcept override;

  /// 1-based position of the hit of the last lookup, or the stored count
  /// on a miss — identical accounting to LinearEngine (the k/n of the
  /// 3k+5 formula).
  [[nodiscard]] rtl::u64 last_entries_examined() const noexcept {
    return last_examined_;
  }

  /// Which block kernel this build selected: "sse2", "neon" or
  /// "scalar" (the auto-vectorized portable loop).
  [[nodiscard]] static std::string_view kernel() noexcept;

 protected:
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  /// One information-base level as a structure of arrays.  `keys` holds
  /// the level-masked compare keys, occupancy-packed and padded with
  /// zeros to a whole number of blocks so the scan never needs a tail
  /// loop (a pad lane can match a zero key, but only at positions >=
  /// count, which the priority encode rejects).  The label / op / raw
  /// index lanes are only touched on a hit, so they stay exact-sized.
  struct Level {
    std::vector<rtl::u32> keys;
    std::vector<rtl::u32> new_labels;
    std::vector<mpls::LabelOp> ops;
    std::vector<rtl::u32> raw_index;  // as written, unmasked (lookup returns it)
    std::size_t count = 0;
  };

  Level& level_ref(unsigned level);
  [[nodiscard]] const Level& level_ref(unsigned level) const;
  [[nodiscard]] static rtl::u32 key_mask(unsigned level) noexcept;
  /// First stored position whose masked key equals `masked_key`, or
  /// `count` when none does.
  [[nodiscard]] static std::size_t find_first(const Level& l,
                                              rtl::u32 masked_key) noexcept;
  UpdateOutcome update_resolved(mpls::Packet& packet, unsigned level,
                                rtl::u32 key, hw::RouterType router_type);

  std::size_t capacity_;
  std::array<Level, 3> levels_;
  rtl::u64 last_examined_ = 0;
};

}  // namespace empls::sw
