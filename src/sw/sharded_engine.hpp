// Sharded parallel forwarding plane: N worker threads, each owning a
// private replica of the information base, fed over bounded SPSC rings
// by the single dispatcher thread (the caller).
//
// The paper escapes the one-packet-at-a-time software bottleneck with
// dedicated hardware; the MNA ASIC line of work escapes it with
// parallel match-action stages.  This engine models the latter in
// software: packets are partitioned RSS-style by a hash of their update
// key (level, key), so every packet of a flow lands on the same shard
// and per-flow order is preserved by the shard's FIFO ring, while
// distinct flows proceed in parallel.
//
// Consistency model:
//   * The information base is REPLICATED, not partitioned: every shard
//     holds a full copy, so any shard can serve any packet and the
//     results are bit-identical to a single LinearEngine (the
//     differential tests pin this).
//   * The write path (clear / write_pair / corrupt_entry / lookup)
//     runs through a drain-and-quiesce barrier: the dispatcher waits
//     until every ring is empty and every worker is idle, then applies
//     the write to all replicas itself.  Reprogramming therefore never
//     races the data path — exactly the reset-and-reprogram discipline
//     the routing functionality already follows for the hardware.
//   * External callers are single-threaded (the LabelEngine contract);
//     all internal concurrency is hidden behind update/update_batch.
//
// Modelled time: a batch's makespan is the slowest shard's sum of
// per-packet cycles (replicas report their own Table 6 costs), i.e.
// N parallel datapaths — this is what bench_sharding sweeps.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "sw/engine.hpp"
#include "sw/spsc_ring.hpp"

namespace empls::sw {

class ShardedEngine : public LabelEngine {
 public:
  using ReplicaFactory = std::function<std::unique_ptr<LabelEngine>()>;

  /// Hard ceiling on the shard count (a runaway `sharded:<N>` scenario
  /// must not spawn thousands of threads).
  static constexpr unsigned kMaxShards = 64;

  /// `shards` worker threads (clamped to [1, kMaxShards]), each with a
  /// replica from `make_replica` (default: SimdEngine, the vectorized
  /// SoA mirror of the golden model — bit-identical outcomes and Table 6
  /// cycle accounting, but each worker scans its replica with the wide
  /// comparator bank, so shards get the SoA speedup too).
  explicit ShardedEngine(unsigned shards,
                         ReplicaFactory make_replica = ReplicaFactory{});
  ~ShardedEngine() override;

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] unsigned parallelism() const noexcept override {
    return static_cast<unsigned>(shards_.size());
  }

  // Read path — quiesces, then reads the key's owning replica.
  [[nodiscard]] std::optional<mpls::LabelPair> lookup(unsigned level,
                                                      rtl::u32 key) override;
  [[nodiscard]] std::size_t level_size(unsigned level) const override;

  /// Single-packet update: dispatched to the owning shard and awaited,
  /// so even the non-batched router path keeps the single-writer
  /// discipline on the replicas.
  UpdateOutcome update(mpls::Packet& packet, unsigned level,
                       hw::RouterType router_type) override;

  /// The parallel path: packets fan out to their shards, workers run
  /// concurrently, outcomes come back in input order.  Afterwards
  /// last_batch_makespan_cycles() is the slowest shard's cycle sum and
  /// last_batch_loads() the per-shard packet/cycle split.
  std::vector<UpdateOutcome> update_batch(
      std::span<mpls::Packet* const> packets,
      hw::RouterType router_type) override;

  /// Drain/quiesce barrier: returns once every queued packet has been
  /// processed and all workers are parked.  The write path calls this
  /// internally; it is public so reprogramming agents and tests can
  /// fence explicitly.
  void quiesce();

  struct ShardLoad {
    rtl::u64 packets = 0;
    rtl::u64 cycles = 0;
  };
  /// Per-shard load of the most recent update_batch().
  [[nodiscard]] const std::vector<ShardLoad>& last_batch_loads()
      const noexcept {
    return last_loads_;
  }

  /// Which shard owns a (level, key) — exposed for tests and benches.
  [[nodiscard]] std::size_t shard_of(unsigned level, rtl::u32 key) const;

  /// Test instrumentation: called by WORKER THREADS after each processed
  /// packet; the hook must synchronize internally.  Set only while
  /// quiesced (e.g. before traffic starts).
  using ProcessTrace = std::function<void(
      std::size_t shard, const mpls::Packet& packet,
      const UpdateOutcome& outcome)>;
  void set_trace(ProcessTrace trace);

 protected:
  // Write path — all quiesce first, then touch every replica.
  void do_clear() override;
  bool do_write_pair(unsigned level, const mpls::LabelPair& pair) override;
  bool do_corrupt_entry(unsigned level, rtl::u32 key,
                        rtl::u32 new_label) override;

 private:
  struct Job {
    mpls::Packet* packet = nullptr;
    UpdateOutcome* outcome = nullptr;
    unsigned level = 1;
    hw::RouterType router_type = hw::RouterType::kLsr;
  };

  struct Shard {
    std::unique_ptr<LabelEngine> replica;
    SpscRing<Job> ring{1024};
    /// Bumped by the dispatcher after every push (and at shutdown);
    /// workers park on it when the ring runs dry.
    std::atomic<std::uint64_t> doorbell{0};
    /// Touched only by the worker while jobs are in flight; the
    /// dispatcher reads/resets them strictly outside (pending_ == 0
    /// fences both directions).
    ShardLoad load;
    std::thread worker;
  };

  void worker_loop(Shard& shard, std::size_t index);
  void dispatch(Shard& shard, const Job& job);
  [[nodiscard]] std::size_t shard_index(unsigned level,
                                        rtl::u32 key) const noexcept;

  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Jobs dispatched but not yet completed, across all shards.  The
  /// worker's release decrement to zero is the quiesce edge.
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  ProcessTrace trace_;
  std::vector<ShardLoad> last_loads_;
};

}  // namespace empls::sw
