// Bounded lock-free single-producer / single-consumer ring queue — the
// dispatcher→worker channel of the sharded forwarding plane.
//
// Exactly one thread may call try_push (the dispatcher) and exactly one
// may call try_pop (the shard's worker).  Capacity is fixed at
// construction and rounded up to a power of two; a full ring is the
// backpressure signal (the dispatcher yields until the worker drains).
// head_ counts pushes, tail_ counts pops; both grow monotonically and
// are masked into the buffer, so full/empty are distinguishable without
// a spare slot.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

namespace empls::sw {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024)
      : buffer_(round_up_pow2(capacity)), mask_(buffer_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer only.  False when the ring is full.
  bool try_push(const T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buffer_.size()) {
      return false;
    }
    buffer_[head & mask_] = item;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only.  False when the ring is empty.
  bool try_pop(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return false;
    }
    item = buffer_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate; exact only for the calling side's own view.
  [[nodiscard]] std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
};

}  // namespace empls::sw
