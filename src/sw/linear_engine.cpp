#include "sw/linear_engine.hpp"

#include <cassert>

#include "hw/cycle_model.hpp"
#include "sw/semantics.hpp"

namespace empls::sw {

std::vector<mpls::LabelPair>& LinearEngine::level_ref(unsigned level) {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

const std::vector<mpls::LabelPair>& LinearEngine::level_ref(
    unsigned level) const {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

void LinearEngine::do_clear() {
  for (auto& l : levels_) {
    l.clear();
  }
}

bool LinearEngine::do_write_pair(unsigned level, const mpls::LabelPair& pair) {
  auto& l = level_ref(level);
  if (l.size() >= capacity_) {
    return false;
  }
  l.push_back(pair);
  return true;
}

std::optional<mpls::LabelPair> LinearEngine::lookup(unsigned level,
                                                    rtl::u32 key) {
  const auto& l = level_ref(level);
  // Level 1 compares the full 32-bit packet identifier; levels 2 and 3
  // compare 20-bit labels, matching the datapath's comparators.
  const rtl::u32 mask =
      level == 1 ? ~rtl::u32{0} : static_cast<rtl::u32>(mpls::kMaxLabel);
  for (std::size_t i = 0; i < l.size(); ++i) {
    if ((l[i].index & mask) == (key & mask)) {
      last_examined_ = i + 1;
      return l[i];
    }
  }
  last_examined_ = l.size();
  return std::nullopt;
}

UpdateOutcome LinearEngine::update(mpls::Packet& packet, unsigned level,
                                   hw::RouterType router_type) {
  const UpdateKey k = update_key(packet, level);
  const bool was_empty = packet.stack.empty();
  const auto found = lookup(k.level, k.key);
  UpdateOutcome out = apply_update(packet, found, router_type);

  // Modelled hardware cost of the identical run (Table 6).
  out.hw_cycles = hw::search_cycles(last_examined_) +
                  update_tail_cycles(out, was_empty, found.has_value());
  return out;
}

rtl::u64 LinearEngine::last_lookup_cost_cycles() const noexcept {
  return hw::search_cycles(last_examined_);
}

std::vector<UpdateOutcome> LinearEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  // Same semantics as the base loop, but statically bound: the batch
  // path skips per-packet virtual dispatch, which matters at the packet
  // rates bench_sharding drives through the software plane.
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  rtl::u64 cycles = 0;
  for (mpls::Packet* packet : packets) {
    outcomes.push_back(
        LinearEngine::update(*packet, classify_level(*packet), router_type));
    cycles += outcomes.back().hw_cycles;
  }
  last_batch_makespan_ = cycles;
  return outcomes;
}

std::size_t LinearEngine::level_size(unsigned level) const {
  return level_ref(level).size();
}

bool LinearEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                    rtl::u32 new_label) {
  auto& l = level_ref(level);
  const rtl::u32 mask =
      level == 1 ? ~rtl::u32{0} : static_cast<rtl::u32>(mpls::kMaxLabel);
  for (auto& pair : l) {
    if ((pair.index & mask) == (key & mask)) {
      pair.new_label = new_label & static_cast<rtl::u32>(mpls::kMaxLabel);
      return true;
    }
  }
  return false;
}

}  // namespace empls::sw
