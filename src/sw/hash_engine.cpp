#include "sw/hash_engine.hpp"

#include <cassert>

#include "mpls/label.hpp"
#include "sw/semantics.hpp"

namespace empls::sw {

std::unordered_map<rtl::u32, HashEngine::Stored>& HashEngine::level_ref(
    unsigned level) {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

const std::unordered_map<rtl::u32, HashEngine::Stored>& HashEngine::level_ref(
    unsigned level) const {
  assert(level >= 1 && level <= 3);
  return levels_[level - 1];
}

rtl::u32 HashEngine::key_mask(unsigned level) noexcept {
  return level == 1 ? ~rtl::u32{0} : static_cast<rtl::u32>(mpls::kMaxLabel);
}

void HashEngine::do_clear() {
  for (auto& l : levels_) {
    l.clear();
  }
}

bool HashEngine::do_write_pair(unsigned level, const mpls::LabelPair& pair) {
  auto& l = level_ref(level);
  if (l.size() >= capacity_) {
    return false;
  }
  // try_emplace keeps the first binding, matching scan order.
  l.try_emplace(pair.index & key_mask(level),
                Stored{pair.new_label, pair.op});
  return true;
}

std::optional<mpls::LabelPair> HashEngine::lookup(unsigned level,
                                                  rtl::u32 key) {
  const auto& l = level_ref(level);
  const auto it = l.find(key & key_mask(level));
  if (it == l.end()) {
    return std::nullopt;
  }
  return mpls::LabelPair{it->first, it->second.new_label, it->second.op};
}

UpdateOutcome HashEngine::update(mpls::Packet& packet, unsigned level,
                                 hw::RouterType router_type) {
  const UpdateKey k = update_key(packet, level);
  const auto found = lookup(k.level, k.key);
  UpdateOutcome out = apply_update(packet, found, router_type);
  out.hw_cycles = 0;  // pure software: measure with wall clock
  return out;
}

std::vector<UpdateOutcome> HashEngine::update_batch(
    std::span<mpls::Packet* const> packets, hw::RouterType router_type) {
  // Statically bound loop; no cycle model to accumulate (pure software).
  std::vector<UpdateOutcome> outcomes;
  outcomes.reserve(packets.size());
  for (mpls::Packet* packet : packets) {
    outcomes.push_back(
        HashEngine::update(*packet, classify_level(*packet), router_type));
  }
  last_batch_makespan_ = 0;
  return outcomes;
}

std::size_t HashEngine::level_size(unsigned level) const {
  return level_ref(level).size();
}

bool HashEngine::do_corrupt_entry(unsigned level, rtl::u32 key,
                                  rtl::u32 new_label) {
  auto& l = level_ref(level);
  const auto it = l.find(key & key_mask(level));
  if (it == l.end()) {
    return false;
  }
  it->second.new_label = new_label & static_cast<rtl::u32>(mpls::kMaxLabel);
  return true;
}

}  // namespace empls::sw
