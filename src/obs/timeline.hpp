// Time-series telemetry: a sim-time-cadence sampler over the metrics
// registry.
//
// End-of-run snapshots (PR 5) answer "how much, in total"; the dynamics
// that matter under load — the saturation knee forming, guard drops
// ramping, lookahead windows going idle — need "how much, *when*".  The
// Timeline walks every registered series on each sample() call and
// appends one row to a bounded flat ring (flight-recorder style: when
// full, the oldest rows are overwritten and counted):
//
//   * counters record the per-interval *delta*, so a column reads as a
//     rate curve instead of a monotone ramp;
//   * gauges record the instantaneous value;
//   * histograms record windowed p50/p99/p999 plus the interval's
//     sample count, computed from bucket *deltas* against the previous
//     tick — cumulative HDR buckets turned into per-window quantiles.
//     This is what locates a saturation knee: the sample where windowed
//     p999 first crosses the SLO, invisible in the whole-run quantile.
//
// Storage is per-column rings of doubles (capacity rows each); columns
// appear on first sight of a series and read as zero for earlier rows.
// Exports: CSV (one row per sample), JSON (column-major), and Chrome
// trace counter events ("ph":"C") that merge into the hop tracer's
// output so queue depths and drop rates render on one timeline next to
// per-packet spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace empls::obs {

class Timeline {
 public:
  struct Config {
    /// Sampling cadence in sim seconds (the `sample <interval>`
    /// directive); informational here — the caller owns the clock and
    /// decides when to call sample().
    double interval_s = 0.1;
    /// Rows retained; older rows are overwritten ring-style.
    std::size_t capacity = 4096;
  };

  Timeline();
  explicit Timeline(Config config);

  [[nodiscard]] double interval() const noexcept { return config_.interval_s; }

  /// Track a histogram living outside the registry (the load
  /// generator's latency HDR) under `name`; sampled like a registry
  /// histogram (name.p50 / .p99 / .p999 / .count columns).
  void track_histogram(std::string name, const Histogram* h);

  /// Record one sample row at sim time `now`: walk `registry`, compute
  /// deltas/quantiles against the previous tick, append to the ring.
  void sample(const MetricsRegistry& registry, double now);

  /// Rows currently retained (at most capacity).
  [[nodiscard]] std::size_t sample_count() const noexcept;
  /// Rows overwritten by ring wrap.
  [[nodiscard]] std::size_t dropped_samples() const noexcept;
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }

  /// Column names, creation order.  Counters/gauges are "name" or
  /// "name{labels}"; histograms expand to four columns with .p50 /
  /// .p99 / .p999 / .count suffixes after the label block.
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return column_names_;
  }
  [[nodiscard]] std::optional<std::size_t> column_index(
      std::string_view name) const;

  /// Row access, oldest retained row first (row < sample_count()).
  [[nodiscard]] double time_at(std::size_t row) const;
  [[nodiscard]] double value_at(std::size_t row, std::size_t col) const;

  /// time,<col>,... header then one line per retained row.  Column
  /// names are double-quoted (label bodies contain commas).
  void write_csv(std::ostream& out) const;
  /// Column-major JSON: {"interval_s":..,"time":[..],"series":{..}}.
  void write_json(std::ostream& out) const;
  /// Chrome trace counter events ("ph":"C", pid 3 = telemetry), one
  /// per (row, column), all-zero columns skipped.  Appends into an
  /// existing traceEvents array; `first` carries the comma state.
  void write_chrome_counters(std::ostream& out, bool& first) const;

 private:
  struct Column {
    std::string name;
    std::vector<double> ring;  // capacity slots
    double pending = 0.0;      // value computed for the row being built
  };

  std::size_t ensure_column(const void* key, std::string name);
  std::size_t ensure_hist(const void* key, std::string base);
  void sample_histogram(const Histogram& h, std::size_t first_col);

  Config config_;
  std::vector<Column> columns_;
  std::vector<std::string> column_names_;  // mirrors columns_[i].name
  std::vector<double> times_;              // capacity slots
  std::size_t total_rows_ = 0;

  // Instrument identity -> column (first column of the group for
  // histograms) and delta state.  Instrument pointers are stable for
  // the registry's lifetime (deque-backed).
  std::unordered_map<const void*, std::size_t> column_of_;
  std::unordered_map<std::string, std::size_t> column_by_name_;
  std::unordered_map<const Counter*, std::uint64_t> prev_counter_;
  struct HistPrev {
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t count = 0;
  };
  std::unordered_map<const Histogram*, HistPrev> prev_hist_;

  struct Tracked {
    std::string name;
    const Histogram* hist = nullptr;
  };
  std::vector<Tracked> tracked_;
};

}  // namespace empls::obs
