#include "obs/timeline.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace empls::obs {

namespace {

// Fixed-format doubles keep the CSV/JSON byte-stable across runs of a
// deterministic scenario (the golden tests diff these files).
void write_num(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    v = 0.0;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out << buf;
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string column_name(std::string_view name, std::string_view labels) {
  std::string out(name);
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

}  // namespace

Timeline::Timeline() : Timeline(Config{}) {}

Timeline::Timeline(Config config) : config_(config) {
  if (config_.capacity == 0) {
    config_.capacity = 1;
  }
  times_.assign(config_.capacity, 0.0);
}

void Timeline::track_histogram(std::string name, const Histogram* h) {
  tracked_.push_back(Tracked{std::move(name), h});
}

std::size_t Timeline::ensure_column(const void* key, std::string name) {
  if (const auto it = column_of_.find(key); it != column_of_.end()) {
    return it->second;
  }
  const std::size_t idx = columns_.size();
  Column col;
  col.name = name;
  col.ring.assign(config_.capacity, 0.0);
  columns_.push_back(std::move(col));
  column_names_.push_back(name);
  column_by_name_.emplace(std::move(name), idx);
  column_of_.emplace(key, idx);
  return idx;
}

std::size_t Timeline::ensure_hist(const void* key, std::string base) {
  if (const auto it = column_of_.find(key); it != column_of_.end()) {
    return it->second;
  }
  const std::size_t first = columns_.size();
  for (const char* suffix : {".p50", ".p99", ".p999", ".count"}) {
    const std::size_t idx = columns_.size();
    Column col;
    col.name = base + suffix;
    col.ring.assign(config_.capacity, 0.0);
    columns_.push_back(std::move(col));
    column_names_.push_back(columns_.back().name);
    column_by_name_.emplace(columns_.back().name, idx);
  }
  column_of_.emplace(key, first);
  return first;
}

void Timeline::sample_histogram(const Histogram& h, std::size_t first_col) {
  HistPrev& prev = prev_hist_[&h];
  std::array<std::uint64_t, Histogram::kBuckets> delta{};
  const auto& now_buckets = h.buckets();
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    delta[b] = now_buckets[b] - prev.buckets[b];
  }
  const std::uint64_t dcount = h.count() - prev.count;
  columns_[first_col].pending =
      static_cast<double>(Histogram::quantile_of(delta, 0.50));
  columns_[first_col + 1].pending =
      static_cast<double>(Histogram::quantile_of(delta, 0.99));
  columns_[first_col + 2].pending =
      static_cast<double>(Histogram::quantile_of(delta, 0.999));
  columns_[first_col + 3].pending = static_cast<double>(dcount);
  prev.buckets = now_buckets;
  prev.count = h.count();
}

void Timeline::sample(const MetricsRegistry& registry, double now) {
  for (Column& c : columns_) {
    c.pending = 0.0;
  }
  registry.visit([this](const MetricsRegistry::SeriesRef& ref) {
    if (ref.counter != nullptr) {
      const std::size_t col =
          ensure_column(ref.counter, column_name(ref.name, ref.labels));
      std::uint64_t& prev = prev_counter_[ref.counter];
      const std::uint64_t v = ref.counter->value();
      columns_[col].pending = static_cast<double>(v - prev);
      prev = v;
    } else if (ref.gauge != nullptr) {
      const std::size_t col =
          ensure_column(ref.gauge, column_name(ref.name, ref.labels));
      columns_[col].pending = ref.gauge->value();
    } else if (ref.histogram != nullptr) {
      const std::size_t first =
          ensure_hist(ref.histogram, column_name(ref.name, ref.labels));
      sample_histogram(*ref.histogram, first);
    }
  });
  for (const Tracked& t : tracked_) {
    const std::size_t first = ensure_hist(t.hist, t.name);
    sample_histogram(*t.hist, first);
  }

  const std::size_t slot = total_rows_ % config_.capacity;
  times_[slot] = now;
  for (Column& c : columns_) {
    c.ring[slot] = c.pending;
  }
  ++total_rows_;
}

std::size_t Timeline::sample_count() const noexcept {
  return total_rows_ < config_.capacity ? total_rows_ : config_.capacity;
}

std::size_t Timeline::dropped_samples() const noexcept {
  return total_rows_ > config_.capacity ? total_rows_ - config_.capacity : 0;
}

std::optional<std::size_t> Timeline::column_index(
    std::string_view name) const {
  const auto it = column_by_name_.find(std::string(name));
  return it != column_by_name_.end() ? std::optional(it->second)
                                     : std::nullopt;
}

double Timeline::time_at(std::size_t row) const {
  const std::size_t held = sample_count();
  return times_[(total_rows_ - held + row) % config_.capacity];
}

double Timeline::value_at(std::size_t row, std::size_t col) const {
  const std::size_t held = sample_count();
  return columns_[col].ring[(total_rows_ - held + row) % config_.capacity];
}

void Timeline::write_csv(std::ostream& out) const {
  out << "time";
  for (const Column& c : columns_) {
    out << ",\"";
    for (const char ch : c.name) {
      if (ch == '"') {
        out << "\"\"";
      } else {
        out << ch;
      }
    }
    out << '"';
  }
  out << '\n';
  for (std::size_t row = 0; row < sample_count(); ++row) {
    write_num(out, time_at(row));
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      out << ',';
      write_num(out, value_at(row, col));
    }
    out << '\n';
  }
}

void Timeline::write_json(std::ostream& out) const {
  out << "{\"interval_s\":";
  write_num(out, config_.interval_s);
  out << ",\"dropped_samples\":" << dropped_samples();
  out << ",\"time\":[";
  for (std::size_t row = 0; row < sample_count(); ++row) {
    if (row != 0) {
      out << ',';
    }
    write_num(out, time_at(row));
  }
  out << "],\"series\":{";
  for (std::size_t col = 0; col < columns_.size(); ++col) {
    if (col != 0) {
      out << ',';
    }
    write_json_string(out, columns_[col].name);
    out << ":[";
    for (std::size_t row = 0; row < sample_count(); ++row) {
      if (row != 0) {
        out << ',';
      }
      write_num(out, value_at(row, col));
    }
    out << ']';
  }
  out << "}}\n";
}

void Timeline::write_chrome_counters(std::ostream& out, bool& first) const {
  if (sample_count() == 0 || columns_.empty()) {
    return;
  }
  auto emit = [&](auto writer) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    writer();
  };
  emit([&] {
    out << R"({"ph":"M","pid":3,"name":"process_name","args":{"name":)";
    write_json_string(out, "telemetry");
    out << "}}";
  });
  for (std::size_t col = 0; col < columns_.size(); ++col) {
    bool any = false;
    for (std::size_t row = 0; row < sample_count() && !any; ++row) {
      any = value_at(row, col) != 0.0;
    }
    if (!any) {
      continue;  // an all-zero track is visual noise in Perfetto
    }
    for (std::size_t row = 0; row < sample_count(); ++row) {
      emit([&] {
        out << "{\"name\":";
        write_json_string(out, columns_[col].name);
        out << R"(,"cat":"empls","ph":"C","pid":3,"tid":0,"ts":)";
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.4f", time_at(row) * 1e6);
        out << buf << ",\"args\":{\"value\":";
        write_num(out, value_at(row, col));
        out << "}}";
      });
    }
  }
}

}  // namespace empls::obs
