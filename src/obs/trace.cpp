#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "net/mix.hpp"
#include "obs/drop_reason.hpp"

namespace empls::obs {

std::string_view to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kJourney:
      return "journey-begin";
    case SpanKind::kIngress:
      return "ingress";
    case SpanKind::kEngineWait:
      return "engine-wait";
    case SpanKind::kEngineSearch:
      return "engine-search";
    case SpanKind::kEngineBatch:
      return "engine-batch";
    case SpanKind::kLinkQueue:
      return "link-queue";
    case SpanKind::kLinkTransit:
      return "link-transit";
    case SpanKind::kDeliver:
      return "deliver";
    case SpanKind::kDrop:
      return "drop";
  }
  return "?";
}

namespace {

constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// mix64 over the address bits: slab addresses share low-bit structure
// (fixed slot stride), so a strong mix is needed for the
// open-addressing table to probe well.  The golden-gamma pre-add keeps
// the null pointer off the finalizer's 0 → 0 fixed point.
std::size_t hash_ptr(const void* p) noexcept {
  const auto x = reinterpret_cast<std::uintptr_t>(p);
  return static_cast<std::size_t>(
      net::mix64(static_cast<std::uint64_t>(x) + net::kGoldenGamma));
}

}  // namespace

HopTracer::HopTracer(std::size_t capacity) {
  if (capacity == 0) {
    capacity = 1;
  }
  ring_.resize(round_up_pow2(capacity));
  table_.resize(1024);
}

std::size_t HopTracer::probe(const void* key) const noexcept {
  return hash_ptr(key) & (table_.size() - 1);
}

HopTracer::Slot* HopTracer::find(const void* key) noexcept {
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    Slot& s = table_[i];
    if (s.key == key) {
      return &s;
    }
    if (s.key == nullptr) {
      return nullptr;
    }
  }
}

const HopTracer::Slot* HopTracer::find(const void* key) const noexcept {
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    const Slot& s = table_[i];
    if (s.key == key) {
      return &s;
    }
    if (s.key == nullptr) {
      return nullptr;
    }
  }
}

HopTracer::Slot& HopTracer::insert(const void* key) {
  if ((table_used_ + 1) * 2 > table_.size()) {
    grow();
  }
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = probe(key);; i = (i + 1) & mask) {
    Slot& s = table_[i];
    if (s.key == key) {
      return s;
    }
    if (s.key == nullptr) {
      s.key = key;
      ++table_used_;
      return s;
    }
  }
}

void HopTracer::erase(Slot* slot) noexcept {
  // Backward-shift deletion keeps probe chains unbroken without
  // tombstones, so steady-state churn never degrades the table.
  const std::size_t mask = table_.size() - 1;
  std::size_t hole = static_cast<std::size_t>(slot - table_.data());
  std::size_t i = hole;
  for (;;) {
    i = (i + 1) & mask;
    Slot& cand = table_[i];
    if (cand.key == nullptr) {
      break;
    }
    const std::size_t home = probe(cand.key);
    // Move cand back into the hole iff the hole lies on its probe path.
    const bool movable = ((i - home) & mask) >= ((i - hole) & mask);
    if (movable) {
      table_[hole] = cand;
      hole = i;
    }
  }
  table_[hole] = Slot{};
  --table_used_;
}

void HopTracer::grow() {
  std::vector<Slot> old = std::move(table_);
  table_.assign(old.size() * 2, Slot{});
  table_used_ = 0;
  const std::size_t mask = table_.size() - 1;
  for (const Slot& s : old) {
    if (s.key == nullptr) {
      continue;
    }
    for (std::size_t i = probe(s.key);; i = (i + 1) & mask) {
      if (table_[i].key == nullptr) {
        table_[i] = s;
        ++table_used_;
        break;
      }
    }
  }
}

std::uint64_t HopTracer::begin(const void* packet, std::uint32_t flow,
                               std::uint64_t seq, std::uint32_t lane,
                               double ts) {
  if (!enabled_) {
    return 0;
  }
  Slot& s = insert(packet);
  if (s.trace_id == 0) {
    // Fresh slot — a recycled address whose journey already terminated,
    // or a brand-new packet.  A non-zero id here means the pool handed
    // the same slab address out again before the previous journey
    // ended; overwriting keeps the table self-healing.
    ++live_;
    if (live_ > live_high_water_) {
      live_high_water_ = live_;
    }
  }
  s.trace_id = ++journeys_;
  s.mark = -1.0;
  record(s.trace_id, SpanKind::kJourney, lane, ts, 0.0,
         static_cast<std::uint16_t>(seq & 0xffff), flow, 0);
  return s.trace_id;
}

std::uint64_t HopTracer::id_of(const void* packet) const noexcept {
  if (!enabled_) {
    return 0;
  }
  const Slot* s = find(packet);
  return s != nullptr ? s->trace_id : 0;
}

void HopTracer::end(const void* packet) noexcept {
  if (!enabled_) {
    return;
  }
  Slot* s = find(packet);
  if (s != nullptr) {
    erase(s);
    --live_;
  }
}

std::uint64_t HopTracer::detach(const void* packet) noexcept {
  if (!enabled_) {
    return 0;
  }
  Slot* s = find(packet);
  if (s == nullptr) {
    return 0;
  }
  const std::uint64_t id = s->trace_id;
  // The slot goes away but the journey stays live: live_ is not
  // decremented, attach() re-binds the same id at the new address.
  erase(s);
  return id;
}

void HopTracer::attach(const void* packet, std::uint64_t trace_id) {
  if (!enabled_ || trace_id == 0) {
    return;
  }
  Slot& s = insert(packet);
  if (s.trace_id != 0) {
    // The destination pool re-issued an address whose journey never
    // terminated; the newcomer wins, mirroring begin()'s self-healing.
    --live_;
  }
  s.trace_id = trace_id;
  s.mark = -1.0;
}

void HopTracer::mark(const void* packet, double ts) noexcept {
  if (!enabled_) {
    return;
  }
  Slot* s = find(packet);
  if (s != nullptr) {
    s->mark = ts;
  }
}

double HopTracer::take_mark(const void* packet) noexcept {
  if (!enabled_) {
    return -1.0;
  }
  Slot* s = find(packet);
  if (s == nullptr) {
    return -1.0;
  }
  const double m = s->mark;
  s->mark = -1.0;
  return m;
}

void HopTracer::record(std::uint64_t trace_id, SpanKind kind,
                       std::uint32_t lane, double ts, double dur,
                       std::uint16_t a, std::uint32_t b,
                       std::uint8_t flags) noexcept {
  if (!enabled_) {
    return;
  }
  TraceRecord& r = ring_[static_cast<std::size_t>(
      total_records_ & (ring_.size() - 1))];
  ++total_records_;
  r.ts = ts;
  r.dur = dur;
  r.trace_id = trace_id;
  r.lane = lane;
  r.b = b;
  r.a = a;
  r.kind = kind;
  r.flags = flags;
}

HopTracer::Stats HopTracer::stats() const noexcept {
  Stats s;
  s.journeys = journeys_;
  s.live = live_;
  s.live_high_water = live_high_water_;
  s.records = total_records_;
  s.dropped_records =
      total_records_ > ring_.size() ? total_records_ - ring_.size() : 0;
  return s;
}

std::vector<TraceRecord> HopTracer::snapshot() const {
  std::vector<TraceRecord> out;
  const std::uint64_t held =
      total_records_ < ring_.size() ? total_records_ : ring_.size();
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = total_records_ - held; i < total_records_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i & (ring_.size() - 1))]);
  }
  return out;
}

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Sim seconds -> microseconds with a fixed format so output is
// byte-stable across runs and platforms.
void write_us(std::ostream& out, double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds * 1e6);
  out << buf;
}

void write_thread_meta(std::ostream& out, int pid, std::size_t tid,
                       std::string_view name, bool& first) {
  if (!first) {
    out << ",\n";
  }
  first = false;
  out << R"({"ph":"M","pid":)" << pid << R"(,"tid":)" << tid
      << R"(,"name":"thread_name","args":{"name":)";
  write_json_string(out, name);
  out << "}}";
}

}  // namespace

void HopTracer::write_chrome_trace(
    std::ostream& out, const std::vector<std::string>& node_names,
    const std::vector<std::string>& link_names,
    const ExtraEventsWriter& extra) const {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto meta_process = [&](int pid, std::string_view name) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << R"({"ph":"M","pid":)" << pid
        << R"(,"name":"process_name","args":{"name":)";
    write_json_string(out, name);
    out << "}}";
  };
  meta_process(1, "routers");
  if (!link_names.empty()) {
    meta_process(2, "links");
  }
  for (std::size_t i = 0; i < node_names.size(); ++i) {
    write_thread_meta(out, 1, i, node_names[i], first);
  }
  for (std::size_t i = 0; i < link_names.size(); ++i) {
    write_thread_meta(out, 2, i, link_names[i], first);
  }

  for (const TraceRecord& r : snapshot()) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const bool on_link = (r.flags & kSpanOnLink) != 0;
    const int pid = on_link ? 2 : 1;
    std::string_view name = to_string(r.kind);
    if (r.kind == SpanKind::kEngineBatch && r.a > 1) {
      name = "shard-handoff";
    }
    out << "{\"name\":";
    write_json_string(out, name);
    out << R"(,"cat":"empls")";
    if (r.kind == SpanKind::kJourney) {
      out << R"(,"ph":"i","s":"t")";
    } else {
      out << R"(,"ph":"X")";
    }
    out << ",\"pid\":" << pid << ",\"tid\":" << r.lane << ",\"ts\":";
    write_us(out, r.ts);
    if (r.kind != SpanKind::kJourney) {
      out << ",\"dur\":";
      write_us(out, r.dur);
    }
    out << ",\"args\":{";
    bool first_arg = true;
    auto arg_u64 = [&](const char* key, std::uint64_t v) {
      if (!first_arg) {
        out << ',';
      }
      first_arg = false;
      out << '"' << key << "\":" << v;
    };
    auto arg_str = [&](const char* key, std::string_view v) {
      if (!first_arg) {
        out << ',';
      }
      first_arg = false;
      out << '"' << key << "\":";
      write_json_string(out, v);
    };
    if (r.trace_id != 0) {
      arg_u64("trace", r.trace_id);
    }
    switch (r.kind) {
      case SpanKind::kJourney:
        arg_u64("flow", r.b);
        arg_u64("seq", r.a);
        break;
      case SpanKind::kIngress:
        arg_u64("level", r.a);
        arg_u64("key", r.b);
        arg_u64("labeled", (r.flags & kSpanLabeled) != 0 ? 1 : 0);
        break;
      case SpanKind::kEngineSearch:
        arg_u64("level", r.a);
        arg_u64("cycles", r.b);
        arg_u64("hit", (r.flags & kSpanHit) != 0 ? 1 : 0);
        arg_u64("cached", (r.flags & kSpanCached) != 0 ? 1 : 0);
        break;
      case SpanKind::kEngineBatch:
        arg_u64("parallelism", r.a);
        arg_u64("packets", r.b);
        break;
      case SpanKind::kLinkTransit:
        arg_u64("bytes", r.b);
        break;
      case SpanKind::kDrop:
        arg_str("reason",
                to_string(static_cast<DropReason>(
                    r.a < kDropReasonCount ? r.a
                                           : static_cast<std::uint16_t>(
                                                 DropReason::kOther))));
        break;
      case SpanKind::kEngineWait:
      case SpanKind::kLinkQueue:
      case SpanKind::kDeliver:
        break;
    }
    out << "}}";
  }
  if (extra) {
    extra(out, first);
  }
  out << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace empls::obs
