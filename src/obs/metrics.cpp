#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace empls::obs {

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the target sample, 1-based; q=1 maps to the last sample.
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // Clamp to the observed max so p100 is exact.
      const std::uint64_t upper = bucket_upper(b);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

std::uint64_t Histogram::quantile_of(
    const std::array<std::uint64_t, kBuckets>& counts, double q) noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return bucket_upper(b);
    }
  }
  return bucket_upper(kBuckets - 1);
}

namespace {

const char* kind_name(std::uint8_t k) noexcept {
  switch (k) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family_of(std::string_view name,
                                                   Kind kind,
                                                   std::string_view help) {
  for (Family& f : families_) {
    if (f.name == name) {
      if (f.kind != kind) {
        throw std::invalid_argument(
            "metric family '" + f.name + "' already registered as " +
            kind_name(static_cast<std::uint8_t>(f.kind)) +
            ", cannot re-register as " +
            kind_name(static_cast<std::uint8_t>(kind)));
      }
      if (f.help.empty() && !help.empty()) {
        f.help = std::string(help);
      }
      return f;
    }
  }
  Family f;
  f.name = std::string(name);
  f.help = std::string(help);
  f.kind = kind;
  families_.push_back(std::move(f));
  return families_.back();
}

const MetricsRegistry::Series* MetricsRegistry::find_series(
    std::string_view name, Kind kind, std::string_view labels) const {
  for (const Family& f : families_) {
    if (f.name != name || f.kind != kind) {
      continue;
    }
    for (const Series& s : f.series) {
      if (s.labels == labels) {
        return &s;
      }
    }
  }
  return nullptr;
}

std::size_t MetricsRegistry::series_index(std::string_view name, Kind kind,
                                          std::string_view labels,
                                          std::string_view help) {
  Family& f = family_of(name, kind, help);
  for (const Series& s : f.series) {
    if (s.labels == labels) {
      return s.index;
    }
  }
  Series s;
  s.labels = std::string(labels);
  switch (kind) {
    case Kind::kCounter:
      s.index = counters_.size();
      counters_.emplace_back();
      break;
    case Kind::kGauge:
      s.index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      s.index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  f.series.push_back(std::move(s));
  return f.series.back().index;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels,
                                  std::string_view help) {
  return counters_[series_index(name, Kind::kCounter, labels, help)];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels,
                              std::string_view help) {
  return gauges_[series_index(name, Kind::kGauge, labels, help)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels,
                                      std::string_view help) {
  return histograms_[series_index(name, Kind::kHistogram, labels, help)];
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             std::string_view labels) const {
  const Series* s = find_series(name, Kind::kCounter, labels);
  return s != nullptr ? &counters_[s->index] : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         std::string_view labels) const {
  const Series* s = find_series(name, Kind::kGauge, labels);
  return s != nullptr ? &gauges_[s->index] : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name, std::string_view labels) const {
  const Series* s = find_series(name, Kind::kHistogram, labels);
  return s != nullptr ? &histograms_[s->index] : nullptr;
}

std::size_t MetricsRegistry::series_count() const noexcept {
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void write_series_head(std::ostream& out, const std::string& name,
                       const std::string& suffix, const std::string& labels,
                       const char* extra_label = nullptr) {
  out << name << suffix;
  if (!labels.empty() || extra_label != nullptr) {
    out << '{' << labels;
    if (extra_label != nullptr) {
      if (!labels.empty()) {
        out << ',';
      }
      out << extra_label;
    }
    out << '}';
  }
}

// Gauges are doubles; fixed "%.10g" keeps the rendering deterministic
// and round-trippable without trailing-zero noise.
void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out << buf;
}

// HELP text escaping per the exposition format: backslash and line
// feed are the only characters a parser cannot take literally.
void write_escaped_help(std::ostream& out, const std::string& help) {
  for (const char c : help) {
    if (c == '\\') {
      out << "\\\\";
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  for (const Family& f : families_) {
    if (!f.help.empty()) {
      out << "# HELP " << f.name << ' ';
      write_escaped_help(out, f.help);
      out << '\n';
    }
    const char* type = f.kind == Kind::kCounter    ? "counter"
                       : f.kind == Kind::kGauge    ? "gauge"
                                                   : "histogram";
    out << "# TYPE " << f.name << ' ' << type << '\n';
    for (const Series& s : f.series) {
      switch (f.kind) {
        case Kind::kCounter:
          write_series_head(out, f.name, "", s.labels);
          out << ' ' << counters_[s.index].value() << '\n';
          break;
        case Kind::kGauge:
          write_series_head(out, f.name, "", s.labels);
          out << ' ';
          write_double(out, gauges_[s.index].value());
          out << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = histograms_[s.index];
          // Emit buckets only up to the highest non-empty one; the
          // +Inf bucket always closes the series.
          std::size_t top = 0;
          for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            if (h.buckets()[b] != 0) {
              top = b;
            }
          }
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b <= top && h.count() != 0; ++b) {
            cum += h.buckets()[b];
            char le[40];
            std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"",
                          Histogram::bucket_upper(b));
            write_series_head(out, f.name, "_bucket", s.labels, le);
            out << ' ' << cum << '\n';
          }
          write_series_head(out, f.name, "_bucket", s.labels, "le=\"+Inf\"");
          out << ' ' << h.count() << '\n';
          write_series_head(out, f.name, "_sum", s.labels);
          out << ' ' << h.sum() << '\n';
          write_series_head(out, f.name, "_count", s.labels);
          out << ' ' << h.count() << '\n';
          break;
        }
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace empls::obs
