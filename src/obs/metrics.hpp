// Unified metrics registry: named counters, gauges, and fixed-bucket
// log2 HDR histograms, exported as a Prometheus text-format snapshot.
//
// Producers register instruments once (handles are pointer-stable for
// the registry's lifetime) and bump them on the hot path; record() on a
// Histogram is two increments and a bit_width, cheap enough for
// per-packet use.  Export is a pull-style snapshot: nothing in here
// formats text until write_prometheus() runs, so an idle registry costs
// a few cache lines and no cycles.
//
// Instruments are identified by (family name, label set).  Families
// keep first-registration order so the exported text is deterministic
// for a deterministic simulation — a property the golden-trace tests
// rely on.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace empls::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2 HDR histogram over non-negative integer samples (hardware
/// cycles, nanoseconds of sim time).  Bucket b holds samples whose
/// bit_width is b: bucket 0 is exactly {0} and bucket b >= 1 covers
/// [2^(b-1), 2^b - 1].  Fixed storage, no allocation after
/// construction, ~2x worst-case relative error on quantiles — the
/// right trade for tails spanning nine decades.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(u64) in [0, 64]

  void record(std::uint64_t v) noexcept {
    // Hot path: per-packet on every instrumented hop.  min_ starts at
    // ~0 so the first-sample case needs no branch (both updates are
    // conditional moves).
    counts_[static_cast<std::size_t>(std::bit_width(v))] += 1;
    sum_ += v;
    ++count_;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return counts_;
  }

  /// Inclusive upper bound of bucket b (0, 1, 3, 7, ..., 2^63-1, 2^64-1).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t b) noexcept {
    if (b == 0) {
      return 0;
    }
    if (b >= 64) {
      return ~std::uint64_t{0};
    }
    return (std::uint64_t{1} << b) - 1;
  }

  /// Bucket-resolution quantile: the upper bound of the bucket holding
  /// the q-th sample (q in [0, 1]).  0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Quantile over a caller-supplied bucket array — the timeline uses
  /// this on *delta* snapshots (this interval's counts = now minus the
  /// previous sample) to get windowed quantiles out of cumulative
  /// buckets.  No observed-max clamp is possible for a window, so the
  /// result is the raw bucket upper bound (same ~2x relative error).
  [[nodiscard]] static std::uint64_t quantile_of(
      const std::array<std::uint64_t, kBuckets>& counts, double q) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Registry of named instruments.  Register with counter() / gauge() /
/// histogram(); the same (name, labels) pair always returns the same
/// instrument, so idempotent re-registration is safe — but re-using a
/// family name as a *different* kind throws std::invalid_argument (the
/// exported text would be self-contradictory).  Labels are a
/// pre-rendered Prometheus label body without braces, e.g.
/// `router="R3"` or `link="A->B",dir="tx"`; empty for a bare series.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       std::string_view help = {});

  /// Lookup without registering; nullptr when absent (or a different kind).
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            std::string_view labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        std::string_view labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      std::string_view name, std::string_view labels = {}) const;

  /// Total registered series across all families.
  [[nodiscard]] std::size_t series_count() const noexcept;

  /// One series as seen by visit(): exactly one instrument pointer is
  /// non-null, matching the family's kind.  `labels` is the raw label
  /// body (no braces), empty for a bare series.
  struct SeriesRef {
    std::string_view name;
    std::string_view labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Walk every registered series in registration order (the export
  /// order).  The timeline sampler is built on this.
  template <typename F>
  void visit(F&& f) const {
    for (const Family& fam : families_) {
      for (const Series& s : fam.series) {
        SeriesRef ref;
        ref.name = fam.name;
        ref.labels = s.labels;
        switch (fam.kind) {
          case Kind::kCounter:
            ref.counter = &counters_[s.index];
            break;
          case Kind::kGauge:
            ref.gauge = &gauges_[s.index];
            break;
          case Kind::kHistogram:
            ref.histogram = &histograms_[s.index];
            break;
        }
        f(ref);
      }
    }
  }

  /// Prometheus text exposition format, families in registration order.
  void write_prometheus(std::ostream& out) const;
  [[nodiscard]] std::string prometheus_text() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    std::string labels;
    std::size_t index = 0;  // into the deque matching the family kind
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Series> series;
  };

  Family& family_of(std::string_view name, Kind kind, std::string_view help);
  [[nodiscard]] const Series* find_series(std::string_view name, Kind kind,
                                          std::string_view labels) const;
  std::size_t series_index(std::string_view name, Kind kind,
                           std::string_view labels, std::string_view help);

  // Deques for pointer stability of handed-out instrument references.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Family> families_;  // registration order == export order
};

}  // namespace empls::obs
