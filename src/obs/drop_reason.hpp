// Canonical taxonomy of packet-discard causes.
//
// Every discard site in the simulator — router processing (malformed
// wire form, policer, engine-queue overrun, lookup miss, TTL expiry,
// inconsistent operation, unresolvable next hop) and link transmission
// (offered while down, CoS queue overflow) — maps onto one DropReason,
// so the scenario report and the metrics snapshot can break losses down
// per cause instead of a single aggregate.  The string forms are the
// exact reason strings the discard/drop handlers have always carried
// (OAM parses them), so from_string() round-trips the legacy channel.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace empls::obs {

enum class DropReason : std::uint8_t {
  kInfoBaseMiss = 0,  // no information-base entry for the key
  kTtlExpired,        // TTL reached zero after the decrement
  kInconsistent,      // VERIFY INFO failure: bad op / overflow / type
  kNoRoute,           // engine resolved, but no next hop programmed
  kMalformed,         // corrupt wire form (failed serialize/parse check)
  kPolicer,           // ingress token bucket out of profile
  kEngineOverrun,     // engine input queue full (router saturated)
  kQueueOverflow,     // link CoS queue full (or RED early drop)
  kLinkDown,          // offered to a failed link (fault-injected)
  // Ingress-guard refusals (net::IngressGuard): each protection the
  // guard composes stamps its own reason, so an attack campaign's
  // traffic is fully attributable in the drop partition.
  kReservedLabel,        // top label in the reserved range 0..15
  kSpoofedLabel,         // off-domain label with no programmed binding
  kTtlRateLimited,       // TTL-expiry processing budget exceeded
  kReprogramRateLimited, // info-base reprogram admission refused
  kOverloadShed,         // graceful degradation shed (lowest CoS first)
  kOther,             // unrecognised reason string
};

inline constexpr std::size_t kDropReasonCount = 15;

/// Per-reason tally, indexed by DropReason.
using DropCounts = std::array<std::uint64_t, kDropReasonCount>;

[[nodiscard]] constexpr std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kInfoBaseMiss:
      return "no-label-binding";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kInconsistent:
      return "inconsistent-operation";
    case DropReason::kNoRoute:
      return "no-next-hop";
    case DropReason::kMalformed:
      return "malformed";
    case DropReason::kPolicer:
      return "policer";
    case DropReason::kEngineOverrun:
      return "engine-overrun";
    case DropReason::kQueueOverflow:
      return "queue-full";
    case DropReason::kLinkDown:
      return "link-down";
    case DropReason::kReservedLabel:
      return "reserved-label";
    case DropReason::kSpoofedLabel:
      return "spoofed-label";
    case DropReason::kTtlRateLimited:
      return "ttl-rate-limited";
    case DropReason::kReprogramRateLimited:
      return "reprogram-rate-limited";
    case DropReason::kOverloadShed:
      return "overload-shed";
    case DropReason::kOther:
      return "other";
  }
  return "?";
}

[[nodiscard]] constexpr DropReason drop_reason_from_string(
    std::string_view s) noexcept {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto r = static_cast<DropReason>(i);
    if (s == to_string(r)) {
      return r;
    }
  }
  return DropReason::kOther;
}

}  // namespace empls::obs
