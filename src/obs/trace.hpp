// Per-packet hop tracing: a side-band journey table plus a bounded
// binary ring of compact span records, exported as Chrome-trace JSON.
//
// Design constraints, in order:
//   * zero overhead when disabled — call sites guard on enabled(),
//     so a wired-but-off tracer costs one predictable branch per site;
//   * no per-packet allocation — the journey table is an open-
//     addressing flat hash keyed by the packet's pool-slab address
//     (pointer-stable across hops in pooled mode), grown only until
//     it covers the pool's live high-water mark;
//   * bounded memory — spans land in a fixed ring (flight-recorder
//     style): when full, the oldest records are overwritten and
//     counted in Stats::dropped_records;
//   * deterministic output — record contents carry only sim-time,
//     deterministic trace ids, and topology indices, never addresses,
//     so two runs of a seeded scenario serialize byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace empls::obs {

enum class SpanKind : std::uint8_t {
  kJourney = 0,   // journey begin marker (a = seq low bits, b = flow)
  kIngress,       // ingress parse + classification (a = level, b = key)
  kEngineWait,    // time spent queued for the label engine
  kEngineSearch,  // engine search/update (a = level, b = hw cycles)
  kEngineBatch,   // batch / shard handoff (a = parallelism, b = packets)
  kLinkQueue,     // time spent in a link's CoS queues
  kLinkTransit,   // serialisation + propagation (b = bytes)
  kDeliver,       // packet left the MPLS domain at this node
  kDrop,          // packet discarded (a = DropReason)
};

[[nodiscard]] std::string_view to_string(SpanKind k) noexcept;

// TraceRecord::flags bits.
inline constexpr std::uint8_t kSpanOnLink = 0x01;  // lane is a link index
inline constexpr std::uint8_t kSpanHit = 0x02;     // engine lookup hit
inline constexpr std::uint8_t kSpanCached = 0x04;  // served by flow cache
inline constexpr std::uint8_t kSpanLabeled = 0x08; // packet carried a stack

/// One span in the flight-recorder ring.  40 bytes, POD, and free of
/// pointers: the binary ring itself is a valid dump format.
struct TraceRecord {
  double ts = 0.0;           // span start, sim seconds
  double dur = 0.0;          // span duration, sim seconds
  std::uint64_t trace_id = 0;  // journey id; 0 = component-level span
  std::uint32_t lane = 0;      // NodeId, or link index when kSpanOnLink
  std::uint32_t b = 0;         // kind-specific payload (see SpanKind)
  std::uint16_t a = 0;         // kind-specific payload (see SpanKind)
  SpanKind kind = SpanKind::kJourney;
  std::uint8_t flags = 0;
};

class HopTracer {
 public:
  /// `capacity` bounds the ring (records, not bytes); it is rounded up
  /// to a power of two.  Default ~256k records ≈ 10 MiB.
  explicit HopTracer(std::size_t capacity = std::size_t{1} << 18);

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // --- journey side-band (keyed by the packet's stable address) ---

  /// Start a journey for `packet`: assigns the next deterministic trace
  /// id, records a kJourney span, and returns the id.  An existing
  /// entry for the same address (recycled pool slot whose journey never
  /// terminated) is overwritten.  Returns 0 when disabled.
  std::uint64_t begin(const void* packet, std::uint32_t flow,
                      std::uint64_t seq, std::uint32_t lane, double ts);

  /// Journey id for `packet`, 0 when untracked (or disabled).
  [[nodiscard]] std::uint64_t id_of(const void* packet) const noexcept;

  /// Terminate the journey (delivered or dropped); frees the slot.
  void end(const void* packet) noexcept;

  /// Re-key a live journey across a domain-boundary handoff, where the
  /// packet is copied into another pool and its address changes.
  /// detach() frees the table slot but keeps the journey live and
  /// returns its id (0 when untracked); attach() binds that id to the
  /// packet's new address on the far side.  Only the deterministic
  /// merge may use these — the table is single-threaded.
  std::uint64_t detach(const void* packet) noexcept;
  void attach(const void* packet, std::uint64_t trace_id);

  /// Stash / consume a timestamp against the journey — used for spans
  /// whose start and end are observed at different call sites (link
  /// queue wait).  take_mark() returns a negative value when unset.
  void mark(const void* packet, double ts) noexcept;
  double take_mark(const void* packet) noexcept;

  // --- span recording ---

  void record(std::uint64_t trace_id, SpanKind kind, std::uint32_t lane,
              double ts, double dur, std::uint16_t a = 0, std::uint32_t b = 0,
              std::uint8_t flags = 0) noexcept;

  struct Stats {
    std::uint64_t journeys = 0;         // begin() calls
    std::uint64_t live = 0;             // journeys not yet ended
    std::uint64_t live_high_water = 0;  // peak concurrent journeys
    std::uint64_t records = 0;          // record() calls
    std::uint64_t dropped_records = 0;  // overwritten by ring wrap
  };
  [[nodiscard]] Stats stats() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Records currently held, oldest first (at most capacity()).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Chrome trace-event JSON (the `traceEvents` array format), loadable
  /// in Perfetto / chrome://tracing.  Routers render as pid 1 with one
  /// thread per node, links as pid 2 with one thread per directed link;
  /// the name tables index by NodeId / link index respectively.
  /// `extra`, when set, is called after the span events to append more
  /// events into the same array (the timeline merges its counter
  /// tracks this way); `first` carries the comma state.
  using ExtraEventsWriter =
      std::function<void(std::ostream& out, bool& first)>;
  void write_chrome_trace(std::ostream& out,
                          const std::vector<std::string>& node_names,
                          const std::vector<std::string>& link_names,
                          const ExtraEventsWriter& extra = {}) const;

 private:
  struct Slot {
    const void* key = nullptr;  // nullptr = empty
    std::uint64_t trace_id = 0;
    double mark = -1.0;
  };

  [[nodiscard]] std::size_t probe(const void* key) const noexcept;
  Slot* find(const void* key) noexcept;
  [[nodiscard]] const Slot* find(const void* key) const noexcept;
  Slot& insert(const void* key);
  void erase(Slot* slot) noexcept;
  void grow();

  bool enabled_ = false;
  std::vector<TraceRecord> ring_;
  std::uint64_t total_records_ = 0;

  std::vector<Slot> table_;  // open addressing, power-of-two size
  std::size_t table_used_ = 0;

  std::uint64_t journeys_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t live_high_water_ = 0;
};

}  // namespace empls::obs
