// Software forwarding tables kept by the routing functionality.
//
// Standard MPLS data structures (RFC 3031 terminology):
//   * NHLFE — Next Hop Label Forwarding Entry: the operation to perform,
//     the outgoing label (for PUSH/SWAP), next hop and outgoing interface.
//   * ILM — Incoming Label Map: incoming label → NHLFE (used by LSRs).
//   * FTN — FEC-To-NHLFE: FEC id → NHLFE (used by ingress LERs).
//
// These are the control plane's view.  The hardware information base
// (src/hw/info_base.hpp) is the data-plane mirror the routing
// functionality programs from these tables; `to_label_pairs()` produces
// exactly the (index, new label, operation) triples the hardware stores.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mpls/label.hpp"
#include "mpls/operations.hpp"

namespace empls::mpls {

/// Identifies a neighbour port; the network simulator maps this to a
/// link.  kLocalDeliver means the packet leaves the MPLS domain here.
using InterfaceId = std::uint32_t;
inline constexpr InterfaceId kLocalDeliver = 0xFFFFFFFF;

struct Nhlfe {
  LabelOp op = LabelOp::kNop;
  std::uint32_t out_label = 0;  // meaningful for kPush / kSwap
  InterfaceId out_interface = kLocalDeliver;

  friend bool operator==(const Nhlfe&, const Nhlfe&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// One (index, new label, operation) triple as stored in a hardware
/// information-base level (Figure 13 memory components).
struct LabelPair {
  std::uint32_t index = 0;      // packet identifier (level 1) or label
  std::uint32_t new_label = 0;  // 20 bits
  LabelOp op = LabelOp::kNop;

  friend bool operator==(const LabelPair&, const LabelPair&) = default;
};

/// Incoming Label Map: label → NHLFE.
class IlmTable {
 public:
  /// Bind `in_label`; returns the NHLFE it replaced, if any.
  std::optional<Nhlfe> bind(std::uint32_t in_label, const Nhlfe& nhlfe);

  bool unbind(std::uint32_t in_label);

  [[nodiscard]] std::optional<Nhlfe> lookup(std::uint32_t in_label) const;

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  /// The hardware-programming view: (in_label, out_label, op) triples.
  [[nodiscard]] std::vector<LabelPair> to_label_pairs() const;

 private:
  std::unordered_map<std::uint32_t, Nhlfe> map_;
};

/// FEC-To-NHLFE: FEC id → NHLFE (ingress LER only).
class FtnTable {
 public:
  std::optional<Nhlfe> bind(std::uint32_t fec_id, const Nhlfe& nhlfe);

  bool unbind(std::uint32_t fec_id);

  [[nodiscard]] std::optional<Nhlfe> lookup(std::uint32_t fec_id) const;

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  [[nodiscard]] std::vector<LabelPair> to_label_pairs() const;

 private:
  std::unordered_map<std::uint32_t, Nhlfe> map_;
};

/// Allocates locally-unique unreserved labels for LSP setup.  Supports
/// reserving a specific value — the control plane uses this to keep an
/// inner label valid across a tunnel, since the hardware PUSH flow
/// re-pushes the inner label unchanged.
class LabelAllocator {
 public:
  explicit LabelAllocator(std::uint32_t first = kFirstUnreservedLabel)
      : next_(first) {}

  /// Allocate a fresh label; nullopt when the 20-bit space is exhausted.
  std::optional<std::uint32_t> allocate();

  /// Claim a specific label value; false when it is already in use or
  /// out of range.
  bool reserve(std::uint32_t label);

  /// True when `label` is currently allocated.
  [[nodiscard]] bool is_allocated(std::uint32_t label) const {
    return in_use_.contains(label);
  }

  /// Return `label` to the pool.  Releasing a free label is ignored.
  void release(std::uint32_t label);

  [[nodiscard]] std::size_t allocated() const noexcept {
    return in_use_.size();
  }

 private:
  std::uint32_t next_;
  std::unordered_set<std::uint32_t> in_use_;
};

}  // namespace empls::mpls
