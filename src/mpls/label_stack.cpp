#include "mpls/label_stack.hpp"

#include <cassert>
#include <sstream>

namespace empls::mpls {

const LabelEntry& LabelStack::top() const {
  assert(!entries_.empty());
  return entries_.back();
}

const LabelEntry& LabelStack::at(std::size_t i) const {
  assert(i < entries_.size());
  return entries_[entries_.size() - 1 - i];
}

bool LabelStack::push(LabelEntry e) {
  if (full()) {
    return false;
  }
  e.bottom = entries_.empty();
  entries_.push_back(e);
  return true;
}

std::optional<LabelEntry> LabelStack::pop() {
  if (entries_.empty()) {
    return std::nullopt;
  }
  LabelEntry e = entries_.back();
  entries_.pop_back();
  return e;
}

bool LabelStack::rewrite_top(std::uint32_t label, std::uint8_t ttl) {
  if (entries_.empty()) {
    return false;
  }
  entries_.back().label = label & kMaxLabel;
  entries_.back().ttl = ttl;
  return true;
}

std::vector<std::uint8_t> LabelStack::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(entries_.size() * 4);
  // Wire order is top first.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const std::uint32_t w = encode(*it);
    out.push_back(static_cast<std::uint8_t>(w >> 24));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w));
  }
  return out;
}

std::optional<LabelStack> LabelStack::parse(std::span<const std::uint8_t> bytes,
                                            std::size_t capacity) {
  std::vector<LabelEntry> top_first;
  std::size_t off = 0;
  for (;;) {
    if (off + 4 > bytes.size()) {
      return std::nullopt;  // truncated: ran out before an S bit
    }
    const std::uint32_t w = (static_cast<std::uint32_t>(bytes[off]) << 24) |
                            (static_cast<std::uint32_t>(bytes[off + 1]) << 16) |
                            (static_cast<std::uint32_t>(bytes[off + 2]) << 8) |
                            static_cast<std::uint32_t>(bytes[off + 3]);
    off += 4;
    top_first.push_back(decode(w));
    if (top_first.back().bottom) {
      break;
    }
    if (top_first.size() > capacity) {
      return std::nullopt;
    }
  }
  if (top_first.size() > capacity) {
    return std::nullopt;
  }
  LabelStack stack(capacity);
  for (auto it = top_first.rbegin(); it != top_first.rend(); ++it) {
    stack.push(*it);  // push() re-derives S bits bottom-up
  }
  return stack;
}

bool LabelStack::s_bit_invariant_holds() const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const bool expect_bottom = (i == 0);
    if (entries_[i].bottom != expect_bottom) {
      return false;
    }
  }
  return true;
}

std::string LabelStack::to_string() const {
  std::ostringstream out;
  out << "stack[" << entries_.size() << "]{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << "top-" << i << ": " << mpls::to_string(at(i));
  }
  out << '}';
  return out.str();
}

}  // namespace empls::mpls
