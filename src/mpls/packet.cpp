#include "mpls/packet.hpp"

#include <charconv>
#include <sstream>

namespace empls::mpls {

// Wire format (big-endian), deliberately close to "L2 tag + shim + IPv4":
//
//   offset  size  field
//   0       1     l2 type
//   1       1     flags: bit0 = labeled (shim present)
//   2       1     cos
//   3       1     ip ttl
//   4       4     src address
//   8       4     dst address
//   12      2     shim length in bytes (0 when unlabeled)
//   14      2     payload length in bytes
//   16      -     shim (label stack, top first), then payload

std::string_view to_string(L2Type t) noexcept {
  switch (t) {
    case L2Type::kEthernet:
      return "Ethernet";
    case L2Type::kAtm:
      return "ATM";
    case L2Type::kFrameRelay:
      return "FrameRelay";
  }
  return "?";
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= text.size() || text[pos] != '.') {
        return std::nullopt;
      }
      ++pos;
    }
    unsigned v = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin || v > 255) {
      return std::nullopt;
    }
    pos += static_cast<std::size_t>(ptr - begin);
    value = (value << 8) | v;
  }
  if (pos != text.size()) {
    return std::nullopt;
  }
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  std::ostringstream out;
  out << ((value >> 24) & 0xFF) << '.' << ((value >> 16) & 0xFF) << '.'
      << ((value >> 8) & 0xFF) << '.' << (value & 0xFF);
  return out.str();
}

std::size_t Packet::wire_size() const noexcept {
  return kPacketHeaderBytes + stack.wire_size() + payload.size();
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t off) {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

}  // namespace

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  out.push_back(static_cast<std::uint8_t>(l2));
  out.push_back(is_labeled() ? 1 : 0);
  out.push_back(cos);
  out.push_back(ip_ttl);
  put_u32(out, src.value);
  put_u32(out, dst.value);
  put_u16(out, static_cast<std::uint16_t>(stack.wire_size()));
  put_u16(out, static_cast<std::uint16_t>(payload.size()));
  const auto shim = stack.serialize();
  out.insert(out.end(), shim.begin(), shim.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kPacketHeaderBytes) {
    return std::nullopt;
  }
  if (bytes[0] > static_cast<std::uint8_t>(L2Type::kFrameRelay)) {
    return std::nullopt;
  }
  Packet p;
  p.l2 = static_cast<L2Type>(bytes[0]);
  const bool labeled = (bytes[1] & 1) != 0;
  p.cos = bytes[2];
  p.ip_ttl = bytes[3];
  p.src = Ipv4Address{get_u32(bytes, 4)};
  p.dst = Ipv4Address{get_u32(bytes, 8)};
  const std::size_t shim_len = get_u16(bytes, 12);
  const std::size_t payload_len = get_u16(bytes, 14);
  if (bytes.size() != kPacketHeaderBytes + shim_len + payload_len) {
    return std::nullopt;
  }
  if (labeled != (shim_len > 0) || shim_len % 4 != 0) {
    return std::nullopt;
  }
  if (labeled) {
    auto stack =
        LabelStack::parse(bytes.subspan(kPacketHeaderBytes, shim_len));
    if (!stack || stack->wire_size() != shim_len) {
      return std::nullopt;
    }
    p.stack = *std::move(stack);
  }
  const auto payload = bytes.subspan(kPacketHeaderBytes + shim_len);
  p.payload.assign(payload.begin(), payload.end());
  return p;
}

std::string Packet::to_string() const {
  std::ostringstream out;
  out << "packet{" << mpls::to_string(l2) << ' ' << src.to_string() << " -> "
      << dst.to_string() << " cos=" << static_cast<unsigned>(cos)
      << " ttl=" << static_cast<unsigned>(ip_ttl) << ' ' << stack.to_string()
      << " payload=" << payload.size() << "B}";
  return out.str();
}

}  // namespace empls::mpls
