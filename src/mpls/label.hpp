// MPLS label stack entry (Figure 5 of the paper; RFC 3032 wire layout).
//
//   | label (20 bits) | CoS (3 bits) | S (1 bit) | TTL (8 bits) |
//    31            12   11         9   8           7           0
//
// The paper calls the 3-bit field "CoS" (the RFC's EXP/Traffic Class);
// this library keeps the paper's name.  The embedded implementation never
// modifies CoS bits; the S bit marks the bottom of the stack; the TTL is
// decremented at each router and the packet is discarded at zero.
#pragma once

#include <cstdint>
#include <string>

namespace empls::mpls {

/// Field widths of a label stack entry.
inline constexpr unsigned kLabelBits = 20;
inline constexpr unsigned kCosBits = 3;
inline constexpr unsigned kTtlBits = 8;

inline constexpr std::uint32_t kMaxLabel = (1u << kLabelBits) - 1;
inline constexpr std::uint8_t kMaxCos = (1u << kCosBits) - 1;
inline constexpr std::uint8_t kMaxTtl = 0xFF;

/// Reserved label values (RFC 3032 §2.1).
inline constexpr std::uint32_t kLabelIpv4ExplicitNull = 0;
inline constexpr std::uint32_t kLabelRouterAlert = 1;
inline constexpr std::uint32_t kLabelIpv6ExplicitNull = 2;
inline constexpr std::uint32_t kLabelImplicitNull = 3;
inline constexpr std::uint32_t kFirstUnreservedLabel = 16;

/// One 32-bit label stack entry.
struct LabelEntry {
  std::uint32_t label = 0;  // 20 bits
  std::uint8_t cos = 0;     // 3 bits
  bool bottom = false;      // S bit
  std::uint8_t ttl = 0;     // 8 bits

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Pack an entry into its 32-bit wire form.  Fields wider than their
/// declared width are truncated, as a hardware register would.
[[nodiscard]] std::uint32_t encode(const LabelEntry& e) noexcept;

/// Unpack a 32-bit wire word.
[[nodiscard]] LabelEntry decode(std::uint32_t word) noexcept;

/// True when every field is within its declared width (no truncation
/// would occur on encode).
[[nodiscard]] bool is_well_formed(const LabelEntry& e) noexcept;

/// True for the reserved label range 0..15 (RFC 3032 §2.1).
[[nodiscard]] constexpr bool is_reserved_label(std::uint32_t label) noexcept {
  return label < kFirstUnreservedLabel;
}

/// "label=42 cos=5 S=1 ttl=64" — for logs, examples and test diagnostics.
[[nodiscard]] std::string to_string(const LabelEntry& e);

}  // namespace empls::mpls
