#include "mpls/label.hpp"

#include <sstream>

namespace empls::mpls {

std::uint32_t encode(const LabelEntry& e) noexcept {
  std::uint32_t w = 0;
  w |= (e.label & kMaxLabel) << 12;
  w |= static_cast<std::uint32_t>(e.cos & kMaxCos) << 9;
  w |= static_cast<std::uint32_t>(e.bottom ? 1 : 0) << 8;
  w |= e.ttl;
  return w;
}

LabelEntry decode(std::uint32_t word) noexcept {
  LabelEntry e;
  e.label = (word >> 12) & kMaxLabel;
  e.cos = static_cast<std::uint8_t>((word >> 9) & kMaxCos);
  e.bottom = ((word >> 8) & 1) != 0;
  e.ttl = static_cast<std::uint8_t>(word & 0xFF);
  return e;
}

bool is_well_formed(const LabelEntry& e) noexcept {
  return e.label <= kMaxLabel && e.cos <= kMaxCos;
}

std::string to_string(const LabelEntry& e) {
  std::ostringstream out;
  out << "label=" << e.label << " cos=" << static_cast<unsigned>(e.cos)
      << " S=" << (e.bottom ? 1 : 0) << " ttl=" << static_cast<unsigned>(e.ttl);
  return out.str();
}

}  // namespace empls::mpls
