#include "mpls/fec.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace empls::mpls {

namespace {

std::uint32_t prefix_mask(std::uint8_t length) noexcept {
  return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
}

/// Bit `depth` of `addr`, counted from the most significant bit.
bool addr_bit(std::uint32_t addr, unsigned depth) noexcept {
  return ((addr >> (31 - depth)) & 1) != 0;
}

}  // namespace

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    return std::nullopt;
  }
  auto net = Ipv4Address::parse(text.substr(0, slash));
  if (!net) {
    return std::nullopt;
  }
  unsigned len = 0;
  const char* begin = text.data() + slash + 1;
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, len);
  if (ec != std::errc{} || ptr != end || ptr == begin || len > 32) {
    return std::nullopt;
  }
  return Prefix{*net, static_cast<std::uint8_t>(len)}.canonical();
}

bool Prefix::contains(Ipv4Address addr) const noexcept {
  const std::uint32_t m = prefix_mask(length);
  return (addr.value & m) == (network.value & m);
}

Prefix Prefix::canonical() const noexcept {
  return Prefix{Ipv4Address{network.value & prefix_mask(length)}, length};
}

std::string Prefix::to_string() const {
  std::ostringstream out;
  out << network.to_string() << '/' << static_cast<unsigned>(length);
  return out.str();
}

struct FecTable::Node {
  std::unique_ptr<Node> child[2];
  std::optional<std::uint32_t> fec_id;
};

FecTable::FecTable() : root_(std::make_unique<Node>()) {}
FecTable::~FecTable() = default;
FecTable::FecTable(FecTable&&) noexcept = default;
FecTable& FecTable::operator=(FecTable&&) noexcept = default;

std::optional<std::uint32_t> FecTable::insert(const Prefix& prefix,
                                              std::uint32_t fec_id) {
  const Prefix p = prefix.canonical();
  Node* node = root_.get();
  for (unsigned depth = 0; depth < p.length; ++depth) {
    const int b = addr_bit(p.network.value, depth) ? 1 : 0;
    if (!node->child[b]) {
      node->child[b] = std::make_unique<Node>();
    }
    node = node->child[b].get();
  }
  const auto previous = node->fec_id;
  node->fec_id = fec_id;
  if (!previous) {
    ++size_;
  }
  return previous;
}

bool FecTable::erase(const Prefix& prefix) {
  const Prefix p = prefix.canonical();
  Node* node = root_.get();
  for (unsigned depth = 0; depth < p.length; ++depth) {
    const int b = addr_bit(p.network.value, depth) ? 1 : 0;
    if (!node->child[b]) {
      return false;
    }
    node = node->child[b].get();
  }
  if (!node->fec_id) {
    return false;
  }
  node->fec_id.reset();
  --size_;
  return true;
}

std::optional<std::uint32_t> FecTable::lookup(Ipv4Address addr) const {
  const Node* node = root_.get();
  std::optional<std::uint32_t> best = node->fec_id;
  for (unsigned depth = 0; depth < 32 && node != nullptr; ++depth) {
    const int b = addr_bit(addr.value, depth) ? 1 : 0;
    node = node->child[b].get();
    if (node != nullptr && node->fec_id) {
      best = node->fec_id;
    }
  }
  return best;
}

std::optional<std::uint32_t> FecTable::lookup_exact(
    const Prefix& prefix) const {
  const Prefix p = prefix.canonical();
  const Node* node = root_.get();
  for (unsigned depth = 0; depth < p.length; ++depth) {
    const int b = addr_bit(p.network.value, depth) ? 1 : 0;
    node = node->child[b].get();
    if (node == nullptr) {
      return std::nullopt;
    }
  }
  return node->fec_id;
}

std::vector<std::pair<Prefix, std::uint32_t>> FecTable::entries() const {
  std::vector<std::pair<Prefix, std::uint32_t>> out;

  struct Frame {
    const Node* node;
    std::uint32_t net;
    unsigned depth;
  };
  std::vector<Frame> work{{root_.get(), 0, 0}};
  while (!work.empty()) {
    const Frame f = work.back();
    work.pop_back();
    if (f.node == nullptr) {
      continue;
    }
    if (f.node->fec_id) {
      out.emplace_back(
          Prefix{Ipv4Address{f.net}, static_cast<std::uint8_t>(f.depth)},
          *f.node->fec_id);
    }
    if (f.depth >= 32) {
      continue;
    }
    work.push_back({f.node->child[0].get(), f.net, f.depth + 1});
    work.push_back({f.node->child[1].get(),
                    f.net | (std::uint32_t{1} << (31 - f.depth)), f.depth + 1});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.network.value, a.first.length) <
           std::tie(b.first.network.value, b.first.length);
  });
  return out;
}

}  // namespace empls::mpls
