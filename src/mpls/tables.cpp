#include "mpls/tables.hpp"

#include <algorithm>
#include <sstream>

namespace empls::mpls {

std::string Nhlfe::to_string() const {
  std::ostringstream out;
  out << "nhlfe{" << mpls::to_string(op);
  if (op == LabelOp::kPush || op == LabelOp::kSwap) {
    out << " out_label=" << out_label;
  }
  if (out_interface == kLocalDeliver) {
    out << " -> local";
  } else {
    out << " -> if" << out_interface;
  }
  out << '}';
  return out.str();
}

std::optional<Nhlfe> IlmTable::bind(std::uint32_t in_label,
                                    const Nhlfe& nhlfe) {
  const auto it = map_.find(in_label);
  std::optional<Nhlfe> previous;
  if (it != map_.end()) {
    previous = it->second;
  }
  map_.insert_or_assign(in_label, nhlfe);
  return previous;
}

bool IlmTable::unbind(std::uint32_t in_label) {
  return map_.erase(in_label) > 0;
}

std::optional<Nhlfe> IlmTable::lookup(std::uint32_t in_label) const {
  const auto it = map_.find(in_label);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<LabelPair> IlmTable::to_label_pairs() const {
  std::vector<LabelPair> out;
  out.reserve(map_.size());
  for (const auto& [in_label, nhlfe] : map_) {
    out.push_back(LabelPair{in_label, nhlfe.out_label, nhlfe.op});
  }
  std::sort(out.begin(), out.end(), [](const LabelPair& a, const LabelPair& b) {
    return a.index < b.index;
  });
  return out;
}

std::optional<Nhlfe> FtnTable::bind(std::uint32_t fec_id, const Nhlfe& nhlfe) {
  const auto it = map_.find(fec_id);
  std::optional<Nhlfe> previous;
  if (it != map_.end()) {
    previous = it->second;
  }
  map_.insert_or_assign(fec_id, nhlfe);
  return previous;
}

bool FtnTable::unbind(std::uint32_t fec_id) { return map_.erase(fec_id) > 0; }

std::optional<Nhlfe> FtnTable::lookup(std::uint32_t fec_id) const {
  const auto it = map_.find(fec_id);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<LabelPair> FtnTable::to_label_pairs() const {
  std::vector<LabelPair> out;
  out.reserve(map_.size());
  for (const auto& [fec_id, nhlfe] : map_) {
    out.push_back(LabelPair{fec_id, nhlfe.out_label, nhlfe.op});
  }
  std::sort(out.begin(), out.end(), [](const LabelPair& a, const LabelPair& b) {
    return a.index < b.index;
  });
  return out;
}

std::optional<std::uint32_t> LabelAllocator::allocate() {
  // Scan upward from the cursor, skipping values claimed by reserve().
  while (next_ <= kMaxLabel && in_use_.contains(next_)) {
    ++next_;
  }
  if (next_ > kMaxLabel) {
    return std::nullopt;
  }
  in_use_.insert(next_);
  return next_++;
}

bool LabelAllocator::reserve(std::uint32_t label) {
  if (label < kFirstUnreservedLabel || label > kMaxLabel) {
    return false;
  }
  return in_use_.insert(label).second;
}

void LabelAllocator::release(std::uint32_t label) { in_use_.erase(label); }

}  // namespace empls::mpls
