// Packet representation shared by the packet-processing interfaces and
// the network simulator.
//
// The paper's routers sit between layer-2 networks (Ethernet, ATM, Frame
// Relay) and an MPLS core (Figure 1).  A Packet carries: the layer-2
// technology it arrived from, a simplified IPv4 header (the destination
// address doubles as the paper's *packet identifier* for level-1
// information-base lookups), the MPLS label stack, and an opaque payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpls/label_stack.hpp"

namespace empls::mpls {

/// Layer-2 technologies named by the paper.
enum class L2Type : std::uint8_t {
  kEthernet = 0,
  kAtm = 1,
  kFrameRelay = 2,
};

[[nodiscard]] std::string_view to_string(L2Type t) noexcept;

/// IPv4 address with dotted-quad helpers.
struct Ipv4Address {
  std::uint32_t value = 0;

  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  /// Parse "a.b.c.d"; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;
};

struct Packet {
  L2Type l2 = L2Type::kEthernet;
  Ipv4Address src{};
  Ipv4Address dst{};
  std::uint8_t cos = 0;     // class of service requested by the flow (3 bits)
  std::uint8_t ip_ttl = 64; // network-layer TTL, copied into pushed labels
  LabelStack stack;         // empty outside the MPLS domain
  std::vector<std::uint8_t> payload;

  // Simulation metadata (not serialised).
  std::uint64_t id = 0;       // sequence number assigned by the generator
  double created_at = 0.0;    // simulation time of creation, seconds
  std::uint32_t flow_id = 0;  // traffic-generator flow this belongs to

  /// The paper's packet identifier: "For IP packets, the packet
  /// identifier is typically the destination address."
  [[nodiscard]] std::uint32_t packet_identifier() const noexcept {
    return dst.value;
  }

  [[nodiscard]] bool is_labeled() const noexcept { return !stack.empty(); }

  /// Bytes on the wire: fixed header + shim + payload.
  [[nodiscard]] std::size_t wire_size() const noexcept;

  /// Serialise to the repo's wire format (see packet.cpp for the layout).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a packet produced by serialize(); nullopt on malformed input.
  static std::optional<Packet> parse(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_string() const;
};

/// Serialised fixed-header size in bytes (before shim and payload).
inline constexpr std::size_t kPacketHeaderBytes = 16;

}  // namespace empls::mpls
