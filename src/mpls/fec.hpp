// Forwarding Equivalence Classes.
//
// An ingress LER classifies each unlabeled packet into a FEC — here an
// IPv4 destination prefix — and the FTN table (fec.hpp + tables.hpp) maps
// that FEC to the label operation to apply.  Classification uses
// longest-prefix match over a binary trie, the standard structure a
// software control plane would keep.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpls/packet.hpp"

namespace empls::mpls {

/// IPv4 prefix: the high `length` bits of `network` are significant.
struct Prefix {
  Ipv4Address network{};
  std::uint8_t length = 0;  // 0..32

  /// Parse "a.b.c.d/len".
  static std::optional<Prefix> parse(std::string_view text);

  /// True when `addr` falls inside this prefix.
  [[nodiscard]] bool contains(Ipv4Address addr) const noexcept;

  /// Canonical form: host bits cleared.
  [[nodiscard]] Prefix canonical() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
};

/// Longest-prefix-match table mapping prefixes to a FEC id chosen by the
/// caller (the control plane uses the id to index its FTN entries).
class FecTable {
 public:
  FecTable();
  ~FecTable();
  FecTable(FecTable&&) noexcept;
  FecTable& operator=(FecTable&&) noexcept;
  FecTable(const FecTable&) = delete;
  FecTable& operator=(const FecTable&) = delete;

  /// Insert or overwrite the binding for `prefix`.  Returns the previous
  /// FEC id when one existed.
  std::optional<std::uint32_t> insert(const Prefix& prefix,
                                      std::uint32_t fec_id);

  /// Remove the binding for exactly `prefix` (not covered sub-prefixes).
  bool erase(const Prefix& prefix);

  /// Longest-prefix match; nullopt when no prefix covers `addr`.
  [[nodiscard]] std::optional<std::uint32_t> lookup(Ipv4Address addr) const;

  /// Exact-prefix lookup.
  [[nodiscard]] std::optional<std::uint32_t> lookup_exact(
      const Prefix& prefix) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// All (prefix, fec_id) bindings, in ascending (network, length) order.
  [[nodiscard]] std::vector<std::pair<Prefix, std::uint32_t>> entries() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace empls::mpls
