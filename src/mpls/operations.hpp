// Label operations as stored in the information base.
//
// The operation memory component is 2 bits wide (Figure 13), so exactly
// four operations are encodable.  Figure 14 of the paper shows operation
// value 3 being returned for a stored pair; with alternating operations
// over ten entries this is consistent with the encoding below, which is
// also the natural NOP/PUSH/POP/SWAP order (DESIGN.md §5.1).
#pragma once

#include <cstdint>
#include <string_view>

namespace empls::mpls {

enum class LabelOp : std::uint8_t {
  kNop = 0,   // no operation stored / empty information-base slot
  kPush = 1,  // push a new entry on top of the stack
  kPop = 2,   // remove the top entry
  kSwap = 3,  // replace the top label with the stored new label
};

/// Number of bits the operation memory component provides.
inline constexpr unsigned kOperationBits = 2;

constexpr bool is_valid_op(std::uint8_t raw) noexcept { return raw < 4; }

constexpr std::string_view to_string(LabelOp op) noexcept {
  switch (op) {
    case LabelOp::kNop:
      return "NOP";
    case LabelOp::kPush:
      return "PUSH";
    case LabelOp::kPop:
      return "POP";
    case LabelOp::kSwap:
      return "SWAP";
  }
  return "?";
}

}  // namespace empls::mpls
