// The label stack (Figure 4 of the paper).
//
// Labels are pushed and popped like a stack; the top-most entry is the
// one a router processes.  The paper bounds nesting at three levels
// ("label stacks do not normally exceed two or three labels"), and the
// hardware data path provides exactly three information-base levels, so
// the default capacity is 3.  The S (bottom-of-stack) bit is an invariant
// maintained by this class: set on the deepest entry, clear elsewhere.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpls/label.hpp"

namespace empls::mpls {

class LabelStack {
 public:
  /// Hardware stack depth (three information-base levels).
  static constexpr std::size_t kHardwareDepth = 3;

  explicit LabelStack(std::size_t capacity = kHardwareDepth)
      : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return entries_.size() >= capacity_;
  }

  /// Top-most entry (the one processed at the current router).
  [[nodiscard]] const LabelEntry& top() const;

  /// Entry at depth `i`, 0 = top.
  [[nodiscard]] const LabelEntry& at(std::size_t i) const;

  /// Push `e` on top.  The entry's S bit is overwritten to maintain the
  /// bottom-of-stack invariant.  Returns false (stack unchanged) when the
  /// stack is at capacity — the hardware discards such packets.
  bool push(LabelEntry e);

  /// Pop and return the top entry; nullopt when empty.
  std::optional<LabelEntry> pop();

  /// Replace the top entry's label/TTL in place (used by the POP flow's
  /// "modify the new top stack entry" and by SWAP-style rewrites).
  /// Returns false when empty.
  bool rewrite_top(std::uint32_t label, std::uint8_t ttl);

  /// Discard the packet's labels: reset to empty (Figure 9's
  /// DISCARD PACKET resets the label stack).
  void clear() noexcept { entries_.clear(); }

  /// Wire serialisation: top entry first, 4 bytes per entry, big-endian,
  /// exactly as the shim header appears on the wire (RFC 3032).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a shim header from `bytes`.  Consumes entries until one with
  /// the S bit set; returns nullopt on truncated input, more entries than
  /// `capacity`, or zero entries.
  static std::optional<LabelStack> parse(std::span<const std::uint8_t> bytes,
                                         std::size_t capacity = kHardwareDepth);

  /// Number of bytes serialize() produces.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return entries_.size() * 4;
  }

  /// The S-bit invariant: exactly the deepest entry is marked bottom.
  /// Always true for stacks built through this interface; exposed so
  /// property tests can check it after arbitrary operation sequences.
  [[nodiscard]] bool s_bit_invariant_holds() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LabelStack&, const LabelStack&) = default;

 private:
  // entries_[0] is the BOTTOM of the stack; back() is the top.  This
  // matches the hardware layout where level 1 memory serves the deepest
  // entry.
  std::vector<LabelEntry> entries_;
  std::size_t capacity_;
};

}  // namespace empls::mpls
