// MPLS OAM demo: verify an LSP with lsp_ping, map its data-plane path
// with lsp_traceroute, then inject a silent data-plane fault and watch
// the tools localise it.
//
//   $ ./oam_demo
#include <cstdio>
#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/oam.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

void print_ping(const net::Network& net, const net::Oam::PingResult& r) {
  if (r.reachable) {
    std::printf("  ping: reachable via %s, %.2f ms\n",
                net.node(*r.egress).name().c_str(), r.latency * 1e3);
  } else if (r.discarded_at) {
    std::printf("  ping: FAILED at %s (%s)\n",
                net.node(*r.discarded_at).name().c_str(),
                r.discard_reason.c_str());
  } else {
    std::printf("  ping: FAILED (%s)\n", r.discard_reason.c_str());
  }
}

void print_trace(const net::Network& net,
                 const net::Oam::TracerouteResult& r) {
  std::printf("  traceroute (%s):\n", r.complete ? "complete" : "INCOMPLETE");
  for (const auto& hop : r.hops) {
    std::printf("    ttl=%u  %-6s %s  %.2f ms\n", hop.ttl,
                net.node(hop.node).name().c_str(),
                hop.is_egress ? "[egress]" : "", hop.latency * 1e3);
  }
}

}  // namespace

int main() {
  net::Network net;
  net::ControlPlane cp(net);
  net::Oam oam(net);

  auto add = [&](const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  };
  const auto a = add("A", hw::RouterType::kLer);
  const auto b = add("B", hw::RouterType::kLsr);
  const auto c = add("C", hw::RouterType::kLsr);
  const auto d = add("D", hw::RouterType::kLer);
  net.connect(a, b, 100e6, 1e-3);
  net.connect(b, c, 100e6, 1e-3);
  net.connect(c, d, 100e6, 1e-3);
  cp.establish_lsp({a, b, c, d}, *mpls::Prefix::parse("10.1.0.0/16"));

  const auto dst = *mpls::Ipv4Address::parse("10.1.0.5");
  std::printf("LSP A->D established for 10.1.0.0/16\n\nhealthy LSP:\n");
  oam.lsp_ping(a, dst, [&](const auto& r) { print_ping(net, r); });
  oam.lsp_traceroute(a, dst, [&](const auto& r) { print_trace(net, r); });
  net.run();

  // A silent data-plane fault: C's information base loses its state
  // (bit flip, misprogram, reset race) without the control plane
  // noticing.  Ping detects the break; traceroute pinpoints it.
  std::printf("\nwiping router C's information base (silent fault)...\n\n");
  net.node_as<core::EmbeddedRouter>(c).engine().clear();
  oam.lsp_ping(a, dst, [&](const auto& r) { print_ping(net, r); });
  oam.lsp_traceroute(a, dst, [&](const auto& r) { print_trace(net, r); });
  net.run();
  return 0;
}
