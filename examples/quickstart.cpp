// Quickstart: drive the embedded label stack modifier directly.
//
// This is the smallest useful tour of the public API: reset the
// architecture, let the (software) routing functionality store label
// pairs in the information base, then process packets — an ingress push
// keyed by packet identifier, a transit swap keyed by label, and an
// egress pop — watching the label stack and the cycle costs of Table 6.
//
//   $ ./quickstart
#include <cstdio>

#include "hw/label_stack_modifier.hpp"
#include "mpls/packet.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

int main() {
  hw::LabelStackModifier modifier;
  const rtl::ClockModel clock;  // 50 MHz, the paper's FPGA target

  std::printf("embedded MPLS label stack modifier — quickstart\n\n");

  // 1. Reset the architecture (3 cycles).
  const auto reset_cycles = modifier.do_reset();
  std::printf("reset: %llu cycles\n",
              static_cast<unsigned long long>(reset_cycles));

  // 2. The routing functionality programs the information base:
  //    level 1 (keyed by packet identifier): ingress PUSH for host
  //    10.0.0.7; level 2 (keyed by label): a transit SWAP and an egress
  //    POP.
  const rtl::u32 pid = mpls::Ipv4Address::from_octets(10, 0, 0, 7).value;
  modifier.write_pair(1, mpls::LabelPair{pid, 100, mpls::LabelOp::kPush});
  modifier.write_pair(2, mpls::LabelPair{100, 200, mpls::LabelOp::kSwap});
  modifier.write_pair(2, mpls::LabelPair{200, 0, mpls::LabelOp::kPop});
  std::printf("programmed 3 label pairs (3 cycles each)\n\n");

  // 3. Ingress LER: empty stack, level-1 lookup by packet identifier.
  auto r = modifier.update(1, hw::RouterType::kLer, pid, /*cos=*/5,
                           /*ttl=*/64);
  std::printf("ingress update: %-4llu cycles (%.2f us)  -> %s\n",
              static_cast<unsigned long long>(r.cycles),
              clock.microseconds(r.cycles),
              modifier.stack_view().to_string().c_str());

  // 4. Transit LSR: swap the top label at level 2.
  r = modifier.update(2, hw::RouterType::kLsr, 0);
  std::printf("transit swap:   %-4llu cycles (%.2f us)  -> %s\n",
              static_cast<unsigned long long>(r.cycles),
              clock.microseconds(r.cycles),
              modifier.stack_view().to_string().c_str());

  // 5. Egress LER: pop; the stack empties and the packet would return
  //    to its layer-2 network.
  r = modifier.update(2, hw::RouterType::kLer, 0);
  std::printf("egress pop:     %-4llu cycles (%.2f us)  -> %s\n",
              static_cast<unsigned long long>(r.cycles),
              clock.microseconds(r.cycles),
              modifier.stack_view().to_string().c_str());

  // 6. A lookup that misses discards the packet (Figure 16).
  modifier.user_push(mpls::LabelEntry{999, 0, false, 64});
  r = modifier.update(2, hw::RouterType::kLsr, 0);
  std::printf("\nunknown label 999: discarded=%s (stack reset, %llu cycles)\n",
              r.discarded ? "yes" : "no",
              static_cast<unsigned long long>(r.cycles));
  return 0;
}
