// Interactive shell for the RTL label stack modifier: poke the paper's
// hardware from a prompt, with live cycle counts and optional waveform
// capture.  Also scriptable: pipe commands on stdin.
//
//   $ ./hw_shell
//   mpls> write 1 600 500 swap
//   ok: 3 cycles, level 1 holds 1 pairs
//   mpls> search 1 600
//   found: label=500 op=SWAP (8 cycles, 0.16 us @50MHz)
//   mpls> help
#include <cstdio>
#include <unistd.h>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

namespace {

void print_help() {
  std::printf(
      "commands:\n"
      "  reset                       reset the architecture (3 cycles)\n"
      "  push <label> [cos] [ttl]    user push onto the label stack\n"
      "  pop                         user pop\n"
      "  write <level> <index> <label> <push|pop|swap|nop>\n"
      "                              store a label pair\n"
      "  search <level> <key>        bare information-base lookup\n"
      "  read <level> <address>      read a stored pair back by address\n"
      "  update <level> <ler|lsr> [pid] [cos] [ttl]\n"
      "                              full update-stack flow\n"
      "  stack                       show the label stack\n"
      "  dump <level>                list a level's stored pairs\n"
      "  quit\n");
}

std::optional<mpls::LabelOp> parse_op(const std::string& s) {
  if (s == "push") {
    return mpls::LabelOp::kPush;
  }
  if (s == "pop") {
    return mpls::LabelOp::kPop;
  }
  if (s == "swap") {
    return mpls::LabelOp::kSwap;
  }
  if (s == "nop") {
    return mpls::LabelOp::kNop;
  }
  return std::nullopt;
}

}  // namespace

int main() {
  hw::LabelStackModifier m;
  const rtl::ClockModel clock;
  const bool interactive = isatty(0) != 0;

  if (interactive) {
    std::printf("embedded MPLS label stack modifier shell "
                "(50 MHz model; 'help' for commands)\n");
  }
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("mpls> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream in(line);
    std::vector<std::string> tok;
    std::string t;
    while (in >> t) {
      tok.push_back(t);
    }
    if (tok.empty()) {
      continue;
    }
    const std::string& cmd = tok[0];
    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        print_help();
      } else if (cmd == "reset") {
        std::printf("ok: %llu cycles\n",
                    static_cast<unsigned long long>(m.do_reset()));
      } else if (cmd == "push" && tok.size() >= 2) {
        mpls::LabelEntry e;
        e.label = static_cast<rtl::u32>(std::stoul(tok[1]));
        e.cos = tok.size() > 2
                    ? static_cast<rtl::u8>(std::stoul(tok[2]))
                    : 0;
        e.ttl = tok.size() > 3
                    ? static_cast<rtl::u8>(std::stoul(tok[3]))
                    : 64;
        const auto cycles = m.user_push(e);
        std::printf("ok: %llu cycles, %s\n",
                    static_cast<unsigned long long>(cycles),
                    m.stack_view().to_string().c_str());
      } else if (cmd == "pop") {
        const auto cycles = m.user_pop();
        std::printf("ok: %llu cycles, %s\n",
                    static_cast<unsigned long long>(cycles),
                    m.stack_view().to_string().c_str());
      } else if (cmd == "write" && tok.size() == 5) {
        const auto op = parse_op(tok[4]);
        if (!op) {
          std::printf("bad operation: %s\n", tok[4].c_str());
          continue;
        }
        const auto level = static_cast<unsigned>(std::stoul(tok[1]));
        if (!hw::InfoBase::valid_level(level)) {
          std::printf("level must be 1..3\n");
          continue;
        }
        const auto cycles = m.write_pair(
            level, mpls::LabelPair{
                       static_cast<rtl::u32>(std::stoul(tok[2])),
                       static_cast<rtl::u32>(std::stoul(tok[3])), *op});
        std::printf("ok: %llu cycles, level %u holds %llu pairs\n",
                    static_cast<unsigned long long>(cycles), level,
                    static_cast<unsigned long long>(m.level_count(level)));
      } else if (cmd == "search" && tok.size() == 3) {
        const auto level = static_cast<unsigned>(std::stoul(tok[1]));
        if (!hw::InfoBase::valid_level(level)) {
          std::printf("level must be 1..3\n");
          continue;
        }
        const auto r =
            m.search(level, static_cast<rtl::u32>(std::stoul(tok[2])));
        if (r.found) {
          std::printf("found: label=%u op=%s (%llu cycles, %.2f us "
                      "@50MHz)\n",
                      r.label,
                      std::string(to_string(
                                      static_cast<mpls::LabelOp>(r.operation)))
                          .c_str(),
                      static_cast<unsigned long long>(r.cycles),
                      clock.microseconds(r.cycles));
        } else {
          std::printf("not found: packet would be discarded (%llu cycles, "
                      "3n+5)\n",
                      static_cast<unsigned long long>(r.cycles));
        }
      } else if (cmd == "read" && tok.size() == 3) {
        const auto level = static_cast<unsigned>(std::stoul(tok[1]));
        if (!hw::InfoBase::valid_level(level)) {
          std::printf("level must be 1..3\n");
          continue;
        }
        const auto r = m.read_pair(
            level, static_cast<rtl::u16>(std::stoul(tok[2])));
        if (r.valid) {
          std::printf("[%s] index=%u label=%u op=%s (%llu cycles)\n",
                      tok[2].c_str(), r.pair.index, r.pair.new_label,
                      std::string(to_string(r.pair.op)).c_str(),
                      static_cast<unsigned long long>(r.cycles));
        } else {
          std::printf("address %s beyond occupancy\n", tok[2].c_str());
        }
      } else if (cmd == "update" && tok.size() >= 3) {
        const auto level = static_cast<unsigned>(std::stoul(tok[1]));
        if (!hw::InfoBase::valid_level(level)) {
          std::printf("level must be 1..3\n");
          continue;
        }
        const auto type = tok[2] == "ler" ? hw::RouterType::kLer
                                          : hw::RouterType::kLsr;
        const rtl::u32 pid =
            tok.size() > 3 ? static_cast<rtl::u32>(std::stoul(tok[3])) : 0;
        const rtl::u8 cos =
            tok.size() > 4 ? static_cast<rtl::u8>(std::stoul(tok[4])) : 0;
        const rtl::u8 ttl =
            tok.size() > 5 ? static_cast<rtl::u8>(std::stoul(tok[5])) : 64;
        const auto r = m.update(level, type, pid, cos, ttl);
        std::printf("%s: %llu cycles (%.2f us), %s\n",
                    r.discarded
                        ? "DISCARDED"
                        : std::string(to_string(r.applied)).c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    clock.microseconds(r.cycles),
                    m.stack_view().to_string().c_str());
      } else if (cmd == "stack") {
        std::printf("%s\n", m.stack_view().to_string().c_str());
      } else if (cmd == "dump" && tok.size() == 2) {
        const auto level = static_cast<unsigned>(std::stoul(tok[1]));
        if (!hw::InfoBase::valid_level(level)) {
          std::printf("level must be 1..3\n");
          continue;
        }
        const auto n = m.level_count(level);
        std::printf("level %u: %llu pairs\n", level,
                    static_cast<unsigned long long>(n));
        for (rtl::u64 i = 0; i < n; ++i) {
          const auto r = m.read_pair(level, static_cast<rtl::u16>(i));
          std::printf("  [%llu] index=%u label=%u op=%s\n",
                      static_cast<unsigned long long>(i), r.pair.index,
                      r.pair.new_label,
                      std::string(to_string(r.pair.op)).c_str());
        }
      } else {
        std::printf("unknown command (try 'help'): %s\n", cmd.c_str());
      }
    } catch (const std::exception&) {
      std::printf("bad arguments for %s (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
