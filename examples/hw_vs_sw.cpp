// Engine comparison tour: the same label update executed by every
// engine, with behaviour cross-checked and costs side by side.
//
//   $ ./hw_vs_sw
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "rtl/clock_model.hpp"
#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

mpls::Packet make_packet(rtl::u32 label) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 1);
  p.stack.push(mpls::LabelEntry{label, 3, false, 64});
  return p;
}

}  // namespace

int main() {
  constexpr rtl::u32 kTableSize = 256;
  constexpr rtl::u32 kTarget = 200;  // hit position 200 of 256

  std::vector<std::unique_ptr<sw::LabelEngine>> engines;
  engines.push_back(std::make_unique<sw::HwEngine>());
  engines.push_back(std::make_unique<sw::LinearEngine>());
  engines.push_back(std::make_unique<sw::CamEngine>());
  engines.push_back(std::make_unique<sw::HashEngine>());

  std::printf("one SWAP through every label engine "
              "(table: %u entries, hit position %u)\n\n",
              kTableSize, kTarget);
  std::printf("%-8s %-10s %-12s %-14s %-12s\n", "engine", "result",
              "new top", "modeled hw", "host wall");

  const rtl::ClockModel clock;
  for (auto& engine : engines) {
    for (rtl::u32 i = 1; i <= kTableSize; ++i) {
      engine->write_pair(
          2, mpls::LabelPair{i, 10000 + i, mpls::LabelOp::kSwap});
    }
    mpls::Packet p = make_packet(kTarget);
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcome = engine->update(p, 2, hw::RouterType::kLsr);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    char modeled[48];
    if (outcome.hw_cycles > 0) {
      std::snprintf(modeled, sizeof modeled, "%llu cyc %.2fus",
                    static_cast<unsigned long long>(outcome.hw_cycles),
                    clock.microseconds(outcome.hw_cycles));
    } else {
      std::snprintf(modeled, sizeof modeled, "n/a");
    }
    std::printf("%-8s %-10s %-12u %-14s %.2f us\n",
                std::string(engine->name()).c_str(),
                outcome.discarded ? "discard" : "swap",
                p.stack.empty() ? 0 : p.stack.top().label, modeled, wall_us);
  }

  std::printf(
      "\nreading the table:\n"
      " * hw-rtl simulates the paper's FPGA datapath cycle by cycle; its\n"
      "   modeled time includes the 3-cycle stack load/unload transfers.\n"
      " * linear reports the Table 6 analytic cost of identical hardware.\n"
      " * cam is the constant-time ablation (parallel comparators).\n"
      " * hash has no hardware model; its cost is this host's wall clock.\n");
  return 0;
}
