// Constraint-based routing demo: CSPF with bandwidth admission.
//
// Repeatedly provision 3 Mb/s LSPs between the same pair of LERs across
// a network with a 10 Mb/s direct core link and a 100 Mb/s detour.
// CSPF packs the direct link until its residual bandwidth is exhausted,
// then shifts new LSPs to the detour; when every route is full, setup is
// refused — admission control, the QoS function the paper lists.
//
//   $ ./control_plane
#include <cstdio>
#include <memory>
#include <string>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

int main() {
  net::Network net;
  net::ControlPlane cp(net);

  auto add = [&](const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  };

  const auto ing = add("ING", hw::RouterType::kLer);
  const auto a = add("A", hw::RouterType::kLsr);
  const auto b = add("B", hw::RouterType::kLsr);
  const auto c = add("C", hw::RouterType::kLsr);
  const auto egr = add("EGR", hw::RouterType::kLer);

  //        10 Mb/s
  //  ING-A ------- B-EGR       direct (1 ms)
  //       \       /
  //        C-----          100 Mb/s detour (4 ms total)
  net.connect(ing, a, 100e6, 0.2e-3);
  net.connect(a, b, 10e6, 1e-3);
  net.connect(a, c, 100e6, 2e-3);
  net.connect(c, b, 100e6, 2e-3);
  net.connect(b, egr, 100e6, 0.2e-3);

  std::printf("provisioning 3 Mb/s LSPs ING -> EGR until refusal\n\n");
  std::printf("%-5s %-28s %-22s\n", "LSP", "path chosen by CSPF",
              "residual A->B after");

  for (int i = 1; i <= 40; ++i) {
    const std::string prefix = "10." + std::to_string(i) + ".0.0/16";
    const auto lsp =
        cp.establish_lsp_cspf(ing, egr, *mpls::Prefix::parse(prefix), 3e6);
    if (!lsp) {
      std::printf("\nLSP %d REFUSED: no route with 3 Mb/s residual "
                  "anywhere (admission control)\n", i);
      break;
    }
    const auto& rec = cp.lsp(*lsp);
    std::string path;
    for (const auto id : rec.path) {
      if (!path.empty()) {
        path += " -> ";
      }
      path += net.node(id).name();
    }
    std::printf("%-5d %-28s %5.1f Mb/s\n", i, path.c_str(),
                cp.residual_bw(a, b) / 1e6);
    if (i == 40) {
      std::printf("\nnever refused — topology has more capacity than "
                  "expected\n");
      return 1;
    }
  }

  std::printf("\ntotal LSPs established: %zu\n", cp.num_lsps());
  std::printf("residual bandwidth: A->B %.1f Mb/s, A->C %.1f Mb/s, "
              "C->B %.1f Mb/s\n",
              cp.residual_bw(a, b) / 1e6, cp.residual_bw(a, c) / 1e6,
              cp.residual_bw(c, b) / 1e6);
  return 0;
}
