// Hierarchical LSPs: watch the label stack grow and shrink through a
// tunnel (the paper's Figure 3).
//
// An LSP from LER-A to LER-D crosses a tunnel between LSR-B and LSR-C.
// A packet tap on every router prints the stack before and after the
// label stack modifier runs, so the push / nested push / PHP pop / swap
// / final pop sequence — and TTL/CoS handling — is visible hop by hop.
//
//   $ ./tunnel_demo
#include <cstdio>
#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "sw/hw_engine.hpp"

using namespace empls;

int main() {
  std::printf("hierarchical LSPs: a tunnel in action\n");
  std::printf("(engine: cycle-accurate RTL label stack modifier)\n\n");

  net::Network net;
  net::ControlPlane cp(net);

  std::uint32_t next_label_base = 100;
  auto add = [&](const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    cfg.label_base = next_label_base;
    next_label_base += 100;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::HwEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    raw->set_packet_tap([](const core::EmbeddedRouter& router,
                           const mpls::Packet& before,
                           const mpls::Packet& after, mpls::LabelOp op,
                           bool discarded) {
      std::printf("  %-6s %-9s in:  %s\n", router.name().c_str(),
                  discarded ? "DISCARD" : std::string(to_string(op)).c_str(),
                  before.stack.to_string().c_str());
      std::printf("                   out: %s\n",
                  after.stack.to_string().c_str());
    });
    return id;
  };

  const auto a = add("A", hw::RouterType::kLer);
  const auto b = add("B", hw::RouterType::kLsr);
  const auto x = add("X", hw::RouterType::kLsr);
  const auto y = add("Y", hw::RouterType::kLsr);
  const auto c = add("C", hw::RouterType::kLsr);
  const auto d = add("D", hw::RouterType::kLer);

  // A - B ========tunnel======== C - D
  //      \__ X ________ Y __/
  net.connect(a, b, 100e6, 1e-3);
  net.connect(b, x, 100e6, 1e-3);
  net.connect(x, y, 100e6, 1e-3);
  net.connect(y, c, 100e6, 1e-3);
  net.connect(c, d, 100e6, 1e-3);

  const auto tunnel = cp.establish_tunnel({b, x, y, c});
  if (!tunnel) {
    std::printf("tunnel establishment failed\n");
    return 1;
  }
  const auto& tun = cp.tunnel(*tunnel);
  std::printf("tunnel B->C established, outer labels:");
  for (const auto l : tun.outer_labels) {
    std::printf(" %u", l);
  }
  std::printf(" (PHP at Y)\n");

  const auto lsp = cp.establish_lsp_via_tunnel(
      {a, b}, *tunnel, {c, d}, *mpls::Prefix::parse("10.5.0.0/16"));
  if (!lsp) {
    std::printf("LSP establishment failed\n");
    return 1;
  }
  const auto& rec = cp.lsp(*lsp);
  std::printf("LSP A->D established via tunnel, inner labels:");
  for (const auto l : rec.labels) {
    std::printf(" %u", l);
  }
  std::printf("\n\npacket 192.168.1.1 -> 10.5.0.42, CoS 5, TTL 64:\n\n");

  bool delivered = false;
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    delivered = true;
    std::printf("\ndelivered at egress after %.2f ms: unlabeled, ip_ttl=%u "
                "(5 routers), cos=%u\n",
                net.now() * 1e3, p.ip_ttl, p.cos);
  });

  mpls::Packet packet;
  packet.src = *mpls::Ipv4Address::parse("192.168.1.1");
  packet.dst = *mpls::Ipv4Address::parse("10.5.0.42");
  packet.cos = 5;
  packet.ip_ttl = 64;
  packet.payload.assign(100, 0x55);
  net.inject(a, packet);
  net.run();

  if (!delivered) {
    std::printf("\npacket was not delivered!\n");
    return 1;
  }
  return 0;
}
