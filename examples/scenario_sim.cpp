// Config-driven network simulator: run a scenario file (or the built-in
// demo) and print the report.
//
//   $ ./scenario_sim [file.scn]
//
// The scenario language (net/scenario.hpp) declares routers, links,
// LSPs (explicit, CSPF, PHP, merged, tunnelled), traffic flows and
// failure events — the whole library driven from a text file.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scenario_runner.hpp"

namespace {

// Built-in demo: a congested core with QoS, a tunnel, and a mid-run
// failure of the protection-irrelevant alternate path.
constexpr const char* kDemo = R"(
# --- topology: two LERs, four LSRs ---
qos strict capacity=32
router W ler engine=linear
router E ler engine=linear
router A lsr
router B lsr
router X lsr
router C lsr

link W A 100M 0.5ms
link A B 10M  1ms       # thin core link
link A X 100M 2ms       # wide detour
link X B 100M 2ms
link B E 100M 0.5ms
link A C 100M 1ms       # tunnel interior
link C B 100M 1ms

# --- label switched paths ---
lsp      10.1.0.0/16 W A X B E bw=2M        # VoIP pinned to the detour
lsp-cspf 10.2.0.0/16 W E bw=5M              # bulk: CSPF picks the best fit
tunnel   T1 A C B
lsp-via-tunnel 10.3.0.0/16 pre W A tunnel T1 post B E

# --- traffic ---
flow cbr     1 W 10.1.0.9 cos=6 size=160  interval=20ms stop=1
flow poisson 2 W 10.2.0.9 cos=1 size=1000 rate=700 seed=42 stop=1
flow video   3 W 10.3.0.9 cos=4 size=1200 fps=30 ppf=4 stop=1

run 1
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    std::printf("running scenario %s\n\n", argv[1]);
  } else {
    text = kDemo;
    std::printf("running the built-in demo scenario "
                "(pass a .scn file to run your own)\n\n");
  }

  const auto result = empls::core::ScenarioRunner::run_text(text);
  if (const auto* err = std::get_if<empls::net::ScenarioError>(&result)) {
    std::fprintf(stderr, "scenario error at line %d: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  const auto& report = std::get<empls::core::ScenarioRunner::Report>(result);
  std::printf("%s", report.to_string().c_str());
  if (!report.expects_passed()) {
    std::fprintf(stderr, "SLO violated: one or more expect directives "
                         "failed (see the slo: section above)\n");
    return 1;
  }
  return 0;
}
