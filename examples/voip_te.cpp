// Traffic engineering scenario: explicit paths keep VoIP off the
// congested shortest route.
//
// Topology (bandwidths in Mb/s):
//
//        10          10
//   W ------ A ---------- B ------ E        shortest route (congested)
//   100 \                     / 100
//        C ------------------ D             long route (idle)
//                100
//
// Without TE every flow follows the shortest path and VoIP queues behind
// bulk data.  With TE the control plane pins the VoIP LSP to the longer
// but idle route — "explicit path specification", the property the paper
// names as MPLS's key contribution to traffic engineering.
//
//   $ ./voip_te
#include <cstdio>
#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

struct Scenario {
  net::Network net;
  net::ControlPlane cp{net};
  net::FlowStats stats;
  net::NodeId w, a, b, c, d, e;

  static net::QosConfig fifo_qos() {
    // FIFO queues isolate the effect under study: here the win must come
    // from *where* the LSP is routed, not from CoS scheduling
    // (bench_forwarding covers the scheduling dimension).
    net::QosConfig qos;
    qos.scheduler = net::SchedulerKind::kFifo;
    qos.queue_capacity = 64;
    return qos;
  }

  Scenario() : net(fifo_qos()) {
    auto add = [&](const char* name, hw::RouterType type) {
      core::RouterConfig cfg;
      cfg.type = type;
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    w = add("LER-W", hw::RouterType::kLer);
    a = add("LSR-A", hw::RouterType::kLsr);
    b = add("LSR-B", hw::RouterType::kLsr);
    c = add("LSR-C", hw::RouterType::kLsr);
    d = add("LSR-D", hw::RouterType::kLsr);
    e = add("LER-E", hw::RouterType::kLer);
    net.connect(w, a, 100e6, 0.5e-3);
    net.connect(a, b, 10e6, 1e-3);  // short but thin
    net.connect(b, e, 100e6, 0.5e-3);
    net.connect(a, c, 100e6, 2e-3);  // long but fat
    net.connect(c, d, 100e6, 2e-3);
    net.connect(d, b, 100e6, 2e-3);
    net.set_delivery_handler([this](net::NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }

  void run_traffic() {
    const auto src = *mpls::Ipv4Address::parse("192.168.0.1");
    // VoIP to 10.1.0.x, bulk to 10.2.0.x — distinct FECs so distinct
    // LSPs can carry them.
    net::FlowSpec voip{1, w, src, *mpls::Ipv4Address::parse("10.1.0.9"),
                       6, 160, 0.0, 1.0};
    net::FlowSpec bulk{2, w, src, *mpls::Ipv4Address::parse("10.2.0.9"),
                       1, 1000, 0.0, 1.0};
    net::CbrSource voip_src(net, voip, &stats, 20e-3);
    // 1400 pps x 1000 B = 11.2 Mb/s: saturates the 10 Mb/s direct link.
    net::PoissonSource bulk_src(net, bulk, &stats, 1400.0, 7);
    voip_src.start();
    bulk_src.start();
    net.run();
  }
};

void report(const char* title, const Scenario& s) {
  const auto& voip = s.stats.flow(1);
  const auto& bulk = s.stats.flow(2);
  std::printf("%-12s VoIP: loss %4.1f%% mean %6.2f ms p99 %6.2f ms   "
              "bulk: loss %4.1f%%\n",
              title, voip.loss_rate() * 100, voip.latency.mean() * 1e3,
              voip.latency.percentile(0.99) * 1e3, bulk.loss_rate() * 100);
}

}  // namespace

int main() {
  std::printf("traffic engineering with explicit label switched paths\n\n");

  // Case 1: no TE — both FECs ride the shortest (congested) route.
  {
    Scenario s;
    s.cp.establish_lsp({s.w, s.a, s.b, s.e},
                       *mpls::Prefix::parse("10.1.0.0/16"));
    s.cp.establish_lsp({s.w, s.a, s.b, s.e},
                       *mpls::Prefix::parse("10.2.0.0/16"));
    s.run_traffic();
    report("shared path:", s);
  }

  // Case 2: TE — VoIP pinned to the long idle route by explicit ERO.
  {
    Scenario s;
    s.cp.establish_lsp({s.w, s.a, s.c, s.d, s.b, s.e},
                       *mpls::Prefix::parse("10.1.0.0/16"));
    s.cp.establish_lsp({s.w, s.a, s.b, s.e},
                       *mpls::Prefix::parse("10.2.0.0/16"));
    s.run_traffic();
    report("engineered:", s);
  }

  // Case 3: same placement, but computed by CSPF with bandwidth
  // admission instead of a hand-written explicit route: reserving the
  // bulk LSP's 9 Mb/s first leaves the thin link without room for the
  // VoIP LSP's 1 Mb/s, so CSPF routes VoIP around automatically.
  {
    Scenario s;
    const auto bulk_lsp = s.cp.establish_lsp_cspf(
        s.w, s.e, *mpls::Prefix::parse("10.2.0.0/16"), 9.5e6);
    const auto voip_lsp = s.cp.establish_lsp_cspf(
        s.w, s.e, *mpls::Prefix::parse("10.1.0.0/16"), 1e6);
    s.run_traffic();
    report("CSPF:", s);
    if (bulk_lsp && voip_lsp) {
      std::printf("\n  CSPF placed bulk over %zu hops, VoIP over %zu hops "
                  "(VoIP avoided the full link)\n",
                  s.cp.lsp(*bulk_lsp).path.size() - 1,
                  s.cp.lsp(*voip_lsp).path.size() - 1);
    }
  }
  return 0;
}
