// Tests for the shared bench helpers: BENCH_*.json artifact hygiene —
// string escaping and dotted-key conflict rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"

namespace empls::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void cleanup(const std::string& name) {
  std::remove(("BENCH_" + name + ".json").c_str());
}

TEST(BenchJson, EscapesStringValues) {
  BenchJson json("bu_escape");
  json.set("note", std::string("a\"b\\c\nd\te\x01"));
  ASSERT_TRUE(json.write());
  const std::string text = slurp("BENCH_bu_escape.json");
  EXPECT_NE(text.find(R"("note": "a\"b\\c\nd\te\u0001")"), std::string::npos);
  // The raw control byte must not appear anywhere in the file.
  EXPECT_EQ(text.find('\x01'), std::string::npos);
  cleanup("bu_escape");
}

TEST(BenchJson, RejectsExactDuplicateKeys) {
  BenchJson json("bu_dup");
  json.set("line8.pps", 1.0);
  json.set("line8.pps", 2.0);
  EXPECT_FALSE(json.write());
  cleanup("bu_dup");
}

TEST(BenchJson, RejectsKeyReusedAsObjectPrefix) {
  // "a.b" as a scalar alongside "a.b.c" would stream invalid JSON:
  // the same member cannot be both a number and an object.
  BenchJson json("bu_prefix");
  json.set("a.b", 1);
  json.set("a.b.c", 2);
  EXPECT_FALSE(json.write());
  cleanup("bu_prefix");
}

TEST(BenchJson, SharedParentPrefixIsFine) {
  BenchJson json("bu_ok");
  json.set("a.b", 1);
  json.set("a.c", 2);
  json.set("abc", 3);  // longer name sharing characters, not a dot path
  ASSERT_TRUE(json.write());
  const std::string text = slurp("BENCH_bu_ok.json");
  EXPECT_NE(text.find("\"b\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"abc\": 3"), std::string::npos);
  cleanup("bu_ok");
}

}  // namespace
}  // namespace empls::bench
