// Tests for the hardware packet processing pipeline: correctness of the
// rebuilt packet, cycle accounting per phase, and malformed/discard
// handling.
#include <gtest/gtest.h>

#include "hw/cycle_model.hpp"
#include "hw/packet_pipeline.hpp"

namespace empls::hw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

mpls::Packet ingress_packet(std::size_t payload = 100) {
  mpls::Packet p;
  p.src = mpls::Ipv4Address::from_octets(192, 168, 0, 1);
  p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 7);
  p.cos = 5;
  p.ip_ttl = 64;
  p.payload.assign(payload, 0xCD);
  return p;
}

TEST(PacketPipeline, IngressPushEndToEnd) {
  PacketPipeline pipe(RouterType::kLer);
  pipe.modifier().write_pair(
      1, LabelPair{ingress_packet().packet_identifier(), 77, LabelOp::kPush});

  const auto r = pipe.process(ingress_packet(), 1);
  EXPECT_FALSE(r.malformed);
  EXPECT_FALSE(r.discarded);
  ASSERT_EQ(r.packet.stack.size(), 1u);
  EXPECT_EQ(r.packet.stack.top().label, 77u);
  EXPECT_EQ(r.packet.stack.top().cos, 5u);
  EXPECT_EQ(r.packet.stack.top().ttl, 63u);
  EXPECT_EQ(r.packet.payload, ingress_packet().payload);
  EXPECT_EQ(r.packet.dst, ingress_packet().dst);
  EXPECT_GT(r.ingress_cycles, 0u);
  EXPECT_GT(r.update_cycles, 0u);
  EXPECT_GT(r.egress_cycles, 0u);
  EXPECT_EQ(r.cycles, r.ingress_cycles + r.update_cycles + r.egress_cycles);
}

TEST(PacketPipeline, TransitSwapPreservesPayloadAndCos) {
  PacketPipeline pipe(RouterType::kLsr);
  pipe.modifier().write_pair(2, LabelPair{40, 1234, LabelOp::kSwap});

  mpls::Packet in = ingress_packet(37);
  in.stack.push(LabelEntry{40, 3, false, 60});
  const auto r = pipe.process(in, 2);
  EXPECT_FALSE(r.discarded);
  ASSERT_EQ(r.packet.stack.size(), 1u);
  EXPECT_EQ(r.packet.stack.top().label, 1234u);
  EXPECT_EQ(r.packet.stack.top().cos, 3u);
  EXPECT_EQ(r.packet.stack.top().ttl, 59u);
  EXPECT_EQ(r.packet.payload.size(), 37u);
}

TEST(PacketPipeline, EgressPopWritesTtlBack) {
  PacketPipeline pipe(RouterType::kLer);
  pipe.modifier().write_pair(2, LabelPair{40, 0, LabelOp::kPop});
  mpls::Packet in = ingress_packet();
  in.stack.push(LabelEntry{40, 3, false, 60});
  const auto r = pipe.process(in, 2);
  EXPECT_FALSE(r.discarded);
  EXPECT_TRUE(r.packet.stack.empty());
  EXPECT_EQ(r.packet.ip_ttl, 59u);
}

TEST(PacketPipeline, MissDiscards) {
  PacketPipeline pipe(RouterType::kLsr);
  mpls::Packet in = ingress_packet();
  in.stack.push(LabelEntry{40, 3, false, 60});
  const auto r = pipe.process(in, 2);
  EXPECT_TRUE(r.discarded);
  EXPECT_EQ(r.egress_cycles, 0u) << "discarded packets are not emitted";
  EXPECT_EQ(pipe.modifier().stack_size(), 0u)
      << "the datapath is clean for the next packet";
}

TEST(PacketPipeline, DeepStackRoundTrips) {
  PacketPipeline pipe(RouterType::kLsr);
  pipe.modifier().write_pair(3, LabelPair{30, 31, LabelOp::kSwap});
  mpls::Packet in = ingress_packet(8);
  in.stack.push(LabelEntry{10, 1, false, 50});
  in.stack.push(LabelEntry{20, 2, false, 51});
  in.stack.push(LabelEntry{30, 3, false, 52});
  const auto r = pipe.process(in, 3);
  EXPECT_FALSE(r.discarded);
  ASSERT_EQ(r.packet.stack.size(), 3u);
  EXPECT_EQ(r.packet.stack.at(0).label, 31u);
  EXPECT_EQ(r.packet.stack.at(1).label, 20u);
  EXPECT_EQ(r.packet.stack.at(2).label, 10u);
  EXPECT_TRUE(r.packet.stack.s_bit_invariant_holds());
}

TEST(PacketPipeline, DmaCostScalesWithPacketSize) {
  PacketPipeline pipe(RouterType::kLer);
  pipe.modifier().write_pair(
      1, LabelPair{ingress_packet().packet_identifier(), 77, LabelOp::kPush});

  const auto small = pipe.process(ingress_packet(40), 1);
  const auto big = pipe.process(ingress_packet(1440), 1);
  EXPECT_FALSE(small.discarded);
  EXPECT_FALSE(big.discarded);
  // 1400 extra payload bytes at 4 bytes/cycle: +350 ingress and +350
  // egress cycles.
  EXPECT_EQ(big.ingress_cycles - small.ingress_cycles, 350u);
  EXPECT_EQ(big.egress_cycles - small.egress_cycles, 350u);
  EXPECT_EQ(big.update_cycles, small.update_cycles)
      << "the modifier's cost is independent of payload size";
}

TEST(PacketPipeline, WiderBusIsFaster) {
  auto run = [](unsigned bus_bytes) {
    PacketPipeline pipe(RouterType::kLer, bus_bytes);
    pipe.modifier().write_pair(
        1,
        LabelPair{ingress_packet().packet_identifier(), 77, LabelOp::kPush});
    return pipe.process(ingress_packet(1024), 1).cycles;
  };
  EXPECT_LT(run(16), run(4));
}

TEST(PacketPipeline, BackToBackPacketsAreIndependent) {
  PacketPipeline pipe(RouterType::kLsr);
  pipe.modifier().write_pair(2, LabelPair{40, 41, LabelOp::kSwap});
  pipe.modifier().write_pair(2, LabelPair{41, 40, LabelOp::kSwap});
  mpls::Packet in = ingress_packet(16);
  in.stack.push(LabelEntry{40, 0, false, 200});
  for (int i = 0; i < 10; ++i) {
    const auto r = pipe.process(in, 2);
    ASSERT_FALSE(r.discarded) << "iteration " << i;
    ASSERT_EQ(r.packet.stack.size(), 1u);
    in = r.packet;
  }
  EXPECT_EQ(in.stack.top().ttl, 190u);
}

TEST(PacketPipeline, UpdatePhaseMatchesTable6) {
  PacketPipeline pipe(RouterType::kLsr);
  for (rtl::u32 i = 1; i <= 32; ++i) {
    pipe.modifier().write_pair(2, LabelPair{i, 500 + i, LabelOp::kSwap});
  }
  mpls::Packet in = ingress_packet(0);
  in.stack.push(LabelEntry{32, 0, false, 64});  // worst position
  const auto r = pipe.process(in, 2);
  EXPECT_FALSE(r.discarded);
  // The update phase contains the Table 6 flow plus the pipeline's
  // one-edge issue handshake.
  EXPECT_NEAR(static_cast<double>(r.update_cycles),
              static_cast<double>(update_swap_cycles(32)), 2.0);
}

}  // namespace
}  // namespace empls::hw
