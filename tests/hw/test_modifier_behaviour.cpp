// Behavioural tests for the label stack modifier: the semantics of every
// update flow (Figure 9) — swap/pop/push application, CoS preservation,
// TTL decrement and expiry, S-bit maintenance, and every discard branch
// of VERIFY INFO.
#include <gtest/gtest.h>

#include "hw/label_stack_modifier.hpp"

namespace empls::hw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

LabelEntry entry(rtl::u32 label, rtl::u8 cos = 0, rtl::u8 ttl = 64) {
  return LabelEntry{label, cos, false, ttl};
}

TEST(UserOps, PushSetsSBitFromOccupancy) {
  LabelStackModifier m;
  m.user_push(entry(10));
  m.user_push(entry(20));
  const auto v = m.stack_view();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.at(1).bottom) << "first pushed entry is the bottom";
  EXPECT_FALSE(v.at(0).bottom);
  EXPECT_TRUE(v.s_bit_invariant_holds());
}

TEST(UserOps, PushOnFullStackDiscardsAndKeepsContents) {
  LabelStackModifier m;
  m.user_push(entry(1));
  m.user_push(entry(2));
  m.user_push(entry(3));
  m.issue_user_push(entry(4));
  bool discard_seen = false;
  do {
    m.sim().step();
    discard_seen = discard_seen || m.packet_discard();
  } while (!m.ready());
  EXPECT_TRUE(discard_seen);
  EXPECT_EQ(m.stack_size(), 3u);
  EXPECT_EQ(m.stack_view().top().label, 3u);
}

TEST(UserOps, PopOnEmptyStackIsHarmless) {
  LabelStackModifier m;
  EXPECT_EQ(m.user_pop(), 3u);
  EXPECT_EQ(m.stack_size(), 0u);
}

TEST(UpdateSwap, RewritesLabelPreservesCosDecrementsTtl) {
  LabelStackModifier m;
  m.user_push(entry(40, /*cos=*/6, /*ttl=*/100));
  m.write_pair(2, LabelPair{40, 1234, LabelOp::kSwap});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(r.applied, LabelOp::kSwap);
  const auto v = m.stack_view();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.top().label, 1234u);
  EXPECT_EQ(v.top().cos, 6u) << "the embedded implementation never "
                                "modifies CoS bits";
  EXPECT_EQ(v.top().ttl, 99u);
  EXPECT_TRUE(v.top().bottom);
}

TEST(UpdatePop, PropagatesTtlIntoExposedEntry) {
  LabelStackModifier m;
  m.user_push(entry(10, 2, 50));   // inner
  m.user_push(entry(20, 5, 90));   // outer
  m.write_pair(3, LabelPair{20, 0, LabelOp::kPop});
  const auto r = m.update(3, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  const auto v = m.stack_view();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.top().label, 10u);
  EXPECT_EQ(v.top().ttl, 89u) << "decremented outer TTL carried down";
  EXPECT_EQ(v.top().cos, 2u) << "inner CoS untouched";
  EXPECT_TRUE(v.top().bottom);
}

TEST(UpdatePop, LastLabelLeavesEmptyStack) {
  LabelStackModifier m;
  m.user_push(entry(10));
  m.write_pair(2, LabelPair{10, 0, LabelOp::kPop});
  const auto r = m.update(2, RouterType::kLer, 0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(m.stack_size(), 0u);
  EXPECT_EQ(m.datapath().ttl(), 63u)
      << "the TTL counter holds the value egress processing writes back";
}

TEST(UpdatePush, NestedPushPreservesInnerLabel) {
  LabelStackModifier m;
  m.user_push(entry(40, 3, 80));
  m.write_pair(2, LabelPair{40, 999, LabelOp::kPush});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  const auto v = m.stack_view();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(0).label, 999u) << "new outer label on top";
  EXPECT_EQ(v.at(1).label, 40u) << "old label re-pushed unchanged";
  EXPECT_EQ(v.at(0).ttl, 79u);
  EXPECT_EQ(v.at(1).ttl, 79u) << "both carry the decremented TTL";
  EXPECT_EQ(v.at(0).cos, 3u);
  EXPECT_TRUE(v.s_bit_invariant_holds());
}

TEST(UpdatePush, IngressPushUsesControlPathCosAndTtl) {
  LabelStackModifier m;
  m.write_pair(1, LabelPair{0xC0A80005, 321, LabelOp::kPush});
  const auto r = m.update(1, RouterType::kLer, 0xC0A80005, /*cos=*/7,
                          /*ttl=*/64);
  EXPECT_FALSE(r.discarded);
  const auto v = m.stack_view();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.top().label, 321u);
  EXPECT_EQ(v.top().cos, 7u);
  EXPECT_EQ(v.top().ttl, 63u);
  EXPECT_TRUE(v.top().bottom);
}

// ---- VERIFY INFO discard branches ----

TEST(Discard, SearchMissResetsStack) {
  LabelStackModifier m;
  m.user_push(entry(40));
  const auto r = m.update(2, RouterType::kLsr, 0);  // level 2 is empty
  EXPECT_TRUE(r.discarded);
  EXPECT_EQ(m.stack_size(), 0u) << "DISCARD PACKET resets the label stack";
}

TEST(Discard, TtlExpiryAfterDecrement) {
  LabelStackModifier m;
  m.user_push(entry(40, 0, /*ttl=*/1));
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_TRUE(r.discarded) << "TTL 1 expires after the decrement";
  EXPECT_EQ(m.stack_size(), 0u);
}

TEST(Discard, TtlZeroInputDoesNotWrapToLife) {
  LabelStackModifier m;
  m.user_push(entry(40, 0, /*ttl=*/0));
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  EXPECT_TRUE(m.update(2, RouterType::kLsr, 0).discarded);
}

TEST(Discard, NopOperationIsInconsistent) {
  LabelStackModifier m;
  m.user_push(entry(40));
  m.write_pair(2, LabelPair{40, 77, LabelOp::kNop});
  EXPECT_TRUE(m.update(2, RouterType::kLsr, 0).discarded);
}

TEST(Discard, PushOverflowingTheStack) {
  LabelStackModifier m;
  m.user_push(entry(1));
  m.user_push(entry(2));
  m.user_push(entry(3));
  m.write_pair(3, LabelPair{3, 99, LabelOp::kPush});
  EXPECT_TRUE(m.update(3, RouterType::kLsr, 0).discarded)
      << "a 4-deep stack does not fit the hardware";
  EXPECT_EQ(m.stack_size(), 0u);
}

TEST(Discard, LsrRejectsUnlabeledPackets) {
  LabelStackModifier m;
  m.write_pair(1, LabelPair{1234, 55, LabelOp::kPush});
  EXPECT_TRUE(m.update(1, RouterType::kLsr, 1234).discarded)
      << "level-1 ingress lookups are the LER's job";
}

TEST(Discard, EmptyStackNonPushOperation) {
  LabelStackModifier m;
  m.write_pair(1, LabelPair{1234, 55, LabelOp::kSwap});
  EXPECT_TRUE(m.update(1, RouterType::kLer, 1234).discarded)
      << "only PUSH makes sense on an empty stack";
}

// ---- search result details ----

TEST(Search, FirstMatchWinsOnDuplicateIndices) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{40, 111, LabelOp::kSwap});
  m.write_pair(2, LabelPair{40, 222, LabelOp::kPop});
  const auto r = m.search(2, 40);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.label, 111u);
  EXPECT_EQ(r.operation, static_cast<rtl::u8>(LabelOp::kSwap));
}

TEST(Search, LevelOneUsesFull32BitCompare) {
  LabelStackModifier m;
  m.write_pair(1, LabelPair{0x100004, 111, LabelOp::kPush});
  // 0x200004 agrees in the low 20 bits but not the full identifier.
  EXPECT_FALSE(m.search(1, 0x200004).found);
  EXPECT_TRUE(m.search(1, 0x100004).found);
}

TEST(Search, LevelTwoUses20BitCompare) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{0x00004, 111, LabelOp::kSwap});
  EXPECT_TRUE(m.search(2, 0x00004).found);
  EXPECT_FALSE(m.search(2, 0x00005).found);
}

TEST(ReadPair, ReadsBackStoredPairs) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.write_pair(2, LabelPair{41, 88, LabelOp::kPop});
  const auto r0 = m.read_pair(2, 0);
  EXPECT_TRUE(r0.valid);
  EXPECT_EQ(r0.pair, (LabelPair{40, 77, LabelOp::kSwap}));
  const auto r1 = m.read_pair(2, 1);
  EXPECT_TRUE(r1.valid);
  EXPECT_EQ(r1.pair, (LabelPair{41, 88, LabelOp::kPop}));
}

TEST(ReadPair, ConstantFiveCycles) {
  LabelStackModifier m;
  for (rtl::u32 i = 0; i < 100; ++i) {
    m.write_pair(3, LabelPair{i + 1, i, LabelOp::kSwap});
  }
  EXPECT_EQ(m.read_pair(3, 0).cycles, kReadPairCycles);
  EXPECT_EQ(m.read_pair(3, 99).cycles, kReadPairCycles)
      << "read-back is address-indexed, not a search";
}

TEST(ReadPair, BeyondOccupancyIsInvalid) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  EXPECT_FALSE(m.read_pair(2, 5).valid);
}

TEST(Reset, ClearsStackInfoBaseAndOutputs) {
  LabelStackModifier m;
  m.user_push(entry(1));
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.search(2, 40);
  EXPECT_EQ(m.label_out(), 77u);
  m.do_reset();
  EXPECT_EQ(m.stack_size(), 0u);
  EXPECT_EQ(m.level_count(2), 0u);
  EXPECT_EQ(m.label_out(), 0u);
  EXPECT_EQ(m.operation_out(), 0u);
  EXPECT_FALSE(m.item_found());
}

TEST(Reset, ArchitectureIsReusableAfterReset) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.do_reset();
  m.user_push(entry(40));
  m.write_pair(2, LabelPair{40, 88, LabelOp::kSwap});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(m.stack_view().top().label, 88u)
      << "the pre-reset pair 40->77 is gone";
}

}  // namespace
}  // namespace empls::hw
