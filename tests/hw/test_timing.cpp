// Cycle-accuracy calibration against Table 6 of the paper.
//
// These tests pin the RTL model to the exact worst-case clock-cycle
// counts the paper reports: reset 3, user push 3, user pop 3, write label
// pair 3, search 3n+5, swap-from-info-base tail 6, and the Section 4
// worst case of 6167 cycles.
#include <gtest/gtest.h>

#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"

namespace empls::hw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

LabelEntry entry(rtl::u32 label, rtl::u8 cos = 0, rtl::u8 ttl = 64) {
  return LabelEntry{label, cos, false, ttl};
}

TEST(Table6, ResetTakesThreeCycles) {
  LabelStackModifier m;
  EXPECT_EQ(m.do_reset(), kResetCycles);
}

TEST(Table6, UserPushTakesThreeCycles) {
  LabelStackModifier m;
  EXPECT_EQ(m.user_push(entry(100)), kUserPushCycles);
  EXPECT_EQ(m.stack_size(), 1u);
}

TEST(Table6, UserPopTakesThreeCycles) {
  LabelStackModifier m;
  m.user_push(entry(100));
  EXPECT_EQ(m.user_pop(), kUserPopCycles);
  EXPECT_EQ(m.stack_size(), 0u);
}

TEST(Table6, WriteLabelPairTakesThreeCycles) {
  LabelStackModifier m;
  EXPECT_EQ(m.write_pair(1, LabelPair{600, 500, LabelOp::kSwap}),
            kWritePairCycles);
  EXPECT_EQ(m.level_count(1), 1u);
}

TEST(Table6, SearchMissCostsThreeNPlusFive) {
  LabelStackModifier m;
  for (rtl::u32 i = 0; i < 10; ++i) {
    m.write_pair(2, LabelPair{i + 1, 500 + i, LabelOp::kSwap});
  }
  const auto r = m.search(2, 27);  // absent (Figure 16 scenario)
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.cycles, search_cycles(10));
}

TEST(Table6, SearchHitCostsThreeKPlusFive) {
  LabelStackModifier m;
  for (rtl::u32 i = 0; i < 10; ++i) {
    m.write_pair(1, LabelPair{600 + i, 500 + i, LabelOp::kSwap});
  }
  // Figure 14 scenario: packet identifier 604 is the 5th entry.
  const auto r = m.search(1, 604);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.label, 504u);
  EXPECT_EQ(r.cycles, search_cycles(5));
}

TEST(Table6, SearchEmptyLevelCostsFive) {
  LabelStackModifier m;
  const auto r = m.search(3, 42);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.cycles, search_cycles(0));
}

TEST(Table6, SwapFromInfoBaseTailIsSixCycles) {
  LabelStackModifier m;
  // One label on the stack; its swap entry is the only pair at level 2,
  // so the search examines exactly one entry.
  m.user_push(entry(40, /*cos=*/3, /*ttl=*/64));
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  const auto r = m.update(2, RouterType::kLsr, /*packet_id=*/0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(r.cycles, update_swap_cycles(1));
  EXPECT_EQ(r.cycles - search_cycles(1), kSwapTailCycles);
  const auto view = m.stack_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.top().label, 77u);
  EXPECT_EQ(view.top().ttl, 63u);  // decremented
  EXPECT_EQ(view.top().cos, 3u);   // CoS preserved
}

TEST(Table6, WorstCaseIs6167Cycles) {
  // Section 4: "the worst case number of cycles required to reset the
  // architecture, push three stack entries, fill an entire level with
  // 1024 label pairs and perform a swap would be 6167 cycles."
  LabelStackModifier m;
  rtl::u64 total = 0;
  total += m.do_reset();
  for (int i = 0; i < 3; ++i) {
    total += m.user_push(entry(1000 + static_cast<rtl::u32>(i)));
  }
  // Fill level 3 so the swap's search scans all 1024 entries; the last
  // pair matches the top of the stack (worst-position hit).
  for (rtl::u32 i = 0; i < 1023; ++i) {
    total += m.write_pair(3, LabelPair{2000 + i, 3000 + i, LabelOp::kSwap});
  }
  total += m.write_pair(3, LabelPair{1002, 4242, LabelOp::kSwap});
  const auto r = m.update(3, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  total += r.cycles;
  EXPECT_EQ(total, worst_case_cycles(1024));
  EXPECT_EQ(total, 6167u);
}

TEST(Timing, PopTailIsSixCycles) {
  LabelStackModifier m;
  m.user_push(entry(10));
  m.user_push(entry(20));
  m.write_pair(2, LabelPair{20, 0, LabelOp::kPop});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(r.cycles, update_pop_cycles(1));
}

TEST(Timing, NestedPushTailIsSevenCycles) {
  LabelStackModifier m;
  m.user_push(entry(10));
  m.write_pair(2, LabelPair{10, 99, LabelOp::kPush});
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(r.cycles, update_push_cycles(1, /*stack_was_empty=*/false));
  EXPECT_EQ(m.stack_size(), 2u);
}

TEST(Timing, IngressPushTailIsSixCycles) {
  LabelStackModifier m;
  m.write_pair(1, LabelPair{0xC0A80001, 55, LabelOp::kPush});
  const auto r =
      m.update(1, RouterType::kLer, 0xC0A80001, /*cos=*/5, /*ttl=*/64);
  EXPECT_FALSE(r.discarded);
  EXPECT_EQ(r.cycles, update_push_cycles(1, /*stack_was_empty=*/true));
  const auto view = m.stack_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view.top().label, 55u);
  EXPECT_EQ(view.top().cos, 5u);
  EXPECT_EQ(view.top().ttl, 63u);
}

TEST(Timing, UpdateMissCostsSearchPlusTwo) {
  LabelStackModifier m;
  m.user_push(entry(10));
  for (rtl::u32 i = 0; i < 4; ++i) {
    m.write_pair(2, LabelPair{100 + i, 200 + i, LabelOp::kSwap});
  }
  const auto r = m.update(2, RouterType::kLsr, 0);
  EXPECT_TRUE(r.discarded);
  EXPECT_EQ(r.cycles, update_miss_cycles(4));
  EXPECT_EQ(m.stack_size(), 0u);  // discard resets the stack
}

TEST(Timing, SearchIsLinearInEntriesExamined) {
  LabelStackModifier m;
  for (rtl::u32 i = 0; i < 64; ++i) {
    m.write_pair(2, LabelPair{i + 1, 500 + i, LabelOp::kSwap});
  }
  for (rtl::u32 k : {1u, 2u, 8u, 32u, 64u}) {
    const auto r = m.search(2, k);
    ASSERT_TRUE(r.found) << "key " << k;
    EXPECT_EQ(r.cycles, search_cycles(k)) << "key " << k;
  }
}

}  // namespace
}  // namespace empls::hw
