// Control-unit invariants: the main interface serialises the label stack
// and information base interfaces ("ensure the remaining state machines
// are not working at the same time"), grants are Mealy outputs of IDLE,
// and every flow returns the whole control unit to idle.
#include <gtest/gtest.h>

#include "hw/label_stack_modifier.hpp"

namespace empls::hw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

/// Step until ready, asserting the mutual-exclusion invariant at every
/// cycle: the two datapath-owning interfaces are never simultaneously
/// out of IDLE.
void run_checking_exclusion(LabelStackModifier& m) {
  do {
    m.sim().step();
    const bool stack_active = m.stack_fsm().state() != StackFsm::State::kIdle;
    const bool ib_active = m.infobase_fsm().state() != InfoBaseFsm::State::kIdle;
    ASSERT_FALSE(stack_active && ib_active)
        << "label stack and info base interfaces active together at cycle "
        << m.sim().cycle();
  } while (!m.ready());
}

TEST(ControlUnit, MutualExclusionAcrossAllFlows) {
  LabelStackModifier m;
  m.issue_user_push(LabelEntry{40, 0, false, 64});
  run_checking_exclusion(m);
  m.issue_write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  run_checking_exclusion(m);
  m.issue_search(2, 40);
  run_checking_exclusion(m);
  m.issue_update(2, RouterType::kLsr, 0, 0, 0);
  run_checking_exclusion(m);
  m.issue_user_pop();
  run_checking_exclusion(m);
  m.issue_reset();
  run_checking_exclusion(m);
}

TEST(ControlUnit, AllFsmsIdleWhenReady) {
  LabelStackModifier m;
  m.user_push(LabelEntry{40, 0, false, 64});
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.update(2, RouterType::kLsr, 0);
  EXPECT_EQ(m.main_fsm().state(), MainFsm::State::kIdle);
  EXPECT_EQ(m.stack_fsm().state(), StackFsm::State::kIdle);
  EXPECT_EQ(m.infobase_fsm().state(), InfoBaseFsm::State::kIdle);
  EXPECT_TRUE(m.search_fsm().idle());
}

TEST(ControlUnit, GrantsAreOnlyAssertedInIdleWithAPendingOp) {
  LabelStackModifier m;
  EXPECT_FALSE(m.main_fsm().grant_label()) << "no operation pending";
  EXPECT_FALSE(m.main_fsm().grant_info_base());

  m.issue_user_push(LabelEntry{1, 0, false, 64});
  EXPECT_TRUE(m.main_fsm().grant_label());
  EXPECT_FALSE(m.main_fsm().grant_info_base());
  m.sim().step();  // dispatch consumes the operation
  EXPECT_FALSE(m.main_fsm().grant_label())
      << "grant drops once the operation is consumed";
  m.run_to_idle();
}

TEST(ControlUnit, OperationConsumedExactlyOnce) {
  LabelStackModifier m;
  m.issue_user_push(LabelEntry{1, 0, false, 64});
  m.run_to_idle();
  EXPECT_EQ(m.stack_size(), 1u);
  // Nothing pending: further cycles must not re-execute the push.
  m.sim().run(20);
  EXPECT_EQ(m.stack_size(), 1u);
}

TEST(ControlUnit, SearchFsmVisitsExpectedStates) {
  LabelStackModifier m;
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.issue_search(2, 40);

  std::vector<SearchFsm::State> seen;
  do {
    m.sim().step();
    if (seen.empty() || seen.back() != m.search_fsm().state()) {
      seen.push_back(m.search_fsm().state());
    }
  } while (!m.ready());

  const std::vector<SearchFsm::State> expected = {
      SearchFsm::State::kIdle,  SearchFsm::State::kInit,
      SearchFsm::State::kPrime, SearchFsm::State::kRead,
      SearchFsm::State::kWait,  SearchFsm::State::kCompare,
      SearchFsm::State::kFound, SearchFsm::State::kIdle};
  EXPECT_EQ(seen, expected);
}

TEST(ControlUnit, UpdateFlowVisitsFigure9States) {
  LabelStackModifier m;
  m.user_push(LabelEntry{40, 0, false, 64});
  m.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  m.issue_update(2, RouterType::kLsr, 0, 0, 0);

  std::vector<StackFsm::State> seen;
  do {
    m.sim().step();
    if (seen.empty() || seen.back() != m.stack_fsm().state()) {
      seen.push_back(m.stack_fsm().state());
    }
  } while (!m.ready());

  const std::vector<StackFsm::State> expected = {
      StackFsm::State::kSearchEnable, StackFsm::State::kRemoveTop,
      StackFsm::State::kUpdateTtl,    StackFsm::State::kVerify,
      StackFsm::State::kPushNew,      StackFsm::State::kComplete,
      StackFsm::State::kIdle};
  EXPECT_EQ(seen, expected);
}

TEST(ControlUnit, MissRoutesToDiscardState) {
  LabelStackModifier m;
  m.user_push(LabelEntry{40, 0, false, 64});
  m.issue_update(2, RouterType::kLsr, 0, 0, 0);
  bool discard_state_seen = false;
  do {
    m.sim().step();
    discard_state_seen = discard_state_seen ||
                         m.stack_fsm().state() == StackFsm::State::kDiscard;
  } while (!m.ready());
  EXPECT_TRUE(discard_state_seen)
      << "Figure 9: 'No item found' -> DISCARD PACKET";
}

TEST(ControlUnit, BackToBackOperationsDoNotInterfere) {
  LabelStackModifier m;
  for (rtl::u32 i = 0; i < 50; ++i) {
    m.write_pair(2, LabelPair{i + 1, 100 + i, LabelOp::kSwap});
  }
  // Interleave searches and stack ops; each must see consistent state.
  for (rtl::u32 i = 1; i <= 50; ++i) {
    const auto r = m.search(2, i);
    ASSERT_TRUE(r.found) << i;
    ASSERT_EQ(r.label, 99u + i);
    m.user_push(LabelEntry{i, 0, false, 64});
    m.user_pop();
  }
  EXPECT_EQ(m.stack_size(), 0u);
}

}  // namespace
}  // namespace empls::hw
