// Unit tests for the information base: per-level memories, address
// counters, occupancy, and capacity behaviour.
#include <gtest/gtest.h>

#include "hw/info_base.hpp"
#include "rtl/simulator.hpp"

namespace empls::hw {
namespace {

struct Rig {
  rtl::Simulator sim;
  InfoBase ib;
  Rig() {
    sim.add(&ib);
    sim.reset();
  }
  void write(unsigned level, rtl::u64 index, rtl::u64 label, rtl::u64 op) {
    ib.level(level).issue_write_pair(index, label, op);
    sim.step();
  }
};

TEST(InfoBase, ThreeLevelsWithPaperWidths) {
  InfoBase ib;
  EXPECT_EQ(ib.level(1).index_bits(), 32u)
      << "level 1 indexes 32-bit packet identifiers";
  EXPECT_EQ(ib.level(2).index_bits(), 20u);
  EXPECT_EQ(ib.level(3).index_bits(), 20u);
  EXPECT_TRUE(InfoBase::valid_level(1));
  EXPECT_TRUE(InfoBase::valid_level(3));
  EXPECT_FALSE(InfoBase::valid_level(0));
  EXPECT_FALSE(InfoBase::valid_level(4));
}

TEST(InfoBase, WriteAppendsAtWIndex) {
  Rig rig;
  rig.write(1, 600, 500, 1);
  rig.write(1, 601, 501, 2);
  EXPECT_EQ(rig.ib.level(1).count(), 2u);
  EXPECT_EQ(rig.ib.level(1).peek_index(0), 600u);
  EXPECT_EQ(rig.ib.level(1).peek_label(0), 500u);
  EXPECT_EQ(rig.ib.level(1).peek_op(0), 1u);
  EXPECT_EQ(rig.ib.level(1).peek_index(1), 601u);
}

TEST(InfoBase, LevelsAreIndependent) {
  Rig rig;
  rig.write(1, 600, 500, 1);
  rig.write(2, 7, 70, 3);
  rig.write(3, 8, 80, 2);
  EXPECT_EQ(rig.ib.level(1).count(), 1u);
  EXPECT_EQ(rig.ib.level(2).count(), 1u);
  EXPECT_EQ(rig.ib.level(3).count(), 1u);
  EXPECT_EQ(rig.ib.level(2).peek_index(0), 7u);
  EXPECT_EQ(rig.ib.level(3).peek_index(0), 8u);
}

TEST(InfoBase, LevelTwoTruncatesIndexTo20Bits) {
  // Levels 2/3 store 20-bit labels; wider values are truncated on write,
  // exactly as the narrower index memory would store them.
  Rig rig;
  rig.write(2, 0x12ABCDE, 0x3FFFFF, 0x7);
  EXPECT_EQ(rig.ib.level(2).peek_index(0), 0x2ABCDEu & 0xFFFFFu);
  EXPECT_EQ(rig.ib.level(2).peek_label(0), 0xFFFFFu);
  EXPECT_EQ(rig.ib.level(2).peek_op(0), 0x3u) << "operation memory is 2 bits";
}

TEST(InfoBase, ReadPortHasOneCycleLatency) {
  Rig rig;
  rig.write(2, 40, 77, 3);
  rig.ib.level(2).clear_r_index();
  rig.sim.step();
  rig.ib.level(2).issue_read_at_r();
  rig.sim.step();
  EXPECT_EQ(rig.ib.level(2).index_out(), 40u);
  EXPECT_EQ(rig.ib.level(2).label_out(), 77u);
  EXPECT_EQ(rig.ib.level(2).op_out(), 3u);
}

TEST(InfoBase, RIndexAdvances) {
  Rig rig;
  rig.ib.level(2).clear_r_index();
  rig.sim.step();
  EXPECT_EQ(rig.ib.level(2).r_index(), 0u);
  rig.ib.level(2).advance_r_index();
  rig.sim.step();
  EXPECT_EQ(rig.ib.level(2).r_index(), 1u);
}

TEST(InfoBase, FullLevelDropsWrites) {
  Rig rig;
  for (rtl::u64 i = 0; i < kLevelDepth; ++i) {
    rig.write(3, i, i, 1);
  }
  EXPECT_TRUE(rig.ib.level(3).full());
  EXPECT_EQ(rig.ib.level(3).count(), kLevelDepth);
  rig.write(3, 9999, 9999, 1);
  EXPECT_EQ(rig.ib.level(3).count(), kLevelDepth)
      << "writes to a full level are dropped";
  EXPECT_EQ(rig.ib.level(3).peek_index(kLevelDepth - 1), kLevelDepth - 1)
      << "existing contents undisturbed";
}

TEST(InfoBase, ClearOccupancyForgetsEntriesCheaply) {
  Rig rig;
  rig.write(1, 600, 500, 1);
  rig.ib.clear_all_occupancy();
  rig.sim.step();
  EXPECT_EQ(rig.ib.level(1).count(), 0u);
  // The cells still hold stale data (a real BRAM is not wiped by the
  // 3-cycle reset); occupancy is the validity boundary.
  EXPECT_EQ(rig.ib.level(1).peek_index(0), 600u);
}

TEST(InfoBase, OccupancyCounterHoldsFullValue) {
  // 1024 does not fit in the 10-bit address counter; the occupancy
  // counter is 11 bits wide so "completely full" is representable.
  EXPECT_GE(kOccupancyBits, 11u);
  EXPECT_EQ(rtl::mask_width(kOccupancyBits), 2047u);
}

}  // namespace
}  // namespace empls::hw
