// Direct unit tests for the shared Figure 9 semantics: key selection,
// every verify branch's discard reason, and field handling — the
// contract every engine (and the RTL) is held to.
#include <gtest/gtest.h>

#include "sw/semantics.hpp"

namespace empls::sw {
namespace {

using hw::RouterType;
using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

mpls::Packet unlabeled(rtl::u8 ttl = 64) {
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.0.0.9");
  p.cos = 4;
  p.ip_ttl = ttl;
  return p;
}

mpls::Packet labeled(rtl::u32 label, rtl::u8 ttl = 64, rtl::u8 cos = 2) {
  mpls::Packet p = unlabeled();
  p.stack.push(LabelEntry{label, cos, false, ttl});
  return p;
}

TEST(UpdateKey, EmptyStackUsesLevel1AndPid) {
  const auto p = unlabeled();
  const auto k = update_key(p, 3);
  EXPECT_EQ(k.level, 1u);
  EXPECT_EQ(k.key, p.packet_identifier());
}

TEST(UpdateKey, LabeledUsesCallerLevelAndTopLabel) {
  const auto p = labeled(777);
  const auto k = update_key(p, 2);
  EXPECT_EQ(k.level, 2u);
  EXPECT_EQ(k.key, 777u);
}

TEST(ApplyUpdate, MissReason) {
  auto p = labeled(40);
  const auto out = apply_update(p, std::nullopt, RouterType::kLsr);
  EXPECT_TRUE(out.discarded);
  EXPECT_EQ(out.reason, DiscardReason::kMiss);
  EXPECT_TRUE(p.stack.empty()) << "discard resets the stack";
}

TEST(ApplyUpdate, TtlReasons) {
  auto p1 = labeled(40, /*ttl=*/1);
  const auto o1 = apply_update(p1, LabelPair{40, 77, LabelOp::kSwap},
                               RouterType::kLsr);
  EXPECT_EQ(o1.reason, DiscardReason::kTtlExpired);

  auto p0 = labeled(40, /*ttl=*/0);
  const auto o0 = apply_update(p0, LabelPair{40, 77, LabelOp::kSwap},
                               RouterType::kLsr);
  EXPECT_EQ(o0.reason, DiscardReason::kTtlExpired)
      << "a zero TTL must not wrap to 255 lives";
}

TEST(ApplyUpdate, InconsistentReasons) {
  // NOP stored.
  auto p = labeled(40);
  EXPECT_EQ(apply_update(p, LabelPair{40, 0, LabelOp::kNop},
                         RouterType::kLsr)
                .reason,
            DiscardReason::kInconsistent);
  // Swap on empty.
  auto e = unlabeled();
  EXPECT_EQ(apply_update(e, LabelPair{0, 77, LabelOp::kSwap},
                         RouterType::kLer)
                .reason,
            DiscardReason::kInconsistent);
  // LSR with empty stack.
  auto l = unlabeled();
  EXPECT_EQ(apply_update(l, LabelPair{0, 77, LabelOp::kPush},
                         RouterType::kLsr)
                .reason,
            DiscardReason::kInconsistent);
  // Push overflow.
  auto full = labeled(10);
  full.stack.push(LabelEntry{20, 0, false, 64});
  full.stack.push(LabelEntry{30, 0, false, 64});
  EXPECT_EQ(apply_update(full, LabelPair{30, 77, LabelOp::kPush},
                         RouterType::kLsr)
                .reason,
            DiscardReason::kInconsistent);
}

TEST(ApplyUpdate, SwapKeepsCosAndSBit) {
  auto p = labeled(40, 64, /*cos=*/6);
  const auto out = apply_update(p, LabelPair{40, 77, LabelOp::kSwap},
                                RouterType::kLsr);
  EXPECT_FALSE(out.discarded);
  EXPECT_EQ(out.reason, DiscardReason::kNone);
  EXPECT_EQ(p.stack.top().label, 77u);
  EXPECT_EQ(p.stack.top().cos, 6u);
  EXPECT_EQ(p.stack.top().ttl, 63u);
  EXPECT_TRUE(p.stack.top().bottom);
  EXPECT_EQ(out.ttl_after, 63u);
}

TEST(ApplyUpdate, PopExposesLowerEntryWithNewTtl) {
  auto p = labeled(10, 50, 1);
  p.stack.push(LabelEntry{20, 3, false, 90});
  const auto out = apply_update(p, LabelPair{20, 0, LabelOp::kPop},
                                RouterType::kLsr);
  EXPECT_FALSE(out.discarded);
  ASSERT_EQ(p.stack.size(), 1u);
  EXPECT_EQ(p.stack.top().label, 10u);
  EXPECT_EQ(p.stack.top().ttl, 89u);
  EXPECT_EQ(p.stack.top().cos, 1u);
}

TEST(ApplyUpdate, IngressPushUsesPacketClassAndIpTtl) {
  auto p = unlabeled(/*ttl=*/32);
  const auto out = apply_update(p, LabelPair{0, 55, LabelOp::kPush},
                                RouterType::kLer);
  EXPECT_FALSE(out.discarded);
  ASSERT_EQ(p.stack.size(), 1u);
  EXPECT_EQ(p.stack.top().label, 55u);
  EXPECT_EQ(p.stack.top().cos, p.cos);
  EXPECT_EQ(p.stack.top().ttl, 31u);
}

TEST(ApplyUpdate, NestedPushDuplicatesTtlAndCos) {
  auto p = labeled(40, 80, 5);
  const auto out = apply_update(p, LabelPair{40, 99, LabelOp::kPush},
                                RouterType::kLsr);
  EXPECT_FALSE(out.discarded);
  ASSERT_EQ(p.stack.size(), 2u);
  EXPECT_EQ(p.stack.at(0).label, 99u);
  EXPECT_EQ(p.stack.at(1).label, 40u) << "inner label re-pushed unchanged";
  EXPECT_EQ(p.stack.at(0).ttl, 79u);
  EXPECT_EQ(p.stack.at(1).ttl, 79u);
  EXPECT_EQ(p.stack.at(0).cos, 5u);
  EXPECT_TRUE(p.stack.s_bit_invariant_holds());
}

TEST(DiscardReasonNames, AreStable) {
  // OAM matches on these strings; renaming them is a breaking change.
  EXPECT_EQ(to_string(DiscardReason::kMiss), "no-label-binding");
  EXPECT_EQ(to_string(DiscardReason::kTtlExpired), "ttl-expired");
  EXPECT_EQ(to_string(DiscardReason::kInconsistent),
            "inconsistent-operation");
}

}  // namespace
}  // namespace empls::sw
