// SimdEngine specifics beyond the shared EveryEngine behaviour suite:
// the SoA store's pad-lane handling at block boundaries, first-match
// priority inside a compare block, raw-index preservation under key
// masking, the Table 6 cycle model staying bit-identical to
// LinearEngine, epoch bookkeeping, and batch/sequential agreement.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "hw/cycle_model.hpp"
#include "sw/linear_engine.hpp"
#include "sw/simd_engine.hpp"

namespace empls::sw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

mpls::Packet labelled(rtl::u32 label) {
  mpls::Packet p;
  p.stack.push(LabelEntry{label, 0, false, 64});
  return p;
}

TEST(SimdEngine, KernelIsKnown) {
  const std::string_view k = SimdEngine::kernel();
  EXPECT_TRUE(k == "sse2" || k == "neon" || k == "scalar") << k;
}

// The acceptance property behind everything else: for any hit position —
// including every edge around the 16-lane block boundaries — the SoA
// scan must report the same 1-based match position, and therefore the
// same 3k+5 search cycles, as the golden linear scan.
TEST(SimdEngine, BitIdenticalToLinearAcrossLaneBoundaries) {
  SimdEngine simd;
  LinearEngine linear;
  for (rtl::u32 i = 1; i <= 100; ++i) {
    simd.write_pair(2, LabelPair{i, 1000 + i, LabelOp::kSwap});
    linear.write_pair(2, LabelPair{i, 1000 + i, LabelOp::kSwap});
  }
  for (rtl::u32 k : {1u, 2u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u,
                     99u, 100u}) {
    auto ps = labelled(k);
    auto pl = labelled(k);
    const auto os = simd.update(ps, 2, hw::RouterType::kLsr);
    const auto ol = linear.update(pl, 2, hw::RouterType::kLsr);
    EXPECT_EQ(simd.last_entries_examined(), k) << "hit position " << k;
    EXPECT_EQ(os.hw_cycles, ol.hw_cycles) << "hit position " << k;
    EXPECT_EQ(ps.stack.top().label, pl.stack.top().label);
  }
  // A miss examines the full occupancy on both engines.
  auto ps = labelled(999);
  auto pl = labelled(999);
  const auto os = simd.update(ps, 2, hw::RouterType::kLsr);
  const auto ol = linear.update(pl, 2, hw::RouterType::kLsr);
  EXPECT_TRUE(os.discarded);
  EXPECT_EQ(simd.last_entries_examined(), 100u);
  EXPECT_EQ(os.hw_cycles, ol.hw_cycles);
}

// The key lane is zero-padded to whole compare blocks; those pad lanes
// must never satisfy a lookup for key 0 — until a real binding with
// key 0 is programmed, at which point it must hit at its true position.
TEST(SimdEngine, PadLanesNeverMatch) {
  SimdEngine e;
  EXPECT_FALSE(e.lookup(2, 0).has_value()) << "empty store";
  for (rtl::u32 i = 1; i <= 3; ++i) {
    e.write_pair(2, LabelPair{i, 100 + i, LabelOp::kSwap});
  }
  // 3 live lanes, 13 zero pads in the first block.
  EXPECT_FALSE(e.lookup(2, 0).has_value()) << "pads must not match key 0";
  e.write_pair(2, LabelPair{0, 555, LabelOp::kSwap});
  const auto hit = e.lookup(2, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 555u);
  EXPECT_EQ(e.last_entries_examined(), 4u) << "real key-0 entry, position 4";
}

// First-match-wins must hold *inside* one compare block, where all the
// duplicates are examined by the same SIMD compare.
TEST(SimdEngine, FirstMatchWinsWithinABlock) {
  SimdEngine e;
  e.write_pair(2, LabelPair{40, 111, LabelOp::kSwap});
  e.write_pair(2, LabelPair{40, 222, LabelOp::kPop});
  e.write_pair(2, LabelPair{40, 333, LabelOp::kSwap});
  const auto hit = e.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 111u);
  EXPECT_EQ(e.last_entries_examined(), 1u);
}

// Levels 2/3 compare only the 20 label bits, but lookup must return the
// pair exactly as written (raw index included) — same as LinearEngine.
TEST(SimdEngine, RawIndexSurvivesKeyMasking) {
  SimdEngine simd;
  LinearEngine linear;
  const rtl::u32 raw = 0xFFF00028u;  // garbage above the 20 label bits
  simd.write_pair(2, LabelPair{raw, 77, LabelOp::kSwap});
  linear.write_pair(2, LabelPair{raw, 77, LabelOp::kSwap});
  const auto hs = simd.lookup(2, 0x28);
  const auto hl = linear.lookup(2, 0x28);
  ASSERT_TRUE(hs.has_value());
  ASSERT_TRUE(hl.has_value());
  EXPECT_EQ(hs->index, hl->index) << "stored pair returned as written";
  EXPECT_EQ(hs->index, raw);
  // Level 1 compares the full 32 bits: no masking, no aliasing.
  simd.write_pair(1, LabelPair{raw, 88, LabelOp::kPush});
  EXPECT_TRUE(simd.lookup(1, raw).has_value());
  EXPECT_FALSE(simd.lookup(1, 0x28).has_value());
}

TEST(SimdEngine, CapacityEnforcedPerLevel) {
  SimdEngine e(4);
  for (rtl::u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(e.write_pair(2, LabelPair{i + 1, i, LabelOp::kSwap}));
  }
  EXPECT_FALSE(e.write_pair(2, LabelPair{99, 0, LabelOp::kSwap}));
  EXPECT_EQ(e.level_size(2), 4u);
  EXPECT_TRUE(e.write_pair(3, LabelPair{1, 0, LabelOp::kSwap}))
      << "levels have independent capacity";
}

TEST(SimdEngine, CorruptEntryGarblesTheStoredLabel) {
  SimdEngine e;
  e.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  EXPECT_FALSE(e.corrupt_entry(2, 41, 123)) << "no binding for 41";
  EXPECT_TRUE(e.corrupt_entry(2, 40, 0xFFFFFFFFu));
  const auto hit = e.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 0xFFFFFFFFu & mpls::kMaxLabel)
      << "garbled label is masked to label width";
  EXPECT_EQ(hit->op, LabelOp::kSwap) << "operation survives the upset";
}

TEST(SimdEngine, EveryMutationAdvancesTheEpoch) {
  SimdEngine e;
  const auto e0 = e.epoch();
  e.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  EXPECT_EQ(e.epoch(), e0 + 1);
  e.corrupt_entry(2, 40, 1);
  EXPECT_EQ(e.epoch(), e0 + 2);
  e.corrupt_entry(2, 999, 1);  // failed corruption still invalidates
  EXPECT_EQ(e.epoch(), e0 + 3);
  e.clear();
  EXPECT_EQ(e.epoch(), e0 + 4);
  EXPECT_EQ(e.level_size(2), 0u);
}

TEST(SimdEngine, IsCacheableAndReportsLookupCost) {
  SimdEngine e;
  EXPECT_TRUE(e.cacheable());
  for (rtl::u32 i = 1; i <= 10; ++i) {
    e.write_pair(2, LabelPair{i, 100 + i, LabelOp::kSwap});
  }
  ASSERT_TRUE(e.lookup(2, 7).has_value());
  EXPECT_EQ(e.last_lookup_cost_cycles(), hw::search_cycles(7));
  ASSERT_FALSE(e.lookup(2, 999).has_value());
  EXPECT_EQ(e.last_lookup_cost_cycles(), hw::search_cycles(10));
}

TEST(SimdEngine, BatchAgreesWithSequentialUpdates) {
  SimdEngine batched;
  SimdEngine sequential;
  for (rtl::u32 i = 1; i <= 40; ++i) {
    batched.write_pair(2, LabelPair{i, 1000 + i, LabelOp::kSwap});
    sequential.write_pair(2, LabelPair{i, 1000 + i, LabelOp::kSwap});
  }
  std::vector<mpls::Packet> packets;
  for (rtl::u32 i = 0; i < 64; ++i) {
    packets.push_back(labelled(1 + i % 45));  // some keys miss
  }
  auto copies = packets;
  std::vector<mpls::Packet*> ptrs;
  for (auto& p : packets) {
    ptrs.push_back(&p);
  }
  const auto outs = batched.update_batch(ptrs, hw::RouterType::kLsr);
  ASSERT_EQ(outs.size(), copies.size());
  rtl::u64 sum = 0;
  for (std::size_t i = 0; i < copies.size(); ++i) {
    const auto ref = sequential.update(copies[i], 2, hw::RouterType::kLsr);
    EXPECT_EQ(outs[i].discarded, ref.discarded) << i;
    EXPECT_EQ(outs[i].applied, ref.applied) << i;
    EXPECT_EQ(outs[i].hw_cycles, ref.hw_cycles) << i;
    sum += ref.hw_cycles;
  }
  EXPECT_EQ(batched.last_batch_makespan_cycles(), sum)
      << "single datapath: makespan is the per-packet sum";
}

}  // namespace
}  // namespace empls::sw
