// Engine tests: every LabelEngine implementation agrees on behaviour
// (parameterized over engines), plus engine-specific semantics — linear
// scan order, hash first-binding-wins, CAM cost model, capacity limits.
#include <gtest/gtest.h>

#include <memory>

#include "hw/cycle_model.hpp"
#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/simd_engine.hpp"
#include "sw/trie_engine.hpp"

namespace empls::sw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

enum class Kind { kLinear, kHash, kCam, kSimd, kTrie, kHwRtl };

std::unique_ptr<LabelEngine> make(Kind kind, std::size_t capacity = 1024) {
  switch (kind) {
    case Kind::kLinear:
      return std::make_unique<LinearEngine>(capacity);
    case Kind::kHash:
      return std::make_unique<HashEngine>(capacity);
    case Kind::kCam:
      return std::make_unique<CamEngine>(capacity);
    case Kind::kSimd:
      return std::make_unique<SimdEngine>(capacity);
    case Kind::kTrie:
      return std::make_unique<TrieEngine>(capacity);
    case Kind::kHwRtl:
      return std::make_unique<HwEngine>();
  }
  return nullptr;
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kLinear:
      return "Linear";
    case Kind::kHash:
      return "Hash";
    case Kind::kCam:
      return "Cam";
    case Kind::kSimd:
      return "Simd";
    case Kind::kTrie:
      return "Trie";
    case Kind::kHwRtl:
      return "HwRtl";
  }
  return "?";
}

class EveryEngine : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<LabelEngine> engine_ = make(GetParam());
};

TEST_P(EveryEngine, LookupFindsStoredPair) {
  engine_->write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  const auto hit = engine_->lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 77u);
  EXPECT_EQ(hit->op, LabelOp::kSwap);
  EXPECT_FALSE(engine_->lookup(2, 41).has_value());
  EXPECT_FALSE(engine_->lookup(3, 40).has_value()) << "levels are separate";
}

TEST_P(EveryEngine, SwapUpdate) {
  engine_->write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  mpls::Packet p;
  p.stack.push(LabelEntry{40, 5, false, 64});
  const auto out = engine_->update(p, 2, hw::RouterType::kLsr);
  EXPECT_FALSE(out.discarded);
  EXPECT_EQ(out.applied, LabelOp::kSwap);
  ASSERT_EQ(p.stack.size(), 1u);
  EXPECT_EQ(p.stack.top().label, 77u);
  EXPECT_EQ(p.stack.top().cos, 5u);
  EXPECT_EQ(p.stack.top().ttl, 63u);
}

TEST_P(EveryEngine, IngressPushUpdate) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 1);
  p.cos = 4;
  p.ip_ttl = 32;
  engine_->write_pair(1,
                      LabelPair{p.packet_identifier(), 55, LabelOp::kPush});
  const auto out = engine_->update(p, 1, hw::RouterType::kLer);
  EXPECT_FALSE(out.discarded);
  ASSERT_EQ(p.stack.size(), 1u);
  EXPECT_EQ(p.stack.top().label, 55u);
  EXPECT_EQ(p.stack.top().cos, 4u);
  EXPECT_EQ(p.stack.top().ttl, 31u);
}

TEST_P(EveryEngine, MissDiscards) {
  mpls::Packet p;
  p.stack.push(LabelEntry{999, 0, false, 64});
  const auto out = engine_->update(p, 2, hw::RouterType::kLsr);
  EXPECT_TRUE(out.discarded);
  EXPECT_TRUE(p.stack.empty());
}

TEST_P(EveryEngine, TtlExpiryDiscards) {
  engine_->write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  mpls::Packet p;
  p.stack.push(LabelEntry{40, 0, false, 1});
  EXPECT_TRUE(engine_->update(p, 2, hw::RouterType::kLsr).discarded);
  EXPECT_TRUE(p.stack.empty());
}

TEST_P(EveryEngine, ClearForgetsEverything) {
  engine_->write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  engine_->clear();
  EXPECT_EQ(engine_->level_size(2), 0u);
  EXPECT_FALSE(engine_->lookup(2, 40).has_value());
}

INSTANTIATE_TEST_SUITE_P(Engines, EveryEngine,
                         ::testing::Values(Kind::kLinear, Kind::kHash,
                                           Kind::kCam, Kind::kSimd,
                                           Kind::kTrie, Kind::kHwRtl),
                         [](const auto& info) {
                           return kind_name(info.param);
                         });

// ---- engine-specific behaviour ----

TEST(LinearEngine, CapacityEnforced) {
  LinearEngine e(4);
  for (rtl::u32 i = 0; i < 4; ++i) {
    EXPECT_TRUE(e.write_pair(2, LabelPair{i + 1, i, LabelOp::kSwap}));
  }
  EXPECT_FALSE(e.write_pair(2, LabelPair{99, 0, LabelOp::kSwap}));
  EXPECT_EQ(e.level_size(2), 4u);
}

TEST(LinearEngine, ReportsEntriesExamined) {
  LinearEngine e;
  for (rtl::u32 i = 1; i <= 10; ++i) {
    e.write_pair(2, LabelPair{i, 100 + i, LabelOp::kSwap});
  }
  EXPECT_TRUE(e.lookup(2, 7).has_value());
  EXPECT_EQ(e.last_entries_examined(), 7u);
  EXPECT_FALSE(e.lookup(2, 999).has_value());
  EXPECT_EQ(e.last_entries_examined(), 10u) << "miss scans everything";
}

TEST(LinearEngine, ModeledCyclesMatchTable6) {
  LinearEngine e;
  for (rtl::u32 i = 1; i <= 10; ++i) {
    e.write_pair(2, LabelPair{i, 100 + i, LabelOp::kSwap});
  }
  mpls::Packet p;
  p.stack.push(LabelEntry{7, 0, false, 64});
  const auto out = e.update(p, 2, hw::RouterType::kLsr);
  EXPECT_EQ(out.hw_cycles, hw::update_swap_cycles(7));
}

TEST(HashEngine, FirstBindingWinsLikeTheScan) {
  HashEngine e;
  e.write_pair(2, LabelPair{40, 111, LabelOp::kSwap});
  e.write_pair(2, LabelPair{40, 222, LabelOp::kPop});
  const auto hit = e.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 111u)
      << "must match the hardware's first-match scan order";
}

TEST(HashEngine, NoHardwareCycleModel) {
  HashEngine e;
  e.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  mpls::Packet p;
  p.stack.push(LabelEntry{40, 0, false, 64});
  EXPECT_EQ(e.update(p, 2, hw::RouterType::kLsr).hw_cycles, 0u);
}

TEST(CamEngine, ConstantSearchCost) {
  CamEngine e;
  for (rtl::u32 i = 1; i <= 100; ++i) {
    e.write_pair(2, LabelPair{i, 100 + i, LabelOp::kSwap});
  }
  mpls::Packet p1;
  p1.stack.push(LabelEntry{1, 0, false, 64});
  mpls::Packet p2;
  p2.stack.push(LabelEntry{100, 0, false, 64});
  const auto first = e.update(p1, 2, hw::RouterType::kLsr);
  const auto last = e.update(p2, 2, hw::RouterType::kLsr);
  EXPECT_EQ(first.hw_cycles, last.hw_cycles)
      << "CAM cost is independent of hit position";
  EXPECT_EQ(first.hw_cycles, kCamSearchCycles + hw::kSwapTailCycles);
}

TEST(HwEngine, CyclesIncludeStackTransfers) {
  HwEngine e;
  e.write_pair(3, LabelPair{20, 99, LabelOp::kSwap});
  mpls::Packet p;
  p.stack.push(LabelEntry{10, 0, false, 64});
  p.stack.push(LabelEntry{20, 0, false, 64});
  const auto out = e.update(p, 3, hw::RouterType::kLsr);
  EXPECT_FALSE(out.discarded);
  // 2 loads + update + 2 drains.
  EXPECT_EQ(out.hw_cycles,
            2 * 3 + hw::update_swap_cycles(1) + 2 * 3);
  EXPECT_EQ(e.last_update_only_cycles(), hw::update_swap_cycles(1));
}

}  // namespace
}  // namespace empls::sw
