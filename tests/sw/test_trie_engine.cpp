// TrieEngine unit suite: the scalable FIB tier's own contract — exact
// Table 6 cycles against LinearEngine on paper-sized bases, the
// documented modelled-cost regime past the 1024-pair boundary,
// longest-prefix-match classification via write_prefix, epoch
// discipline, slab reuse across clear (the zero-steady-state-allocation
// claim), and the bytes-per-entry accounting the bench gate consumes.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "hw/cycle_model.hpp"
#include "sw/linear_engine.hpp"
#include "sw/trie_engine.hpp"

namespace empls::sw {
namespace {

using mpls::LabelOp;
using mpls::LabelPair;

TEST(TrieEngine, NameAndCacheability) {
  TrieEngine e;
  EXPECT_EQ(e.name(), "trie");
  EXPECT_TRUE(e.cacheable()) << "search/tail decomposition is exposed, the "
                                "flow cache may serve its decisions";
}

// Below the paper boundary every lookup must charge exactly what the
// linear hardware scan would: 3k+5 with k the 1-based position of the
// first matching write, the full level length on a miss.
TEST(TrieEngine, Table6CyclesMatchLinearAtEveryPosition) {
  TrieEngine trie;
  LinearEngine linear;
  std::mt19937 rng(7);
  std::vector<LabelPair> written;
  for (int i = 0; i < 300; ++i) {
    // Small key space: plenty of duplicate writes, which the linear
    // engine appends (unreachably) and the trie must still count.
    const LabelPair pair{static_cast<rtl::u32>(rng() % 64),
                         static_cast<rtl::u32>(100 + rng() % 900),
                         LabelOp::kSwap};
    ASSERT_TRUE(trie.write_pair(2, pair));
    ASSERT_TRUE(linear.write_pair(2, pair));
    written.push_back(pair);
  }
  ASSERT_EQ(trie.level_size(2), linear.level_size(2));
  for (rtl::u32 key = 0; key < 80; ++key) {
    const auto got = trie.lookup(2, key);
    const auto want = linear.lookup(2, key);
    ASSERT_EQ(got, want) << "key " << key;
    ASSERT_EQ(trie.last_lookup_cost_cycles(), linear.last_lookup_cost_cycles())
        << "key " << key;
    if (!got.has_value()) {
      ASSERT_EQ(trie.last_entries_examined(), written.size())
          << "a miss charges the full level, duplicates included";
    }
  }
  // Exhaustive: every key either hits at the same cost or misses at the
  // full level length, across all three levels' mask semantics.
  for (unsigned level = 1; level <= 3; ++level) {
    TrieEngine t;
    LinearEngine l;
    for (int i = 0; i < 200; ++i) {
      const rtl::u32 key = level == 1 ? 0xC0A80000u + rng() % 48
                                      : static_cast<rtl::u32>(rng() % 48);
      const LabelPair pair{key, static_cast<rtl::u32>(rng() % 1000),
                           static_cast<LabelOp>(rng() % 4)};
      ASSERT_TRUE(t.write_pair(level, pair));
      ASSERT_TRUE(l.write_pair(level, pair));
    }
    for (rtl::u32 probe = 0; probe < 64; ++probe) {
      const rtl::u32 key =
          level == 1 ? 0xC0A80000u + probe : static_cast<rtl::u32>(probe);
      ASSERT_EQ(t.lookup(level, key), l.lookup(level, key))
          << "level " << level << " key " << key;
      ASSERT_EQ(t.last_lookup_cost_cycles(), l.last_lookup_cost_cycles())
          << "level " << level << " key " << key;
    }
  }
}

TEST(TrieEngine, CapacityRefusalMatchesLinear) {
  TrieEngine trie(4);
  LinearEngine linear(4);
  for (rtl::u32 i = 0; i < 4; ++i) {
    ASSERT_TRUE(trie.write_pair(2, LabelPair{i, i, LabelOp::kSwap}));
    ASSERT_TRUE(linear.write_pair(2, LabelPair{i, i, LabelOp::kSwap}));
  }
  EXPECT_FALSE(trie.write_pair(2, LabelPair{99, 1, LabelOp::kSwap}));
  EXPECT_FALSE(linear.write_pair(2, LabelPair{99, 1, LabelOp::kSwap}));
  EXPECT_EQ(trie.level_size(2), 4u);
  // Duplicate writes consume capacity exactly as the linear append does.
  TrieEngine dup(3);
  ASSERT_TRUE(dup.write_pair(3, LabelPair{7, 1, LabelOp::kSwap}));
  ASSERT_TRUE(dup.write_pair(3, LabelPair{7, 2, LabelOp::kSwap}));
  ASSERT_TRUE(dup.write_pair(3, LabelPair{7, 3, LabelOp::kSwap}));
  EXPECT_FALSE(dup.write_pair(3, LabelPair{8, 1, LabelOp::kSwap}));
  const auto hit = dup.lookup(3, 7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 1u) << "first binding wins";
}

TEST(TrieEngine, CorruptEntryGarblesTheReachableBinding) {
  TrieEngine e;
  ASSERT_TRUE(e.write_pair(2, LabelPair{40, 77, LabelOp::kSwap}));
  const auto before = e.epoch();
  EXPECT_FALSE(e.corrupt_entry(2, 41, 500)) << "no binding for 41";
  EXPECT_TRUE(e.corrupt_entry(2, 40, 500));
  EXPECT_EQ(e.epoch(), before + 2) << "even a failed corruption bumps";
  const auto hit = e.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 500u);
  EXPECT_EQ(hit->op, LabelOp::kSwap) << "only the label is garbled";
}

// write_prefix: real prefix routes, longest-prefix-match resolution.
TEST(TrieEngine, LongestPrefixMatchAcrossNestedRoutes) {
  TrieEngine e;
  const rtl::u32 net8 = 0x0A000000;   // 10.0.0.0/8
  const rtl::u32 net16 = 0x0A010000;  // 10.1.0.0/16
  const rtl::u32 net24 = 0x0A010200;  // 10.1.2.0/24
  const rtl::u32 host = 0x0A010203;   // 10.1.2.3/32
  ASSERT_TRUE(e.write_prefix(0, LabelPair{0, 1, LabelOp::kPush}));
  ASSERT_TRUE(e.write_prefix(8, LabelPair{net8, 8, LabelOp::kPush}));
  ASSERT_TRUE(e.write_prefix(16, LabelPair{net16, 16, LabelOp::kPush}));
  ASSERT_TRUE(e.write_prefix(24, LabelPair{net24, 24, LabelOp::kPush}));
  ASSERT_TRUE(e.write_prefix(32, LabelPair{host, 32, LabelOp::kPush}));

  const auto label_for = [&](rtl::u32 key) {
    const auto hit = e.lookup(1, key);
    return hit ? hit->new_label : 0xDEADu;
  };
  EXPECT_EQ(label_for(host), 32u);
  EXPECT_EQ(label_for(0x0A010204), 24u) << "10.1.2.4 → /24";
  EXPECT_EQ(label_for(0x0A01FFFF), 16u) << "10.1.255.255 → /16";
  EXPECT_EQ(label_for(0x0AFFFFFF), 8u) << "10.255.255.255 → /8";
  EXPECT_EQ(label_for(0x0B000000), 1u) << "11.0.0.0 → default route";
  EXPECT_EQ(e.level_size(1), 5u);
  EXPECT_FALSE(e.write_prefix(33, LabelPair{0, 1, LabelOp::kPush}));
}

TEST(TrieEngine, WritePrefixAdvancesTheEpoch) {
  TrieEngine e;
  const auto before = e.epoch();
  ASSERT_TRUE(e.write_prefix(16, LabelPair{0x0A010000, 5, LabelOp::kPush}));
  EXPECT_EQ(e.epoch(), before + 1)
      << "cached forwarding decisions must go stale on a prefix install";
}

// Past the paper's 1024-pair boundary the linear hardware no longer
// exists to mirror, and the cost model switches to the structural cost
// of the scalable structures: probe slots at levels 2/3, trie nodes at
// level 1 — orders of magnitude below the linear-equivalent position.
TEST(TrieEngine, ScaledRegimeChargesStructuralCost) {
  TrieEngine e;
  std::mt19937 rng(11);
  for (rtl::u32 i = 0; i < 4000; ++i) {
    ASSERT_TRUE(e.write_pair(
        2, LabelPair{i, static_cast<rtl::u32>(rng() % 1000), LabelOp::kSwap}));
  }
  const auto hit = e.lookup(2, 3999);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(e.last_entries_examined(), 64u)
      << "a probe chain, not a 4000-entry scan";
  EXPECT_GE(e.last_entries_examined(), 1u);
  EXPECT_EQ(e.last_lookup_cost_cycles(),
            hw::search_cycles(e.last_entries_examined()));

  TrieEngine l1;
  for (rtl::u32 i = 0; i < 2000; ++i) {
    ASSERT_TRUE(l1.write_pair(1, LabelPair{0x0A000000 + i * 7, 9,
                                           LabelOp::kPush}));
  }
  ASSERT_TRUE(l1.lookup(1, 0x0A000000 + 1999 * 7).has_value());
  EXPECT_LT(l1.last_entries_examined(), 40u)
      << "bounded by the 32-bit key depth plus path compression, not by "
         "the 2000-entry base";
}

// The regimes meet at the boundary: write 1024 pairs (paper cost),
// write one more (structural cost) — the 1025th lookup may not charge a
// 1025-entry scan.
TEST(TrieEngine, RegimeBoundaryIsThePaperCapacity) {
  TrieEngine e;
  for (rtl::u32 i = 0; i < TrieEngine::kPaperLevelEntries; ++i) {
    ASSERT_TRUE(e.write_pair(2, LabelPair{i, 1, LabelOp::kSwap}));
  }
  ASSERT_TRUE(e.lookup(2, TrieEngine::kPaperLevelEntries - 1).has_value());
  EXPECT_EQ(e.last_entries_examined(), TrieEngine::kPaperLevelEntries)
      << "at exactly 1024 writes the linear-equivalent position applies";
  ASSERT_TRUE(e.write_pair(
      2, LabelPair{TrieEngine::kPaperLevelEntries, 1, LabelOp::kSwap}));
  ASSERT_TRUE(e.lookup(2, TrieEngine::kPaperLevelEntries - 1).has_value());
  EXPECT_LT(e.last_entries_examined(), 64u)
      << "one write past the boundary, structural cost";
}

// The zero-steady-state-allocation claim, made falsifiable: after the
// slabs have grown to working size, a clear + identical reprogram cycle
// must leave the capacity bytes exactly where they were.
TEST(TrieEngine, ClearKeepsSlabCapacityAcrossReprogram) {
  TrieEngine e;
  const auto program = [&] {
    for (rtl::u32 i = 0; i < 3000; ++i) {
      ASSERT_TRUE(e.write_pair(1, LabelPair{0x0A000000 + i, 7,
                                            LabelOp::kPush}));
      ASSERT_TRUE(e.write_pair(2, LabelPair{i, 8, LabelOp::kSwap}));
      ASSERT_TRUE(e.write_pair(3, LabelPair{i, 9, LabelOp::kPop}));
    }
  };
  program();
  const auto grown = e.memory_stats();
  ASSERT_GT(grown.bytes, 0u);
  ASSERT_EQ(grown.entries, 3u * 3000u);
  for (int cycles = 0; cycles < 3; ++cycles) {
    e.clear();
    EXPECT_EQ(e.level_size(1), 0u);
    EXPECT_FALSE(e.lookup(2, 5).has_value());
    program();
    EXPECT_EQ(e.memory_stats().bytes, grown.bytes)
        << "reprogram cycle " << cycles << " allocated";
  }
}

// reserve() pre-sizes the slabs so programming a known-size base never
// rehashes mid-load; the bench uses this before the million sweep.
TEST(TrieEngine, ReservePreSizesAndHoldsTheByteBudget) {
  TrieEngine e;
  constexpr std::size_t kEntries = 100000;
  e.reserve(1, kEntries);
  e.reserve(2, kEntries / 2);
  const auto reserved = e.memory_stats().bytes;
  for (rtl::u32 i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(e.write_pair(1, LabelPair{0x01000000 + i * 3, 7,
                                          LabelOp::kPush}));
  }
  for (rtl::u32 i = 0; i < kEntries / 2; ++i) {
    ASSERT_TRUE(e.write_pair(2, LabelPair{i, 8, LabelOp::kSwap}));
  }
  const auto stats = e.memory_stats();
  EXPECT_EQ(stats.bytes, reserved) << "no growth after reserve";
  EXPECT_EQ(stats.entries, kEntries + kEntries / 2);
  EXPECT_LE(stats.bytes_per_entry(), 64.0)
      << "the bench gate's budget, holding at 150k entries";
}

}  // namespace
}  // namespace empls::sw
