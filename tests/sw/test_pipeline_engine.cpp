// Unit tests for the PipelineEngine adapter: behaviour parity with the
// shared semantics and full-path cycle accounting.
#include <gtest/gtest.h>

#include "sw/linear_engine.hpp"
#include "sw/pipeline_engine.hpp"

namespace empls::sw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

mpls::Packet labeled(rtl::u32 label, std::size_t payload = 64) {
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.0.0.9");
  p.cos = 3;
  p.ip_ttl = 64;
  p.payload.assign(payload, 0x77);
  p.stack.push(LabelEntry{label, 3, false, 64});
  return p;
}

TEST(PipelineEngine, BehaviourMatchesGolden) {
  PipelineEngine pipe(hw::RouterType::kLsr);
  LinearEngine golden;
  for (auto* e :
       {static_cast<LabelEngine*>(&pipe), static_cast<LabelEngine*>(&golden)}) {
    e->write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
    e->write_pair(2, LabelPair{41, 0, LabelOp::kPop});
  }
  for (const rtl::u32 label : {40u, 41u, 999u}) {
    mpls::Packet a = labeled(label);
    mpls::Packet b = a;
    const auto oa = pipe.update(a, 2, hw::RouterType::kLsr);
    const auto ob = golden.update(b, 2, hw::RouterType::kLsr);
    EXPECT_EQ(oa.discarded, ob.discarded) << "label " << label;
    EXPECT_EQ(oa.reason, ob.reason) << "label " << label;
    EXPECT_EQ(a.stack, b.stack) << "label " << label;
    if (!oa.discarded) {
      EXPECT_EQ(oa.applied, ob.applied);
    }
  }
}

TEST(PipelineEngine, CyclesIncludeByteMovement) {
  PipelineEngine pipe(hw::RouterType::kLsr);
  pipe.write_pair(2, LabelPair{40, 77, LabelOp::kSwap});
  mpls::Packet small = labeled(40, 16);
  mpls::Packet big = labeled(40, 1216);
  const auto os = pipe.update(small, 2, hw::RouterType::kLsr);
  const auto ob = pipe.update(big, 2, hw::RouterType::kLsr);
  EXPECT_FALSE(os.discarded);
  EXPECT_FALSE(ob.discarded);
  // 1200 extra bytes at 4 B/cycle, in and out: +600 cycles.
  EXPECT_EQ(ob.hw_cycles - os.hw_cycles, 600u);
}

TEST(PipelineEngine, LookupAndLevelSizeDelegate) {
  PipelineEngine pipe(hw::RouterType::kLer);
  EXPECT_TRUE(pipe.write_pair(1, LabelPair{0x0A000001, 55, LabelOp::kPush}));
  EXPECT_EQ(pipe.level_size(1), 1u);
  const auto hit = pipe.lookup(1, 0x0A000001);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 55u);
  pipe.clear();
  EXPECT_EQ(pipe.level_size(1), 0u);
}

TEST(PipelineEngine, NameIdentifiesTheFullPath) {
  PipelineEngine pipe(hw::RouterType::kLsr);
  EXPECT_EQ(pipe.name(), "hw-pipeline");
}

}  // namespace
}  // namespace empls::sw
