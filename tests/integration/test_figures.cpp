// ctest-level verification of the paper's evaluation artifacts
// (Figures 14-16 narratives and the Section 4 worst case), so the
// reproduction is covered by the test suite as well as by the bench
// binaries.
#include <gtest/gtest.h>

#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"
#include "rtl/clock_model.hpp"
#include "rtl/trace.hpp"

namespace empls::hw {
namespace {

using mpls::LabelOp;
using mpls::LabelPair;

LabelOp figure_op(unsigned i) {
  static constexpr LabelOp kCycle[3] = {LabelOp::kPush, LabelOp::kSwap,
                                        LabelOp::kPop};
  return kCycle[i % 3];
}

struct FigureRig {
  LabelStackModifier modifier;
  rtl::TraceRecorder trace{modifier.sim()};

  explicit FigureRig(unsigned level) {
    modifier.attach_figure_probes(trace, level);
  }

  void write_ten(unsigned level, rtl::u32 first_index) {
    for (rtl::u32 i = 0; i < 10; ++i) {
      modifier.write_pair(level,
                          LabelPair{first_index + i, 500 + i, figure_op(i)});
    }
  }
};

TEST(Figure14, Level1WriteAndLookup) {
  FigureRig rig(1);
  rig.write_ten(1, 600);
  EXPECT_EQ(rig.modifier.level_count(1), 10u);

  const std::size_t lookup_start = rig.trace.num_samples();
  const auto r = rig.modifier.search(1, 604);
  rig.modifier.sim().run(3);

  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.label, 504u) << "'The new label (504) ... then appear'";
  EXPECT_EQ(r.operation, 3u) << "'... and operation (3)'";
  EXPECT_EQ(r.cycles, search_cycles(5));

  const long done = rig.trace.find_first("lookup_done", 1, lookup_start);
  ASSERT_GE(done, 0);
  EXPECT_EQ(rig.trace.value("lookup_done", done + 1), 0u)
      << "'goes high for a clock cycle'";
  EXPECT_EQ(rig.trace.value("r_index", done), 4u)
      << "'stops at the index of the correct entry'";
  EXPECT_LT(rig.trace.find_first("packetdiscard", 1, lookup_start), 0)
      << "'the packetdiscard signal remains low'";
}

TEST(Figure15, Level2WriteAndLookup) {
  FigureRig rig(2);
  rig.write_ten(2, 1);
  const std::size_t lookup_start = rig.trace.num_samples();
  const auto r = rig.modifier.search(2, 4);
  rig.modifier.sim().run(3);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.label, 503u);
  EXPECT_EQ(r.cycles, search_cycles(4));
  EXPECT_GE(rig.trace.find_first("lookup_done", 1, lookup_start), 0);
  EXPECT_LT(rig.trace.find_first("packetdiscard", 1, lookup_start), 0);
}

TEST(Figure16, LookupMissDiscards) {
  FigureRig rig(2);
  rig.write_ten(2, 1);
  const auto primed = rig.modifier.search(2, 7);  // set label_out
  const std::size_t lookup_start = rig.trace.num_samples();
  const auto r = rig.modifier.search(2, 27);
  rig.modifier.sim().run(3);

  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.cycles, search_cycles(10))
      << "'r_index iterates to process all label pairs'";
  const long done = rig.trace.find_first("lookup_done", 1, lookup_start);
  const long discard =
      rig.trace.find_first("packetdiscard", 1, lookup_start);
  EXPECT_EQ(done, discard)
      << "'lookup_done and packetdiscard signals are sent high'";
  ASSERT_GE(done, 0);
  EXPECT_EQ(rig.trace.value("label_out", done), primed.label)
      << "'label_out and operation_out remain unchanged'";
  EXPECT_EQ(rig.trace.value("operation_out", done), primed.operation);
}

TEST(Section4, WorstCaseTiming) {
  LabelStackModifier m;
  rtl::u64 total = m.do_reset();
  for (rtl::u32 i = 0; i < 3; ++i) {
    total += m.user_push(mpls::LabelEntry{100 + i, 0, false, 255});
  }
  for (rtl::u32 i = 0; i < 1023; ++i) {
    total += m.write_pair(3, LabelPair{5000 + i, 0, LabelOp::kSwap});
  }
  total += m.write_pair(3, LabelPair{102, 4242, LabelOp::kSwap});
  const auto upd = m.update(3, RouterType::kLsr, 0);
  ASSERT_FALSE(upd.discarded);
  total += upd.cycles;
  EXPECT_EQ(total, 6167u);
  const rtl::ClockModel clock;
  EXPECT_NEAR(clock.milliseconds(total), 0.123, 0.001)
      << "'approximately 0.123 ms' on the 50 MHz Stratix";
}

TEST(Figures, VcdFilesAreWritable) {
  FigureRig rig(1);
  rig.write_ten(1, 600);
  rig.modifier.search(1, 604);
  const std::string path = ::testing::TempDir() + "/fig14_test.vcd";
  EXPECT_TRUE(rig.trace.write_vcd(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace empls::hw
