// End-to-end integration: network + control plane + embedded routers.
//
// Builds the paper's Figure 2 scenario — layer-2 traffic enters an
// ingress LER, crosses LSRs on a label switched path, and exits at an
// egress LER — and checks delivery, label behaviour and TTL accounting
// for both the analytic linear engine and the cycle-accurate RTL engine.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/pipeline_engine.hpp"

namespace empls {
namespace {

using core::EmbeddedRouter;
using core::RouterConfig;
using net::ControlPlane;
using net::Network;
using net::NodeId;

enum class EngineKind { kLinear, kHwRtl, kHwPipeline };

std::unique_ptr<sw::LabelEngine> make_engine(EngineKind kind,
                                             hw::RouterType type) {
  switch (kind) {
    case EngineKind::kHwRtl:
      return std::make_unique<sw::HwEngine>();
    case EngineKind::kHwPipeline:
      return std::make_unique<sw::PipelineEngine>(type);
    case EngineKind::kLinear:
      break;
  }
  return std::make_unique<sw::LinearEngine>();
}

NodeId add_router(Network& net, ControlPlane& cp, const std::string& name,
                  hw::RouterType type, EngineKind kind) {
  RouterConfig cfg;
  cfg.type = type;
  auto router =
      std::make_unique<EmbeddedRouter>(name, make_engine(kind, type), cfg);
  EmbeddedRouter* raw = router.get();
  const NodeId id = net.add_node(std::move(router));
  cp.register_router(id, &raw->routing());
  return id;
}

struct Testbed {
  Network net;
  ControlPlane cp{net};
  net::FlowStats stats;
  NodeId ler_a, lsr_b, lsr_c, ler_d;

  explicit Testbed(EngineKind kind) {
    ler_a = add_router(net, cp, "LER-A", hw::RouterType::kLer, kind);
    lsr_b = add_router(net, cp, "LSR-B", hw::RouterType::kLsr, kind);
    lsr_c = add_router(net, cp, "LSR-C", hw::RouterType::kLsr, kind);
    ler_d = add_router(net, cp, "LER-D", hw::RouterType::kLer, kind);
    // 100 Mb/s links, 1 ms propagation.
    net.connect(ler_a, lsr_b, 100e6, 1e-3);
    net.connect(lsr_b, lsr_c, 100e6, 1e-3);
    net.connect(lsr_c, ler_d, 100e6, 1e-3);
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
      last_delivered = p;
    });
  }

  EmbeddedRouter& router(NodeId id) {
    return net.node_as<EmbeddedRouter>(id);
  }

  mpls::Packet last_delivered;
};

class EndToEnd : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EndToEnd, CbrFlowCrossesTheLsp) {
  Testbed tb(GetParam());
  const auto lsp = tb.cp.establish_lsp(
      {tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d},
      *mpls::Prefix::parse("10.2.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  net::FlowSpec spec;
  spec.flow_id = 7;
  spec.ingress = tb.ler_a;
  spec.src = *mpls::Ipv4Address::parse("192.168.1.1");
  spec.dst = *mpls::Ipv4Address::parse("10.2.0.5");
  spec.cos = 5;
  spec.payload_bytes = 160;
  spec.start = 0.0;
  spec.stop = 0.199;  // emits at 0, 20ms, ..., 180ms: exactly 10 packets
  net::CbrSource voip(tb.net, spec, &tb.stats, /*interval=*/20e-3);
  voip.start();
  tb.net.run();

  const auto& flow = tb.stats.flow(7);
  EXPECT_EQ(flow.sent, 10u);
  EXPECT_EQ(flow.delivered, 10u);
  EXPECT_EQ(flow.loss_rate(), 0.0);

  // Delivered packets left the MPLS domain unlabeled, with the TTL
  // decremented once per router (4 routers).
  EXPECT_TRUE(tb.last_delivered.stack.empty());
  EXPECT_EQ(tb.last_delivered.ip_ttl, 64 - 4);
  EXPECT_EQ(tb.last_delivered.cos, 5);

  // Operation accounting: ingress pushes, transits swap, egress pops.
  EXPECT_EQ(tb.router(tb.ler_a).stats().pushes, 10u);
  EXPECT_EQ(tb.router(tb.lsr_b).stats().swaps, 10u);
  EXPECT_EQ(tb.router(tb.lsr_c).stats().swaps, 10u);
  EXPECT_EQ(tb.router(tb.ler_d).stats().pops, 10u);

  // The first packet took the slow path (FEC prefix → exact install);
  // the rest hit the installed hardware entry.
  EXPECT_EQ(tb.router(tb.ler_a).stats().slow_path_retries, 1u);
  EXPECT_EQ(tb.router(tb.ler_a).routing().slow_path_installs(), 1u);

  // End-to-end latency exceeds the 3 ms propagation floor.
  EXPECT_GT(flow.latency.min(), 3e-3);
  EXPECT_LT(flow.latency.max(), 4e-3);
}

TEST_P(EndToEnd, UnroutablePacketIsDiscarded) {
  Testbed tb(GetParam());
  tb.cp.establish_lsp({tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d},
                      *mpls::Prefix::parse("10.2.0.0/16"));

  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("172.16.0.1");  // no FEC covers this
  p.flow_id = 1;
  tb.net.inject(tb.ler_a, p);
  tb.net.run();

  EXPECT_EQ(tb.stats.total_delivered(), 0u);
  EXPECT_EQ(tb.router(tb.ler_a).stats().discarded, 1u);
}

TEST_P(EndToEnd, TtlExpiryDiscardsInTransit) {
  Testbed tb(GetParam());
  tb.cp.establish_lsp({tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d},
                      *mpls::Prefix::parse("10.2.0.0/16"));

  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.2.0.5");
  p.ip_ttl = 2;  // survives the ingress push, expires at the first swap
  tb.net.inject(tb.ler_a, p);
  tb.net.run();

  EXPECT_EQ(tb.stats.total_delivered(), 0u);
  EXPECT_EQ(tb.router(tb.lsr_b).stats().discarded, 1u);
}

TEST_P(EndToEnd, TunnelCarriesTheLspThroughNestedLabels) {
  Testbed tb(GetParam());
  // Tunnel B→C needs an interior node: add one.
  const NodeId lsr_x =
      add_router(tb.net, tb.cp, "LSR-X", hw::RouterType::kLsr, GetParam());
  tb.net.connect(tb.lsr_b, lsr_x, 100e6, 1e-3);
  tb.net.connect(lsr_x, tb.lsr_c, 100e6, 1e-3);

  const auto tunnel =
      tb.cp.establish_tunnel({tb.lsr_b, lsr_x, tb.lsr_c});
  ASSERT_TRUE(tunnel.has_value());
  const auto lsp = tb.cp.establish_lsp_via_tunnel(
      {tb.ler_a, tb.lsr_b}, *tunnel, {tb.lsr_c, tb.ler_d},
      *mpls::Prefix::parse("10.9.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.9.1.1");
  p.flow_id = 3;
  p.created_at = 0.0;
  tb.stats.on_sent(p);
  tb.net.inject(tb.ler_a, p);
  tb.net.run();

  EXPECT_EQ(tb.stats.flow(3).delivered, 1u);
  EXPECT_TRUE(tb.last_delivered.stack.empty());
  // Path: A(push) B(push outer) X(pop outer, PHP) C(swap) D(pop):
  // 5 router visits → TTL down by 5.
  EXPECT_EQ(tb.last_delivered.ip_ttl, 64 - 5);
  // The tunnel entry pushed a second label at B.
  EXPECT_EQ(tb.router(tb.lsr_b).stats().pushes, 1u);
  EXPECT_EQ(tb.net.node_as<EmbeddedRouter>(lsr_x).stats().pops, 1u);
}

TEST_P(EndToEnd, PhpDeliversThroughTheUnlabeledLastHop) {
  Testbed tb(GetParam());
  net::LspOptions options;
  options.php = true;
  const auto lsp = tb.cp.establish_lsp(
      {tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d},
      *mpls::Prefix::parse("10.2.0.0/16"), options);
  ASSERT_TRUE(lsp.has_value());

  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.2.0.5");
  p.flow_id = 4;
  tb.stats.on_sent(p);
  tb.net.inject(tb.ler_a, p);
  tb.net.run();

  EXPECT_EQ(tb.stats.flow(4).delivered, 1u);
  EXPECT_TRUE(tb.last_delivered.stack.empty());
  // A pushes, B swaps, C pops (PHP), D delivers without touching the
  // engine: 3 TTL decrements, not 4.
  EXPECT_EQ(tb.last_delivered.ip_ttl, 64 - 3);
  EXPECT_EQ(tb.router(tb.lsr_c).stats().pops, 1u);
  EXPECT_EQ(tb.router(tb.ler_d).stats().pops, 0u);
  EXPECT_EQ(tb.router(tb.ler_d).stats().delivered_local, 1u);
}

TEST_P(EndToEnd, FailureThenRerouteRestoresDelivery) {
  Testbed tb(GetParam());
  // Add a protection path B -> X -> C.
  const NodeId lsr_x =
      add_router(tb.net, tb.cp, "LSR-X", hw::RouterType::kLsr, GetParam());
  tb.net.connect(tb.lsr_b, lsr_x, 100e6, 2e-3);
  tb.net.connect(lsr_x, tb.lsr_c, 100e6, 2e-3);

  const auto lsp = tb.cp.establish_lsp(
      {tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d},
      *mpls::Prefix::parse("10.2.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  auto send_one = [&](std::uint32_t flow) {
    mpls::Packet p;
    p.dst = *mpls::Ipv4Address::parse("10.2.0.5");
    p.flow_id = flow;
    p.created_at = tb.net.now();
    tb.stats.on_sent(p);
    tb.net.inject(tb.ler_a, p);
    tb.net.run();
  };

  send_one(1);
  EXPECT_EQ(tb.stats.flow(1).delivered, 1u) << "working before the failure";

  // Cut the primary core link: traffic is blackholed at the link.
  tb.net.set_connection_up(tb.lsr_b, tb.lsr_c, false);
  send_one(2);
  EXPECT_EQ(tb.stats.has_flow(2) ? tb.stats.flow(2).delivered : 0u, 0u);

  // Restoration: the control plane reroutes the LSP over B-X-C.
  const auto replacement = tb.cp.reroute_lsp(*lsp);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_EQ(tb.cp.lsp(*replacement).path,
            (std::vector<net::NodeId>{tb.ler_a, tb.lsr_b, lsr_x, tb.lsr_c,
                                      tb.ler_d}));
  send_one(3);
  EXPECT_EQ(tb.stats.flow(3).delivered, 1u) << "restored after reroute";
  EXPECT_TRUE(tb.last_delivered.stack.empty());
  EXPECT_EQ(tb.last_delivered.ip_ttl, 64 - 5) << "one extra hop now";
}

TEST_P(EndToEnd, MergedIngressesShareTheTail) {
  Testbed tb(GetParam());
  // Second ingress LER attached to LSR-B.
  const NodeId ler_e =
      add_router(tb.net, tb.cp, "LER-E", hw::RouterType::kLer, GetParam());
  tb.net.connect(ler_e, tb.lsr_b, 100e6, 1e-3);

  const auto fec = *mpls::Prefix::parse("10.2.0.0/16");
  ASSERT_TRUE(
      tb.cp.establish_lsp({tb.ler_a, tb.lsr_b, tb.lsr_c, tb.ler_d}, fec));
  net::LspOptions options;
  options.allow_merge = true;
  const auto merged = tb.cp.establish_lsp({ler_e, tb.lsr_b, tb.lsr_c,
                                           tb.ler_d},
                                          fec, options);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(tb.cp.lsp(*merged).merged_at.has_value());

  // Traffic from BOTH ingresses reaches the egress.
  for (std::uint32_t flow : {1u, 2u}) {
    mpls::Packet p;
    p.dst = *mpls::Ipv4Address::parse("10.2.0.5");
    p.flow_id = flow;
    p.created_at = tb.net.now();
    tb.stats.on_sent(p);
    tb.net.inject(flow == 1 ? tb.ler_a : ler_e, p);
    tb.net.run();
  }
  EXPECT_EQ(tb.stats.flow(1).delivered, 1u);
  EXPECT_EQ(tb.stats.flow(2).delivered, 1u);
  // The shared LSR swapped for both packets from one table entry.
  EXPECT_EQ(tb.router(tb.lsr_b).stats().swaps, 2u);
  EXPECT_EQ(tb.router(tb.lsr_b).engine().level_size(2), 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, EndToEnd,
                         ::testing::Values(EngineKind::kLinear,
                                           EngineKind::kHwRtl,
                                           EngineKind::kHwPipeline),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kLinear:
                               return "Linear";
                             case EngineKind::kHwRtl:
                               return "HwRtl";
                             case EngineKind::kHwPipeline:
                               return "HwPipeline";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace empls
