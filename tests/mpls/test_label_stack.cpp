// Unit + property tests for the label stack: capacity, S-bit invariant,
// wire serialisation.
#include <gtest/gtest.h>

#include <random>

#include "mpls/label_stack.hpp"

namespace empls::mpls {
namespace {

LabelEntry e(std::uint32_t label, std::uint8_t ttl = 64) {
  return LabelEntry{label, 0, false, ttl};
}

TEST(LabelStack, StartsEmpty) {
  LabelStack s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.capacity(), LabelStack::kHardwareDepth);
  EXPECT_FALSE(s.pop().has_value());
}

TEST(LabelStack, PushPopLifo) {
  LabelStack s;
  ASSERT_TRUE(s.push(e(1)));
  ASSERT_TRUE(s.push(e(2)));
  ASSERT_TRUE(s.push(e(3)));
  EXPECT_EQ(s.top().label, 3u);
  EXPECT_EQ(s.pop()->label, 3u);
  EXPECT_EQ(s.pop()->label, 2u);
  EXPECT_EQ(s.pop()->label, 1u);
  EXPECT_TRUE(s.empty());
}

TEST(LabelStack, CapacityIsEnforced) {
  LabelStack s;
  EXPECT_TRUE(s.push(e(1)));
  EXPECT_TRUE(s.push(e(2)));
  EXPECT_TRUE(s.push(e(3)));
  EXPECT_TRUE(s.full());
  EXPECT_FALSE(s.push(e(4))) << "the paper's hardware holds three entries";
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.top().label, 3u);
}

TEST(LabelStack, SBitMaintainedByPush) {
  LabelStack s;
  // Push entries with deliberately wrong S bits; push() must fix them.
  s.push(LabelEntry{1, 0, false, 64});
  s.push(LabelEntry{2, 0, true, 64});
  EXPECT_TRUE(s.s_bit_invariant_holds());
  EXPECT_TRUE(s.at(1).bottom);   // deepest
  EXPECT_FALSE(s.at(0).bottom);  // top
}

TEST(LabelStack, AtIndexesFromTop) {
  LabelStack s;
  s.push(e(10));
  s.push(e(20));
  s.push(e(30));
  EXPECT_EQ(s.at(0).label, 30u);
  EXPECT_EQ(s.at(1).label, 20u);
  EXPECT_EQ(s.at(2).label, 10u);
}

TEST(LabelStack, RewriteTop) {
  LabelStack s;
  EXPECT_FALSE(s.rewrite_top(9, 9)) << "empty stack";
  s.push(LabelEntry{10, 5, false, 64});
  ASSERT_TRUE(s.rewrite_top(77, 63));
  EXPECT_EQ(s.top().label, 77u);
  EXPECT_EQ(s.top().ttl, 63u);
  EXPECT_EQ(s.top().cos, 5u) << "CoS untouched by rewrite";
  EXPECT_TRUE(s.top().bottom) << "S bit untouched by rewrite";
}

TEST(LabelStack, ClearModelsDiscard) {
  LabelStack s;
  s.push(e(1));
  s.push(e(2));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.s_bit_invariant_holds());
}

TEST(LabelStack, SerializeTopFirst) {
  LabelStack s;
  s.push(LabelEntry{1, 0, false, 10});  // bottom
  s.push(LabelEntry{2, 0, false, 20});  // top
  const auto bytes = s.serialize();
  ASSERT_EQ(bytes.size(), 8u);
  // First word on the wire is the TOP entry (label 2, S=0).
  const std::uint32_t first = (bytes[0] << 24) | (bytes[1] << 16) |
                              (bytes[2] << 8) | bytes[3];
  EXPECT_EQ(decode(first).label, 2u);
  EXPECT_FALSE(decode(first).bottom);
  const std::uint32_t second = (bytes[4] << 24) | (bytes[5] << 16) |
                               (bytes[6] << 8) | bytes[7];
  EXPECT_EQ(decode(second).label, 1u);
  EXPECT_TRUE(decode(second).bottom);
}

TEST(LabelStack, ParseRejectsMalformedInput) {
  // Truncated: 3 bytes.
  EXPECT_FALSE(LabelStack::parse(std::vector<std::uint8_t>{1, 2, 3}));
  // No S bit anywhere: runs off the end.
  LabelStack s;
  s.push(e(1));
  auto bytes = s.serialize();
  bytes[2] &= static_cast<std::uint8_t>(~1u);  // clear the S bit
  EXPECT_FALSE(LabelStack::parse(bytes));
  // Deeper than capacity.
  LabelStack deep(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    deep.push(e(i));
  }
  EXPECT_FALSE(LabelStack::parse(deep.serialize(), /*capacity=*/3));
  EXPECT_TRUE(LabelStack::parse(deep.serialize(), /*capacity=*/5));
}

TEST(LabelStack, EmptySerializesToNothing) {
  LabelStack s;
  EXPECT_TRUE(s.serialize().empty());
  EXPECT_EQ(s.wire_size(), 0u);
}

// Property: any sequence of pushes/pops keeps the S-bit invariant, and
// serialize/parse is the identity on non-empty stacks.
class StackProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StackProperty, RandomOpSequencesKeepInvariants) {
  std::mt19937 rng(GetParam());
  LabelStack s;
  for (int step = 0; step < 2000; ++step) {
    const auto action = rng() % 4;
    if (action <= 1) {
      s.push(LabelEntry{static_cast<std::uint32_t>(rng() & kMaxLabel),
                        static_cast<std::uint8_t>(rng() & 7), (rng() & 1) != 0,
                        static_cast<std::uint8_t>(rng() & 0xFF)});
    } else if (action == 2) {
      s.pop();
    } else if (!s.empty()) {
      s.rewrite_top(rng() & kMaxLabel, static_cast<std::uint8_t>(rng()));
    }
    ASSERT_TRUE(s.s_bit_invariant_holds()) << "after step " << step;
    ASSERT_LE(s.size(), s.capacity());
    if (!s.empty()) {
      const auto parsed = LabelStack::parse(s.serialize());
      ASSERT_TRUE(parsed.has_value());
      ASSERT_EQ(*parsed, s) << "wire round trip after step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace empls::mpls
