// Unit + property tests for the 32-bit label stack entry codec
// (Figure 5 / RFC 3032 layout).
#include <gtest/gtest.h>

#include <random>

#include "mpls/label.hpp"
#include "mpls/operations.hpp"

namespace empls::mpls {
namespace {

TEST(LabelEntry, EncodeMatchesWireLayout) {
  // label=1, CoS=0, S=0, TTL=0 -> label occupies bits 12..31.
  EXPECT_EQ(encode(LabelEntry{1, 0, false, 0}), 1u << 12);
  // CoS occupies bits 9..11.
  EXPECT_EQ(encode(LabelEntry{0, 7, false, 0}), 7u << 9);
  // S is bit 8.
  EXPECT_EQ(encode(LabelEntry{0, 0, true, 0}), 1u << 8);
  // TTL is the low byte.
  EXPECT_EQ(encode(LabelEntry{0, 0, false, 255}), 255u);
}

TEST(LabelEntry, FieldWidthsMatchThePaper) {
  // "20 BITS | 3 BITS | 1 BIT | 8 BITS" (Figure 5).
  EXPECT_EQ(kLabelBits, 20u);
  EXPECT_EQ(kCosBits, 3u);
  EXPECT_EQ(kTtlBits, 8u);
  EXPECT_EQ(kMaxLabel, 0xFFFFFu);
  EXPECT_EQ(kMaxCos, 7u);
}

TEST(LabelEntry, DecodeExtractsAllFields) {
  const LabelEntry e = decode((0xABCDEu << 12) | (5u << 9) | (1u << 8) | 64u);
  EXPECT_EQ(e.label, 0xABCDEu);
  EXPECT_EQ(e.cos, 5u);
  EXPECT_TRUE(e.bottom);
  EXPECT_EQ(e.ttl, 64u);
}

TEST(LabelEntry, EncodeTruncatesOverwideFields) {
  const LabelEntry e{0x1FFFFF, 0xF, false, 255};
  const LabelEntry back = decode(encode(e));
  EXPECT_EQ(back.label, 0xFFFFFu);
  EXPECT_EQ(back.cos, 7u);
}

TEST(LabelEntry, WellFormedness) {
  EXPECT_TRUE(is_well_formed(LabelEntry{kMaxLabel, kMaxCos, true, 255}));
  EXPECT_FALSE(is_well_formed(LabelEntry{kMaxLabel + 1, 0, false, 0}));
  EXPECT_FALSE(is_well_formed(LabelEntry{0, 8, false, 0}));
}

TEST(LabelEntry, ReservedLabels) {
  EXPECT_TRUE(is_reserved_label(kLabelIpv4ExplicitNull));
  EXPECT_TRUE(is_reserved_label(kLabelRouterAlert));
  EXPECT_TRUE(is_reserved_label(kLabelImplicitNull));
  EXPECT_TRUE(is_reserved_label(15));
  EXPECT_FALSE(is_reserved_label(kFirstUnreservedLabel));
  EXPECT_FALSE(is_reserved_label(kMaxLabel));
}

TEST(LabelEntry, ToStringIsReadable) {
  EXPECT_EQ(to_string(LabelEntry{42, 5, true, 64}),
            "label=42 cos=5 S=1 ttl=64");
}

// Property: encode/decode round-trips every well-formed entry.  Sweep
// the field corners exhaustively and the interior randomly.
class LabelCodecRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LabelCodecRoundTrip, CornerLabels) {
  const std::uint32_t label = GetParam();
  for (std::uint8_t cos : {0, 3, 7}) {
    for (bool bottom : {false, true}) {
      for (std::uint8_t ttl : {0, 1, 64, 255}) {
        const LabelEntry e{label, cos, bottom, ttl};
        EXPECT_EQ(decode(encode(e)), e);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corners, LabelCodecRoundTrip,
                         ::testing::Values(0u, 1u, 15u, 16u, 0x7FFFFu,
                                           0x80000u, 0xFFFFEu, 0xFFFFFu));

class LabelCodecProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LabelCodecProperty, RandomRoundTrip) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    LabelEntry e;
    e.label = rng() & kMaxLabel;
    e.cos = static_cast<std::uint8_t>(rng() & kMaxCos);
    e.bottom = (rng() & 1) != 0;
    e.ttl = static_cast<std::uint8_t>(rng() & 0xFF);
    EXPECT_EQ(decode(encode(e)), e);
    // And the inverse: decoding any 32-bit word and re-encoding is
    // the identity on the word.
    const std::uint32_t w = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(encode(decode(w)), w);
  }
}

// 20050415 is the historical seed (IPPS 2005); keeping it first keeps
// the original sequence covered.
INSTANTIATE_TEST_SUITE_P(Seeds, LabelCodecProperty,
                         ::testing::Values(20050415u, 1u, 0xBEEFu));

TEST(Operations, EncodingIsTwoBits) {
  EXPECT_EQ(kOperationBits, 2u);
  EXPECT_TRUE(is_valid_op(0));
  EXPECT_TRUE(is_valid_op(3));
  EXPECT_FALSE(is_valid_op(4));
  EXPECT_EQ(to_string(LabelOp::kNop), "NOP");
  EXPECT_EQ(to_string(LabelOp::kPush), "PUSH");
  EXPECT_EQ(to_string(LabelOp::kPop), "POP");
  EXPECT_EQ(to_string(LabelOp::kSwap), "SWAP");
}

}  // namespace
}  // namespace empls::mpls
