// Unit + property tests for packets and IPv4 addresses: wire round
// trips and malformed-input rejection.
#include <gtest/gtest.h>

#include <random>

#include "mpls/packet.hpp"

namespace empls::mpls {
namespace {

TEST(Ipv4Address, ParseAndFormat) {
  const auto a = Ipv4Address::parse("192.168.1.17");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 0xC0A80111u);
  EXPECT_EQ(a->to_string(), "192.168.1.17");
  EXPECT_EQ(Ipv4Address::from_octets(10, 0, 0, 1).value, 0x0A000001u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
}

TEST(Packet, PacketIdentifierIsDestination) {
  // "For IP packets, the packet identifier is typically the destination
  // address."
  Packet p;
  p.dst = *Ipv4Address::parse("10.1.2.3");
  EXPECT_EQ(p.packet_identifier(), 0x0A010203u);
}

TEST(Packet, UnlabeledRoundTrip) {
  Packet p;
  p.l2 = L2Type::kAtm;
  p.src = *Ipv4Address::parse("1.2.3.4");
  p.dst = *Ipv4Address::parse("5.6.7.8");
  p.cos = 3;
  p.ip_ttl = 17;
  p.payload = {1, 2, 3, 4, 5};
  const auto back = Packet::parse(p.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->l2, L2Type::kAtm);
  EXPECT_EQ(back->src, p.src);
  EXPECT_EQ(back->dst, p.dst);
  EXPECT_EQ(back->cos, 3u);
  EXPECT_EQ(back->ip_ttl, 17u);
  EXPECT_EQ(back->payload, p.payload);
  EXPECT_TRUE(back->stack.empty());
}

TEST(Packet, LabeledRoundTrip) {
  Packet p;
  p.stack.push(LabelEntry{100, 2, false, 60});
  p.stack.push(LabelEntry{200, 5, false, 61});
  p.payload = {0xAA};
  const auto back = Packet::parse(p.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->stack, p.stack);
  EXPECT_EQ(back->wire_size(), p.wire_size());
}

TEST(Packet, WireSizeAccounting) {
  Packet p;
  EXPECT_EQ(p.wire_size(), kPacketHeaderBytes);
  p.payload.assign(100, 0);
  p.stack.push(LabelEntry{1, 0, false, 64});
  p.stack.push(LabelEntry{2, 0, false, 64});
  EXPECT_EQ(p.wire_size(), kPacketHeaderBytes + 8 + 100);
  EXPECT_EQ(p.serialize().size(), p.wire_size());
}

TEST(Packet, ParseRejectsMalformed) {
  Packet p;
  p.payload = {1, 2, 3};
  auto good = p.serialize();

  // Too short.
  EXPECT_FALSE(Packet::parse(std::vector<std::uint8_t>(4, 0)));
  // Bad L2 type.
  auto bad = good;
  bad[0] = 9;
  EXPECT_FALSE(Packet::parse(bad));
  // Length mismatch (extra trailing byte).
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(Packet::parse(bad));
  // Labeled flag set without a shim.
  bad = good;
  bad[1] = 1;
  EXPECT_FALSE(Packet::parse(bad));
  // Shim length not a multiple of 4.
  bad = good;
  bad[1] = 1;
  bad[13] = 2;  // shim_len = 2
  EXPECT_FALSE(Packet::parse(bad));
}

TEST(Packet, ParseRejectsCorruptedShim) {
  Packet p;
  p.stack.push(LabelEntry{7, 0, false, 64});
  auto bytes = p.serialize();
  // Clear the S bit of the only entry: the shim never terminates.
  bytes[kPacketHeaderBytes + 2] &= static_cast<std::uint8_t>(~1u);
  EXPECT_FALSE(Packet::parse(bytes));
}

class PacketProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PacketProperty, RandomRoundTrips) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    Packet p;
    p.l2 = static_cast<L2Type>(rng() % 3);
    p.src = Ipv4Address{static_cast<std::uint32_t>(rng())};
    p.dst = Ipv4Address{static_cast<std::uint32_t>(rng())};
    p.cos = static_cast<std::uint8_t>(rng() & 7);
    p.ip_ttl = static_cast<std::uint8_t>(rng());
    const auto depth = rng() % 4;
    for (std::uint32_t d = 0; d < depth; ++d) {
      p.stack.push(LabelEntry{static_cast<std::uint32_t>(rng() & kMaxLabel),
                              static_cast<std::uint8_t>(rng() & 7), false,
                              static_cast<std::uint8_t>(rng())});
    }
    p.payload.resize(rng() % 64);
    for (auto& b : p.payload) {
      b = static_cast<std::uint8_t>(rng());
    }
    const auto back = Packet::parse(p.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->stack, p.stack);
    EXPECT_EQ(back->payload, p.payload);
    EXPECT_EQ(back->src, p.src);
    EXPECT_EQ(back->dst, p.dst);
  }
}

// 777 is the historical seed; keeping it first keeps the original
// sequence covered.
INSTANTIATE_TEST_SUITE_P(Seeds, PacketProperty,
                         ::testing::Values(777u, 2u, 424242u));

TEST(L2Type, Names) {
  EXPECT_EQ(to_string(L2Type::kEthernet), "Ethernet");
  EXPECT_EQ(to_string(L2Type::kAtm), "ATM");
  EXPECT_EQ(to_string(L2Type::kFrameRelay), "FrameRelay");
}

}  // namespace
}  // namespace empls::mpls
