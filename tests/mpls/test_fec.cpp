// Unit + property tests for FEC prefixes and the longest-prefix-match
// trie, cross-checked against a brute-force reference.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mpls/fec.hpp"

namespace empls::mpls {
namespace {

Prefix pfx(const char* text) {
  const auto p = Prefix::parse(text);
  EXPECT_TRUE(p.has_value()) << text;
  return *p;
}

Ipv4Address addr(const char* text) { return *Ipv4Address::parse(text); }

TEST(Prefix, ParseAndCanonicalise) {
  const Prefix p = pfx("10.1.2.3/16");
  EXPECT_EQ(p.network.to_string(), "10.1.0.0") << "host bits cleared";
  EXPECT_EQ(p.length, 16u);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("10.0.0/8"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Prefix::parse("/8"));
}

TEST(Prefix, Contains) {
  const Prefix p = pfx("192.168.0.0/16");
  EXPECT_TRUE(p.contains(addr("192.168.255.1")));
  EXPECT_FALSE(p.contains(addr("192.169.0.1")));
  EXPECT_TRUE(pfx("0.0.0.0/0").contains(addr("8.8.8.8")));
  EXPECT_TRUE(pfx("10.1.2.3/32").contains(addr("10.1.2.3")));
  EXPECT_FALSE(pfx("10.1.2.3/32").contains(addr("10.1.2.4")));
}

TEST(FecTable, LongestPrefixWins) {
  FecTable t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.1.0.0/16"), 2);
  t.insert(pfx("10.1.2.0/24"), 3);
  EXPECT_EQ(t.lookup(addr("10.1.2.3")), 3u);
  EXPECT_EQ(t.lookup(addr("10.1.9.9")), 2u);
  EXPECT_EQ(t.lookup(addr("10.200.0.1")), 1u);
  EXPECT_FALSE(t.lookup(addr("11.0.0.1")).has_value());
}

TEST(FecTable, DefaultRoute) {
  FecTable t;
  t.insert(pfx("0.0.0.0/0"), 99);
  t.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_EQ(t.lookup(addr("8.8.8.8")), 99u);
  EXPECT_EQ(t.lookup(addr("10.0.0.1")), 1u);
}

TEST(FecTable, InsertReturnsPrevious) {
  FecTable t;
  EXPECT_FALSE(t.insert(pfx("10.0.0.0/8"), 1).has_value());
  EXPECT_EQ(t.insert(pfx("10.0.0.0/8"), 2), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(addr("10.0.0.1")), 2u);
}

TEST(FecTable, EraseExactOnly) {
  FecTable t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.1.0.0/16"), 2);
  EXPECT_FALSE(t.erase(pfx("10.0.0.0/9"))) << "not present";
  EXPECT_TRUE(t.erase(pfx("10.1.0.0/16")));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(addr("10.1.2.3")), 1u) << "falls back to the /8";
  EXPECT_FALSE(t.erase(pfx("10.1.0.0/16"))) << "double erase";
}

TEST(FecTable, LookupExact) {
  FecTable t;
  t.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_EQ(t.lookup_exact(pfx("10.0.0.0/8")), 1u);
  EXPECT_FALSE(t.lookup_exact(pfx("10.0.0.0/16")).has_value());
}

TEST(FecTable, EntriesEnumeratesSorted) {
  FecTable t;
  t.insert(pfx("192.168.0.0/16"), 3);
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.1.0.0/16"), 2);
  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first.to_string(), "10.0.0.0/8");
  EXPECT_EQ(entries[1].first.to_string(), "10.1.0.0/16");
  EXPECT_EQ(entries[2].first.to_string(), "192.168.0.0/16");
}

// Property: the trie agrees with a brute-force longest-match scan over
// random prefix sets and random probe addresses.
class FecProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FecProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  FecTable t;
  std::vector<std::pair<Prefix, std::uint32_t>> reference;
  for (int i = 0; i < 60; ++i) {
    Prefix p;
    p.network = Ipv4Address{static_cast<std::uint32_t>(rng())};
    p.length = static_cast<std::uint8_t>(rng() % 33);
    p = p.canonical();
    const std::uint32_t id = static_cast<std::uint32_t>(i + 1);
    // Keep the reference consistent with overwrite semantics.
    bool replaced = false;
    for (auto& [rp, rid] : reference) {
      if (rp == p) {
        rid = id;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      reference.emplace_back(p, id);
    }
    t.insert(p, id);
  }
  ASSERT_EQ(t.size(), reference.size());
  for (int probe = 0; probe < 2000; ++probe) {
    const Ipv4Address a{static_cast<std::uint32_t>(rng())};
    std::optional<std::uint32_t> best;
    int best_len = -1;
    for (const auto& [p, id] : reference) {
      if (p.contains(a) && p.length > best_len) {
        best = id;
        best_len = p.length;
      }
    }
    EXPECT_EQ(t.lookup(a), best) << "probe " << a.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FecProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace empls::mpls
