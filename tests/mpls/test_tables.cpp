// Unit tests for the software forwarding tables (ILM, FTN) and the
// label allocator.
#include <gtest/gtest.h>

#include "mpls/tables.hpp"

namespace empls::mpls {
namespace {

TEST(IlmTable, BindLookupUnbind) {
  IlmTable ilm;
  const Nhlfe n1{LabelOp::kSwap, 200, 3};
  EXPECT_FALSE(ilm.bind(100, n1).has_value());
  EXPECT_EQ(ilm.lookup(100), n1);
  EXPECT_FALSE(ilm.lookup(101).has_value());

  const Nhlfe n2{LabelOp::kPop, 0, kLocalDeliver};
  const auto previous = ilm.bind(100, n2);
  ASSERT_TRUE(previous.has_value());
  EXPECT_EQ(*previous, n1);
  EXPECT_EQ(ilm.lookup(100), n2);

  EXPECT_TRUE(ilm.unbind(100));
  EXPECT_FALSE(ilm.unbind(100));
  EXPECT_EQ(ilm.size(), 0u);
}

TEST(IlmTable, ToLabelPairsIsSortedAndComplete) {
  IlmTable ilm;
  ilm.bind(300, Nhlfe{LabelOp::kSwap, 301, 0});
  ilm.bind(100, Nhlfe{LabelOp::kPop, 0, kLocalDeliver});
  ilm.bind(200, Nhlfe{LabelOp::kPush, 201, 1});
  const auto pairs = ilm.to_label_pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (LabelPair{100, 0, LabelOp::kPop}));
  EXPECT_EQ(pairs[1], (LabelPair{200, 201, LabelOp::kPush}));
  EXPECT_EQ(pairs[2], (LabelPair{300, 301, LabelOp::kSwap}));
}

TEST(FtnTable, BindLookupUnbind) {
  FtnTable ftn;
  const Nhlfe n{LabelOp::kPush, 55, 2};
  EXPECT_FALSE(ftn.bind(7, n).has_value());
  EXPECT_EQ(ftn.lookup(7), n);
  const auto previous = ftn.bind(7, Nhlfe{LabelOp::kPush, 56, 2});
  ASSERT_TRUE(previous.has_value());
  EXPECT_EQ(previous->out_label, 55u);
  EXPECT_TRUE(ftn.unbind(7));
  EXPECT_EQ(ftn.size(), 0u);
}

TEST(Nhlfe, ToStringIsReadable) {
  EXPECT_EQ((Nhlfe{LabelOp::kSwap, 42, 3}).to_string(),
            "nhlfe{SWAP out_label=42 -> if3}");
  EXPECT_EQ((Nhlfe{LabelOp::kPop, 0, kLocalDeliver}).to_string(),
            "nhlfe{POP -> local}");
}

TEST(LabelAllocator, AllocatesSequentiallyFromBase) {
  LabelAllocator a(100);
  EXPECT_EQ(a.allocate(), 100u);
  EXPECT_EQ(a.allocate(), 101u);
  EXPECT_EQ(a.allocated(), 2u);
  EXPECT_TRUE(a.is_allocated(100));
  EXPECT_FALSE(a.is_allocated(102));
}

TEST(LabelAllocator, DefaultBaseSkipsReservedRange) {
  LabelAllocator a;
  EXPECT_EQ(a.allocate(), kFirstUnreservedLabel);
}

TEST(LabelAllocator, ReserveBlocksAllocate) {
  LabelAllocator a(16);
  EXPECT_TRUE(a.reserve(17));
  EXPECT_EQ(a.allocate(), 16u);
  EXPECT_EQ(a.allocate(), 18u) << "17 was reserved, allocator skips it";
}

TEST(LabelAllocator, ReserveRejectsInUseAndOutOfRange) {
  LabelAllocator a(16);
  a.allocate();  // 16
  EXPECT_FALSE(a.reserve(16)) << "already allocated";
  EXPECT_FALSE(a.reserve(5)) << "reserved label range (0..15)";
  EXPECT_FALSE(a.reserve(kMaxLabel + 1)) << "out of the 20-bit space";
  EXPECT_TRUE(a.reserve(kMaxLabel));
}

TEST(LabelAllocator, ReleaseMakesReservable) {
  LabelAllocator a(16);
  const auto l = a.allocate();
  ASSERT_TRUE(l.has_value());
  a.release(*l);
  EXPECT_FALSE(a.is_allocated(*l));
  EXPECT_TRUE(a.reserve(*l));
}

TEST(LabelAllocator, ExhaustionReturnsNullopt) {
  // Start near the top of the 20-bit space so exhaustion is reachable.
  LabelAllocator a(kMaxLabel - 2);
  EXPECT_TRUE(a.allocate().has_value());
  EXPECT_TRUE(a.allocate().has_value());
  EXPECT_TRUE(a.allocate().has_value());
  EXPECT_FALSE(a.allocate().has_value());
}

TEST(LabelAllocator, DoubleReleaseIsIgnored) {
  LabelAllocator a(16);
  const auto l = a.allocate();
  a.release(*l);
  a.release(*l);
  EXPECT_EQ(a.allocated(), 0u);
}

}  // namespace
}  // namespace empls::mpls
