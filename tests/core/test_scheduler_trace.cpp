// Golden-trace determinism across scheduler backends: the heap and the
// calendar event queue must produce identical event execution order, and
// therefore identical forwarding results, on full scenarios — including
// protection switching and fault campaigns, whose control paths are the
// most sensitive to event ordering.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/embedded_router.hpp"
#include "core/scenario_runner.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls::core {
namespace {

/// Run the scenario body under the given backend; the full report text
/// (flow latencies, router/link rows, simulator counters) is the trace
/// fingerprint compared across backends.
std::string report_with(const std::string& backend,
                        const std::string& body) {
  auto result =
      ScenarioRunner::run_text("scheduler " + backend + "\n" + body);
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  const auto& report = std::get<ScenarioRunner::Report>(result);
  EXPECT_GT(report.sim.events_executed, 0u);
  return report.to_string();
}

void expect_backend_identical(const std::string& body) {
  const auto heap = report_with("heap", body);
  const auto calendar = report_with("calendar", body);
  EXPECT_EQ(heap, calendar);
  EXPECT_FALSE(heap.empty());
}

TEST(SchedulerTrace, PlainForwardingScenario) {
  expect_backend_identical(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 cos=5 interval=3ms stop=0.25
flow poisson 2 A 10.1.0.6 rate=400 seed=9 stop=0.25
run 0.4
)");
}

TEST(SchedulerTrace, ProtectionSwitchingScenario) {
  expect_backend_identical(R"(
qos strict capacity=32
router A ler
router B lsr
router C lsr
router D ler
link A B 10M 1ms
link B D 10M 1ms
link B C 10M 1ms
link C D 10M 1ms
lsp 10.1.0.0/16 A B D
protect
flow cbr 1 A 10.1.0.5 cos=6 interval=2ms stop=0.3
fail 0.1 B D
restore 0.2 B D
run 0.4
)");
}

TEST(SchedulerTrace, FaultCampaignScenario) {
  expect_backend_identical(R"(
router A ler
router B lsr
router C lsr
router D ler
link A B 10M 1ms
link B D 10M 1ms
link A C 10M 2ms
link C D 10M 2ms
lsp 10.1.0.0/16 A B D
autorepair 10ms dead=3
flow cbr 1 A 10.1.0.5 interval=4ms stop=0.4
flap 0.08 B D 20ms
crash 0.15 B for=50ms
corrupt 0.25 B salt=3 resync=30ms
ping 0.05 A 10.1.0.5
ping 0.35 A 10.1.0.5
run 0.5
)");
}

TEST(SchedulerTrace, QosCongestionScenario) {
  expect_backend_identical(R"(
qos wrr capacity=16 red
router A ler
router B lsr
router C ler
link A B 100M 1ms
link B C 2M 1ms
lsp 10.1.0.0/16 A B C
flow video 1 A 10.1.0.5 cos=4 fps=25 ppf=6 size=1200 stop=0.3
flow poisson 2 A 10.1.0.6 cos=1 rate=900 seed=4 size=600 stop=0.3
run 0.5
)");
}

/// Network-level exact trace: every delivery's (time, flow, packet id)
/// across a mid-run cut + restore must match event-for-event.
TEST(SchedulerTrace, DeliveryEventsMatchExactlyUnderFaults) {
  auto trace_with = [](net::SchedulerBackend backend) {
    net::Network net;
    net.events().set_scheduler(backend);
    net::ControlPlane cp(net);

    auto add = [&](const std::string& name, hw::RouterType type) {
      auto r = std::make_unique<EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), RouterConfig{type});
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    const auto a = add("A", hw::RouterType::kLer);
    const auto b = add("B", hw::RouterType::kLsr);
    const auto c = add("C", hw::RouterType::kLer);
    net.connect(a, b, 10e6, 1e-3);
    net.connect(b, c, 10e6, 1e-3);
    cp.establish_lsp({a, b, c}, *mpls::Prefix::parse("10.1.0.0/16"));

    std::ostringstream trace;
    net.set_delivery_handler([&](net::NodeId egress,
                                 const mpls::Packet& p) {
      trace << egress << ':' << p.flow_id << ':' << p.id << '@' << net.now()
            << '\n';
    });

    net::FlowSpec spec{1,   a,   {}, *mpls::Ipv4Address::parse("10.1.0.5"),
                       5,   160, 0.0, 0.3};
    net::CbrSource src(net, spec, nullptr, /*interval=*/2e-3);
    src.start();
    net.events().schedule_at(0.1, [&] {
      net.set_connection_up(a, b, false);
    });
    net.events().schedule_at(0.18, [&] {
      net.set_connection_up(a, b, true);
    });
    net.run();
    trace << "events=" << net.events().stats().executed
          << " delivered=" << net.delivered_count();
    return trace.str();
  };
  const auto heap = trace_with(net::SchedulerBackend::kHeap);
  const auto calendar = trace_with(net::SchedulerBackend::kCalendar);
  EXPECT_EQ(heap, calendar);
  EXPECT_GT(heap.size(), 100u) << "trace should be non-trivial";
}

}  // namespace
}  // namespace empls::core
