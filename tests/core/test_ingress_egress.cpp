// Unit tests for the packet processing interfaces: classification,
// wire-level parsing and the egress fixups.
#include <gtest/gtest.h>

#include "core/egress.hpp"
#include "core/ingress.hpp"

namespace empls::core {
namespace {

using mpls::LabelEntry;

TEST(Ingress, ClassifyUnlabeledUsesLevel1AndPid) {
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.1.2.3");
  const auto c = IngressProcessor::classify(p);
  EXPECT_EQ(c.level, 1u);
  EXPECT_EQ(c.key, p.packet_identifier());
  EXPECT_FALSE(c.labeled);
}

TEST(Ingress, ClassifyLabeledLevelsByDepth) {
  mpls::Packet p;
  p.stack.push(LabelEntry{100, 0, false, 64});
  auto c = IngressProcessor::classify(p);
  EXPECT_EQ(c.level, 2u) << "depth 1 -> level 2";
  EXPECT_EQ(c.key, 100u);
  EXPECT_TRUE(c.labeled);

  p.stack.push(LabelEntry{200, 0, false, 64});
  c = IngressProcessor::classify(p);
  EXPECT_EQ(c.level, 3u) << "depth 2 -> level 3";
  EXPECT_EQ(c.key, 200u);

  p.stack.push(LabelEntry{300, 0, false, 64});
  c = IngressProcessor::classify(p);
  EXPECT_EQ(c.level, 3u) << "depth 3 shares level 3 (DESIGN.md 5.6)";
  EXPECT_EQ(c.key, 300u);
}

TEST(Ingress, ParseAcceptsWellFormedWire) {
  mpls::Packet p;
  p.stack.push(LabelEntry{7, 3, false, 9});
  p.payload = {1, 2, 3};
  const auto parsed = IngressProcessor::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stack, p.stack);
}

TEST(Ingress, ParseRejectsGarbage) {
  std::vector<std::uint8_t> garbage(40, 0xFF);
  EXPECT_FALSE(IngressProcessor::parse(garbage).has_value());
}

TEST(Ingress, WireRoundTripDetectsHiddenCorruption) {
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.0.0.1");
  p.payload = {9, 9};
  EXPECT_TRUE(IngressProcessor::wire_round_trip_ok(p));
  // A one-entry shim whose S bit is clear never terminates: the stack
  // parser (and therefore ingress processing) must reject it.
  const std::vector<std::uint8_t> unterminated{0x00, 0x06, 0x40, 0x40};
  EXPECT_FALSE(mpls::LabelStack::parse(unterminated).has_value());
}

TEST(Egress, FinalizeWritesTtlBackOnEmptyStack) {
  mpls::Packet p;
  p.ip_ttl = 64;
  EgressProcessor::finalize(p, 59);
  EXPECT_EQ(p.ip_ttl, 59u) << "TTL propagation on the final pop";
}

TEST(Egress, FinalizeLeavesLabeledPacketAlone) {
  mpls::Packet p;
  p.ip_ttl = 64;
  p.stack.push(LabelEntry{5, 0, false, 60});
  EgressProcessor::finalize(p, 59);
  EXPECT_EQ(p.ip_ttl, 64u);
}

TEST(Egress, GenerateMatchesSerialize) {
  mpls::Packet p;
  p.payload = {5, 6, 7};
  EXPECT_EQ(EgressProcessor::generate(p), p.serialize());
}

}  // namespace
}  // namespace empls::core
