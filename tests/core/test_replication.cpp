// Tests for the parallel Monte-Carlo replication runner: determinism
// across thread counts, confidence-interval behaviour, error paths.
#include <gtest/gtest.h>

#include "core/replication.hpp"

namespace empls::core {
namespace {

constexpr const char* kStochasticScenario = R"(
qos fifo capacity=8
router A ler
router B ler
link A B 2M 1ms
lsp 10.1.0.0/16 A B
flow poisson 1 A 10.1.0.5 rate=900 size=250 seed=5 stop=0.5
)";

using Aggregate = ReplicationRunner::Aggregate;

Aggregate run_ok(unsigned reps, unsigned threads) {
  auto result =
      ReplicationRunner::run_text(kStochasticScenario, reps, threads);
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << err->message;
    return {};
  }
  return std::get<Aggregate>(std::move(result));
}

TEST(Replication, AggregateIsIndependentOfThreadCount) {
  const auto serial = run_ok(8, 1);
  const auto parallel = run_ok(8, 4);
  ASSERT_EQ(serial.flows.size(), 1u);
  ASSERT_EQ(parallel.flows.size(), 1u);
  const auto& s = serial.flows.at(1);
  const auto& p = parallel.flows.at(1);
  EXPECT_EQ(s.total_sent, p.total_sent);
  EXPECT_EQ(s.total_delivered, p.total_delivered);
  EXPECT_DOUBLE_EQ(s.loss_rate.mean, p.loss_rate.mean);
  EXPECT_DOUBLE_EQ(s.mean_latency.mean, p.mean_latency.mean);
}

TEST(Replication, ReplicationsActuallyDiffer) {
  // With per-replication seed shifts, the Poisson sample counts differ
  // between replications, so the CI is non-zero.
  const auto agg = run_ok(6, 2);
  const auto& f = agg.flows.at(1);
  EXPECT_EQ(agg.replications, 6u);
  EXPECT_GT(f.total_sent, 0u);
  EXPECT_GT(f.mean_latency.mean, 1e-3) << "at least the propagation delay";
  EXPECT_GT(f.mean_latency.ci95, 0.0)
      << "independent replications must not be identical";
}

TEST(Replication, MoreReplicationsTightenTheInterval) {
  const auto few = run_ok(4, 4);
  const auto many = run_ok(24, 4);
  EXPECT_LT(many.flows.at(1).mean_latency.ci95,
            few.flows.at(1).mean_latency.ci95 * 1.5)
      << "CI should shrink (roughly 1/sqrt(n)) as replications grow";
}

TEST(Replication, ParseErrorsPropagate) {
  const auto result = ReplicationRunner::run_text("bogus\n", 4, 2);
  ASSERT_TRUE(std::holds_alternative<net::ScenarioError>(result));
}

TEST(Replication, ReportRenders) {
  const auto agg = run_ok(3, 3);
  const auto text = agg.to_string();
  EXPECT_NE(text.find("3 replications"), std::string::npos);
  EXPECT_NE(text.find("flow 1"), std::string::npos);
}

}  // namespace
}  // namespace empls::core
