// Integration tests for the scenario runner: text in, verified network
// behaviour out.
#include <gtest/gtest.h>

#include "core/scenario_runner.hpp"
#include "net/oam.hpp"

namespace empls::core {
namespace {

using Report = ScenarioRunner::Report;

Report run_ok(std::string_view text) {
  auto result = ScenarioRunner::run_text(text);
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<Report>(std::move(result));
}

TEST(ScenarioRunner, LinearLspDeliversCbr) {
  const auto report = run_ok(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 cos=5 interval=10ms stop=0.0999
run 0.2
)");
  EXPECT_EQ(report.lsps_established, 1u);
  EXPECT_EQ(report.flows.flow(1).sent, 10u);
  EXPECT_EQ(report.flows.flow(1).delivered, 10u);
  ASSERT_EQ(report.routers.size(), 3u);
  EXPECT_EQ(report.routers[2].delivered, 10u);
  EXPECT_GT(report.routers[1].engine_cycles, 0u);
}

TEST(ScenarioRunner, FailureEventCausesLoss) {
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
fail 0.055 A B
run 0.2
)");
  // Packets at 0..50ms delivered (6), at 60..90ms dropped (4).
  EXPECT_EQ(report.flows.flow(1).sent, 10u);
  EXPECT_EQ(report.flows.flow(1).delivered, 6u);
}

TEST(ScenarioRunner, RestoreBringsTheLinkBack) {
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
fail 0.015 A B
restore 0.045 A B
run 0.2
)");
  // Lost: packets at 20, 30, 40 ms.
  EXPECT_EQ(report.flows.flow(1).delivered, 7u);
}

TEST(ScenarioRunner, TunnelScenarioWorksEndToEnd) {
  const auto report = run_ok(R"(
router A ler
router B lsr
router X lsr
router C lsr
router D ler
link A B 10M 1ms
link B X 10M 1ms
link X C 10M 1ms
link C D 10M 1ms
tunnel T1 B X C
lsp-via-tunnel 10.3.0.0/16 pre A B tunnel T1 post C D
flow cbr 3 A 10.3.0.7 interval=20ms stop=0.0999
)");
  EXPECT_EQ(report.tunnels_established, 1u);
  EXPECT_EQ(report.lsps_established, 1u);
  EXPECT_EQ(report.flows.flow(3).delivered, 5u);
}

TEST(ScenarioRunner, HwEngineScenario) {
  const auto report = run_ok(R"(
router A ler engine=hw
router B ler engine=hw
link A B 10M 1ms
lsp 10.9.0.0/16 A B
flow cbr 1 A 10.9.0.1 interval=20ms stop=0.0599
)");
  EXPECT_EQ(report.flows.flow(1).delivered, 3u);
}

TEST(ScenarioRunner, ShardedEngineScenarioDeliversEverything) {
  // A fast flow into a slow-clocked sharded LSR: arrivals outpace the
  // engine, a backlog forms, and the router drains it in batches
  // (batch=4) across the 2 worker shards.  Nothing may be lost and the
  // transit hop must report modelled cycles like any hardware engine.
  const auto report = run_ok(R"(
router A ler
router B lsr engine=sharded:2 batch=4 clock=1M
router C ler
link A B 1G 0.1ms
link B C 1G 0.1ms
lsp 10.4.0.0/16 A B C
flow cbr 1 A 10.4.0.9 interval=0.01ms stop=0.000999
run 0.1
)");
  EXPECT_EQ(report.lsps_established, 1u);
  EXPECT_EQ(report.flows.flow(1).sent, 100u);
  EXPECT_EQ(report.flows.flow(1).delivered, 100u);
  ASSERT_EQ(report.routers.size(), 3u);
  EXPECT_GT(report.routers[1].engine_cycles, 0u);
}

TEST(ScenarioRunner, BadShardCountIsAParseError) {
  for (const char* engine : {"sharded:0", "sharded:65", "sharded:x",
                             "sharded:"}) {
    const auto result = ScenarioRunner::run_text(
        std::string("router A ler engine=") + engine + "\n");
    EXPECT_TRUE(std::holds_alternative<net::ScenarioError>(result))
        << engine;
  }
}

TEST(ScenarioRunner, AutorepairRestoresAfterFailure) {
  const auto report = run_ok(R"(
router A ler
router B lsr
router C lsr
router D ler
link A B 100M 1ms
link B D 100M 1ms
link B C 100M 2ms
link C D 100M 2ms
lsp 10.1.0.0/16 A B D
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.9999
fail 0.3 B D
autorepair 10ms dead=3
run 1
)");
  EXPECT_EQ(report.failures_detected, 1u);
  EXPECT_EQ(report.lsps_rerouted, 1u);
  // ~30 ms detection at 100 pps: lose about 3-5 packets, not the whole
  // remaining 70.
  const auto& flow = report.flows.flow(1);
  const auto lost = flow.sent - flow.delivered;
  EXPECT_GE(lost, 2u);
  EXPECT_LE(lost, 6u);
}

TEST(ScenarioRunner, UnplaceableLspIsASemanticError) {
  const auto result = ScenarioRunner::run_text(R"(
router A ler
router B ler
link A B 1M 1ms
lsp 10.1.0.0/16 A B bw=5M
)");
  ASSERT_TRUE(std::holds_alternative<net::ScenarioError>(result));
  EXPECT_NE(std::get<net::ScenarioError>(result).message.find("lsp"),
            std::string::npos);
}

TEST(ScenarioRunner, OamDirectivesReportResults) {
  const auto report = run_ok(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
ping 0.1 A 10.1.0.5
traceroute 0.2 A 10.1.0.5
ping 0.3 A 172.16.0.1
run 0.5
)");
  ASSERT_EQ(report.oam_results.size(), 3u);
  EXPECT_NE(report.oam_results[0].find("reachable via C"),
            std::string::npos);
  EXPECT_NE(report.oam_results[1].find("(complete)"), std::string::npos);
  EXPECT_NE(report.oam_results[1].find("C[egress]"), std::string::npos);
  EXPECT_NE(report.oam_results[2].find("FAILED at A"), std::string::npos);
  EXPECT_NE(report.to_string().find("oam:"), std::string::npos);
  // Probes must not appear in the traffic statistics.
  for (const auto& [id, flow] : report.flows.flows()) {
    EXPECT_LT(id, net::kOamFlowBase) << "OAM probe leaked into FlowStats";
    (void)flow;
  }
}

TEST(ScenarioRunner, LinkRowsReportUtilization) {
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
)");
  ASSERT_EQ(report.links.size(), 2u);  // both directions
  EXPECT_EQ(report.links[0].from, "A");
  EXPECT_EQ(report.links[0].tx_packets, 10u);
  EXPECT_GT(report.links[0].utilization, 0.0);
  EXPECT_EQ(report.links[1].tx_packets, 0u);
}

TEST(ScenarioRunner, PoliceDirectiveClipsTheFlow) {
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 size=160 interval=10ms stop=0.9999
police A 1 70k burst=400
run 1
)");
  const auto delivered = report.flows.flow(1).delivered;
  EXPECT_GE(delivered, 40u);
  EXPECT_LE(delivered, 60u) << "policer clipped ~half the offered rate";
}

TEST(ScenarioRunner, ProtectSwitchesLocallyAndCorruptionsAreRepaired) {
  // Ring topology: B-D is the primary's middle link, B-C-D the detour.
  // The flap outlasts the dead interval, so without protection the LSP
  // would be torn down and re-signed; with `protect` the PLR flips to
  // the pre-installed detour and reverts when the link heals.
  const auto report = run_ok(R"(
router A ler
router B lsr
router C lsr
router D ler
link A B 100M 1ms
link B D 100M 1ms
link B C 100M 2ms
link C D 100M 2ms
lsp 10.1.0.0/16 A B D
flow cbr 1 A 10.1.0.5 interval=1ms stop=0.5999
autorepair 10ms dead=3
protect
flap 0.2 B D 100ms
corrupt 0.45 B salt=3 resync=20ms
run 0.7
)");
  EXPECT_GT(report.backups_installed, 0u);
  EXPECT_EQ(report.protection_switches, 1u);
  EXPECT_EQ(report.protection_reverts, 1u);
  EXPECT_EQ(report.lsps_rerouted, 0u)
      << "restoration must leave the locally-protected LSP alone";
  EXPECT_EQ(report.corruptions_injected, 1u);
  EXPECT_GE(report.resyncs_repaired, 1u);

  const auto text = report.to_string();
  EXPECT_NE(text.find("protection:"), std::string::npos);
  EXPECT_NE(text.find("faults:"), std::string::npos);
}

TEST(ScenarioRunner, ParseErrorsPropagate) {
  const auto result = ScenarioRunner::run_text("nonsense\n");
  ASSERT_TRUE(std::holds_alternative<net::ScenarioError>(result));
  EXPECT_EQ(std::get<net::ScenarioError>(result).line, 1);
}

TEST(ScenarioRunner, ReportRendersTables) {
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=20ms stop=0.0399
)");
  const auto text = report.to_string();
  EXPECT_NE(text.find("flow 1"), std::string::npos);
  EXPECT_NE(text.find("A: rx="), std::string::npos);
}

// ---------------------------------------------------------------------
// Timeline sampling, expect assertions and the downgrade matrix.

constexpr char kSampledBase[] = R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
sample 20ms
run 0.2
)";

TEST(ScenarioRunner, TimelineSamplesAtTheDirectedCadence) {
  const auto report = run_ok(kSampledBase);
  // 0.2s run at a 20ms cadence: ticks at 0.02..0.2 inclusive.
  EXPECT_EQ(report.timeline_samples, 10u);
  EXPECT_GT(report.timeline_series, 5u);
  const auto text = report.to_string();
  EXPECT_NE(text.find("timeline: 10 samples"), std::string::npos);
}

TEST(ScenarioRunner, ExpectPassesOnTheGoldenScenario) {
  const auto report = run_ok(
      std::string(kSampledBase) +
      "expect empls_delivered_total == 10\n"
      "expect empls_drops_total{reason=\"policer\"} == 0\n");
  ASSERT_EQ(report.expects.size(), 2u);
  EXPECT_TRUE(report.expects[0].passed) << report.expects[0].detail;
  EXPECT_TRUE(report.expects[1].passed) << report.expects[1].detail;
  EXPECT_TRUE(report.expects_passed());
  const auto text = report.to_string();
  EXPECT_NE(text.find("slo:"), std::string::npos);
  EXPECT_NE(text.find("PASS expect empls_delivered_total == 10"),
            std::string::npos);
}

TEST(ScenarioRunner, FailedExpectCarriesTheObservedValue) {
  const auto report = run_ok(std::string(kSampledBase) +
                             "expect empls_delivered_total < 5\n");
  ASSERT_EQ(report.expects.size(), 1u);
  EXPECT_FALSE(report.expects[0].passed);
  EXPECT_NE(report.expects[0].detail.find("value=10"), std::string::npos);
  EXPECT_FALSE(report.expects_passed());
  EXPECT_NE(report.to_string().find("FAIL expect"), std::string::npos);
}

TEST(ScenarioRunner, UnknownMetricInExpectFailsWithDiagnostic) {
  const auto report = run_ok(std::string(kSampledBase) +
                             "expect empls_no_such_metric > 0\n");
  ASSERT_EQ(report.expects.size(), 1u);
  EXPECT_FALSE(report.expects[0].passed);
  EXPECT_NE(report.expects[0].detail.find("not found"), std::string::npos);
}

TEST(ScenarioRunner, WindowedExpectChecksPerIntervalDeltas) {
  // CBR at 10ms through a 20ms sampling cadence: every mid-run window
  // delivers exactly 2 packets (the timeline column is the delta).
  const auto report = run_ok(
      std::string(kSampledBase) +
      "expect empls_delivered_total <= 2 during 0s..0.2s\n"
      "expect empls_delivered_total == 2 during 0.04s..0.08s\n"
      "expect empls_delivered_total > 0 during 0.15s..0.2s\n");
  ASSERT_EQ(report.expects.size(), 3u);
  EXPECT_TRUE(report.expects[0].passed) << report.expects[0].detail;
  EXPECT_TRUE(report.expects[1].passed) << report.expects[1].detail;
  // The flow stopped at 0.1s: late windows deliver nothing, and the
  // violation names the exact sample.
  EXPECT_FALSE(report.expects[2].passed);
  EXPECT_NE(report.expects[2].detail.find("violated at t="),
            std::string::npos);
}

TEST(ScenarioRunner, SaturationKneeLocatedByWindowedQuantile) {
  // Open-loop overload of a 2M link: ~1700 pps of 160-byte packets
  // offered against ~1560 pps of service, a deep queue so nothing
  // drops — delay grows linearly, and the windowed p999 of the
  // load-generator latency crosses the 10ms SLO mid-run.  The early
  // window passes, the saturated window fails, and the violating
  // sample the report names IS the knee.
  const auto report = run_ok(R"(
qos fifo capacity=4096
router A ler
router B ler
link A B 2M 1ms
lsp 10.1.0.0/16 A B
loadgen poisson A 10.1.0.0 rate=1700 flows=64 seed=3 stop=0.4
sample 25ms
expect empls_loadgen_latency_ns.p999 < 1e7 during 0s..0.03s
expect empls_loadgen_latency_ns.p999 < 1e7 during 0s..0.4s
run 0.45
)");
  ASSERT_EQ(report.expects.size(), 2u);
  EXPECT_TRUE(report.expects[0].passed)
      << "pre-knee window: " << report.expects[0].detail;
  ASSERT_FALSE(report.expects[1].passed)
      << "the saturated run must cross the SLO";
  const auto& detail = report.expects[1].detail;
  const auto pos = detail.find("violated at t=");
  ASSERT_NE(pos, std::string::npos) << detail;
  const double knee = std::stod(detail.substr(pos + 14));
  EXPECT_GT(knee, 0.03) << "knee cannot predate the passing window";
  EXPECT_LE(knee, 0.4);
}

TEST(ScenarioRunner, SampleUnderFreeSyncDowngradesToDeterministic) {
  const auto report = run_ok(R"(
domains 2
sync free
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
sample 20ms
run 0.2
)");
  EXPECT_EQ(report.domains, 2u);
  EXPECT_EQ(report.sync_mode, "deterministic");
  EXPECT_NE(report.domain_note.find("timeline sampling"),
            std::string::npos);
  EXPECT_EQ(report.timeline_samples, 10u);
}

TEST(ScenarioRunner, TraceUnderFreeSyncForcesOneDomain) {
  const auto report = run_ok(R"(
domains 2
sync free
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
trace runner_dg_free.json
run 0.2
)");
  EXPECT_EQ(report.domains, 1u);
  EXPECT_FALSE(report.domain_traced);
  EXPECT_NE(report.domain_note.find("single domain forced"),
            std::string::npos);
}

TEST(ScenarioRunner, TraceUnderDeterministicSyncKeepsTheDomains) {
  const auto report = run_ok(R"(
domains 2
sync deterministic
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
trace runner_dg_det.json
run 0.2
)");
  EXPECT_EQ(report.domains, 2u);
  EXPECT_EQ(report.sync_mode, "deterministic");
  EXPECT_TRUE(report.domain_traced);
  EXPECT_EQ(report.domain_note.find("single domain forced"),
            std::string::npos)
      << report.domain_note;
  EXPECT_EQ(report.flows.flow(1).delivered, 10u);
  EXPECT_NE(report.to_string().find("trace=merged"), std::string::npos);
}

}  // namespace
}  // namespace empls::core
