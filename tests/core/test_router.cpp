// Unit tests for the embedded router's receive path: forwarding,
// latency charging, discard accounting, malformed-wire rejection, the
// packet tap, and the slow-path retry.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "hw/cycle_model.hpp"
#include "net/network.hpp"
#include "sw/linear_engine.hpp"
#include "sw/sharded_engine.hpp"

namespace empls::core {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;

class SinkNode : public net::Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(net::PacketHandle packet, mpls::InterfaceId) override {
    arrival_time = network()->now();
    last = std::move(*packet);
    ++count;
  }
  net::SimTime arrival_time = -1;
  mpls::Packet last;
  int count = 0;
};

struct Rig {
  net::Network net;
  net::NodeId router_id;
  net::NodeId sink_id;

  explicit Rig(RouterConfig cfg = {}) {
    auto r = std::make_unique<EmbeddedRouter>(
        "R", std::make_unique<sw::LinearEngine>(), cfg);
    router_id = net.add_node(std::move(r));
    sink_id = net.add_node(std::make_unique<SinkNode>("sink"));
    net.connect(router_id, sink_id, 1e9, 0.0);
  }
  EmbeddedRouter& router() { return net.node_as<EmbeddedRouter>(router_id); }
  SinkNode& sink() { return net.node_as<SinkNode>(sink_id); }
};

mpls::Packet labeled(rtl::u32 label, rtl::u8 ttl = 64) {
  mpls::Packet p;
  p.stack.push(LabelEntry{label, 0, false, ttl});
  return p;
}

TEST(Router, SwapForwardsOutTheProgrammedPort) {
  Rig rig;
  rig.router().routing().program_swap(2, 40, 77, 0);
  rig.net.inject(rig.router_id, labeled(40));
  rig.net.run();
  ASSERT_EQ(rig.sink().count, 1);
  EXPECT_EQ(rig.sink().last.stack.top().label, 77u);
  EXPECT_EQ(rig.router().stats().forwarded, 1u);
  EXPECT_EQ(rig.router().stats().swaps, 1u);
}

TEST(Router, ProcessingLatencyUsesEngineCyclesAtConfiguredClock) {
  RouterConfig cfg;
  cfg.clock_hz = 1e6;  // 1 MHz: 1 us per cycle, easy to read
  Rig rig(cfg);
  rig.router().routing().program_swap(2, 40, 77, 0);
  rig.net.inject(rig.router_id, labeled(40));
  rig.net.run();
  // update_swap_cycles(1) = 14 cycles at 1 MHz = 14 us, plus the 1 Gb/s
  // transmission (~0.2 us).
  EXPECT_NEAR(rig.sink().arrival_time, 14e-6, 1e-6);
}

TEST(Router, PopToLocalDelivery) {
  Rig rig;
  rig.router().routing().program_pop(2, 40, mpls::kLocalDeliver);
  mpls::Packet seen;
  int delivered = 0;
  rig.net.set_delivery_handler([&](net::NodeId id, const mpls::Packet& p) {
    EXPECT_EQ(id, rig.router_id);
    seen = p;
    ++delivered;
  });
  rig.net.inject(rig.router_id, labeled(40, 50));
  rig.net.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(seen.stack.empty());
  EXPECT_EQ(seen.ip_ttl, 49u) << "egress writes the label TTL back";
  EXPECT_EQ(rig.router().stats().delivered_local, 1u);
}

TEST(Router, UnknownLabelDiscards) {
  Rig rig;
  rig.net.inject(rig.router_id, labeled(999));
  rig.net.run();
  EXPECT_EQ(rig.router().stats().discarded, 1u);
  EXPECT_EQ(rig.sink().count, 0);
}

TEST(Router, MissingNextHopDiscardsEvenAfterEngineSuccess) {
  // Program the engine directly, bypassing the routing functionality, so
  // the update succeeds but next-hop resolution fails.
  Rig rig;
  rig.router().engine().write_pair(
      2, mpls::LabelPair{40, 77, LabelOp::kSwap});
  rig.net.inject(rig.router_id, labeled(40));
  rig.net.run();
  EXPECT_EQ(rig.router().stats().discarded, 1u);
  EXPECT_EQ(rig.sink().count, 0);
}

TEST(Router, SlowPathRetriesOnce) {
  RouterConfig cfg;
  cfg.type = hw::RouterType::kLer;
  Rig rig(cfg);
  rig.router().routing().program_ingress_prefix(
      *mpls::Prefix::parse("10.0.0.0/8"), 55, 0);

  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.3.2.1");
  rig.net.inject(rig.router_id, p);
  rig.net.run();
  EXPECT_EQ(rig.sink().count, 1);
  EXPECT_EQ(rig.router().stats().slow_path_retries, 1u);
  EXPECT_EQ(rig.sink().last.stack.top().label, 55u);

  // Second packet to the same destination: fast path.
  rig.net.inject(rig.router_id, p);
  rig.net.run();
  EXPECT_EQ(rig.sink().count, 2);
  EXPECT_EQ(rig.router().stats().slow_path_retries, 1u);
}

TEST(Router, LsrDoesNotTakeTheSlowPath) {
  Rig rig;  // default type is LSR
  rig.router().routing().program_ingress_prefix(
      *mpls::Prefix::parse("10.0.0.0/8"), 55, 0);
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.3.2.1");
  rig.net.inject(rig.router_id, p);
  rig.net.run();
  EXPECT_EQ(rig.router().stats().discarded, 1u);
  EXPECT_EQ(rig.router().stats().slow_path_retries, 0u);
}

TEST(Router, MalformedPacketCounted) {
  Rig rig;
  mpls::Packet p;
  // Oversize shim claim: corrupt by hand-building a stack deeper than
  // the wire format supports is impossible through the API, so corrupt
  // the payload length contract instead: wire_round_trip_ok() is
  // exercised via a packet whose stack was built with mismatched S bits
  // through direct manipulation.  Easiest honest trigger: a payload too
  // large for the 16-bit length field.
  p.payload.assign(70000, 1);
  rig.net.inject(rig.router_id, p);
  rig.net.run();
  EXPECT_EQ(rig.router().stats().malformed, 1u);
  EXPECT_EQ(rig.router().stats().discarded, 0u);
}

TEST(Router, WireValidationCanBeDisabled) {
  RouterConfig cfg;
  cfg.validate_wire = false;
  Rig rig(cfg);
  mpls::Packet p;
  p.payload.assign(70000, 1);
  rig.net.inject(rig.router_id, p);
  rig.net.run();
  EXPECT_EQ(rig.router().stats().malformed, 0u);
  EXPECT_EQ(rig.router().stats().discarded, 1u) << "fails later instead";
}

TEST(Router, PacketTapSeesBeforeAndAfter) {
  Rig rig;
  rig.router().routing().program_swap(2, 40, 77, 0);
  int taps = 0;
  rig.router().set_packet_tap([&](const EmbeddedRouter& r,
                                  const mpls::Packet& before,
                                  const mpls::Packet& after, LabelOp op,
                                  bool discarded) {
    ++taps;
    EXPECT_EQ(r.name(), "R");
    EXPECT_EQ(before.stack.top().label, 40u);
    EXPECT_EQ(after.stack.top().label, 77u);
    EXPECT_EQ(op, LabelOp::kSwap);
    EXPECT_FALSE(discarded);
  });
  rig.net.inject(rig.router_id, labeled(40));
  rig.net.run();
  EXPECT_EQ(taps, 1);
}

TEST(Router, EngineSerialisesBackToBackPackets) {
  RouterConfig cfg;
  cfg.clock_hz = 1e6;  // 1 us per cycle: swap = 14 us of engine time
  Rig rig(cfg);
  rig.router().routing().program_swap(2, 40, 77, 0);
  // Three packets injected at t=0 contend for the single datapath.
  for (int i = 0; i < 3; ++i) {
    rig.net.inject(rig.router_id, labeled(40));
  }
  rig.net.run();
  EXPECT_EQ(rig.sink().count, 3);
  // Last packet waits 2 x 14 us, processes for 14 us: leaves at 42 us.
  EXPECT_NEAR(rig.sink().arrival_time, 42e-6, 2e-6);
  EXPECT_EQ(rig.router().stats().engine_queue_peak, 2u);
  EXPECT_NEAR(rig.router().stats().engine_wait_time, 14e-6 + 28e-6, 2e-6);
}

TEST(Router, ParallelEngineOptionRemovesContention) {
  RouterConfig cfg;
  cfg.clock_hz = 1e6;
  cfg.serialize_engine = false;
  Rig rig(cfg);
  rig.router().routing().program_swap(2, 40, 77, 0);
  for (int i = 0; i < 3; ++i) {
    rig.net.inject(rig.router_id, labeled(40));
  }
  rig.net.run();
  EXPECT_EQ(rig.sink().count, 3);
  EXPECT_NEAR(rig.sink().arrival_time, 14e-6, 2e-6)
      << "all three processed concurrently in the idealised mode";
  EXPECT_EQ(rig.router().stats().engine_queue_peak, 0u);
}

TEST(Router, EngineQueueOverrunDrops) {
  RouterConfig cfg;
  cfg.clock_hz = 1e6;
  cfg.engine_queue_capacity = 2;
  Rig rig(cfg);
  rig.router().routing().program_swap(2, 40, 77, 0);
  for (int i = 0; i < 6; ++i) {
    rig.net.inject(rig.router_id, labeled(40));
  }
  rig.net.run();
  // 1 in service + 2 queued survive; 3 overrun.
  EXPECT_EQ(rig.sink().count, 3);
  EXPECT_EQ(rig.router().stats().engine_overruns, 3u);
}

TEST(Router, StatsCycleAccounting) {
  Rig rig;
  rig.router().routing().program_swap(2, 40, 77, 0);
  rig.net.inject(rig.router_id, labeled(40));
  rig.net.run();
  EXPECT_EQ(rig.router().stats().engine_cycles, hw::update_swap_cycles(1));
  EXPECT_EQ(rig.router().stats().received, 1u);
}

TEST(Router, BacklogDrainsThroughBatchesOnAShardedEngine) {
  // 12 simultaneous arrivals at a sharded router with batch=4: the
  // first packet enters the engine alone, the backlog then drains in
  // batches through update_batch, and nothing is lost or reordered
  // within the (single) flow.
  net::Network net;
  RouterConfig cfg;
  cfg.engine_batch_size = 4;
  auto r = std::make_unique<EmbeddedRouter>(
      "R", std::make_unique<sw::ShardedEngine>(2), cfg);
  const auto router_id = net.add_node(std::move(r));
  const auto sink_id = net.add_node(std::make_unique<SinkNode>("sink"));
  net.connect(router_id, sink_id, 1e9, 0.0);
  auto& router = net.node_as<EmbeddedRouter>(router_id);

  router.routing().program_swap(2, 40, 77, 0);
  for (int i = 0; i < 12; ++i) {
    auto p = labeled(40);
    p.id = static_cast<std::uint64_t>(i);
    net.inject(router_id, p);
  }
  net.run();

  const auto& stats = router.stats();
  EXPECT_EQ(stats.received, 12u);
  EXPECT_EQ(stats.forwarded, 12u);
  EXPECT_EQ(stats.engine_overruns, 0u);
  EXPECT_GT(stats.engine_batches, 0u);
  EXPECT_GT(stats.engine_batched_packets, 0u);
  // 1 served alone + the rest in batches of <= 4.
  EXPECT_LE(stats.engine_batches,
            (stats.engine_batched_packets + 3) / 4 + 1);
  EXPECT_EQ(net.node_as<SinkNode>(sink_id).count, 12);
  EXPECT_GT(stats.engine_cycles, 0u);
}

}  // namespace
}  // namespace empls::core
