// Unit tests for the routing functionality: engine programming, next-hop
// resolution, and the ingress slow path.
#include <gtest/gtest.h>

#include "core/routing_functionality.hpp"
#include "sw/linear_engine.hpp"

namespace empls::core {
namespace {

using mpls::LabelOp;

struct Rig {
  sw::LinearEngine engine;
  RoutingFunctionality routing{engine};
};

TEST(RoutingFunctionality, ProgramIngressExactWritesHardware) {
  Rig rig;
  ASSERT_TRUE(rig.routing.program_ingress_exact(0x0A000001, 55, 2));
  const auto pair = rig.engine.lookup(1, 0x0A000001);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->new_label, 55u);
  EXPECT_EQ(pair->op, LabelOp::kPush);
  EXPECT_EQ(rig.routing.out_port(1, 0x0A000001), 2u);
}

TEST(RoutingFunctionality, ProgramSwapPopPush) {
  Rig rig;
  ASSERT_TRUE(rig.routing.program_swap(2, 100, 200, 1));
  ASSERT_TRUE(rig.routing.program_pop(2, 300, mpls::kLocalDeliver));
  ASSERT_TRUE(rig.routing.program_push(2, 400, 500, 3));

  EXPECT_EQ(rig.engine.lookup(2, 100)->op, LabelOp::kSwap);
  EXPECT_EQ(rig.engine.lookup(2, 300)->op, LabelOp::kPop);
  EXPECT_EQ(rig.engine.lookup(2, 400)->op, LabelOp::kPush);
  EXPECT_EQ(rig.engine.lookup(2, 400)->new_label, 500u);
  EXPECT_EQ(rig.routing.out_port(2, 100), 1u);
  EXPECT_EQ(rig.routing.out_port(2, 300), mpls::kLocalDeliver);
  EXPECT_FALSE(rig.routing.out_port(2, 999).has_value());
  EXPECT_FALSE(rig.routing.out_port(3, 100).has_value())
      << "next-hop state is per level";

  // The software ILM mirror tracks the bindings.
  EXPECT_EQ(rig.routing.ilm_table().size(), 3u);
}

TEST(RoutingFunctionality, PrefixProgrammingIsSoftwareOnly) {
  Rig rig;
  ASSERT_TRUE(rig.routing.program_ingress_prefix(
      *mpls::Prefix::parse("10.0.0.0/8"), 55, 2));
  EXPECT_EQ(rig.engine.level_size(1), 0u)
      << "no hardware entry until traffic arrives";
  EXPECT_EQ(rig.routing.fec_table().size(), 1u);
  EXPECT_EQ(rig.routing.ftn_table().size(), 1u);
}

TEST(RoutingFunctionality, SlowPathInstallsExactEntry) {
  Rig rig;
  rig.routing.program_ingress_prefix(*mpls::Prefix::parse("10.0.0.0/8"), 55,
                                     2);
  EXPECT_TRUE(rig.routing.slow_path_install(0x0A010203));
  EXPECT_EQ(rig.routing.slow_path_installs(), 1u);
  const auto pair = rig.engine.lookup(1, 0x0A010203);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->new_label, 55u);
  EXPECT_EQ(rig.routing.out_port(1, 0x0A010203), 2u);
}

TEST(RoutingFunctionality, SlowPathFailsOutsideAnyPrefix) {
  Rig rig;
  rig.routing.program_ingress_prefix(*mpls::Prefix::parse("10.0.0.0/8"), 55,
                                     2);
  EXPECT_FALSE(rig.routing.slow_path_install(0xC0A80001));
  EXPECT_EQ(rig.routing.slow_path_installs(), 0u);
  EXPECT_EQ(rig.engine.level_size(1), 0u);
}

TEST(RoutingFunctionality, SlowPathUsesLongestPrefix) {
  Rig rig;
  rig.routing.program_ingress_prefix(*mpls::Prefix::parse("10.0.0.0/8"), 55,
                                     2);
  rig.routing.program_ingress_prefix(*mpls::Prefix::parse("10.1.0.0/16"), 66,
                                     3);
  ASSERT_TRUE(rig.routing.slow_path_install(0x0A010203));
  EXPECT_EQ(rig.engine.lookup(1, 0x0A010203)->new_label, 66u);
  EXPECT_EQ(rig.routing.out_port(1, 0x0A010203), 3u);
}

TEST(RoutingFunctionality, ReprogrammingPrefixReusesFecId) {
  Rig rig;
  const auto p = *mpls::Prefix::parse("10.0.0.0/8");
  rig.routing.program_ingress_prefix(p, 55, 2);
  rig.routing.program_ingress_prefix(p, 77, 4);  // new binding, same FEC
  EXPECT_EQ(rig.routing.fec_table().size(), 1u);
  ASSERT_TRUE(rig.routing.slow_path_install(0x0A000001));
  EXPECT_EQ(rig.engine.lookup(1, 0x0A000001)->new_label, 77u);
}

TEST(RoutingFunctionality, WriteFailurePropagates) {
  sw::LinearEngine tiny(/*level_capacity=*/1);
  RoutingFunctionality routing(tiny);
  EXPECT_TRUE(routing.program_swap(2, 1, 2, 0));
  EXPECT_FALSE(routing.program_swap(2, 3, 4, 0)) << "level full";
}

TEST(RoutingFunctionality, AllocatorSeededByFirstLabel) {
  sw::LinearEngine engine;
  RoutingFunctionality routing(engine, /*first_label=*/500);
  EXPECT_EQ(routing.label_allocator().allocate(), 500u);
}

}  // namespace
}  // namespace empls::core
