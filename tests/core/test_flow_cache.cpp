// The embedded router's flow cache: direct-mapped (level, key) →
// resolved label-pair bindings, validated by the engine's epoch
// counter.  The contract under test is absolute transparency — a run
// with the cache on must produce bit-identical books to the same run
// with the cache off (and to the LinearEngine golden model), including
// modelled engine cycles and latency percentiles, while serving the
// steady-state traffic mostly from the cache.  Epoch invalidation is
// exercised the hard way: an injected information-base corruption and
// the subsequent resync reprogram mid-stream, which must flip cached
// entries stale at exactly the same packet boundaries as the uncached
// engine changes behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/embedded_router.hpp"
#include "net/fault_injector.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/sharded_engine.hpp"
#include "sw/simd_engine.hpp"

namespace empls::core {
namespace {

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

std::unique_ptr<sw::LabelEngine> make_engine(const std::string& kind) {
  if (kind == "linear") {
    return std::make_unique<sw::LinearEngine>();
  }
  return std::make_unique<sw::SimdEngine>();
}

/// Everything two runs must agree on to count as "bit-identical".
struct Books {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double latency_mean = 0;
  double latency_p99 = 0;
  double jitter = 0;
  // Per router: received, forwarded, delivered_local, discarded, cycles.
  std::vector<std::vector<std::uint64_t>> routers;

  bool operator==(const Books&) const = default;
};

struct RunResult {
  Books books;
  net::FlowCacheStats cache;  // aggregated over all routers
  bool cache_enabled = false;
  unsigned corrupt_resynced = 0;
};

/// A line of `n` routers, one CBR flow crossing it end to end; when
/// `corrupt_at` > 0, the transit router's information base is garbled
/// at that time and resynced `corrupt_resync` later.
RunResult run_line(const std::string& kind, std::size_t cache_entries,
                   int n, double stop_s, double corrupt_at = 0,
                   double corrupt_resync = 0) {
  net::Network net;
  net::ControlPlane cp(net);
  net::FlowStats stats;

  std::vector<net::NodeId> ids;
  std::vector<EmbeddedRouter*> routers;
  for (int i = 0; i < n; ++i) {
    RouterConfig cfg;
    cfg.type = (i == 0 || i == n - 1) ? hw::RouterType::kLer
                                      : hw::RouterType::kLsr;
    cfg.flow_cache_entries = cache_entries;
    std::string name = "R";
    name += std::to_string(i);
    auto r = std::make_unique<EmbeddedRouter>(name, make_engine(kind), cfg);
    routers.push_back(r.get());
    ids.push_back(net.add_node(std::move(r)));
    cp.register_router(ids.back(), &routers.back()->routing());
  }
  for (int i = 0; i + 1 < n; ++i) {
    net.connect(ids[i], ids[i + 1], 100e6, 1e-3);
  }
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    stats.on_delivered(p, net.now());
  });

  EXPECT_TRUE(cp.establish_lsp(ids, pfx("10.1.0.0/16")).has_value());

  net::FlowSpec spec{1, ids.front(), mpls::Ipv4Address{1},
                     *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0,
                     stop_s};
  net::CbrSource flow(net, spec, &stats, 1e-3);
  flow.start();

  net::FaultInjector injector(net, cp);
  if (corrupt_at > 0) {
    injector.inject(net::FaultSpec{net::FaultKind::kCorrupt, corrupt_at,
                                   ids[n / 2], 0, corrupt_resync,
                                   /*salt=*/1});
  }
  net.run();

  RunResult result;
  const auto& f = stats.flow(1);
  result.books.sent = f.sent;
  result.books.delivered = f.delivered;
  result.books.latency_mean = f.latency.mean();
  result.books.latency_p99 = f.latency.percentile(0.99);
  result.books.jitter = f.jitter;
  for (auto* r : routers) {
    const auto& s = r->stats();
    result.books.routers.push_back({s.received, s.forwarded,
                                    s.delivered_local, s.discarded,
                                    s.engine_cycles});
    result.cache.hits += r->cache_stats().hits;
    result.cache.misses += r->cache_stats().misses;
    result.cache.invalidations += r->cache_stats().invalidations;
    result.cache.insertions += r->cache_stats().insertions;
    result.cache_enabled = result.cache_enabled || r->flow_cache_enabled();
  }
  if (!injector.records().empty()) {
    result.corrupt_resynced = injector.records().front().resynced;
  }
  return result;
}

// The cache only arms when it is configured AND the engine exposes a
// cacheable search/tail decomposition; the RTL-backed and sharded
// engines must see every packet and silently run uncached.
TEST(FlowCache, ArmsOnlyForCacheableEngines) {
  RouterConfig cfg;
  cfg.flow_cache_entries = 64;
  EmbeddedRouter simd("s", std::make_unique<sw::SimdEngine>(), cfg);
  EXPECT_TRUE(simd.flow_cache_enabled());
  EmbeddedRouter linear("l", std::make_unique<sw::LinearEngine>(), cfg);
  EXPECT_TRUE(linear.flow_cache_enabled());
  EmbeddedRouter hw_r("h", std::make_unique<sw::HwEngine>(), cfg);
  EXPECT_FALSE(hw_r.flow_cache_enabled()) << "RTL model sees every packet";
  EmbeddedRouter sharded("p", std::make_unique<sw::ShardedEngine>(2), cfg);
  EXPECT_FALSE(sharded.flow_cache_enabled())
      << "makespan model would change if hits skipped the batch";

  RouterConfig off;
  off.flow_cache_entries = 0;
  EmbeddedRouter none("n", std::make_unique<sw::SimdEngine>(), off);
  EXPECT_FALSE(none.flow_cache_enabled());
}

// Steady state on the 8-node line: one flow, one (level, key) per
// router, so after the first packet warms each cache almost every probe
// hits — while the books stay exactly those of the uncached run and of
// the LinearEngine golden model.
TEST(FlowCache, SteadyStateHitsWithBitIdenticalBooks) {
  const auto uncached = run_line("simd", 0, 8, 0.3);
  const auto cached = run_line("simd", 1024, 8, 0.3);
  const auto golden = run_line("linear", 0, 8, 0.3);

  EXPECT_FALSE(uncached.cache_enabled);
  EXPECT_TRUE(cached.cache_enabled);
  EXPECT_EQ(cached.books, uncached.books);
  EXPECT_EQ(uncached.books, golden.books);
  EXPECT_GT(cached.books.delivered, 250u);

  EXPECT_EQ(uncached.cache.hits + uncached.cache.misses, 0u);
  EXPECT_GT(cached.cache.insertions, 0u);
  EXPECT_GE(cached.cache.hit_rate(), 0.90)
      << cached.cache.summary();
}

// The acceptance property for epoch invalidation: a corruption garbles
// the transit router's information base mid-stream and the resync audit
// reprograms it 50 ms later.  Both events bump the engine epoch, so the
// cached run must misroute, drop and recover at exactly the same packet
// boundaries as the uncached run — identical books — while the cache
// registers the stale-entry invalidations.
TEST(FlowCache, EpochInvalidationKeepsCorruptedRunIdentical) {
  const auto uncached = run_line("simd", 0, 3, 0.5, 0.1, 0.05);
  const auto cached = run_line("simd", 1024, 3, 0.5, 0.1, 0.05);

  EXPECT_EQ(cached.books, uncached.books);
  // The corruption actually bit: deliveries were lost, then recovered.
  EXPECT_LT(cached.books.delivered, cached.books.sent);
  EXPECT_GT(cached.books.delivered, 400u);
  EXPECT_GE(cached.corrupt_resynced, 1u) << "audit repaired nothing";
  // Stale entries were detected by epoch compare, not served.
  EXPECT_GE(cached.cache.invalidations, 1u) << cached.cache.summary();
  EXPECT_GE(cached.cache.hit_rate(), 0.90) << cached.cache.summary();
}

// A reprogram that does NOT change behaviour (rewriting the same
// binding) must still invalidate — correctness over cleverness: the
// cache revalidates against the engine and the books stay identical.
TEST(FlowCache, RewritingTheSameBindingStillInvalidates) {
  net::Network net;
  net::ControlPlane cp(net);
  net::FlowStats stats;
  RouterConfig cfg;
  cfg.type = hw::RouterType::kLer;
  cfg.flow_cache_entries = 64;
  auto owned = std::make_unique<EmbeddedRouter>(
      "A", std::make_unique<sw::SimdEngine>(), cfg);
  auto* router = owned.get();
  const auto a = net.add_node(std::move(owned));
  RouterConfig cfg_b;
  cfg_b.type = hw::RouterType::kLer;
  auto owned_b = std::make_unique<EmbeddedRouter>(
      "B", std::make_unique<sw::LinearEngine>(), cfg_b);
  const auto b = net.add_node(std::move(owned_b));
  cp.register_router(a, &router->routing());
  cp.register_router(
      b, &net.node_as<EmbeddedRouter>(b).routing());
  net.connect(a, b, 100e6, 1e-3);
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    stats.on_delivered(p, net.now());
  });
  ASSERT_TRUE(cp.establish_lsp({a, b}, pfx("10.9.0.0/16")).has_value());

  net::FlowSpec spec{1, a, mpls::Ipv4Address{1},
                     *mpls::Ipv4Address::parse("10.9.0.1"), 6, 100, 0.0,
                     0.2};
  net::CbrSource flow(net, spec, &stats, 1e-3);
  flow.start();

  // Mid-stream, rewrite an unrelated binding: epoch moves, behaviour
  // does not.
  net.events().schedule_at(0.1, [&] {
    router->engine().write_pair(
        2, mpls::LabelPair{999, 998, mpls::LabelOp::kSwap});
  });
  net.run();

  EXPECT_EQ(stats.flow(1).delivered, stats.flow(1).sent);
  EXPECT_GE(router->cache_stats().invalidations, 1u)
      << router->cache_stats().summary();
  EXPECT_GE(router->cache_stats().hit_rate(), 0.90)
      << router->cache_stats().summary();
}

}  // namespace
}  // namespace empls::core
