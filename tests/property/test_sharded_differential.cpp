// Differential property test for the sharded parallel forwarding plane:
// ShardedEngine(N) must agree bit-for-bit with the single-datapath
// LinearEngine golden model on arbitrary random programs and packet
// streams — outcomes, stack contents, TTLs, cycle counts — for N in
// {1, 2, 8}, including reprogramming between batches (which exercises
// the drain/quiesce barrier) and injected corruptions.  A separate test
// pins the RSS-style ordering contract: every packet of a flow runs on
// the flow's owning shard, in input order.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <random>
#include <tuple>
#include <vector>

#include "sw/linear_engine.hpp"
#include "sw/semantics.hpp"
#include "sw/sharded_engine.hpp"

namespace empls {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

class ShardedDifferential
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {
 protected:
  [[nodiscard]] unsigned seed() const { return std::get<0>(GetParam()); }
  [[nodiscard]] unsigned shards() const { return std::get<1>(GetParam()); }
};

// Small key spaces force duplicates, hits and cross-shard collisions.
mpls::Packet random_packet(std::mt19937& rng) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address{static_cast<rtl::u32>(0xC0A80000 + rng() % 12)};
  p.cos = static_cast<rtl::u8>(rng() & 7);
  p.ip_ttl = static_cast<rtl::u8>(rng() % 4 == 0 ? rng() % 3 : rng());
  const auto depth = rng() % 4;
  for (rtl::u32 d = 0; d < depth; ++d) {
    p.stack.push(LabelEntry{static_cast<rtl::u32>(1 + rng() % 12),
                            static_cast<rtl::u8>(rng() & 7), false,
                            static_cast<rtl::u8>(rng() % 4 == 0 ? rng() % 3
                                                                : rng())});
  }
  return p;
}

LabelPair random_pair(std::mt19937& rng, unsigned level) {
  const rtl::u32 key =
      level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
  return LabelPair{key, static_cast<rtl::u32>(100 + rng() % 900),
                   static_cast<LabelOp>(rng() % 4)};
}

TEST_P(ShardedDifferential, BatchesAgreeWithGoldenAcrossReprogramming) {
  std::mt19937 rng(seed());
  sw::ShardedEngine sharded(shards());
  sw::LinearEngine golden;
  ASSERT_EQ(sharded.parallelism(), shards());

  // Random initial program.
  for (int i = 0; i < 30; ++i) {
    const unsigned level = 1 + rng() % 3;
    const auto pair = random_pair(rng, level);
    ASSERT_EQ(sharded.write_pair(level, pair),
              golden.write_pair(level, pair));
  }

  for (int round = 0; round < 6; ++round) {
    // A batch of random packets through the parallel plane, the same
    // packets one-by-one through the golden model.
    std::vector<mpls::Packet> a(64);
    std::vector<mpls::Packet> b(64);
    std::vector<mpls::Packet*> ptrs(64);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = random_packet(rng);
      b[i] = a[i];
      ptrs[i] = &a[i];
    }
    const auto type =
        rng() % 2 == 0 ? hw::RouterType::kLer : hw::RouterType::kLsr;
    const auto outcomes = sharded.update_batch(ptrs, type);
    ASSERT_EQ(outcomes.size(), a.size());

    rtl::u64 golden_cycles = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto want = golden.update(b[i], sw::classify_level(b[i]), type);
      golden_cycles += want.hw_cycles;
      ASSERT_EQ(outcomes[i].discarded, want.discarded)
          << "round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].reason, want.reason)
          << "round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].applied, want.applied)
          << "round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].ttl_after, want.ttl_after)
          << "round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].hw_cycles, want.hw_cycles)
          << "round " << round << " packet " << i;
      ASSERT_EQ(a[i].stack, b[i].stack)
          << "round " << round << " packet " << i
          << "\n  sharded: " << a[i].stack.to_string()
          << "\n  golden:  " << b[i].stack.to_string();
    }
    // The makespan is the slowest shard, so it never exceeds the serial
    // sum, and per-shard loads must account for every packet and cycle.
    EXPECT_LE(sharded.last_batch_makespan_cycles(), golden_cycles);
    rtl::u64 load_packets = 0;
    rtl::u64 load_cycles = 0;
    rtl::u64 slowest = 0;
    for (const auto& load : sharded.last_batch_loads()) {
      load_packets += load.packets;
      load_cycles += load.cycles;
      slowest = std::max(slowest, load.cycles);
    }
    EXPECT_EQ(load_packets, a.size());
    EXPECT_EQ(load_cycles, golden_cycles);
    EXPECT_EQ(slowest, sharded.last_batch_makespan_cycles());

    // Mid-stream reprogramming + an occasional injected corruption: the
    // write path quiesces the shards and must hit every replica, so the
    // engines keep agreeing afterwards.
    for (int i = 0; i < 4; ++i) {
      const unsigned level = 1 + rng() % 3;
      const auto pair = random_pair(rng, level);
      ASSERT_EQ(sharded.write_pair(level, pair),
                golden.write_pair(level, pair));
    }
    if (round % 2 == 1) {
      const unsigned level = 1 + rng() % 3;
      const rtl::u32 key =
          level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
      const rtl::u32 bad = 0x80000 + rng() % 256;
      ASSERT_EQ(sharded.corrupt_entry(level, key, bad),
                golden.corrupt_entry(level, key, bad));
    }
    for (unsigned level = 1; level <= 3; ++level) {
      ASSERT_EQ(sharded.level_size(level), golden.level_size(level));
      const rtl::u32 key =
          level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
      ASSERT_EQ(sharded.lookup(level, key), golden.lookup(level, key));
    }
  }
}

TEST_P(ShardedDifferential, SingleUpdatesAgreeAtCallerChosenLevels) {
  std::mt19937 rng(seed() * 31 + 7);
  sw::ShardedEngine sharded(shards());
  sw::LinearEngine golden;
  for (int i = 0; i < 30; ++i) {
    const unsigned level = 1 + rng() % 3;
    const auto pair = random_pair(rng, level);
    ASSERT_EQ(sharded.write_pair(level, pair),
              golden.write_pair(level, pair));
  }

  // The single-packet path honours the caller's level (which may not be
  // what classify_level would pick) exactly like the golden model.
  for (int trial = 0; trial < 120; ++trial) {
    mpls::Packet a = random_packet(rng);
    mpls::Packet b = a;
    const unsigned level = 1 + rng() % 3;
    const auto type =
        rng() % 2 == 0 ? hw::RouterType::kLer : hw::RouterType::kLsr;
    const auto got = sharded.update(a, level, type);
    const auto want = golden.update(b, level, type);
    ASSERT_EQ(got.discarded, want.discarded) << "trial " << trial;
    ASSERT_EQ(got.reason, want.reason) << "trial " << trial;
    ASSERT_EQ(got.applied, want.applied) << "trial " << trial;
    ASSERT_EQ(got.ttl_after, want.ttl_after) << "trial " << trial;
    ASSERT_EQ(got.hw_cycles, want.hw_cycles) << "trial " << trial;
    ASSERT_EQ(a.stack, b.stack) << "trial " << trial;
  }
}

TEST_P(ShardedDifferential, PerFlowOrderAndShardAffinityHold) {
  std::mt19937 rng(seed() * 101 + 3);
  sw::ShardedEngine sharded(shards());
  for (rtl::u32 label = 1; label <= 12; ++label) {
    // Self-mapping swaps keep the key stable so a flow's packets stay
    // comparable before and after the update.
    ASSERT_TRUE(sharded.write_pair(
        2, LabelPair{label, label, LabelOp::kSwap}));
  }

  // 12 flows (one per label), many packets per flow, interleaved.  The
  // engines mutate stacks, so the flow key rides in flow_id, which the
  // data path never touches.
  std::vector<mpls::Packet> packets(240);
  std::vector<mpls::Packet*> ptrs(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const rtl::u32 label = 1 + rng() % 12;
    packets[i].flow_id = label;
    packets[i].id = i;
    packets[i].ip_ttl = 200;
    packets[i].stack.push(LabelEntry{label, 0, true, 200});
    ptrs[i] = &packets[i];
  }

  // Worker threads call the trace concurrently; the mutex is ours.
  std::mutex mu;
  std::map<rtl::u32, std::vector<std::pair<std::size_t, rtl::u64>>> seen;
  sharded.set_trace([&](std::size_t shard, const mpls::Packet& p,
                        const sw::UpdateOutcome&) {
    const std::scoped_lock lock(mu);
    seen[p.flow_id].push_back({shard, p.id});
  });
  const auto outcomes = sharded.update_batch(ptrs, hw::RouterType::kLsr);
  sharded.set_trace(nullptr);
  for (const auto& o : outcomes) {
    ASSERT_FALSE(o.discarded);
  }

  std::size_t traced = 0;
  for (const auto& [flow, events] : seen) {
    const std::size_t owner = sharded.shard_of(2, flow);
    rtl::u64 last_id = 0;
    bool first = true;
    for (const auto& [shard, id] : events) {
      EXPECT_EQ(shard, owner) << "flow " << flow << " strayed off its shard";
      if (!first) {
        EXPECT_LT(last_id, id) << "flow " << flow << " reordered";
      }
      first = false;
      last_id = id;
    }
    traced += events.size();
  }
  EXPECT_EQ(traced, packets.size());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, ShardedDifferential,
    ::testing::Combine(::testing::Values(1u, 42u, 2005u, 31415u),
                       ::testing::Values(1u, 2u, 8u)));

}  // namespace
}  // namespace empls
