// Differential property test: the cycle-accurate RTL label stack
// modifier and the software golden model (LinearEngine, which transcribes
// Figure 9's semantics) must agree bit-for-bit on arbitrary operation
// sequences — outcomes, stack contents, TTLs, CoS bits, S bits — and the
// RTL's measured cycle counts must match the Table 6 cost model the
// golden engine predicts.
#include <gtest/gtest.h>

#include <random>

#include "hw/label_stack_modifier.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"

namespace empls {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

class Differential : public ::testing::TestWithParam<unsigned> {};

TEST_P(Differential, RandomProgramsAndPacketsAgree) {
  std::mt19937 rng(GetParam());
  sw::HwEngine hw_engine;
  sw::LinearEngine golden;

  // Random program: 40 pairs across the three levels, with ops biased
  // toward the applicable ones but including NOPs and duplicates.
  for (int i = 0; i < 40; ++i) {
    const unsigned level = 1 + rng() % 3;
    // Small key spaces force duplicates and hits.
    const rtl::u32 key = level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
    const rtl::u32 new_label = 100 + rng() % 900;
    const auto op = static_cast<LabelOp>(rng() % 4);
    const LabelPair pair{key, new_label, op};
    ASSERT_EQ(hw_engine.write_pair(level, pair),
              golden.write_pair(level, pair));
  }
  for (unsigned level = 1; level <= 3; ++level) {
    ASSERT_EQ(hw_engine.level_size(level), golden.level_size(level));
  }

  // Random packets: empty/1/2/3-deep stacks, random TTLs including
  // expiring ones, both router types, all levels.
  for (int trial = 0; trial < 120; ++trial) {
    mpls::Packet a;
    a.dst = mpls::Ipv4Address{
        static_cast<rtl::u32>(0xC0A80000 + rng() % 12)};
    a.cos = static_cast<rtl::u8>(rng() & 7);
    a.ip_ttl = static_cast<rtl::u8>(rng() % 4 == 0 ? rng() % 3 : rng());
    const auto depth = rng() % 4;
    for (rtl::u32 d = 0; d < depth; ++d) {
      a.stack.push(LabelEntry{static_cast<rtl::u32>(1 + rng() % 12),
                              static_cast<rtl::u8>(rng() & 7), false,
                              static_cast<rtl::u8>(rng() % 4 == 0
                                                       ? rng() % 3
                                                       : rng())});
    }
    mpls::Packet b = a;
    const unsigned level =
        a.stack.empty()
            ? 1
            : static_cast<unsigned>(std::min<std::size_t>(
                  a.stack.size() + 1, 3));
    const auto type =
        rng() % 2 == 0 ? hw::RouterType::kLer : hw::RouterType::kLsr;

    const auto hw_out = hw_engine.update(a, level, type);
    const auto sw_out = golden.update(b, level, type);

    ASSERT_EQ(hw_out.discarded, sw_out.discarded)
        << "trial " << trial << ": discard disagreement";
    ASSERT_EQ(hw_out.applied, sw_out.applied) << "trial " << trial;
    ASSERT_EQ(a.stack, b.stack)
        << "trial " << trial << "\n  rtl:    " << a.stack.to_string()
        << "\n  golden: " << b.stack.to_string();
    if (!hw_out.discarded) {
      ASSERT_EQ(hw_out.ttl_after, sw_out.ttl_after) << "trial " << trial;
    }

    // Cycle agreement: the RTL adapter adds 3 cycles per stack-load push
    // and per drain pop around the golden engine's modelled update cost.
    const rtl::u64 transfers = 3 * (depth + b.stack.size());
    ASSERT_EQ(hw_out.hw_cycles, sw_out.hw_cycles + transfers)
        << "trial " << trial << " depth_in=" << depth
        << " depth_out=" << b.stack.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1u, 7u, 42u, 1337u, 2005u, 31415u,
                                           271828u, 999983u));

}  // namespace
}  // namespace empls
