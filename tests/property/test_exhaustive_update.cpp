// Exhaustive differential grid: every combination of operation, stack
// depth, router type, information-base level, TTL regime and table
// state, executed on the RTL modifier and on the shared software
// semantics — with the Table 6 cycle model asserted for each case.
//
// Unlike the randomised differential test, this enumerates the whole
// small behaviour space, so any divergence is pinpointed by its grid
// coordinates.
#include <gtest/gtest.h>

#include <tuple>

#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"
#include "sw/semantics.hpp"

namespace empls {
namespace {

using hw::RouterType;
using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

// Grid axes.
using Case = std::tuple<LabelOp,     // operation stored in the table
                        unsigned,    // initial stack depth 0..3
                        RouterType,  // LER / LSR
                        unsigned,    // TTL regime: 0=healthy, 1=expiring
                        bool>;       // table entry present (hit) or not

class ExhaustiveUpdate : public ::testing::TestWithParam<Case> {};

TEST_P(ExhaustiveUpdate, RtlMatchesSemanticsAndCycleModel) {
  const auto [op, depth, type, ttl_regime, hit] = GetParam();
  const rtl::u8 ttl = ttl_regime == 0 ? 64 : 1;
  const rtl::u32 pid = 0x0A000001;

  // The level the router would select (DESIGN.md §5.6).
  const unsigned level =
      depth == 0 ? 1 : std::min(depth + 1, 3u);
  const rtl::u32 key = depth == 0 ? pid : 40;  // top label is 40

  // --- RTL side ---
  hw::LabelStackModifier m;
  for (unsigned d = 0; d < depth; ++d) {
    // Top entry is label 40 and carries the test TTL; lower entries are
    // healthy.
    const bool top = d + 1 == depth;
    m.user_push(LabelEntry{top ? 40u : 10u + d,
                           static_cast<rtl::u8>(d + 1), false,
                           top ? ttl : rtl::u8{64}});
  }
  if (hit) {
    m.write_pair(level, LabelPair{key, 777, op});
  }
  const auto r = m.update(level, type, pid, /*cos=*/6, /*ttl_in=*/ttl);

  // --- golden side (shared semantics) ---
  mpls::Packet p;
  p.dst = mpls::Ipv4Address{pid};
  p.cos = 6;
  p.ip_ttl = ttl;
  for (unsigned d = 0; d < depth; ++d) {
    const bool top = d + 1 == depth;
    p.stack.push(LabelEntry{top ? 40u : 10u + d,
                            static_cast<rtl::u8>(d + 1), false,
                            top ? ttl : rtl::u8{64}});
  }
  const std::optional<LabelPair> found =
      hit ? std::make_optional(LabelPair{key, 777, op}) : std::nullopt;
  const auto expected = sw::apply_update(p, found, type);

  // Outcomes agree.
  ASSERT_EQ(r.discarded, expected.discarded);
  const auto view = m.stack_view();
  ASSERT_EQ(view, p.stack);
  if (!r.discarded) {
    ASSERT_EQ(r.applied, expected.applied);
  }

  // Cycle model agrees (hit position is 1: the entry is alone).
  rtl::u64 want = 0;
  if (!hit) {
    want = hw::update_miss_cycles(0);
  } else if (r.discarded) {
    want = hw::search_cycles(1) + hw::kVerifyDiscardTailCycles;
  } else {
    switch (op) {
      case LabelOp::kSwap:
        want = hw::update_swap_cycles(1);
        break;
      case LabelOp::kPop:
        want = hw::update_pop_cycles(1);
        break;
      case LabelOp::kPush:
        want = hw::update_push_cycles(1, depth == 0);
        break;
      case LabelOp::kNop:
        want = 0;  // unreachable: NOP always discards
        break;
    }
  }
  ASSERT_EQ(r.cycles, want)
      << "op=" << static_cast<int>(op) << " depth=" << depth
      << " type=" << static_cast<int>(type) << " ttl=" << unsigned(ttl)
      << " hit=" << hit;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveUpdate,
    ::testing::Combine(::testing::Values(LabelOp::kNop, LabelOp::kPush,
                                         LabelOp::kPop, LabelOp::kSwap),
                       ::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(RouterType::kLer, RouterType::kLsr),
                       ::testing::Values(0u, 1u),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param)));
      name += "_d" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) == RouterType::kLer ? "_ler" : "_lsr";
      name += std::get<3>(info.param) != 0 ? "_expiring" : "_healthy";
      name += std::get<4>(info.param) ? "_hit" : "_miss";
      return name;
    });

}  // namespace
}  // namespace empls
