// Property test: packet conservation across randomly generated
// networks.  Every injected packet must be accounted for exactly once:
// delivered, discarded by a router (engine discard, no next hop,
// malformed), dropped by an output queue, or dropped by a downed link.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls {
namespace {

using core::EmbeddedRouter;
using net::NodeId;

class Conservation : public ::testing::TestWithParam<unsigned> {};

TEST_P(Conservation, EveryPacketIsAccountedFor) {
  std::mt19937 rng(GetParam());

  net::QosConfig qos;
  qos.queue_capacity = 4 + rng() % 12;  // small queues: drops do happen
  net::Network net(qos);
  net::ControlPlane cp(net);
  net::FlowStats stats;

  // Random connected topology: 5-8 routers, ring + random chords.
  const unsigned n = 5 + rng() % 4;
  std::vector<NodeId> nodes;
  for (unsigned i = 0; i < n; ++i) {
    core::RouterConfig cfg;
    cfg.type = i < 2 ? hw::RouterType::kLer : hw::RouterType::kLsr;
    std::string name(1, 'R');
    name += std::to_string(i);  // avoids GCC 12's -Wrestrict false positive
    auto r = std::make_unique<EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    nodes.push_back(net.add_node(std::move(r)));
    cp.register_router(nodes.back(), &raw->routing());
  }
  for (unsigned i = 0; i < n; ++i) {
    // Slow links so queues actually back up.
    net.connect(nodes[i], nodes[(i + 1) % n], 2e5 + rng() % 400000,
                (1 + rng() % 3) * 1e-3);
  }
  for (unsigned chord = 0; chord < 2; ++chord) {
    const unsigned a = rng() % n;
    const unsigned b = rng() % n;
    if (a != b) {
      net.connect(nodes[a], nodes[b], 2e5 + rng() % 400000, 1e-3);
    }
  }

  net.set_delivery_handler([&](NodeId, const mpls::Packet& p) {
    stats.on_delivered(p, net.now());
  });

  // A few CSPF LSPs between the two LERs (both directions).
  cp.establish_lsp_cspf(nodes[0], nodes[1],
                        *mpls::Prefix::parse("10.1.0.0/16"));
  cp.establish_lsp_cspf(nodes[1], nodes[0],
                        *mpls::Prefix::parse("10.2.0.0/16"));

  // Traffic: two flows with real load, one to an unroutable prefix.
  net::FlowSpec f1{1, nodes[0], mpls::Ipv4Address{0x01010101},
                   *mpls::Ipv4Address::parse("10.1.0.5"),
                   static_cast<std::uint8_t>(rng() % 8), 400, 0.0, 0.5};
  net::FlowSpec f2{2, nodes[1], mpls::Ipv4Address{0x02020202},
                   *mpls::Ipv4Address::parse("10.2.0.9"),
                   static_cast<std::uint8_t>(rng() % 8), 700, 0.0, 0.5};
  net::FlowSpec f3{3, nodes[0], mpls::Ipv4Address{0x03030303},
                   *mpls::Ipv4Address::parse("192.168.0.1"),  // no LSP
                   0, 100, 0.0, 0.5};
  net::PoissonSource s1(net, f1, &stats, 400.0, rng());
  net::PoissonSource s2(net, f2, &stats, 400.0, rng());
  net::CbrSource s3(net, f3, &stats, 10e-3);
  s1.start();
  s2.start();
  s3.start();

  // Mid-run failure of one random ring link (one direction).
  const unsigned dead = rng() % n;
  net.events().schedule_at(0.25, [&, dead] {
    net.set_link_up(nodes[dead], 0, false);
  });

  net.run();

  // Account for every packet.
  std::uint64_t router_discards = 0;
  std::uint64_t malformed = 0;
  for (const auto id : nodes) {
    const auto& s = net.node_as<EmbeddedRouter>(id).stats();
    router_discards += s.discarded;
    malformed += s.malformed;
  }
  std::uint64_t queue_drops = 0;
  std::uint64_t link_failed = 0;
  for (const auto id : nodes) {
    for (std::size_t port = 0; port < net.node(id).num_ports(); ++port) {
      const auto& link =
          net.link_from(id, static_cast<mpls::InterfaceId>(port));
      queue_drops += link.queue().total_stats().dropped;
      link_failed += link.stats().failed_drops;
    }
  }

  const std::uint64_t accounted = stats.total_delivered() +
                                  router_discards + malformed + queue_drops +
                                  link_failed;
  EXPECT_EQ(stats.total_sent(), accounted)
      << "delivered=" << stats.total_delivered()
      << " discarded=" << router_discards << " malformed=" << malformed
      << " queue_drops=" << queue_drops << " link_failed=" << link_failed;

  // Sanity: the unroutable flow was fully discarded, and something was
  // actually delivered.
  EXPECT_EQ(stats.has_flow(3) ? stats.flow(3).delivered : 0u, 0u);
  EXPECT_GT(stats.total_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace empls
