// Stress property test for the RTL label stack modifier: long random
// sequences over the FULL command set (reset, user push/pop, write
// pair, read pair, search, update) checked step by step against an
// explicit reference model of the architectural state.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "hw/label_stack_modifier.hpp"

namespace empls::hw {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

/// Plain-data mirror of the modifier's architectural state.
struct Reference {
  std::vector<LabelEntry> stack;  // bottom..top
  std::vector<LabelPair> levels[3];

  std::vector<LabelPair>& level(unsigned l) { return levels[l - 1]; }

  void reset() {
    stack.clear();
    for (auto& l : levels) {
      l.clear();
    }
  }

  void user_push(LabelEntry e) {
    if (stack.size() >= 3) {
      return;  // hardware discards the push
    }
    e.bottom = stack.empty();
    stack.push_back(e);
  }

  void user_pop() {
    if (!stack.empty()) {
      stack.pop_back();
    }
  }

  void write_pair(unsigned l, LabelPair p) {
    if (level(l).size() < kLevelDepth) {
      // Mirror the memory widths.
      p.index &= l == 1 ? ~rtl::u32{0} : mpls::kMaxLabel;
      p.new_label &= mpls::kMaxLabel;
      level(l).push_back(p);
    }
  }

  const LabelPair* find(unsigned l, rtl::u32 key) const {
    const rtl::u32 mask = l == 1 ? ~rtl::u32{0} : mpls::kMaxLabel;
    for (const auto& p : levels[l - 1]) {
      if ((p.index & mask) == (key & mask)) {
        return &p;
      }
    }
    return nullptr;
  }

  void check_against(const LabelStackModifier& m, int step) const {
    const auto view = m.stack_view();
    ASSERT_EQ(view.size(), stack.size()) << "step " << step;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      ASSERT_EQ(view.at(view.size() - 1 - i), stack[i])
          << "step " << step << " depth " << i;
    }
    for (unsigned l = 1; l <= 3; ++l) {
      ASSERT_EQ(m.level_count(l), levels[l - 1].size())
          << "step " << step << " level " << l;
    }
  }
};

class HwStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(HwStress, LongRandomCommandSequences) {
  std::mt19937 rng(GetParam());
  LabelStackModifier m;
  Reference ref;

  for (int step = 0; step < 400; ++step) {
    switch (rng() % 12) {
      case 0:  // reset (rare-ish but present)
        if (rng() % 4 == 0) {
          m.do_reset();
          ref.reset();
        }
        break;
      case 1:
      case 2: {
        const LabelEntry e{static_cast<rtl::u32>(1 + rng() % 20),
                           static_cast<rtl::u8>(rng() & 7), false,
                           static_cast<rtl::u8>(2 + rng() % 250)};
        m.user_push(e);
        ref.user_push(e);
        break;
      }
      case 3:
        m.user_pop();
        ref.user_pop();
        break;
      case 4:
      case 5:
      case 6: {
        const unsigned level = 1 + rng() % 3;
        const LabelPair p{static_cast<rtl::u32>(1 + rng() % 20),
                          static_cast<rtl::u32>(100 + rng() % 500),
                          static_cast<LabelOp>(rng() % 4)};
        m.write_pair(level, p);
        ref.write_pair(level, p);
        break;
      }
      case 7: {  // bare search agrees with the reference scan
        const unsigned level = 1 + rng() % 3;
        const rtl::u32 key = 1 + rng() % 25;
        const auto r = m.search(level, key);
        const auto* expect = ref.find(level, key);
        ASSERT_EQ(r.found, expect != nullptr) << "step " << step;
        if (expect != nullptr) {
          ASSERT_EQ(r.label, expect->new_label) << "step " << step;
          ASSERT_EQ(r.operation, static_cast<rtl::u8>(expect->op))
              << "step " << step;
        }
        break;
      }
      case 8: {  // read pair round-trips stored contents
        const unsigned level = 1 + rng() % 3;
        if (!ref.level(level).empty()) {
          const auto addr = static_cast<rtl::u16>(
              rng() % ref.level(level).size());
          const auto r = m.read_pair(level, addr);
          ASSERT_TRUE(r.valid) << "step " << step;
          ASSERT_EQ(r.pair, ref.level(level)[addr]) << "step " << step;
        }
        break;
      }
      default: {  // update-stack flow against reference semantics
        const unsigned level =
            ref.stack.empty()
                ? 1
                : static_cast<unsigned>(
                      std::min<std::size_t>(ref.stack.size() + 1, 3));
        const rtl::u32 pid = 1 + rng() % 20;
        const auto type =
            rng() % 2 ? RouterType::kLer : RouterType::kLsr;
        const auto r = m.update(level, type, pid,
                                static_cast<rtl::u8>(rng() & 7),
                                static_cast<rtl::u8>(2 + rng() % 60));

        // Reference semantics (a compact Figure 9 transcription).
        const rtl::u32 key =
            ref.stack.empty() ? pid : ref.stack.back().label;
        const unsigned search_level = ref.stack.empty() ? 1 : level;
        const auto* pair = ref.find(search_level, key);
        const bool was_empty = ref.stack.empty();
        const rtl::u8 orig_ttl =
            was_empty ? m.inputs().ttl_in : ref.stack.back().ttl;
        bool discard = pair == nullptr || orig_ttl <= 1;
        if (!discard) {
          switch (pair->op) {
            case LabelOp::kNop:
              discard = true;
              break;
            case LabelOp::kPop:
            case LabelOp::kSwap:
              discard = discard || was_empty;
              break;
            case LabelOp::kPush:
              discard = discard || ref.stack.size() >= 3;
              break;
          }
          if (was_empty &&
              (type == RouterType::kLsr || pair->op != LabelOp::kPush)) {
            discard = true;
          }
        }
        ASSERT_EQ(r.discarded, discard) << "step " << step;
        if (discard) {
          ref.stack.clear();
        } else {
          const rtl::u8 ttl = static_cast<rtl::u8>(orig_ttl - 1);
          const rtl::u8 cos =
              was_empty ? m.inputs().cos_in : ref.stack.back().cos;
          switch (pair->op) {
            case LabelOp::kPop:
              ref.stack.pop_back();
              if (!ref.stack.empty()) {
                ref.stack.back().ttl = ttl;
              }
              break;
            case LabelOp::kSwap:
              ref.stack.back() =
                  LabelEntry{pair->new_label, cos,
                             ref.stack.back().bottom, ttl};
              break;
            case LabelOp::kPush:
              if (!was_empty) {
                ref.stack.back().ttl = ttl;
              }
              ref.stack.push_back(LabelEntry{pair->new_label, cos,
                                             ref.stack.empty(), ttl});
              break;
            case LabelOp::kNop:
              break;
          }
        }
        break;
      }
    }
    ref.check_against(m, step);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwStress,
                         ::testing::Values(3u, 17u, 99u, 256u, 4096u,
                                           65537u));

}  // namespace
}  // namespace empls::hw
