// Partitioned-execution differential: under the deterministic merge
// (sync=deterministic), every aggregate the scenario report books —
// per-flow statistics, router and link rows, the per-reason drop
// partition, protection and fault counters, loadgen/attack ledgers —
// must be bit-identical to the unpartitioned (domains=1) golden run,
// across seeded scenarios that include fault campaigns and adversarial
// load.  Free-running mode is checked on an independent-domains
// topology, where it too must reproduce the golden books.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>

#include "core/scenario_runner.hpp"
#include "net/scenario.hpp"

namespace empls::core {
namespace {

ScenarioRunner::Report run_report(const std::string& text) {
  auto result = ScenarioRunner::run_text(text);
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::move(std::get<ScenarioRunner::Report>(result));
}

/// Everything the run *books*, and nothing about how it executed: the
/// simulator counters and the domain lines legitimately differ between
/// a partitioned run and the golden one (separate queues, handoff
/// events), so the full report text cannot be the fingerprint.
std::string books_fingerprint(const ScenarioRunner::Report& r) {
  std::ostringstream out;
  out << r.flows.summary();
  for (const auto& row : r.routers) {
    out << row.name << " rx=" << row.received << " fwd=" << row.forwarded
        << " dlv=" << row.delivered << " disc=" << row.discarded
        << " cyc=" << row.engine_cycles << '\n';
  }
  for (const auto& row : r.links) {
    out << row.from << "->" << row.to << " util=" << row.utilization
        << " tx=" << row.tx_packets << " qdrop=" << row.queue_drops << '\n';
  }
  out << "lsps=" << r.lsps_established << " tun=" << r.tunnels_established
      << " fail=" << r.failures_detected << " reroute=" << r.lsps_rerouted
      << " bkup=" << r.backups_installed << " sw=" << r.protection_switches
      << " rev=" << r.protection_reverts << " corr=" << r.corruptions_injected
      << " resync=" << r.resyncs_repaired << '\n';
  out << "drops:";
  for (const auto d : r.drops) {
    out << ' ' << d;
  }
  out << '\n';
  for (const auto& line : r.oam_results) {
    out << line << '\n';
  }
  if (r.loadgen) {
    out << "loadgen sent=" << r.loadgen->sent
        << " dlv=" << r.loadgen->delivered << " drop=" << r.loadgen->drops
        << " started=" << r.loadgen->flows_started
        << " done=" << r.loadgen->flows_completed
        << " conserved=" << r.loadgen->conserved << '\n';
  }
  for (const auto& a : r.attacks) {
    out << "attack " << a.kind << " inj=" << a.injected
        << " dlv=" << a.delivered << " drop=" << a.drops << '\n';
  }
  out << "guard res=" << r.guard.reserved_drops
      << " spoof=" << r.guard.spoof_drops << " ttl=" << r.guard.ttl_limited
      << " reprog=" << r.guard.reprogram_refusals
      << " dem=" << r.guard.demoted << " shed=" << r.guard.shed
      << " adm=" << r.guard.admitted << '\n';
  return out.str();
}

/// Golden (domains=1) vs partitioned deterministic run of `body`.
void expect_partitioned_books_identical(const std::string& body,
                                        std::size_t domains) {
  const auto golden = run_report(body);
  const auto part = run_report("domains " + std::to_string(domains) +
                               "\nsync deterministic\n" + body);
  ASSERT_EQ(part.domains, domains)
      << "partition downgraded: " << part.domain_note;
  EXPECT_EQ(part.sync_mode, "deterministic");
  EXPECT_EQ(books_fingerprint(part), books_fingerprint(golden));
  EXPECT_GT(part.sim.events_executed, 0u);
}

TEST(DomainDifferential, PlainForwardingOneDomainPerRouter) {
  expect_partitioned_books_identical(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 cos=5 interval=3ms stop=0.25
flow poisson 2 A 10.1.0.6 rate=400 seed=9 stop=0.25
run 0.4
)",
                                     3);
}

TEST(DomainDifferential, FaultCampaignWithAutorepair) {
  expect_partitioned_books_identical(R"(
router A ler
router B lsr
router C lsr
router D ler
link A B 10M 1ms
link B D 10M 1ms
link A C 10M 2ms
link C D 10M 2ms
lsp 10.1.0.0/16 A B D
autorepair 10ms dead=3
flow cbr 1 A 10.1.0.5 interval=4ms stop=0.4
flap 0.08 B D 20ms
crash 0.15 B for=50ms
corrupt 0.25 B salt=3 resync=30ms
ping 0.05 A 10.1.0.5
ping 0.35 A 10.1.0.5
run 0.5
)",
                                     2);
}

TEST(DomainDifferential, ProtectionSwitchingUnderCutAndRestore) {
  expect_partitioned_books_identical(R"(
qos strict capacity=32
router A ler
router B lsr
router C lsr
router D ler
link A B 10M 1ms
link B D 10M 1ms
link B C 10M 1ms
link C D 10M 1ms
lsp 10.1.0.0/16 A B D
protect
flow cbr 1 A 10.1.0.5 cos=6 interval=2ms stop=0.3
fail 0.1 B D
restore 0.2 B D
run 0.4
)",
                                     2);
}

TEST(DomainDifferential, QosCongestionWithRedDrops) {
  expect_partitioned_books_identical(R"(
qos wrr capacity=16 red
router A ler
router B lsr
router C ler
link A B 100M 1ms
link B C 2M 1ms
lsp 10.1.0.0/16 A B C
flow video 1 A 10.1.0.5 cos=4 fps=25 ppf=6 size=1200 stop=0.3
flow poisson 2 A 10.1.0.6 cos=1 rate=900 seed=4 size=600 stop=0.3
run 0.5
)",
                                     3);
}

TEST(DomainDifferential, OverloadCampaignWithGuardAndAttack) {
  expect_partitioned_books_identical(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
guard * ttl=500 reprogram=100 demote=0.4 shed=0.8
loadgen poisson A 10.1.0.0 rate=4k flows=128 seed=7 stop=0.2
attack spoof 0.05 A rate=2k for=100ms seed=3
run 0.3
)",
                                     2);
}

TEST(DomainDifferential, FreeRunningIndependentLinesMatchGolden) {
  // Two disjoint forwarding lines: a block partition over the
  // declaration order puts one line per domain, there are no boundary
  // links (infinite lookahead), and free-running execution must still
  // reproduce the golden books exactly — each domain's event sequence
  // is the sequential one.
  const std::string body = R"(
router A ler
router B lsr
router C ler
router D ler
router E lsr
router F ler
link A B 10M 1ms
link B C 10M 1ms
link D E 10M 1ms
link E F 10M 1ms
lsp 10.1.0.0/16 A B C
lsp 10.2.0.0/16 D E F
flow cbr 1 A 10.1.0.5 interval=3ms stop=0.2
flow cbr 2 D 10.2.0.5 interval=5ms stop=0.2
run 0.3
)";
  const auto golden = run_report(body);
  const auto part = run_report("domains 2\nsync free\n" + body);
  ASSERT_EQ(part.domains, 2u) << part.domain_note;
  EXPECT_EQ(part.sync_mode, "free");
  EXPECT_EQ(books_fingerprint(part), books_fingerprint(golden));
  EXPECT_GT(part.domain_windows, 0u);
}

TEST(DomainDifferential, FreeModeDowngradesUnderControlPlaneDirectives) {
  // A fault campaign schedules control-plane work that touches other
  // domains' links; the runner must downgrade free to deterministic —
  // and the books must still match the golden run.
  const std::string body = R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 interval=4ms stop=0.2
flap 0.05 B C 20ms
run 0.3
)";
  const auto golden = run_report(body);
  const auto part = run_report("domains 2\nsync free\n" + body);
  ASSERT_EQ(part.domains, 2u) << part.domain_note;
  EXPECT_EQ(part.sync_mode, "deterministic");
  EXPECT_NE(part.domain_note.find("downgraded"), std::string::npos);
  EXPECT_EQ(books_fingerprint(part), books_fingerprint(golden));
}

}  // namespace
}  // namespace empls::core
