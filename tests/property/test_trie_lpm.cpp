// Trie LPM property suite: the patricia trie's longest-prefix-match
// must agree with a brute-force reference matcher over seeded random
// prefix sets — overlapping siblings, deeply nested chains, default
// routes, duplicate installs — for every probed key.  Plus the
// scenario-level transparency property: an end-to-end run on
// engine=trie produces bit-identical books with cache=off, cache=1024
// and the engine=linear golden model.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/scenario_runner.hpp"
#include "sw/trie_engine.hpp"

namespace empls {
namespace {

using mpls::LabelOp;
using mpls::LabelPair;

rtl::u32 mask_of(unsigned len) {
  return len == 0 ? 0u : ~rtl::u32{0} << (32u - len);
}

/// Brute-force reference: a flat rule list, longest matching prefix
/// wins; among rules for the same exact prefix the first installed
/// wins (the engine's first-binding-wins contract).
struct BruteForceLpm {
  struct Rule {
    rtl::u32 value;
    unsigned len;
    LabelPair pair;
  };
  std::vector<Rule> rules;

  bool insert(unsigned len, const LabelPair& pair) {
    const rtl::u32 value = pair.index & mask_of(len);
    for (const auto& r : rules) {
      if (r.len == len && r.value == value) {
        return false;  // duplicate exact prefix: first binding kept
      }
    }
    rules.push_back(Rule{value, len, pair});
    return true;
  }

  [[nodiscard]] std::optional<LabelPair> match(rtl::u32 key) const {
    const Rule* best = nullptr;
    for (const auto& r : rules) {
      if ((key & mask_of(r.len)) == r.value &&
          (best == nullptr || r.len > best->len)) {
        best = &r;
      }
    }
    if (best == nullptr) {
      return std::nullopt;
    }
    return best->pair;
  }
};

class TrieLpmProperty : public ::testing::TestWithParam<unsigned> {};

// Random prefix sets with the distribution skewed to produce nesting
// and sibling overlap: bases drawn from a handful of /8 stems so
// prefixes pile onto shared paths instead of scattering.
TEST_P(TrieLpmProperty, AgreesWithBruteForceOnRandomPrefixSets) {
  std::mt19937 rng(GetParam());
  sw::TrieEngine trie;
  BruteForceLpm ref;

  ASSERT_TRUE(trie.write_prefix(0, LabelPair{0, 1, LabelOp::kPush}));
  ASSERT_TRUE(ref.insert(0, LabelPair{0, 1, LabelOp::kPush}));

  for (int i = 0; i < 600; ++i) {
    const unsigned stem = rng() % 4;              // 4 crowded /8 stems
    const unsigned len = 1 + rng() % 32;          // 1..32
    const rtl::u32 raw = (stem << 24) | (rng() & 0x00FFFFFF);
    const LabelPair pair{raw, static_cast<rtl::u32>(2 + rng() % 1000),
                         static_cast<LabelOp>(rng() % 4)};
    const bool trie_new = trie.write_prefix(len, pair);
    // write_prefix accepts duplicate exact prefixes (they count as
    // writes, first binding kept), so mirror only the reference's
    // bookkeeping — both must resolve identically either way.
    ref.insert(len, pair);
    ASSERT_TRUE(trie_new);
  }

  // Probe keys correlated with the installed stems (so most probes have
  // several candidate prefixes) plus uncorrelated misses.
  for (int i = 0; i < 20000; ++i) {
    rtl::u32 key;
    if (i % 8 == 7) {
      key = rng();  // mostly lands outside the stems → default route
    } else {
      key = ((rng() % 4) << 24) | (rng() & 0x00FFFFFF);
    }
    const auto got = trie.lookup(1, key);
    const auto want = ref.match(key);
    ASSERT_EQ(got.has_value(), want.has_value()) << "key " << key;
    if (got.has_value()) {
      ASSERT_EQ(got->new_label, want->new_label) << "key " << key;
      ASSERT_EQ(got->op, want->op) << "key " << key;
    }
  }
}

// Pathological nesting: a full 32-deep chain of prefixes along one key,
// plus the off-path sibling at every depth.  Every probe must resolve
// to the deepest covering prefix.
TEST_P(TrieLpmProperty, NestedChainResolvesDeepestCover) {
  std::mt19937 rng(GetParam() * 977 + 5);
  sw::TrieEngine trie;
  BruteForceLpm ref;
  const rtl::u32 spine = rng();
  for (unsigned len = 0; len <= 32; ++len) {
    const LabelPair pair{spine, 100 + len, LabelOp::kSwap};
    ASSERT_TRUE(trie.write_prefix(len, pair));
    ASSERT_TRUE(ref.insert(len, pair));
  }
  for (unsigned flip = 0; flip < 32; ++flip) {
    const rtl::u32 key = spine ^ (1u << flip);
    const auto got = trie.lookup(1, key);
    const auto want = ref.match(key);
    ASSERT_TRUE(got.has_value() && want.has_value());
    ASSERT_EQ(got->new_label, want->new_label)
        << "bit " << flip << " off the spine";
  }
  const auto exact = trie.lookup(1, spine);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->new_label, 132u) << "the /32 wins on the spine itself";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLpmProperty,
                         ::testing::Values(1u, 42u, 31415u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---- scenario-level transparency ----

std::string line_scenario(const std::string& engine,
                          const std::string& cache) {
  std::string s;
  for (int i = 0; i < 6; ++i) {
    s += "router R" + std::to_string(i) + (i == 0 || i == 5 ? " ler" : " lsr");
    s += " engine=" + engine;
    if (!cache.empty()) {
      s += " cache=" + cache;
    }
    s += "\n";
  }
  for (int i = 0; i + 1 < 6; ++i) {
    s += "link R" + std::to_string(i) + " R" + std::to_string(i + 1) +
         " 100M 1ms\n";
  }
  s += "lsp 10.1.0.0/16 R0 R1 R2 R3 R4 R5\n";
  s += "flow cbr 1 R0 10.1.0.5 size=200 interval=1ms stop=0.3\n";
  s += "run 0.5\n";
  return s;
}

core::ScenarioRunner::Report run_line(const std::string& engine,
                                      const std::string& cache) {
  auto result = core::ScenarioRunner::run_text(line_scenario(engine, cache));
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<core::ScenarioRunner::Report>(std::move(result));
}

bool same_books(const core::ScenarioRunner::Report& a,
                const core::ScenarioRunner::Report& b) {
  const auto& fa = a.flows.flow(1);
  const auto& fb = b.flows.flow(1);
  if (fa.sent != fb.sent || fa.delivered != fb.delivered ||
      fa.latency.mean() != fb.latency.mean() || fa.jitter != fb.jitter) {
    return false;
  }
  if (a.routers.size() != b.routers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    const auto& ra = a.routers[i];
    const auto& rb = b.routers[i];
    if (ra.received != rb.received || ra.forwarded != rb.forwarded ||
        ra.delivered != rb.delivered || ra.discarded != rb.discarded ||
        ra.engine_cycles != rb.engine_cycles) {
      return false;
    }
  }
  return true;
}

// engine=trie end to end: identical books with the flow cache off, the
// flow cache on, and the LinearEngine golden model — the Table 6 cycle
// parity holds through the whole simulator, not just unit lookups.
TEST(TrieScenario, BooksIdenticalAcrossCacheAndGolden) {
  const auto uncached = run_line("trie", "off");
  const auto cached = run_line("trie", "1024");
  const auto golden = run_line("linear", "off");
  EXPECT_GT(uncached.flows.flow(1).delivered, 250u);
  EXPECT_TRUE(same_books(uncached, cached)) << "flow cache changed books";
  EXPECT_TRUE(same_books(uncached, golden)) << "trie diverged from linear";
}

}  // namespace
}  // namespace empls
