// Robustness property: the scenario parser never crashes and never
// accepts garbage silently — every input either parses cleanly or
// yields a ScenarioError with a valid line number.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "net/scenario.hpp"

namespace empls::net {
namespace {

class ScenarioFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScenarioFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789 .=/#-\n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const auto len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      text += charset[rng() % charset.size()];
    }
    const auto result = Scenario::parse(text);
    if (const auto* err = std::get_if<ScenarioError>(&result)) {
      EXPECT_GE(err->line, 1);
      EXPECT_FALSE(err->message.empty());
    }
  }
}

TEST_P(ScenarioFuzz, MutatedValidScenariosNeverCrash) {
  const std::string base = R"(
qos strict capacity=16
router A ler engine=hw
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C bw=1M
flow cbr 1 A 10.1.0.5 cos=5 interval=10ms stop=0.5
fail 0.2 A B
run 1
)";
  std::mt19937 rng(GetParam() * 7919);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    // Random single-character mutations.
    const auto mutations = 1 + rng() % 6;
    for (unsigned m = 0; m < mutations; ++m) {
      const auto pos = rng() % text.size();
      switch (rng() % 3) {
        case 0:
          text[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          text.erase(pos, 1);
          break;
        case 2:
          text.insert(pos, 1, static_cast<char>('!' + rng() % 90));
          break;
      }
    }
    const auto result = Scenario::parse(text);
    if (const auto* err = std::get_if<ScenarioError>(&result)) {
      EXPECT_GE(err->line, 1);
    } else {
      // Accepted: the structure must at least be self-consistent.
      const auto& s = std::get<Scenario>(result);
      for (const auto& link : s.links) {
        EXPECT_TRUE(s.has_router(link.a));
        EXPECT_TRUE(s.has_router(link.b));
      }
      for (const auto& lsp : s.lsps) {
        EXPECT_GE(lsp.path.size(), 2u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace empls::net
