// Robustness property: the scenario parser never crashes and never
// accepts garbage silently — every input either parses cleanly or
// yields a ScenarioError with a valid line number.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "net/scenario.hpp"

namespace empls::net {
namespace {

class ScenarioFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScenarioFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789 .=/#-\n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const auto len = rng() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      text += charset[rng() % charset.size()];
    }
    const auto result = Scenario::parse(text);
    if (const auto* err = std::get_if<ScenarioError>(&result)) {
      EXPECT_GE(err->line, 1);
      EXPECT_FALSE(err->message.empty());
    }
  }
}

TEST_P(ScenarioFuzz, MutatedValidScenariosNeverCrash) {
  // Exercises every directive family: the fault-injection verbs
  // (protect / flap / crash / corrupt) and the sharded engine syntax
  // mutate just like the originals.
  const std::string base = R"(
qos strict capacity=16
domains 2
sync deterministic
router A ler engine=hw
router B lsr engine=sharded:4 batch=8
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C bw=1M
protect bw=1M
flow cbr 1 A 10.1.0.5 cos=5 interval=10ms stop=0.5
fail 0.2 A B
flap 0.25 B C 30ms
crash 0.3 B for=50ms
corrupt 0.35 B salt=9 resync=20ms
guard * ttl=500 reprogram=100 demote=0.4 shed=0.8
loadgen mmpp A 10.1.0.0 rate=5k flows=256 alpha=1.5 stop=0.5
attack spoof 0.1 A rate=2k for=100ms seed=3
attack=exhaust 0.2 A dst=10.1.0.1
sample 50ms
timeline out.csv
profile on
expect empls_delivered_total > 0
expect empls_loadgen_latency_ns.p999 <= 2e6 during 0.2s..0.8s
expect empls_drops_total{reason="policer"} == 0
run 1
)";
  std::mt19937 rng(GetParam() * 7919);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    // Random single-character mutations.
    const auto mutations = 1 + rng() % 6;
    for (unsigned m = 0; m < mutations; ++m) {
      const auto pos = rng() % text.size();
      switch (rng() % 3) {
        case 0:
          text[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          text.erase(pos, 1);
          break;
        case 2:
          text.insert(pos, 1, static_cast<char>('!' + rng() % 90));
          break;
      }
    }
    const auto result = Scenario::parse(text);
    if (const auto* err = std::get_if<ScenarioError>(&result)) {
      EXPECT_GE(err->line, 1);
    } else {
      // Accepted: the structure must at least be self-consistent.
      const auto& s = std::get<Scenario>(result);
      for (const auto& link : s.links) {
        EXPECT_TRUE(s.has_router(link.a));
        EXPECT_TRUE(s.has_router(link.b));
      }
      for (const auto& lsp : s.lsps) {
        EXPECT_GE(lsp.path.size(), 2u);
      }
    }
  }
}

TEST_P(ScenarioFuzz, DirectiveSoupNeverCrashes) {
  // Random programs assembled from plausible directive fragments — far
  // likelier than byte noise to reach deep parser paths (option maps,
  // the sharded:<N> suffix, fault parameters) with wrong arity, wrong
  // types and out-of-range values.
  const std::vector<std::string> verbs = {
      "qos",     "router", "link",    "lsp",      "lsp-cspf", "tunnel",
      "flow",    "fail",   "restore", "flap",     "crash",    "corrupt",
      "protect", "police", "ping",    "traceroute", "autorepair", "run",
      "loadgen", "attack", "attack=spoof", "attack=exhaust",
      "attack=melt", "guard", "domains", "sync", "domains=4", "sync=free",
      "sample",  "sample=100ms", "timeline", "timeline=off", "profile",
      "expect"};
  const std::vector<std::string> words = {
      "A",        "B",          "C",       "ler",        "lsr",
      "strict",   "cbr",        "10M",     "1ms",        "0.2",
      "7",        "10.1.0.0/16", "10.1.0.5", "engine=hw", "engine=sharded:4",
      "engine=sharded:0", "engine=sharded:65", "engine=sharded:x",
      "batch=8",  "batch=0",    "batch=-1", "cos=5",      "bw=1M",
      "for=50ms", "salt=9",     "resync=20ms", "down-for", "seed=1",
      "=",        "sharded:",   "1e99",    "-3",
      "auto",     "deterministic", "free", "0",  "257",     "2.5",
      "poisson",  "mmpp",       "spoof",   "ttl_flood",  "reserved",
      "exhaust",  "*",          "rate=5k", "rate=0",     "burst-rate=20k",
      "flows=256", "flows=0",   "alpha=1.5", "alpha=-1", "minpkts=4",
      "sojourn=50ms", "ttl=500", "reprogram=100", "demote=0.4",
      "shed=2",   "maxcos=9",   "reserved=on", "spoof=off", "dst=10.1.0.1",
      "empls_delivered_total", "empls_lat.p999", "<=", ">", "==", "!=",
      "during",   "0.2s..0.8s", "0.8s..0.2s", "during=x", "..",
      "1e6",      "off",        "on",      "out.csv",
      R"(empls_drops_total{reason="ttl"})"};
  std::mt19937 rng(GetParam() * 104729);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const auto lines = 1 + rng() % 12;
    for (unsigned l = 0; l < lines; ++l) {
      text += verbs[rng() % verbs.size()];
      const auto argc = rng() % 6;
      for (unsigned a = 0; a < argc; ++a) {
        text += ' ';
        text += words[rng() % words.size()];
      }
      text += '\n';
    }
    const auto result = Scenario::parse(text);
    if (const auto* err = std::get_if<ScenarioError>(&result)) {
      EXPECT_GE(err->line, 1);
      EXPECT_FALSE(err->message.empty());
    } else {
      // Accepted: sharded engines must have a validated shard count and
      // batch sizes must be sane (the parser's contract with the
      // runner, which feeds them unchecked into ShardedEngine).
      const auto& s = std::get<Scenario>(result);
      for (const auto& r : s.routers) {
        if (r.engine.rfind("sharded:", 0) == 0) {
          const int n = std::stoi(r.engine.substr(8));
          EXPECT_GE(n, 1);
          EXPECT_LE(n, 64);
        }
        EXPECT_LE(r.batch, 4096u);
      }
      // Same contract for the overload directives: the runner sizes
      // flat arrays and token buckets straight from these fields.
      for (const auto& g : s.loadgens) {
        EXPECT_GE(g.flows, 1u);
        EXPECT_LE(g.flows, 1u << 24);
        EXPECT_GT(g.alpha, 0.0);
        EXPECT_GT(g.rate_pps, 0.0);
      }
      for (const auto& a : s.attacks) {
        EXPECT_GT(a.rate_pps, 0.0);
        EXPECT_GT(a.duration, 0.0);
      }
      for (const auto& g : s.guards) {
        EXPECT_TRUE(g.config.enabled);
        EXPECT_LE(g.config.demote_occupancy, 1.0);
        EXPECT_LE(g.config.shed_occupancy, 1.0);
        EXPECT_LE(g.config.demote_cos_max, 7);
      }
      // Partitioning contract: the runner hands `domains` to
      // Network::partition unchecked, so an accepted value is either
      // the auto sentinel (0) or inside the validated [1, 256] range.
      EXPECT_LE(s.domains, 256u);
      // Telemetry contract: the runner schedules sample ticks at the
      // parsed cadence and replays windowed expects against timeline
      // rows, so an accepted scenario must have a positive interval
      // behind any timeline output or windowed assertion, and every
      // window must be well-ordered.
      if (s.sample_interval) {
        EXPECT_GT(*s.sample_interval, 0.0);
      }
      if (!s.timeline_path.empty()) {
        EXPECT_TRUE(s.sample_interval.has_value());
      }
      for (const auto& e : s.expects) {
        EXPECT_FALSE(e.metric.empty());
        EXPECT_GE(e.line, 1);
        if (e.windowed) {
          EXPECT_LE(e.t0, e.t1);
          EXPECT_TRUE(s.sample_interval.has_value());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace empls::net
