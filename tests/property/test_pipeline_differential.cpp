// Differential property test at the full-pipeline level: random
// programs and packets through the RTL packet pipeline (ingress DMA →
// modifier → egress DMA) against the golden software semantics —
// packets, payloads, headers and stacks must survive bit-for-bit.
#include <gtest/gtest.h>

#include <random>

#include "sw/linear_engine.hpp"
#include "sw/pipeline_engine.hpp"

namespace empls {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

class PipelineDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineDifferential, RandomTrafficAgrees) {
  std::mt19937 rng(GetParam());
  const auto type =
      rng() % 2 ? hw::RouterType::kLer : hw::RouterType::kLsr;
  sw::PipelineEngine pipeline(type);
  sw::LinearEngine golden;

  for (int i = 0; i < 25; ++i) {
    const unsigned level = 1 + rng() % 3;
    const rtl::u32 key = static_cast<rtl::u32>(
        level == 1 ? 0x0A000000 + rng() % 8 : 1 + rng() % 8);
    const LabelPair pair{key, static_cast<rtl::u32>(100 + rng() % 400),
                         static_cast<LabelOp>(rng() % 4)};
    ASSERT_EQ(pipeline.write_pair(level, pair),
              golden.write_pair(level, pair));
  }

  for (int trial = 0; trial < 40; ++trial) {
    mpls::Packet a;
    a.l2 = static_cast<mpls::L2Type>(rng() % 3);
    a.src = mpls::Ipv4Address{static_cast<rtl::u32>(rng())};
    a.dst = mpls::Ipv4Address{static_cast<rtl::u32>(0x0A000000 + rng() % 8)};
    a.cos = static_cast<rtl::u8>(rng() & 7);
    a.ip_ttl = static_cast<rtl::u8>(rng() % 5 == 0 ? rng() % 3 : 64);
    const auto depth = rng() % 4;
    for (rtl::u32 d = 0; d < depth; ++d) {
      a.stack.push(LabelEntry{static_cast<rtl::u32>(1 + rng() % 8),
                              static_cast<rtl::u8>(rng() & 7), false,
                              static_cast<rtl::u8>(2 + rng() % 100)});
    }
    a.payload.resize(rng() % 200);
    for (auto& byte : a.payload) {
      byte = static_cast<rtl::u8>(rng());
    }
    mpls::Packet b = a;
    const std::size_t wire_in = a.wire_size();
    const unsigned level =
        a.stack.empty()
            ? 1
            : static_cast<unsigned>(
                  std::min<std::size_t>(a.stack.size() + 1, 3));

    const auto oa = pipeline.update(a, level, type);
    const auto ob = golden.update(b, level, type);

    // The pipeline includes the egress TTL write-back (hardware owns
    // the whole packet); mirror it on the golden side, where that step
    // belongs to the router's egress stage.
    if (!ob.discarded && b.stack.empty()) {
      b.ip_ttl = ob.ttl_after;
    }

    ASSERT_EQ(oa.discarded, ob.discarded) << "trial " << trial;
    ASSERT_EQ(oa.reason, ob.reason) << "trial " << trial;
    ASSERT_EQ(a.stack, b.stack) << "trial " << trial;
    if (!oa.discarded) {
      ASSERT_EQ(oa.applied, ob.applied) << "trial " << trial;
      // The pipeline re-generated the packet from its wire image: every
      // non-stack field must have survived the DMA round trip.
      ASSERT_EQ(a.payload, b.payload) << "trial " << trial;
      ASSERT_EQ(a.src, b.src) << "trial " << trial;
      ASSERT_EQ(a.dst, b.dst) << "trial " << trial;
      ASSERT_EQ(a.l2, b.l2) << "trial " << trial;
      ASSERT_EQ(a.ip_ttl, b.ip_ttl) << "trial " << trial;
      ASSERT_EQ(a.cos, b.cos) << "trial " << trial;
      // And the pipeline's cycle count covers at least the ingress DMA.
      ASSERT_GE(oa.hw_cycles, (wire_in + 3) / 4) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferential,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace empls
