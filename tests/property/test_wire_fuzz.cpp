// Robustness property for the wire parsers: random and mutated byte
// strings must never crash Packet::parse / LabelStack::parse, and
// anything accepted must re-serialise to a consistent wire image
// (parse ∘ serialize = identity on the accepted set).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mpls/packet.hpp"

namespace empls::mpls {
namespace {

class WireFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(WireFuzz, RandomBytesNeverCrashAndAcceptedInputsRoundTrip) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 96);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng());
    }
    const auto packet = Packet::parse(bytes);
    if (packet) {
      // Accepted: the canonical re-serialisation must parse back to an
      // equivalent packet (the parser normalises S bits, so compare the
      // parsed forms, not the raw bytes).
      const auto again = Packet::parse(packet->serialize());
      ASSERT_TRUE(again.has_value()) << "trial " << trial;
      EXPECT_EQ(again->stack, packet->stack);
      EXPECT_EQ(again->payload, packet->payload);
      EXPECT_EQ(again->src, packet->src);
      EXPECT_EQ(again->dst, packet->dst);
      EXPECT_EQ(again->cos, packet->cos);
      EXPECT_EQ(again->ip_ttl, packet->ip_ttl);
    }
    // The stack parser must be equally robust on its own.
    const auto stack = LabelStack::parse(bytes);
    if (stack) {
      EXPECT_TRUE(stack->s_bit_invariant_holds()) << "trial " << trial;
      EXPECT_LE(stack->size(), LabelStack::kHardwareDepth);
    }
  }
}

TEST_P(WireFuzz, MutatedValidPacketsNeverCrash) {
  std::mt19937 rng(GetParam() * 31337);
  Packet base;
  base.src = Ipv4Address::from_octets(192, 168, 0, 1);
  base.dst = Ipv4Address::from_octets(10, 0, 0, 1);
  base.cos = 5;
  base.stack.push(LabelEntry{100, 2, false, 64});
  base.stack.push(LabelEntry{200, 3, false, 63});
  base.payload.assign(40, 0x5A);

  for (int trial = 0; trial < 3000; ++trial) {
    auto bytes = base.serialize();
    const auto mutations = 1 + rng() % 5;
    for (unsigned m = 0; m < mutations; ++m) {
      switch (rng() % 3) {
        case 0:
          bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
          break;
        case 1:
          bytes.erase(bytes.begin() +
                      static_cast<long>(rng() % bytes.size()));
          break;
        case 2:
          bytes.insert(bytes.begin() +
                           static_cast<long>(rng() % (bytes.size() + 1)),
                       static_cast<std::uint8_t>(rng()));
          break;
      }
      if (bytes.empty()) {
        bytes.push_back(0);
      }
    }
    const auto packet = Packet::parse(bytes);
    if (packet) {
      // Whatever survived must still satisfy the structural invariants.
      EXPECT_TRUE(packet->stack.s_bit_invariant_holds()) << trial;
      EXPECT_LE(packet->stack.size(), LabelStack::kHardwareDepth) << trial;
      EXPECT_EQ(packet->wire_size(), bytes.size()) << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace empls::mpls
