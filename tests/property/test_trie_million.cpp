// Million-entry FIB churn (ctest labels: slow, fib, nightly): program a
// seeded 1M-binding base into the trie engine, then run randomized
// reprogram churn — full clear + re-install cycles with salted labels,
// plus injected corruptions — verifying lookups against a closed-form
// expectation the whole way, the ≤64 bytes/entry budget, and that the
// slabs stop growing after the first full program (the
// zero-steady-state-allocation claim at scale).
#include <gtest/gtest.h>

#include <cstddef>

#include "sw/trie_engine.hpp"

namespace empls::sw {
namespace {

using mpls::LabelOp;
using mpls::LabelPair;

// 1M bindings: 600k level-1 host routes + 200k each at levels 2/3 (the
// 20-bit label space caps a level at ~1M distinct keys, so scale lives
// mostly in level 1, as it does in a real LSR).
constexpr std::size_t kLevel1 = 600000;
constexpr std::size_t kLevel23 = 200000;

// Bijective key generators (odd multipliers), so every index maps to a
// distinct key and expectations stay closed-form.
rtl::u32 l1_key(std::size_t i) {
  return static_cast<rtl::u32>(i) * 2654435761u;
}
rtl::u32 l23_key(std::size_t i) {
  return (static_cast<rtl::u32>(i) * 40503u) & 0xFFFFFu;
}
rtl::u32 label_of(std::size_t i, rtl::u32 salt) {
  return (static_cast<rtl::u32>(i) ^ salt) & 0xFFFFFu;
}

void program(TrieEngine& e, rtl::u32 salt) {
  for (std::size_t i = 0; i < kLevel1; ++i) {
    ASSERT_TRUE(
        e.write_pair(1, LabelPair{l1_key(i), label_of(i, salt),
                                  LabelOp::kPush}))
        << "level 1 i=" << i;
  }
  for (std::size_t i = 0; i < kLevel23; ++i) {
    ASSERT_TRUE(e.write_pair(2, LabelPair{l23_key(i), label_of(i, salt),
                                          LabelOp::kSwap}));
    ASSERT_TRUE(e.write_pair(3, LabelPair{l23_key(i), label_of(i, salt),
                                          LabelOp::kPop}));
  }
}

void verify_sample(TrieEngine& e, rtl::u32 salt) {
  for (std::size_t i = 0; i < kLevel1; i += 97) {
    const auto hit = e.lookup(1, l1_key(i));
    ASSERT_TRUE(hit.has_value()) << "level 1 i=" << i;
    ASSERT_EQ(hit->new_label, label_of(i, salt)) << "level 1 i=" << i;
    ASSERT_LT(e.last_entries_examined(), 48u)
        << "structural cost stays bounded by trie depth at 600k entries";
  }
  for (std::size_t i = 0; i < kLevel23; i += 97) {
    const auto h2 = e.lookup(2, l23_key(i));
    ASSERT_TRUE(h2.has_value()) << "level 2 i=" << i;
    ASSERT_EQ(h2->new_label, label_of(i, salt));
    ASSERT_LT(e.last_entries_examined(), 64u) << "probe chain blew up";
    const auto h3 = e.lookup(3, l23_key(i));
    ASSERT_TRUE(h3.has_value()) << "level 3 i=" << i;
    ASSERT_EQ(h3->new_label, label_of(i, salt));
  }
}

TEST(TrieMillion, SeededReprogramChurnAtOneMillionEntries) {
  TrieEngine e(2u << 20);
  e.reserve(1, kLevel1);
  e.reserve(2, kLevel23);
  e.reserve(3, kLevel23);

  program(e, /*salt=*/0x1A2B3);
  const auto grown = e.memory_stats();
  ASSERT_EQ(grown.entries, kLevel1 + 2 * kLevel23);
  EXPECT_LE(grown.bytes_per_entry(), 64.0)
      << grown.bytes << " bytes over " << grown.entries << " entries";
  verify_sample(e, 0x1A2B3);

  // Misses at scale: the key generators are bijective, so any index
  // past the programmed range maps to a key that is not in the base.
  EXPECT_FALSE(e.lookup(1, l1_key(kLevel1 + 123)).has_value());
  EXPECT_FALSE(e.lookup(2, l23_key(kLevel23 + 123)).has_value());
  EXPECT_FALSE(e.lookup(3, l23_key(kLevel23 + 123)).has_value());

  const auto epoch_before = e.epoch();
  for (rtl::u32 round = 1; round <= 3; ++round) {
    const rtl::u32 salt = 0x1A2B3 + round * 0x1111;
    e.clear();
    EXPECT_EQ(e.level_size(1), 0u);
    program(e, salt);
    verify_sample(e, salt);
    EXPECT_EQ(e.memory_stats().bytes, grown.bytes)
        << "churn round " << round << " grew the slabs";

    // Randomized corruption bites mid-round and is visible exactly at
    // the corrupted binding.
    const std::size_t victim = (round * 131071u) % kLevel1;
    ASSERT_TRUE(e.corrupt_entry(1, l1_key(victim), 0xBAD));
    const auto hit = e.lookup(1, l1_key(victim));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->new_label, 0xBADu);
    const std::size_t clean = (victim + 1) % kLevel1;
    EXPECT_EQ(e.lookup(1, l1_key(clean))->new_label, label_of(clean, salt));
  }
  EXPECT_GT(e.epoch(), epoch_before)
      << "every churn mutation advanced the epoch";
}

}  // namespace
}  // namespace empls::sw
