// Cross-engine differential fuzz: every software lookup engine must
// agree with the LinearEngine golden model on arbitrary random programs
// and packet streams — same discard decisions, same applied operations,
// same TTLs, same resulting stacks — with the information base mutated
// mid-stream (write_pair, corrupt_entry, clear + reprogram) between
// packet bursts.  Engines that mirror the hardware's linear-search cost
// model (simd, and the sharded plane whose replicas run it) must also
// charge bit-identical Table 6 cycles; hash and CAM intentionally cost
// differently, so only their semantics are compared.
//
// The sharded parameterization runs the batches through real worker
// threads, which is why the TSan CI job includes this suite.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/semantics.hpp"
#include "sw/sharded_engine.hpp"
#include "sw/simd_engine.hpp"
#include "sw/trie_engine.hpp"

namespace empls {
namespace {

using mpls::LabelEntry;
using mpls::LabelOp;
using mpls::LabelPair;

std::unique_ptr<sw::LabelEngine> make_engine(const std::string& kind) {
  if (kind == "simd") {
    return std::make_unique<sw::SimdEngine>();
  }
  if (kind == "hash") {
    return std::make_unique<sw::HashEngine>();
  }
  if (kind == "cam") {
    return std::make_unique<sw::CamEngine>();
  }
  if (kind == "trie") {
    return std::make_unique<sw::TrieEngine>();
  }
  if (kind == "sharded2") {
    return std::make_unique<sw::ShardedEngine>(2);
  }
  if (kind == "sharded2trie") {
    return std::make_unique<sw::ShardedEngine>(
        2, [] { return std::make_unique<sw::TrieEngine>(); });
  }
  return nullptr;
}

/// Whether `kind` models the same linear-search hardware as the golden
/// engine (then cycles must match bit for bit, not just semantics).
/// The trie engine qualifies: below the paper's 1024-pair boundary its
/// cost model charges the exact linear-equivalent position.
bool cycles_comparable(const std::string& kind) {
  return kind == "simd" || kind == "sharded2" || kind == "trie" ||
         kind == "sharded2trie";
}

// Small key spaces force duplicates, hits, misses and corruption
// collisions.
mpls::Packet random_packet(std::mt19937& rng) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address{static_cast<rtl::u32>(0xC0A80000 + rng() % 12)};
  p.cos = static_cast<rtl::u8>(rng() & 7);
  p.ip_ttl = static_cast<rtl::u8>(rng() % 4 == 0 ? rng() % 3 : rng());
  const auto depth = rng() % 4;
  for (rtl::u32 d = 0; d < depth; ++d) {
    p.stack.push(LabelEntry{static_cast<rtl::u32>(1 + rng() % 12),
                            static_cast<rtl::u8>(rng() & 7), false,
                            static_cast<rtl::u8>(rng() % 4 == 0 ? rng() % 3
                                                                : rng())});
  }
  return p;
}

LabelPair random_pair(std::mt19937& rng, unsigned level) {
  const rtl::u32 key =
      level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
  return LabelPair{key, static_cast<rtl::u32>(100 + rng() % 900),
                   static_cast<LabelOp>(rng() % 4)};
}

class EngineDifferential
    : public ::testing::TestWithParam<std::tuple<unsigned, std::string>> {
 protected:
  [[nodiscard]] unsigned seed() const { return std::get<0>(GetParam()); }
  [[nodiscard]] std::string kind() const { return std::get<1>(GetParam()); }
};

TEST_P(EngineDifferential, StreamsAgreeWithGoldenUnderMidStreamMutation) {
  std::mt19937 rng(seed());
  auto engine = make_engine(kind());
  ASSERT_NE(engine, nullptr);
  sw::LinearEngine golden;
  const bool cycles = cycles_comparable(kind());

  auto program = [&](int pairs) {
    for (int i = 0; i < pairs; ++i) {
      const unsigned level = 1 + rng() % 3;
      const auto pair = random_pair(rng, level);
      ASSERT_TRUE(engine->write_pair(level, pair));
      ASSERT_TRUE(golden.write_pair(level, pair));
    }
  };
  program(30);

  for (int round = 0; round < 8; ++round) {
    const auto type =
        rng() % 2 == 0 ? hw::RouterType::kLer : hw::RouterType::kLsr;
    for (int trial = 0; trial < 40; ++trial) {
      mpls::Packet a = random_packet(rng);
      mpls::Packet b = a;
      const auto got = engine->update(a, sw::classify_level(a), type);
      const auto want = golden.update(b, sw::classify_level(b), type);
      ASSERT_EQ(got.discarded, want.discarded)
          << kind() << " round " << round << " trial " << trial;
      ASSERT_EQ(got.reason, want.reason)
          << kind() << " round " << round << " trial " << trial;
      ASSERT_EQ(got.applied, want.applied)
          << kind() << " round " << round << " trial " << trial;
      ASSERT_EQ(got.ttl_after, want.ttl_after)
          << kind() << " round " << round << " trial " << trial;
      if (cycles) {
        ASSERT_EQ(got.hw_cycles, want.hw_cycles)
            << kind() << " round " << round << " trial " << trial;
      }
      ASSERT_EQ(a.stack, b.stack)
          << kind() << " round " << round << " trial " << trial
          << "\n  engine: " << a.stack.to_string()
          << "\n  golden: " << b.stack.to_string();
    }

    // Mid-stream mutation: fresh bindings every round, an injected
    // corruption on odd rounds, a full clear + identical reprogram on
    // every third.  The engines must keep agreeing afterwards.
    program(4);
    if (round % 2 == 1) {
      const unsigned level = 1 + rng() % 3;
      const rtl::u32 key =
          level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
      const rtl::u32 bad = 0x80000 + rng() % 256;
      ASSERT_EQ(engine->corrupt_entry(level, key, bad),
                golden.corrupt_entry(level, key, bad))
          << kind() << ": corruption found a binding in one engine only";
    }
    if (round % 3 == 2) {
      engine->clear();
      golden.clear();
      program(20);
    }
    for (unsigned level = 1; level <= 3; ++level) {
      const rtl::u32 key =
          level == 1 ? 0xC0A80000 + rng() % 12 : 1 + rng() % 12;
      ASSERT_EQ(engine->lookup(level, key), golden.lookup(level, key))
          << kind() << " level " << level;
    }
  }
}

TEST_P(EngineDifferential, BatchesAgreeWithGoldenSequential) {
  std::mt19937 rng(seed() * 31 + 7);
  auto engine = make_engine(kind());
  ASSERT_NE(engine, nullptr);
  sw::LinearEngine golden;
  const bool cycles = cycles_comparable(kind());

  for (int i = 0; i < 30; ++i) {
    const unsigned level = 1 + rng() % 3;
    const auto pair = random_pair(rng, level);
    ASSERT_TRUE(engine->write_pair(level, pair));
    ASSERT_TRUE(golden.write_pair(level, pair));
  }

  for (int round = 0; round < 4; ++round) {
    std::vector<mpls::Packet> a(48);
    std::vector<mpls::Packet> b(48);
    std::vector<mpls::Packet*> ptrs(48);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = random_packet(rng);
      b[i] = a[i];
      ptrs[i] = &a[i];
    }
    const auto type =
        rng() % 2 == 0 ? hw::RouterType::kLer : hw::RouterType::kLsr;
    const auto outcomes = engine->update_batch(ptrs, type);
    ASSERT_EQ(outcomes.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto want = golden.update(b[i], sw::classify_level(b[i]), type);
      ASSERT_EQ(outcomes[i].discarded, want.discarded)
          << kind() << " round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].applied, want.applied)
          << kind() << " round " << round << " packet " << i;
      ASSERT_EQ(outcomes[i].ttl_after, want.ttl_after)
          << kind() << " round " << round << " packet " << i;
      if (cycles) {
        ASSERT_EQ(outcomes[i].hw_cycles, want.hw_cycles)
            << kind() << " round " << round << " packet " << i;
      }
      ASSERT_EQ(a[i].stack, b[i].stack)
          << kind() << " round " << round << " packet " << i;
    }
    // Reprogram between batches (the sharded plane quiesces here).
    const unsigned level = 1 + rng() % 3;
    const auto pair = random_pair(rng, level);
    ASSERT_TRUE(engine->write_pair(level, pair));
    ASSERT_TRUE(golden.write_pair(level, pair));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByEngine, EngineDifferential,
    ::testing::Combine(::testing::Values(1u, 42u, 31415u),
                       ::testing::Values(std::string("simd"),
                                         std::string("hash"),
                                         std::string("cam"),
                                         std::string("trie"),
                                         std::string("sharded2"),
                                         std::string("sharded2trie"))),
    [](const auto& info) {
      return std::get<1>(info.param) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace empls
