// Unit tests for the waveform recorder: sampling, queries, VCD output
// and the ASCII renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {
namespace {

class Ticker : public SimObject {
 public:
  Ticker() : q_(8) {}
  [[nodiscard]] u64 q() const { return q_.get(); }
  void reset() override { q_.reset(0); }
  void compute() override { q_.set(q_.get() + 1); }
  void commit() override { q_.commit(); }

 private:
  WireU q_;
};

struct Rig {
  Simulator sim;
  Ticker ticker;
  TraceRecorder trace{sim};

  Rig() {
    sim.add(&ticker);
    trace.add_probe("count", 8, [this] { return ticker.q(); });
    trace.add_probe_bool("is_even", [this] { return ticker.q() % 2 == 0; });
    sim.reset();
  }
};

TEST(TraceRecorder, SamplesEveryEdge) {
  Rig rig;
  rig.sim.run(5);
  EXPECT_EQ(rig.trace.num_samples(), 6u);  // reset sample + 5 edges
  EXPECT_EQ(rig.trace.num_probes(), 2u);
  EXPECT_EQ(rig.trace.value("count", 0), 0u);
  EXPECT_EQ(rig.trace.value("count", 5), 5u);
  EXPECT_EQ(rig.trace.value("is_even", 3), 0u);
  EXPECT_EQ(rig.trace.value("is_even", 4), 1u);
}

TEST(TraceRecorder, FindFirstHonoursFrom) {
  Rig rig;
  rig.sim.run(10);
  EXPECT_EQ(rig.trace.find_first("count", 4), 4);
  EXPECT_EQ(rig.trace.find_first("is_even", 1, /*from=*/3), 4);
  EXPECT_EQ(rig.trace.find_first("count", 99), -1);
  EXPECT_EQ(rig.trace.find_first("no_such_probe", 0), -1);
}

TEST(TraceRecorder, VcdFileIsWellFormed) {
  Rig rig;
  rig.sim.run(4);
  const std::string path = ::testing::TempDir() + "/trace_test.vcd";
  ASSERT_TRUE(rig.trace.write_vcd(path, "test_top"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string vcd = buf.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("count"), std::string::npos);
  EXPECT_NE(vcd.find("is_even"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  // The 8-bit probe dumps binary vectors.
  EXPECT_NE(vcd.find("b00000011"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorder, VcdOnlyRecordsChanges) {
  Simulator sim;
  TraceRecorder trace(sim);
  trace.add_probe("constant", 4, [] { return 7; });
  sim.reset();
  sim.run(10);
  const std::string path = ::testing::TempDir() + "/trace_const.vcd";
  ASSERT_TRUE(trace.write_vcd(path));
  std::ifstream in(path);
  std::string vcd((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  // One value line only (plus the header and final timestamp).
  EXPECT_EQ(vcd.find("b0111"), vcd.rfind("b0111"));
  std::remove(path.c_str());
}

TEST(TraceRecorder, AsciiRenderShowsPulsesAndValues) {
  Rig rig;
  rig.sim.run(6);
  const std::string art = rig.trace.render_ascii(0, 7);
  EXPECT_NE(art.find("count"), std::string::npos);
  EXPECT_NE(art.find("is_even"), std::string::npos);
  // Boolean rows use pulse art.
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('_'), std::string::npos);
}

TEST(TraceRecorder, AsciiRenderEmptyWindow) {
  Rig rig;
  rig.sim.run(2);
  EXPECT_EQ(rig.trace.render_ascii(5, 5), "");
  EXPECT_EQ(rig.trace.render_ascii(10, 3), "");
}

}  // namespace
}  // namespace empls::rtl
