// Unit tests for the registered-signal primitives: Wire, WireU, Pulse,
// and the bit utilities they rely on.
#include <gtest/gtest.h>

#include "rtl/types.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {
namespace {

TEST(BitUtils, MaskWidth) {
  EXPECT_EQ(mask_width(0), 0u);
  EXPECT_EQ(mask_width(1), 1u);
  EXPECT_EQ(mask_width(8), 0xFFu);
  EXPECT_EQ(mask_width(20), 0xFFFFFu);
  EXPECT_EQ(mask_width(32), 0xFFFFFFFFu);
  EXPECT_EQ(mask_width(64), ~u64{0});
}

TEST(BitUtils, TruncateMatchesHardwareAssignment) {
  EXPECT_EQ(truncate(0x12345678, 20), 0x45678u);
  EXPECT_EQ(truncate(0xFF, 8), 0xFFu);
  EXPECT_EQ(truncate(0x100, 8), 0u);
}

TEST(BitUtils, ExtractInsertRoundTrip) {
  // The label field of a stack entry: bits 12..31.
  const u64 word = 0xABCDE000 | (5u << 9) | (1u << 8) | 64;
  EXPECT_EQ(extract_bits(word, 12, 20), 0xABCDEu);
  EXPECT_EQ(extract_bits(word, 9, 3), 5u);
  EXPECT_EQ(extract_bits(word, 8, 1), 1u);
  EXPECT_EQ(extract_bits(word, 0, 8), 64u);

  const u64 rewritten = insert_bits(word, 0, 8, 17);
  EXPECT_EQ(extract_bits(rewritten, 0, 8), 17u);
  EXPECT_EQ(extract_bits(rewritten, 12, 20), 0xABCDEu) << "other fields kept";
}

TEST(BitUtils, InsertTruncatesOverwideField) {
  EXPECT_EQ(insert_bits(0, 0, 4, 0xFF), 0xFu);
}

TEST(BitUtils, Fits) {
  EXPECT_TRUE(fits(0xFFFFF, 20));
  EXPECT_FALSE(fits(0x100000, 20));
  EXPECT_TRUE(fits(0, 1));
}

TEST(Wire, ValueInvisibleUntilCommit) {
  Wire<int> w(7);
  w.set(42);
  EXPECT_EQ(w.get(), 7) << "set() must not be visible before commit()";
  w.commit();
  EXPECT_EQ(w.get(), 42);
}

TEST(Wire, HoldsValueAcrossCommitsWithoutSet) {
  Wire<int> w(3);
  w.commit();
  w.commit();
  EXPECT_EQ(w.get(), 3) << "a wire acts as a flop with feedback";
}

TEST(Wire, ResetIsImmediate) {
  Wire<int> w(1);
  w.set(9);
  w.reset(5);
  EXPECT_EQ(w.get(), 5);
  w.commit();
  EXPECT_EQ(w.get(), 5) << "reset must also clear the pending next value";
}

TEST(WireU, TruncatesToDeclaredWidth) {
  WireU w(20);
  w.set(0x123456);
  w.commit();
  EXPECT_EQ(w.get(), 0x23456u);
  EXPECT_EQ(w.width(), 20u);
}

TEST(WireU, InitialValueTruncated) {
  WireU w(8, 0x1FF);
  EXPECT_EQ(w.get(), 0xFFu);
}

TEST(Pulse, VisibleForExactlyOneCycle) {
  Pulse p;
  EXPECT_FALSE(p.get());
  p.fire();
  EXPECT_FALSE(p.get()) << "not visible in the firing cycle's compute";
  p.commit();
  EXPECT_TRUE(p.get()) << "visible the cycle after firing";
  p.commit();
  EXPECT_FALSE(p.get()) << "self-clears without re-fire";
}

TEST(Pulse, RefireKeepsHigh) {
  Pulse p;
  p.fire();
  p.commit();
  p.fire();
  p.commit();
  EXPECT_TRUE(p.get());
  p.commit();
  EXPECT_FALSE(p.get());
}

TEST(Pulse, ResetClearsPending) {
  Pulse p;
  p.fire();
  p.reset();
  p.commit();
  EXPECT_FALSE(p.get());
}

}  // namespace
}  // namespace empls::rtl
