// Unit tests for the clocked datapath components: Register, Counter,
// SyncMemory and the comparators.
#include <gtest/gtest.h>

#include "rtl/comparator.hpp"
#include "rtl/counter.hpp"
#include "rtl/memory.hpp"
#include "rtl/register.hpp"
#include "rtl/simulator.hpp"

namespace empls::rtl {
namespace {

// Drive a single component through explicit compute/commit phases.
template <typename T>
void edge(T& obj) {
  obj.compute();
  obj.commit();
}

TEST(Register, LoadAppearsAfterOneEdge) {
  Register r(20);
  r.load(0x12345);
  EXPECT_EQ(r.q(), 0u);
  edge(r);
  EXPECT_EQ(r.q(), 0x12345u);
}

TEST(Register, TruncatesToWidth) {
  Register r(8);
  r.load(0x1FF);
  edge(r);
  EXPECT_EQ(r.q(), 0xFFu);
}

TEST(Register, HoldsWithoutLoad) {
  Register r(8, 0x42);
  edge(r);
  edge(r);
  EXPECT_EQ(r.q(), 0x42u);
}

TEST(Register, ResetRestoresResetValue) {
  Register r(8, 7);
  r.load(99);
  edge(r);
  r.reset();
  EXPECT_EQ(r.q(), 7u);
}

TEST(Counter, IncrementDecrementLoadClear) {
  Counter c(4);
  c.increment();
  edge(c);
  EXPECT_EQ(c.q(), 1u);
  c.increment();
  edge(c);
  EXPECT_EQ(c.q(), 2u);
  c.decrement();
  edge(c);
  EXPECT_EQ(c.q(), 1u);
  c.load(9);
  edge(c);
  EXPECT_EQ(c.q(), 9u);
  c.clear();
  edge(c);
  EXPECT_EQ(c.q(), 0u);
}

TEST(Counter, WrapsAtDeclaredWidth) {
  Counter c(2);
  c.load(3);
  edge(c);
  c.increment();
  edge(c);
  EXPECT_EQ(c.q(), 0u) << "2-bit counter wraps 3 -> 0";
  c.decrement();
  edge(c);
  EXPECT_EQ(c.q(), 3u) << "and 0 -> 3 going down";
}

TEST(Counter, CommandAppliesRegardlessOfPhaseOrder) {
  // A driving FSM may issue the command after this counter's compute()
  // already ran in the same cycle; the command must still land on this
  // edge (the hazard fixed by applying commands during commit()).
  Counter c(8);
  c.compute();
  c.increment();  // issued "late" in the compute phase
  c.commit();
  EXPECT_EQ(c.q(), 1u);
}

TEST(Counter, HoldsWithNoCommand) {
  Counter c(8, 5);
  edge(c);
  EXPECT_EQ(c.q(), 5u);
}

TEST(SyncMemory, ReadHasOneCycleLatency) {
  SyncMemory m(20, 16);
  m.poke(3, 0xBEEF);
  m.issue_read(3);
  EXPECT_EQ(m.read_data(), 0u) << "data not visible in the issuing cycle";
  edge(m);
  EXPECT_EQ(m.read_data(), 0xBEEFu);
}

TEST(SyncMemory, ReadDataHoldsUntilNextRead) {
  SyncMemory m(20, 16);
  m.poke(1, 111);
  m.poke(2, 222);
  m.issue_read(1);
  edge(m);
  edge(m);  // no new read issued
  EXPECT_EQ(m.read_data(), 111u);
  m.issue_read(2);
  edge(m);
  EXPECT_EQ(m.read_data(), 222u);
}

TEST(SyncMemory, WriteLandsAtTheEdge) {
  SyncMemory m(8, 4);
  m.issue_write(2, 0x5A);
  EXPECT_EQ(m.peek(2), 0u);
  edge(m);
  EXPECT_EQ(m.peek(2), 0x5Au);
}

TEST(SyncMemory, ReadDuringWriteReturnsOldData) {
  SyncMemory m(8, 4);
  m.poke(0, 0x11);
  m.issue_read(0);
  m.issue_write(0, 0x99);
  edge(m);
  EXPECT_EQ(m.read_data(), 0x11u) << "read-first mode";
  EXPECT_EQ(m.peek(0), 0x99u) << "but the write landed";
}

TEST(SyncMemory, WriteTruncatesToDataWidth) {
  SyncMemory m(2, 4);  // the operation memory component is 2 bits wide
  m.issue_write(0, 0x7);
  edge(m);
  EXPECT_EQ(m.peek(0), 0x3u);
}

TEST(SyncMemory, ResetClearsContents) {
  SyncMemory m(8, 4);
  m.poke(1, 0xAA);
  m.reset();
  EXPECT_EQ(m.peek(1), 0u);
}

TEST(Comparator, WidthLimitedEquality) {
  // The 20-bit comparator must ignore bits above the label field.
  EXPECT_TRUE(compare_eq20(0x100004, 0x200004));
  EXPECT_FALSE(compare_eq20(0x00005, 0x00004));
  // The 32-bit comparator sees the full packet identifier.
  EXPECT_FALSE(compare_eq32(0x100004, 0x200004));
  EXPECT_TRUE(compare_eq32(0xDEADBEEF, 0xDEADBEEF));
  // 10-bit: memory addresses.
  EXPECT_TRUE(compare_eq10(0x400, 0x800));  // both truncate to 0
  EXPECT_FALSE(compare_eq10(1, 2));
}

}  // namespace
}  // namespace empls::rtl
