// Unit tests for the simulation driver: two-phase stepping, registration
// -order independence, run_until, and the trace sampler hook.
#include <gtest/gtest.h>

#include "rtl/simulator.hpp"
#include "rtl/wire.hpp"

namespace empls::rtl {
namespace {

/// A module that copies its neighbour's committed output each cycle —
/// the canonical test that cross-module reads see pre-edge state only.
class Follower : public SimObject {
 public:
  explicit Follower(const WireU* source) : source_(source), q_(16) {}
  [[nodiscard]] u64 q() const { return q_.get(); }
  void reset() override { q_.reset(0); }
  void compute() override {
    if (source_ != nullptr) {
      q_.set(source_->get());
    }
  }
  void commit() override { q_.commit(); }
  [[nodiscard]] const WireU& wire() const { return q_; }

 private:
  const WireU* source_;
  WireU q_;
};

/// A free-running counter module.
class Ticker : public SimObject {
 public:
  Ticker() : q_(16) {}
  [[nodiscard]] u64 q() const { return q_.get(); }
  [[nodiscard]] const WireU& wire() const { return q_; }
  void reset() override { q_.reset(0); }
  void compute() override { q_.set(q_.get() + 1); }
  void commit() override { q_.commit(); }

 private:
  WireU q_;
};

TEST(Simulator, StepRunsComputeThenCommit) {
  Simulator sim;
  Ticker t;
  sim.add(&t);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  sim.step();
  EXPECT_EQ(t.q(), 1u);
  sim.run(4);
  EXPECT_EQ(t.q(), 5u);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(Simulator, RegistrationOrderDoesNotChangeResults) {
  // A follower chain behaves as a shift register regardless of whether
  // the follower is registered before or after its source.
  for (const bool follower_first : {false, true}) {
    Simulator sim;
    Ticker t;
    Follower f(&t.wire());
    if (follower_first) {
      sim.add(&f);
      sim.add(&t);
    } else {
      sim.add(&t);
      sim.add(&f);
    }
    sim.reset();
    sim.run(3);
    EXPECT_EQ(t.q(), 3u);
    EXPECT_EQ(f.q(), 2u) << "follower lags one edge, order-independently "
                            "(follower_first=" << follower_first << ")";
  }
}

TEST(Simulator, FollowerChainIsAShiftRegister) {
  Simulator sim;
  Ticker t;
  Follower f1(&t.wire());
  Follower f2(&f1.wire());
  sim.add(&t);
  sim.add(&f1);
  sim.add(&f2);
  sim.reset();
  sim.run(5);
  EXPECT_EQ(t.q(), 5u);
  EXPECT_EQ(f1.q(), 4u);
  EXPECT_EQ(f2.q(), 3u);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  Ticker t;
  sim.add(&t);
  sim.reset();
  sim.run(7);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(t.q(), 0u);
}

TEST(Simulator, RunUntilStopsOnPredicate) {
  Simulator sim;
  Ticker t;
  sim.add(&t);
  sim.reset();
  const u64 steps = sim.run_until([&] { return t.q() >= 10; }, 1000);
  EXPECT_EQ(steps, 10u);
  EXPECT_EQ(t.q(), 10u);
}

TEST(Simulator, RunUntilTimesOut) {
  Simulator sim;
  Ticker t;
  sim.add(&t);
  sim.reset();
  const u64 steps = sim.run_until([] { return false; }, 25);
  EXPECT_EQ(steps, 25u);
}

TEST(Simulator, SamplerFiresOncePerEdgeAndOnReset) {
  Simulator sim;
  Ticker t;
  sim.add(&t);
  std::vector<u64> samples;
  sim.set_sampler([&](u64 cycle) { samples.push_back(cycle); });
  sim.reset();
  sim.run(3);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0], 0u);
  EXPECT_EQ(samples[3], 3u);
}

}  // namespace
}  // namespace empls::rtl
