// Unit tests for the cycles → time conversion (the paper's 50 MHz
// arithmetic).
#include <gtest/gtest.h>

#include "rtl/clock_model.hpp"

namespace empls::rtl {
namespace {

TEST(ClockModel, DefaultsToThePaperFrequency) {
  const ClockModel clock;
  EXPECT_DOUBLE_EQ(clock.frequency_hz(), 50e6);
  EXPECT_DOUBLE_EQ(clock.period_seconds(), 20e-9);
}

TEST(ClockModel, PaperWorstCaseArithmetic) {
  // "6167 cycles ... approximately 0.123 ms" at 50 MHz.
  const ClockModel clock;
  EXPECT_DOUBLE_EQ(clock.milliseconds(6167), 6167.0 / 50e3);
  EXPECT_NEAR(clock.milliseconds(6167), 0.12334, 1e-5);
  EXPECT_NEAR(clock.microseconds(6167), 123.34, 1e-2);
}

TEST(ClockModel, ScalesWithFrequency) {
  const ClockModel slow(25e6);
  const ClockModel fast(100e6);
  EXPECT_DOUBLE_EQ(slow.seconds(1000), 4 * fast.seconds(1000));
}

TEST(ClockModel, DurationRounding) {
  const ClockModel clock(1e9);  // 1 ns per cycle
  EXPECT_EQ(clock.duration(42).count(), 42);
  const ClockModel third(3e9);  // 1/3 ns per cycle: rounds to nearest
  EXPECT_EQ(clock.duration(0).count(), 0);
  EXPECT_EQ(third.duration(2).count(), 1);  // 0.667 ns -> 1
}

TEST(ClockModel, ZeroCycles) {
  const ClockModel clock;
  EXPECT_DOUBLE_EQ(clock.seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(clock.milliseconds(0), 0.0);
}

}  // namespace
}  // namespace empls::rtl
