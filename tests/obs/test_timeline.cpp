// Unit tests for the telemetry timeline: delta encoding, the bounded
// ring, windowed histogram quantiles, and the CSV / JSON / Chrome
// counter exports.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace empls::obs {
namespace {

TEST(Timeline, CountersRecordPerIntervalDeltas) {
  MetricsRegistry reg;
  Counter& c = reg.counter("empls_x_total");
  Timeline tl;

  c.inc(5);
  tl.sample(reg, 0.1);
  c.inc(3);
  tl.sample(reg, 0.2);
  tl.sample(reg, 0.3);  // no change: delta 0

  const auto col = tl.column_index("empls_x_total");
  ASSERT_TRUE(col.has_value());
  ASSERT_EQ(tl.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(tl.value_at(0, *col), 5.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1, *col), 3.0);
  EXPECT_DOUBLE_EQ(tl.value_at(2, *col), 0.0);
  EXPECT_DOUBLE_EQ(tl.time_at(1), 0.2);
}

TEST(Timeline, GaugesRecordInstantaneousValues) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("empls_depth");
  Timeline tl;

  g.set(4.0);
  tl.sample(reg, 1.0);
  g.set(1.5);
  tl.sample(reg, 2.0);

  const auto col = tl.column_index("empls_depth");
  ASSERT_TRUE(col.has_value());
  EXPECT_DOUBLE_EQ(tl.value_at(0, *col), 4.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1, *col), 1.5);
}

TEST(Timeline, LabelledSeriesKeepDistinctColumns) {
  MetricsRegistry reg;
  Counter& a = reg.counter("empls_d_total", R"(reason="ttl")");
  Counter& b = reg.counter("empls_d_total", R"(reason="policer")");
  Timeline tl;
  a.inc(1);
  b.inc(2);
  tl.sample(reg, 0.1);

  const auto ca = tl.column_index(R"(empls_d_total{reason="ttl"})");
  const auto cb = tl.column_index(R"(empls_d_total{reason="policer"})");
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_NE(*ca, *cb);
  EXPECT_DOUBLE_EQ(tl.value_at(0, *ca), 1.0);
  EXPECT_DOUBLE_EQ(tl.value_at(0, *cb), 2.0);
}

TEST(Timeline, HistogramsExpandToWindowedQuantileColumns) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empls_lat");
  Timeline tl;

  for (int i = 0; i < 100; ++i) {
    h.record(7);  // bucket upper bound 7
  }
  tl.sample(reg, 0.1);
  // Second window: a very different population.  The windowed quantile
  // must reflect only this interval's samples, not the cumulative mix.
  for (int i = 0; i < 100; ++i) {
    h.record(1000);  // bucket upper bound 1023
  }
  tl.sample(reg, 0.2);

  const auto p99 = tl.column_index("empls_lat.p99");
  const auto cnt = tl.column_index("empls_lat.count");
  ASSERT_TRUE(p99.has_value());
  ASSERT_TRUE(cnt.has_value());
  EXPECT_DOUBLE_EQ(tl.value_at(0, *p99), 7.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1, *p99), 1023.0);
  EXPECT_DOUBLE_EQ(tl.value_at(0, *cnt), 100.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1, *cnt), 100.0);
  EXPECT_TRUE(tl.column_index("empls_lat.p50").has_value());
  EXPECT_TRUE(tl.column_index("empls_lat.p999").has_value());
}

TEST(Timeline, TrackedHistogramOutsideTheRegistry) {
  MetricsRegistry reg;
  Histogram h;  // e.g. the load generator's private latency HDR
  Timeline tl;
  tl.track_histogram("empls_ext", &h);
  h.record(3);
  tl.sample(reg, 0.1);
  const auto cnt = tl.column_index("empls_ext.count");
  ASSERT_TRUE(cnt.has_value());
  EXPECT_DOUBLE_EQ(tl.value_at(0, *cnt), 1.0);
}

TEST(Timeline, RingWrapKeepsNewestRowsAndCountsDropped) {
  MetricsRegistry reg;
  Counter& c = reg.counter("empls_x_total");
  Timeline::Config cfg;
  cfg.capacity = 4;
  Timeline tl(cfg);

  for (int k = 1; k <= 10; ++k) {
    c.inc(1);
    tl.sample(reg, 0.1 * k);
  }
  EXPECT_EQ(tl.sample_count(), 4u);
  EXPECT_EQ(tl.dropped_samples(), 6u);
  // Oldest retained row is tick 7.
  EXPECT_NEAR(tl.time_at(0), 0.7, 1e-9);
  EXPECT_NEAR(tl.time_at(3), 1.0, 1e-9);
  const auto col = tl.column_index("empls_x_total");
  ASSERT_TRUE(col.has_value());
  EXPECT_DOUBLE_EQ(tl.value_at(3, *col), 1.0);
}

TEST(Timeline, ColumnsAppearingMidRunReadZeroForEarlierRows) {
  MetricsRegistry reg;
  reg.counter("empls_a_total").inc();
  Timeline tl;
  tl.sample(reg, 0.1);
  reg.counter("empls_late_total").inc(9);
  tl.sample(reg, 0.2);

  const auto col = tl.column_index("empls_late_total");
  ASSERT_TRUE(col.has_value());
  EXPECT_DOUBLE_EQ(tl.value_at(0, *col), 0.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1, *col), 9.0);
}

TEST(Timeline, CsvHasHeaderAndOneLinePerRow) {
  MetricsRegistry reg;
  Counter& c = reg.counter("empls_x_total");
  Timeline tl;
  c.inc(2);
  tl.sample(reg, 0.1);
  c.inc(1);
  tl.sample(reg, 0.2);

  std::ostringstream out;
  tl.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time,\"empls_x_total\""), std::string::npos);
  EXPECT_NE(csv.find("\n0.1,2"), std::string::npos);
  EXPECT_NE(csv.find("\n0.2,1"), std::string::npos);
}

TEST(Timeline, JsonIsColumnMajor) {
  MetricsRegistry reg;
  reg.counter("empls_x_total").inc(3);
  Timeline tl;
  tl.sample(reg, 0.5);

  std::ostringstream out;
  tl.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"interval_s\":0.1"), std::string::npos);
  EXPECT_NE(json.find("\"time\":[0.5]"), std::string::npos);
  EXPECT_NE(json.find("\"empls_x_total\":[3]"), std::string::npos);
}

TEST(Timeline, ChromeCountersSkipAllZeroColumns) {
  MetricsRegistry reg;
  reg.counter("empls_hot_total").inc(4);
  reg.counter("empls_cold_total");  // never incremented: all-zero column
  Timeline tl;
  tl.sample(reg, 0.25);

  std::ostringstream out;
  bool first = true;
  tl.write_chrome_counters(out, first);
  const std::string events = out.str();
  EXPECT_FALSE(first);  // something was emitted
  EXPECT_NE(events.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(events.find("\"empls_hot_total\""), std::string::npos);
  EXPECT_EQ(events.find("empls_cold_total"), std::string::npos);
  // Counter rows land on pid 3 (the telemetry track).
  EXPECT_NE(events.find("\"pid\":3"), std::string::npos);
}

TEST(Timeline, UnknownColumnIndexIsEmpty) {
  Timeline tl;
  EXPECT_FALSE(tl.column_index("empls_absent").has_value());
}

}  // namespace
}  // namespace empls::obs
