// End-to-end telemetry tests through the scenario runner: golden-trace
// determinism, tracer-off transparency, the consolidated metrics
// snapshot, and per-reason drop accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "core/scenario_runner.hpp"
#include "net/scenario.hpp"
#include "obs/drop_reason.hpp"

namespace empls::core {
namespace {

using Report = ScenarioRunner::Report;

Report run_ok(std::string_view text) {
  auto result = ScenarioRunner::run_text(text);
  if (const auto* err = std::get_if<net::ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<Report>(std::move(result));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

constexpr std::string_view kLineTopology = R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 cos=5 interval=10ms stop=0.0999
run 0.2
)";

TEST(ScenarioTelemetry, ParserAcceptsBothSpellingsAndOff) {
  auto parsed = net::Scenario::parse(
      "trace out.json\nmetrics=snap.prom\nrun 0.1\n");
  auto* s = std::get_if<net::Scenario>(&parsed);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->trace_path, "out.json");
  EXPECT_EQ(s->metrics_path, "snap.prom");

  parsed = net::Scenario::parse("trace=x\ntrace off\nmetrics m\nmetrics=off\n");
  s = std::get_if<net::Scenario>(&parsed);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->trace_path.empty());
  EXPECT_TRUE(s->metrics_path.empty());
}

TEST(ScenarioTelemetry, GoldenTraceIsByteIdenticalAcrossRuns) {
  const std::string path_a = ::testing::TempDir() + "empls_trace_a.json";
  const std::string path_b = ::testing::TempDir() + "empls_trace_b.json";
  run_ok(std::string(kLineTopology) + "trace " + path_a + "\n");
  run_ok(std::string(kLineTopology) + "trace=" + path_b + "\n");

  const std::string a = slurp(path_a);
  const std::string b = slurp(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "trace output must be deterministic";

  // The trace is the Chrome trace-event container with per-hop spans.
  EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.find("\"engine-search\""), std::string::npos);
  EXPECT_NE(a.find("\"link-transit\""), std::string::npos);
  EXPECT_NE(a.find("\"deliver\""), std::string::npos);
  EXPECT_EQ(a.find("0x"), std::string::npos);  // no addresses

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ScenarioTelemetry, TraceOffIsTransparent) {
  const auto plain = run_ok(std::string(kLineTopology));
  const auto off = run_ok(std::string(kLineTopology) + "trace off\n");
  EXPECT_EQ(plain.to_string(), off.to_string());
  EXPECT_EQ(plain.flows.flow(1).delivered, 10u);
}

TEST(ScenarioTelemetry, MetricsSnapshotConsolidatesAllProducers) {
  const std::string prom_path = ::testing::TempDir() + "empls_metrics.prom";
  const auto report =
      run_ok(std::string(kLineTopology) + "metrics " + prom_path + "\n");

  ASSERT_NE(report.metrics, nullptr);
  // Router counters: one series per router, consolidated in one pass.
  const auto* fwd =
      report.metrics->find_counter("empls_router_forwarded_total",
                                   R"(router="B")");
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->value(), 10u);
  // Engine lookup histogram fed from the per-packet hot path.
  const auto* lookups =
      report.metrics->find_histogram("empls_engine_lookup_cycles",
                                     R"(router="B")");
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(lookups->count(), 10u);
  EXPECT_GT(lookups->sum(), 0u);
  // Link transit histogram, labeled by directed link.
  const auto* transit =
      report.metrics->find_histogram("empls_link_transit_ns",
                                     R"(link="A->B")");
  ASSERT_NE(transit, nullptr);
  EXPECT_EQ(transit->count(), 10u);
  // Flow accounting from the same snapshot.
  const auto* sent =
      report.metrics->find_counter("empls_flow_sent_total", R"(flow="1")");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->value(), 10u);

  // The metrics= directive wrote the same snapshot as Prometheus text.
  const std::string text = slurp(prom_path);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("# TYPE empls_engine_lookup_cycles histogram"),
            std::string::npos);
  EXPECT_NE(text.find("empls_link_transit_ns_bucket"), std::string::npos);
  EXPECT_NE(text.find("empls_drops_total"), std::string::npos);
  EXPECT_EQ(text, report.metrics->prometheus_text());
  std::remove(prom_path.c_str());
}

TEST(ScenarioTelemetry, DropsAreCountedByReason) {
  // Fail the only link mid-run: packets sourced while it is down are
  // discarded and must land in exactly one DropReason bucket each.
  const auto report = run_ok(R"(
router A ler
router B ler
link A B 10M 1ms
lsp 10.1.0.0/16 A B
flow cbr 1 A 10.1.0.5 interval=10ms stop=0.0999
fail 0.055 A B
run 0.2
)");
  EXPECT_EQ(report.flows.flow(1).sent, 10u);
  EXPECT_EQ(report.flows.flow(1).delivered, 6u);
  const std::uint64_t lost =
      report.flows.flow(1).sent - report.flows.flow(1).delivered;
  const std::uint64_t total =
      std::accumulate(report.drops.begin(), report.drops.end(),
                      std::uint64_t{0});
  EXPECT_EQ(total, lost);
  // The human report lists the nonzero reasons.
  EXPECT_NE(report.to_string().find("drops:"), std::string::npos);
}

TEST(ScenarioTelemetry, CleanRunReportsNoDrops) {
  const auto report = run_ok(std::string(kLineTopology));
  const std::uint64_t total =
      std::accumulate(report.drops.begin(), report.drops.end(),
                      std::uint64_t{0});
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(report.to_string().find("drops:"), std::string::npos);
}

}  // namespace
}  // namespace empls::core
