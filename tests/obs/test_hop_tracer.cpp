// Unit tests for the hop tracer: journey table lifecycle, the
// flight-recorder ring, and the Chrome-trace serializer.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/drop_reason.hpp"
#include "obs/trace.hpp"

namespace empls::obs {
namespace {

TEST(HopTracer, DisabledIsInert) {
  HopTracer t;
  int dummy = 0;
  EXPECT_EQ(t.begin(&dummy, 1, 1, 0, 0.0), 0u);
  EXPECT_EQ(t.id_of(&dummy), 0u);
  t.record(1, SpanKind::kIngress, 0, 0.0, 0.0);
  const auto s = t.stats();
  EXPECT_EQ(s.journeys, 0u);
  EXPECT_EQ(s.records, 0u);
}

TEST(HopTracer, JourneyLifecycle) {
  HopTracer t;
  t.set_enabled(true);
  int p1 = 0;
  int p2 = 0;
  const auto id1 = t.begin(&p1, /*flow=*/7, /*seq=*/1, /*lane=*/0, 0.0);
  const auto id2 = t.begin(&p2, 7, 2, 0, 0.1);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, 0u);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(t.id_of(&p1), id1);
  EXPECT_EQ(t.id_of(&p2), id2);
  EXPECT_EQ(t.stats().live, 2u);

  t.end(&p1);
  EXPECT_EQ(t.id_of(&p1), 0u);
  EXPECT_EQ(t.id_of(&p2), id2);
  EXPECT_EQ(t.stats().live, 1u);
  EXPECT_EQ(t.stats().live_high_water, 2u);

  // Recycled address (pool slot reuse): begin() self-heals the slot
  // and assigns a fresh id.
  const auto id3 = t.begin(&p2, 8, 3, 1, 0.2);
  EXPECT_NE(id3, id2);
  EXPECT_EQ(t.id_of(&p2), id3);
  EXPECT_EQ(t.stats().live, 1u);
}

TEST(HopTracer, MarkIsConsumedOnce) {
  HopTracer t;
  t.set_enabled(true);
  int p = 0;
  t.begin(&p, 1, 1, 0, 0.0);
  EXPECT_LT(t.take_mark(&p), 0.0);  // unset
  t.mark(&p, 1.5);
  EXPECT_DOUBLE_EQ(t.take_mark(&p), 1.5);
  EXPECT_LT(t.take_mark(&p), 0.0);  // consumed
  int q = 0;
  EXPECT_LT(t.take_mark(&q), 0.0);  // untracked packet
}

TEST(HopTracer, TableSurvivesChurn) {
  // Thousands of insert/erase cycles across overlapping batches force
  // collisions, growth, and backward-shift deletion in the open table.
  HopTracer t;
  t.set_enabled(true);
  std::vector<int> storage(4096);
  std::uint64_t expected_live = 0;
  for (int round = 0; round < 4; ++round) {
    for (auto& s : storage) {
      t.begin(&s, 1, 1, 0, 0.0);
    }
    expected_live = storage.size();
    EXPECT_EQ(t.stats().live, expected_live);
    // Erase every other entry, then verify the rest still resolve.
    for (std::size_t i = 0; i < storage.size(); i += 2) {
      t.end(&storage[i]);
      --expected_live;
    }
    EXPECT_EQ(t.stats().live, expected_live);
    std::set<std::uint64_t> ids;
    for (std::size_t i = 1; i < storage.size(); i += 2) {
      const auto id = t.id_of(&storage[i]);
      EXPECT_NE(id, 0u);
      ids.insert(id);
    }
    EXPECT_EQ(ids.size(), storage.size() / 2);  // all distinct
    for (std::size_t i = 1; i < storage.size(); i += 2) {
      t.end(&storage[i]);
    }
    expected_live = 0;
  }
  EXPECT_EQ(t.stats().journeys, 4u * 4096u);
  EXPECT_EQ(t.stats().live, 0u);
}

TEST(HopTracer, RingWrapsAndCountsOverwrites) {
  HopTracer t(/*capacity=*/8);  // rounded to 8
  t.set_enabled(true);
  EXPECT_EQ(t.capacity(), 8u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    t.record(1, SpanKind::kIngress, /*lane=*/i, /*ts=*/i, 0.0);
  }
  const auto s = t.stats();
  EXPECT_EQ(s.records, 20u);
  EXPECT_EQ(s.dropped_records, 12u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first snapshot holds the last 8 records: lanes 12..19.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].lane, 12u + i);
  }
}

TEST(HopTracer, ChromeTraceShape) {
  HopTracer t;
  t.set_enabled(true);
  int p = 0;
  const auto id = t.begin(&p, /*flow=*/3, /*seq=*/42, /*lane=*/0, 0.0);
  t.record(id, SpanKind::kEngineSearch, 0, 1e-6, 2e-6, /*a=*/1, /*b=*/57,
           kSpanHit);
  t.record(id, SpanKind::kLinkTransit, 0, 3e-6, 4e-6, 0, /*b=*/256,
           kSpanOnLink);
  t.record(id, SpanKind::kDrop, 1, 8e-6, 0.0,
           static_cast<std::uint16_t>(DropReason::kTtlExpired));
  t.end(&p);

  std::ostringstream out;
  t.write_chrome_trace(out, {"A", "B"}, {"A->B"});
  const std::string json = out.str();
  // Container + metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"routers\""), std::string::npos);
  EXPECT_NE(json.find("\"A->B\""), std::string::npos);
  // One complete (ph:X) span per non-journey record, named by kind.
  EXPECT_NE(json.find("\"engine-search\""), std::string::npos);
  EXPECT_NE(json.find("\"link-transit\""), std::string::npos);
  EXPECT_NE(json.find("\"drop\""), std::string::npos);
  EXPECT_NE(json.find("\"ttl-expired\""), std::string::npos);
  // Durations are microseconds: the 2 us engine search.
  EXPECT_NE(json.find("\"dur\":2.0000"), std::string::npos);
  // No raw addresses leak into the serialized output.
  EXPECT_EQ(json.find("0x"), std::string::npos);
}

TEST(DropReason, RoundTripsThroughStrings) {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto r = static_cast<DropReason>(i);
    EXPECT_EQ(drop_reason_from_string(to_string(r)), r);
  }
  // Unknown reasons map to kOther rather than asserting.
  EXPECT_EQ(drop_reason_from_string("not-a-reason"), DropReason::kOther);
}

}  // namespace
}  // namespace empls::obs
