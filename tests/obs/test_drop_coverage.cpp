// Coverage audit for the drop-reason taxonomy: every obs::DropReason
// must be producible by the suite — scenarios where the scenario
// language can provoke the cause, direct router rigs for the paths a
// config file cannot reach (malformed wire, inconsistent ops, missing
// next hops, unrecognised reason strings).  A reason nobody can drive
// is either dead taxonomy or an unobservable failure mode; both should
// fail this audit loudly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>

#include "core/embedded_router.hpp"
#include "core/scenario_runner.hpp"
#include "net/network.hpp"
#include "obs/drop_reason.hpp"
#include "sw/linear_engine.hpp"

namespace empls::obs {
namespace {

DropCounts scenario_drops(const std::string& text) {
  auto result = core::ScenarioRunner::run_text(text);
  EXPECT_TRUE(
      std::holds_alternative<core::ScenarioRunner::Report>(result))
      << std::get<net::ScenarioError>(result).message;
  return std::get<core::ScenarioRunner::Report>(result).drops;
}

std::uint64_t at(const DropCounts& c, DropReason r) {
  return c[static_cast<std::size_t>(r)];
}

void merge(DropCounts& into, const DropCounts& c) {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    into[i] += c[i];
  }
}

// Unguarded data-plane causes: a miss at the ingress (unrouted
// destination), a TTL flood that expires on the slow path, an
// out-of-profile policed flow, a thin link with a tiny CoS queue, and
// a mid-run link cut with traffic still offered.
DropCounts unguarded_misc() {
  return scenario_drops(R"(
qos strict capacity=4
router A ler
router B lsr
router C ler
link A B 1M 1ms
link B C 100M 1ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.9.0.5 interval=5ms stop=0.4s
flow cbr 2 A 10.1.0.5 cos=6 size=1200 interval=0.2ms stop=0.4s
flow cbr 3 A 10.1.0.6 cos=5 interval=1ms stop=0.4s
police A 3 10k
attack ttl_flood 0.05s A rate=2000 for=0.1s seed=7 dst=10.1.0.9
fail 0.2s B C
run 0.5s
)");
}

// Guarded attack campaign: each screen stamps its own reason, and a
// low shed band over a slow engine exercises graceful degradation.
DropCounts guarded_campaign() {
  return scenario_drops(R"(
router LER ler clock=100k
router EGR ler
link LER EGR 100M 1ms
lsp 10.1.0.0/16 LER EGR
flow cbr 1 LER 10.1.0.5 cos=6 interval=1ms stop=0.4s
guard * ttl=100 reprogram=50 shed=0.1 demote=0.05
loadgen poisson LER 10.1.0.0 rate=20000 flows=256 seed=11 stop=0.3s
attack spoof 0.10s LER rate=2000 for=0.15s seed=1
attack reserved 0.12s LER rate=2000 for=0.15s seed=2
attack ttl_flood 0.14s LER rate=2000 for=0.15s seed=3 dst=10.1.0.9
attack exhaust 0.16s LER rate=2000 for=0.15s seed=4 dst=10.1.0.1
run 0.6s
)");
}

// No guard in front of a slow engine: arrivals past the queue capacity
// hit the hard overrun.
DropCounts saturated_engine() {
  return scenario_drops(R"(
router LER ler clock=100k
router EGR ler
link LER EGR 100M 1ms
lsp 10.1.0.0/16 LER EGR
loadgen poisson LER 10.1.0.0 rate=20000 flows=256 seed=5 stop=0.3s
run 0.5s
)");
}

// Direct rig for the causes a scenario cannot reach.
struct Rig {
  net::Network net;
  net::NodeId router_id;
  net::NodeId sink_id;

  Rig() {
    router_id = net.add_node(std::make_unique<core::EmbeddedRouter>(
        "R", std::make_unique<sw::LinearEngine>(), core::RouterConfig{}));
    sink_id = net.add_node(std::make_unique<core::EmbeddedRouter>(
        "S", std::make_unique<sw::LinearEngine>(), core::RouterConfig{}));
    net.connect(router_id, sink_id, 1e9, 0.0);
  }
  core::EmbeddedRouter& router() {
    return net.node_as<core::EmbeddedRouter>(router_id);
  }
};

mpls::Packet labeled(rtl::u32 label, rtl::u8 ttl = 64) {
  mpls::Packet p;
  p.stack.push(mpls::LabelEntry{label, 0, false, ttl});
  return p;
}

DropCounts direct_rig_drops() {
  Rig rig;
  // Malformed wire form: a payload too large for the 16-bit length
  // field fails the round-trip validation at ingress.
  mpls::Packet huge;
  huge.payload.assign(70000, 1);
  rig.net.inject(rig.router_id, huge);
  // Engine success but no programmed next hop: write the pair directly
  // into the engine, bypassing the routing functionality's port map.
  rig.router().engine().write_pair(
      2, mpls::LabelPair{40, 77, mpls::LabelOp::kSwap});
  rig.net.inject(rig.router_id, labeled(40));
  // VERIFY INFO failure: a kNop pair is never a consistent operation.
  rig.router().engine().write_pair(
      2, mpls::LabelPair{41, 0, mpls::LabelOp::kNop});
  rig.net.inject(rig.router_id, labeled(41));
  rig.net.run();
  // An unrecognised reason string lands in the kOther catch-all.
  rig.net.notify_discard(rig.router_id, labeled(42), "cosmic-ray");
  return rig.net.drop_totals();
}

TEST(DropCoverage, ScenarioDriversStampTheSpecificReasons) {
  const DropCounts misc = unguarded_misc();
  EXPECT_GT(at(misc, DropReason::kInfoBaseMiss), 0u) << "unrouted dst";
  EXPECT_GT(at(misc, DropReason::kTtlExpired), 0u) << "unguarded ttl flood";
  EXPECT_GT(at(misc, DropReason::kPolicer), 0u) << "out-of-profile flow";
  EXPECT_GT(at(misc, DropReason::kQueueOverflow), 0u) << "thin link";
  EXPECT_GT(at(misc, DropReason::kLinkDown), 0u) << "mid-run cut";

  const DropCounts guarded = guarded_campaign();
  EXPECT_GT(at(guarded, DropReason::kReservedLabel), 0u);
  EXPECT_GT(at(guarded, DropReason::kSpoofedLabel), 0u);
  EXPECT_GT(at(guarded, DropReason::kTtlRateLimited), 0u);
  EXPECT_GT(at(guarded, DropReason::kReprogramRateLimited), 0u);
  EXPECT_GT(at(guarded, DropReason::kOverloadShed), 0u) << "shed band";

  const DropCounts saturated = saturated_engine();
  EXPECT_GT(at(saturated, DropReason::kEngineOverrun), 0u)
      << "unguarded queue cliff";
}

TEST(DropCoverage, DirectRigReachesTheRemainingReasons) {
  const DropCounts rig = direct_rig_drops();
  EXPECT_GT(at(rig, DropReason::kMalformed), 0u);
  EXPECT_GT(at(rig, DropReason::kNoRoute), 0u);
  EXPECT_GT(at(rig, DropReason::kInconsistent), 0u);
  EXPECT_GT(at(rig, DropReason::kOther), 0u);
}

TEST(DropCoverage, EveryReasonInTheTaxonomyIsDriven) {
  DropCounts total{};
  merge(total, unguarded_misc());
  merge(total, guarded_campaign());
  merge(total, saturated_engine());
  merge(total, direct_rig_drops());
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    EXPECT_GT(total[i], 0u)
        << "DropReason '" << to_string(static_cast<DropReason>(i))
        << "' is not driven by any scenario or rig in the suite";
  }
}

}  // namespace
}  // namespace empls::obs
